// Stand-alone optimization (paper §3 and §5): Orca runs without any
// database attached — metadata comes from a DXL file through the file-based
// MD provider, the query travels as a DXL document, and the produced plan is
// identical to what a live session produces. The same machinery backs
// AMPERe (§6.1): this example captures a minimal repro dump and replays it
// as a self-contained test case.
//
//	go run ./examples/standalone
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"orca/internal/ampere"
	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
	"orca/internal/tpcds"
)

func main() {
	dir, err := os.MkdirTemp("", "orca-standalone")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Harvest the TPC-DS catalog into a DXL metadata file — the paper's
	// metadata harvesting tool (§5).
	p := md.NewMemProvider()
	tpcds.BuildCatalog(p, tpcds.Scale{Factor: 1})
	metaPath := filepath.Join(dir, "tpcds.dxl")
	if err := os.WriteFile(metaPath, []byte(dxl.HarvestAll(p).Render()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harvested catalog -> %s\n", metaPath)

	// 2. Stand-alone optimization: file-based provider, no backend.
	provider, err := dxl.FileProvider(metaPath)
	if err != nil {
		log.Fatal(err)
	}
	cache := md.NewCache(&gpos.MemoryAccountant{})
	acc := md.NewAccessor(cache, provider)
	f := md.NewColumnFactory()
	const queryText = `
		SELECT d_year, count(*) AS n
		FROM store_sales, date_dim
		WHERE ss_sold_date_sk = d_date_sk AND d_moy = 11
		GROUP BY d_year ORDER BY d_year`
	q, err := sql.Bind(queryText, acc, f)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Optimize(q, core.DefaultConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstand-alone plan (no database attached):")
	fmt.Println(core.Explain(res.Plan, f))

	// 3. AMPERe: capture a minimal dump — query + touched metadata +
	// configuration + expected plan — and replay it (paper Figure 10).
	q2, err := sql.Bind(queryText, md.NewAccessor(cache, provider), md.NewColumnFactory())
	if err != nil {
		log.Fatal(err)
	}
	memProvider := provider.(*md.MemProvider)
	dump, err := ampere.Capture(context.Background(), q2, core.DefaultConfig(16), memProvider, nil)
	if err != nil {
		log.Fatal(err)
	}
	dump.ExpectedPlan = dxl.PlanFingerprint(res.Plan)
	dumpPath := filepath.Join(dir, "repro.dxl")
	if err := dump.WriteFile(dumpPath); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(dumpPath)
	fmt.Printf("AMPERe dump captured -> %s (%d bytes, metadata limited to touched objects)\n",
		dumpPath, info.Size())

	check, err := ampere.Check(dump)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay as test case: passed=%v, replayed cost=%.0f\n", check.Passed, check.Cost)
}
