// Distributed joins: how the property-enforcement framework (paper §4.1,
// Figure 7) chooses between co-located, redistributed, broadcast and
// gathered joins depending on table layout and size — and how the same query
// gets different motion plans as the physical design changes.
//
//	go run ./examples/distributed_joins
package main

import (
	"fmt"
	"log"

	orca "orca"
	"orca/internal/base"
	"orca/internal/md"
)

func build(factRows, dimRows float64, dimPolicy md.DistPolicy, factDistCol int) *orca.System {
	sys := orca.NewSystem(16)
	sys.AddTable(md.TableSpec{
		Name: "fact", Rows: factRows,
		Policy: md.DistHash, DistCols: []int{factDistCol},
		Cols: []md.ColSpec{
			{Name: "f_key", Type: base.TInt, NDV: dimRows, Lo: 0, Hi: dimRows},
			{Name: "f_other", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
			{Name: "f_val", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
		},
	})
	dimSpec := md.TableSpec{
		Name: "dim", Rows: dimRows,
		Policy: dimPolicy,
		Cols: []md.ColSpec{
			{Name: "d_key", Type: base.TInt, NDV: dimRows, Lo: 0, Hi: dimRows},
			{Name: "d_attr", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
		},
	}
	if dimPolicy == md.DistHash {
		dimSpec.DistCols = []int{0}
	}
	sys.AddTable(dimSpec)
	return sys
}

func explain(title string, sys *orca.System, query string) {
	plan, err := sys.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("### " + title)
	fmt.Println(plan)
}

func main() {
	const query = `
		SELECT d.d_attr, sum(f.f_val) AS total
		FROM fact f, dim d
		WHERE f.f_key = d.d_key
		GROUP BY d.d_attr ORDER BY d.d_attr`

	// 1. Fact distributed on the join key, dim distributed on its key:
	//    both sides are already co-located — no motion below the join.
	explain("co-located join (fact hashed on join key)",
		build(200000, 1000, md.DistHash, 0), query)

	// 2. Fact distributed on an unrelated column: the optimizer compares
	//    redistributing the fact (big) against broadcasting the dim (small)
	//    and picks the broadcast.
	explain("broadcast join (fact hashed on unrelated column, small dim)",
		build(200000, 50, md.DistHash, 1), query)

	// 3. Same layout but a large dimension: broadcasting becomes expensive,
	//    so both sides are redistributed onto the join key.
	explain("redistributed join (large dim)",
		build(200000, 60000, md.DistHash, 1), query)

	// 4. Replicated dimension: every segment already holds the full copy —
	//    the join needs no motion regardless of the fact's distribution.
	explain("replicated dimension (no motion)",
		build(200000, 1000, md.DistReplicated, 1), query)
}
