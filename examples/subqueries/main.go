// Correlated subqueries: Orca's unified subquery representation pulls
// deeply correlated predicates up into joins (paper §7.2.2), while the
// legacy Planner re-executes the subquery per outer row. This example shows
// both plans and the execution-work gap — the source of the paper's
// Figure 12 outliers of 1000x.
//
//	go run ./examples/subqueries
package main

import (
	"fmt"
	"log"

	orca "orca"
	"orca/internal/base"
	"orca/internal/engine"
	"orca/internal/md"
)

func main() {
	sys := orca.NewSystem(8)
	sys.AddTable(md.TableSpec{
		Name: "sales", Rows: 30000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "item", Type: base.TInt, NDV: 400, Lo: 0, Hi: 400},
			{Name: "store", Type: base.TInt, NDV: 20, Lo: 0, Hi: 20},
			{Name: "amount", Type: base.TInt, NDV: 300, Lo: 1, Hi: 301},
		},
	})
	sys.MustLoad(5)

	query := `
		SELECT s.item, s.amount
		FROM sales s
		WHERE s.amount > (SELECT 2 * avg(s2.amount) FROM sales s2 WHERE s2.item = s.item)
		ORDER BY s.item, s.amount
		LIMIT 10`

	orcaPlan, err := sys.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Orca: decorrelated into a join against a grouped aggregate ===")
	fmt.Println(orcaPlan)

	legacyPlan, err := sys.ExplainLegacy(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Legacy Planner: SubPlan re-executed per outer row ===")
	fmt.Println(legacyPlan)

	// Execute both under the same budget (the paper's timeout stand-in).
	budget := engine.Options{Budget: 30_000_000}
	orcaRes, err := sys.RunOpts(query, budget)
	if err != nil {
		log.Fatal(err)
	}
	legacyRes, err := sys.RunLegacy(query, budget)
	if err != nil {
		log.Fatal(err)
	}

	orcaWork := orcaRes.Stats.Work(3)
	legacyWork := legacyRes.Stats.Work(3)
	if legacyRes.TimedOut {
		legacyWork = budget.Budget
	}
	fmt.Printf("orca work:    %d\n", orcaWork)
	fmt.Printf("planner work: %d (timed out: %v)\n", legacyWork, legacyRes.TimedOut)
	fmt.Printf("speed-up:     %.0fx", float64(legacyWork)/float64(orcaWork))
	if legacyRes.TimedOut {
		fmt.Printf(" (lower bound — planner hit the execution budget)")
	}
	fmt.Println()
}
