// TPC-DS mini-benchmark: runs a slice of the paper's Figure 12 experiment
// interactively — each workload query is planned by Orca and by the legacy
// Planner and executed on the simulated cluster, printing the speed-up bar.
//
//	go run ./examples/tpcds
package main

import (
	"fmt"
	"log"

	"orca/internal/experiments"
)

func main() {
	env, err := experiments.NewEnv(experiments.Config{
		Segments: 16, Scale: 1, Seed: 7, Budget: 4_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := env.Figure12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TPC-DS (scale 1, 16 simulated segments): Orca vs legacy Planner")
	fmt.Printf("%-6s %12s %12s %10s\n", "query", "orca", "planner", "speed-up")
	for _, r := range rows {
		bar := ""
		n := int(r.Speedup)
		if n > 40 {
			n = 40
		}
		for i := 0; i < n; i++ {
			bar += "#"
		}
		mark := ""
		if r.PlannerTimedOut {
			mark = " >>"
		}
		fmt.Printf("%-6s %12d %12d %9.1fx%s %s\n", r.Query, r.OrcaWork, r.PlannerWork, r.Speedup, mark, bar)
	}
	s := experiments.Summarize(rows)
	fmt.Printf("\nsuite speed-up %.1fx | same-or-better %.0f%% | timeout-capped %d/%d (paper: 5x, 80%%, 14/111)\n",
		s.SuiteSpeedup, 100*s.SameOrBetterFrac, s.TimeoutCapped, s.Queries)
}
