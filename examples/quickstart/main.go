// Quickstart: define a small distributed schema, load generated data, run
// SQL through Orca on the simulated MPP cluster, and inspect the plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	orca "orca"
	"orca/internal/base"
	"orca/internal/md"
)

func main() {
	// A 8-segment cluster with two hash-distributed tables and one
	// replicated dimension.
	sys := orca.NewSystem(8)
	sys.AddTable(md.TableSpec{
		Name: "orders", Rows: 20000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "o_id", Type: base.TInt, NDV: 20000, Lo: 0, Hi: 20000},
			{Name: "o_cust", Type: base.TInt, NDV: 800, Lo: 0, Hi: 800},
			{Name: "o_amount", Type: base.TInt, NDV: 500, Lo: 1, Hi: 501},
			{Name: "o_region", Type: base.TInt, NDV: 8, Lo: 0, Hi: 8},
		},
	})
	sys.AddTable(md.TableSpec{
		Name: "customers", Rows: 800,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "c_id", Type: base.TInt, NDV: 800, Lo: 0, Hi: 800},
			{Name: "c_tier", Type: base.TInt, NDV: 4, Lo: 0, Hi: 4},
		},
	})
	sys.AddTable(md.TableSpec{
		Name: "regions", Rows: 8,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			{Name: "r_id", Type: base.TInt, NDV: 8, Lo: 0, Hi: 8},
			{Name: "r_population", Type: base.TInt, NDV: 8, Lo: 100, Hi: 900},
		},
	})
	sys.MustLoad(1)

	query := `
		SELECT c.c_tier, r.r_id, count(*) AS orders, sum(o.o_amount) AS revenue
		FROM orders o, customers c, regions r
		WHERE o.o_cust = c.c_id AND o.o_region = r.r_id AND o.o_amount > 250
		GROUP BY c.c_tier, r.r_id
		ORDER BY revenue DESC
		LIMIT 5`

	// Explain: the optimizer picks join order, join sides, motions and
	// aggregation strategy; the replicated dimension joins without any
	// data movement.
	plan, err := sys.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== plan ===")
	fmt.Println(plan)

	// Execute on the simulated cluster.
	res, err := sys.Run(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== results (tier, region, orders, revenue) ===")
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}
	fmt.Printf("\nexecution work: %d tuple-ops, %d network tuples\n",
		res.Stats.TupleOps, res.Stats.NetTuples)
}
