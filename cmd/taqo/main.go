// Command taqo measures cost-model accuracy (paper §6.2) on the TPC-DS
// testbed: it samples plans uniformly from the optimizer's search space,
// executes them on the simulated cluster and prints the correlation between
// estimated and actual cost rankings.
//
// Usage:
//
//	taqo [-queries=q3,q19,q25] [-samples=16] [-segments=16] [-scale=2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"orca/internal/experiments"
)

func main() {
	queries := flag.String("queries", "q3,q19,q25,q43,q71,q79", "comma-separated workload query names ('' = all)")
	samples := flag.Int("samples", 16, "plans sampled per query")
	segments := flag.Int("segments", 16, "cluster segments")
	scale := flag.Int("scale", 2, "data scale factor")
	seed := flag.Uint64("seed", 7, "data seed")
	flag.Parse()

	env, err := experiments.NewEnv(experiments.Config{
		Segments: *segments, Scale: *scale, Seed: *seed, Budget: 20_000_000,
	})
	fatal(err)

	var names []string
	if *queries != "" {
		names = strings.Split(*queries, ",")
	}
	rows, err := env.TAQO(names, *samples)
	fatal(err)

	fmt.Printf("%-6s %12s %10s %12s\n", "query", "correlation", "sampled", "plan-space")
	var sum float64
	for _, r := range rows {
		fmt.Printf("%-6s %12.3f %10d %12.0f\n", r.Query, r.Correlation, r.Sampled, r.SpaceSize)
		sum += r.Correlation
	}
	fmt.Printf("\nmean correlation: %.3f\n", sum/float64(len(rows)))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "taqo:", err)
		os.Exit(1)
	}
}
