// Command benchmarks regenerates the paper's evaluation tables and figures
// (§7) on the simulated testbed and prints them in the paper's terms.
//
// Usage:
//
//	benchmarks -experiment=fig12|opttime|fig13|fig14|fig15|taqo|memo|rules|serve|cache|all \
//	           [-segments=16] [-scale=2] [-budget=8000000] [-seed=N] [-json]
//
// With -json, experiments that define a machine-readable artifact write it to
// the working directory (memo → BENCH_memo.json, rules → BENCH_rules.json,
// serve → BENCH_serve.json, cache → BENCH_cache.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"orca/internal/experiments"
	"orca/internal/rival"
)

func main() {
	experiment := flag.String("experiment", "all", "fig12, opttime, fig13, fig14, fig15, taqo, memo, rules, serve, cache or all")
	segments := flag.Int("segments", 16, "number of cluster segments")
	scale := flag.Int("scale", 2, "data scale factor")
	budget := flag.Int64("budget", 8_000_000, "execution budget (work units) standing in for the paper's 10000s timeout")
	seed := flag.Uint64("seed", 20140622, "data generation seed")
	samples := flag.Int("taqo-samples", 12, "plans sampled per query for TAQO")
	jsonOut := flag.Bool("json", false, "also write machine-readable artifacts (memo → BENCH_memo.json)")
	flag.Parse()

	cfg := experiments.Config{Segments: *segments, Scale: *scale, Seed: *seed, Budget: *budget}
	fmt.Printf("# Orca reproduction benchmark harness\n")
	fmt.Printf("# segments=%d scale=%d budget=%d seed=%d\n\n", cfg.Segments, cfg.Scale, cfg.Budget, cfg.Seed)

	env, err := experiments.NewEnv(cfg)
	fatal(err)

	run := func(name string, f func(*experiments.Env) error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		fatal(f(env))
	}

	run("fig12", fig12)
	run("opttime", opttime)
	run("fig13", func(e *experiments.Env) error { return figRival(e, rival.Impala(), "Figure 13: HAWQ vs Impala") })
	run("fig14", func(e *experiments.Env) error { return figRival(e, rival.Stinger(), "Figure 14: HAWQ vs Stinger") })
	run("fig15", fig15)
	run("taqo", func(e *experiments.Env) error { return taqoExp(e, *samples) })
	run("memo", func(e *experiments.Env) error { return memoExp(e, *jsonOut) })
	run("rules", func(e *experiments.Env) error { return rulesExp(e, *jsonOut) })
	run("serve", func(e *experiments.Env) error { return serveExp(e, *jsonOut) })
	run("cache", func(e *experiments.Env) error { return cacheExp(e, *jsonOut) })
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmarks:", err)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

func fig12(env *experiments.Env) error {
	header("Figure 12: Speed-up ratio of Orca vs Planner (TPC-DS)")
	rows, err := env.Figure12()
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s %10s %s\n", "query", "orca-work", "planner-work", "speed-up", "")
	for _, r := range rows {
		mark := ""
		if r.PlannerTimedOut {
			mark = "  (timeout-capped, ≥)"
		}
		fmt.Printf("%-6s %12d %12d %9.1fx%s\n", r.Query, r.OrcaWork, r.PlannerWork, r.Speedup, mark)
	}
	s := experiments.Summarize(rows)
	fmt.Printf("\nsuite speed-up: %.1fx   geomean: %.1fx   same-or-better: %.0f%%   timeout-capped: %d/%d\n",
		s.SuiteSpeedup, s.GeoMeanSpeedup, 100*s.SameOrBetterFrac, s.TimeoutCapped, s.Queries)
	fmt.Printf("paper: 5x suite-wide, ~80%% same-or-better, 14/111 capped at 1000x\n\n")
	return nil
}

func opttime(env *experiments.Env) error {
	header("§7.2.2: optimization time and memory footprint (full rule set)")
	rows, err := env.OptimizationStats()
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %8s %8s %8s %12s\n", "query", "opt-time", "groups", "gexprs", "rules", "peak-mem")
	var totalTime float64
	var totalMem int64
	for _, r := range rows {
		fmt.Printf("%-6s %10s %8d %8d %8d %12d\n",
			r.Query, r.OptTime.Round(1000*1000), r.Groups, r.GroupExprs, r.RulesFired, r.PeakMem)
		totalTime += r.OptTime.Seconds()
		totalMem += r.PeakMem
	}
	n := float64(len(rows))
	fmt.Printf("\naverage optimization time: %.1f ms   average accounted memory: %.1f KB\n",
		1000*totalTime/n, float64(totalMem)/n/1024)
	fmt.Printf("paper (10TB testbed, 111 queries): ~4 s and ~200 MB average\n\n")
	return nil
}

func figRival(env *experiments.Env, p *rival.Profile, title string) error {
	header(title + " (TPC-DS subset the rival can plan)")
	rows, err := env.FigureRival(p)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s %10s %s\n", "query", "hawq-work", p.Name+"-work", "speed-up", "")
	wins := 0
	for _, r := range rows {
		mark := ""
		if r.RivalOOM {
			mark = "  (*) out of memory"
		} else if r.RivalTimedOut {
			mark = "  (timeout-capped)"
		}
		if r.Speedup >= 1 {
			wins++
		}
		fmt.Printf("%-6s %12d %12d %9.1fx%s\n", r.Query, r.HAWQWork, r.RivalWork, r.Speedup, mark)
	}
	fmt.Printf("\nHAWQ wins %d/%d; paper reports avg 6x vs Impala, 21x vs Stinger\n\n", wins, len(rows))
	return nil
}

func fig15(env *experiments.Env) error {
	header("Figure 15: TPC-DS query support (111-query expansion)")
	rows, err := env.Figure15()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s\n", "system", "optimize", "execute")
	for _, r := range rows {
		fmt.Printf("%-8s %10d %10d\n", r.System, r.Optimize, r.Execute)
	}
	fmt.Printf("\npaper: HAWQ 111/111, Impala 31/20, Presto 12/0, Stinger 19/19\n\n")
	return nil
}

func taqoExp(env *experiments.Env, samples int) error {
	header("§6.2 TAQO: cost-model accuracy (uniform plan sampling)")
	rows, err := env.TAQO([]string{"q3", "q19", "q25", "q43", "q71", "q79"}, samples)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %10s %12s\n", "query", "correlation", "sampled", "plan-space")
	var sum float64
	for _, r := range rows {
		fmt.Printf("%-6s %12.3f %10d %12.0f\n", r.Query, r.Correlation, r.Sampled, r.SpaceSize)
		sum += r.Correlation
	}
	fmt.Printf("\nmean correlation: %.3f (1.0 = cost model orders all plan pairs correctly)\n\n",
		sum/float64(len(rows)))
	return nil
}
