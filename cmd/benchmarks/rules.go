package main

// The rules experiment measures what the generated join-reordering rule
// family (defs/rules.opt: the mirror rotation, the bushy exchange, and
// select pushdown through joins) buys on n-relation TPC-DS star/chain
// joins: optimization time, memo growth, rule firings, and the chosen
// plan's cost, before (family disabled) and after (full rule set). With
// -json it writes BENCH_rules.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"orca/internal/core"
	"orca/internal/experiments"
	"orca/internal/md"
	"orca/internal/sql"
)

// newRuleFamily is the rule family introduced with the DSL expansion; the
// "before" variant disables exactly these, leaving the pre-existing rules
// (commutativity, left rotation, n-ary expansion) in place.
var newRuleFamily = []string{
	"JoinAssociativityRight", "JoinAssociativityExchange",
	"PushSelectThroughJoin", "PushSelectThroughGbAgg",
}

// ruleJoinStep is one relation added to the chain query, with the predicate
// that connects it to the relations before it.
type ruleJoinStep struct {
	table, alias, pred string
}

// ruleJoinChain is a TPC-DS join chain growing outward from store_sales:
// dimension lookups first (star), then the customer → address/demographics
// chain, then store_returns and its return-date dimension (snowflake).
var ruleJoinChain = []ruleJoinStep{
	{"store_sales", "ss", ""},
	{"date_dim", "d1", "d1.d_date_sk = ss.ss_sold_date_sk"},
	{"item", "i", "i.i_item_sk = ss.ss_item_sk"},
	{"store", "s", "s.s_store_sk = ss.ss_store_sk"},
	{"promotion", "p", "p.p_promo_sk = ss.ss_promo_sk"},
	{"customer", "c", "c.c_customer_sk = ss.ss_customer_sk"},
	{"customer_address", "ca", "ca.ca_address_sk = c.c_current_addr_sk"},
	{"customer_demographics", "cd", "cd.cd_demo_sk = c.c_current_cdemo_sk"},
	{"store_returns", "sr", "sr.sr_ticket_number = ss.ss_ticket_number AND sr.sr_item_sk = ss.ss_item_sk"},
	{"date_dim", "d2", "d2.d_date_sk = sr.sr_returned_date_sk"},
}

// ruleChainSQL renders the first n steps of the chain as a query.
func ruleChainSQL(n int) string {
	var from, where []string
	for _, s := range ruleJoinChain[:n] {
		from = append(from, s.table+" "+s.alias)
		if s.pred != "" {
			where = append(where, s.pred)
		}
	}
	return "SELECT ss.ss_item_sk FROM " + strings.Join(from, ", ") +
		" WHERE " + strings.Join(where, " AND ")
}

// ruleBenchRow is one (relations, variant) measurement in BENCH_rules.json.
type ruleBenchRow struct {
	Relations  int     `json:"relations"`
	Variant    string  `json:"variant"` // "before" or "after"
	OptNs      float64 `json:"opt_ns"`
	Groups     int     `json:"groups"`
	GroupExprs int     `json:"group_exprs"`
	RulesFired int64   `json:"rules_fired"`
	Cost       float64 `json:"cost"`
	Bounded    bool    `json:"bounded,omitempty"` // hit the step limit or group guard
}

// ruleBenchReport is the BENCH_rules.json document.
type ruleBenchReport struct {
	Suite     string         `json:"suite"`
	Family    []string       `json:"family"`
	MaxGroups int            `json:"max_groups_guard"`
	StepLimit int64          `json:"step_limit"`
	Note      string         `json:"note"`
	Rows      []ruleBenchRow `json:"rows"`
}

func rulesExp(env *experiments.Env, jsonOut bool) error {
	header("Rule-family cost/benefit: n-relation joins before/after the generated family")

	// Exhaustive reassociation is combinatorial past ~6 relations, so each
	// variant runs the paper's multi-stage mechanism: a seed stage with
	// join exploration off guarantees a complete plan quickly, then an
	// exploration stage searches under a deterministic scheduler step
	// limit, keeping the best plan found when the budget runs out. Both
	// variants get the same budget, so memo growth and plan cost measure
	// what the extra rules find per step, not unbounded search time.
	const maxGroups = 30000
	const stepLimit = 400_000
	seedDisable := append([]string{
		"JoinCommutativity", "JoinAssociativity",
		"ExpandNAryJoinDP", "ExpandNAryJoinLeftDeep",
	}, newRuleFamily...)

	report := ruleBenchReport{
		Suite:     "join-rule-family",
		Family:    newRuleFamily,
		MaxGroups: maxGroups,
		StepLimit: stepLimit,
		Note: "before = seed + step-limited exploration with the generated " +
			"join-reordering family disabled; after = the same ladder plus " +
			"one family stage over the same memo, so its plan is at least " +
			"as good. Chain grows outward from store_sales over the TPC-DS " +
			"catalog; optimization only, no data is loaded.",
	}

	fmt.Printf("%-4s %-8s %12s %8s %10s %12s %14s\n",
		"rels", "variant", "opt-ms", "groups", "exprs", "rules-fired", "cost")
	// "after" is a strict superset: it reruns "before"'s stage ladder and
	// adds one family stage on top of the same memo, so its plan can only
	// be at least as good.
	variants := []struct {
		name   string
		stages []core.Stage
	}{
		{"before", []core.Stage{
			{Name: "seed", DisabledRules: seedDisable},
			{Name: "explore", DisabledRules: newRuleFamily, StepLimit: stepLimit},
		}},
		{"after", []core.Stage{
			{Name: "seed", DisabledRules: seedDisable},
			{Name: "explore", DisabledRules: newRuleFamily, StepLimit: stepLimit},
			{Name: "family", StepLimit: stepLimit},
		}},
	}
	for _, n := range []int{5, 6, 7, 8, 10} {
		sqlText := ruleChainSQL(n)
		for _, v := range variants {
			q, err := sql.Bind(sqlText, md.NewAccessor(env.Cache, env.Provider), md.NewColumnFactory())
			if err != nil {
				return err
			}
			cfg := core.DefaultConfig(env.Cfg.Segments)
			cfg.MaxGroups = maxGroups
			cfg.Stages = v.stages
			start := time.Now()
			res, err := core.Optimize(q, cfg)
			if err != nil {
				return err
			}
			bounded := false
			for _, sr := range res.StageRuns {
				bounded = bounded || sr.Aborted || sr.TimedOut
			}
			row := ruleBenchRow{
				Relations:  n,
				Variant:    v.name,
				OptNs:      float64(time.Since(start).Nanoseconds()),
				Groups:     res.Groups,
				GroupExprs: res.GroupExprs,
				RulesFired: res.RulesFired,
				Cost:       res.Cost,
				Bounded:    bounded,
			}
			report.Rows = append(report.Rows, row)
			mark := ""
			if bounded {
				mark = "  (bounded)"
			}
			fmt.Printf("%-4d %-8s %12.1f %8d %10d %12d %14.0f%s\n",
				n, v.name, row.OptNs/1e6, row.Groups, row.GroupExprs, row.RulesFired, row.Cost, mark)
		}
	}

	if jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_rules.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("\nwrote BENCH_rules.json")
	}
	return nil
}
