package main

// The memo experiment measures the Memo's four concurrent hot paths (the
// paper's Figure-7 premise: optimization time should drop as cores are
// added, which requires the shared search structure not to serialize the
// workers) and a Figure-7-style whole-query scalability curve. With -json it
// writes BENCH_memo.json, including the pre-refactor baseline recorded when
// the globally-locked Memo was last measured on this testbed, so the speedup
// of the contention-free design is part of the artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"orca/internal/core"
	"orca/internal/experiments"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/sql"
	"orca/internal/tpcds"
)

// memoCPUCounts is the GOMAXPROCS ladder of the scalability curve.
var memoCPUCounts = []int{1, 2, 4, 8}

// preRefactorNsPerOp is the microbenchmark baseline of the globally-locked
// Memo (single mutex around the fingerprint table, the group array, and the
// applied-rule string maps), measured with the same benchmark bodies at
// -cpu=1,2,4,8 before the contention-free rewrite.
var preRefactorNsPerOp = map[string][]float64{
	"MemoInsertParallel": {968.1, 1205, 1271, 1760},
	"MemoInsertTarget":   {125.4, 137.8, 196.2, 249.5},
	"MemoGroupLookup":    {39.07, 41.34, 44.02, 47.63},
	"MemoRuleLedger":     {26.60, 28.99, 36.61, 42.15},
	"MemoContextProbe":   {169.5, 222.8, 275.2, 406.0},
}

// preRefactorQueryNs is the whole-query baseline: one optimization of q25
// with Workers=GOMAXPROCS on the pre-refactor Memo (indexes follow
// memoQueryWorkers).
var (
	memoQueryWorkers   = []int{1, 4, 8}
	preRefactorQueryNs = []float64{3647129594, 3860079582, 4381663836}
)

// memoBenchRow is one (benchmark, cpu-count) measurement in BENCH_memo.json.
type memoBenchRow struct {
	Name              string  `json:"name"`
	CPUs              int     `json:"cpus"`
	NsPerOp           float64 `json:"ns_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	SpeedupVs1Core    float64 `json:"speedup_vs_1_core"`
	BaselineNsPerOp   float64 `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// memoQueryRow is one point of the Figure-7-style whole-query curve.
type memoQueryRow struct {
	Query             string  `json:"query"`
	Workers           int     `json:"workers"`
	Ns                float64 `json:"ns"`
	SpeedupVs1Worker  float64 `json:"speedup_vs_1_worker"`
	BaselineNs        float64 `json:"baseline_ns,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// memoBenchReport is the BENCH_memo.json document.
type memoBenchReport struct {
	Suite      string         `json:"suite"`
	GOMAXPROCS int            `json:"host_gomaxprocs"`
	NumCPU     int            `json:"host_num_cpu"`
	Note       string         `json:"note"`
	Micro      []memoBenchRow `json:"microbenchmarks"`
	WholeQuery []memoQueryRow `json:"whole_query"`
}

// memoMicroBenchmarks mirrors internal/memo's BenchmarkMemo* bodies against
// the exported Memo API so cmd/benchmarks can run the same measurements
// in-process via testing.Benchmark.
func memoMicroBenchmarks() []struct {
	name string
	body func(b *testing.B)
} {
	leaf := func(m *memo.Memo) memo.GroupID {
		ge, err := m.InsertExpr(&ops.CTEConsumer{ID: 0}, nil, -1)
		fatal(err)
		return ge.Group().ID
	}
	return []struct {
		name string
		body func(b *testing.B)
	}{
		{"MemoInsertParallel", func(b *testing.B) {
			m := memo.New(&gpos.MemoryAccountant{})
			l := leaf(m)
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					if _, err := m.InsertExpr(&ops.Limit{Count: n / 2}, []memo.GroupID{l}, -1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}},
		{"MemoInsertTarget", func(b *testing.B) {
			m := memo.New(&gpos.MemoryAccountant{})
			l := leaf(m)
			ge, err := m.InsertExpr(&ops.Limit{Count: -1}, []memo.GroupID{l}, -1)
			fatal(err)
			target := ge.Group().ID
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					if _, err := m.InsertExpr(&ops.Limit{Count: n % 64}, []memo.GroupID{l}, target); err != nil {
						b.Fatal(err)
					}
				}
			})
		}},
		{"MemoGroupLookup", func(b *testing.B) {
			m := memo.New(&gpos.MemoryAccountant{})
			const groups = 1024
			for i := 0; i < groups; i++ {
				_, err := m.InsertExpr(&ops.CTEConsumer{ID: i}, nil, -1)
				fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if m.Group(memo.GroupID(i%groups)).NumExprs() == 0 {
						b.Fatal("empty group")
					}
					i++
				}
			})
		}},
		{"MemoRuleLedger", func(b *testing.B) {
			m := memo.New(&gpos.MemoryAccountant{})
			l := leaf(m)
			ge, err := m.InsertExpr(&ops.Limit{Count: 1}, []memo.GroupID{l}, -1)
			fatal(err)
			ge.MarkApplied(0)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if ge.Applied(i%16) != (i%16 == 0) {
						b.Fatal("ledger lied")
					}
					i++
				}
			})
		}},
		{"MemoContextProbe", func(b *testing.B) {
			m := memo.New(&gpos.MemoryAccountant{})
			l := leaf(m)
			ge, err := m.InsertExpr(&ops.Limit{Count: 1}, []memo.GroupID{l}, -1)
			fatal(err)
			g := ge.Group()
			reqs := []props.Required{
				{Dist: props.SingletonDist},
				{Dist: props.AnyDist},
				{Dist: props.SingletonDist, Order: props.MakeOrder(1)},
				{Dist: props.ReplicatedDist, Rewindable: true},
			}
			for _, r := range reqs {
				g.Context(r)
				ge.AddCandidate(r, memo.Candidate{Cost: 10})
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					r := reqs[i%len(reqs)]
					if g.LookupContext(r) == nil || len(ge.Candidates(r)) == 0 {
						b.Fatal("probe lost")
					}
					i++
				}
			})
		}},
	}
}

// memoExp runs the Memo scalability experiment: the microbenchmark ladder at
// GOMAXPROCS 1,2,4,8 plus the whole-query curve, printed as a table and, in
// -json mode, written to BENCH_memo.json.
func memoExp(env *experiments.Env, jsonOut bool) error {
	header("Memo scalability: hot-path microbenchmarks and Figure-7-style curve")
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	report := memoBenchReport{
		Suite:      "memo-hot-paths",
		GOMAXPROCS: prev,
		NumCPU:     runtime.NumCPU(),
		Note: "cpus = GOMAXPROCS during the run; on hosts with fewer physical " +
			"cores the ladder measures oversubscribed scheduling, which is the " +
			"contention-sensitive regime. baseline_* fields are the pre-refactor " +
			"globally-locked Memo measured with identical benchmark bodies.",
	}

	fmt.Printf("%-22s %5s %12s %10s %10s %10s %10s\n",
		"benchmark", "cpus", "ns/op", "B/op", "allocs/op", "vs-1core", "vs-base")
	for _, bench := range memoMicroBenchmarks() {
		var oneCore float64
		for i, cpus := range memoCPUCounts {
			runtime.GOMAXPROCS(cpus)
			r := testing.Benchmark(bench.body)
			row := memoBenchRow{
				Name:        bench.name,
				CPUs:        cpus,
				NsPerOp:     float64(r.NsPerOp()),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if i == 0 {
				oneCore = row.NsPerOp
			}
			if row.NsPerOp > 0 {
				row.SpeedupVs1Core = oneCore / row.NsPerOp
			}
			if base := preRefactorNsPerOp[bench.name]; len(base) > i && row.NsPerOp > 0 {
				row.BaselineNsPerOp = base[i]
				row.SpeedupVsBaseline = base[i] / row.NsPerOp
			}
			report.Micro = append(report.Micro, row)
			fmt.Printf("%-22s %5d %12.1f %10d %10d %9.2fx %9.2fx\n",
				row.Name, row.CPUs, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp,
				row.SpeedupVs1Core, row.SpeedupVsBaseline)
		}
	}
	runtime.GOMAXPROCS(prev)

	var sqlText string
	for _, wq := range tpcds.Workload() {
		if wq.Name == "q25" {
			sqlText = wq.SQL
		}
	}
	fmt.Printf("\n%-6s %8s %14s %10s %10s\n", "query", "workers", "opt-ns", "vs-1wkr", "vs-base")
	var oneWorker float64
	for i, workers := range memoQueryWorkers {
		runtime.GOMAXPROCS(workers)
		q, err := sql.Bind(sqlText, md.NewAccessor(env.Cache, env.Provider), md.NewColumnFactory())
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(env.Cfg.Segments)
		cfg.Workers = workers
		start := time.Now()
		if _, err := core.Optimize(q, cfg); err != nil {
			return err
		}
		row := memoQueryRow{Query: "q25", Workers: workers, Ns: float64(time.Since(start).Nanoseconds())}
		if i == 0 {
			oneWorker = row.Ns
		}
		if row.Ns > 0 {
			row.SpeedupVs1Worker = oneWorker / row.Ns
			row.BaselineNs = preRefactorQueryNs[i]
			row.SpeedupVsBaseline = row.BaselineNs / row.Ns
		}
		report.WholeQuery = append(report.WholeQuery, row)
		fmt.Printf("%-6s %8d %14.0f %9.2fx %9.2fx\n",
			row.Query, row.Workers, row.Ns, row.SpeedupVs1Worker, row.SpeedupVsBaseline)
	}
	runtime.GOMAXPROCS(prev)
	fmt.Println()

	if jsonOut {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_memo.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_memo.json")
	}
	return nil
}
