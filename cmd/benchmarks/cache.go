package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"orca/internal/core"
	"orca/internal/experiments"
	"orca/internal/serve"
)

// cacheBenchReport is the BENCH_cache.json document: the parameterized plan
// cache's acceptance run. A repeated-shape storm — the same query shape with
// per-request constants — is fired twice at identical admission limits:
// cold (plan cache off, every request pays for search) and warm (cache on,
// primed, every request rebinds a cached plan). The acceptance floor is a
// >= 10x p50 latency drop and >= 90% hit ratio, plus zero stale hits after a
// metadata version bump.
type cacheBenchReport struct {
	Suite   string           `json:"suite"`
	Config  cacheBenchConfig `json:"config"`
	Cold    cachePhaseResult `json:"cold"`
	Warm    cachePhaseResult `json:"warm"`
	Warmup  cacheWarmupStats `json:"warm_cache_stats"`
	P50Gain float64          `json:"p50_speedup"`
	Stale   cacheStaleResult `json:"md_bump"`
	Pass    cachePassResult  `json:"pass"`
	Note    string           `json:"note"`
}

type cacheBenchConfig struct {
	StormRequests int    `json:"storm_requests"`
	MaxInFlight   int    `json:"max_in_flight"`
	MaxQueue      int    `json:"max_queue"`
	ShapeSQL      string `json:"shape_sql"`
}

type cachePhaseResult struct {
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	WallMS     int64   `json:"wall_ms"`
	OptsPerSec float64 `json:"optimizations_per_sec"`
}

type cacheWarmupStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	Entries  int64   `json:"entries"`
	Bytes    int64   `json:"bytes"`
}

type cacheStaleResult struct {
	BumpedRelation string `json:"bumped_relation"`
	StateAfterBump string `json:"cache_state_after_bump"`
	StaleHits      int    `json:"stale_hits"`
	// ReseedState is the request after the post-bump one: the post-bump
	// request observes the stamp advance during its own bind and is
	// deliberately never cached (its session straddled the bump), so this
	// one pays for search and seeds the fresh-stamp entry.
	ReseedState     string `json:"cache_state_reseed"`
	RewarmedState   string `json:"cache_state_rewarmed"`
	EvictionsViaKey bool   `json:"stale_entries_unreachable"`
}

type cachePassResult struct {
	P50Speedup10x bool `json:"p50_speedup_10x"`
	HitRatio90    bool `json:"hit_ratio_90"`
	ZeroStaleHits bool `json:"zero_stale_hits"`
}

// cacheShapeSQL is TPC-DS q3's star join with the manager-id literal left as
// a %d hole. Values 8..15 share one selectivity bucket (same sign, same bit
// length), so every instance of the storm maps to one cache entry.
const cacheShapeSQL = `
	SELECT dt.d_year, i.i_brand_id, sum(ss.ss_sales_price) AS sum_agg
	FROM date_dim dt, store_sales ss, item i
	WHERE dt.d_date_sk = ss.ss_sold_date_sk
	  AND ss.ss_item_sk = i.i_item_sk
	  AND i.i_manager_id = %d AND dt.d_moy = 11
	GROUP BY dt.d_year, i.i_brand_id
	ORDER BY dt.d_year, sum_agg DESC, i.i_brand_id
	LIMIT 100`

// cacheExp measures the parameterized plan cache end to end and writes
// BENCH_cache.json in -json mode.
func cacheExp(env *experiments.Env, jsonOut bool) error {
	header("parameterized plan cache: cold vs warm repeated-shape storm")

	const storm = 96
	sqlFor := func(i int) string { return fmt.Sprintf(cacheShapeSQL, 8+i%8) }

	mkConfig := func(cacheOff bool) serve.Config {
		base := core.DefaultConfig(env.Cfg.Segments)
		base.MDLookupTimeout = 2 * time.Second
		return serve.Config{
			Base: base,
			Admission: serve.AdmissionConfig{
				MaxInFlight:  4,
				MaxQueue:     storm,
				QueueTimeout: 30 * time.Second,
			},
			RequestTimeout: 30 * time.Second,
			MinBudgetFrac:  1, // fixed budgets: the comparison is search vs rebind
			Provider:       env.Provider,
			Cache:          env.Cache,
			PlanCacheOff:   cacheOff,
		}
	}
	report := cacheBenchReport{
		Suite: "plan-cache",
		Config: cacheBenchConfig{
			StormRequests: storm,
			MaxInFlight:   4,
			MaxQueue:      storm,
			ShapeSQL:      fmt.Sprintf(cacheShapeSQL, 8),
		},
		Note: "cold storm runs with -plan-cache-off (every request searches); warm " +
			"storm reuses one parameterized plan across per-request constants in " +
			"the same selectivity bucket. identical admission limits both phases.",
	}

	// --- Cold phase: plan cache off ---
	coldSrv, coldURL, coldStop, err := bootServer(mkConfig(true))
	if err != nil {
		return err
	}
	report.Cold, err = runCachePhase(coldURL, sqlFor, storm)
	_ = coldSrv
	coldStop()
	if err != nil {
		return err
	}
	fmt.Printf("cold (cache off): ok=%d/%d  p50=%.2fms p99=%.2fms  %.1f optimizations/sec\n",
		report.Cold.OK, storm, report.Cold.P50MS, report.Cold.P99MS, report.Cold.OptsPerSec)

	// --- Warm phase: cache on, primed by one request ---
	warmSrv, warmURL, warmStop, err := bootServer(mkConfig(false))
	if err != nil {
		return err
	}
	defer warmStop()
	if _, err := postOptimize(warmURL, sqlFor(0)); err != nil {
		return fmt.Errorf("cache experiment: priming request: %w", err)
	}
	report.Warm, err = runCachePhase(warmURL, sqlFor, storm)
	if err != nil {
		return err
	}
	st := warmSrv.PlanCache().Stats()
	report.Warmup = cacheWarmupStats{
		Hits:    st.Hits,
		Misses:  st.Misses,
		Entries: st.Entries,
		Bytes:   st.Bytes,
	}
	if st.Hits+st.Misses > 0 {
		report.Warmup.HitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	if report.Warm.P50MS > 0 {
		report.P50Gain = report.Cold.P50MS / report.Warm.P50MS
	}
	fmt.Printf("warm (cache on):  ok=%d/%d  p50=%.2fms p99=%.2fms  %.1f optimizations/sec\n",
		report.Warm.OK, storm, report.Warm.P50MS, report.Warm.P99MS, report.Warm.OptsPerSec)
	fmt.Printf("  hit ratio %.1f%% (%d hits / %d misses, %d entries, %d bytes)  p50 speedup %.1fx\n",
		100*report.Warmup.HitRatio, st.Hits, st.Misses, st.Entries, st.Bytes, report.P50Gain)

	// --- Metadata invalidation: a version bump must orphan the warm entry ---
	report.Stale.BumpedRelation = "item"
	if _, err := env.Provider.BumpRelationVersion("item"); err != nil {
		return fmt.Errorf("cache experiment: bump: %w", err)
	}
	state, err := postOptimize(warmURL, sqlFor(0))
	if err != nil {
		return fmt.Errorf("cache experiment: post-bump request: %w", err)
	}
	report.Stale.StateAfterBump = state
	if state == "hit" {
		report.Stale.StaleHits = 1
	}
	state, err = postOptimize(warmURL, sqlFor(1))
	if err != nil {
		return fmt.Errorf("cache experiment: re-seed request: %w", err)
	}
	report.Stale.ReseedState = state
	state, err = postOptimize(warmURL, sqlFor(2))
	if err != nil {
		return fmt.Errorf("cache experiment: re-warm request: %w", err)
	}
	report.Stale.RewarmedState = state
	report.Stale.EvictionsViaKey = report.Stale.StaleHits == 0
	fmt.Printf("md bump: first request after DDL: %s (stale hits %d), re-seed: %s, then: %s\n",
		report.Stale.StateAfterBump, report.Stale.StaleHits,
		report.Stale.ReseedState, report.Stale.RewarmedState)

	report.Pass = cachePassResult{
		P50Speedup10x: report.P50Gain >= 10,
		HitRatio90:    report.Warmup.HitRatio >= 0.90,
		ZeroStaleHits: report.Stale.StaleHits == 0,
	}
	fmt.Printf("pass: p50-speedup-10x=%v hit-ratio-90=%v zero-stale-hits=%v\n\n",
		report.Pass.P50Speedup10x, report.Pass.HitRatio90, report.Pass.ZeroStaleHits)

	if jsonOut {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_cache.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_cache.json")
	}
	if !report.Pass.P50Speedup10x || !report.Pass.HitRatio90 || !report.Pass.ZeroStaleHits {
		return fmt.Errorf("cache experiment: acceptance floor missed: %+v", report.Pass)
	}
	return nil
}

// runCachePhase fires the repeated-shape storm and reduces it to the phase
// metrics.
func runCachePhase(url string, sqlFor func(int) string, n int) (cachePhaseResult, error) {
	t0 := time.Now()
	results := fireStormVaried(url, sqlFor, n)
	wall := time.Since(t0)
	out := cachePhaseResult{Requests: n, WallMS: wall.Milliseconds()}
	var lat []time.Duration
	for _, r := range results {
		if r.status == http.StatusOK {
			out.OK++
		}
		lat = append(lat, r.latency)
	}
	if out.OK != n {
		return out, fmt.Errorf("cache experiment: %d/%d requests failed", n-out.OK, n)
	}
	out.P50MS = percentile(lat, 0.50)
	out.P99MS = percentile(lat, 0.99)
	if wall > 0 {
		out.OptsPerSec = float64(out.OK) / wall.Seconds()
	}
	return out, nil
}

// bootServer starts a serve instance on an ephemeral port and returns a stop
// function that drains it.
func bootServer(cfg serve.Config) (*serve.Server, string, func(), error) {
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	addr := ""
	for i := 0; i < 500 && addr == ""; i++ {
		time.Sleep(2 * time.Millisecond)
		addr = srv.BoundAddr()
	}
	if addr == "" {
		return nil, "", nil, fmt.Errorf("server never bound")
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}
	return srv, "http://" + addr, stop, nil
}

// postOptimize sends one optimize request and returns the X-Orca-Cache
// header value.
func postOptimize(url, sqlText string) (string, error) {
	body, _ := json.Marshal(map[string]any{"sql": sqlText})
	resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Orca-Cache"), nil
}
