package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"orca/internal/core"
	"orca/internal/experiments"
	"orca/internal/fault"
	"orca/internal/md"
	"orca/internal/serve"
	"orca/internal/tpcds"
)

// serveBenchReport is the BENCH_serve.json document: the overload-resilience
// acceptance run for the orcad service layer — a request storm at 4x the
// admission limit, latency percentiles against the configured deadline, and
// a mid-storm drain.
type serveBenchReport struct {
	Suite      string                `json:"suite"`
	Config     serveBenchConfig      `json:"config"`
	Storm      serveStormResult      `json:"storm"`
	Drain      serveDrainResult      `json:"drain"`
	Throughput serveThroughputResult `json:"sustained_throughput"`
	Note       string                `json:"note"`
}

// serveThroughputResult is the warm-cache storm variant: the same sustained
// repeated-shape load at the same admission limits, with the parameterized
// plan cache off and then on, recording the optimizations/sec the cache buys.
type serveThroughputResult struct {
	Requests           int     `json:"requests"`
	CacheOffOptsPerSec float64 `json:"cache_off_opts_per_sec"`
	CacheOnOptsPerSec  float64 `json:"cache_on_opts_per_sec"`
	CacheOnHitRatio    float64 `json:"cache_on_hit_ratio"`
	Gain               float64 `json:"throughput_gain"`
}

type serveBenchConfig struct {
	MaxInFlight      int     `json:"max_in_flight"`
	MaxQueue         int     `json:"max_queue"`
	QueueTimeoutMS   int64   `json:"queue_timeout_ms"`
	RequestTimeoutMS int64   `json:"request_timeout_ms"`
	MinBudgetFrac    float64 `json:"min_budget_frac"`
	StormRequests    int     `json:"storm_requests"`
}

type serveStormResult struct {
	Requests       int     `json:"requests"`
	OK             int     `json:"ok"`
	Degraded       int     `json:"degraded"`
	Shed           int     `json:"shed"`
	OtherStatus    int     `json:"other_status"`
	UntypedErrors  int     `json:"untyped_errors"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	DeadlineMS     int64   `json:"deadline_ms"`
	P99WithinBound bool    `json:"p99_within_bound"`
}

type serveDrainResult struct {
	InFlightAtDrain int64 `json:"in_flight_at_drain"`
	Completed       int   `json:"completed"`
	ShedDraining    int   `json:"shed_draining"`
	OtherAnswered   int   `json:"other_answered"`
	Refused         int   `json:"refused"`
	// DroppedInFlight is the drain invariant: requests the server admitted
	// but never answered (admitted - completed - failed over the whole run).
	DroppedInFlight int64 `json:"dropped_in_flight"`
	DrainMS         int64 `json:"drain_ms"`
	CleanShutdown   bool  `json:"clean_shutdown"`
}

// serveResult is one request's outcome in a storm.
type serveResult struct {
	status   int
	degraded bool
	typed    bool // 2xx, or a parseable taxonomy error body
	latency  time.Duration
}

func percentile(d []time.Duration, p float64) float64 {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1000
}

// fireStorm launches n concurrent optimize requests at once and collects
// every outcome.
func fireStorm(url, sqlText string, n int) []serveResult {
	return fireStormVaried(url, func(int) string { return sqlText }, n)
}

// fireStormVaried is fireStorm with per-request SQL — the plan-cache storms
// vary a constant per request to prove hits parameterize rather than merely
// memoize the text.
func fireStormVaried(url string, sqlFor func(int) string, n int) []serveResult {
	results := make([]serveResult, n)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			body, _ := json.Marshal(map[string]any{"sql": sqlFor(i)})
			start.Wait()
			t0 := time.Now()
			resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
			results[i].latency = time.Since(t0)
			if err != nil {
				results[i].status = -1 // connection-level drop
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			results[i].status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				var out struct {
					Degraded bool `json:"degraded"`
				}
				results[i].typed = json.Unmarshal(data, &out) == nil
				results[i].degraded = out.Degraded
				return
			}
			var wrap struct {
				Error *struct {
					Component string `json:"component"`
					Code      string `json:"code"`
				} `json:"error"`
			}
			results[i].typed = json.Unmarshal(data, &wrap) == nil &&
				wrap.Error != nil && wrap.Error.Component != "" && wrap.Error.Code != ""
		}(i)
	}
	start.Done()
	done.Wait()
	return results
}

// serveExp measures the service layer's overload behavior: a storm at 4x the
// admission limit against a live server (every response must be a plan or a
// typed taxonomy error, p99 bounded by the request deadline plus queue wait),
// then a second storm interrupted by a graceful drain (nothing in flight may
// be dropped). In -json mode the report is written to BENCH_serve.json.
func serveExp(env *experiments.Env, jsonOut bool) error {
	header("orcad service: admission storm, deadline bound, graceful drain")

	var sqlText string
	for _, wq := range tpcds.Workload() {
		if wq.Name == "q3" {
			sqlText = wq.SQL
		}
	}

	base := core.DefaultConfig(env.Cfg.Segments)
	base.MDLookupTimeout = 2 * time.Second
	base.MDRetry = md.RetryPolicy{MaxAttempts: 3, InitialBackoff: 2 * time.Millisecond}
	// Tight enough that the load-scaled budget (x0.25 at full admission load)
	// forces some storm requests onto the degradation ladder, demonstrating
	// shed AND degrade under overload.
	base.MaxGroups = 16

	// The warm-cache TPC-DS queries optimize in microseconds, which no storm
	// can overload; the serve/handler/slow fault point stands in for the
	// expensive queries a real mixed workload contains (150ms on half the
	// admitted requests, seeded for reproducibility).
	specs, err := fault.ParseSpecs("serve/handler/slow:delay=150ms:prob=0.5:seed=20140622")
	if err != nil {
		return err
	}
	disarm, err := fault.Arm(specs)
	if err != nil {
		return err
	}
	defer disarm()

	cfg := serve.Config{
		Base: base,
		Admission: serve.AdmissionConfig{
			MaxInFlight:  2,
			MaxQueue:     2,
			QueueTimeout: 250 * time.Millisecond,
		},
		RequestTimeout: 2 * time.Second,
		MinBudgetFrac:  0.25,
		Provider:       env.Provider,
		Cache:          env.Cache,
	}
	capacity := cfg.Admission.MaxInFlight + cfg.Admission.MaxQueue
	storm := 4 * capacity

	report := serveBenchReport{
		Suite: "serve-overload",
		Config: serveBenchConfig{
			MaxInFlight:      cfg.Admission.MaxInFlight,
			MaxQueue:         cfg.Admission.MaxQueue,
			QueueTimeoutMS:   cfg.Admission.QueueTimeout.Milliseconds(),
			RequestTimeoutMS: cfg.RequestTimeout.Milliseconds(),
			MinBudgetFrac:    cfg.MinBudgetFrac,
			StormRequests:    storm,
		},
		Note: "storm fires 4x the admission capacity at once; the bound on p99 " +
			"is request timeout + queue timeout + 500ms scheduling slack. drain " +
			"interrupts a second storm with Shutdown mid-flight.",
	}

	// --- Storm phase ---
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ListenAndServe("127.0.0.1:0") }()
	addr := ""
	for i := 0; i < 500 && addr == ""; i++ {
		time.Sleep(2 * time.Millisecond)
		addr = srv.BoundAddr()
	}
	if addr == "" {
		return fmt.Errorf("serve experiment: server never bound")
	}
	url := "http://" + addr

	results := fireStorm(url, sqlText, storm)
	var lat []time.Duration
	for _, r := range results {
		lat = append(lat, r.latency)
		switch {
		case r.status == http.StatusOK:
			report.Storm.OK++
			if r.degraded {
				report.Storm.Degraded++
			}
		case r.status == http.StatusTooManyRequests:
			report.Storm.Shed++
		default:
			report.Storm.OtherStatus++
		}
		if !r.typed {
			report.Storm.UntypedErrors++
		}
	}
	report.Storm.Requests = storm
	report.Storm.P50MS = percentile(lat, 0.50)
	report.Storm.P95MS = percentile(lat, 0.95)
	report.Storm.P99MS = percentile(lat, 0.99)
	report.Storm.DeadlineMS = cfg.RequestTimeout.Milliseconds()
	bound := cfg.RequestTimeout + cfg.Admission.QueueTimeout + 500*time.Millisecond
	report.Storm.P99WithinBound = report.Storm.P99MS <= float64(bound.Milliseconds())

	fmt.Printf("storm: %d requests at 4x capacity (%d in flight + %d queued)\n",
		storm, cfg.Admission.MaxInFlight, cfg.Admission.MaxQueue)
	fmt.Printf("  ok=%d (degraded %d)  shed=%d  other=%d  untyped=%d\n",
		report.Storm.OK, report.Storm.Degraded, report.Storm.Shed,
		report.Storm.OtherStatus, report.Storm.UntypedErrors)
	fmt.Printf("  latency p50=%.1fms p95=%.1fms p99=%.1fms (bound %dms: %v)\n",
		report.Storm.P50MS, report.Storm.P95MS, report.Storm.P99MS,
		bound.Milliseconds(), report.Storm.P99WithinBound)

	// --- Drain phase: SIGTERM mid-storm (Shutdown is orcad's SIGTERM path) ---
	drainResults := make(chan []serveResult, 1)
	go func() { drainResults <- fireStorm(url, sqlText, storm) }()
	for i := 0; i < 500 && srv.Vars().InFlight.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	report.Drain.InFlightAtDrain = srv.Vars().InFlight.Load()
	t0 := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	report.Drain.DrainMS = time.Since(t0).Milliseconds()
	report.Drain.CleanShutdown = shutdownErr == nil
	<-serveDone
	for _, r := range <-drainResults {
		switch {
		case r.status == http.StatusOK:
			report.Drain.Completed++
		case r.status == http.StatusServiceUnavailable || r.status == http.StatusTooManyRequests:
			report.Drain.ShedDraining++
		case r.status == -1:
			// Connection refused once the listener closed — equivalent to a
			// shed from the client's perspective, and never an admitted
			// request.
			report.Drain.Refused++
		default:
			report.Drain.OtherAnswered++
		}
	}
	snap := srv.Vars().Snapshot()
	report.Drain.DroppedInFlight = snap["admitted"] - snap["completed"] - snap["failed"]

	fmt.Printf("drain: shutdown with %d in flight: completed=%d shed=%d refused=%d other=%d dropped=%d in %dms (clean=%v)\n\n",
		report.Drain.InFlightAtDrain, report.Drain.Completed, report.Drain.ShedDraining,
		report.Drain.Refused, report.Drain.OtherAnswered, report.Drain.DroppedInFlight,
		report.Drain.DrainMS, report.Drain.CleanShutdown)

	// --- Sustained-throughput phase: the warm-cache storm variant ---
	// The slow-handler fault stood in for expensive queries above; here the
	// comparison is real search cost vs cache rebind, so it comes off.
	disarm()
	report.Throughput, err = serveThroughputPhase(cfg, sqlText, 4*storm)
	if err != nil {
		return err
	}
	fmt.Printf("sustained storm (%d requests, same admission limits): %.1f optimizations/sec cache-off, %.1f cache-on (%.1fx, hit ratio %.1f%%)\n\n",
		report.Throughput.Requests, report.Throughput.CacheOffOptsPerSec,
		report.Throughput.CacheOnOptsPerSec, report.Throughput.Gain,
		100*report.Throughput.CacheOnHitRatio)

	if report.Storm.UntypedErrors > 0 || report.Storm.OtherStatus > 0 {
		return fmt.Errorf("serve experiment: %d untyped and %d out-of-taxonomy responses",
			report.Storm.UntypedErrors, report.Storm.OtherStatus)
	}
	if report.Drain.DroppedInFlight != 0 || !report.Drain.CleanShutdown {
		return fmt.Errorf("serve experiment: drain dropped %d admitted requests (clean=%v, err=%v)",
			report.Drain.DroppedInFlight, report.Drain.CleanShutdown, shutdownErr)
	}

	if jsonOut {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_serve.json")
	}
	return nil
}

// serveThroughputPhase runs the same repeated-shape storm against two fresh
// servers differing only in PlanCacheOff, with generous shed-free queueing
// so throughput measures optimization work, not admission policy.
func serveThroughputPhase(cfg serve.Config, sqlText string, n int) (serveThroughputResult, error) {
	out := serveThroughputResult{Requests: n}
	run := func(cacheOff bool) (float64, float64, error) {
		c := cfg
		c.PlanCacheOff = cacheOff
		// The overload knobs above exist to force shed/degrade; degraded
		// plans are never cached, so lift them — same MaxInFlight, but
		// shed-free queueing and full budgets.
		c.Base.MaxGroups = 0
		c.MinBudgetFrac = 1
		c.Admission.MaxQueue = n
		c.Admission.QueueTimeout = 60 * time.Second
		c.RequestTimeout = 60 * time.Second
		srv, url, stop, err := bootServer(c)
		if err != nil {
			return 0, 0, err
		}
		defer stop()
		t0 := time.Now()
		results := fireStorm(url, sqlText, n)
		wall := time.Since(t0)
		ok := 0
		for _, r := range results {
			if r.status == http.StatusOK {
				ok++
			}
		}
		if ok != n {
			return 0, 0, fmt.Errorf("throughput phase (cacheOff=%v): %d/%d failed", cacheOff, n-ok, n)
		}
		st := srv.PlanCache().Stats()
		ratio := 0.0
		if st.Hits+st.Misses > 0 {
			ratio = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		return float64(ok) / wall.Seconds(), ratio, nil
	}
	var err error
	if out.CacheOffOptsPerSec, _, err = run(true); err != nil {
		return out, err
	}
	if out.CacheOnOptsPerSec, out.CacheOnHitRatio, err = run(false); err != nil {
		return out, err
	}
	if out.CacheOffOptsPerSec > 0 {
		out.Gain = out.CacheOnOptsPerSec / out.CacheOffOptsPerSec
	}
	return out, nil
}
