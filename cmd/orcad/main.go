// Command orcad runs the optimizer as a long-lived service — the "Orca as
// a standalone product" deployment the paper's DXL interface enables (§3),
// hardened for overload. It serves:
//
//	POST /optimize      {"sql": "...", "timeout_ms": 500, "emit_dxl": true}
//	POST /optimize/dxl  a raw DXL query document; answers with the DXL plan
//	GET  /healthz       liveness (200 while the process runs)
//	GET  /readyz        readiness (503 once draining)
//	GET  /varz          counters: admitted, shed, degraded, panicked, ...
//
// Robustness posture (paper §6.1, lifted from per-query to per-server):
// bounded admission with queue-deadline shedding, per-request deadlines,
// load-scaled search budgets, metadata retry with backoff, per-request
// panic containment with AMPERe dumps, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	orcad -metadata=catalog.dxl -addr=:8080
//	orcad -demo-catalog -addr=127.0.0.1:0 -addr-file=/tmp/orcad.addr
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/fault"
	"orca/internal/md"
	"orca/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	metadata := flag.String("metadata", "", "DXL metadata file (the file-based MD provider)")
	demoCatalog := flag.Bool("demo-catalog", false, "serve the paper's demo catalog (t1, t2) instead of -metadata")
	segments := flag.Int("segments", 16, "target cluster segment count")
	workers := flag.Int("workers", 1, "optimization job-scheduler workers per request")

	maxInFlight := flag.Int("max-in-flight", 4, "requests optimizing concurrently")
	maxQueue := flag.Int("max-queue", 8, "requests allowed to wait for a slot (0 = shed immediately)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "longest a request may wait for a slot before shedding")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline ceiling")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "in-flight drain budget on shutdown")
	minBudgetFrac := flag.Float64("min-budget-frac", 0.25, "budget fraction at full admission load (1 disables scaling)")

	memBudget := flag.Int64("memory-budget", 0, "per-request optimization memory budget in bytes (0 = unlimited)")
	maxGroups := flag.Int("max-groups", 0, "per-request Memo group cap (0 = unlimited)")
	// Unlike cmd/orca, the service never runs metadata lookups unbounded: a
	// wedged provider must cost one lookup timeout, not a concurrency slot
	// forever. Zero means "unbounded" in core.Config, so orcad defaults the
	// flag itself to a bound.
	mdTimeout := flag.Duration("md-timeout", 2*time.Second, "per-lookup metadata provider timeout (must be > 0)")
	mdRetries := flag.Int("md-retries", 3, "max attempts for transient metadata lookup failures (1 = no retry)")
	mdBackoff := flag.Duration("md-backoff", 5*time.Millisecond, "initial retry backoff (doubles per retry, jittered)")
	faults := flag.String("faults", os.Getenv("ORCA_FAULTS"),
		"fault-injection schedule, e.g. 'serve/admission/reject:error:prob=0.1:seed=7' (defaults to $ORCA_FAULTS)")
	dumpDir := flag.String("dump", "", "directory for AMPERe failure dumps")
	planCacheBytes := flag.Int64("plan-cache-bytes", serve.DefaultPlanCacheBytes,
		"parameterized plan cache byte budget (0 picks the default)")
	planCacheOff := flag.Bool("plan-cache-off", false, "disable the parameterized plan cache")
	flag.Parse()

	if *mdTimeout <= 0 {
		fatal(fmt.Errorf("-md-timeout must be > 0 (the service never runs unbounded lookups)"))
	}

	var provider md.Provider
	switch {
	case *demoCatalog:
		provider = demoProvider()
	case *metadata != "":
		p, err := dxl.FileProvider(*metadata)
		fatal(err)
		provider = p
	default:
		flag.Usage()
		os.Exit(2)
	}

	baseCfg := core.DefaultConfig(*segments)
	baseCfg.Workers = *workers
	baseCfg.MemoryBudget = *memBudget
	baseCfg.MaxGroups = *maxGroups
	baseCfg.MDLookupTimeout = *mdTimeout
	baseCfg.MDRetry = md.RetryPolicy{MaxAttempts: *mdRetries, InitialBackoff: *mdBackoff}
	fatal(baseCfg.Validate())

	if *faults != "" {
		specs, err := fault.ParseSpecs(*faults)
		fatal(err)
		disarm, err := fault.Arm(specs)
		fatal(err)
		defer disarm()
	}

	srv, err := serve.New(serve.Config{
		Base: baseCfg,
		Admission: serve.AdmissionConfig{
			MaxInFlight:  *maxInFlight,
			MaxQueue:     *maxQueue,
			QueueTimeout: *queueTimeout,
		},
		RequestTimeout: *reqTimeout,
		MinBudgetFrac:  *minBudgetFrac,
		DumpDir:        *dumpDir,
		PlanCacheBytes: *planCacheBytes,
		PlanCacheOff:   *planCacheOff,
		Provider:       provider,
	})
	fatal(err)

	l, err := net.Listen("tcp", *addr)
	fatal(err)
	fmt.Fprintln(os.Stderr, "orcad: listening on", l.Addr())
	if *addrFile != "" {
		fatal(os.WriteFile(*addrFile, []byte(l.Addr().String()), 0o644))
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "orcad: %v: draining (in flight finish, budget %v)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		<-serveErr // Serve returns once Shutdown closed the listener
		fatal(err)
		fmt.Fprintln(os.Stderr, "orcad: drained, exiting")
	}
}

// demoProvider builds the paper's running-example catalog (§4.1): t1 and t2,
// hash-distributed on their first columns.
func demoProvider() md.Provider {
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "t1", Rows: 100000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 50000, Lo: 0, Hi: 50000},
			{Name: "b", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "t2", Rows: 80000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 80000, Lo: 0, Hi: 80000},
			{Name: "b", Type: base.TInt, NDV: 40000, Lo: 0, Hi: 50000},
		},
	})
	return p
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "orcad:", err)
		os.Exit(1)
	}
}
