// Command mdharvest exports catalog metadata to a DXL file (paper §5: the
// "automated tool for harvesting metadata that optimizer needs into a
// minimal DXL file"). It ships with the built-in TPC-DS catalog so a
// stand-alone optimizer session has something to run against:
//
//	mdharvest -scale=2 -out=tpcds.dxl
//	orca -metadata=tpcds.dxl -sql='SELECT count(*) FROM store_sales'
package main

import (
	"flag"
	"fmt"
	"os"

	"orca/internal/dxl"
	"orca/internal/md"
	"orca/internal/tpcds"
)

func main() {
	scale := flag.Int("scale", 2, "TPC-DS scale factor")
	out := flag.String("out", "tpcds.dxl", "output DXL metadata file")
	flag.Parse()

	p := md.NewMemProvider()
	tpcds.BuildCatalog(p, tpcds.Scale{Factor: *scale})
	doc := dxl.HarvestAll(p).Render()
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mdharvest:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d relations to %s (%d bytes)\n", len(p.RelationNames()), *out, len(doc))
}
