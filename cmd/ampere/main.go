// Command ampere replays AMPERe dumps (paper §6.1): self-contained repro
// files bundling a query, its minimal metadata and the optimizer
// configuration. A dump that records an expected plan acts as a test case.
//
// Usage:
//
//	ampere -replay=dump.dxl           # re-optimize and print the plan
//	ampere -check=dump.dxl            # compare against the expected plan
//	ampere -capture -metadata=m.dxl -sql='...' -out=dump.dxl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"orca/internal/ampere"
	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

func main() {
	replay := flag.String("replay", "", "dump file to replay")
	check := flag.String("check", "", "dump file to run as a test case")
	capture := flag.Bool("capture", false, "capture a new dump")
	metadata := flag.String("metadata", "", "DXL metadata file (capture mode)")
	sqlText := flag.String("sql", "", "SQL query (capture mode)")
	out := flag.String("out", "dump.dxl", "output path (capture mode)")
	segments := flag.Int("segments", 16, "segment count (capture mode)")
	flag.Parse()

	switch {
	case *replay != "":
		res, q, err := ampere.ReplayFile(*replay)
		fatal(err)
		fmt.Printf("replayed optimization: cost=%.0f, %d groups\n\n", res.Cost, res.Groups)
		fmt.Println(core.Explain(res.Plan, q.Factory))

	case *check != "":
		data, err := os.ReadFile(*check)
		fatal(err)
		d, err := ampere.Parse(string(data))
		fatal(err)
		cr, err := ampere.Check(d)
		fatal(err)
		if cr.Passed {
			fmt.Println("PASS: replayed plan matches the expected plan")
			return
		}
		fmt.Println("FAIL: plan discrepancy")
		fmt.Println("--- got ---")
		fmt.Println(cr.GotPlan)
		fmt.Println("--- expected ---")
		fmt.Println(cr.ExpectedPlan)
		os.Exit(1)

	case *capture:
		if *metadata == "" || *sqlText == "" {
			flag.Usage()
			os.Exit(2)
		}
		provider, err := dxl.FileProvider(*metadata)
		fatal(err)
		memProvider, ok := provider.(*md.MemProvider)
		if !ok {
			fatal(fmt.Errorf("metadata provider is not harvestable"))
		}
		cache := md.NewCache(&gpos.MemoryAccountant{})
		acc := md.NewAccessor(cache, memProvider)
		q, err := sql.Bind(*sqlText, acc, md.NewColumnFactory())
		fatal(err)
		cfg := core.DefaultConfig(*segments)
		// Optimize a second binding so the dump carries the pre-optimization
		// tree, and record the produced plan as the expected plan.
		q2, err := sql.Bind(*sqlText, md.NewAccessor(cache, memProvider), md.NewColumnFactory())
		fatal(err)
		res, err := core.Optimize(q2, cfg)
		fatal(err)
		d, err := ampere.Capture(context.Background(), q, cfg, memProvider, nil)
		fatal(err)
		d.ExpectedPlan = dxl.PlanFingerprint(res.Plan)
		fatal(d.WriteFile(*out))
		fmt.Printf("dump written to %s (expected plan cost %.0f)\n", *out, res.Cost)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ampere:", err)
		os.Exit(1)
	}
}
