// Command orca runs the optimizer stand-alone, the deployment mode the
// paper's architecture enables (§3): metadata comes from a DXL file (no
// database attached), the query from SQL text or a DXL query document, and
// the output is the plan explain and/or the DXL plan message.
//
// Usage:
//
//	orca -metadata=catalog.dxl -sql='SELECT ...' [-segments=16] [-workers=4]
//	orca -metadata=catalog.dxl -query=query.dxl -emit-dxl
//	orca -demo            # run the paper's §4.1 example end to end
//
// Robustness knobs (paper §6.1): -faults (or the ORCA_FAULTS environment
// variable) arms a fault-injection schedule, -memory-budget/-max-groups cap
// the search, -md-timeout bounds metadata lookups, -md-retries/-md-backoff
// absorb transient provider failures, -deadline bounds the whole request
// (the same lifecycle cmd/orcad serves), -dump captures AMPERe
// repros of failures, and -no-degrade turns the graceful-degradation ladder
// off so injected failures surface as errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"orca/internal/ampere"
	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/plancache"
	"orca/internal/search"
	"orca/internal/sql"
)

func main() {
	metadata := flag.String("metadata", "", "DXL metadata file (the file-based MD provider)")
	sqlText := flag.String("sql", "", "SQL query text")
	queryFile := flag.String("query", "", "DXL query document")
	segments := flag.Int("segments", 16, "target cluster segment count")
	workers := flag.Int("workers", 1, "optimization job-scheduler workers")
	emitDXL := flag.Bool("emit-dxl", false, "print the DXL plan message instead of the explain")
	trace := flag.Bool("trace-memo", false, "dump the final Memo")
	stats := flag.Bool("stats", false, "print job-scheduler telemetry (steps by kind, queue depth, utilization)")
	demo := flag.Bool("demo", false, "run the paper's running example (§4.1)")
	faults := flag.String("faults", os.Getenv("ORCA_FAULTS"),
		"fault-injection schedule, e.g. 'memo/insert:error:every=3,md/provider/fetch:delay=50ms' (defaults to $ORCA_FAULTS)")
	mdTimeout := flag.Duration("md-timeout", 0, "per-lookup metadata provider timeout (0 = unbounded; orcad refuses that)")
	mdRetries := flag.Int("md-retries", 1, "max attempts for transient metadata lookup failures (1 = no retry)")
	mdBackoff := flag.Duration("md-backoff", 0, "initial retry backoff (doubles per retry, jittered; 0 = policy default)")
	deadline := flag.Duration("deadline", 0, "whole-request deadline; the degradation ladder still runs on expiry (0 = none)")
	memBudget := flag.Int64("memory-budget", 0, "optimization memory budget in bytes (0 = unlimited)")
	maxGroups := flag.Int("max-groups", 0, "Memo group cap; the search keeps the best plan found when it trips (0 = unlimited)")
	noDegrade := flag.Bool("no-degrade", false, "disable the graceful-degradation ladder: fail instead of falling back")
	dumpDir := flag.String("dump", "", "directory for AMPERe failure dumps")
	planCacheBytes := flag.Int64("plan-cache-bytes", 64<<20, "parameterized plan cache byte budget")
	planCacheOff := flag.Bool("plan-cache-off", false, "disable the parameterized plan cache")
	repeat := flag.Int("repeat", 1, "run the request this many times through the plan cache (warm iterations report 'hit')")
	flag.Parse()

	// tune applies the robustness knobs shared by the file-driven and demo
	// paths.
	tune := func(cfg *core.Config) {
		if *faults != "" {
			specs, err := fault.ParseSpecs(*faults)
			fatal(err)
			cfg.Faults = specs
		}
		cfg.MDLookupTimeout = *mdTimeout
		cfg.MDRetry = md.RetryPolicy{MaxAttempts: *mdRetries, InitialBackoff: *mdBackoff}
		cfg.MemoryBudget = *memBudget
		cfg.MaxGroups = *maxGroups
		cfg.DisableDegradation = *noDegrade
	}
	// optimize runs the same request lifecycle orcad serves: config
	// validation, then core.OptimizeContext under the -deadline.
	optimize := func(q *core.Query, cfg core.Config) (*core.Result, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		return core.OptimizeContext(ctx, q, cfg)
	}

	if *demo {
		runDemo(*segments, *workers, tune, optimize)
		return
	}
	if *metadata == "" || (*sqlText == "" && *queryFile == "") {
		flag.Usage()
		os.Exit(2)
	}

	provider, err := dxl.FileProvider(*metadata)
	fatal(err)
	cache := md.NewCache(&gpos.MemoryAccountant{})

	// bind produces a fresh bound query. With -repeat each iteration re-binds
	// with its own accessor and column factory, exactly as separate requests
	// would — the factory's deterministic column numbering is what lets a
	// cached plan's column ids line up with a later binding of the same text.
	var queryDoc *dxl.Node
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		fatal(err)
		queryDoc, err = dxl.ParseXML(string(data))
		fatal(err)
	}
	bind := func(acc *md.Accessor, f *md.ColumnFactory) (*core.Query, error) {
		if *sqlText != "" {
			return sql.Bind(*sqlText, acc, f)
		}
		return dxl.ParseQuery(queryDoc, acc, f)
	}

	cfg := core.DefaultConfig(*segments)
	cfg.Workers = *workers
	cfg.TraceMemo = *trace
	tune(&cfg)
	if *dumpDir != "" {
		cfg.DumpCapture = dumpCapturer(*dumpDir, provider)
	}

	pcBytes := *planCacheBytes
	if *planCacheOff {
		pcBytes = 0
	}
	plans := plancache.New(pcBytes)
	if *repeat < 1 {
		*repeat = 1
	}
	var q *core.Query
	var res *core.Result
	for i := 0; i < *repeat; i++ {
		acc := md.NewAccessor(cache, provider)
		f := md.NewColumnFactory()
		q, err = bind(acc, f)
		fatal(err)
		var state string
		res, state, err = cachedOptimize(plans, acc, q, cfg, optimize)
		if err != nil {
			break
		}
		if state != "" && *repeat > 1 {
			fmt.Fprintf(os.Stderr, "orca: iteration %d: plan cache %s\n", i+1, state)
		}
	}
	if err != nil && *dumpDir != "" {
		// The ladder is off (or itself failed): capture the outright failure.
		ex := gpos.AsException(err)
		if ex == nil {
			ex = gpos.Wrap(err, gpos.CompOptimizer, "OptimizationFailed", "optimization failed")
		}
		if path := cfg.DumpCapture(q, cfg, ex); path != "" {
			fmt.Fprintln(os.Stderr, "orca: AMPERe dump:", path)
		}
	}
	fatal(err)
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "orca: optimization degraded to the %s rung after %s/%s: %s\n",
			res.DegradedRung, res.Failure.Comp, res.Failure.Code, res.Failure.Msg)
		if res.DumpPath != "" {
			fmt.Fprintln(os.Stderr, "orca: AMPERe dump:", res.DumpPath)
		}
	}

	if *trace {
		fmt.Println("--- Memo ---")
		fmt.Println(res.MemoTrace)
	}
	if *emitDXL {
		fmt.Println(dxl.SerializePlan(res.Plan).Render())
	} else {
		fmt.Printf("plan (cost=%.0f, %d groups, %d group expressions, %d rules fired, %s):\n\n",
			res.Cost, res.Groups, res.GroupExprs, res.RulesFired, res.Duration.Round(1000*1000))
		fmt.Println(core.Explain(res.Plan, q.Factory))
	}
	if *stats {
		printSearchStats(res)
	}
}

// printSearchStats prints the scheduler telemetry gathered during search:
// job steps by kind per stage and in total, the peak ready-queue depth, and
// worker utilization.
func printSearchStats(res *core.Result) {
	fmt.Println("--- search stats ---")
	line := func(name string, s search.Stats, fired int64, timedOut bool) {
		fmt.Printf("%-12s steps:", name)
		for k := 0; k < search.NumJobKinds; k++ {
			fmt.Printf(" %s=%d", search.JobKind(k), s.Steps[k])
		}
		fmt.Printf("  total=%d  rules=%d  peak-queue=%d  workers=%d  util=%.0f%%",
			s.TotalSteps(), fired, s.PeakQueue, s.Workers, 100*s.Utilization())
		if timedOut {
			fmt.Print("  (timed out)")
		}
		fmt.Println()
	}
	for _, run := range res.StageRuns {
		name := run.Name
		if name == "" {
			name = "(stage)"
		}
		line("stage "+name, run.Search, run.RulesFired, run.TimedOut)
	}
	if len(res.StageRuns) != 1 {
		line("total", res.Search, res.RulesFired, false)
	}
}

// runDemo reproduces the paper's running example: SELECT T1.a FROM T1, T2
// WHERE T1.a = T2.b ORDER BY T1.a with T1 Hashed(a), T2 Hashed(a).
func runDemo(segments, workers int, tune func(*core.Config), optimize func(*core.Query, core.Config) (*core.Result, error)) {
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "t1", Rows: 100000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 50000, Lo: 0, Hi: 50000},
			{Name: "b", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "t2", Rows: 80000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 80000, Lo: 0, Hi: 80000},
			{Name: "b", Type: base.TInt, NDV: 40000, Lo: 0, Hi: 50000},
		},
	})
	cache := md.NewCache(&gpos.MemoryAccountant{})
	acc := md.NewAccessor(cache, p)
	f := md.NewColumnFactory()
	q, err := sql.Bind("SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a", acc, f)
	fatal(err)
	cfg := core.DefaultConfig(segments)
	cfg.Workers = workers
	tune(&cfg)
	res, err := optimize(q, cfg)
	fatal(err)
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "orca: optimization degraded to the %s rung after %s/%s: %s\n",
			res.DegradedRung, res.Failure.Comp, res.Failure.Code, res.Failure.Msg)
	}
	fmt.Println("Paper §4.1 running example —")
	fmt.Println("  SELECT T1.a FROM T1, T2 WHERE T1.a = T2.b ORDER BY T1.a;")
	fmt.Printf("  T1: Hashed(T1.a), T2: Hashed(T2.a), %d segments\n\n", segments)
	fmt.Println(core.Explain(res.Plan, f))
	fmt.Printf("cost=%.0f  groups=%d  group expressions=%d  rules fired=%d\n",
		res.Cost, res.Groups, res.GroupExprs, res.RulesFired)
}

// dumpCapturer returns a core.Config.DumpCapture hook that writes AMPERe
// repro dumps of optimization failures into dir.
func dumpCapturer(dir string, provider md.Provider) func(*core.Query, core.Config, *gpos.Exception) string {
	return func(q *core.Query, cfg core.Config, failure *gpos.Exception) string {
		d, err := ampere.Capture(context.Background(), q, cfg, provider, failure)
		if err != nil {
			return ""
		}
		path := filepath.Join(dir, fmt.Sprintf("ampere-%d.dxl", time.Now().UnixNano()))
		if d.WriteFile(path) != nil {
			return ""
		}
		return path
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "orca:", err)
		os.Exit(1)
	}
}
