package main

import (
	"orca/internal/core"
	"orca/internal/md"
	"orca/internal/plancache"
	"orca/internal/props"
)

// cachedOptimize is the stand-alone binary's plan-cache wrapper: the same
// probe → hit-rebind / miss-optimize-admit lifecycle orcad serves, minus the
// singleflight (one process, one request at a time). state is "hit", "miss",
// or "" when the cache is disabled. Used with -repeat, warm iterations skip
// the scheduler entirely — the cheapest way to watch the cache work without
// standing up the server.
func cachedOptimize(plans *plancache.Cache, acc *md.Accessor, q *core.Query, cfg core.Config,
	optimize func(*core.Query, core.Config) (*core.Result, error)) (*core.Result, string, error) {
	if !plans.Enabled() {
		res, err := optimize(q, cfg)
		return res, "", err
	}
	shape, cacheable := plancache.Extract(q.Tree, q.Order, q.OutCols)
	if !cacheable {
		res, err := optimize(q, cfg)
		return res, "miss", err
	}
	req, ok := plans.InternReq(props.Required{Dist: props.SingletonDist, Order: q.Order})
	if !ok {
		// ReqID intern table full: the shape cannot be keyed, optimize uncached.
		res, err := optimize(q, cfg)
		return res, "miss", err
	}
	key := plancache.Key{
		FP:        shape.FP,
		Req:       req,
		Buckets:   shape.Buckets,
		MDVersion: acc.MDVersion(),
	}
	if e, ok := plans.Lookup(key, shape.Vector); ok {
		if plan, ok := plancache.Rebind(e.Plan, shape.Vector); ok {
			return &core.Result{Plan: plan, Cost: e.Cost, Stage: e.Stage}, "hit", nil
		}
	}
	res, err := optimize(q, cfg)
	if err != nil {
		return nil, "miss", err
	}
	// Monotonic stamp: now == at-open proves no bump landed anywhere in the
	// bind→optimize window (the key's stamp, read in between, matches too).
	if admissible(res) && acc.MDVersion() == acc.MDVersionAtOpen() && acc.MDVersion() == key.MDVersion {
		if plan, ok := plancache.Parameterize(res.Plan, shape.Vector); ok {
			plans.Admit(key, &plancache.Entry{
				Plan:    plan,
				Cost:    res.Cost,
				Stage:   res.Stage,
				NParams: len(shape.Vector),
			})
		}
	}
	return res, "miss", nil
}

// admissible mirrors the serving tier's never-cache rules: only full,
// healthy optimizations are worth replaying.
func admissible(r *core.Result) bool {
	if r == nil || r.Plan == nil || r.Degraded || r.Failure != nil {
		return false
	}
	for _, sr := range r.StageRuns {
		if sr.TimedOut || sr.Aborted {
			return false
		}
	}
	return true
}
