// Command orcavet runs the orca-specific static analyzers over the module:
//
//	go run ./cmd/orcavet ./...
//
// It prints one line per finding. Exit codes are distinct so CI can tell a
// failed gate from a broken run:
//
//	0  clean — no finding remains after //orcavet:ignore:<analyzer>
//	   suppression and baseline filtering, and no baseline entry is stale
//	1  findings — the gate fired (new findings, or on full-suite runs a
//	   stale baseline entry that matches no live finding)
//	2  internal error — loader/type-check failure, unknown analyzer,
//	   unwritable artifact; the findings gate did not run
//
// See internal/analysis for the analyzer suite, the interprocedural facts
// store, and the ignore mechanism.
//
// CI integration:
//
//	-only NAME        run exactly one analyzer (fast local iteration;
//	                  -run NAME,... selects a subset)
//	-json             machine-readable findings on stdout
//	-sarif            SARIF 2.1.0 log on stdout (for code-scanning upload)
//	-baseline FILE    filter out reviewed findings; gate only on new ones
//	-write-baseline FILE   accept the current findings as the new baseline
//	-opmatrix FILE    write the opclosure operator-coverage matrix
//	                  (markdown when FILE ends in .md, JSON otherwise)
//	-facts FILE       export the interprocedural facts store (JSON)
//	-stats FILE       write per-analyzer finding counts and wall time (JSON)
//	-timings          print per-analyzer wall time to stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"orca/internal/analysis"
)

func main() {
	var (
		list          = flag.Bool("analyzers", false, "print the analyzer suite and exit")
		only          = flag.String("run", "", "comma-separated analyzer names to run (default all)")
		single        = flag.String("only", "", "run exactly one analyzer by name (fast local iteration)")
		jsonOut       = flag.Bool("json", false, "print findings as JSON")
		sarifOut      = flag.Bool("sarif", false, "print findings as SARIF 2.1.0")
		baselinePath  = flag.String("baseline", "", "baseline file; findings listed there do not fail the run")
		writeBaseline = flag.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
		opmatrixPath  = flag.String("opmatrix", "", "write the operator coverage matrix to this file (.md for markdown, JSON otherwise)")
		factsPath     = flag.String("facts", "", "export the interprocedural facts store (JSON) to this file")
		statsPath     = flag.String("stats", "", "write per-analyzer finding counts and wall time (JSON) to this file")
		timings       = flag.Bool("timings", false, "print per-analyzer wall time to stderr")
		defsDir       = flag.String("defs", "defs", "operator/rule definition directory for the opclosure .opt cross-check, relative to the module root (empty disables)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: orcavet [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the Orca invariant analyzers over the given go list patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...). Suppress a finding with a //orcavet:ignore:<analyzer>\n")
		fmt.Fprintf(os.Stderr, "<reason> comment on the offending line, or alone on the line above it;\n")
		fmt.Fprintf(os.Stderr, "directives that suppress nothing are themselves reported.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *single != "" {
		if *only != "" {
			fmt.Fprintf(os.Stderr, "orcavet: -only and -run are mutually exclusive\n")
			os.Exit(2)
		}
		if strings.Contains(*single, ",") {
			fmt.Fprintf(os.Stderr, "orcavet: -only takes a single analyzer name; use -run for a comma-separated subset\n")
			os.Exit(2)
		}
		*only = *single
	}
	fullSuite := true
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "orcavet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
		fullSuite = len(suite) == len(byName)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader("")
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	cfg := analysis.DefaultConfig()
	// Unused-ignore reporting needs the full suite: a directive scoped to an
	// analyzer excluded by -run is legitimately idle.
	cfg.ReportUnusedIgnores = fullSuite
	cfg.DefsDir = *defsDir
	if cfg.DefsDir != "" && !filepath.IsAbs(cfg.DefsDir) {
		cfg.DefsDir = filepath.Join(loader.ModuleDir, cfg.DefsDir)
	}
	diags, stats := analysis.RunModuleTimed(pkgs, suite, cfg)
	if *timings {
		for _, s := range stats {
			fmt.Fprintf(os.Stderr, "orcavet: %-14s %8.1fms %5d finding(s)\n", s.Name, s.WallMS, s.Findings)
		}
	}
	if *statsPath != "" {
		if err := writeStats(*statsPath, diags, stats); err != nil {
			fatal(err)
		}
	}

	if *factsPath != "" {
		data, err := analysis.ComputeFacts(pkgs, cfg).Export()
		if err == nil {
			err = os.WriteFile(*factsPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
	if *opmatrixPath != "" {
		matrix := analysis.BuildOpMatrix(pkgs, cfg)
		marshal := analysis.MarshalOpMatrix
		if strings.HasSuffix(*opmatrixPath, ".md") {
			marshal = analysis.MarshalOpMatrixMarkdown
		}
		data, err := marshal(matrix)
		if err == nil {
			if data[len(data)-1] != '\n' {
				data = append(data, '\n')
			}
			err = os.WriteFile(*opmatrixPath, data, 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}

	root := loader.ModuleDir
	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, diags, root); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "orcavet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}
	var stale []analysis.BaselineEntry
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		// Stale entries gate only full-suite runs: under -run/-only, entries
		// belonging to the excluded analyzers are legitimately unmatched.
		diags, stale = b.Filter(diags, root)
		if !fullSuite {
			stale = nil
		}
	}

	switch {
	case *sarifOut:
		data, err := analysis.MarshalSARIF(diags, suite, root)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case *jsonOut:
		data, err := analysis.MarshalJSONDiagnostics(diags, root)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "orcavet: stale baseline entry matches no finding: %s: [%s] %s\n",
			e.File, e.Analyzer, e.Message)
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "orcavet: %d stale entry(ies) in %s — remove them or regenerate with -write-baseline\n",
			len(stale), *baselinePath)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "orcavet: %d finding(s)\n", len(diags))
	}
	if len(diags) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orcavet:", err)
	os.Exit(2)
}

// writeStats records one run's per-analyzer finding counts and wall times as
// a single JSON object (one line, so CI can append it to a benchmark log).
func writeStats(path string, diags []analysis.Diagnostic, stats []analysis.AnalyzerStats) error {
	var total float64
	for _, s := range stats {
		total += s.WallMS
	}
	out := struct {
		Findings  int                      `json:"findings"`
		WallMS    float64                  `json:"wall_ms"`
		Analyzers []analysis.AnalyzerStats `json:"analyzers"`
	}{len(diags), total, stats}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
