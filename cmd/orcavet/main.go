// Command orcavet runs the orca-specific static analyzers over the module:
//
//	go run ./cmd/orcavet ./...
//
// It prints one line per finding and exits non-zero if any finding remains
// after //orcavet:ignore suppression. See internal/analysis for the
// analyzer suite and the ignore mechanism.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"orca/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("analyzers", false, "print the analyzer suite and exit")
		only = flag.String("run", "", "comma-separated analyzer names to run (default all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: orcavet [-run name,...] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the Orca invariant analyzers over the given go list patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...). Suppress a finding with a //orcavet:ignore <reason>\n")
		fmt.Fprintf(os.Stderr, "comment on the offending line, or alone on the line above it.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "orcavet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "orcavet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orcavet:", err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, suite) {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "orcavet: %d finding(s)\n", found)
		os.Exit(1)
	}
}
