// Command optgen generates the operator/rule boilerplate from the defs/
// directory of .opt definitions: operator structs and fingerprint methods
// (internal/ops), rule skeletons with dense compile-time IDs
// (internal/xform), the DXL physical-parameter serializer (internal/dxl),
// the cost/stats/engine dispatch switches, and docs/opmatrix.md.
//
// Usage:
//
//	go run orca/cmd/optgen [-defs DIR] [-root DIR] [-check]
//
// Output is deterministic (byte-identical for an unchanged defs/), which is
// what check.sh's `go generate ./...` + `git diff --exit-code` drift gate
// relies on. -check writes nothing and exits 1 if any output would change.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"orca/internal/optgen"
)

func main() {
	defs := flag.String("defs", "defs", "directory of .opt definition files")
	root := flag.String("root", ".", "repository root the generated files are written under")
	check := flag.Bool("check", false, "verify outputs are up to date without writing; exit 1 on drift")
	flag.Parse()

	cat, err := optgen.ParseDir(*defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *check {
		stale, err := staleOutputs(cat, *root)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(stale) > 0 {
			for _, p := range stale {
				fmt.Fprintf(os.Stderr, "optgen: %s is stale\n", p)
			}
			fmt.Fprintln(os.Stderr, "optgen: run `go generate ./...`")
			os.Exit(1)
		}
		return
	}
	changed, err := optgen.Generate(cat, *root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, p := range changed {
		fmt.Println("optgen: wrote", p)
	}
}

func staleOutputs(cat *optgen.Catalog, root string) ([]string, error) {
	outs, err := optgen.Outputs(cat)
	if err != nil {
		return nil, err
	}
	var stale []string
	for rel, want := range outs {
		got, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil || string(got) != string(want) {
			stale = append(stale, rel)
		}
	}
	sort.Strings(stale)
	return stale, nil
}
