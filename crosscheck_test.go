package orca

import (
	"fmt"
	"strings"
	"testing"

	"orca/internal/engine"
)

// crossCheckQueries must produce identical result sets through Orca and
// through the legacy Planner; differential testing of the two optimizers
// against the same executor is the strongest correctness check in the suite.
var crossCheckQueries = []string{
	"SELECT count(*) FROM sales",
	"SELECT item_id, sum(amount) AS t FROM sales GROUP BY item_id ORDER BY item_id",
	"SELECT count(*) FROM sales WHERE date_id < 25",
	"SELECT count(*) FROM sales WHERE date_id BETWEEN 10 AND 40 AND amount > 25",
	`SELECT i.category, count(*) AS c FROM sales s, item i
	 WHERE s.item_id = i.item_id GROUP BY i.category ORDER BY i.category`,
	`SELECT c.region, sum(s.amount) AS total
	 FROM sales s, customer c, item i
	 WHERE s.cust_id = c.cust_id AND s.item_id = i.item_id AND i.category = 3
	 GROUP BY c.region ORDER BY c.region`,
	`SELECT s.item_id FROM sales s WHERE EXISTS (
		SELECT 1 FROM item i WHERE i.item_id = s.item_id AND i.category = 2)
	 ORDER BY s.item_id LIMIT 20`,
	`SELECT s.item_id FROM sales s WHERE s.item_id IN (
		SELECT i.item_id FROM item i WHERE i.category = 1)
	 ORDER BY s.item_id LIMIT 20`,
	`SELECT s.item_id, s.amount FROM sales s
	 WHERE s.amount > (SELECT 2 * avg(s2.amount) FROM sales s2 WHERE s2.item_id = s.item_id)
	 ORDER BY s.item_id, s.amount`,
	`SELECT item_id FROM sales WHERE amount > 40
	 UNION ALL
	 SELECT item_id FROM sales WHERE amount < 5
	 ORDER BY 1 LIMIT 30`,
	`SELECT cust_id FROM sales WHERE NOT EXISTS (
		SELECT 1 FROM item i WHERE i.item_id = sales.item_id AND i.price > 90)
	 ORDER BY cust_id LIMIT 15`,
	`SELECT s.cust_id, count(*) AS visits FROM sales s
	 GROUP BY s.cust_id HAVING count(*) > 25 ORDER BY visits DESC, s.cust_id LIMIT 10`,
	`WITH t AS (SELECT item_id, sum(amount) AS total FROM sales GROUP BY item_id)
	 SELECT a.item_id FROM t a, t b WHERE a.item_id = b.item_id AND a.total > 100
	 ORDER BY a.item_id LIMIT 25`,
	`SELECT item_id, amount,
	        rank() OVER (PARTITION BY item_id ORDER BY amount DESC) AS r
	 FROM sales WHERE item_id < 5 ORDER BY item_id, r, amount DESC LIMIT 40`,
	`SELECT i.category, avg(s.amount) AS a
	 FROM sales s JOIN item i ON s.item_id = i.item_id
	 LEFT JOIN customer c ON s.cust_id = c.cust_id
	 GROUP BY i.category ORDER BY i.category`,
	`SELECT item_id FROM sales WHERE amount > 45
	 INTERSECT
	 SELECT item_id FROM sales WHERE amount < 8
	 ORDER BY 1`,
	`SELECT item_id FROM item WHERE category = 4
	 EXCEPT
	 SELECT item_id FROM sales WHERE amount > 30
	 ORDER BY 1`,
	`SELECT CASE WHEN amount > 25 THEN 1 ELSE 0 END AS big, count(*) AS c
	 FROM sales GROUP BY CASE WHEN amount > 25 THEN 1 ELSE 0 END ORDER BY big`,
}

func resultKey(res *engine.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

func TestOrcaVsPlannerResultsAgree(t *testing.T) {
	sys := testSystem(t)
	for i, q := range crossCheckQueries {
		q := q
		t.Run(fmt.Sprintf("q%02d", i), func(t *testing.T) {
			orcaRes, err := sys.Run(q)
			if err != nil {
				t.Fatalf("orca: %v\nquery: %s", err, q)
			}
			legacyRes, err := sys.RunLegacy(q, engine.Options{})
			if err != nil {
				t.Fatalf("planner: %v\nquery: %s", err, q)
			}
			// Compare as multisets (ordered queries still compare equal).
			engine.SortResult(orcaRes)
			engine.SortResult(legacyRes)
			a, b := resultKey(orcaRes), resultKey(legacyRes)
			if len(a) != len(b) {
				t.Fatalf("row counts differ: orca=%d planner=%d\nquery: %s", len(a), len(b), q)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("row %d differs:\n  orca:    %s\n  planner: %s\nquery: %s", j, a[j], b[j], q)
				}
			}
		})
	}
}

// TestOrderedResultsMatchOrder verifies ORDER BY is respected by both
// optimizers (sorted comparison above would hide ordering bugs).
func TestOrderedResultsMatchOrder(t *testing.T) {
	sys := testSystem(t)
	q := "SELECT item_id, sum(amount) AS t FROM sales GROUP BY item_id ORDER BY item_id"
	for name, run := range map[string]func() (*engine.Result, error){
		"orca":    func() (*engine.Result, error) { return sys.Run(q) },
		"planner": func() (*engine.Result, error) { return sys.RunLegacy(q, engine.Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].Compare(res.Rows[i][0]) > 0 {
				t.Errorf("%s: rows out of order at %d", name, i)
			}
		}
	}
}
