package orca

// One benchmark per table/figure of the paper's evaluation (§7), plus
// ablation benches for the design choices DESIGN.md calls out. Regenerate
// everything with:
//
//	go test -bench=. -benchmem
//
// cmd/benchmarks prints the same experiments as paper-style tables.

import (
	"runtime"
	"sync"
	"testing"

	"orca/internal/core"
	"orca/internal/engine"
	"orca/internal/experiments"
	"orca/internal/md"
	"orca/internal/rival"
	"orca/internal/sql"
	"orca/internal/tpcds"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env returns the shared loaded testbed (built once).
func env(b *testing.B) *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(experiments.Config{
			Segments: 16, Scale: 1, Seed: 20140622, Budget: 4_000_000,
		})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkFigure12 regenerates Figure 12: Orca vs the legacy Planner across
// the TPC-DS workload (paper: 5x suite-wide, 14 queries capped at 1000x).
func BenchmarkFigure12(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		s := experiments.Summarize(rows)
		b.ReportMetric(s.SuiteSpeedup, "suite-speedup-x")
		b.ReportMetric(100*s.SameOrBetterFrac, "same-or-better-%")
		b.ReportMetric(float64(s.TimeoutCapped), "timeout-capped")
	}
}

// BenchmarkOptimizationTime regenerates the §7.2.2 prose numbers: average
// optimization time and memory with the full rule set (paper: ~4 s, ~200 MB
// on the 10 TB testbed).
func BenchmarkOptimizationTime(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.OptimizationStats()
		if err != nil {
			b.Fatal(err)
		}
		var totalNs, mem float64
		for _, r := range rows {
			totalNs += float64(r.OptTime.Nanoseconds())
			mem += float64(r.PeakMem)
		}
		b.ReportMetric(totalNs/float64(len(rows))/1e6, "avg-opt-ms")
		b.ReportMetric(mem/float64(len(rows))/1024, "avg-mem-KB")
	}
}

// BenchmarkFigure13 regenerates Figure 13: HAWQ vs the Impala simulation
// (paper: avg 6x, several out-of-memory bars).
func BenchmarkFigure13(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.FigureRival(rival.Impala())
		if err != nil {
			b.Fatal(err)
		}
		reportRival(b, rows)
	}
}

// BenchmarkFigure14 regenerates Figure 14: HAWQ vs the Stinger simulation
// (paper: avg 21x).
func BenchmarkFigure14(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.FigureRival(rival.Stinger())
		if err != nil {
			b.Fatal(err)
		}
		reportRival(b, rows)
	}
}

func reportRival(b *testing.B, rows []experiments.RivalRow) {
	b.Helper()
	var sum float64
	oom := 0
	for _, r := range rows {
		sum += r.Speedup
		if r.RivalOOM {
			oom++
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(sum/float64(len(rows)), "avg-speedup-x")
	}
	b.ReportMetric(float64(oom), "rival-oom")
	b.ReportMetric(float64(len(rows)), "queries")
}

// BenchmarkFigure15 regenerates Figure 15: TPC-DS support counts over the
// 111-query expansion (paper: HAWQ 111/111, Impala 31/20, Presto 12/0,
// Stinger 19/19).
func BenchmarkFigure15(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.Figure15()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Optimize), r.System+"-optimize")
			b.ReportMetric(float64(r.Execute), r.System+"-execute")
		}
	}
}

// BenchmarkTAQO regenerates the §6.2 cost-model accuracy measurement.
func BenchmarkTAQO(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.TAQO([]string{"q3", "q19", "q43"}, 10)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Correlation
		}
		b.ReportMetric(sum/float64(len(rows)), "correlation")
	}
}

// ---------------------------------------------------------------------------
// Ablations: switch individual Orca capabilities off and measure the damage
// on a query that depends on them.

// ablationWork optimizes one workload query with the given rules disabled
// and returns the executed work.
func ablationWork(b *testing.B, e *experiments.Env, queryName string, disabled []string) int64 {
	b.Helper()
	var sqlText string
	for _, wq := range tpcds.Workload() {
		if wq.Name == queryName {
			sqlText = wq.SQL
		}
	}
	q, err := sql.Bind(sqlText, md.NewAccessor(e.Cache, e.Provider), md.NewColumnFactory())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(e.Cfg.Segments)
	cfg.DisabledRules = disabled
	res, err := core.Optimize(q, cfg)
	if err != nil {
		b.Fatal(err)
	}
	out, err := e.Cluster.Execute(res.Plan, engine.Options{Budget: e.Cfg.Budget})
	if err != nil {
		b.Fatal(err)
	}
	if out.TimedOut {
		return e.Cfg.Budget
	}
	return out.Stats.Work(3)
}

// BenchmarkAblationJoinOrdering disables the cost-based join-ordering rules,
// leaving only the literal left-deep expansion, on the paper's §7.3.2
// join-order example (q25).
func BenchmarkAblationJoinOrdering(b *testing.B) {
	e := env(b)
	disabled := []string{"ExpandNAryJoinDP", "ExpandNAryJoinGreedy", "JoinCommutativity", "JoinAssociativity"}
	for i := 0; i < b.N; i++ {
		full := ablationWork(b, e, "q25", nil)
		crippled := ablationWork(b, e, "q25", disabled)
		b.ReportMetric(float64(crippled)/float64(full), "literal-vs-dp-x")
	}
}

// BenchmarkAblationTwoStageAgg disables the MPP two-stage aggregation.
func BenchmarkAblationTwoStageAgg(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		full := ablationWork(b, e, "q43", nil)
		crippled := ablationWork(b, e, "q43", []string{"GbAgg2TwoStageAgg"})
		b.ReportMetric(float64(crippled)/float64(full), "single-vs-two-stage-x")
	}
}

// BenchmarkAblationIndexScan disables index scans on a point-lookup query.
func BenchmarkAblationIndexScan(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		full := ablationWork(b, e, "q82", nil)
		crippled := ablationWork(b, e, "q82", []string{"Select2IndexScan"})
		b.ReportMetric(float64(crippled)/float64(full), "noindex-vs-index-x")
	}
}

// BenchmarkSchedulerWorkers measures parallel optimization (paper §4.2) by
// job-scheduler worker count on a join-heavy query.
func BenchmarkSchedulerWorkers(b *testing.B) {
	e := env(b)
	var sqlText string
	for _, wq := range tpcds.Workload() {
		if wq.Name == "q25" {
			sqlText = wq.SQL
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			cfg := core.DefaultConfig(e.Cfg.Segments)
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				q, err := sql.Bind(sqlText, md.NewAccessor(e.Cache, e.Provider), md.NewColumnFactory())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Optimize(q, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetadataCache measures the §3 metadata-cache effect: repeated
// optimization sessions against a warm vs cold cache.
func BenchmarkMetadataCache(b *testing.B) {
	e := env(b)
	sqlText := tpcds.Workload()[0].SQL
	b.Run("warm", func(b *testing.B) {
		cache := md.NewCache(e.Mem)
		for i := 0; i < b.N; i++ {
			q, err := sql.Bind(sqlText, md.NewAccessor(cache, e.Provider), md.NewColumnFactory())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Optimize(q, core.DefaultConfig(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := md.NewCache(e.Mem)
			q, err := sql.Bind(sqlText, md.NewAccessor(cache, e.Provider), md.NewColumnFactory())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Optimize(q, core.DefaultConfig(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMultiStageShortCircuit measures multi-stage optimization (§4.1):
// a cheap first stage with a cost threshold vs the full single stage.
func BenchmarkMultiStageShortCircuit(b *testing.B) {
	e := env(b)
	sqlText := ""
	for _, wq := range tpcds.Workload() {
		if wq.Name == "q25" {
			sqlText = wq.SQL
		}
	}
	run := func(b *testing.B, cfg core.Config) {
		for i := 0; i < b.N; i++ {
			q, err := sql.Bind(sqlText, md.NewAccessor(e.Cache, e.Provider), md.NewColumnFactory())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Optimize(q, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("single-stage", func(b *testing.B) { run(b, core.DefaultConfig(16)) })
	b.Run("two-stage", func(b *testing.B) {
		cfg := core.DefaultConfig(16)
		cfg.Stages = []core.Stage{
			{
				Name:          "quick",
				DisabledRules: []string{"ExpandNAryJoinDP", "JoinAssociativity", "JoinCommutativity", "GbAgg2StreamAgg"},
				CostThreshold: 1e12,
			},
			{Name: "full"},
		}
		run(b, cfg)
	})
}

// BenchmarkStageResume measures the shared-Memo stage resume: because every
// stage searches the same Memo under rule-set epochs, adding a second stage
// (whether identical or widening a restricted first stage) costs close to
// nothing compared with the work the first stage already did.
func BenchmarkStageResume(b *testing.B) {
	e := env(b)
	sqlText := ""
	for _, wq := range tpcds.Workload() {
		if wq.Name == "q25" {
			sqlText = wq.SQL
		}
	}
	run := func(b *testing.B, cfg core.Config) {
		for i := 0; i < b.N; i++ {
			q, err := sql.Bind(sqlText, md.NewAccessor(e.Cache, e.Provider), md.NewColumnFactory())
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Optimize(q, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.StageRuns) > 1 {
				last := res.StageRuns[len(res.StageRuns)-1].Search
				b.ReportMetric(float64(last.TotalSteps()), "resume-steps")
			}
		}
	}
	b.Run("one-stage", func(b *testing.B) { run(b, core.DefaultConfig(16)) })
	b.Run("identical-second-stage", func(b *testing.B) {
		cfg := core.DefaultConfig(16)
		cfg.Stages = []core.Stage{{Name: "s1"}, {Name: "s2"}}
		run(b, cfg)
	})
	b.Run("widening-second-stage", func(b *testing.B) {
		cfg := core.DefaultConfig(16)
		cfg.Stages = []core.Stage{
			{Name: "greedy", DisabledRules: []string{"ExpandNAryJoinDP"}},
			{Name: "full"},
		}
		run(b, cfg)
	})
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}

// BenchmarkOptimizeScalability is the Figure-7-style whole-query speedup
// curve: one full optimization of the paper's join-order example (q25) with
// the scheduler parallelism set to GOMAXPROCS. Run with -cpu=1,2,4,8 to
// reproduce the curve; the speedup between -cpu points is bounded by how
// little the shared Memo serializes the workers (paper §6.2, Figure 7).
func BenchmarkOptimizeScalability(b *testing.B) {
	e := env(b)
	sqlText := ""
	for _, wq := range tpcds.Workload() {
		if wq.Name == "q25" {
			sqlText = wq.SQL
		}
	}
	cfg := core.DefaultConfig(16)
	cfg.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		q, err := sql.Bind(sqlText, md.NewAccessor(e.Cache, e.Provider), md.NewColumnFactory())
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Optimize(q, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Groups), "groups")
			b.ReportMetric(float64(res.GroupExprs), "gexprs")
		}
	}
}
