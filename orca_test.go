package orca

import (
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/engine"
	"orca/internal/md"
)

// testSystem builds a small star schema: a fact table hash-distributed and
// date-partitioned, two dimensions.
func testSystem(t testing.TB) *System {
	t.Helper()
	sys := NewSystem(4)
	sys.AddTable(md.TableSpec{
		Name: "sales", Rows: 4000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "item_id", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "cust_id", Type: base.TInt, NDV: 200, Lo: 0, Hi: 200},
			{Name: "date_id", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "amount", Type: base.TInt, NDV: 50, Lo: 1, Hi: 51},
		},
		PartCol: 2,
		Parts: []md.Partition{
			{Name: "p0", Lo: base.NewInt(0), Hi: base.NewInt(25)},
			{Name: "p1", Lo: base.NewInt(25), Hi: base.NewInt(50)},
			{Name: "p2", Lo: base.NewInt(50), Hi: base.NewInt(75)},
			{Name: "p3", Lo: base.NewInt(75), Hi: base.NewInt(101)},
		},
	})
	sys.AddTable(md.TableSpec{
		Name: "item", Rows: 100,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "item_id", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "category", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
			{Name: "price", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
		},
	})
	sys.AddTable(md.TableSpec{
		Name: "customer", Rows: 200,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "cust_id", Type: base.TInt, NDV: 200, Lo: 0, Hi: 200},
			{Name: "region", Type: base.TInt, NDV: 5, Lo: 0, Hi: 5},
		},
	})
	sys.MustLoad(7)
	return sys
}

func TestRunCountStar(t *testing.T) {
	sys := testSystem(t)
	res, err := sys.Run("SELECT count(*) FROM sales")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
	if got := res.Rows[0][0].I; got != 4000 {
		t.Errorf("count(*) = %d, want 4000", got)
	}
}

func TestRunJoinAggregate(t *testing.T) {
	sys := testSystem(t)
	res, err := sys.Run(`
		SELECT i.category, count(*) AS cnt, sum(s.amount) AS total
		FROM sales s, item i
		WHERE s.item_id = i.item_id
		GROUP BY i.category
		ORDER BY i.category`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Cross-check against a direct computation on the raw data.
	sales, _ := sys.Cluster.Table("sales")
	item, _ := sys.Cluster.Table("item")
	cat := map[int64]int64{}
	for _, r := range allRows(item) {
		cat[r[0].I] = r[1].I
	}
	wantCnt := map[int64]int64{}
	wantSum := map[int64]int64{}
	total := int64(0)
	for _, r := range allRows(sales) {
		c, ok := cat[r[0].I]
		if !ok {
			continue
		}
		wantCnt[c]++
		wantSum[c] += r[3].I
		total++
	}
	var gotTotal int64
	for _, r := range res.Rows {
		c := r[0].I
		if r[1].I != wantCnt[c] {
			t.Errorf("category %d: count=%d want %d", c, r[1].I, wantCnt[c])
		}
		if r[2].I != wantSum[c] {
			t.Errorf("category %d: sum=%d want %d", c, r[2].I, wantSum[c])
		}
		gotTotal += r[1].I
	}
	if gotTotal != total {
		t.Errorf("total joined rows %d, want %d", gotTotal, total)
	}
	// ORDER BY must hold.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Compare(res.Rows[i][0]) > 0 {
			t.Errorf("rows not ordered by category at %d", i)
		}
	}
}

func TestPartitionEliminationPlan(t *testing.T) {
	sys := testSystem(t)
	plan, err := sys.Explain("SELECT count(*) FROM sales WHERE date_id < 25")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if want := "parts=1/4"; !contains(plan, want) {
		t.Errorf("expected %q (static partition elimination) in plan:\n%s", want, plan)
	}
	res, err := sys.Run("SELECT count(*) FROM sales WHERE date_id < 25")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Cross-check.
	var want int64
	sales, _ := sys.Cluster.Table("sales")
	for _, r := range allRows(sales) {
		if !r[2].IsNull() && r[2].I < 25 {
			want++
		}
	}
	if got := res.Rows[0][0].I; got != want {
		t.Errorf("count=%d want %d", got, want)
	}
}

func TestCorrelatedSubqueryDecorrelation(t *testing.T) {
	sys := testSystem(t)
	q := `
		SELECT s.item_id, s.amount
		FROM sales s
		WHERE s.amount > (SELECT 2 * avg(s2.amount) FROM sales s2 WHERE s2.item_id = s.item_id)
		ORDER BY s.item_id, s.amount`
	plan, err := sys.Explain(q)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if contains(plan, "SubPlan") {
		t.Errorf("Orca must decorrelate, found SubPlan in:\n%s", plan)
	}
	res, err := sys.Run(q)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Reference computation.
	sales, _ := sys.Cluster.Table("sales")
	sum := map[int64]int64{}
	cnt := map[int64]int64{}
	for _, r := range allRows(sales) {
		sum[r[0].I] += r[3].I
		cnt[r[0].I]++
	}
	var want int
	for _, r := range allRows(sales) {
		avg := float64(sum[r[0].I]) / float64(cnt[r[0].I])
		if float64(r[3].I) > 2*avg {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("got %d rows, want %d", len(res.Rows), want)
	}
}

func TestCTEProducerConsumer(t *testing.T) {
	sys := testSystem(t)
	q := `
		WITH top_items AS (
			SELECT item_id, sum(amount) AS total FROM sales GROUP BY item_id
		)
		SELECT a.item_id, a.total, b.total
		FROM top_items a, top_items b
		WHERE a.item_id = b.item_id
		ORDER BY a.item_id
		LIMIT 10`
	plan, err := sys.Explain(q)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if !contains(plan, "CTEProducer") || !contains(plan, "CTEConsumer") {
		t.Errorf("expected producer/consumer CTE plan:\n%s", plan)
	}
	res, err := sys.Run(q)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("LIMIT 10 returned %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Compare(r[2]) != 0 {
			t.Errorf("self-joined CTE totals differ: %v vs %v", r[1], r[2])
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func allRows(t *engine.Table) []engine.Row { return t.AllRows() }
