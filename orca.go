// Package orca is a from-scratch Go reproduction of Orca, the modular query
// optimizer architecture of Soliman et al., SIGMOD 2014: a stand-alone,
// Cascades-style, cost-based optimizer for massively parallel (MPP)
// databases, together with every substrate its evaluation depends on — a
// metadata exchange layer with provider plug-ins and a versioned cache, a
// DXL serialization format, a simulated shared-nothing MPP execution engine,
// a legacy PostgreSQL-lineage "Planner" baseline, simulated Hadoop SQL
// rivals, the AMPERe minimal-repro tool and the TAQO cost-model accuracy
// harness, and a TPC-DS-derived benchmark workload.
//
// The System type bundles a catalog, a simulated cluster and the optimizer
// into the end-to-end surface the examples and benchmarks use:
//
//	sys := orca.NewSystem(16)
//	sys.MustAddTable(md.TableSpec{Name: "t", ...})
//	sys.MustLoad(42)
//	res, _ := sys.Run("SELECT count(*) FROM t")
//
// Every component is also usable on its own; see DESIGN.md for the module
// map and EXPERIMENTS.md for the reproduced evaluation.
package orca

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"orca/internal/ampere"
	"orca/internal/core"
	"orca/internal/datagen"
	"orca/internal/engine"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/planner"
	"orca/internal/sql"
)

// System bundles a catalog (metadata provider), the shared metadata cache, a
// simulated MPP cluster and an optimizer configuration.
type System struct {
	Provider *md.MemProvider
	Cache    *md.Cache
	Cluster  *engine.Cluster
	Config   core.Config
	Mem      *gpos.MemoryAccountant

	// DumpDir, when set, enables AMPERe's automatic capture (paper §6.1):
	// an optimization failure writes a minimal self-contained repro dump —
	// query, touched metadata, configuration and the error's stack trace —
	// into this directory.
	DumpDir string
}

// NewSystem creates a system with the given segment count and a default
// single-stage optimizer configuration.
func NewSystem(segments int) *System {
	mem := &gpos.MemoryAccountant{}
	p := md.NewMemProvider()
	return &System{
		Provider: p,
		Cache:    md.NewCache(mem),
		Cluster:  engine.NewCluster(segments, p),
		Config:   core.DefaultConfig(segments),
		Mem:      mem,
	}
}

// AddTable registers a table (schema plus synthetic statistics) in the
// catalog.
func (s *System) AddTable(spec md.TableSpec) *md.Relation {
	return md.Build(s.Provider, spec)
}

// MustAddTable is AddTable for fluent setup code.
func (s *System) MustAddTable(spec md.TableSpec) *md.Relation { return s.AddTable(spec) }

// Load generates data for every registered table by reversing its declared
// statistics (datagen) and loads it into the cluster.
func (s *System) Load(seed uint64) error {
	return datagen.LoadAll(s.Cluster, s.Provider, seed)
}

// MustLoad panics on load failure; for examples and tests.
func (s *System) MustLoad(seed uint64) {
	if err := s.Load(seed); err != nil {
		panic(err)
	}
}

// Accessor opens a session-scoped metadata accessor over the shared cache.
func (s *System) Accessor() *md.Accessor {
	return md.NewAccessor(s.Cache, s.Provider)
}

// Bind parses and binds a SQL query into an optimizable form.
func (s *System) Bind(query string) (*core.Query, error) {
	acc := s.Accessor()
	f := md.NewColumnFactory()
	return sql.Bind(query, acc, f)
}

// Optimize binds and optimizes a SQL query, returning the optimization
// result (plan, cost, Memo statistics). When DumpDir is set, a failure
// automatically captures an AMPERe repro dump — both when the degradation
// ladder rescues the session (the dump path lands in Result.DumpPath) and
// when optimization fails outright.
func (s *System) Optimize(query string) (*core.Result, *core.Query, error) {
	q, err := s.Bind(query)
	if err != nil {
		return nil, nil, err
	}
	defer q.Accessor.Close()
	cfg := s.Config
	var dumped string
	if s.DumpDir != "" && cfg.DumpCapture == nil {
		cfg.DumpCapture = func(fq *core.Query, fcfg core.Config, failure *gpos.Exception) string {
			path, derr := s.writeDump(fq, fcfg, failure)
			if derr != nil {
				return ""
			}
			dumped = path
			return path
		}
	}
	res, err := core.Optimize(q, cfg)
	if err != nil {
		// The ladder already captured a dump through the hook when it
		// engaged; capture here only for failures that bypassed it (e.g.
		// DisableDegradation).
		if dumped == "" {
			if path, derr := s.captureDump(query, err); derr == nil {
				dumped = path
			}
		}
		if dumped != "" {
			return nil, nil, fmt.Errorf("%w (AMPERe dump: %s)", err, dumped)
		}
		return nil, nil, err
	}
	return res, q, nil
}

// writeDump renders an AMPERe dump for a failed optimization of an
// already-bound query into DumpDir.
func (s *System) writeDump(q *core.Query, cfg core.Config, cause error) (string, error) {
	if s.DumpDir == "" {
		return "", nil
	}
	d, err := ampere.Capture(context.Background(), q, cfg, s.Provider, cause)
	if err != nil {
		return "", err
	}
	path := filepath.Join(s.DumpDir, fmt.Sprintf("ampere-%d.dxl", time.Now().UnixNano()))
	if err := d.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// captureDump writes an AMPERe dump for a failed optimization of the given
// query text; it re-binds the query so the dump carries the original tree.
func (s *System) captureDump(query string, cause error) (string, error) {
	if s.DumpDir == "" {
		return "", nil
	}
	q, err := s.Bind(query)
	if err != nil {
		return "", err
	}
	defer q.Accessor.Close()
	return s.writeDump(q, s.Config, cause)
}

// Explain returns the optimized plan rendered as text.
func (s *System) Explain(query string) (string, error) {
	res, q, err := s.Optimize(query)
	if err != nil {
		return "", err
	}
	return core.Explain(res.Plan, q.Factory), nil
}

// Run optimizes and executes a SQL query on the simulated cluster.
func (s *System) Run(query string) (*engine.Result, error) {
	return s.RunOpts(query, engine.Options{})
}

// RunOpts is Run with execution options (budgets, memory limits).
func (s *System) RunOpts(query string, opts engine.Options) (*engine.Result, error) {
	res, q, err := s.Optimize(query)
	if err != nil {
		return nil, err
	}
	out, err := s.Cluster.Execute(res.Plan, opts)
	if err != nil {
		return nil, err
	}
	return projectOutput(out, q)
}

// OptimizeLegacy plans a SQL query with the legacy Planner baseline (the
// paper's §7.2 comparison system) instead of Orca.
func (s *System) OptimizeLegacy(query string) (*ops.Expr, *core.Query, error) {
	q, err := s.Bind(query)
	if err != nil {
		return nil, nil, err
	}
	pl := planner.New(s.Cluster.Segments, q.Accessor, q.Factory)
	plan, err := pl.Optimize(q)
	if err != nil {
		return nil, nil, err
	}
	return plan, q, nil
}

// RunLegacy optimizes with the legacy Planner and executes on the cluster.
func (s *System) RunLegacy(query string, opts engine.Options) (*engine.Result, error) {
	plan, q, err := s.OptimizeLegacy(query)
	if err != nil {
		return nil, err
	}
	defer q.Accessor.Close()
	out, err := s.Cluster.Execute(plan, opts)
	if err != nil {
		return nil, err
	}
	return projectOutput(out, q)
}

// ExplainLegacy renders the legacy Planner's plan.
func (s *System) ExplainLegacy(query string) (string, error) {
	plan, q, err := s.OptimizeLegacy(query)
	if err != nil {
		return "", err
	}
	defer q.Accessor.Close()
	return core.Explain(plan, q.Factory), nil
}

// projectOutput narrows an execution result to the query's declared output
// columns, in order.
func projectOutput(out *engine.Result, q *core.Query) (*engine.Result, error) {
	if len(q.OutCols) == 0 || out.TimedOut {
		return out, nil
	}
	pos := make([]int, len(q.OutCols))
	idx := make(map[int32]int)
	for i, c := range out.Schema {
		idx[int32(c)] = i
	}
	for i, c := range q.OutCols {
		p, ok := idx[int32(c)]
		if !ok {
			return nil, fmt.Errorf("orca: output column %d missing from plan result", c)
		}
		pos[i] = p
	}
	res := &engine.Result{Schema: q.OutCols, Stats: out.Stats, TimedOut: out.TimedOut}
	for _, r := range out.Rows {
		nr := make(engine.Row, len(pos))
		for i, p := range pos {
			nr[i] = r[p]
		}
		res.Rows = append(res.Rows, nr)
	}
	return res, nil
}
