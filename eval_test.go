package orca

import (
	"context"
	"testing"

	"orca/internal/base"
	"orca/internal/engine"
	"orca/internal/md"
)

// evalSystem is a one-table system with hand-crafted values for end-to-end
// expression semantics tests (SQL → optimizer → engine).
func evalSystem(t testing.TB) *System {
	t.Helper()
	sys := NewSystem(2)
	sys.AddTable(md.TableSpec{
		Name: "v", Rows: 6,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 6, Lo: 0, Hi: 6},
			{Name: "n", Type: base.TInt, NDV: 6, Lo: 0, Hi: 60, NullFrac: 0.2},
			{Name: "s", Type: base.TString, NDV: 6, Lo: 0, Hi: 6},
		},
	})
	rel, _ := sys.Provider.LookupRelation(context.Background(), "v")
	obj, _ := sys.Provider.GetObject(context.Background(), rel)
	i := func(v int64) base.Datum { return base.NewInt(v) }
	s := func(v string) base.Datum { return base.NewString(v) }
	rows := [][]base.Datum{
		{i(0), i(10), s("apple")},
		{i(1), i(20), s("banana")},
		{i(2), i(30), s("apricot")},
		{i(3), base.Null, s("cherry")},
		{i(4), i(50), s("avocado")},
		{i(5), i(-5), s("banana")},
	}
	engineRows := make([]engine.Row, len(rows))
	for idx, r := range rows {
		engineRows[idx] = r
	}
	if err := sys.Cluster.CreateTable(obj.(*md.Relation), engineRows); err != nil {
		t.Fatal(err)
	}
	return sys
}

// one runs a single-row single-column query and returns the datum.
func one(t *testing.T, sys *System, q string) base.Datum {
	t.Helper()
	res, err := sys.Run(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("%s: got %d rows", q, len(res.Rows))
	}
	return res.Rows[0][0]
}

func TestSQLExpressionSemantics(t *testing.T) {
	sys := evalSystem(t)
	cases := []struct {
		q    string
		want int64
	}{
		// Three-valued logic: NULL comparisons are not matches.
		{"SELECT count(*) FROM v WHERE n > 0", 4},
		{"SELECT count(*) FROM v WHERE n IS NULL", 1},
		{"SELECT count(*) FROM v WHERE n IS NOT NULL", 5},
		{"SELECT count(*) FROM v WHERE NOT n > 0", 1}, // NULL stays excluded under NOT
		// BETWEEN and IN lists.
		{"SELECT count(*) FROM v WHERE n BETWEEN 10 AND 30", 3},
		{"SELECT count(*) FROM v WHERE n NOT BETWEEN 10 AND 30", 2},
		{"SELECT count(*) FROM v WHERE id IN (1, 3, 5)", 3},
		{"SELECT count(*) FROM v WHERE id NOT IN (1, 3, 5)", 3},
		// LIKE.
		{"SELECT count(*) FROM v WHERE s LIKE 'a%'", 3},
		{"SELECT count(*) FROM v WHERE s LIKE '%an%'", 2},
		{"SELECT count(*) FROM v WHERE s LIKE 'ap_le'", 1},
		{"SELECT count(*) FROM v WHERE s LIKE 'app_e'", 1},
		{"SELECT count(*) FROM v WHERE s NOT LIKE 'a%'", 3},
		// CASE.
		{"SELECT sum(CASE WHEN n > 15 THEN 1 ELSE 0 END) FROM v", 3},
		// Arithmetic: NULL propagates, count skips it.
		{"SELECT count(n + 1) FROM v", 5},
		// Aggregates over negative values.
		{"SELECT min(n) FROM v", -5},
		{"SELECT max(n) FROM v", 50},
		{"SELECT sum(n) FROM v", 105},
		// Functions.
		{"SELECT count(*) FROM v WHERE abs(n) = 5", 1},
		{"SELECT count(*) FROM v WHERE coalesce(n, 99) = 99", 1},
		{"SELECT count(*) FROM v WHERE substr(s, 1, 2) = 'ap'", 2},
		// Integer arithmetic stays integral.
		{"SELECT 7 % 3 + 2 * 3 FROM v LIMIT 1", 7},
	}
	for _, c := range cases {
		got := one(t, sys, c.q)
		if got.IsNull() || got.I != c.want {
			t.Errorf("%s = %s, want %d", c.q, got, c.want)
		}
	}
}

func TestSQLDivisionProducesFloat(t *testing.T) {
	sys := evalSystem(t)
	got := one(t, sys, "SELECT 7 / 2 FROM v LIMIT 1")
	if got.Kind != base.DFloat || got.F != 3.5 {
		t.Errorf("7/2 = %s, want 3.5", got)
	}
	if d := one(t, sys, "SELECT sum(n) / count(n) FROM v"); d.AsFloat() != 21 {
		t.Errorf("avg via sum/count = %s, want 21", d)
	}
}

func TestSQLAvgRewrite(t *testing.T) {
	sys := evalSystem(t)
	got := one(t, sys, "SELECT avg(n) FROM v")
	if got.AsFloat() != 21 {
		t.Errorf("avg(n) = %s, want 21 (NULL skipped)", got)
	}
}

// TestMetadataVersionInvalidation reproduces the paper's §4.1 metadata
// versioning story end to end: a version bump in the backend (ANALYZE/DDL)
// must be picked up by the next optimization through the shared cache.
func TestMetadataVersionInvalidation(t *testing.T) {
	sys := evalSystem(t)
	if _, err := sys.Explain("SELECT count(*) FROM v"); err != nil {
		t.Fatal(err)
	}
	// The backend replaces the relation under a bumped version.
	if _, err := sys.Provider.BumpRelationVersion("v"); err != nil {
		t.Fatal(err)
	}
	// A fresh session must resolve the new version and plan fine.
	if _, err := sys.Explain("SELECT count(*) FROM v"); err != nil {
		t.Fatalf("replan after version bump: %v", err)
	}
	hits, misses := sys.Cache.Stats()
	if misses < 2 {
		t.Errorf("expected a cache miss for the new version: hits=%d misses=%d", hits, misses)
	}
}
