#!/bin/sh
# check.sh — the repo's full quality gate. Exits non-zero on any finding.
#
#   build    go build ./...
#   format   gofmt -l on all tracked Go files
#   vet      go vet ./...
#   orcavet  the project's own static analyzers (cmd/orcavet): the
#            per-package suite (memoimmut, lockcheck, opexhaustive,
#            errdrop, faultpoint) plus the interprocedural passes
#            (atomicpub, ctxflow, opclosure). One module-wide pass
#            emitting SARIF, gated against orcavet.baseline.json: any
#            non-baselined finding (or stale //orcavet:ignore) fails
#            the build. internal/analysis is part of ./..., so the
#            suite also analyzes its own implementation. Budget: 60s.
#   test     go test ./...
#   race     go test -race over the concurrency-heavy packages
#            (search scheduler, memo, gpos worker pool, and core — the
#            multi-stage driver shares one Memo across scheduler runs)
#   chaos    a randomized fault-injection schedule (error/panic/delay at
#            registered fault points) run under -race; the seed rotates
#            daily and is printed on failure — replay with
#            ORCA_CHAOS=1 ORCA_CHAOS_SEED=<n> go test -race -run
#            TestChaosSchedule ./internal/core/
#   membench one short pass over the Memo hot-path microbenchmarks
#            (internal/memo BenchmarkMemo*) — catches compile rot and
#            gross regressions; the full -cpu=1,2,4,8 curve is
#            `cmd/benchmarks -experiment=memo -json` → BENCH_memo.json
#
# Run from the repository root: ./check.sh
set -eu
cd "$(dirname "$0")"

echo "==> build"
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> orcavet (SARIF, gated on orcavet.baseline.json)"
orcavet_start=$(date +%s)
go run ./cmd/orcavet -sarif -baseline orcavet.baseline.json ./... > /dev/null
orcavet_elapsed=$(($(date +%s) - orcavet_start))
echo "    orcavet finished in ${orcavet_elapsed}s"
if [ "$orcavet_elapsed" -ge 60 ]; then
    echo "orcavet: exceeded the 60s budget (${orcavet_elapsed}s)" >&2
    exit 1
fi

echo "==> go test"
go test ./...

echo "==> go test -race (scheduler / memo / gpos / core)"
go test -race ./internal/search/... ./internal/memo/... ./internal/gpos/... ./internal/core/...

chaos_seed="${ORCA_CHAOS_SEED:-$(date +%Y%j)}"
echo "==> chaos (randomized fault schedule under -race, seed $chaos_seed)"
ORCA_CHAOS=1 ORCA_CHAOS_SEED="$chaos_seed" \
    go test -race -count=1 -run TestChaosSchedule ./internal/core/

echo "==> memo microbenchmarks (smoke pass)"
go test -run '^$' -bench 'BenchmarkMemo' -benchtime=1000x ./internal/memo/

echo "All checks passed."
