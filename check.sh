#!/bin/sh
# check.sh — the repo's full quality gate. Exits non-zero on any finding.
#
#   build    go build ./...
#   format   gofmt -l on all tracked Go files
#   vet      go vet ./...
#   orcavet  the project's own static analyzers (cmd/orcavet): the
#            per-package suite (memoimmut, lockcheck, opexhaustive,
#            errdrop, faultpoint) plus the interprocedural passes
#            (atomicpub, ctxflow, opclosure, hotpath, golifetime) and
#            the serving-tier passes (lockorder, pubimmut, respwrite) —
#            thirteen analyzers total. opclosure also cross-checks the
#            defs/*.opt declarations against the Go operator inventory
#            and the hand-written rule legs (apply<Rule> / match<Rule>)
#            in internal/xform. The binary is compiled once to a temp
#            path so the 60s budget times only the analysis, not the
#            toolchain. One module-wide pass emitting SARIF, gated
#            against orcavet.baseline.json: any non-baselined finding,
#            stale //orcavet:ignore, or stale baseline entry (one that
#            matches no live finding) fails the build with exit 1;
#            exit 2 means the analysis itself broke (loader error),
#            which is reported as such rather than as findings.
#            internal/analysis is part of ./..., so the suite also
#            analyzes its own implementation. Per-analyzer wall time
#            and finding counts are appended to BENCH_orcavet.json.
#   generate re-runs cmd/optgen via go generate and fails on any diff
#            in defs/, the *.gen.go outputs, or docs/opmatrix.md —
#            hand-edited generated code and stale regeneration both
#            show up here.
#   test     go test ./...
#   race     go test -race over the concurrency-heavy packages
#            (search scheduler, memo, gpos worker pool, core — the
#            multi-stage driver shares one Memo across scheduler runs —
#            serve, whose admission/drain paths are all-concurrent, and
#            plancache, whose sharded LRU and singleflight are too)
#   smoke    build cmd/orcad, start it on an ephemeral port against the
#            demo catalog, require /readyz, one full /optimize round
#            trip plus a warm repeat that must be a plan-cache hit
#            (X-Orca-Cache: hit), then SIGTERM and require a clean
#            drained exit
#   chaos    a randomized fault-injection schedule (error/panic/delay at
#            registered fault points) run under -race; the seed rotates
#            daily and is printed on failure — replay with
#            ORCA_CHAOS=1 ORCA_CHAOS_SEED=<n> go test -race -run
#            TestChaosSchedule ./internal/core/ (plus the service-level
#            storm -run TestServeChaosStorm and the plan-cache schedule
#            -run TestServeCacheChaos, both ./internal/serve/)
#   membench one short pass over the Memo hot-path microbenchmarks
#            (internal/memo BenchmarkMemo*) — catches compile rot and
#            gross regressions; the full -cpu=1,2,4,8 curve is
#            `cmd/benchmarks -experiment=memo -json` → BENCH_memo.json
#
# Run from the repository root: ./check.sh
set -eu
cd "$(dirname "$0")"

echo "==> build"
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> orcavet (compiled once; SARIF, gated on orcavet.baseline.json)"
orcavet_tmp=$(mktemp -d)
trap 'rm -rf "$orcavet_tmp"' EXIT
go build -o "$orcavet_tmp/orcavet" ./cmd/orcavet
orcavet_start=$(date +%s)
orcavet_rc=0
"$orcavet_tmp/orcavet" -sarif -timings \
    -baseline orcavet.baseline.json \
    -stats "$orcavet_tmp/stats.json" \
    ./... > /dev/null || orcavet_rc=$?
orcavet_elapsed=$(($(date +%s) - orcavet_start))
echo "    orcavet analysis finished in ${orcavet_elapsed}s (compile excluded)"
case "$orcavet_rc" in
0) ;;
1)
    echo "orcavet: non-baselined finding(s) or stale baseline entry(ies) —" >&2
    echo "fix/remove them or regenerate orcavet.baseline.json with -write-baseline" >&2
    exit 1
    ;;
*)
    echo "orcavet: internal error (exit $orcavet_rc); the findings gate did not run" >&2
    exit "$orcavet_rc"
    ;;
esac
if [ "$orcavet_elapsed" -ge 60 ]; then
    echo "orcavet: exceeded the 60s budget (${orcavet_elapsed}s)" >&2
    exit 1
fi
cat "$orcavet_tmp/stats.json" >> BENCH_orcavet.json

echo "==> go generate drift gate (defs/*.opt -> *.gen.go, docs/opmatrix.md)"
go generate ./...
if ! git diff --exit-code -- defs '*.gen.go' docs/opmatrix.md; then
    echo "generate: generated outputs are stale or hand-edited; commit the" >&2
    echo "result of 'go generate ./...' (cmd/optgen) instead" >&2
    exit 1
fi

echo "==> go test"
go test ./...

echo "==> go test -race (scheduler / memo / gpos / core / serve / plancache)"
go test -race ./internal/search/... ./internal/memo/... ./internal/gpos/... ./internal/core/... ./internal/serve/... ./internal/plancache/...

echo "==> orcad smoke (ephemeral port, /readyz, cold+warm round trip, SIGTERM drain)"
go build -o "$orcavet_tmp/orcad" ./cmd/orcad
rm -f "$orcavet_tmp/orcad.addr"
"$orcavet_tmp/orcad" -demo-catalog -addr=127.0.0.1:0 \
    -addr-file="$orcavet_tmp/orcad.addr" 2> "$orcavet_tmp/orcad.log" &
orcad_pid=$!
addr=""
for _ in $(seq 1 100); do
    [ -s "$orcavet_tmp/orcad.addr" ] && { addr=$(cat "$orcavet_tmp/orcad.addr"); break; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "orcad smoke: server never wrote its address" >&2
    cat "$orcavet_tmp/orcad.log" >&2
    kill "$orcad_pid" 2>/dev/null || true
    exit 1
fi
curl -sf "http://$addr/readyz" > /dev/null || {
    echo "orcad smoke: /readyz failed" >&2; kill "$orcad_pid"; exit 1; }
curl -sf -X POST "http://$addr/optimize" \
    -d '{"sql":"SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a"}' \
    | grep -q '"plan"' || {
    echo "orcad smoke: /optimize round trip failed" >&2; kill "$orcad_pid"; exit 1; }
# The identical second request must be served from the parameterized plan
# cache: assert the X-Orca-Cache: hit header on the warm round trip.
curl -sf -D - -o /dev/null -X POST "http://$addr/optimize" \
    -d '{"sql":"SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a"}' \
    | grep -qi '^X-Orca-Cache: hit' || {
    echo "orcad smoke: warm second request was not a plan-cache hit" >&2
    kill "$orcad_pid"; exit 1; }
kill -TERM "$orcad_pid"
orcad_rc=0
wait "$orcad_pid" || orcad_rc=$?
if [ "$orcad_rc" -ne 0 ]; then
    echo "orcad smoke: exit $orcad_rc after SIGTERM (want clean drained exit)" >&2
    cat "$orcavet_tmp/orcad.log" >&2
    exit 1
fi
grep -q "drained, exiting" "$orcavet_tmp/orcad.log" || {
    echo "orcad smoke: no drain confirmation in the log" >&2
    cat "$orcavet_tmp/orcad.log" >&2
    exit 1
}

chaos_seed="${ORCA_CHAOS_SEED:-$(date +%Y%j)}"
echo "==> chaos (randomized fault schedule under -race, seed $chaos_seed)"
ORCA_CHAOS=1 ORCA_CHAOS_SEED="$chaos_seed" \
    go test -race -count=1 -run TestChaosSchedule ./internal/core/
echo "==> chaos storm (serve under seeded faults at 4x admission, seed $chaos_seed)"
ORCA_CHAOS=1 ORCA_CHAOS_SEED="$chaos_seed" \
    go test -race -count=1 -run TestServeChaosStorm ./internal/serve/
echo "==> chaos plan cache (corrupt/stale plancache faults, seed $chaos_seed)"
ORCA_CHAOS=1 ORCA_CHAOS_SEED="$chaos_seed" \
    go test -race -count=1 -run TestServeCacheChaos ./internal/serve/

echo "==> memo microbenchmarks (smoke pass)"
go test -run '^$' -bench 'BenchmarkMemo' -benchtime=1000x ./internal/memo/

echo "All checks passed."
