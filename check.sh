#!/bin/sh
# check.sh — the repo's full quality gate. Exits non-zero on any finding.
#
#   build    go build ./...
#   format   gofmt -l on all tracked Go files
#   vet      go vet ./...
#   orcavet  the project's own static analyzers (cmd/orcavet): the
#            per-package suite (memoimmut, lockcheck, opexhaustive,
#            errdrop, faultpoint) plus the interprocedural passes
#            (atomicpub, ctxflow, opclosure, hotpath, golifetime).
#            opclosure also cross-checks the defs/*.opt declarations
#            against the Go operator inventory and the hand-written
#            rule legs (apply<Rule> / match<Rule>) in internal/xform.
#            The binary is compiled once to a temp path so the 60s
#            budget times only the analysis, not the toolchain. One
#            module-wide pass emitting SARIF, gated against
#            orcavet.baseline.json: any non-baselined finding (or
#            stale //orcavet:ignore) fails the build with exit 1;
#            exit 2 means the analysis itself broke (loader error),
#            which is reported as such rather than as findings.
#            internal/analysis is part of ./..., so the suite also
#            analyzes its own implementation. Per-analyzer wall time
#            and finding counts are appended to BENCH_orcavet.json.
#   generate re-runs cmd/optgen via go generate and fails on any diff
#            in defs/, the *.gen.go outputs, or docs/opmatrix.md —
#            hand-edited generated code and stale regeneration both
#            show up here.
#   test     go test ./...
#   race     go test -race over the concurrency-heavy packages
#            (search scheduler, memo, gpos worker pool, and core — the
#            multi-stage driver shares one Memo across scheduler runs)
#   chaos    a randomized fault-injection schedule (error/panic/delay at
#            registered fault points) run under -race; the seed rotates
#            daily and is printed on failure — replay with
#            ORCA_CHAOS=1 ORCA_CHAOS_SEED=<n> go test -race -run
#            TestChaosSchedule ./internal/core/
#   membench one short pass over the Memo hot-path microbenchmarks
#            (internal/memo BenchmarkMemo*) — catches compile rot and
#            gross regressions; the full -cpu=1,2,4,8 curve is
#            `cmd/benchmarks -experiment=memo -json` → BENCH_memo.json
#
# Run from the repository root: ./check.sh
set -eu
cd "$(dirname "$0")"

echo "==> build"
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> orcavet (compiled once; SARIF, gated on orcavet.baseline.json)"
orcavet_tmp=$(mktemp -d)
trap 'rm -rf "$orcavet_tmp"' EXIT
go build -o "$orcavet_tmp/orcavet" ./cmd/orcavet
orcavet_start=$(date +%s)
orcavet_rc=0
"$orcavet_tmp/orcavet" -sarif -timings \
    -baseline orcavet.baseline.json \
    -stats "$orcavet_tmp/stats.json" \
    ./... > /dev/null || orcavet_rc=$?
orcavet_elapsed=$(($(date +%s) - orcavet_start))
echo "    orcavet analysis finished in ${orcavet_elapsed}s (compile excluded)"
case "$orcavet_rc" in
0) ;;
1)
    echo "orcavet: non-baselined finding(s) — fix them or add them to orcavet.baseline.json" >&2
    exit 1
    ;;
*)
    echo "orcavet: internal error (exit $orcavet_rc); the findings gate did not run" >&2
    exit "$orcavet_rc"
    ;;
esac
if [ "$orcavet_elapsed" -ge 60 ]; then
    echo "orcavet: exceeded the 60s budget (${orcavet_elapsed}s)" >&2
    exit 1
fi
cat "$orcavet_tmp/stats.json" >> BENCH_orcavet.json

echo "==> go generate drift gate (defs/*.opt -> *.gen.go, docs/opmatrix.md)"
go generate ./...
if ! git diff --exit-code -- defs '*.gen.go' docs/opmatrix.md; then
    echo "generate: generated outputs are stale or hand-edited; commit the" >&2
    echo "result of 'go generate ./...' (cmd/optgen) instead" >&2
    exit 1
fi

echo "==> go test"
go test ./...

echo "==> go test -race (scheduler / memo / gpos / core)"
go test -race ./internal/search/... ./internal/memo/... ./internal/gpos/... ./internal/core/...

chaos_seed="${ORCA_CHAOS_SEED:-$(date +%Y%j)}"
echo "==> chaos (randomized fault schedule under -race, seed $chaos_seed)"
ORCA_CHAOS=1 ORCA_CHAOS_SEED="$chaos_seed" \
    go test -race -count=1 -run TestChaosSchedule ./internal/core/

echo "==> memo microbenchmarks (smoke pass)"
go test -run '^$' -bench 'BenchmarkMemo' -benchtime=1000x ./internal/memo/

echo "All checks passed."
