package orca

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAutomaticAmpereCaptureOnError triggers an optimization failure (an
// unsupported correlation shape) and verifies the facade writes a minimal
// AMPERe dump, as in paper §6.1 ("an AMPERe dump is automatically triggered
// when an unexpected error is encountered").
func TestAutomaticAmpereCaptureOnError(t *testing.T) {
	sys := testSystem(t)
	sys.DumpDir = t.TempDir()

	// Non-equality correlation inside an aggregate subquery is rejected by
	// the decorrelation machinery.
	_, _, err := sys.Optimize(`
		SELECT s.item_id FROM sales s
		WHERE s.amount > (SELECT avg(s2.amount) FROM sales s2 WHERE s2.item_id < s.item_id)`)
	if err == nil {
		t.Fatal("expected optimization to fail")
	}
	if !strings.Contains(err.Error(), "AMPERe dump:") {
		t.Fatalf("error does not reference the dump: %v", err)
	}
	entries, err2 := os.ReadDir(sys.DumpDir)
	if err2 != nil || len(entries) != 1 {
		t.Fatalf("dump dir entries: %v, %v", entries, err2)
	}
	data, err2 := os.ReadFile(filepath.Join(sys.DumpDir, entries[0].Name()))
	if err2 != nil {
		t.Fatal(err2)
	}
	doc := string(data)
	for _, want := range []string{"Stacktrace", "Metadata", "Query", "Subquery"} {
		if !strings.Contains(doc, want) {
			t.Errorf("dump missing %s section", want)
		}
	}
	// Minimality: untouched tables are not in the dump.
	if strings.Contains(doc, `Name="customer"`) {
		t.Error("dump contains metadata the failing session never touched")
	}
}
