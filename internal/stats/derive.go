package stats

import (
	"math"
	"sync"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
)

// Stats is the statistics object attached to a Memo group: an estimated row
// count plus per-column histograms. Stats values are immutable; derivation
// produces new objects.
type Stats struct {
	Rows float64
	Cols map[base.ColID]*Histogram
}

// NewStats builds an empty statistics object with the given cardinality.
// Pathological inputs (NaN, negative, infinite) are clamped so one bad
// estimate cannot poison cost comparisons across the Memo.
func NewStats(rows float64) *Stats {
	if math.IsNaN(rows) || rows < 0 {
		rows = 0
	} else if math.IsInf(rows, 1) {
		rows = 1e15
	}
	return &Stats{Rows: rows, Cols: make(map[base.ColID]*Histogram)}
}

// Hist returns the histogram of a column, or nil.
func (s *Stats) Hist(c base.ColID) *Histogram {
	if s == nil {
		return nil
	}
	return s.Cols[c]
}

// NDV returns the estimated distinct count of a column; when unknown it
// falls back to a fraction of the row count.
func (s *Stats) NDV(c base.ColID) float64 {
	if h := s.Hist(c); h != nil && h.NDV > 0 {
		return h.NDV
	}
	return math.Max(1, s.Rows*0.1)
}

// clone copies the stats with all histograms scaled by the row ratio.
func (s *Stats) scaled(rows float64) *Stats {
	out := NewStats(rows)
	factor := 1.0
	if s.Rows > 0 {
		factor = rows / s.Rows
	}
	for c, h := range s.Cols {
		out.Cols[c] = h.Scale(factor)
	}
	return out
}

// WithRows returns a copy of the stats rescaled to the given row count.
func (s *Stats) WithRows(rows float64) *Stats { return s.scaled(rows) }

// SizeBytes approximates the memory footprint, charged to the accountant.
func (s *Stats) SizeBytes() int64 {
	n := int64(48)
	for _, h := range s.Cols {
		n += 64 + 40*int64(len(h.Buckets))
	}
	return n
}

// Context supplies the statistics deriver with metadata access and the
// stats of CTE producers derived earlier in the same pass. It is safe for
// concurrent use by parallel optimization jobs.
type Context struct {
	Accessor *md.Accessor
	// DampingFactor discounts stacked predicate selectivities to counter
	// the independence assumption (1 = full independence).
	DampingFactor float64

	mu  sync.Mutex
	cte map[int]*Stats
}

// NewContext builds a derivation context.
func NewContext(acc *md.Accessor) *Context {
	return &Context{Accessor: acc, cte: make(map[int]*Stats), DampingFactor: 0.85}
}

// ForGet loads base-table statistics through the metadata accessor,
// translating column ordinals to the Get's column references. Histograms are
// fetched lazily — this is the paper's on-demand histogram loading.
func (ctx *Context) ForGet(rel *md.Relation, cols []*md.ColRef) (*Stats, error) {
	if !rel.StatsMdid.IsValid() {
		// No statistics collected: default guess.
		return NewStats(1000), nil
	}
	rs, err := ctx.Accessor.Stats(rel.StatsMdid)
	if err != nil {
		return nil, err
	}
	out := NewStats(rs.Rows)
	for _, cr := range cols {
		if cr.Ordinal < 0 {
			continue
		}
		if cs := rs.ColStatsFor(cr.Ordinal); cs != nil {
			out.Cols[cr.ID] = FromColStats(cs)
		}
	}
	return out, nil
}

// The Derive dispatch switch is generated into dispatch.gen.go from the
// logical operator definitions in defs/; the per-operator derive<Op>
// methods below are the hand-written derivation bodies it calls.

func (ctx *Context) deriveGet(o *ops.Get, _ []*Stats) (*Stats, error) {
	return ctx.ForGet(o.Rel, o.Cols)
}

func (ctx *Context) deriveSelect(o *ops.Select, child []*Stats) (*Stats, error) {
	return ctx.ApplyPred(child[0], o.Pred), nil
}

func (ctx *Context) deriveProject(_ *ops.Project, child []*Stats) (*Stats, error) {
	return child[0].scaled(child[0].Rows), nil
}

func (ctx *Context) deriveJoin(o *ops.Join, child []*Stats) (*Stats, error) {
	return ctx.DeriveJoin(o.Type, o.Pred, child[0], child[1]), nil
}

func (ctx *Context) deriveGbAgg(o *ops.GbAgg, child []*Stats) (*Stats, error) {
	return ctx.DeriveGroupBy(o.GroupCols, child[0]), nil
}

func (ctx *Context) deriveLimit(o *ops.Limit, child []*Stats) (*Stats, error) {
	rows := child[0].Rows
	if o.HasCount && float64(o.Count) < rows {
		rows = float64(o.Count)
	}
	return child[0].scaled(rows), nil
}

func (ctx *Context) deriveUnionAll(o *ops.UnionAll, child []*Stats) (*Stats, error) {
	return deriveUnion(o.InCols, o.OutCols, child), nil
}

func (ctx *Context) deriveCTEAnchor(_ *ops.CTEAnchor, child []*Stats) (*Stats, error) {
	return child[1], nil
}

func (ctx *Context) deriveCTEConsumer(o *ops.CTEConsumer, _ []*Stats) (*Stats, error) {
	return ctx.cteConsumerStats(o.ID, colRefIDs(o.Cols), o.ProducerCols), nil
}

func (ctx *Context) deriveWindow(_ *ops.Window, child []*Stats) (*Stats, error) {
	return child[0].scaled(child[0].Rows), nil
}

// deriveDefault passes the first child's statistics through; operators
// without a derivation body neither grow nor shrink their input.
func (ctx *Context) deriveDefault(child []*Stats) *Stats {
	if len(child) > 0 {
		return child[0]
	}
	return NewStats(1)
}

func colRefIDs(refs []*md.ColRef) []base.ColID {
	out := make([]base.ColID, len(refs))
	for i, r := range refs {
		out[i] = r.ID
	}
	return out
}

func (ctx *Context) cteConsumerStats(id int, cols, producerCols []base.ColID) *Stats {
	ctx.mu.Lock()
	prod, ok := ctx.cte[id]
	ctx.mu.Unlock()
	if !ok {
		return NewStats(1000)
	}
	out := NewStats(prod.Rows)
	for i, pc := range producerCols {
		if i < len(cols) {
			if h := prod.Hist(pc); h != nil {
				out.Cols[cols[i]] = h
			}
		}
	}
	return out
}

// RegisterCTE records producer statistics for consumers derived later.
func (ctx *Context) RegisterCTE(id int, s *Stats) {
	ctx.mu.Lock()
	ctx.cte[id] = s
	ctx.mu.Unlock()
}

// HasCTE reports whether producer statistics were registered for the CTE.
func (ctx *Context) HasCTE(id int) bool {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	_, ok := ctx.cte[id]
	return ok
}

// ---------------------------------------------------------------------------
// Filters

// ApplyPred estimates a predicate's selectivity and reshapes the column
// histograms it constrains. Conjunct selectivities are combined with
// exponential damping to soften the independence assumption.
func (ctx *Context) ApplyPred(in *Stats, pred ops.ScalarExpr) *Stats {
	if pred == nil {
		return in
	}
	conjuncts := ops.Conjuncts(pred)
	sel := 1.0
	damp := 1.0
	filtered := make(map[base.ColID]*Histogram)
	for _, c := range conjuncts {
		cs := ctx.conjunctSel(in, c, filtered)
		sel *= math.Pow(cs, damp)
		damp *= ctx.DampingFactor
	}
	rows := math.Max(in.Rows*sel, 0)
	out := in.scaled(rows)
	// Columns directly constrained get their trimmed histograms (rescaled to
	// the output cardinality).
	for col, h := range filtered {
		hr := h.Rows()
		if hr > 0 && rows > 0 {
			out.Cols[col] = h.Scale(math.Min(rows/hr, 1))
		} else {
			out.Cols[col] = h
		}
	}
	return out
}

// conjunctSel estimates one conjunct's selectivity, recording per-column
// trimmed histograms in filtered.
func (ctx *Context) conjunctSel(in *Stats, c ops.ScalarExpr, filtered map[base.ColID]*Histogram) float64 {
	switch x := c.(type) {
	case *ops.Cmp:
		return ctx.cmpSel(in, x, filtered)
	case *ops.BoolOp:
		switch x.Kind {
		case ops.BoolNot:
			return clampSel(1 - ctx.conjunctSel(in, x.Args[0], map[base.ColID]*Histogram{}))
		case ops.BoolOr:
			notSel := 1.0
			for _, a := range x.Args {
				notSel *= 1 - ctx.conjunctSel(in, a, map[base.ColID]*Histogram{})
			}
			return clampSel(1 - notSel)
		default: // nested AND
			s := 1.0
			for _, a := range x.Args {
				s *= ctx.conjunctSel(in, a, filtered)
			}
			return s
		}
	case *ops.InList:
		if id, ok := x.Arg.(*ops.Ident); ok {
			if h := in.Hist(id.Col); h != nil {
				s := 0.0
				for _, v := range x.Vals {
					if cv, ok := v.(*ops.Const); ok {
						s += h.EqSel(cv.Val)
					}
				}
				if x.Negated {
					return clampSel(1 - s)
				}
				return clampSel(s)
			}
		}
		s := DefaultEqSel * float64(len(x.Vals))
		if x.Negated {
			s = 1 - s
		}
		return clampSel(s)
	case *ops.IsNull:
		var nf float64
		if id, ok := x.Arg.(*ops.Ident); ok {
			if h := in.Hist(id.Col); h != nil {
				nf = h.NullFrac
			}
		}
		if x.Negated {
			return clampSel(1 - nf)
		}
		return clampSel(math.Max(nf, 0.001))
	case *ops.Func:
		if x.Name == "like" {
			return 0.1
		}
		return DefaultRangeSel
	case *ops.Subquery:
		return 0.5
	case *ops.Const:
		if x.Val.Bool() {
			return 1
		}
		return 0
	default:
		return DefaultRangeSel
	}
}

func (ctx *Context) cmpSel(in *Stats, x *ops.Cmp, filtered map[base.ColID]*Histogram) float64 {
	// Normalize to Ident <op> Const.
	l, r := x.L, x.R
	op := x.Op
	if _, ok := l.(*ops.Const); ok {
		l, r = r, l
		op = op.Commuted()
	}
	id, lok := l.(*ops.Ident)
	cv, rok := r.(*ops.Const)
	if lok && rok {
		h := in.Hist(id.Col)
		if h == nil {
			return defaultCmpSel(op)
		}
		v := cv.Val.AsFloat()
		switch op {
		case ops.CmpEq:
			filtered[id.Col] = h.FilterRange(v, v)
			return clampSel(h.EqSel(cv.Val))
		case ops.CmpNe:
			return clampSel(1 - h.EqSel(cv.Val))
		case ops.CmpLt, ops.CmpLe:
			filtered[id.Col] = h.FilterRange(math.Inf(-1), v)
			return clampSel(h.RangeSel(math.Inf(-1), v))
		case ops.CmpGt, ops.CmpGe:
			filtered[id.Col] = h.FilterRange(v, math.Inf(1))
			return clampSel(h.RangeSel(v, math.Inf(1)))
		}
	}
	// Column-to-column comparison within one input.
	li, lok2 := x.L.(*ops.Ident)
	ri, rok2 := x.R.(*ops.Ident)
	if lok2 && rok2 {
		if op == ops.CmpEq {
			ndv := math.Max(in.NDV(li.Col), in.NDV(ri.Col))
			return clampSel(1 / math.Max(ndv, 1))
		}
		return DefaultRangeSel
	}
	return defaultCmpSel(op)
}

func defaultCmpSel(op ops.CmpOp) float64 {
	switch op {
	case ops.CmpEq:
		return DefaultEqSel
	case ops.CmpNe:
		return DefaultNeSel
	default:
		return DefaultRangeSel
	}
}

func clampSel(s float64) float64 {
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// ---------------------------------------------------------------------------
// Joins

// DeriveJoin estimates join cardinality using histogram overlap on the
// equi-join keys (paper Figure 5: child histograms are combined into a
// possibly modified parent histogram).
func (ctx *Context) DeriveJoin(t ops.JoinType, pred ops.ScalarExpr, left, right *Stats) *Stats {
	leftKeys, rightKeys, residual := ops.EquiKeys(pred, colsOf(left), colsOf(right))
	// Equi-key selectivity over the row product.
	sel := 1.0
	damp := 1.0
	matchNDVs := make(map[base.ColID]float64)
	if len(leftKeys) == 0 {
		sel = crossSel(pred)
	}
	for i := range leftKeys {
		s, ndv := JoinOverlap(left.Hist(leftKeys[i]), right.Hist(rightKeys[i]))
		sel *= math.Pow(s, damp)
		damp *= ctx.DampingFactor
		if ndv > 0 {
			matchNDVs[leftKeys[i]] = ndv
			matchNDVs[rightKeys[i]] = ndv
		}
	}
	innerRows := left.Rows * right.Rows * sel
	switch t {
	case ops.InnerJoin, ops.LeftJoin:
		rows := innerRows
		if t == ops.LeftJoin && rows < left.Rows {
			rows = left.Rows
		}
		out := NewStats(math.Max(rows, 0))
		lf, rf := 1.0, 1.0
		if left.Rows > 0 {
			lf = math.Min(rows/left.Rows, 1)
		}
		if right.Rows > 0 {
			rf = math.Min(rows/right.Rows, 1)
		}
		for c, h := range left.Cols {
			out.Cols[c] = h.Scale(lf)
		}
		for c, h := range right.Cols {
			out.Cols[c] = h.Scale(rf)
		}
		for c, ndv := range matchNDVs {
			if h := out.Cols[c]; h != nil {
				h.NDV = math.Min(h.NDV, ndv)
			}
		}
		if len(residual) > 0 {
			out = ctx.ApplyPred(out, ops.And(residual...))
		}
		return out
	case ops.SemiJoin, ops.AntiJoin:
		// Fraction of outer rows with at least one match.
		matchFrac := 1.0
		if len(leftKeys) > 0 {
			matchFrac = 0.0
			for i := range leftKeys {
				lh := left.Hist(leftKeys[i])
				ndvL := left.NDV(leftKeys[i])
				_, matchNDV := JoinOverlap(lh, right.Hist(rightKeys[i]))
				f := 0.75
				if ndvL > 0 && matchNDV > 0 {
					f = math.Min(matchNDV/ndvL, 1)
				}
				if matchFrac == 0 || f < matchFrac {
					matchFrac = f
				}
			}
		} else {
			matchFrac = 0.5
		}
		if t == ops.AntiJoin {
			matchFrac = 1 - matchFrac
		}
		return left.scaled(math.Max(left.Rows*matchFrac, 0))
	default:
		return left
	}
}

// crossSel estimates a join predicate with no extractable equi keys.
func crossSel(pred ops.ScalarExpr) float64 {
	if pred == nil {
		return 1
	}
	return DefaultRangeSel
}

func colsOf(s *Stats) base.ColSet {
	var out base.ColSet
	for c := range s.Cols {
		out.Add(c)
	}
	return out
}

// deriveNAryJoin chains the children pairwise in order, applying every
// predicate at the first point both sides are available.
func (ctx *Context) deriveNAryJoin(o *ops.NAryJoin, child []*Stats) (*Stats, error) {
	if len(child) == 0 {
		return NewStats(1), nil
	}
	acc := child[0]
	remaining := make([]ops.ScalarExpr, len(o.Preds))
	copy(remaining, o.Preds)
	for i := 1; i < len(child); i++ {
		accCols := colsOf(acc)
		nextCols := colsOf(child[i])
		both := accCols.Union(nextCols)
		var applicable []ops.ScalarExpr
		var rest []ops.ScalarExpr
		for _, p := range remaining {
			if p.Cols().SubsetOf(both) {
				applicable = append(applicable, p)
			} else {
				rest = append(rest, p)
			}
		}
		remaining = rest
		acc = ctx.DeriveJoin(ops.InnerJoin, ops.And(applicable...), acc, child[i])
	}
	if len(remaining) > 0 {
		acc = ctx.ApplyPred(acc, ops.And(remaining...))
	}
	return acc, nil
}

// ---------------------------------------------------------------------------
// Aggregation, union

// DeriveGroupBy estimates grouped-aggregate cardinality as the (damped)
// product of grouping-column NDVs, capped by the input cardinality.
func (ctx *Context) DeriveGroupBy(groupCols []base.ColID, in *Stats) *Stats {
	if len(groupCols) == 0 {
		out := NewStats(1)
		return out
	}
	groups := 1.0
	for i, c := range groupCols {
		ndv := in.NDV(c)
		if i == 0 {
			groups = ndv
		} else {
			// Damped product: later columns contribute the square root of
			// their NDV, a common correlation heuristic.
			groups *= math.Sqrt(ndv)
		}
	}
	groups = math.Min(groups, in.Rows)
	groups = math.Max(groups, 1)
	out := NewStats(groups)
	for _, c := range groupCols {
		if h := in.Hist(c); h != nil {
			// Each distinct value appears once.
			nb := make([]md.Bucket, len(h.Buckets))
			for i, b := range h.Buckets {
				nb[i] = md.Bucket{Lo: b.Lo, Hi: b.Hi, Rows: b.Distincts, Distincts: b.Distincts}
			}
			out.Cols[c] = &Histogram{Buckets: nb, NDV: h.NDV}
		}
	}
	return out
}

func deriveUnion(inCols [][]base.ColID, outCols []*md.ColRef, child []*Stats) *Stats {
	var rows float64
	for _, c := range child {
		rows += c.Rows
	}
	out := NewStats(rows)
	if len(child) > 0 && len(inCols) > 0 {
		for i, oc := range outCols {
			if i < len(inCols[0]) {
				if h := child[0].Hist(inCols[0][i]); h != nil && child[0].Rows > 0 {
					out.Cols[oc.ID] = h.Scale(rows / child[0].Rows)
				}
			}
		}
	}
	return out
}
