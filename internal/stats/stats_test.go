package stats

import (
	"math"
	"testing"
	"testing/quick"

	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
)

// uniformHist builds a histogram of `rows` rows with `ndv` values over
// [lo, hi).
func uniformHist(rows, ndv, lo, hi float64) *Histogram {
	return &Histogram{
		Buckets: md.UniformBuckets(rows, ndv, lo, hi, 0),
		NDV:     ndv,
	}
}

func TestHistogramEqSel(t *testing.T) {
	h := uniformHist(1000, 100, 0, 100)
	sel := h.EqSel(base.NewInt(50))
	if sel < 0.005 || sel > 0.02 {
		t.Errorf("EqSel(50) = %g, want ~1/100", sel)
	}
	if h.EqSel(base.NewInt(500)) != 0 {
		t.Error("out-of-range equality should be 0")
	}
}

func TestHistogramRangeSel(t *testing.T) {
	h := uniformHist(1000, 100, 0, 100)
	cases := []struct {
		lo, hi, want, tol float64
	}{
		{0, 100, 1, 0.01},
		{0, 50, 0.5, 0.05},
		{25, 75, 0.5, 0.05},
		{math.Inf(-1), 10, 0.1, 0.05},
		{90, math.Inf(1), 0.1, 0.05},
		{200, 300, 0, 0.001},
	}
	for _, c := range cases {
		got := h.RangeSel(c.lo, c.hi)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("RangeSel(%g,%g) = %g, want %g±%g", c.lo, c.hi, got, c.want, c.tol)
		}
	}
}

func TestFilterRangePreservesMassFraction(t *testing.T) {
	h := uniformHist(1000, 100, 0, 100)
	f := h.FilterRange(0, 30)
	if got := f.Rows(); got < 250 || got > 350 {
		t.Errorf("filtered mass %g, want ~300", got)
	}
	if f.NDV <= 0 || f.NDV > 40 {
		t.Errorf("filtered NDV %g, want ~30", f.NDV)
	}
}

// TestScaleNeverProducesNaN is the regression test for the sub-unit NDV
// power-formula bug: repeated scaling must never generate NaN.
func TestScaleNeverProducesNaN(t *testing.T) {
	f := func(rows uint16, ndv uint8, steps []uint8) bool {
		h := uniformHist(float64(rows%5000)+1, float64(ndv%100)+1, 0, 100)
		for _, s := range steps {
			factor := float64(s%200) / 100 // 0..2
			h = h.Scale(factor)
			for _, b := range h.Buckets {
				if math.IsNaN(b.Rows) || math.IsNaN(b.Distincts) || b.Rows < 0 || b.Distincts < 0 {
					return false
				}
			}
			if math.IsNaN(h.NDV) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJoinOverlap(t *testing.T) {
	// Perfect FK join: fact 10000 rows over keys 0..99, dim 100 keys.
	fact := uniformHist(10000, 100, 0, 100)
	dim := uniformHist(100, 100, 0, 100)
	sel, ndv := JoinOverlap(fact, dim)
	rows := 10000.0 * 100 * sel
	if rows < 5000 || rows > 20000 {
		t.Errorf("FK join estimate %g rows, want ~10000", rows)
	}
	if ndv < 50 || ndv > 110 {
		t.Errorf("join NDV %g, want ~100", ndv)
	}
	// Disjoint domains: no matches.
	left := uniformHist(100, 10, 0, 10)
	right := uniformHist(100, 10, 50, 60)
	sel, _ = JoinOverlap(left, right)
	if sel != 0 {
		t.Errorf("disjoint join sel = %g, want 0", sel)
	}
	// Partial overlap shrinks selectivity.
	half := uniformHist(100, 100, 50, 150)
	full := uniformHist(100, 100, 0, 100)
	selHalf, _ := JoinOverlap(full, half)
	selFull, _ := JoinOverlap(full, full)
	if selHalf >= selFull {
		t.Errorf("partial overlap (%g) not below full overlap (%g)", selHalf, selFull)
	}
}

func TestSkewRatio(t *testing.T) {
	flat := uniformHist(1000, 100, 0, 100)
	if r := flat.SkewRatio(); r < 0.99 || r > 1.3 {
		t.Errorf("uniform skew %g, want ~1", r)
	}
	skewed := &Histogram{Buckets: md.UniformBuckets(1000, 100, 0, 100, 8), NDV: 100}
	if r := skewed.SkewRatio(); r <= 1.5 {
		t.Errorf("skewed ratio %g, want > 1.5", r)
	}
}

// ---------------------------------------------------------------------------
// Derivation

func testCtx(t *testing.T) (*Context, *ops.Get, *ops.Get) {
	t.Helper()
	p := md.NewMemProvider()
	relA := md.Build(p, md.TableSpec{
		Name: "a", Rows: 10000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "k", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "v", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
		},
	})
	relB := md.Build(p, md.TableSpec{
		Name: "b", Rows: 100, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "k", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
		},
	})
	acc := md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p)
	f := md.NewColumnFactory()
	getA := &ops.Get{Alias: "a", Rel: relA, Cols: []*md.ColRef{
		f.NewTableColumn("k", base.TInt, relA.Mdid, 0),
		f.NewTableColumn("v", base.TInt, relA.Mdid, 1),
	}}
	getB := &ops.Get{Alias: "b", Rel: relB, Cols: []*md.ColRef{
		f.NewTableColumn("k", base.TInt, relB.Mdid, 0),
	}}
	return NewContext(acc), getA, getB
}

func TestDeriveGetAndFilter(t *testing.T) {
	ctx, getA, _ := testCtx(t)
	sa, err := ctx.Derive(getA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Rows != 10000 {
		t.Errorf("base rows %g", sa.Rows)
	}
	k := getA.Cols[0].ID
	// Equality on k: ~1/100.
	eq := ctx.ApplyPred(sa, ops.Eq(ops.NewIdent(k, base.TInt), ops.NewConst(base.NewInt(5))))
	if eq.Rows < 50 || eq.Rows > 200 {
		t.Errorf("equality estimate %g, want ~100", eq.Rows)
	}
	// Range k < 50: ~half.
	lt := ctx.ApplyPred(sa, ops.NewCmp(ops.CmpLt, ops.NewIdent(k, base.TInt), ops.NewConst(base.NewInt(50))))
	if lt.Rows < 4000 || lt.Rows > 6000 {
		t.Errorf("range estimate %g, want ~5000", lt.Rows)
	}
	// Filter histogram is reshaped: further filtering past the cut is ~0.
	gt := ctx.ApplyPred(lt, ops.NewCmp(ops.CmpGt, ops.NewIdent(k, base.TInt), ops.NewConst(base.NewInt(80))))
	if gt.Rows > lt.Rows*0.05 {
		t.Errorf("contradictory filter estimate %g of %g", gt.Rows, lt.Rows)
	}
	// Conjunction is damped but monotone.
	both := ctx.ApplyPred(sa, ops.And(
		ops.NewCmp(ops.CmpLt, ops.NewIdent(k, base.TInt), ops.NewConst(base.NewInt(50))),
		ops.NewCmp(ops.CmpGt, ops.NewIdent(getA.Cols[1].ID, base.TInt), ops.NewConst(base.NewInt(500))),
	))
	if both.Rows >= lt.Rows {
		t.Errorf("conjunction (%g) not below single filter (%g)", both.Rows, lt.Rows)
	}
}

func TestDeriveJoinTypes(t *testing.T) {
	ctx, getA, getB := testCtx(t)
	sa, _ := ctx.Derive(getA, nil)
	sb, _ := ctx.Derive(getB, nil)
	pred := ops.Eq(ops.NewIdent(getA.Cols[0].ID, base.TInt), ops.NewIdent(getB.Cols[0].ID, base.TInt))

	inner := ctx.DeriveJoin(ops.InnerJoin, pred, sa, sb)
	if inner.Rows < 5000 || inner.Rows > 20000 {
		t.Errorf("FK inner join %g rows, want ~10000", inner.Rows)
	}
	left := ctx.DeriveJoin(ops.LeftJoin, pred, sa, sb)
	if left.Rows < sa.Rows {
		t.Errorf("left join (%g) below outer side (%g)", left.Rows, sa.Rows)
	}
	semi := ctx.DeriveJoin(ops.SemiJoin, pred, sa, sb)
	if semi.Rows > sa.Rows || semi.Rows <= 0 {
		t.Errorf("semi join %g out of [0, %g]", semi.Rows, sa.Rows)
	}
	anti := ctx.DeriveJoin(ops.AntiJoin, pred, sa, sb)
	if got := semi.Rows + anti.Rows; math.Abs(got-sa.Rows) > sa.Rows*0.01 {
		t.Errorf("semi (%g) + anti (%g) != outer (%g)", semi.Rows, anti.Rows, sa.Rows)
	}
	cross := ctx.DeriveJoin(ops.InnerJoin, nil, sa, sb)
	if cross.Rows != sa.Rows*sb.Rows {
		t.Errorf("cross join %g, want %g", cross.Rows, sa.Rows*sb.Rows)
	}
}

func TestDeriveGroupBy(t *testing.T) {
	ctx, getA, _ := testCtx(t)
	sa, _ := ctx.Derive(getA, nil)
	k := getA.Cols[0].ID
	g := ctx.DeriveGroupBy([]base.ColID{k}, sa)
	if g.Rows < 50 || g.Rows > 150 {
		t.Errorf("group estimate %g, want ~100 (NDV of k)", g.Rows)
	}
	// Grouping can never exceed the input.
	g2 := ctx.DeriveGroupBy([]base.ColID{k, getA.Cols[1].ID}, sa)
	if g2.Rows > sa.Rows {
		t.Errorf("groups (%g) exceed input (%g)", g2.Rows, sa.Rows)
	}
	// Scalar aggregation: exactly one row.
	if s := ctx.DeriveGroupBy(nil, sa); s.Rows != 1 {
		t.Errorf("scalar agg %g rows", s.Rows)
	}
}

func TestCTERegistration(t *testing.T) {
	ctx, getA, _ := testCtx(t)
	sa, _ := ctx.Derive(getA, nil)
	ctx.RegisterCTE(3, sa)
	f := md.NewColumnFactory()
	consumer := &ops.CTEConsumer{
		ID:           3,
		Cols:         []*md.ColRef{f.NewComputedColumn("k", base.TInt)},
		ProducerCols: []base.ColID{getA.Cols[0].ID},
	}
	st, err := ctx.Derive(consumer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != sa.Rows {
		t.Errorf("consumer rows %g, want %g", st.Rows, sa.Rows)
	}
	if st.Hist(consumer.Cols[0].ID) == nil {
		t.Error("producer histogram not remapped to consumer column")
	}
}

func TestNewStatsClampsPathologicalValues(t *testing.T) {
	for in, want := range map[float64]float64{
		math.NaN():  0,
		-5:          0,
		math.Inf(1): 1e15,
		42:          42,
	} {
		if got := NewStats(in).Rows; got != want {
			t.Errorf("NewStats(%v).Rows = %v, want %v", in, got, want)
		}
	}
}
