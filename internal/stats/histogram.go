// Package stats implements Orca's statistics derivation (paper §4.1 step 2):
// statistics objects are collections of column histograms used to derive
// cardinality and skew estimates. Derivation happens on the compact Memo —
// one statistics object per group, computed from the most promising group
// expression — and histograms are transformed through operators (filters
// reshape them, joins intersect them, aggregates collapse them).
package stats

import (
	"math"

	"orca/internal/base"
	"orca/internal/md"
)

// Default selectivities used when no histogram is available, in the
// tradition of Selinger-style magic numbers.
const (
	DefaultEqSel    = 0.005
	DefaultRangeSel = 0.33
	DefaultNeSel    = 0.995
)

// Histogram is an equi-depth histogram over one column plus NDV and null
// fraction. Rows in the histogram are absolute counts (not fractions), so a
// histogram is meaningful only together with its owning Stats row count.
type Histogram struct {
	Buckets  []md.Bucket
	NDV      float64
	NullFrac float64
}

// FromColStats converts catalog column statistics.
func FromColStats(cs *md.ColStats) *Histogram {
	if cs == nil {
		return nil
	}
	buckets := make([]md.Bucket, len(cs.Buckets))
	copy(buckets, cs.Buckets)
	return &Histogram{Buckets: buckets, NDV: cs.NDV, NullFrac: cs.NullFrac}
}

// Rows returns the total row count covered by the histogram buckets.
func (h *Histogram) Rows() float64 {
	var n float64
	for _, b := range h.Buckets {
		n += b.Rows
	}
	return n
}

// Lo and Hi return the histogram's value range projected to float64.
func (h *Histogram) Lo() float64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[0].Lo.AsFloat()
}

// Hi returns the histogram's upper bound projected to float64.
func (h *Histogram) Hi() float64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[len(h.Buckets)-1].Hi.AsFloat()
}

// Scale returns a copy with all bucket counts and the NDV scaled by factor
// (NDV scales sublinearly, following the standard distinct-value decay).
func (h *Histogram) Scale(factor float64) *Histogram {
	if h == nil {
		return nil
	}
	if factor > 1 {
		// Row multiplication (e.g. joins): counts scale, NDV does not grow.
		out := &Histogram{NDV: h.NDV, NullFrac: h.NullFrac}
		out.Buckets = make([]md.Bucket, len(h.Buckets))
		for i, b := range h.Buckets {
			out.Buckets[i] = md.Bucket{Lo: b.Lo, Hi: b.Hi, Rows: b.Rows * factor, Distincts: b.Distincts}
		}
		return out
	}
	out := &Histogram{NullFrac: h.NullFrac}
	out.Buckets = make([]md.Bucket, len(h.Buckets))
	for i, b := range h.Buckets {
		out.Buckets[i] = md.Bucket{
			Lo:        b.Lo,
			Hi:        b.Hi,
			Rows:      b.Rows * factor,
			Distincts: scaleNDV(b.Distincts, b.Rows, factor),
		}
		out.NDV += out.Buckets[i].Distincts
	}
	return out
}

// scaleNDV estimates how many of d distinct values survive keeping a
// `factor` fraction of n rows, using the standard balls-and-bins estimate.
func scaleNDV(d, n, factor float64) float64 {
	if d <= 0 || n <= 0 || factor <= 0 {
		return 0
	}
	kept := n * factor
	if d <= 1 {
		// Sub-unit distinct counts arise from repeated scaling; the power
		// formula needs d > 1 (its base must stay in (0,1)).
		return math.Min(d, kept)
	}
	// Expected distinct values after sampling `kept` of n rows over d values.
	est := d * (1 - math.Pow(1-1/d, kept))
	return math.Min(est, math.Min(d, kept))
}

// EqSel returns the fraction of rows equal to v.
func (h *Histogram) EqSel(v base.Datum) float64 {
	total := h.Rows()
	if total <= 0 {
		return DefaultEqSel
	}
	f := v.AsFloat()
	for i, b := range h.Buckets {
		lo, hi := b.Lo.AsFloat(), b.Hi.AsFloat()
		last := i == len(h.Buckets)-1
		if f >= lo && (f < hi || (last && f <= hi)) {
			if b.Distincts <= 0 {
				return 0
			}
			return (b.Rows / b.Distincts) / total
		}
	}
	return 0
}

// RangeSel returns the fraction of rows in [lo, hi]; use math.Inf bounds for
// open ranges.
func (h *Histogram) RangeSel(lo, hi float64) float64 {
	total := h.Rows()
	if total <= 0 {
		return DefaultRangeSel
	}
	var kept float64
	for _, b := range h.Buckets {
		blo, bhi := b.Lo.AsFloat(), b.Hi.AsFloat()
		kept += b.Rows * overlapFrac(blo, bhi, lo, hi)
	}
	return kept / total
}

// overlapFrac returns the fraction of [blo,bhi) overlapped by [lo,hi],
// assuming uniformity within the bucket.
func overlapFrac(blo, bhi, lo, hi float64) float64 {
	if bhi <= blo {
		// Degenerate single-value bucket.
		if blo >= lo && blo <= hi {
			return 1
		}
		return 0
	}
	l := math.Max(blo, lo)
	r := math.Min(bhi, hi)
	if r <= l {
		return 0
	}
	return (r - l) / (bhi - blo)
}

// FilterRange returns a copy of the histogram restricted to [lo, hi].
func (h *Histogram) FilterRange(lo, hi float64) *Histogram {
	out := &Histogram{NullFrac: 0}
	for _, b := range h.Buckets {
		frac := overlapFrac(b.Lo.AsFloat(), b.Hi.AsFloat(), lo, hi)
		if frac <= 0 {
			continue
		}
		nb := md.Bucket{
			Lo:        b.Lo,
			Hi:        b.Hi,
			Rows:      b.Rows * frac,
			Distincts: scaleNDV(b.Distincts, b.Rows, frac),
		}
		out.Buckets = append(out.Buckets, nb)
		out.NDV += nb.Distincts
	}
	return out
}

// JoinOverlap estimates the equi-join between columns described by h and o:
// it returns the selectivity to apply to the row-count product, and the NDV
// of the join key in the result.
func JoinOverlap(h, o *Histogram) (sel, ndv float64) {
	if h == nil || o == nil || h.NDV <= 0 || o.NDV <= 0 {
		return DefaultEqSel, 0
	}
	// Fraction of each side's domain inside the shared value range.
	lo := math.Max(h.Lo(), o.Lo())
	hi := math.Min(h.Hi(), o.Hi())
	if hi < lo {
		return 0, 0
	}
	hin := h.RangeSel(lo, hi)
	oin := o.RangeSel(lo, hi)
	hNDV := math.Max(h.NDV*hin, 1)
	oNDV := math.Max(o.NDV*oin, 1)
	matchNDV := math.Min(hNDV, oNDV)
	// Containment assumption: sel applied to |R|x|S|.
	sel = hin * oin / math.Max(hNDV, oNDV)
	return sel, matchNDV
}

// SkewRatio estimates distribution skew for hashing on this column: the
// ratio of the most frequent value's share to the uniform share (1 = no
// skew). The cost model charges skewed redistributions extra (paper §4.1:
// statistics derive "estimates for cardinality and data skew").
func (h *Histogram) SkewRatio() float64 {
	total := h.Rows()
	if h == nil || total <= 0 || h.NDV <= 0 {
		return 1
	}
	var maxPerVal float64
	for _, b := range h.Buckets {
		if b.Distincts > 0 {
			perVal := b.Rows / b.Distincts
			if perVal > maxPerVal {
				maxPerVal = perVal
			}
		}
	}
	uniform := total / h.NDV
	if uniform <= 0 {
		return 1
	}
	r := maxPerVal / uniform
	if r < 1 {
		return 1
	}
	return r
}
