package props

import (
	"fmt"

	"orca/internal/base"
)

// Logical holds the logical properties of a Memo group: facts true of every
// expression in the group regardless of physical implementation.
type Logical struct {
	// OutputCols are the columns produced by the group.
	OutputCols base.ColSet
	// OuterRefs are columns referenced but not produced — correlation
	// references to an enclosing query block. Non-empty OuterRefs mark a
	// correlated subtree (used by decorrelation and by SubPlan execution).
	OuterRefs base.ColSet
	// Relations is the set of base-relation instances (by first column id of
	// each table instance) appearing under the group; used for join-graph
	// bookkeeping.
	Relations base.ColSet
	// MaxCard is an upper bound on output cardinality when statically known
	// (e.g. a scalar aggregate produces exactly one row); -1 means unknown.
	MaxCard int64
}

// NewLogical returns logical props with unknown max cardinality.
func NewLogical() *Logical { return &Logical{MaxCard: -1} }

// Required is one optimization request: the physical properties a parent
// demands from a plan rooted in a group (paper §4.1 — e.g. req #1
// "{Singleton, <T1.a>}"). Rewindable additionally asks that the plan's
// output can be cheaply re-scanned (demanded from nested-loop-join inner
// sides; satisfied natively by scans and spools, enforced by a Spool
// otherwise).
type Required struct {
	Dist       Distribution
	Order      OrderSpec
	Rewindable bool
}

// AnyReq requires nothing.
var AnyReq = Required{Dist: AnyDist}

// Hash returns a stable hash of the request, the key of the Memo's group
// hash tables.
func (r Required) Hash() uint64 {
	h := r.Dist.Hash()*31 + r.Order.Hash()
	if r.Rewindable {
		h = h*31 + 1
	}
	return h
}

// Equal reports whether two requests are the same.
func (r Required) Equal(o Required) bool {
	return r.Dist.Equal(o.Dist) && r.Order.Equal(o.Order) && r.Rewindable == o.Rewindable
}

// String renders "{Singleton, <1>}" in the paper's notation.
func (r Required) String() string {
	s := fmt.Sprintf("{%s, %s", r.Dist, r.Order)
	if r.Rewindable {
		s += ", rewind"
	}
	return s + "}"
}

// Derived holds the physical properties a concrete plan delivers.
type Derived struct {
	Dist       Distribution
	Order      OrderSpec
	Rewindable bool
}

// Satisfies reports whether the delivered properties meet the request.
func (d Derived) Satisfies(r Required) bool {
	if !d.Dist.Satisfies(r.Dist) {
		return false
	}
	if !d.Order.Satisfies(r.Order) {
		return false
	}
	if r.Rewindable && !d.Rewindable {
		return false
	}
	return true
}

// String renders the delivered properties.
func (d Derived) String() string {
	s := fmt.Sprintf("{%s, %s", d.Dist, d.Order)
	if d.Rewindable {
		s += ", rewind"
	}
	return s + "}"
}
