package props

import (
	"testing"
	"testing/quick"

	"orca/internal/base"
)

func TestOrderSatisfiesPrefix(t *testing.T) {
	full := MakeOrder(1, 2, 3)
	cases := []struct {
		req  OrderSpec
		want bool
	}{
		{AnyOrder, true},
		{MakeOrder(1), true},
		{MakeOrder(1, 2), true},
		{MakeOrder(1, 2, 3), true},
		{MakeOrder(2), false},
		{MakeOrder(1, 3), false},
		{MakeOrder(1, 2, 3, 4), false},
		{OrderSpec{Items: []OrderItem{{Col: 1, Desc: true}}}, false}, // direction matters
	}
	for _, c := range cases {
		if got := full.Satisfies(c.req); got != c.want {
			t.Errorf("<1,2,3>.Satisfies(%s) = %v, want %v", c.req, got, c.want)
		}
	}
}

func TestOrderSatisfiesTransitive(t *testing.T) {
	f := func(cols []uint8) bool {
		if len(cols) < 3 {
			return true
		}
		var full, mid, short OrderSpec
		for i, c := range cols {
			it := OrderItem{Col: base.ColID(c)}
			full.Items = append(full.Items, it)
			if i < len(cols)-1 {
				mid.Items = append(mid.Items, it)
			}
			if i < len(cols)-2 {
				short.Items = append(short.Items, it)
			}
		}
		return full.Satisfies(mid) && mid.Satisfies(short) && full.Satisfies(short)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOrderHashEqual(t *testing.T) {
	a := MakeOrder(1, 2)
	b := MakeOrder(1, 2)
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Error("equal orders must hash equally")
	}
	c := OrderSpec{Items: []OrderItem{{Col: 1}, {Col: 2, Desc: true}}}
	if a.Equal(c) {
		t.Error("desc flag ignored by Equal")
	}
}

func TestDistributionSatisfies(t *testing.T) {
	cases := []struct {
		delivered, required Distribution
		want                bool
	}{
		// Any is satisfied by everything.
		{SingletonDist, AnyDist, true},
		{Hashed(1), AnyDist, true},
		{RandomDist, AnyDist, true},
		// Singleton.
		{SingletonDist, SingletonDist, true},
		{ReplicatedDist, SingletonDist, true}, // one copy read
		{Hashed(1), SingletonDist, false},
		{RandomDist, SingletonDist, false},
		// Hashed: exact column match only.
		{Hashed(1), Hashed(1), true},
		{Hashed(1, 2), Hashed(1, 2), true},
		{Hashed(2, 1), Hashed(1, 2), false},
		{Hashed(1), Hashed(2), false},
		{Hashed(1), Hashed(1, 2), false},
		{SingletonDist, Hashed(1), false},
		// Replicated satisfies hashed only when duplicate-tolerant.
		{ReplicatedDist, HashedDupSafe(1), true},
		{ReplicatedDist, Hashed(1), false},
		// Replicated requirement.
		{ReplicatedDist, ReplicatedDist, true},
		{SingletonDist, ReplicatedDist, false},
		// Random requirement: anything with one logical copy per row.
		{RandomDist, RandomDist, true},
		{Hashed(3), RandomDist, true},
		{SingletonDist, RandomDist, true},
		{ReplicatedDist, RandomDist, false}, // duplicates
	}
	for _, c := range cases {
		if got := c.delivered.Satisfies(c.required); got != c.want {
			t.Errorf("%s.Satisfies(%s) = %v, want %v", c.delivered, c.required, got, c.want)
		}
	}
}

func TestDistributionEqualHash(t *testing.T) {
	if !Hashed(1, 2).Equal(Hashed(1, 2)) {
		t.Error("equal hashed dists not Equal")
	}
	if Hashed(1).Equal(HashedDupSafe(1)) {
		t.Error("AllowReplicated must distinguish distributions")
	}
	if Hashed(1).Hash() == HashedDupSafe(1).Hash() {
		t.Error("AllowReplicated must change the hash")
	}
}

func TestRequiredSatisfaction(t *testing.T) {
	req := Required{Dist: SingletonDist, Order: MakeOrder(1)}
	ok := Derived{Dist: SingletonDist, Order: MakeOrder(1, 2)}
	if !ok.Satisfies(req) {
		t.Error("stronger order must satisfy weaker requirement")
	}
	noOrder := Derived{Dist: SingletonDist}
	if noOrder.Satisfies(req) {
		t.Error("missing order accepted")
	}
	rewindReq := Required{Dist: AnyDist, Rewindable: true}
	if (Derived{Dist: RandomDist}).Satisfies(rewindReq) {
		t.Error("missing rewindability accepted")
	}
	if !(Derived{Dist: RandomDist, Rewindable: true}).Satisfies(rewindReq) {
		t.Error("rewindable plan rejected")
	}
}

func TestRequiredHashEqual(t *testing.T) {
	a := Required{Dist: Hashed(1), Order: MakeOrder(2)}
	b := Required{Dist: Hashed(1), Order: MakeOrder(2)}
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Error("equal requests must match and hash equally")
	}
	c := Required{Dist: Hashed(1), Order: MakeOrder(2), Rewindable: true}
	if a.Equal(c) || a.Hash() == c.Hash() {
		t.Error("rewindability ignored in request identity")
	}
}

func TestRequiredString(t *testing.T) {
	r := Required{Dist: SingletonDist, Order: MakeOrder(0)}
	if got := r.String(); got != "{Singleton, <0>}" {
		t.Errorf("String = %q (the paper's req #1 notation)", got)
	}
}
