// Package props implements Orca's property framework (paper §3 "Property
// Enforcement" and §4.1): logical properties derived bottom-up from the
// query, and the physical properties — sort order and data distribution —
// that optimization requests ask for and plans deliver. Required properties
// form the optimization-request keys of the Memo's group hash tables;
// derived properties are compared against requirements to decide whether an
// enforcer (Sort, Gather, GatherMerge, Redistribute, Broadcast) must be
// plugged into a plan.
package props

import (
	"strings"

	"orca/internal/base"
)

// OrderItem is one column of a sort order.
type OrderItem struct {
	Col  base.ColID
	Desc bool
}

// OrderSpec is a required or delivered sort order. The empty spec means
// "Any order" (no requirement / no guarantee).
type OrderSpec struct {
	Items []OrderItem
}

// AnyOrder is the empty ordering requirement.
var AnyOrder = OrderSpec{}

// MakeOrder builds an ascending order spec on the given columns.
func MakeOrder(cols ...base.ColID) OrderSpec {
	items := make([]OrderItem, len(cols))
	for i, c := range cols {
		items[i] = OrderItem{Col: c}
	}
	return OrderSpec{Items: items}
}

// IsAny reports whether the spec imposes no order.
func (o OrderSpec) IsAny() bool { return len(o.Items) == 0 }

// Satisfies reports whether data ordered by o is also ordered by req: req
// must be a prefix of o.
func (o OrderSpec) Satisfies(req OrderSpec) bool {
	if len(req.Items) > len(o.Items) {
		return false
	}
	for i, it := range req.Items {
		if o.Items[i] != it {
			return false
		}
	}
	return true
}

// Equal reports whether two specs are identical.
func (o OrderSpec) Equal(other OrderSpec) bool {
	return o.Satisfies(other) && other.Satisfies(o)
}

// Cols returns the set of columns mentioned by the order.
func (o OrderSpec) Cols() base.ColSet {
	var s base.ColSet
	for _, it := range o.Items {
		s.Add(it.Col)
	}
	return s
}

// Hash returns a stable hash for request deduplication.
func (o OrderSpec) Hash() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, it := range o.Items {
		h = (h ^ uint64(it.Col)) * prime64
		if it.Desc {
			h = (h ^ 1) * prime64
		}
	}
	return h
}

// String renders "<1,2 desc>" or "Any".
func (o OrderSpec) String() string {
	if o.IsAny() {
		return "Any"
	}
	var b strings.Builder
	b.WriteByte('<')
	for i, it := range o.Items {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itoa(int(it.Col)))
		if it.Desc {
			b.WriteString(" desc")
		}
	}
	b.WriteByte('>')
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
