package props

import (
	"strings"

	"orca/internal/base"
)

// DistKind enumerates data distributions in the MPP cluster (paper §2.1 and
// Figure 6): how a plan fragment's output tuples are spread across segments.
type DistKind uint8

// Distribution kinds.
const (
	// DistAny is only valid as a requirement: the parent does not care.
	DistAny DistKind = iota
	// DistSingleton: all tuples on a single host (the master).
	DistSingleton
	// DistHashed: tuples distributed by a hash of specific columns.
	DistHashed
	// DistReplicated: a full copy of the data on every segment.
	DistReplicated
	// DistRandom: tuples spread across segments with no placement guarantee.
	DistRandom
)

// Distribution is a required or delivered data distribution. Hashed carries
// the hashing columns, in order.
//
// AllowReplicated is meaningful only on Hashed *requirements*: it marks the
// requirement as duplicate-tolerant, i.e. replicated delivery is acceptable.
// Joins set it when requesting co-location (every segment holding the full
// inner side joins correctly against the local partition of the outer side);
// duplicate-sensitive consumers such as grouping aggregates leave it unset,
// forcing a motion that collapses replicated data back to one logical copy.
type Distribution struct {
	Kind            DistKind
	Cols            []base.ColID // hashing columns for DistHashed
	AllowReplicated bool         // requirement tolerates replicated delivery
}

// Common distribution values.
var (
	AnyDist        = Distribution{Kind: DistAny}
	SingletonDist  = Distribution{Kind: DistSingleton}
	ReplicatedDist = Distribution{Kind: DistReplicated}
	RandomDist     = Distribution{Kind: DistRandom}
)

// Hashed builds a hashed distribution on the given columns.
func Hashed(cols ...base.ColID) Distribution {
	return Distribution{Kind: DistHashed, Cols: cols}
}

// HashedDupSafe builds a duplicate-tolerant hashed requirement, used by joins
// when requesting child co-location.
func HashedDupSafe(cols ...base.ColID) Distribution {
	return Distribution{Kind: DistHashed, Cols: cols, AllowReplicated: true}
}

// IsAny reports whether this is the no-requirement distribution.
func (d Distribution) IsAny() bool { return d.Kind == DistAny }

// Satisfies reports whether data delivered with distribution d satisfies the
// requirement req. Matching is deliberately strict — alternatives such as
// "broadcast the inner side instead of co-locating both sides" are generated
// explicitly by operators as distinct optimization requests, exactly as the
// paper describes for InnerHashJoin (§4.1, Figure 7) — with two sound
// relaxations:
//
//   - Replicated data satisfies a Singleton requirement (one designated copy
//     is read; the motion is free of network traffic), and
//   - Replicated data satisfies a *duplicate-tolerant* Hashed requirement
//     (see AllowReplicated), which is how an already-replicated dimension
//     table joins without any motion.
func (d Distribution) Satisfies(req Distribution) bool {
	switch req.Kind {
	case DistAny:
		return true
	case DistSingleton:
		return d.Kind == DistSingleton || d.Kind == DistReplicated
	case DistReplicated:
		return d.Kind == DistReplicated
	case DistHashed:
		if d.Kind == DistReplicated {
			return req.AllowReplicated
		}
		if d.Kind != DistHashed || len(d.Cols) != len(req.Cols) {
			return false
		}
		for i := range d.Cols {
			if d.Cols[i] != req.Cols[i] {
				return false
			}
		}
		return true
	case DistRandom:
		// A Random requirement really means "one logical copy per row, any
		// placement" — satisfied by anything except replication.
		return d.Kind == DistRandom || d.Kind == DistHashed || d.Kind == DistSingleton
	default:
		return false
	}
}

// Equal reports whether two distributions are identical.
func (d Distribution) Equal(o Distribution) bool {
	if d.Kind != o.Kind || len(d.Cols) != len(o.Cols) || d.AllowReplicated != o.AllowReplicated {
		return false
	}
	for i := range d.Cols {
		if d.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// IsDistributed reports whether tuples live on multiple segments.
func (d Distribution) IsDistributed() bool {
	return d.Kind == DistHashed || d.Kind == DistRandom
}

// Hash returns a stable hash for request deduplication.
func (d Distribution) Hash() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(d.Kind)) * prime64
	if d.AllowReplicated {
		h = (h ^ 0x9e37) * prime64
	}
	for _, c := range d.Cols {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// String renders the distribution as in the paper's figures, e.g.
// "Singleton", "Hashed(3)", "Replicated", "Any".
func (d Distribution) String() string {
	switch d.Kind {
	case DistAny:
		return "Any"
	case DistSingleton:
		return "Singleton"
	case DistReplicated:
		return "Replicated"
	case DistRandom:
		return "Random"
	case DistHashed:
		var b strings.Builder
		b.WriteString("Hashed(")
		for i, c := range d.Cols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(itoa(int(c)))
		}
		b.WriteByte(')')
		return b.String()
	default:
		return "Unknown"
	}
}
