// Package datagen generates table data by reversing database statistics —
// the approach of the paper's test-data tool (§6, ref [24] "Reversing
// Statistics for Scalable Test Databases Generation"): given a relation's
// histograms, it produces rows whose value distribution matches the
// histograms, so that the optimizer's cardinality estimates are exercised by
// data that actually behaves as declared.
//
// Convention: key columns declared with Lo=0, Hi=NDV produce the integers
// 0..NDV-1, so equality joins between columns with aligned declarations
// produce real matches.
package datagen

import (
	"context"
	"fmt"
	"math"

	"orca/internal/base"
	"orca/internal/engine"
	"orca/internal/md"
)

// RNG is a small deterministic splitmix64 generator.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed ^ 0x9e3779b97f4a7c15} }

// Next returns the next pseudo-random value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// permutation returns a Fisher-Yates shuffle of 0..n-1.
func (r *RNG) permutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Float returns a value in [0, 1).
func (r *RNG) Float() float64 { return float64(r.Next()>>11) / float64(1<<53) }

// Generate produces the relation's declared row count from its statistics.
func Generate(rel *md.Relation, rs *md.RelStats, seed uint64) ([]engine.Row, error) {
	n := int(rs.Rows)
	rng := NewRNG(seed)
	rows := make([]engine.Row, n)

	// Precompute per-column bucket choosers.
	type colGen struct {
		cs  *md.ColStats
		cum []float64
		tot float64
		typ base.TypeID
		// key marks a unique column (NDV ≈ rows): values are generated as a
		// permutation so the column behaves as the primary key it is
		// declared to be.
		key  bool
		perm []int
	}
	gens := make([]colGen, len(rel.Columns))
	for i := range rel.Columns {
		g := colGen{typ: rel.Columns[i].Type}
		if cs := rs.ColStatsFor(i); cs != nil {
			g.cs = cs
			for _, b := range cs.Buckets {
				g.tot += b.Rows
				g.cum = append(g.cum, g.tot)
			}
			if cs.NullFrac == 0 && cs.NDV >= rs.Rows*0.999 {
				g.key = true
				g.perm = rng.permutation(n)
			}
		}
		gens[i] = g
	}

	for ri := 0; ri < n; ri++ {
		row := make(engine.Row, len(rel.Columns))
		for ci := range rel.Columns {
			g := &gens[ci]
			if g.cs == nil {
				row[ci] = base.NewInt(int64(ri))
				continue
			}
			if g.key {
				row[ci] = gridValue(g.cs, g.perm[ri], g.typ)
				continue
			}
			if g.cs.NullFrac > 0 && rng.Float() < g.cs.NullFrac {
				row[ci] = base.Null
				continue
			}
			row[ci] = sampleBucket(g.cs, g.cum, g.tot, rng, g.typ)
		}
		rows[ri] = row
	}
	return rows, nil
}

// gridValue maps ordinal i onto the column's value grid: NDV evenly spaced
// values over [Lo, Hi), matching what sampleBucket draws from.
func gridValue(cs *md.ColStats, i int, typ base.TypeID) base.Datum {
	if len(cs.Buckets) == 0 {
		return base.NewInt(int64(i))
	}
	lo := cs.Buckets[0].Lo.AsFloat()
	hi := cs.Buckets[len(cs.Buckets)-1].Hi.AsFloat()
	step := (hi - lo) / math.Max(cs.NDV, 1)
	v := lo + float64(i)*step
	switch typ {
	case base.TInt, base.TDate:
		return base.NewInt(int64(math.Round(v)))
	case base.TFloat:
		return base.NewFloat(v)
	case base.TString:
		return base.NewString(fmt.Sprintf("v%06d", int64(math.Round(v))))
	default:
		return base.NewFloat(v)
	}
}

// sampleBucket picks a histogram bucket weighted by its row count, then one
// of the bucket's distinct values on an even grid.
func sampleBucket(cs *md.ColStats, cum []float64, tot float64, rng *RNG, typ base.TypeID) base.Datum {
	if len(cs.Buckets) == 0 || tot <= 0 {
		return base.NewInt(0)
	}
	target := rng.Float() * tot
	bi := 0
	for bi < len(cum)-1 && cum[bi] < target {
		bi++
	}
	b := cs.Buckets[bi]
	d := int(math.Max(b.Distincts, 1))
	idx := rng.Intn(d)
	lo, hi := b.Lo.AsFloat(), b.Hi.AsFloat()
	step := (hi - lo) / math.Max(b.Distincts, 1)
	v := lo + float64(idx)*step
	switch typ {
	case base.TInt, base.TDate:
		return base.NewInt(int64(math.Round(v)))
	case base.TFloat:
		return base.NewFloat(v)
	case base.TString:
		return base.NewString(fmt.Sprintf("v%06d", int64(math.Round(v))))
	case base.TBool:
		return base.NewBool(int64(v)%2 == 0)
	default:
		return base.NewFloat(v)
	}
}

// Load generates and loads a relation into the cluster.
func Load(c *engine.Cluster, rel *md.Relation, rs *md.RelStats, seed uint64) error {
	rows, err := Generate(rel, rs, seed)
	if err != nil {
		return err
	}
	return c.CreateTable(rel, rows)
}

// LoadAll generates and loads every relation registered with the provider.
func LoadAll(c *engine.Cluster, p *md.MemProvider, seed uint64) error {
	ctx := context.Background()
	for i, name := range p.RelationNames() {
		id, err := p.LookupRelation(ctx, name)
		if err != nil {
			return err
		}
		obj, err := p.GetObject(ctx, id)
		if err != nil {
			return err
		}
		rel := obj.(*md.Relation)
		sobj, err := p.GetObject(ctx, rel.StatsMdid)
		if err != nil {
			return err
		}
		if err := Load(c, rel, sobj.(*md.RelStats), seed+uint64(i)*7919); err != nil {
			return err
		}
	}
	return nil
}
