package datagen

import (
	"context"
	"math"
	"testing"

	"orca/internal/base"
	"orca/internal/engine"
	"orca/internal/md"
)

func spec() md.TableSpec {
	return md.TableSpec{
		Name: "t", Rows: 5000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "pk", Type: base.TInt, NDV: 5000, Lo: 0, Hi: 5000},
			{Name: "fk", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "f", Type: base.TFloat, NDV: 50, Lo: 0, Hi: 1},
			{Name: "s", Type: base.TString, NDV: 10, Lo: 0, Hi: 10},
			{Name: "n", Type: base.TInt, NDV: 20, Lo: 0, Hi: 20, NullFrac: 0.25},
		},
	}
}

func generate(t *testing.T, seed uint64) (*md.Relation, *md.RelStats, []engine.Row) {
	t.Helper()
	p := md.NewMemProvider()
	rel := md.Build(p, spec())
	sobj, err := p.GetObject(context.Background(), rel.StatsMdid)
	if err != nil {
		t.Fatal(err)
	}
	rs := sobj.(*md.RelStats)
	rows, err := Generate(rel, rs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return rel, rs, rows
}

func TestGenerateMatchesDeclaredShape(t *testing.T) {
	_, rs, rows := generate(t, 1)
	if len(rows) != int(rs.Rows) {
		t.Fatalf("rows = %d, want %g", len(rows), rs.Rows)
	}
	// Key column: every value distinct (reversing a full-NDV column must
	// produce a permutation).
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate pk %d", r[0].I)
		}
		seen[r[0].I] = true
	}
	// FK column: NDV close to declared 100, domain respected.
	fks := map[int64]bool{}
	for _, r := range rows {
		if r[1].I < 0 || r[1].I > 100 {
			t.Fatalf("fk %d outside domain", r[1].I)
		}
		fks[r[1].I] = true
	}
	if len(fks) < 80 || len(fks) > 101 {
		t.Errorf("fk NDV = %d, want ~100", len(fks))
	}
	// Null fraction honoured within tolerance.
	nulls := 0
	for _, r := range rows {
		if r[4].IsNull() {
			nulls++
		}
	}
	frac := float64(nulls) / float64(len(rows))
	if math.Abs(frac-0.25) > 0.05 {
		t.Errorf("null fraction %g, want ~0.25", frac)
	}
	// String column values are grid-formatted.
	if rows[0][3].Kind != base.DString {
		t.Errorf("string column generated %v", rows[0][3])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	_, _, a := generate(t, 42)
	_, _, b := generate(t, 42)
	for i := range a {
		for j := range a[i] {
			if a[i][j].Compare(b[i][j]) != 0 {
				t.Fatalf("row %d col %d differs across identical seeds", i, j)
			}
		}
	}
	_, _, c := generate(t, 43)
	same := true
	for i := range a {
		if a[i][1].Compare(c[i][1]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestKeysAlignAcrossTables(t *testing.T) {
	// A fact FK over [0,100) and a dim PK with NDV=100 over [0,100) must
	// produce joinable values: every fact FK hits an existing dim PK.
	p := md.NewMemProvider()
	dim := md.Build(p, md.TableSpec{
		Name: "dim", Rows: 100, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{{Name: "pk", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100}},
	})
	fact := md.Build(p, md.TableSpec{
		Name: "fact", Rows: 2000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{{Name: "fk", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100}},
	})
	dimStats, _ := p.GetObject(context.Background(), dim.StatsMdid)
	factStats, _ := p.GetObject(context.Background(), fact.StatsMdid)
	dimRows, _ := Generate(dim, dimStats.(*md.RelStats), 1)
	factRows, _ := Generate(fact, factStats.(*md.RelStats), 2)
	pks := map[int64]bool{}
	for _, r := range dimRows {
		pks[r[0].I] = true
	}
	missed := 0
	for _, r := range factRows {
		if !pks[r[0].I] {
			missed++
		}
	}
	if missed > 0 {
		t.Errorf("%d of %d fact keys have no dim match (grids misaligned)", missed, len(factRows))
	}
}

func TestLoadAllDistributesByPolicy(t *testing.T) {
	p := md.NewMemProvider()
	md.Build(p, spec())
	md.Build(p, md.TableSpec{
		Name: "rep", Rows: 10, Policy: md.DistReplicated,
		Cols: []md.ColSpec{{Name: "x", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10}},
	})
	c := engine.NewCluster(4, p)
	if err := LoadAll(c, p, 9); err != nil {
		t.Fatal(err)
	}
	tt, ok := c.Table("t")
	if !ok || tt.Rows() != 5000 {
		t.Fatalf("t rows = %d", tt.Rows())
	}
	rep, _ := c.Table("rep")
	if rep.Rows() != 10 {
		t.Errorf("replicated table logical rows = %d, want 10", rep.Rows())
	}
	if got := len(rep.AllRows()); got != 10 {
		t.Errorf("AllRows on replicated = %d, want one copy", got)
	}
}

func TestRNGPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.permutation(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}
