package xform

import (
	"orca/internal/base"
	"orca/internal/memo"
	"orca/internal/ops"
)

// The rule types and their Name/Kind/Matches/Apply skeletons are generated
// from defs/rules.opt into rules.gen.go; this file keeps the hand-written
// apply bodies for limit, union, CTE and window implementation rules.

// applyLimit2PhysicalLimit implements Limit.
func applyLimit2PhysicalLimit(ctx *Context, ge *memo.GroupExpr) error {
	l := ge.Op.(*ops.Limit)
	p := &ops.PhysicalLimit{Order: l.Order, Count: l.Count, Offset: l.Offset, HasCount: l.HasCount}
	_, err := ctx.Insert(Op(p, Leaf(ge.Children[0])), ge.Group().ID)
	return err
}

// applyUnionAll2Physical implements UnionAll.
func applyUnionAll2Physical(ctx *Context, ge *memo.GroupExpr) error {
	u := ge.Op.(*ops.UnionAll)
	p := &ops.PhysicalUnionAll{InCols: u.InCols, OutCols: u.OutCols}
	leaves := make([]*Node, len(ge.Children))
	for i, c := range ge.Children {
		leaves[i] = Leaf(c)
	}
	_, err := ctx.Insert(Op(p, leaves...), ge.Group().ID)
	return err
}

// applyCTEAnchor2Sequence implements the CTE anchor as a Sequence over a
// CTEProducer — the paper's producer/consumer model for WITH (§7.2.2
// "Common Expressions"): the shared expression is evaluated once and its
// output consumed by every consumer.
func applyCTEAnchor2Sequence(ctx *Context, ge *memo.GroupExpr) error {
	a := ge.Op.(*ops.CTEAnchor)
	cols := make([]base.ColID, len(a.Cols))
	for i, c := range a.Cols {
		cols[i] = c.ID
	}
	producer := Op(&ops.PhysicalCTEProducer{ID: a.ID, Cols: cols}, Leaf(ge.Children[0]))
	_, err := ctx.Insert(Op(&ops.Sequence{}, producer, Leaf(ge.Children[1])), ge.Group().ID)
	return err
}

// applyCTEConsumer2Physical implements a CTE consumer leaf.
func applyCTEConsumer2Physical(ctx *Context, ge *memo.GroupExpr) error {
	c := ge.Op.(*ops.CTEConsumer)
	p := &ops.PhysicalCTEConsumer{ID: c.ID, Cols: c.Cols, ProducerCols: c.ProducerCols}
	_, err := ctx.Insert(Op(p), ge.Group().ID)
	return err
}

// applyWindow2PhysicalWindow implements window functions.
func applyWindow2PhysicalWindow(ctx *Context, ge *memo.GroupExpr) error {
	w := ge.Op.(*ops.Window)
	p := &ops.PhysicalWindow{PartitionCols: w.PartitionCols, Order: w.Order, Wins: w.Wins}
	_, err := ctx.Insert(Op(p, Leaf(ge.Children[0])), ge.Group().ID)
	return err
}
