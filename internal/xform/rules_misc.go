package xform

import (
	"orca/internal/base"
	"orca/internal/memo"
	"orca/internal/ops"
)

// Limit2PhysicalLimit implements Limit.
type Limit2PhysicalLimit struct{}

// Name implements Rule.
func (*Limit2PhysicalLimit) Name() string { return "Limit2PhysicalLimit" }

// Kind implements Rule.
func (*Limit2PhysicalLimit) Kind() Kind { return Implementation }

// Matches implements Rule.
func (*Limit2PhysicalLimit) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.Limit)
	return ok
}

// Apply implements Rule.
func (*Limit2PhysicalLimit) Apply(ctx *Context, ge *memo.GroupExpr) error {
	l := ge.Op.(*ops.Limit)
	p := &ops.PhysicalLimit{Order: l.Order, Count: l.Count, Offset: l.Offset, HasCount: l.HasCount}
	_, err := ctx.Insert(Op(p, Leaf(ge.Children[0])), ge.Group().ID)
	return err
}

// UnionAll2Physical implements UnionAll.
type UnionAll2Physical struct{}

// Name implements Rule.
func (*UnionAll2Physical) Name() string { return "UnionAll2Physical" }

// Kind implements Rule.
func (*UnionAll2Physical) Kind() Kind { return Implementation }

// Matches implements Rule.
func (*UnionAll2Physical) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.UnionAll)
	return ok
}

// Apply implements Rule.
func (*UnionAll2Physical) Apply(ctx *Context, ge *memo.GroupExpr) error {
	u := ge.Op.(*ops.UnionAll)
	p := &ops.PhysicalUnionAll{InCols: u.InCols, OutCols: u.OutCols}
	leaves := make([]*Node, len(ge.Children))
	for i, c := range ge.Children {
		leaves[i] = Leaf(c)
	}
	_, err := ctx.Insert(Op(p, leaves...), ge.Group().ID)
	return err
}

// CTEAnchor2Sequence implements the CTE anchor as a Sequence over a
// CTEProducer — the paper's producer/consumer model for WITH (§7.2.2
// "Common Expressions"): the shared expression is evaluated once and its
// output consumed by every consumer.
type CTEAnchor2Sequence struct{}

// Name implements Rule.
func (*CTEAnchor2Sequence) Name() string { return "CTEAnchor2Sequence" }

// Kind implements Rule.
func (*CTEAnchor2Sequence) Kind() Kind { return Implementation }

// Matches implements Rule.
func (*CTEAnchor2Sequence) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.CTEAnchor)
	return ok
}

// Apply implements Rule.
func (*CTEAnchor2Sequence) Apply(ctx *Context, ge *memo.GroupExpr) error {
	a := ge.Op.(*ops.CTEAnchor)
	cols := make([]base.ColID, len(a.Cols))
	for i, c := range a.Cols {
		cols[i] = c.ID
	}
	producer := Op(&ops.PhysicalCTEProducer{ID: a.ID, Cols: cols}, Leaf(ge.Children[0]))
	_, err := ctx.Insert(Op(&ops.Sequence{}, producer, Leaf(ge.Children[1])), ge.Group().ID)
	return err
}

// CTEConsumer2Physical implements a CTE consumer leaf.
type CTEConsumer2Physical struct{}

// Name implements Rule.
func (*CTEConsumer2Physical) Name() string { return "CTEConsumer2Physical" }

// Kind implements Rule.
func (*CTEConsumer2Physical) Kind() Kind { return Implementation }

// Matches implements Rule.
func (*CTEConsumer2Physical) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.CTEConsumer)
	return ok
}

// Apply implements Rule.
func (*CTEConsumer2Physical) Apply(ctx *Context, ge *memo.GroupExpr) error {
	c := ge.Op.(*ops.CTEConsumer)
	p := &ops.PhysicalCTEConsumer{ID: c.ID, Cols: c.Cols, ProducerCols: c.ProducerCols}
	_, err := ctx.Insert(Op(p), ge.Group().ID)
	return err
}

// Window2PhysicalWindow implements window functions.
type Window2PhysicalWindow struct{}

// Name implements Rule.
func (*Window2PhysicalWindow) Name() string { return "Window2PhysicalWindow" }

// Kind implements Rule.
func (*Window2PhysicalWindow) Kind() Kind { return Implementation }

// Matches implements Rule.
func (*Window2PhysicalWindow) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.Window)
	return ok
}

// Apply implements Rule.
func (*Window2PhysicalWindow) Apply(ctx *Context, ge *memo.GroupExpr) error {
	w := ge.Op.(*ops.Window)
	p := &ops.PhysicalWindow{PartitionCols: w.PartitionCols, Order: w.Order, Wins: w.Wins}
	_, err := ctx.Insert(Op(p, Leaf(ge.Children[0])), ge.Group().ID)
	return err
}
