package xform

import (
	"math"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
)

// The rule types and their Name/Kind/Matches/Apply skeletons are generated
// from defs/rules.opt into rules.gen.go; this file keeps the hand-written
// apply bodies for the scan, filter, projection and join implementation
// rules.

// applyGet2Scan implements a bare table access as a sequential scan — the
// paper's canonical implementation-rule example (§4.1 step 3).
func applyGet2Scan(ctx *Context, ge *memo.GroupExpr) error {
	get := ge.Op.(*ops.Get)
	rows := groupRows(ctx, ge.Group())
	scan := &ops.Scan{Alias: get.Alias, Rel: get.Rel, Cols: get.Cols, BaseRows: rows}
	_, err := ctx.Insert(Op(scan), ge.Group().ID)
	return err
}

func groupRows(ctx *Context, g *memo.Group) float64 {
	if s, err := ctx.Memo.DeriveStats(g.ID, ctx.Stats); err == nil {
		return s.Rows
	}
	return 1000
}

// applySelect2Scan merges a Select over a Get into a filtering scan,
// performing static partition elimination when the predicate constrains the
// partition column (paper §7.2.2 "Partition Elimination").
func applySelect2Scan(ctx *Context, ge *memo.GroupExpr) error {
	sel := ge.Op.(*ops.Select)
	child := ctx.Memo.Group(ge.Children[0])
	for _, cge := range child.Exprs() {
		get, ok := cge.Op.(*ops.Get)
		if !ok {
			continue
		}
		baseRows := groupRows(ctx, child)
		scan := &ops.Scan{
			Alias:    get.Alias,
			Rel:      get.Rel,
			Cols:     get.Cols,
			Filter:   sel.Pred,
			BaseRows: baseRows,
		}
		if get.Rel.IsPartitioned() {
			if parts, pruned := PrunePartitions(get.Rel, get.Cols, sel.Pred); pruned {
				scan.Pruned = true
				scan.Parts = parts
				if len(get.Rel.Parts) > 0 {
					scan.BaseRows = baseRows * float64(len(parts)) / float64(len(get.Rel.Parts))
				}
			}
		}
		if _, err := ctx.Insert(Op(scan), ge.Group().ID); err != nil {
			return err
		}
	}
	return nil
}

// PrunePartitions statically eliminates partitions that cannot contain rows
// matching the predicate. It returns the kept partition ordinals and whether
// pruning applies (a partition-column constraint was found).
func PrunePartitions(rel *md.Relation, cols []*md.ColRef, pred ops.ScalarExpr) ([]int, bool) {
	if !rel.IsPartitioned() || rel.PartCol >= len(cols) {
		return nil, false
	}
	partCol := cols[rel.PartCol].ID
	lo, hi := math.Inf(-1), math.Inf(1)
	hiExcl := false
	var eqVals []float64
	constrained := false
	for _, c := range ops.Conjuncts(pred) {
		switch x := c.(type) {
		case *ops.Cmp:
			l, r, op := x.L, x.R, x.Op
			if _, ok := l.(*ops.Const); ok {
				l, r = r, l
				op = op.Commuted()
			}
			id, lok := l.(*ops.Ident)
			cv, rok := r.(*ops.Const)
			if !lok || !rok || id.Col != partCol {
				continue
			}
			v := cv.Val.AsFloat()
			constrained = true
			switch op {
			case ops.CmpEq:
				eqVals = append(eqVals, v)
			case ops.CmpLt:
				if v <= hi {
					hi = v
					hiExcl = true
				}
			case ops.CmpLe:
				if v < hi {
					hi = v
					hiExcl = false
				}
			case ops.CmpGt, ops.CmpGe:
				lo = math.Max(lo, v)
			default:
				constrained = constrained || false
			}
		case *ops.InList:
			id, ok := x.Arg.(*ops.Ident)
			if !ok || id.Col != partCol || x.Negated {
				continue
			}
			allConst := true
			var vals []float64
			for _, v := range x.Vals {
				if cv, ok := v.(*ops.Const); ok {
					vals = append(vals, cv.Val.AsFloat())
				} else {
					allConst = false
				}
			}
			if allConst {
				constrained = true
				eqVals = append(eqVals, vals...)
			}
		default:
			// Other conjunct forms cannot constrain the partition column.
		}
	}
	if !constrained {
		return nil, false
	}
	var keep []int
	for i, p := range rel.Parts {
		plo, phi := p.Lo.AsFloat(), p.Hi.AsFloat()
		if len(eqVals) > 0 {
			match := false
			for _, v := range eqVals {
				if v >= plo && v < phi {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		if phi <= lo {
			continue
		}
		if hiExcl && plo >= hi || !hiExcl && plo > hi {
			continue
		}
		keep = append(keep, i)
	}
	return keep, true
}

// applySelect2IndexScan implements Select(Get) through a matching index:
// the index's leading key column must be constrained by an equality or
// range conjunct. The resulting IndexScan delivers the index order natively
// — letting plans skip a Sort enforcer, the IndexScan example of paper §3.
func applySelect2IndexScan(ctx *Context, ge *memo.GroupExpr) error {
	if ctx.Accessor == nil {
		return nil
	}
	sel := ge.Op.(*ops.Select)
	child := ctx.Memo.Group(ge.Children[0])
	for _, cge := range child.Exprs() {
		get, ok := cge.Op.(*ops.Get)
		if !ok {
			continue
		}
		for _, ixID := range get.Rel.IndexIDs {
			ix, err := ctx.Accessor.Index(ixID)
			if err != nil {
				continue
			}
			if len(ix.KeyCols) == 0 || ix.KeyCols[0] >= len(get.Cols) {
				continue
			}
			keyCol := get.Cols[ix.KeyCols[0]].ID
			var keyPreds, residual []ops.ScalarExpr
			for _, c := range ops.Conjuncts(sel.Pred) {
				if cmp, ok := c.(*ops.Cmp); ok && constrainsCol(cmp, keyCol) {
					keyPreds = append(keyPreds, c)
				} else {
					residual = append(residual, c)
				}
			}
			if len(keyPreds) == 0 {
				continue
			}
			scan := &ops.IndexScan{
				Alias:    get.Alias,
				Rel:      get.Rel,
				Index:    ix,
				Cols:     get.Cols,
				EqFilter: ops.And(keyPreds...),
				Residual: ops.And(residual...),
				BaseRows: groupRows(ctx, child),
			}
			if _, err := ctx.Insert(Op(scan), ge.Group().ID); err != nil {
				return err
			}
		}
	}
	return nil
}

func constrainsCol(cmp *ops.Cmp, col base.ColID) bool {
	l, r := cmp.L, cmp.R
	if _, ok := l.(*ops.Const); ok {
		l, r = r, l
	}
	id, lok := l.(*ops.Ident)
	_, rok := r.(*ops.Const)
	return lok && rok && id.Col == col
}

// applySelect2Filter implements Select as a Filter over any child plan.
func applySelect2Filter(ctx *Context, ge *memo.GroupExpr) error {
	sel := ge.Op.(*ops.Select)
	_, err := ctx.Insert(Op(&ops.Filter{Pred: sel.Pred}, Leaf(ge.Children[0])), ge.Group().ID)
	return err
}

// applyProject2ComputeScalar implements Project as ComputeScalar.
func applyProject2ComputeScalar(ctx *Context, ge *memo.GroupExpr) error {
	p := ge.Op.(*ops.Project)
	_, err := ctx.Insert(Op(ops.NewComputeScalar(p.Elems), Leaf(ge.Children[0])), ge.Group().ID)
	return err
}

// applyJoin2HashJoin implements a join with extractable equality keys as a
// hash join (paper: InnerJoin2HashJoin).
func applyJoin2HashJoin(ctx *Context, ge *memo.GroupExpr) error {
	j := ge.Op.(*ops.Join)
	leftCols := ctx.Memo.Group(ge.Children[0]).Logical().OutputCols
	rightCols := ctx.Memo.Group(ge.Children[1]).Logical().OutputCols
	lk, rk, residual := ops.EquiKeys(j.Pred, leftCols, rightCols)
	if len(lk) == 0 {
		return nil
	}
	hj := &ops.HashJoin{Type: j.Type, LeftKeys: lk, RightKeys: rk, Residual: ops.And(residual...)}
	_, err := ctx.Insert(Op(hj, Leaf(ge.Children[0]), Leaf(ge.Children[1])), ge.Group().ID)
	return err
}

// applyJoin2NLJoin implements any join as a nested-loops join (paper:
// InnerJoin2NLJoin); it is the only option for non-equi predicates.
func applyJoin2NLJoin(ctx *Context, ge *memo.GroupExpr) error {
	j := ge.Op.(*ops.Join)
	nl := &ops.NLJoin{Type: j.Type, Pred: j.Pred}
	_, err := ctx.Insert(Op(nl, Leaf(ge.Children[0]), Leaf(ge.Children[1])), ge.Group().ID)
	return err
}
