package xform

import (
	"math"

	"orca/internal/base"
	"orca/internal/memo"
	"orca/internal/ops"
)

// The rule types and their Name/Kind/Matches/Apply skeletons are generated
// from defs/rules.opt into rules.gen.go; this file keeps the hand-written
// match predicates and apply bodies for the aggregation rules.

// applyGbAgg2HashAgg implements grouped aggregation as a single-stage hash
// aggregate (or a scalar aggregate when there are no grouping columns).
func applyGbAgg2HashAgg(ctx *Context, ge *memo.GroupExpr) error {
	agg := ge.Op.(*ops.GbAgg)
	var op ops.Operator
	if len(agg.GroupCols) == 0 {
		op = &ops.ScalarAgg{Mode: ops.AggSingle, Aggs: agg.Aggs}
	} else {
		op = &ops.HashAgg{Mode: ops.AggSingle, GroupCols: agg.GroupCols, Aggs: agg.Aggs}
	}
	_, err := ctx.Insert(Op(op, Leaf(ge.Children[0])), ge.Group().ID)
	return err
}

// matchGbAgg2StreamAgg requires grouping columns: stream aggregation orders
// on them.
func matchGbAgg2StreamAgg(agg *ops.GbAgg, _ *memo.GroupExpr) bool {
	return len(agg.GroupCols) > 0
}

// applyGbAgg2StreamAgg implements grouped aggregation over sorted input.
func applyGbAgg2StreamAgg(ctx *Context, ge *memo.GroupExpr) error {
	agg := ge.Op.(*ops.GbAgg)
	op := &ops.StreamAgg{GroupCols: agg.GroupCols, Aggs: agg.Aggs}
	_, err := ctx.Insert(Op(op, Leaf(ge.Children[0])), ge.Group().ID)
	return err
}

// matchGbAgg2TwoStageAgg rejects DISTINCT aggregates: they cannot be split
// into partials.
func matchGbAgg2TwoStageAgg(agg *ops.GbAgg, _ *memo.GroupExpr) bool {
	for _, a := range agg.Aggs {
		if a.Agg.Distinct {
			return false
		}
	}
	return true
}

// applyGbAgg2TwoStageAgg implements the MPP two-stage aggregation: a Local
// aggregate computes partial states on segment-resident data, a motion
// (placed by the enforcement framework) repartitions the partials, and a
// Global aggregate combines them. This is the plan shape that avoids moving
// the full input across the interconnect.
func applyGbAgg2TwoStageAgg(ctx *Context, ge *memo.GroupExpr) error {
	agg := ge.Op.(*ops.GbAgg)

	localAggs := make([]ops.AggElem, len(agg.Aggs))
	globalAggs := make([]ops.AggElem, len(agg.Aggs))
	for i, a := range agg.Aggs {
		partial := ctx.ColFactory.NewComputedColumn("partial_"+a.Col.Name, a.Col.Type)
		localAggs[i] = ops.AggElem{Col: partial, Agg: a.Agg}
		combineName := a.Agg.Name
		if combineName == "count" {
			// Partial counts are summed, not re-counted.
			combineName = "sum"
		}
		globalAggs[i] = ops.AggElem{
			Col: a.Col,
			Agg: &ops.AggFunc{Name: combineName, Arg: ops.NewIdent(partial.ID, a.Col.Type)},
		}
	}

	var localOp, globalOp ops.Operator
	if len(agg.GroupCols) == 0 {
		localOp = &ops.ScalarAgg{Mode: ops.AggLocal, Aggs: localAggs}
		globalOp = &ops.ScalarAgg{Mode: ops.AggGlobal, Aggs: globalAggs}
	} else {
		localOp = &ops.HashAgg{Mode: ops.AggLocal, GroupCols: agg.GroupCols, Aggs: localAggs}
		globalOp = &ops.HashAgg{Mode: ops.AggGlobal, GroupCols: agg.GroupCols, Aggs: globalAggs}
	}

	localGE, err := ctx.Insert(Op(localOp, Leaf(ge.Children[0])), -1)
	if err != nil {
		return err
	}
	// Seed the local group's statistics: at most `groups` rows per segment.
	if localGE.Group().Stats() == nil {
		if childStats, err := ctx.Memo.DeriveStats(ge.Children[0], ctx.Stats); err == nil {
			gb := ctx.Stats.DeriveGroupBy(agg.GroupCols, childStats)
			rows := math.Min(childStats.Rows, gb.Rows*float64(maxInt(ctx.Segments, 1)))
			localGE.Group().SetStats(gb.WithRows(rows))
		}
	}
	_, err = ctx.Insert(Op(globalOp, Leaf(localGE.Group().ID)), ge.Group().ID)
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// groupColSet is a small helper used in tests.
func groupColSet(cols []base.ColID) base.ColSet { return base.MakeColSet(cols...) }
