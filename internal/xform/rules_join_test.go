package xform

import (
	"fmt"
	"sync"
	"testing"

	"orca/internal/base"
	"orca/internal/memo"
	"orca/internal/ops"
)

// eq builds key(l,0) = key(r,0) over the env tables.
func (e *env) eq(l string, lord int, r string, rord int) ops.ScalarExpr {
	return ops.Eq(
		ops.NewIdent(e.key(l, lord), base.TInt),
		ops.NewIdent(e.key(r, rord), base.TInt))
}

// insertJoin inserts top ⋈ built from the given node and returns the root
// group expression.
func (e *env) insertJoin(t testing.TB, tree *ops.Expr) *memo.GroupExpr {
	t.Helper()
	root, err := e.ctx.Memo.Insert(tree)
	if err != nil {
		t.Fatal(err)
	}
	return e.ctx.Memo.Group(root).Exprs()[0]
}

// joinShapes renders every Join expression in the group as "L⋈R" with the
// leaf relation names, descending one level into nested join groups.
func (e *env) joinShapes(g *memo.Group) []string {
	var shapes []string
	for _, x := range g.Exprs() {
		if _, ok := x.Op.(*ops.Join); !ok {
			continue
		}
		shapes = append(shapes, fmt.Sprintf("%s⋈%s",
			e.describe(x.Children[0]), e.describe(x.Children[1])))
	}
	return shapes
}

func (e *env) describe(id memo.GroupID) string {
	g := e.ctx.Memo.Group(id)
	for _, x := range g.Exprs() {
		switch op := x.Op.(type) {
		case *ops.Get:
			return op.Alias
		case *ops.Join:
			return "(" + e.describe(x.Children[0]) + "⋈" + e.describe(x.Children[1]) + ")"
		}
	}
	return "?"
}

func hasShape(shapes []string, want string) bool {
	for _, s := range shapes {
		if s == want {
			return true
		}
	}
	return false
}

func TestJoinAssociativityLeftToRight(t *testing.T) {
	e := newEnv(t)
	// (big ⋈ mid) ⋈ small with big.k=mid.k below and mid.k=small.k on top.
	lower := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e.eq("big", 0, "mid", 0)},
		ops.NewExpr(e.gets["big"]), ops.NewExpr(e.gets["mid"]))
	ge := e.insertJoin(t, ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e.eq("mid", 0, "small", 0)},
		lower, ops.NewExpr(e.gets["small"])))

	rule := &JoinAssociativity{}
	if !rule.Matches(ge) {
		t.Fatal("associativity does not match an inner join")
	}
	if err := rule.Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	shapes := e.joinShapes(ge.Group())
	if !hasShape(shapes, "big⋈(mid⋈small)") {
		t.Fatalf("right rotation missing: shapes = %v", shapes)
	}
	// Re-applying regenerates the same alternative; duplicate detection in
	// the memo must absorb it.
	before := ge.Group().NumExprs()
	if err := rule.Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	if after := ge.Group().NumExprs(); after != before {
		t.Errorf("duplicate detection failed: %d -> %d exprs", before, after)
	}
}

func TestJoinAssociativityRightToLeft(t *testing.T) {
	e := newEnv(t)
	// big ⋈ (mid ⋈ small) with mid.k=small.k below and big.k=mid.k on top.
	lower := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e.eq("mid", 0, "small", 0)},
		ops.NewExpr(e.gets["mid"]), ops.NewExpr(e.gets["small"]))
	ge := e.insertJoin(t, ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e.eq("big", 0, "mid", 0)},
		ops.NewExpr(e.gets["big"]), lower))

	rule := &JoinAssociativityRight{}
	if !rule.Matches(ge) {
		t.Fatal("mirror associativity does not match an inner join")
	}
	if err := rule.Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	shapes := e.joinShapes(ge.Group())
	if !hasShape(shapes, "(big⋈mid)⋈small") {
		t.Fatalf("left rotation missing: shapes = %v", shapes)
	}
}

func TestJoinAssociativityExchange(t *testing.T) {
	e := newEnv(t)
	// (big ⋈ mid) ⋈ small where the top predicate links big with small:
	// the exchange swaps the B and C legs into (big ⋈ small) ⋈ mid.
	lower := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e.eq("big", 0, "mid", 0)},
		ops.NewExpr(e.gets["big"]), ops.NewExpr(e.gets["mid"]))
	ge := e.insertJoin(t, ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e.eq("big", 0, "small", 0)},
		lower, ops.NewExpr(e.gets["small"])))

	if err := (&JoinAssociativityExchange{}).Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	shapes := e.joinShapes(ge.Group())
	if !hasShape(shapes, "(big⋈small)⋈mid") {
		t.Fatalf("exchange alternative missing: shapes = %v", shapes)
	}

	// When no predicate links A with C the exchange would manufacture a
	// cross product; splitJoinPreds rejects it and the rule adds nothing.
	e2 := newEnv(t)
	lower2 := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e2.eq("big", 0, "mid", 0)},
		ops.NewExpr(e2.gets["big"]), ops.NewExpr(e2.gets["mid"]))
	ge2 := e2.insertJoin(t, ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e2.eq("mid", 0, "small", 0)},
		lower2, ops.NewExpr(e2.gets["small"])))
	before := ge2.Group().NumExprs()
	if err := (&JoinAssociativityExchange{}).Apply(e2.ctx, ge2); err != nil {
		t.Fatal(err)
	}
	if after := ge2.Group().NumExprs(); after != before {
		t.Errorf("exchange manufactured a cross product: %d -> %d exprs", before, after)
	}
}

func TestPushSelectThroughJoin(t *testing.T) {
	e := newEnv(t)
	lt := func(tab string, v int64) ops.ScalarExpr {
		return ops.NewCmp(ops.CmpLt, ops.NewIdent(e.key(tab, 1), base.TInt), ops.NewConst(base.NewInt(v)))
	}
	join := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e.eq("big", 0, "mid", 0)},
		ops.NewExpr(e.gets["big"]), ops.NewExpr(e.gets["mid"]))
	// One conjunct per side plus a cross-side residual.
	pred := ops.And(lt("big", 10), lt("mid", 5),
		ops.Eq(ops.NewIdent(e.key("big", 1), base.TInt), ops.NewIdent(e.key("mid", 1), base.TInt)))
	ge := e.insertJoin(t, ops.NewExpr(&ops.Select{Pred: pred}, join))

	rule := &PushSelectThroughJoin{}
	if !rule.Matches(ge) {
		t.Fatal("pushdown does not match a select with a predicate")
	}
	if err := rule.Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	g := ge.Group()
	if g.NumExprs() != 2 {
		t.Fatalf("group exprs = %d, want original select + pushed alternative", g.NumExprs())
	}
	// The alternative keeps the cross-side conjunct in a residual select
	// above the join, with per-side selects below it.
	alt := g.Exprs()[1]
	res, ok := alt.Op.(*ops.Select)
	if !ok {
		t.Fatalf("alternative root is %T, want residual *ops.Select", alt.Op)
	}
	if n := len(ops.Conjuncts(res.Pred)); n != 1 {
		t.Errorf("residual conjuncts = %d, want 1", n)
	}
	joinGroup := e.ctx.Memo.Group(alt.Children[0])
	var pushed *memo.GroupExpr
	for _, x := range joinGroup.Exprs() {
		if _, ok := x.Op.(*ops.Join); ok {
			pushed = x
		}
	}
	if pushed == nil {
		t.Fatal("no join under the residual select")
	}
	for i, side := range []string{"left", "right"} {
		childGroup := e.ctx.Memo.Group(pushed.Children[i])
		found := false
		for _, x := range childGroup.Exprs() {
			if _, ok := x.Op.(*ops.Select); ok {
				found = true
			}
		}
		if !found {
			t.Errorf("no select pushed onto the %s join input", side)
		}
	}

	// Termination: a select whose conjuncts all cross both sides moves
	// nothing, and applying the rule must not re-insert an identical tree.
	e2 := newEnv(t)
	join2 := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: e2.eq("big", 0, "mid", 0)},
		ops.NewExpr(e2.gets["big"]), ops.NewExpr(e2.gets["mid"]))
	cross := ops.Eq(ops.NewIdent(e2.key("big", 1), base.TInt), ops.NewIdent(e2.key("mid", 1), base.TInt))
	ge2 := e2.insertJoin(t, ops.NewExpr(&ops.Select{Pred: cross}, join2))
	before := ge2.Group().NumExprs()
	if err := (&PushSelectThroughJoin{}).Apply(e2.ctx, ge2); err != nil {
		t.Fatal(err)
	}
	if after := ge2.Group().NumExprs(); after != before {
		t.Errorf("no-op pushdown grew the group: %d -> %d exprs", before, after)
	}
}

func TestPushSelectThroughGbAgg(t *testing.T) {
	e := newEnv(t)
	cnt := e.f.NewComputedColumn("cnt", base.TInt)
	agg := ops.NewExpr(
		&ops.GbAgg{GroupCols: []base.ColID{e.key("big", 0)},
			Aggs: []ops.AggElem{{Col: cnt, Agg: &ops.AggFunc{Name: "count"}}}},
		ops.NewExpr(e.gets["big"]))
	// One conjunct on the grouping column (moves) and one on the computed
	// aggregate output (stays above).
	pred := ops.And(
		ops.NewCmp(ops.CmpLt, ops.NewIdent(e.key("big", 0), base.TInt), ops.NewConst(base.NewInt(5))),
		ops.NewCmp(ops.CmpGt, ops.NewIdent(cnt.ID, base.TInt), ops.NewConst(base.NewInt(1))))
	ge := e.insertJoin(t, ops.NewExpr(&ops.Select{Pred: pred}, agg))

	rule := &PushSelectThroughGbAgg{}
	if !rule.Matches(ge) {
		t.Fatal("pushdown does not match a select with a predicate")
	}
	if err := rule.Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	g := ge.Group()
	if g.NumExprs() != 2 {
		t.Fatalf("group exprs = %d, want original select + pushed alternative", g.NumExprs())
	}
	alt := g.Exprs()[1]
	res, ok := alt.Op.(*ops.Select)
	if !ok {
		t.Fatalf("alternative root is %T, want residual *ops.Select", alt.Op)
	}
	if n := len(ops.Conjuncts(res.Pred)); n != 1 {
		t.Errorf("residual conjuncts = %d, want the aggregate-output one", n)
	}
	aggGroup := e.ctx.Memo.Group(alt.Children[0])
	var pushedAgg *memo.GroupExpr
	for _, x := range aggGroup.Exprs() {
		if _, ok := x.Op.(*ops.GbAgg); ok {
			pushedAgg = x
		}
	}
	if pushedAgg == nil {
		t.Fatal("no aggregation under the residual select")
	}
	input := e.ctx.Memo.Group(pushedAgg.Children[0])
	foundSel := false
	for _, x := range input.Exprs() {
		if _, ok := x.Op.(*ops.Select); ok {
			foundSel = true
		}
	}
	if !foundSel {
		t.Error("no select pushed below the aggregation")
	}

	// A predicate entirely on aggregate outputs moves nothing and must not
	// re-insert an identical tree.
	e2 := newEnv(t)
	cnt2 := e2.f.NewComputedColumn("cnt", base.TInt)
	agg2 := ops.NewExpr(
		&ops.GbAgg{GroupCols: []base.ColID{e2.key("big", 0)},
			Aggs: []ops.AggElem{{Col: cnt2, Agg: &ops.AggFunc{Name: "count"}}}},
		ops.NewExpr(e2.gets["big"]))
	stuck := ops.NewCmp(ops.CmpGt, ops.NewIdent(cnt2.ID, base.TInt), ops.NewConst(base.NewInt(1)))
	ge2 := e2.insertJoin(t, ops.NewExpr(&ops.Select{Pred: stuck}, agg2))
	before := ge2.Group().NumExprs()
	if err := (&PushSelectThroughGbAgg{}).Apply(e2.ctx, ge2); err != nil {
		t.Fatal(err)
	}
	if after := ge2.Group().NumExprs(); after != before {
		t.Errorf("no-op pushdown grew the group: %d -> %d exprs", before, after)
	}
}

func TestSplitJoinPreds(t *testing.T) {
	e := newEnv(t)
	var lCols, rCols base.ColSet
	lCols.Add(e.key("big", 0))
	lCols.Add(e.key("big", 1))
	rCols.Add(e.key("mid", 0))
	rCols.Add(e.key("mid", 1))

	crossing := e.eq("big", 0, "mid", 0)
	leftOnly := ops.NewCmp(ops.CmpLt, ops.NewIdent(e.key("big", 1), base.TInt), ops.NewConst(base.NewInt(3)))
	outside := e.eq("big", 0, "small", 0)

	inner, outer, ok := splitJoinPreds([]ops.ScalarExpr{crossing, leftOnly, outside}, lCols, rCols)
	if !ok {
		t.Fatal("split rejected a predicate set with a crossing conjunct")
	}
	if n := len(ops.Conjuncts(inner)); n != 2 {
		t.Errorf("inner conjuncts = %d, want crossing + left-only", n)
	}
	if n := len(ops.Conjuncts(outer)); n != 1 {
		t.Errorf("outer conjuncts = %d, want the small-referencing one", n)
	}

	// Without a conjunct touching both sides the new join would be a cross
	// product; the split must refuse.
	if _, _, ok := splitJoinPreds([]ops.ScalarExpr{leftOnly, outside}, lCols, rCols); ok {
		t.Error("split accepted a set with no conjunct joining both sides")
	}
}

// TestRuleIDStability pins the generated dense IDs (declaration order in
// defs/rules.opt) and checks that concurrent dynamic registration hands out
// stable IDs strictly above the generated block.
func TestRuleIDStability(t *testing.T) {
	want := map[string]int{
		"JoinCommutativity":         RuleIDJoinCommutativity,
		"JoinAssociativity":         RuleIDJoinAssociativity,
		"JoinAssociativityRight":    RuleIDJoinAssociativityRight,
		"JoinAssociativityExchange": RuleIDJoinAssociativityExchange,
		"PushSelectThroughJoin":     RuleIDPushSelectThroughJoin,
		"Window2PhysicalWindow":     RuleIDWindow2PhysicalWindow,
	}
	for name, id := range want {
		if got := RuleIDFor(name); got != id {
			t.Errorf("RuleIDFor(%s) = %d, want generated const %d", name, got, id)
		}
		if RuleNameFor(id) != name {
			t.Errorf("RuleNameFor(%d) = %q, want %q", id, RuleNameFor(id), name)
		}
	}

	const workers = 8
	ids := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ids[w] = append(ids[w], RuleIDFor(fmt.Sprintf("DynTestRule%d", i)))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got id %d for DynTestRule%d, worker 0 got %d",
					w, ids[w][i], i, ids[0][i])
			}
			if ids[w][i] < NumGeneratedRuleIDs {
				t.Fatalf("dynamic rule id %d collides with the generated block [0,%d)",
					ids[w][i], NumGeneratedRuleIDs)
			}
		}
	}
}
