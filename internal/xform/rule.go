// Package xform implements Orca's transformation rules (paper §3
// "Transformations"): self-contained components producing either equivalent
// logical expressions (exploration) or physical implementations
// (implementation). Each rule can be activated or deactivated individually
// through the optimizer configuration, which is also how optimization stages
// select rule subsets (paper §4.1 "Multi-Stage Optimization").
package xform

import (
	"strconv"
	"strings"
	"sync"

	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/stats"
)

// Kind separates exploration from implementation rules.
type Kind uint8

// Rule kinds.
const (
	Exploration Kind = iota
	Implementation
)

// ---------------------------------------------------------------------------
// Rule registry: stable dense IDs

// The generated rules (defs/rules.opt) get their dense IDs at generation
// time: the RuleID* const block in rules.gen.go assigns one compile-time
// constant per rule in declaration order, and generatedRuleIDs /
// generatedRuleNames are read-only after package init. RuleIDFor therefore
// resolves every generated rule without taking a lock — the common case on
// the search hot path. Only rules registered dynamically (tests,
// extensions) fall through to the mutex-guarded runtime registry, which
// hands out IDs from NumGeneratedRuleIDs upward.
var dynRegistry = struct {
	mu    sync.Mutex
	ids   map[string]int
	names []string
}{ids: make(map[string]int)}

// RuleIDFor returns the dense id of a rule name, assigning the next free id
// on first use. IDs are process-stable: a name always maps to the same id,
// and generated rules (the RuleID* constants) resolve lock-free.
func RuleIDFor(name string) int {
	if id, ok := generatedRuleIDs[name]; ok {
		return id
	}
	dynRegistry.mu.Lock()
	defer dynRegistry.mu.Unlock()
	if id, ok := dynRegistry.ids[name]; ok {
		return id
	}
	id := NumGeneratedRuleIDs + len(dynRegistry.names)
	dynRegistry.ids[name] = id
	dynRegistry.names = append(dynRegistry.names, name)
	return id
}

// RuleNameFor returns the name registered for a dense rule id, or "" when
// the id was never assigned.
func RuleNameFor(id int) string {
	if id >= 0 && id < NumGeneratedRuleIDs {
		return generatedRuleNames[id]
	}
	dynRegistry.mu.Lock()
	defer dynRegistry.mu.Unlock()
	if id < NumGeneratedRuleIDs || id >= NumGeneratedRuleIDs+len(dynRegistry.names) {
		return ""
	}
	return dynRegistry.names[id-NumGeneratedRuleIDs]
}

// NumRuleIDs returns the number of assigned rule ids.
func NumRuleIDs() int {
	dynRegistry.mu.Lock()
	defer dynRegistry.mu.Unlock()
	return NumGeneratedRuleIDs + len(dynRegistry.names)
}

// ActiveRule is a rule activated for the current stage together with its
// dense registry id, so the search jobs check the applied ledger without
// touching the rule's name.
type ActiveRule struct {
	Rule
	ID int
}

// Context carries everything rules need: the Memo for copy-in, the
// statistics context for cardinality-driven rules (join ordering), metadata
// access for index and partition information, the column factory for fresh
// columns (two-stage aggregates), and the segment count.
//
// The Context also holds the active rule set and its epoch, which is how
// optimization stages select rule subsets (paper §4.1 "Multi-Stage
// Optimization") against a shared Memo: each distinct enabled-rule signature
// gets a dense epoch number, and the Memo's per-group explored/implemented
// and per-context done markers are keyed by epoch. A later stage with the
// same rule set reuses the earlier stage's markers outright; a stage with a
// different rule set re-walks the Memo under its own epoch, while the
// per-expression applied ledger (which spans epochs) keeps already-fired
// rules from firing again.
type Context struct {
	Memo       *memo.Memo
	Stats      *stats.Context
	Accessor   *md.Accessor
	ColFactory *md.ColumnFactory
	Segments   int
	// JoinOrderDPLimit is the largest n-ary join the DP rule enumerates
	// exhaustively; larger joins use the greedy rule.
	JoinOrderDPLimit int

	epoch           int
	epochs          map[string]int
	explorations    []ActiveRule
	implementations []ActiveRule
}

// SetRuleSet installs the stage's enabled rules (all rules minus the
// disabled set) and returns the rule-set epoch: stages with identical
// enabled-rule signatures share an epoch, so an identical later stage is a
// no-op resume rather than a re-walk. The signature is the bitset of dense
// rule IDs (not a joined name list): the same set of rules always produces
// the same epoch key regardless of registration or iteration order.
func (ctx *Context) SetRuleSet(rules []Rule, disabled map[string]bool) int {
	ctx.explorations = ctx.explorations[:0]
	ctx.implementations = ctx.implementations[:0]
	var sig []uint64
	for _, r := range rules {
		if disabled[r.Name()] {
			continue
		}
		id := RuleIDFor(r.Name())
		for len(sig) <= id>>6 {
			sig = append(sig, 0)
		}
		sig[id>>6] |= uint64(1) << (id & 63)
		ar := ActiveRule{Rule: r, ID: id}
		switch r.Kind() {
		case Exploration:
			ctx.explorations = append(ctx.explorations, ar)
		case Implementation:
			ctx.implementations = append(ctx.implementations, ar)
		}
	}
	var key strings.Builder
	for _, w := range sig {
		key.WriteString(strconv.FormatUint(w, 16))
		key.WriteByte('.')
	}
	if ctx.epochs == nil {
		ctx.epochs = make(map[string]int)
	}
	e, ok := ctx.epochs[key.String()]
	if !ok {
		e = len(ctx.epochs) + 1
		ctx.epochs[key.String()] = e
	}
	ctx.epoch = e
	return e
}

// Epoch returns the active rule-set epoch (0 until SetRuleSet is called).
func (ctx *Context) Epoch() int { return ctx.epoch }

// Explorations returns the active exploration rules with their dense ids.
func (ctx *Context) Explorations() []ActiveRule { return ctx.explorations }

// Implementations returns the active implementation rules with their dense
// ids.
func (ctx *Context) Implementations() []ActiveRule { return ctx.implementations }

// Rule is one transformation. Rules fire at most once per group expression
// (tracked on the expression); Apply inserts its results into the source
// expression's group.
type Rule interface {
	// Name identifies the rule in configurations and AMPERe dumps.
	Name() string
	// Kind reports exploration vs implementation.
	Kind() Kind
	// Matches reports whether the rule's pattern matches the expression.
	Matches(ge *memo.GroupExpr) bool
	// Apply performs the transformation, copying results into the Memo.
	Apply(ctx *Context, ge *memo.GroupExpr) error
}

// Node is a partially-materialized expression used as a rule result: either
// an operator over child nodes, or a reference to an existing group.
type Node struct {
	Op       ops.Operator
	Children []*Node
	Leaf     memo.GroupID
}

// Op builds an internal node.
func Op(op ops.Operator, children ...*Node) *Node {
	return &Node{Op: op, Children: children}
}

// Leaf references an existing group.
func Leaf(g memo.GroupID) *Node { return &Node{Op: nil, Leaf: g} }

// Insert copies a rule result into the Memo, targeting the given group for
// the root node (paper §3: "results of applying transformation rules are
// copied-in to the Memo, which may result in creating new groups and/or
// adding new group expressions to existing groups").
func (ctx *Context) Insert(n *Node, target memo.GroupID) (*memo.GroupExpr, error) {
	children := make([]memo.GroupID, len(n.Children))
	for i, c := range n.Children {
		if c.Op == nil {
			children[i] = c.Leaf
			continue
		}
		ge, err := ctx.Insert(c, -1)
		if err != nil {
			return nil, err
		}
		children[i] = ge.Group().ID
	}
	// Fresh inner-join subtrees register in canonical orientation (smaller
	// group id on the left). The subtree registry creates one group per
	// distinct (operator, children) shape, so without this the rotation
	// rules — which synthesize the same subset pair in path-dependent
	// orientations — seed duplicate groups for one logical sub-goal, and
	// every parent expression then multiplies across the duplicates. An
	// inner join's predicate is a symmetric conjunction, so the swap
	// preserves semantics; JoinCommutativity still adds the mirrored
	// expression inside the group for build-side alternatives.
	if target < 0 && len(children) == 2 {
		if j, ok := n.Op.(*ops.Join); ok && j.Type == ops.InnerJoin && children[0] > children[1] {
			children[0], children[1] = children[1], children[0]
		}
	}
	return ctx.Memo.InsertExpr(n.Op, children, target)
}

// RuleNames returns the names of the given rules.
func RuleNames(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name()
	}
	return out
}
