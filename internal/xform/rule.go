// Package xform implements Orca's transformation rules (paper §3
// "Transformations"): self-contained components producing either equivalent
// logical expressions (exploration) or physical implementations
// (implementation). Each rule can be activated or deactivated individually
// through the optimizer configuration, which is also how optimization stages
// select rule subsets (paper §4.1 "Multi-Stage Optimization").
package xform

import (
	"sort"
	"strings"

	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/stats"
)

// Kind separates exploration from implementation rules.
type Kind uint8

// Rule kinds.
const (
	Exploration Kind = iota
	Implementation
)

// Context carries everything rules need: the Memo for copy-in, the
// statistics context for cardinality-driven rules (join ordering), metadata
// access for index and partition information, the column factory for fresh
// columns (two-stage aggregates), and the segment count.
//
// The Context also holds the active rule set and its epoch, which is how
// optimization stages select rule subsets (paper §4.1 "Multi-Stage
// Optimization") against a shared Memo: each distinct enabled-rule signature
// gets a dense epoch number, and the Memo's per-group explored/implemented
// and per-context done markers are keyed by epoch. A later stage with the
// same rule set reuses the earlier stage's markers outright; a stage with a
// different rule set re-walks the Memo under its own epoch, while the
// per-expression applied ledger (which spans epochs) keeps already-fired
// rules from firing again.
type Context struct {
	Memo       *memo.Memo
	Stats      *stats.Context
	Accessor   *md.Accessor
	ColFactory *md.ColumnFactory
	Segments   int
	// JoinOrderDPLimit is the largest n-ary join the DP rule enumerates
	// exhaustively; larger joins use the greedy rule.
	JoinOrderDPLimit int

	epoch           int
	epochs          map[string]int
	explorations    []Rule
	implementations []Rule
}

// SetRuleSet installs the stage's enabled rules (all rules minus the
// disabled set) and returns the rule-set epoch: stages with identical
// enabled-rule signatures share an epoch, so an identical later stage is a
// no-op resume rather than a re-walk.
func (ctx *Context) SetRuleSet(rules []Rule, disabled map[string]bool) int {
	ctx.explorations = ctx.explorations[:0]
	ctx.implementations = ctx.implementations[:0]
	var names []string
	for _, r := range rules {
		if disabled[r.Name()] {
			continue
		}
		names = append(names, r.Name())
		switch r.Kind() {
		case Exploration:
			ctx.explorations = append(ctx.explorations, r)
		case Implementation:
			ctx.implementations = append(ctx.implementations, r)
		}
	}
	sort.Strings(names)
	sig := strings.Join(names, ",")
	if ctx.epochs == nil {
		ctx.epochs = make(map[string]int)
	}
	e, ok := ctx.epochs[sig]
	if !ok {
		e = len(ctx.epochs) + 1
		ctx.epochs[sig] = e
	}
	ctx.epoch = e
	return e
}

// Epoch returns the active rule-set epoch (0 until SetRuleSet is called).
func (ctx *Context) Epoch() int { return ctx.epoch }

// Explorations returns the active exploration rules.
func (ctx *Context) Explorations() []Rule { return ctx.explorations }

// Implementations returns the active implementation rules.
func (ctx *Context) Implementations() []Rule { return ctx.implementations }

// Rule is one transformation. Rules fire at most once per group expression
// (tracked on the expression); Apply inserts its results into the source
// expression's group.
type Rule interface {
	// Name identifies the rule in configurations and AMPERe dumps.
	Name() string
	// Kind reports exploration vs implementation.
	Kind() Kind
	// Matches reports whether the rule's pattern matches the expression.
	Matches(ge *memo.GroupExpr) bool
	// Apply performs the transformation, copying results into the Memo.
	Apply(ctx *Context, ge *memo.GroupExpr) error
}

// Node is a partially-materialized expression used as a rule result: either
// an operator over child nodes, or a reference to an existing group.
type Node struct {
	Op       ops.Operator
	Children []*Node
	Leaf     memo.GroupID
}

// Op builds an internal node.
func Op(op ops.Operator, children ...*Node) *Node {
	return &Node{Op: op, Children: children}
}

// Leaf references an existing group.
func Leaf(g memo.GroupID) *Node { return &Node{Op: nil, Leaf: g} }

// Insert copies a rule result into the Memo, targeting the given group for
// the root node (paper §3: "results of applying transformation rules are
// copied-in to the Memo, which may result in creating new groups and/or
// adding new group expressions to existing groups").
func (ctx *Context) Insert(n *Node, target memo.GroupID) (*memo.GroupExpr, error) {
	children := make([]memo.GroupID, len(n.Children))
	for i, c := range n.Children {
		if c.Op == nil {
			children[i] = c.Leaf
			continue
		}
		ge, err := ctx.Insert(c, -1)
		if err != nil {
			return nil, err
		}
		children[i] = ge.Group().ID
	}
	return ctx.Memo.InsertExpr(n.Op, children, target)
}

// DefaultRules returns every rule in registration order. The optimizer's
// stage configuration filters this list by name.
func DefaultRules() []Rule {
	return []Rule{
		// Exploration.
		&JoinCommutativity{},
		&JoinAssociativity{},
		&ExpandNAryJoinDP{},
		&ExpandNAryJoinGreedy{},
		&ExpandNAryJoinLeftDeep{},
		// Implementation.
		&Get2Scan{},
		&Select2Scan{},
		&Select2IndexScan{},
		&Select2Filter{},
		&Project2ComputeScalar{},
		&Join2HashJoin{},
		&Join2NLJoin{},
		&GbAgg2HashAgg{},
		&GbAgg2StreamAgg{},
		&GbAgg2TwoStageAgg{},
		&Limit2PhysicalLimit{},
		&UnionAll2Physical{},
		&CTEAnchor2Sequence{},
		&CTEConsumer2Physical{},
		&Window2PhysicalWindow{},
	}
}

// RuleNames returns the names of the given rules.
func RuleNames(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name()
	}
	return out
}
