// Package xform implements Orca's transformation rules (paper §3
// "Transformations"): self-contained components producing either equivalent
// logical expressions (exploration) or physical implementations
// (implementation). Each rule can be activated or deactivated individually
// through the optimizer configuration, which is also how optimization stages
// select rule subsets (paper §4.1 "Multi-Stage Optimization").
package xform

import (
	"strconv"
	"strings"
	"sync"

	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/stats"
)

// Kind separates exploration from implementation rules.
type Kind uint8

// Rule kinds.
const (
	Exploration Kind = iota
	Implementation
)

// ---------------------------------------------------------------------------
// Rule registry: stable dense IDs

// ruleRegistry assigns every rule name a stable small-int ID at registry
// build time. The IDs index the Memo's per-expression applied-rule bitsets
// (memo.GroupExpr.MarkApplied/Applied), so the rule-firing check path hashes
// no strings; they also form the rule-set signature that keys optimization
// epochs. DefaultRules are registered at package init in registration order,
// which makes their IDs stable across sessions; rules registered later
// (tests, extensions) get the next free ID.
var ruleRegistry = struct {
	mu    sync.Mutex
	ids   map[string]int
	names []string
}{ids: make(map[string]int)}

func init() {
	for _, r := range DefaultRules() {
		RuleIDFor(r.Name())
	}
}

// RuleIDFor returns the dense id of a rule name, assigning the next free id
// on first use. IDs are process-stable: a name always maps to the same id.
func RuleIDFor(name string) int {
	ruleRegistry.mu.Lock()
	defer ruleRegistry.mu.Unlock()
	if id, ok := ruleRegistry.ids[name]; ok {
		return id
	}
	id := len(ruleRegistry.names)
	ruleRegistry.ids[name] = id
	ruleRegistry.names = append(ruleRegistry.names, name)
	return id
}

// RuleNameFor returns the name registered for a dense rule id, or "" when
// the id was never assigned.
func RuleNameFor(id int) string {
	ruleRegistry.mu.Lock()
	defer ruleRegistry.mu.Unlock()
	if id < 0 || id >= len(ruleRegistry.names) {
		return ""
	}
	return ruleRegistry.names[id]
}

// NumRuleIDs returns the number of assigned rule ids.
func NumRuleIDs() int {
	ruleRegistry.mu.Lock()
	defer ruleRegistry.mu.Unlock()
	return len(ruleRegistry.names)
}

// ActiveRule is a rule activated for the current stage together with its
// dense registry id, so the search jobs check the applied ledger without
// touching the rule's name.
type ActiveRule struct {
	Rule
	ID int
}

// Context carries everything rules need: the Memo for copy-in, the
// statistics context for cardinality-driven rules (join ordering), metadata
// access for index and partition information, the column factory for fresh
// columns (two-stage aggregates), and the segment count.
//
// The Context also holds the active rule set and its epoch, which is how
// optimization stages select rule subsets (paper §4.1 "Multi-Stage
// Optimization") against a shared Memo: each distinct enabled-rule signature
// gets a dense epoch number, and the Memo's per-group explored/implemented
// and per-context done markers are keyed by epoch. A later stage with the
// same rule set reuses the earlier stage's markers outright; a stage with a
// different rule set re-walks the Memo under its own epoch, while the
// per-expression applied ledger (which spans epochs) keeps already-fired
// rules from firing again.
type Context struct {
	Memo       *memo.Memo
	Stats      *stats.Context
	Accessor   *md.Accessor
	ColFactory *md.ColumnFactory
	Segments   int
	// JoinOrderDPLimit is the largest n-ary join the DP rule enumerates
	// exhaustively; larger joins use the greedy rule.
	JoinOrderDPLimit int

	epoch           int
	epochs          map[string]int
	explorations    []ActiveRule
	implementations []ActiveRule
}

// SetRuleSet installs the stage's enabled rules (all rules minus the
// disabled set) and returns the rule-set epoch: stages with identical
// enabled-rule signatures share an epoch, so an identical later stage is a
// no-op resume rather than a re-walk. The signature is the bitset of dense
// rule IDs (not a joined name list): the same set of rules always produces
// the same epoch key regardless of registration or iteration order.
func (ctx *Context) SetRuleSet(rules []Rule, disabled map[string]bool) int {
	ctx.explorations = ctx.explorations[:0]
	ctx.implementations = ctx.implementations[:0]
	var sig []uint64
	for _, r := range rules {
		if disabled[r.Name()] {
			continue
		}
		id := RuleIDFor(r.Name())
		for len(sig) <= id>>6 {
			sig = append(sig, 0)
		}
		sig[id>>6] |= uint64(1) << (id & 63)
		ar := ActiveRule{Rule: r, ID: id}
		switch r.Kind() {
		case Exploration:
			ctx.explorations = append(ctx.explorations, ar)
		case Implementation:
			ctx.implementations = append(ctx.implementations, ar)
		}
	}
	var key strings.Builder
	for _, w := range sig {
		key.WriteString(strconv.FormatUint(w, 16))
		key.WriteByte('.')
	}
	if ctx.epochs == nil {
		ctx.epochs = make(map[string]int)
	}
	e, ok := ctx.epochs[key.String()]
	if !ok {
		e = len(ctx.epochs) + 1
		ctx.epochs[key.String()] = e
	}
	ctx.epoch = e
	return e
}

// Epoch returns the active rule-set epoch (0 until SetRuleSet is called).
func (ctx *Context) Epoch() int { return ctx.epoch }

// Explorations returns the active exploration rules with their dense ids.
func (ctx *Context) Explorations() []ActiveRule { return ctx.explorations }

// Implementations returns the active implementation rules with their dense
// ids.
func (ctx *Context) Implementations() []ActiveRule { return ctx.implementations }

// Rule is one transformation. Rules fire at most once per group expression
// (tracked on the expression); Apply inserts its results into the source
// expression's group.
type Rule interface {
	// Name identifies the rule in configurations and AMPERe dumps.
	Name() string
	// Kind reports exploration vs implementation.
	Kind() Kind
	// Matches reports whether the rule's pattern matches the expression.
	Matches(ge *memo.GroupExpr) bool
	// Apply performs the transformation, copying results into the Memo.
	Apply(ctx *Context, ge *memo.GroupExpr) error
}

// Node is a partially-materialized expression used as a rule result: either
// an operator over child nodes, or a reference to an existing group.
type Node struct {
	Op       ops.Operator
	Children []*Node
	Leaf     memo.GroupID
}

// Op builds an internal node.
func Op(op ops.Operator, children ...*Node) *Node {
	return &Node{Op: op, Children: children}
}

// Leaf references an existing group.
func Leaf(g memo.GroupID) *Node { return &Node{Op: nil, Leaf: g} }

// Insert copies a rule result into the Memo, targeting the given group for
// the root node (paper §3: "results of applying transformation rules are
// copied-in to the Memo, which may result in creating new groups and/or
// adding new group expressions to existing groups").
func (ctx *Context) Insert(n *Node, target memo.GroupID) (*memo.GroupExpr, error) {
	children := make([]memo.GroupID, len(n.Children))
	for i, c := range n.Children {
		if c.Op == nil {
			children[i] = c.Leaf
			continue
		}
		ge, err := ctx.Insert(c, -1)
		if err != nil {
			return nil, err
		}
		children[i] = ge.Group().ID
	}
	return ctx.Memo.InsertExpr(n.Op, children, target)
}

// DefaultRules returns every rule in registration order. The optimizer's
// stage configuration filters this list by name.
func DefaultRules() []Rule {
	return []Rule{
		// Exploration.
		&JoinCommutativity{},
		&JoinAssociativity{},
		&ExpandNAryJoinDP{},
		&ExpandNAryJoinGreedy{},
		&ExpandNAryJoinLeftDeep{},
		// Implementation.
		&Get2Scan{},
		&Select2Scan{},
		&Select2IndexScan{},
		&Select2Filter{},
		&Project2ComputeScalar{},
		&Join2HashJoin{},
		&Join2NLJoin{},
		&GbAgg2HashAgg{},
		&GbAgg2StreamAgg{},
		&GbAgg2TwoStageAgg{},
		&Limit2PhysicalLimit{},
		&UnionAll2Physical{},
		&CTEAnchor2Sequence{},
		&CTEConsumer2Physical{},
		&Window2PhysicalWindow{},
	}
}

// RuleNames returns the names of the given rules.
func RuleNames(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name()
	}
	return out
}
