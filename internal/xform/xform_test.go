package xform

import (
	"testing"

	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/stats"
)

// env builds a memo + xform context over a three-table catalog with very
// different sizes, so cardinality-driven ordering has a clear winner.
type env struct {
	ctx  *Context
	f    *md.ColumnFactory
	gets map[string]*ops.Get
}

func newEnv(t testing.TB) *env {
	t.Helper()
	p := md.NewMemProvider()
	sizes := map[string]float64{"big": 100000, "mid": 1000, "small": 10}
	f := md.NewColumnFactory()
	gets := map[string]*ops.Get{}
	for name, rows := range sizes {
		rel := md.Build(p, md.TableSpec{
			Name: name, Rows: rows, Policy: md.DistHash, DistCols: []int{0},
			Cols: []md.ColSpec{
				{Name: "k", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
				{Name: "v", Type: base.TInt, NDV: rows / 2, Lo: 0, Hi: rows / 2},
			},
		})
		gets[name] = &ops.Get{Alias: name, Rel: rel, Cols: []*md.ColRef{
			f.NewTableColumn(name+".k", base.TInt, rel.Mdid, 0),
			f.NewTableColumn(name+".v", base.TInt, rel.Mdid, 1),
		}}
	}
	acc := md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p)
	m := memo.New(&gpos.MemoryAccountant{})
	return &env{
		ctx: &Context{
			Memo: m, Stats: stats.NewContext(acc), Accessor: acc,
			ColFactory: f, Segments: 4, JoinOrderDPLimit: 10,
		},
		f:    f,
		gets: gets,
	}
}

func (e *env) key(name string, ord int) base.ColID { return e.gets[name].Cols[ord].ID }

// insertNAry inserts NAryJoin(big, mid, small) with a chain of predicates.
func (e *env) insertNAry(t testing.TB) *memo.GroupExpr {
	t.Helper()
	tree := ops.NewExpr(&ops.NAryJoin{Preds: []ops.ScalarExpr{
		ops.Eq(ops.NewIdent(e.key("big", 0), base.TInt), ops.NewIdent(e.key("mid", 0), base.TInt)),
		ops.Eq(ops.NewIdent(e.key("mid", 0), base.TInt), ops.NewIdent(e.key("small", 0), base.TInt)),
	}},
		ops.NewExpr(e.gets["big"]), ops.NewExpr(e.gets["mid"]), ops.NewExpr(e.gets["small"]))
	root, err := e.ctx.Memo.Insert(tree)
	if err != nil {
		t.Fatal(err)
	}
	return e.ctx.Memo.Group(root).Exprs()[0]
}

func TestJoinCommutativity(t *testing.T) {
	e := newEnv(t)
	tree := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin,
			Pred: ops.Eq(ops.NewIdent(e.key("big", 0), base.TInt), ops.NewIdent(e.key("mid", 0), base.TInt))},
		ops.NewExpr(e.gets["big"]), ops.NewExpr(e.gets["mid"]))
	root, _ := e.ctx.Memo.Insert(tree)
	g := e.ctx.Memo.Group(root)
	ge := g.Exprs()[0]
	rule := &JoinCommutativity{}
	if !rule.Matches(ge) {
		t.Fatal("commutativity does not match an inner join")
	}
	if err := rule.Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	if len(g.Exprs()) != 2 {
		t.Fatalf("group exprs = %d, want 2", len(g.Exprs()))
	}
	sw := g.Exprs()[1]
	if sw.Children[0] != ge.Children[1] || sw.Children[1] != ge.Children[0] {
		t.Error("children not swapped")
	}
	// Applying to the swapped expression regenerates the original, which
	// duplicate detection absorbs.
	if err := rule.Apply(e.ctx, sw); err != nil {
		t.Fatal(err)
	}
	if len(g.Exprs()) != 2 {
		t.Errorf("duplicate detection failed: %d exprs", len(g.Exprs()))
	}
}

func TestExpandNAryJoinDPPutsSmallFirst(t *testing.T) {
	e := newEnv(t)
	ge := e.insertNAry(t)
	if err := (&ExpandNAryJoinDP{}).Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	g := ge.Group()
	if len(g.Exprs()) < 2 {
		t.Fatal("DP emitted nothing")
	}
	// The DP tree must not start by joining big with small (disconnected) —
	// and the chain ordering should avoid the big⋈mid-first plan when
	// mid⋈small is far smaller.
	join := g.Exprs()[1]
	if _, ok := join.Op.(*ops.Join); !ok {
		t.Fatalf("expansion produced %T", join.Op)
	}
	// Count the memo growth: new join groups created.
	if e.ctx.Memo.NumGroups() < 4 {
		t.Error("no intermediate join groups created")
	}
}

func TestExpandNAryJoinGreedyAndLeftDeep(t *testing.T) {
	e := newEnv(t)
	ge := e.insertNAry(t)
	before := ge.Group().NumExprs()
	if err := (&ExpandNAryJoinGreedy{}).Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	if err := (&ExpandNAryJoinLeftDeep{}).Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	after := ge.Group().NumExprs()
	if after <= before {
		t.Errorf("expansions added nothing: %d -> %d", before, after)
	}
}

func TestGet2ScanSetsBaseRows(t *testing.T) {
	e := newEnv(t)
	root, _ := e.ctx.Memo.Insert(ops.NewExpr(e.gets["big"]))
	ge := e.ctx.Memo.Group(root).Exprs()[0]
	if err := (&Get2Scan{}).Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	var scan *ops.Scan
	for _, x := range e.ctx.Memo.Group(root).Exprs() {
		if s, ok := x.Op.(*ops.Scan); ok {
			scan = s
		}
	}
	if scan == nil {
		t.Fatal("no scan produced")
	}
	if scan.BaseRows != 100000 {
		t.Errorf("BaseRows = %g, want 100000", scan.BaseRows)
	}
}

func TestSelect2ScanMergesFilter(t *testing.T) {
	e := newEnv(t)
	pred := ops.NewCmp(ops.CmpLt, ops.NewIdent(e.key("big", 1), base.TInt), ops.NewConst(base.NewInt(10)))
	tree := ops.NewExpr(&ops.Select{Pred: pred}, ops.NewExpr(e.gets["big"]))
	root, _ := e.ctx.Memo.Insert(tree)
	ge := e.ctx.Memo.Group(root).Exprs()[0]
	if err := (&Select2Scan{}).Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	var scan *ops.Scan
	for _, x := range e.ctx.Memo.Group(root).Exprs() {
		if s, ok := x.Op.(*ops.Scan); ok {
			scan = s
		}
	}
	if scan == nil || scan.Filter == nil {
		t.Fatal("filtering scan not produced")
	}
}

func TestTwoStageAggRewritesCount(t *testing.T) {
	e := newEnv(t)
	cnt := e.f.NewComputedColumn("cnt", base.TInt)
	agg := &ops.GbAgg{GroupCols: []base.ColID{e.key("big", 0)},
		Aggs: []ops.AggElem{{Col: cnt, Agg: &ops.AggFunc{Name: "count"}}}}
	root, _ := e.ctx.Memo.Insert(ops.NewExpr(agg, ops.NewExpr(e.gets["big"])))
	ge := e.ctx.Memo.Group(root).Exprs()[0]
	rule := &GbAgg2TwoStageAgg{}
	if !rule.Matches(ge) {
		t.Fatal("rule does not match plain count")
	}
	if err := rule.Apply(e.ctx, ge); err != nil {
		t.Fatal(err)
	}
	var global *ops.HashAgg
	for _, x := range e.ctx.Memo.Group(root).Exprs() {
		if a, ok := x.Op.(*ops.HashAgg); ok && a.Mode == ops.AggGlobal {
			global = a
		}
	}
	if global == nil {
		t.Fatal("no global stage")
	}
	if global.Aggs[0].Agg.Name != "sum" {
		t.Errorf("global count combine = %q, want sum of partial counts", global.Aggs[0].Agg.Name)
	}
	// DISTINCT blocks the split.
	d := &ops.GbAgg{GroupCols: agg.GroupCols,
		Aggs: []ops.AggElem{{Col: cnt, Agg: &ops.AggFunc{Name: "count", Distinct: true,
			Arg: ops.NewIdent(e.key("big", 1), base.TInt)}}}}
	root2, _ := e.ctx.Memo.Insert(ops.NewExpr(d, ops.NewExpr(e.gets["big"])))
	if rule.Matches(e.ctx.Memo.Group(root2).Exprs()[0]) {
		t.Error("two-stage split offered for DISTINCT aggregate")
	}
}

func TestPrunePartitions(t *testing.T) {
	p := md.NewMemProvider()
	rel := md.Build(p, md.TableSpec{
		Name: "pt", Rows: 100, Policy: md.DistHash, DistCols: []int{0},
		PartCol: 1,
		Parts: []md.Partition{
			{Name: "p0", Lo: base.NewInt(0), Hi: base.NewInt(10)},
			{Name: "p1", Lo: base.NewInt(10), Hi: base.NewInt(20)},
			{Name: "p2", Lo: base.NewInt(20), Hi: base.NewInt(30)},
		},
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "d", Type: base.TInt, NDV: 30, Lo: 0, Hi: 30},
		},
	})
	f := md.NewColumnFactory()
	cols := []*md.ColRef{
		f.NewTableColumn("id", base.TInt, rel.Mdid, 0),
		f.NewTableColumn("d", base.TInt, rel.Mdid, 1),
	}
	d := func() ops.ScalarExpr { return ops.NewIdent(cols[1].ID, base.TInt) }
	c := func(v int64) ops.ScalarExpr { return ops.NewConst(base.NewInt(v)) }

	cases := []struct {
		name string
		pred ops.ScalarExpr
		want []int
		ok   bool
	}{
		{"eq", ops.Eq(d(), c(15)), []int{1}, true},
		{"lt-boundary", ops.NewCmp(ops.CmpLt, d(), c(10)), []int{0}, true},
		{"le-boundary", ops.NewCmp(ops.CmpLe, d(), c(10)), []int{0, 1}, true},
		{"gt", ops.NewCmp(ops.CmpGt, d(), c(19)), []int{1, 2}, true},
		{"range", ops.And(ops.NewCmp(ops.CmpGe, d(), c(5)), ops.NewCmp(ops.CmpLt, d(), c(15))), []int{0, 1}, true},
		{"in-list", &ops.InList{Arg: d(), Vals: []ops.ScalarExpr{c(5), c(25)}}, []int{0, 2}, true},
		{"empty", ops.Eq(d(), c(99)), nil, true},
		{"other-col", ops.Eq(ops.NewIdent(cols[0].ID, base.TInt), c(1)), nil, false},
		{"reversed", ops.NewCmp(ops.CmpGt, c(10), d()), []int{0}, true}, // 10 > d ⇔ d < 10
	}
	for _, tc := range cases {
		got, pruned := PrunePartitions(rel, cols, tc.pred)
		if pruned != tc.ok {
			t.Errorf("%s: pruned=%v, want %v", tc.name, pruned, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: parts=%v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: parts=%v, want %v", tc.name, got, tc.want)
			}
		}
	}
}

func TestDefaultRulesWellFormed(t *testing.T) {
	rules := DefaultRules()
	names := map[string]bool{}
	expl, impl := 0, 0
	for _, r := range rules {
		if names[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		names[r.Name()] = true
		switch r.Kind() {
		case Exploration:
			expl++
		case Implementation:
			impl++
		}
	}
	if expl < 4 || impl < 10 {
		t.Errorf("rule inventory thin: %d exploration, %d implementation", expl, impl)
	}
}
