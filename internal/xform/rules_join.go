package xform

import (
	"math"
	"sort"

	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/stats"
)

// The rule types, their Name/Kind/Matches/Apply skeletons and DefaultRules
// are generated from defs/rules.opt into rules.gen.go. This file keeps the
// hand-written halves the skeletons delegate to: match<Name> predicates
// (beyond the generated operator type assertion) and apply<Name>
// transformation bodies.

// ---------------------------------------------------------------------------
// JoinCommutativity: InnerJoin(A,B) → InnerJoin(B,A) — the paper's first
// exploration example (§4.1 step 1).

func matchJoinCommutativity(j *ops.Join, _ *memo.GroupExpr) bool {
	return j.Type == ops.InnerJoin
}

func applyJoinCommutativity(ctx *Context, ge *memo.GroupExpr) error {
	j := ge.Op.(*ops.Join)
	_, err := ctx.Insert(
		Op(&ops.Join{Type: ops.InnerJoin, Pred: j.Pred}, Leaf(ge.Children[1]), Leaf(ge.Children[0])),
		ge.Group().ID)
	return err
}

// ---------------------------------------------------------------------------
// JoinAssociativity: (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C), redistributing predicate
// conjuncts to the lowest join where their columns are available. Together
// with commutativity it spans the full join-order space; the n-ary
// expansion rules below cover large joins without exhaustive exploration.

func matchJoinAssociativity(j *ops.Join, _ *memo.GroupExpr) bool {
	return j.Type == ops.InnerJoin
}

func applyJoinAssociativity(ctx *Context, ge *memo.GroupExpr) error {
	top := ge.Op.(*ops.Join)
	leftGroup := ctx.Memo.Group(ge.Children[0])
	cGroup := ge.Children[1]
	cCols := ctx.Memo.Group(cGroup).Logical().OutputCols

	for _, lower := range leftGroup.Exprs() {
		lj, ok := lower.Op.(*ops.Join)
		if !ok || lj.Type != ops.InnerJoin {
			continue
		}
		aGroup, bGroup := lower.Children[0], lower.Children[1]
		bCols := ctx.Memo.Group(bGroup).Logical().OutputCols

		all := append(ops.Conjuncts(top.Pred), ops.Conjuncts(lj.Pred)...)
		inner, outer, ok := splitJoinPreds(all, bCols, cCols)
		if !ok {
			continue
		}
		innerNode := Op(&ops.Join{Type: ops.InnerJoin, Pred: inner}, Leaf(bGroup), Leaf(cGroup))
		if _, err := ctx.Insert(
			Op(&ops.Join{Type: ops.InnerJoin, Pred: outer}, Leaf(aGroup), innerNode),
			ge.Group().ID); err != nil {
			return err
		}
	}
	return nil
}

// canonAnd conjoins predicates in canonical order (by structural hash).
// Rules that rebuild a predicate concatenate conjuncts in a path-dependent
// order, and BoolOp hashing is order-sensitive; without canonicalization the
// two rotation rules regenerate the same conjunct set in ever-new orders and
// the memo never dedups them — a factorial blowup on 6-way joins.
func canonAnd(preds []ops.ScalarExpr) ops.ScalarExpr {
	if len(preds) < 2 {
		return ops.And(preds...)
	}
	sorted := make([]ops.ScalarExpr, len(preds))
	copy(sorted, preds)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Hash() < sorted[j].Hash() })
	return ops.And(sorted...)
}

// splitJoinPreds partitions conjuncts into those fully covered by the
// columns of the two subtrees forming a new join (inner) and the rest
// (outer). ok is false when no inner conjunct references both subtrees —
// the new join would be a manufactured cross product.
func splitJoinPreds(all []ops.ScalarExpr, lCols, rCols base.ColSet) (inner, outer ops.ScalarExpr, ok bool) {
	both := lCols.Union(rCols)
	var innerPreds, outerPreds []ops.ScalarExpr
	joinsBoth := false
	for _, p := range all {
		pc := p.Cols()
		if pc.SubsetOf(both) {
			innerPreds = append(innerPreds, p)
			if pc.Intersects(lCols) && pc.Intersects(rCols) {
				joinsBoth = true
			}
		} else {
			outerPreds = append(outerPreds, p)
		}
	}
	if !joinsBoth {
		return nil, nil, false
	}
	return canonAnd(innerPreds), canonAnd(outerPreds), true
}

// ---------------------------------------------------------------------------
// JoinAssociativityRight: A ⋈ (B ⋈ C) → (A ⋈ B) ⋈ C — the mirror rotation.
// With commutativity alone the left rotation eventually reaches the same
// shapes, but the mirror rule reaches them in one step, which matters when
// exploration is bounded by stage rule subsets.

func matchJoinAssociativityRight(j *ops.Join, _ *memo.GroupExpr) bool {
	return j.Type == ops.InnerJoin
}

func applyJoinAssociativityRight(ctx *Context, ge *memo.GroupExpr) error {
	top := ge.Op.(*ops.Join)
	aGroup := ge.Children[0]
	aCols := ctx.Memo.Group(aGroup).Logical().OutputCols
	rightGroup := ctx.Memo.Group(ge.Children[1])

	for _, lower := range rightGroup.Exprs() {
		rj, ok := lower.Op.(*ops.Join)
		if !ok || rj.Type != ops.InnerJoin {
			continue
		}
		bGroup, cGroup := lower.Children[0], lower.Children[1]
		bCols := ctx.Memo.Group(bGroup).Logical().OutputCols

		all := append(ops.Conjuncts(top.Pred), ops.Conjuncts(rj.Pred)...)
		inner, outer, ok := splitJoinPreds(all, aCols, bCols)
		if !ok {
			continue
		}
		innerNode := Op(&ops.Join{Type: ops.InnerJoin, Pred: inner}, Leaf(aGroup), Leaf(bGroup))
		if _, err := ctx.Insert(
			Op(&ops.Join{Type: ops.InnerJoin, Pred: outer}, innerNode, Leaf(cGroup)),
			ge.Group().ID); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// JoinAssociativityExchange: (A ⋈ B) ⋈ C → (A ⋈ C) ⋈ B, when predicates
// link A with C. The exchange step produces bushy alternatives the two
// rotations only reach via intermediate shapes.

func matchJoinAssociativityExchange(j *ops.Join, _ *memo.GroupExpr) bool {
	return j.Type == ops.InnerJoin
}

func applyJoinAssociativityExchange(ctx *Context, ge *memo.GroupExpr) error {
	top := ge.Op.(*ops.Join)
	leftGroup := ctx.Memo.Group(ge.Children[0])
	cGroup := ge.Children[1]
	cCols := ctx.Memo.Group(cGroup).Logical().OutputCols

	for _, lower := range leftGroup.Exprs() {
		lj, ok := lower.Op.(*ops.Join)
		if !ok || lj.Type != ops.InnerJoin {
			continue
		}
		aGroup, bGroup := lower.Children[0], lower.Children[1]
		aCols := ctx.Memo.Group(aGroup).Logical().OutputCols

		all := append(ops.Conjuncts(top.Pred), ops.Conjuncts(lj.Pred)...)
		inner, outer, ok := splitJoinPreds(all, aCols, cCols)
		if !ok {
			continue
		}
		innerNode := Op(&ops.Join{Type: ops.InnerJoin, Pred: inner}, Leaf(aGroup), Leaf(cGroup))
		if _, err := ctx.Insert(
			Op(&ops.Join{Type: ops.InnerJoin, Pred: outer}, innerNode, Leaf(bGroup)),
			ge.Group().ID); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// PushSelectThroughJoin: σ(A ⋈ B) → σ'(σ_a(A) ⋈ σ_b(B)) — conjuncts whose
// columns one join side covers move below the join, shrinking the
// intermediate result before the join runs.

func matchPushSelectThroughJoin(s *ops.Select, _ *memo.GroupExpr) bool {
	return s.Pred != nil
}

func applyPushSelectThroughJoin(ctx *Context, ge *memo.GroupExpr) error {
	sel := ge.Op.(*ops.Select)
	childGroup := ctx.Memo.Group(ge.Children[0])

	for _, lower := range childGroup.Exprs() {
		j, ok := lower.Op.(*ops.Join)
		if !ok || j.Type != ops.InnerJoin {
			continue
		}
		lGroup, rGroup := lower.Children[0], lower.Children[1]
		lCols := ctx.Memo.Group(lGroup).Logical().OutputCols
		rCols := ctx.Memo.Group(rGroup).Logical().OutputCols

		var leftPreds, rightPreds, residual []ops.ScalarExpr
		for _, p := range ops.Conjuncts(sel.Pred) {
			switch pc := p.Cols(); {
			case pc.SubsetOf(lCols):
				leftPreds = append(leftPreds, p)
			case pc.SubsetOf(rCols):
				rightPreds = append(rightPreds, p)
			default:
				residual = append(residual, p)
			}
		}
		if len(leftPreds) == 0 && len(rightPreds) == 0 {
			continue // nothing moves; re-inserting would just duplicate
		}
		lNode := Leaf(lGroup)
		if len(leftPreds) > 0 {
			lNode = Op(&ops.Select{Pred: canonAnd(leftPreds)}, lNode)
		}
		rNode := Leaf(rGroup)
		if len(rightPreds) > 0 {
			rNode = Op(&ops.Select{Pred: canonAnd(rightPreds)}, rNode)
		}
		result := Op(&ops.Join{Type: ops.InnerJoin, Pred: j.Pred}, lNode, rNode)
		if len(residual) > 0 {
			result = Op(&ops.Select{Pred: canonAnd(residual)}, result)
		}
		if _, err := ctx.Insert(result, ge.Group().ID); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// PushSelectThroughGbAgg: σ(Γ(X)) → σ'(Γ(σ_g(X))) — conjuncts referencing
// only grouping columns filter groups identically before and after
// aggregation, so they move below it and shrink the aggregation input.

func matchPushSelectThroughGbAgg(s *ops.Select, _ *memo.GroupExpr) bool {
	return s.Pred != nil
}

func applyPushSelectThroughGbAgg(ctx *Context, ge *memo.GroupExpr) error {
	sel := ge.Op.(*ops.Select)
	childGroup := ctx.Memo.Group(ge.Children[0])

	for _, lower := range childGroup.Exprs() {
		agg, ok := lower.Op.(*ops.GbAgg)
		if !ok || len(agg.GroupCols) == 0 {
			continue
		}
		var gcols base.ColSet
		for _, c := range agg.GroupCols {
			gcols.Add(c)
		}
		var movable, residual []ops.ScalarExpr
		for _, p := range ops.Conjuncts(sel.Pred) {
			if p.Cols().SubsetOf(gcols) {
				movable = append(movable, p)
			} else {
				residual = append(residual, p)
			}
		}
		if len(movable) == 0 {
			continue // nothing moves; re-inserting would just duplicate
		}
		filtered := Op(&ops.Select{Pred: canonAnd(movable)}, Leaf(lower.Children[0]))
		result := Op(&ops.GbAgg{GroupCols: agg.GroupCols, Aggs: agg.Aggs}, filtered)
		if len(residual) > 0 {
			result = Op(&ops.Select{Pred: canonAnd(residual)}, result)
		}
		if _, err := ctx.Insert(result, ge.Group().ID); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// N-ary join expansion (paper §7.2.2 "Join Ordering": "a number of join
// ordering optimizations based on dynamic programming, left-deep join trees
// and cardinality-based join ordering")

// joinGraph is the shared machinery of the expansion rules.
type joinGraph struct {
	children []memo.GroupID
	cols     []base.ColSet
	rows     []float64
	st       []*stats.Stats
	preds    []ops.ScalarExpr
}

func buildJoinGraph(ctx *Context, ge *memo.GroupExpr) (*joinGraph, error) {
	nj := ge.Op.(*ops.NAryJoin)
	g := &joinGraph{preds: nj.Preds}
	for _, cid := range ge.Children {
		grp := ctx.Memo.Group(cid)
		s, err := ctx.Memo.DeriveStats(cid, ctx.Stats)
		if err != nil {
			return nil, err
		}
		g.children = append(g.children, cid)
		g.cols = append(g.cols, grp.Logical().OutputCols)
		g.rows = append(g.rows, s.Rows)
		g.st = append(g.st, s)
	}
	return g, nil
}

// colsOf returns the output columns of a subset (bitmask over children).
func (g *joinGraph) colsOf(mask uint32) base.ColSet {
	var s base.ColSet
	for i := range g.children {
		if mask&(1<<uint(i)) != 0 {
			s = s.Union(g.cols[i])
		}
	}
	return s
}

// predsBetween returns the predicates fully covered by the union of two
// subsets that reference both sides (true join conditions), plus those
// covered but not crossing (they were applied earlier).
func (g *joinGraph) predsBetween(l, r uint32) (crossing []ops.ScalarExpr) {
	lc, rc := g.colsOf(l), g.colsOf(r)
	both := lc.Union(rc)
	for _, p := range g.preds {
		pc := p.Cols()
		if pc.SubsetOf(both) && pc.Intersects(lc) && pc.Intersects(rc) {
			crossing = append(crossing, p)
		}
	}
	return crossing
}

// connected reports whether some predicate joins the two subsets.
func (g *joinGraph) connected(l, r uint32) bool { return len(g.predsBetween(l, r)) > 0 }

// estimate computes the estimated cardinality of a join tree node.
type joinTree struct {
	mask  uint32
	node  *Node
	rows  float64
	stats *stats.Stats
	cost  float64 // cumulative intermediate-result size, the DP objective
}

func (g *joinGraph) leafTree(i int) *joinTree {
	return &joinTree{
		mask:  1 << uint(i),
		node:  Leaf(g.children[i]),
		rows:  g.rows[i],
		stats: g.st[i],
	}
}

// combine builds the join of two subtrees, assigning the crossing
// predicates to the new join node.
func (g *joinGraph) combine(ctx *Context, l, r *joinTree) *joinTree {
	preds := g.predsBetween(l.mask, r.mask)
	pred := canonAnd(preds)
	st := ctx.Stats.DeriveJoin(ops.InnerJoin, pred, l.stats, r.stats)
	return &joinTree{
		mask:  l.mask | r.mask,
		node:  Op(&ops.Join{Type: ops.InnerJoin, Pred: pred}, l.node, r.node),
		rows:  st.Rows,
		stats: st,
		cost:  l.cost + r.cost + st.Rows,
	}
}

// applyExpandNAryJoinDP enumerates bushy join trees over connected
// subgraphs with dynamic programming (DPsub) and copies the cheapest tree
// into the group.
func applyExpandNAryJoinDP(ctx *Context, ge *memo.GroupExpr) error {
	n := len(ge.Children)
	limit := ctx.JoinOrderDPLimit
	if limit <= 0 {
		limit = 10
	}
	if n < 2 || n > limit {
		return nil
	}
	g, err := buildJoinGraph(ctx, ge)
	if err != nil {
		return err
	}
	full := uint32(1<<uint(n)) - 1
	best := make(map[uint32]*joinTree, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = g.leafTree(i)
	}
	for mask := uint32(1); mask <= full; mask++ {
		if best[mask] != nil || popcount(mask) < 2 {
			continue
		}
		var bestTree *joinTree
		// Enumerate proper subset splits.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask &^ sub
			if sub > other {
				continue // each split once
			}
			l, r := best[sub], best[other]
			if l == nil || r == nil {
				continue
			}
			// Prefer connected splits; allow cross products only if the
			// subset has no connected split at all (handled after loop).
			if !g.connected(sub, other) {
				continue
			}
			t := g.combine(ctx, l, r)
			if bestTree == nil || t.cost < bestTree.cost {
				bestTree = t
			}
		}
		if bestTree == nil {
			// Disconnected subset: fall back to any split (cross product).
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask &^ sub
				if sub > other {
					continue
				}
				l, r := best[sub], best[other]
				if l == nil || r == nil {
					continue
				}
				t := g.combine(ctx, l, r)
				// Penalize cross products heavily so they only survive when
				// unavoidable.
				t.cost += t.rows * 10
				if bestTree == nil || t.cost < bestTree.cost {
					bestTree = t
				}
			}
		}
		if bestTree != nil {
			best[mask] = bestTree
		}
	}
	win := best[full]
	if win == nil {
		return gpos.Raise(gpos.CompOptimizer, "JoinOrderDP", "no join tree for %d-way join", n)
	}
	_, err = ctx.Insert(win.node, ge.Group().ID)
	return err
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// applyExpandNAryJoinGreedy builds a join tree by repeatedly joining the
// pair with the smallest estimated result (cardinality-based ordering); it
// covers joins too large for DP.
func applyExpandNAryJoinGreedy(ctx *Context, ge *memo.GroupExpr) error {
	n := len(ge.Children)
	if n < 2 {
		return nil
	}
	g, err := buildJoinGraph(ctx, ge)
	if err != nil {
		return err
	}
	trees := make([]*joinTree, n)
	for i := 0; i < n; i++ {
		trees[i] = g.leafTree(i)
	}
	// Start from the smallest relation for determinism.
	sort.SliceStable(trees, func(i, j int) bool { return trees[i].rows < trees[j].rows })
	for len(trees) > 1 {
		bi, bj := -1, -1
		bestRows := math.Inf(1)
		connectedFound := false
		for i := 0; i < len(trees); i++ {
			for j := i + 1; j < len(trees); j++ {
				conn := g.connected(trees[i].mask, trees[j].mask)
				if connectedFound && !conn {
					continue
				}
				t := g.combine(ctx, trees[i], trees[j])
				if conn && !connectedFound {
					connectedFound = true
					bi, bj = -1, -1
					bestRows = math.Inf(1)
				}
				if bi == -1 || t.rows < bestRows {
					bestRows = t.rows
					bi, bj = i, j
				}
			}
		}
		merged := g.combine(ctx, trees[bi], trees[bj])
		trees[bi] = merged
		trees = append(trees[:bj], trees[bj+1:]...)
	}
	_, err = ctx.Insert(trees[0].node, ge.Group().ID)
	return err
}

// applyExpandNAryJoinLeftDeep emits the literal left-deep tree in the order
// the query listed the inputs; it guarantees the group always has at least
// one binary expansion even when the cost-based expansions are disabled,
// and is the shape rule-based systems (paper §7.3.2: Impala, Stinger) are
// stuck with.
func applyExpandNAryJoinLeftDeep(ctx *Context, ge *memo.GroupExpr) error {
	n := len(ge.Children)
	if n < 2 {
		return nil
	}
	g, err := buildJoinGraph(ctx, ge)
	if err != nil {
		return err
	}
	acc := g.leafTree(0)
	for i := 1; i < n; i++ {
		acc = g.combine(ctx, acc, g.leafTree(i))
	}
	_, err = ctx.Insert(acc.node, ge.Group().ID)
	return err
}
