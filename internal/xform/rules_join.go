package xform

import (
	"math"
	"sort"

	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/stats"
)

// JoinCommutativity generates InnerJoin(B,A) from InnerJoin(A,B) — the
// paper's first exploration example (§4.1 step 1).
type JoinCommutativity struct{}

// Name implements Rule.
func (*JoinCommutativity) Name() string { return "JoinCommutativity" }

// Kind implements Rule.
func (*JoinCommutativity) Kind() Kind { return Exploration }

// Matches implements Rule.
func (*JoinCommutativity) Matches(ge *memo.GroupExpr) bool {
	j, ok := ge.Op.(*ops.Join)
	return ok && j.Type == ops.InnerJoin
}

// Apply implements Rule.
func (*JoinCommutativity) Apply(ctx *Context, ge *memo.GroupExpr) error {
	j := ge.Op.(*ops.Join)
	_, err := ctx.Insert(
		Op(&ops.Join{Type: ops.InnerJoin, Pred: j.Pred}, Leaf(ge.Children[1]), Leaf(ge.Children[0])),
		ge.Group().ID)
	return err
}

// JoinAssociativity rewrites (A ⋈ B) ⋈ C into A ⋈ (B ⋈ C), redistributing
// predicate conjuncts to the lowest join where their columns are available.
// Together with commutativity it spans the full join-order space; the n-ary
// expansion rules below cover large joins without exhaustive exploration.
type JoinAssociativity struct{}

// Name implements Rule.
func (*JoinAssociativity) Name() string { return "JoinAssociativity" }

// Kind implements Rule.
func (*JoinAssociativity) Kind() Kind { return Exploration }

// Matches implements Rule.
func (*JoinAssociativity) Matches(ge *memo.GroupExpr) bool {
	j, ok := ge.Op.(*ops.Join)
	return ok && j.Type == ops.InnerJoin
}

// Apply implements Rule.
func (r *JoinAssociativity) Apply(ctx *Context, ge *memo.GroupExpr) error {
	top := ge.Op.(*ops.Join)
	leftGroup := ctx.Memo.Group(ge.Children[0])
	cGroup := ge.Children[1]
	cCols := ctx.Memo.Group(cGroup).Logical().OutputCols

	for _, lower := range leftGroup.Exprs() {
		lj, ok := lower.Op.(*ops.Join)
		if !ok || lj.Type != ops.InnerJoin {
			continue
		}
		aGroup, bGroup := lower.Children[0], lower.Children[1]
		aCols := ctx.Memo.Group(aGroup).Logical().OutputCols
		bCols := ctx.Memo.Group(bGroup).Logical().OutputCols

		all := append(ops.Conjuncts(top.Pred), ops.Conjuncts(lj.Pred)...)
		bc := bCols.Union(cCols)
		var innerPreds, outerPreds []ops.ScalarExpr
		for _, p := range all {
			if p.Cols().SubsetOf(bc) {
				innerPreds = append(innerPreds, p)
			} else {
				outerPreds = append(outerPreds, p)
			}
		}
		// Require a genuine join condition for the new inner join to avoid
		// manufacturing cross products.
		joinsBoth := false
		for _, p := range innerPreds {
			if p.Cols().Intersects(bCols) && p.Cols().Intersects(cCols) {
				joinsBoth = true
				break
			}
		}
		if !joinsBoth {
			continue
		}
		inner := Op(&ops.Join{Type: ops.InnerJoin, Pred: ops.And(innerPreds...)}, Leaf(bGroup), Leaf(cGroup))
		if _, err := ctx.Insert(
			Op(&ops.Join{Type: ops.InnerJoin, Pred: ops.And(outerPreds...)}, Leaf(aGroup), inner),
			ge.Group().ID); err != nil {
			return err
		}
		_ = aCols
	}
	return nil
}

// ---------------------------------------------------------------------------
// N-ary join expansion (paper §7.2.2 "Join Ordering": "a number of join
// ordering optimizations based on dynamic programming, left-deep join trees
// and cardinality-based join ordering")

// joinGraph is the shared machinery of the expansion rules.
type joinGraph struct {
	children []memo.GroupID
	cols     []base.ColSet
	rows     []float64
	st       []*stats.Stats
	preds    []ops.ScalarExpr
}

func buildJoinGraph(ctx *Context, ge *memo.GroupExpr) (*joinGraph, error) {
	nj := ge.Op.(*ops.NAryJoin)
	g := &joinGraph{preds: nj.Preds}
	for _, cid := range ge.Children {
		grp := ctx.Memo.Group(cid)
		s, err := ctx.Memo.DeriveStats(cid, ctx.Stats)
		if err != nil {
			return nil, err
		}
		g.children = append(g.children, cid)
		g.cols = append(g.cols, grp.Logical().OutputCols)
		g.rows = append(g.rows, s.Rows)
		g.st = append(g.st, s)
	}
	return g, nil
}

// colsOf returns the output columns of a subset (bitmask over children).
func (g *joinGraph) colsOf(mask uint32) base.ColSet {
	var s base.ColSet
	for i := range g.children {
		if mask&(1<<uint(i)) != 0 {
			s = s.Union(g.cols[i])
		}
	}
	return s
}

// predsBetween returns the predicates fully covered by the union of two
// subsets that reference both sides (true join conditions), plus those
// covered but not crossing (they were applied earlier).
func (g *joinGraph) predsBetween(l, r uint32) (crossing []ops.ScalarExpr) {
	lc, rc := g.colsOf(l), g.colsOf(r)
	both := lc.Union(rc)
	for _, p := range g.preds {
		pc := p.Cols()
		if pc.SubsetOf(both) && pc.Intersects(lc) && pc.Intersects(rc) {
			crossing = append(crossing, p)
		}
	}
	return crossing
}

// connected reports whether some predicate joins the two subsets.
func (g *joinGraph) connected(l, r uint32) bool { return len(g.predsBetween(l, r)) > 0 }

// estimate computes the estimated cardinality of a join tree node.
type joinTree struct {
	mask  uint32
	node  *Node
	rows  float64
	stats *stats.Stats
	cost  float64 // cumulative intermediate-result size, the DP objective
}

func (g *joinGraph) leafTree(i int) *joinTree {
	return &joinTree{
		mask:  1 << uint(i),
		node:  Leaf(g.children[i]),
		rows:  g.rows[i],
		stats: g.st[i],
	}
}

// combine builds the join of two subtrees, assigning the crossing
// predicates to the new join node.
func (g *joinGraph) combine(ctx *Context, l, r *joinTree) *joinTree {
	preds := g.predsBetween(l.mask, r.mask)
	pred := ops.And(preds...)
	st := ctx.Stats.DeriveJoin(ops.InnerJoin, pred, l.stats, r.stats)
	return &joinTree{
		mask:  l.mask | r.mask,
		node:  Op(&ops.Join{Type: ops.InnerJoin, Pred: pred}, l.node, r.node),
		rows:  st.Rows,
		stats: st,
		cost:  l.cost + r.cost + st.Rows,
	}
}

// ExpandNAryJoinDP enumerates bushy join trees over connected subgraphs with
// dynamic programming (DPsub) and copies the cheapest tree into the group.
type ExpandNAryJoinDP struct{}

// Name implements Rule.
func (*ExpandNAryJoinDP) Name() string { return "ExpandNAryJoinDP" }

// Kind implements Rule.
func (*ExpandNAryJoinDP) Kind() Kind { return Exploration }

// Matches implements Rule.
func (*ExpandNAryJoinDP) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.NAryJoin)
	return ok
}

// Apply implements Rule.
func (r *ExpandNAryJoinDP) Apply(ctx *Context, ge *memo.GroupExpr) error {
	n := len(ge.Children)
	limit := ctx.JoinOrderDPLimit
	if limit <= 0 {
		limit = 10
	}
	if n < 2 || n > limit {
		return nil
	}
	g, err := buildJoinGraph(ctx, ge)
	if err != nil {
		return err
	}
	full := uint32(1<<uint(n)) - 1
	best := make(map[uint32]*joinTree, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = g.leafTree(i)
	}
	for mask := uint32(1); mask <= full; mask++ {
		if best[mask] != nil || popcount(mask) < 2 {
			continue
		}
		var bestTree *joinTree
		// Enumerate proper subset splits.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask &^ sub
			if sub > other {
				continue // each split once
			}
			l, r := best[sub], best[other]
			if l == nil || r == nil {
				continue
			}
			// Prefer connected splits; allow cross products only if the
			// subset has no connected split at all (handled after loop).
			if !g.connected(sub, other) {
				continue
			}
			t := g.combine(ctx, l, r)
			if bestTree == nil || t.cost < bestTree.cost {
				bestTree = t
			}
		}
		if bestTree == nil {
			// Disconnected subset: fall back to any split (cross product).
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask &^ sub
				if sub > other {
					continue
				}
				l, r := best[sub], best[other]
				if l == nil || r == nil {
					continue
				}
				t := g.combine(ctx, l, r)
				// Penalize cross products heavily so they only survive when
				// unavoidable.
				t.cost += t.rows * 10
				if bestTree == nil || t.cost < bestTree.cost {
					bestTree = t
				}
			}
		}
		if bestTree != nil {
			best[mask] = bestTree
		}
	}
	win := best[full]
	if win == nil {
		return gpos.Raise(gpos.CompOptimizer, "JoinOrderDP", "no join tree for %d-way join", n)
	}
	_, err = ctx.Insert(win.node, ge.Group().ID)
	return err
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// ExpandNAryJoinGreedy builds a join tree by repeatedly joining the pair
// with the smallest estimated result (cardinality-based ordering); it covers
// joins too large for DP.
type ExpandNAryJoinGreedy struct{}

// Name implements Rule.
func (*ExpandNAryJoinGreedy) Name() string { return "ExpandNAryJoinGreedy" }

// Kind implements Rule.
func (*ExpandNAryJoinGreedy) Kind() Kind { return Exploration }

// Matches implements Rule.
func (*ExpandNAryJoinGreedy) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.NAryJoin)
	return ok
}

// Apply implements Rule.
func (r *ExpandNAryJoinGreedy) Apply(ctx *Context, ge *memo.GroupExpr) error {
	n := len(ge.Children)
	if n < 2 {
		return nil
	}
	g, err := buildJoinGraph(ctx, ge)
	if err != nil {
		return err
	}
	trees := make([]*joinTree, n)
	for i := 0; i < n; i++ {
		trees[i] = g.leafTree(i)
	}
	// Start from the smallest relation for determinism.
	sort.SliceStable(trees, func(i, j int) bool { return trees[i].rows < trees[j].rows })
	for len(trees) > 1 {
		bi, bj := -1, -1
		bestRows := math.Inf(1)
		connectedFound := false
		for i := 0; i < len(trees); i++ {
			for j := i + 1; j < len(trees); j++ {
				conn := g.connected(trees[i].mask, trees[j].mask)
				if connectedFound && !conn {
					continue
				}
				t := g.combine(ctx, trees[i], trees[j])
				if conn && !connectedFound {
					connectedFound = true
					bi, bj = -1, -1
					bestRows = math.Inf(1)
				}
				if bi == -1 || t.rows < bestRows {
					bestRows = t.rows
					bi, bj = i, j
				}
			}
		}
		merged := g.combine(ctx, trees[bi], trees[bj])
		trees[bi] = merged
		trees = append(trees[:bj], trees[bj+1:]...)
	}
	_, err = ctx.Insert(trees[0].node, ge.Group().ID)
	return err
}

// ExpandNAryJoinLeftDeep emits the literal left-deep tree in the order the
// query listed the inputs; it guarantees the group always has at least one
// binary expansion even when the cost-based expansions are disabled, and is
// the shape rule-based systems (paper §7.3.2: Impala, Stinger) are stuck
// with.
type ExpandNAryJoinLeftDeep struct{}

// Name implements Rule.
func (*ExpandNAryJoinLeftDeep) Name() string { return "ExpandNAryJoinLeftDeep" }

// Kind implements Rule.
func (*ExpandNAryJoinLeftDeep) Kind() Kind { return Exploration }

// Matches implements Rule.
func (*ExpandNAryJoinLeftDeep) Matches(ge *memo.GroupExpr) bool {
	_, ok := ge.Op.(*ops.NAryJoin)
	return ok
}

// Apply implements Rule.
func (r *ExpandNAryJoinLeftDeep) Apply(ctx *Context, ge *memo.GroupExpr) error {
	n := len(ge.Children)
	if n < 2 {
		return nil
	}
	g, err := buildJoinGraph(ctx, ge)
	if err != nil {
		return err
	}
	acc := g.leafTree(0)
	for i := 1; i < n; i++ {
		acc = g.combine(ctx, acc, g.leafTree(i))
	}
	_, err = ctx.Insert(acc.node, ge.Group().ID)
	return err
}
