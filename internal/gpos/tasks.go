package gpos

import (
	"sync"
)

// Task is a unit of work executed by a WorkerPool. It mirrors GPOS's CTask:
// a re-entrant procedure plus an error slot inspected after completion.
type Task struct {
	Name string
	Run  func() error

	mu   sync.Mutex
	err  error
	done bool
}

// Err returns the task's error after it completed.
func (t *Task) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Done reports whether the task finished.
func (t *Task) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

func (t *Task) finish(err error) {
	t.mu.Lock()
	t.err = err
	t.done = true
	t.mu.Unlock()
}

// WorkerPool executes tasks on a fixed set of worker goroutines, the GPOS
// analogue of CWorkerPoolManager. The job scheduler in internal/search layers
// dependency tracking on top; the pool itself only runs what it is given.
type WorkerPool struct {
	tasks chan *Task
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewWorkerPool starts a pool with n workers (n < 1 is clamped to 1).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{tasks: make(chan *Task, 256)}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *WorkerPool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		t.finish(p.safeRun(t))
	}
}

func (p *WorkerPool) safeRun(t *Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = Wrap(e, CompSearch, "PanicInTask", "task %q panicked", t.Name)
			} else {
				err = Raise(CompSearch, "PanicInTask", "task %q panicked: %v", t.Name, r)
			}
		}
	}()
	return t.Run()
}

// Submit enqueues a task; it returns false if the pool is closed.
func (p *WorkerPool) Submit(t *Task) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.tasks <- t
	return true
}

// Close stops accepting tasks and waits for in-flight tasks to finish.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
