package gpos

import (
	"fmt"
	"sync"
)

// Task is a unit of work executed by a WorkerPool. It mirrors GPOS's CTask:
// a re-entrant procedure plus an error slot inspected after completion.
type Task struct {
	Name string
	Run  func() error

	mu   sync.Mutex
	err  error
	done bool
}

// Err returns the task's error after it completed.
func (t *Task) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Done reports whether the task finished.
func (t *Task) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

func (t *Task) finish(err error) {
	t.mu.Lock()
	t.err = err
	t.done = true
	t.mu.Unlock()
}

// WorkerPool executes tasks on a fixed set of worker goroutines, the GPOS
// analogue of CWorkerPoolManager. The job scheduler in internal/search layers
// dependency tracking on top; the pool itself only runs what it is given.
type WorkerPool struct {
	tasks chan *Task
	wg    sync.WaitGroup

	mu         sync.Mutex
	closed     bool
	submitters sync.WaitGroup // in-flight Submit sends; Close waits before closing tasks
}

// NewWorkerPool starts a pool with n workers (n < 1 is clamped to 1).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{tasks: make(chan *Task, 256)}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *WorkerPool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.runTask(t)
	}
}

// runTask executes one task with crash containment. A panic is converted
// into an Exception that preserves the original panic site's stack (see
// PanicException) and the worker survives. runtime.Goexit cannot be caught
// by recover — recover returns nil while the goroutine keeps unwinding — so
// it is detected with a completion flag: the task is still finished (its
// waiters are not stranded) and a replacement worker is started before the
// dying goroutine releases its slot, keeping the pool at full capacity.
func (p *WorkerPool) runTask(t *Task) {
	finished := false
	defer func() {
		if r := recover(); r != nil {
			ex := PanicException(CompSearch, r)
			ex.Msg = fmt.Sprintf("task %q panicked: %v", t.Name, r)
			t.finish(ex)
			return
		}
		if !finished {
			// Goexit in flight: this deferred call is running during the
			// goroutine's final unwind. The wg.Add must precede the worker
			// defer's wg.Done, which holds because that defer runs after
			// this one.
			t.finish(Raise(CompSearch, "GoexitInTask", "task %q called runtime.Goexit", t.Name))
			p.wg.Add(1)
			go p.worker()
		}
	}()
	err := t.Run()
	finished = true
	t.finish(err)
}

// Submit enqueues a task; it returns false if the pool is closed. The mutex
// only guards the closed check and the submitter registration: holding it
// across the channel send would park every Submit (and Close) behind a full
// queue. The submitters WaitGroup keeps the send safe instead — Close waits
// for registered senders to drain before closing the channel.
func (p *WorkerPool) Submit(t *Task) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.submitters.Add(1)
	p.mu.Unlock()
	p.tasks <- t
	p.submitters.Done()
	return true
}

// Close stops accepting tasks and waits for in-flight tasks to finish.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	// New Submits now fail the closed check; wait out the ones that already
	// registered, then close the channel they were sending on.
	p.submitters.Wait()
	close(p.tasks)
	p.wg.Wait()
}
