package gpos

import "sync/atomic"

// MemoryAccountant tracks bytes logically allocated by an optimization
// session. Orca's GPOS memory manager enforced per-session pools; Go's GC
// owns real memory, so the accountant's job here is observability: the
// optimizer charges it for Memo groups, group expressions, statistics objects
// and metadata cache entries, and the experiment harness reads the high-water
// mark to reproduce the paper's memory-footprint measurement (§7.2.2).
//
// All methods are safe for concurrent use; the job scheduler charges from
// many workers at once.
type MemoryAccountant struct {
	current  atomic.Int64
	peak     atomic.Int64
	allocs   atomic.Int64
	released atomic.Int64
}

// Charge records n logically allocated bytes.
func (m *MemoryAccountant) Charge(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.allocs.Add(1)
	cur := m.current.Add(n)
	for {
		p := m.peak.Load()
		if cur <= p || m.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// Release returns n bytes to the accountant. Over-release — n exceeding the
// currently charged total, as on a double-release bug — clamps current at
// zero instead of going negative, so budget checks (Exhausted) and footprint
// reports stay meaningful.
func (m *MemoryAccountant) Release(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.released.Add(1)
	for {
		cur := m.current.Load()
		next := cur - n
		if next < 0 {
			next = 0
		}
		if m.current.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Exhausted reports whether the charged bytes meet or exceed the budget.
// A budget of 0 (or negative) means unlimited and never exhausts; a nil
// accountant never exhausts.
func (m *MemoryAccountant) Exhausted(budget int64) bool {
	if m == nil || budget <= 0 {
		return false
	}
	return m.current.Load() >= budget
}

// Current returns the currently charged bytes.
func (m *MemoryAccountant) Current() int64 {
	if m == nil {
		return 0
	}
	return m.current.Load()
}

// Peak returns the high-water mark in bytes.
func (m *MemoryAccountant) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak.Load()
}

// Allocs returns the number of Charge calls.
func (m *MemoryAccountant) Allocs() int64 {
	if m == nil {
		return 0
	}
	return m.allocs.Load()
}

// Reset zeroes the accountant between optimization sessions.
func (m *MemoryAccountant) Reset() {
	m.current.Store(0)
	m.peak.Store(0)
	m.allocs.Store(0)
	m.released.Store(0)
}
