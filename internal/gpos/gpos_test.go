package gpos

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestRaiseCapturesStack(t *testing.T) {
	ex := Raise(CompMemo, "TestCode", "bad group %d", 7)
	if ex.Comp != CompMemo || ex.Code != "TestCode" {
		t.Errorf("component/code lost: %+v", ex)
	}
	if !strings.Contains(ex.Error(), "bad group 7") {
		t.Errorf("message lost: %s", ex.Error())
	}
	if len(ex.Stack) == 0 || !strings.Contains(ex.StackTrace(), "TestRaiseCapturesStack") {
		t.Errorf("stack missing caller:\n%s", ex.StackTrace())
	}
}

func TestWrapAndUnwrap(t *testing.T) {
	cause := errors.New("io failure")
	ex := Wrap(cause, CompMD, "FetchFailed", "fetching relation")
	if !errors.Is(ex, cause) {
		t.Error("errors.Is does not find the cause")
	}
	if AsException(ex) != ex {
		t.Error("AsException failed on direct exception")
	}
	wrapped := errorsJoin(ex)
	if AsException(wrapped) == nil {
		t.Error("AsException failed through a wrapper")
	}
	if AsException(errors.New("plain")) != nil {
		t.Error("AsException invented an exception")
	}
}

type joinErr struct{ inner error }

func (e joinErr) Error() string { return "wrapped: " + e.inner.Error() }
func (e joinErr) Unwrap() error { return e.inner }

func errorsJoin(inner error) error { return joinErr{inner} }

func TestMemoryAccountantPeak(t *testing.T) {
	var m MemoryAccountant
	m.Charge(100)
	m.Charge(200)
	m.Release(150)
	m.Charge(50)
	if m.Current() != 200 {
		t.Errorf("Current = %d, want 200", m.Current())
	}
	if m.Peak() != 300 {
		t.Errorf("Peak = %d, want 300", m.Peak())
	}
	if m.Allocs() != 3 {
		t.Errorf("Allocs = %d, want 3", m.Allocs())
	}
	m.Reset()
	if m.Current() != 0 || m.Peak() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMemoryAccountantConcurrent(t *testing.T) {
	var m MemoryAccountant
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Charge(3)
				m.Release(3)
			}
		}()
	}
	wg.Wait()
	if m.Current() != 0 {
		t.Errorf("Current = %d after balanced charge/release", m.Current())
	}
	if m.Peak() < 3 {
		t.Errorf("Peak = %d, want >= 3", m.Peak())
	}
}

func TestNilAccountantIsSafe(t *testing.T) {
	var m *MemoryAccountant
	m.Charge(10)
	m.Release(10)
	if m.Current() != 0 || m.Peak() != 0 || m.Allocs() != 0 {
		t.Error("nil accountant must be inert")
	}
}

func TestWorkerPoolRunsTasks(t *testing.T) {
	p := NewWorkerPool(4)
	var mu sync.Mutex
	ran := 0
	var tasks []*Task
	for i := 0; i < 32; i++ {
		task := &Task{Name: "t", Run: func() error {
			mu.Lock()
			ran++
			mu.Unlock()
			return nil
		}}
		tasks = append(tasks, task)
		if !p.Submit(task) {
			t.Fatal("submit rejected")
		}
	}
	p.Close()
	if ran != 32 {
		t.Errorf("ran %d tasks, want 32", ran)
	}
	for _, task := range tasks {
		if !task.Done() || task.Err() != nil {
			t.Errorf("task state: done=%v err=%v", task.Done(), task.Err())
		}
	}
	if p.Submit(&Task{Run: func() error { return nil }}) {
		t.Error("submit accepted after Close")
	}
}

func TestWorkerPoolRecoversPanics(t *testing.T) {
	p := NewWorkerPool(1)
	task := &Task{Name: "boom", Run: func() error { panic("kaput") }}
	p.Submit(task)
	p.Close()
	err := task.Err()
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("panic not converted to error: %v", err)
	}
	if AsException(err) == nil {
		t.Error("panic error is not a gpos exception")
	}
}
