package gpos

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// panicDeepInside is a recognizable frame: the tests assert it appears in
// the converted exception's stack, proving the original panic site survived
// the recover.
func panicDeepInside() {
	panic("deliberate test panic")
}

func TestPanicExceptionPreservesPanicSite(t *testing.T) {
	var ex *Exception
	func() {
		defer func() {
			if r := recover(); r != nil {
				ex = PanicException(CompSearch, r)
			}
		}()
		panicDeepInside()
	}()
	if ex == nil {
		t.Fatal("no exception captured")
	}
	if ex.Code != CodePanic {
		t.Errorf("code %q, want %q", ex.Code, CodePanic)
	}
	st := ex.StackTrace()
	if !strings.Contains(st, "panicDeepInside") {
		t.Errorf("stack lost the panic site:\n%s", st)
	}
	if strings.Contains(st, "gopanic") || strings.Contains(st, "gpos.PanicException") {
		t.Errorf("stack still shows recovery machinery:\n%s", st)
	}
	// The panic site must be the first frame, not buried below the handler.
	if first := ex.Stack[0]; !strings.Contains(first, "panicDeepInside") {
		t.Errorf("first frame %q is not the panic site", first)
	}
}

func TestPanicExceptionErrorCause(t *testing.T) {
	cause := errors.New("root cause")
	var ex *Exception
	func() {
		defer func() {
			ex = PanicException(CompMemo, recover())
		}()
		panic(cause)
	}()
	if !errors.Is(ex, cause) {
		t.Error("error-valued panic not kept as cause")
	}
	if ex.Comp != CompMemo {
		t.Errorf("component %q, want %q", ex.Comp, CompMemo)
	}
}

func TestPanicExceptionOutsideHandler(t *testing.T) {
	// Degenerate use outside a panic handler must still capture something.
	ex := PanicException(CompOptimizer, "not really panicking")
	if len(ex.Stack) == 0 {
		t.Error("no stack captured outside a handler")
	}
	if !strings.Contains(ex.StackTrace(), "TestPanicExceptionOutsideHandler") {
		t.Errorf("stack missing caller:\n%s", ex.StackTrace())
	}
}

func TestWorkerPoolPanicKeepsOriginalStack(t *testing.T) {
	p := NewWorkerPool(1)
	task := &Task{Name: "boom", Run: func() error {
		panicDeepInside()
		return nil
	}}
	p.Submit(task)
	p.Close()
	ex := AsException(task.Err())
	if ex == nil {
		t.Fatalf("panic not converted: %v", task.Err())
	}
	if ex.Code != CodePanic {
		t.Errorf("code %q, want %q", ex.Code, CodePanic)
	}
	if !strings.Contains(ex.StackTrace(), "panicDeepInside") {
		t.Errorf("worker recovery lost the panic site:\n%s", ex.StackTrace())
	}
}

func TestWorkerPoolSurvivesGoexit(t *testing.T) {
	p := NewWorkerPool(1)
	bad := &Task{Name: "goexit", Run: func() error {
		runtime.Goexit()
		return nil
	}}
	if !p.Submit(bad) {
		t.Fatal("submit rejected")
	}

	// With one worker, this only runs if the pool replaced the goroutine
	// that Goexit killed.
	ran := make(chan struct{})
	after := &Task{Name: "after", Run: func() error {
		close(ran)
		return nil
	}}
	if !p.Submit(after) {
		t.Fatal("submit rejected")
	}
	p.Close()

	select {
	case <-ran:
	default:
		t.Fatal("pool lost its worker to Goexit; follow-up task never ran")
	}
	if !bad.Done() {
		t.Fatal("Goexit task never finished — waiters would hang")
	}
	ex := AsException(bad.Err())
	if ex == nil || ex.Code != "GoexitInTask" {
		t.Errorf("Goexit not surfaced as exception: %v", bad.Err())
	}
	if after.Err() != nil {
		t.Errorf("follow-up task failed: %v", after.Err())
	}
}

func TestMemoryAccountantReleaseClamps(t *testing.T) {
	var m MemoryAccountant
	m.Charge(100)
	m.Release(100)
	m.Release(100) // double release
	if got := m.Current(); got != 0 {
		t.Errorf("Current = %d after double release, want 0 (clamped)", got)
	}
	m.Charge(50)
	if got := m.Current(); got != 50 {
		t.Errorf("Current = %d after recharge, want 50", got)
	}
	if m.Peak() != 100 {
		t.Errorf("Peak = %d, want 100", m.Peak())
	}
}

func TestMemoryAccountantExhausted(t *testing.T) {
	var m MemoryAccountant
	if m.Exhausted(10) {
		t.Error("empty accountant exhausted")
	}
	m.Charge(10)
	if !m.Exhausted(10) {
		t.Error("at-budget accountant not exhausted")
	}
	if m.Exhausted(11) {
		t.Error("under-budget accountant exhausted")
	}
	if m.Exhausted(0) {
		t.Error("zero budget (unlimited) exhausted")
	}
	var nilAcct *MemoryAccountant
	if nilAcct.Exhausted(1) {
		t.Error("nil accountant exhausted")
	}
}

func TestMemoryAccountantHighWaterConcurrent(t *testing.T) {
	var m MemoryAccountant
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Charge(7)
				if i%3 == 0 {
					m.Release(14) // deliberate over-release pressure
				} else {
					m.Release(7)
				}
			}
		}()
	}
	wg.Wait()
	if cur := m.Current(); cur < 0 {
		t.Errorf("Current went negative under concurrency: %d", cur)
	}
	// The peak is at most all workers holding one charge at once, and at
	// least a single charge.
	if p := m.Peak(); p < 7 || p > 7*workers {
		t.Errorf("Peak = %d outside plausible [7, %d]", p, 7*workers)
	}
	if m.Exhausted(7 * workers * per) {
		t.Error("Exhausted against an absurd budget")
	}
}
