// Package gpos is the reproduction of Orca's OS-abstraction layer. In the
// paper, GPOS supplies the optimizer with a memory manager, concurrency
// primitives, exception handling with stack traces, and file I/O so that the
// optimizer itself stays portable. In Go most of that is the runtime's job;
// this package keeps the pieces the rest of the system genuinely depends on:
//
//   - structured exceptions carrying component, code and a captured stack
//     trace (consumed by AMPERe dumps, cf. paper Listing 2),
//   - a memory accountant used to report the optimizer's footprint
//     (paper §7.2.2 reports ~200 MB average),
//   - a small task/worker abstraction used by the job scheduler.
package gpos

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
)

// Component identifies the subsystem that raised an exception.
type Component string

// Components mirroring the paper's architecture diagram (Figure 3).
const (
	CompOptimizer Component = "optimizer"
	CompMemo      Component = "memo"
	CompSearch    Component = "search"
	CompStats     Component = "stats"
	CompCost      Component = "cost"
	CompMD        Component = "metadata"
	CompDXL       Component = "dxl"
	CompEngine    Component = "engine"
	CompSQL       Component = "sql"
	CompServe     Component = "serve"
)

// Exception is a structured error with a captured stack trace, the GPOS
// analogue of CException. AMPERe embeds the trace in its dumps.
type Exception struct {
	Comp  Component
	Code  string
	Msg   string
	Stack []string
	Cause error
}

// Raise creates an Exception capturing the current goroutine's stack.
func Raise(comp Component, code, format string, args ...any) *Exception {
	return &Exception{
		Comp:  comp,
		Code:  code,
		Msg:   fmt.Sprintf(format, args...),
		Stack: captureStack(2),
	}
}

// Wrap attaches a cause to a raised exception.
func Wrap(cause error, comp Component, code, format string, args ...any) *Exception {
	ex := Raise(comp, code, format, args...)
	ex.Cause = cause
	return ex
}

// Error implements the error interface.
func (e *Exception) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%s/%s: %s: %v", e.Comp, e.Code, e.Msg, e.Cause)
	}
	return fmt.Sprintf("%s/%s: %s", e.Comp, e.Code, e.Msg)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Exception) Unwrap() error { return e.Cause }

// StackTrace renders the captured stack, one frame per line, in the format
// AMPERe serializes (cf. paper Listing 2).
func (e *Exception) StackTrace() string { return strings.Join(e.Stack, "\n") }

// AsException extracts an *Exception from an error chain, or nil.
func AsException(err error) *Exception {
	var ex *Exception
	if errors.As(err, &ex) {
		return ex
	}
	return nil
}

// CodePanic is the exception code of recovered panics converted by
// PanicException. Consumers (the degradation ladder, AMPERe) use it to tell
// a contained crash from an ordinary raised error.
const CodePanic = "Panic"

// PanicException converts a recovered panic value into an Exception. It must
// be called from inside the deferred recover handler: at that point the
// goroutine's stack still holds the frames of the original panic site below
// the runtime's panic machinery, and PanicException captures those — the
// exception's stack names where the panic happened, not where it was
// recovered. If the panic value is itself an error it becomes the cause.
func PanicException(comp Component, v any) *Exception {
	ex := &Exception{
		Comp:  comp,
		Code:  CodePanic,
		Msg:   fmt.Sprintf("panic: %v", v),
		Stack: capturePanicStack(),
	}
	if e, ok := v.(error); ok {
		ex.Cause = e
	}
	return ex
}

// capturePanicStack captures the current stack trimmed to start at the
// original panic site: every frame at or above the innermost
// runtime.gopanic belongs to the recovery machinery (the deferred handler,
// PanicException itself) and is dropped. Outside a panic handler there is no
// gopanic frame and the untrimmed stack is returned.
func capturePanicStack() []string {
	pcs := make([]uintptr, 64)
	n := runtime.Callers(2, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	var all []runtime.Frame
	for {
		f, more := frames.Next()
		all = append(all, f)
		if !more {
			break
		}
	}
	start := 0
	for i, f := range all {
		if f.Function == "runtime.gopanic" {
			start = i + 1
			break
		}
	}
	if start >= len(all) {
		start = 0
	}
	out := make([]string, 0, 16)
	for i, f := range all[start:] {
		out = append(out, fmt.Sprintf("%d %s (%s:%d)", i+1, f.Function, trimPath(f.File), f.Line))
		if len(out) >= 16 {
			break
		}
	}
	return out
}

func captureStack(skip int) []string {
	pcs := make([]uintptr, 32)
	n := runtime.Callers(skip+1, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	var out []string
	for i := 1; ; i++ {
		f, more := frames.Next()
		out = append(out, fmt.Sprintf("%d %s (%s:%d)", i, f.Function, trimPath(f.File), f.Line))
		if !more || len(out) >= 16 {
			break
		}
	}
	return out
}

func trimPath(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
