package tpcds

import (
	"sort"
	"strings"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/engine"
	"orca/internal/planner"
)

func newLegacy(segments int, q *core.Query) *planner.Planner {
	return planner.New(segments, q.Accessor, q.Factory)
}

// projectRows renders the result narrowed to the query's output columns as a
// sorted string multiset, for optimizer-vs-optimizer comparison.
func projectRows(res *engine.Result, outCols []base.ColID) []string {
	pos := make([]int, len(outCols))
	idx := map[base.ColID]int{}
	for i, c := range res.Schema {
		idx[c] = i
	}
	for i, c := range outCols {
		pos[i] = idx[c]
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(pos))
		for j, p := range pos {
			parts[j] = r[p].String()
		}
		out[i] = strings.Join(parts, ",")
	}
	sort.Strings(out)
	return out
}
