// Package tpcds provides the TPC-DS-derived benchmark substrate of the
// paper's evaluation (§7.1): a star schema with the four sales channels'
// fact tables and the shared dimensions, a scale-factor-parameterized
// synthetic statistics catalog (data is generated from the statistics by
// internal/datagen), the full 99-template catalog with per-template SQL
// feature tags (driving the Figure 15 support-count experiment), and an
// executable SQL workload reproducing the performance experiments
// (Figures 12-14).
//
// All keys are integers on aligned value grids so equality joins produce
// realistic match rates; fact tables are hash-distributed on their item key
// and range-partitioned by date key, the layout the partition-elimination
// feature targets.
package tpcds

import (
	"orca/internal/base"
	"orca/internal/md"
)

// Scale determines table sizes. Scale 1 ≈ 25k fact rows total — laptop-sized
// stand-in for the paper's 10 TB / 256 GB datasets; the relative table
// proportions follow TPC-DS.
type Scale struct {
	Factor int
}

// rows computes a scaled row count.
func (s Scale) rows(base int, scaled bool) float64 {
	if !scaled || s.Factor <= 1 {
		return float64(base)
	}
	return float64(base * s.Factor)
}

// Dimension cardinalities (unscaled) and fact base sizes (scaled).
const (
	nDates      = 1826 // 5 years
	nItems      = 300
	nCustomers  = 1000
	nAddresses  = 500
	nDemos      = 200
	nStores     = 12
	nWarehouses = 6
	nPromos     = 30
	nWebSites   = 6
	nCallCtrs   = 4
	nHousehold  = 60

	baseStoreSales   = 12000
	baseStoreReturns = 1200
	baseCatalogSales = 7000
	baseWebSales     = 4500
	baseWebReturns   = 450
	baseInventory    = 6000
)

// datePartitions builds yearly range partitions over the date surrogate key.
func datePartitions() []md.Partition {
	perYear := nDates / 5
	parts := make([]md.Partition, 0, 5)
	for y := 0; y < 5; y++ {
		lo, hi := y*perYear, (y+1)*perYear
		if y == 4 {
			hi = nDates + 1
		}
		parts = append(parts, md.Partition{
			Name: "y" + string(rune('0'+y)),
			Lo:   base.NewInt(int64(lo)),
			Hi:   base.NewInt(int64(hi)),
		})
	}
	return parts
}

// BuildCatalog registers the whole schema (with synthetic statistics) in a
// provider and returns it.
func BuildCatalog(p *md.MemProvider, s Scale) {
	ik := func(name string, ndv float64, lo, hi float64) md.ColSpec {
		return md.ColSpec{Name: name, Type: base.TInt, NDV: ndv, Lo: lo, Hi: hi}
	}
	key := func(name string, n float64) md.ColSpec { return ik(name, n, 0, n) }

	// --- Dimensions -------------------------------------------------------

	md.Build(p, md.TableSpec{
		Name: "date_dim", Rows: nDates,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			key("d_date_sk", nDates),
			ik("d_year", 5, 2019, 2024),
			ik("d_moy", 12, 1, 13),
			ik("d_qoy", 4, 1, 5),
			ik("d_dow", 7, 0, 7),
		},
		IndexCols: []int{0},
	})
	md.Build(p, md.TableSpec{
		Name: "item", Rows: nItems,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			key("i_item_sk", nItems),
			ik("i_category_id", 10, 0, 10),
			ik("i_brand_id", 50, 0, 50),
			ik("i_class_id", 20, 0, 20),
			ik("i_current_price", 100, 1, 101),
			ik("i_manager_id", 40, 0, 40),
		},
		IndexCols: []int{4},
	})
	md.Build(p, md.TableSpec{
		Name: "customer", Rows: nCustomers,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			key("c_customer_sk", nCustomers),
			ik("c_current_addr_sk", nAddresses, 0, nAddresses),
			ik("c_current_cdemo_sk", nDemos, 0, nDemos),
			ik("c_birth_year", 60, 1930, 1990),
			ik("c_preferred_flag", 2, 0, 2),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "customer_address", Rows: nAddresses,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			key("ca_address_sk", nAddresses),
			ik("ca_state_id", 50, 0, 50),
			ik("ca_gmt_offset", 6, -8, -2),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "customer_demographics", Rows: nDemos,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			key("cd_demo_sk", nDemos),
			ik("cd_gender_id", 2, 0, 2),
			ik("cd_education_id", 7, 0, 7),
			ik("cd_purchase_estimate", 20, 500, 10500),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "household_demographics", Rows: nHousehold,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			key("hd_demo_sk", nHousehold),
			ik("hd_dep_count", 10, 0, 10),
			ik("hd_vehicle_count", 5, 0, 5),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "store", Rows: nStores,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			key("s_store_sk", nStores),
			ik("s_state_id", 6, 0, 6),
			ik("s_number_employees", 10, 200, 300),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "warehouse", Rows: nWarehouses,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			key("w_warehouse_sk", nWarehouses),
			ik("w_state_id", 4, 0, 4),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "promotion", Rows: nPromos,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			key("p_promo_sk", nPromos),
			ik("p_channel_id", 3, 0, 3),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "web_site", Rows: nWebSites,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			key("web_site_sk", nWebSites),
			ik("web_state_id", 4, 0, 4),
		},
	})
	md.Build(p, md.TableSpec{
		Name: "call_center", Rows: nCallCtrs,
		Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			key("cc_call_center_sk", nCallCtrs),
			ik("cc_state_id", 3, 0, 3),
		},
	})

	// --- Facts ------------------------------------------------------------

	factCols := func(prefix string) []md.ColSpec {
		return []md.ColSpec{
			ik(prefix+"_item_sk", nItems, 0, nItems),
			ik(prefix+"_customer_sk", nCustomers, 0, nCustomers),
			ik(prefix+"_sold_date_sk", nDates, 0, nDates),
			ik(prefix+"_quantity", 100, 1, 101),
			ik(prefix+"_sales_price", 200, 1, 201),
			ik(prefix+"_net_profit", 400, -100, 300),
		}
	}
	md.Build(p, md.TableSpec{
		Name: "store_sales", Rows: s.rows(baseStoreSales, true),
		Policy: md.DistHash, DistCols: []int{0},
		Cols: append(factCols("ss"),
			ik("ss_store_sk", nStores, 0, nStores),
			ik("ss_promo_sk", nPromos, 0, nPromos),
			md.ColSpec{Name: "ss_ticket_number", Type: base.TInt,
				NDV: s.rows(baseStoreSales, true) / 2, Lo: 0, Hi: s.rows(baseStoreSales, true) / 2},
		),
		PartCol: 2, Parts: datePartitions(),
	})
	md.Build(p, md.TableSpec{
		Name: "store_returns", Rows: s.rows(baseStoreReturns, true),
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			ik("sr_item_sk", nItems, 0, nItems),
			ik("sr_customer_sk", nCustomers, 0, nCustomers),
			ik("sr_returned_date_sk", nDates, 0, nDates),
			ik("sr_return_amt", 300, 1, 301),
			ik("sr_store_sk", nStores, 0, nStores),
			md.ColSpec{Name: "sr_ticket_number", Type: base.TInt,
				NDV: s.rows(baseStoreSales, true) / 2, Lo: 0, Hi: s.rows(baseStoreSales, true) / 2},
		},
		PartCol: 2, Parts: datePartitions(),
	})
	md.Build(p, md.TableSpec{
		Name: "catalog_sales", Rows: s.rows(baseCatalogSales, true),
		Policy: md.DistHash, DistCols: []int{0},
		Cols: append(factCols("cs"),
			ik("cs_call_center_sk", nCallCtrs, 0, nCallCtrs),
			ik("cs_promo_sk", nPromos, 0, nPromos),
		),
		PartCol: 2, Parts: datePartitions(),
	})
	md.Build(p, md.TableSpec{
		Name: "web_sales", Rows: s.rows(baseWebSales, true),
		Policy: md.DistHash, DistCols: []int{0},
		Cols: append(factCols("ws"),
			ik("ws_web_site_sk", nWebSites, 0, nWebSites),
			ik("ws_promo_sk", nPromos, 0, nPromos),
		),
		PartCol: 2, Parts: datePartitions(),
	})
	md.Build(p, md.TableSpec{
		Name: "web_returns", Rows: s.rows(baseWebReturns, true),
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			ik("wr_item_sk", nItems, 0, nItems),
			ik("wr_customer_sk", nCustomers, 0, nCustomers),
			ik("wr_returned_date_sk", nDates, 0, nDates),
			ik("wr_return_amt", 300, 1, 301),
			ik("wr_web_site_sk", nWebSites, 0, nWebSites),
		},
		PartCol: 2, Parts: datePartitions(),
	})
	md.Build(p, md.TableSpec{
		Name: "inventory", Rows: s.rows(baseInventory, true),
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			ik("inv_item_sk", nItems, 0, nItems),
			ik("inv_warehouse_sk", nWarehouses, 0, nWarehouses),
			ik("inv_date_sk", nDates, 0, nDates),
			ik("inv_quantity_on_hand", 500, 0, 500),
		},
		PartCol: 2, Parts: datePartitions(),
	})
}
