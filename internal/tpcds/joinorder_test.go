package tpcds

import (
	"testing"

	"orca/internal/core"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

// joinOrderFamily is the generated join-reordering rule family from
// defs/rules.opt: the two rotations, the bushy exchange, commutativity, and
// select pushdown through joins.
var joinOrderFamily = []string{
	"JoinCommutativity", "JoinAssociativity", "JoinAssociativityRight",
	"JoinAssociativityExchange", "PushSelectThroughJoin", "PushSelectThroughGbAgg",
}

// TestJoinOrderEnumerationTPCDS optimizes 3- and 5-relation TPC-DS star
// joins twice — once unrestricted, once with the join-reordering family
// disabled — and checks the family actually enumerates alternative join
// orders: the memo holds strictly more group expressions and the chosen
// plan is never costlier. Catalog metadata is enough; no data is loaded.
func TestJoinOrderEnumerationTPCDS(t *testing.T) {
	p := md.NewMemProvider()
	BuildCatalog(p, Scale{Factor: 1})
	cache := md.NewCache(&gpos.MemoryAccountant{})

	optimize := func(t *testing.T, sqlText string, disabled []string) *core.Result {
		t.Helper()
		q, err := sql.Bind(sqlText, md.NewAccessor(cache, p), md.NewColumnFactory())
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		cfg := core.DefaultConfig(4)
		cfg.DisabledRules = disabled
		res, err := core.Optimize(q, cfg)
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		if res.Plan == nil {
			t.Fatal("no plan")
		}
		return res
	}

	byName := map[string]Query{}
	for _, wq := range Workload() {
		byName[wq.Name] = wq
	}
	// q3 joins 3 relations (date_dim, store_sales, item); q7 and q19 join 5.
	for _, name := range []string{"q3", "q7", "q19"} {
		wq, ok := byName[name]
		if !ok {
			t.Fatalf("workload query %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			full := optimize(t, wq.SQL, nil)
			restricted := optimize(t, wq.SQL, joinOrderFamily)
			t.Logf("full: cost=%.0f groups=%d exprs=%d rules=%d; restricted: cost=%.0f groups=%d exprs=%d rules=%d",
				full.Cost, full.Groups, full.GroupExprs, full.RulesFired,
				restricted.Cost, restricted.Groups, restricted.GroupExprs, restricted.RulesFired)
			if full.GroupExprs <= restricted.GroupExprs {
				t.Errorf("join-order family enumerated no alternatives: %d exprs with, %d without",
					full.GroupExprs, restricted.GroupExprs)
			}
			if full.RulesFired <= restricted.RulesFired {
				t.Errorf("join-order family fired no rules: %d with, %d without",
					full.RulesFired, restricted.RulesFired)
			}
			if full.Cost > restricted.Cost {
				t.Errorf("plan with join reordering costs %.2f, worse than %.2f without",
					full.Cost, restricted.Cost)
			}
		})
	}
}
