package tpcds

// Feature flags tag each TPC-DS template with the SQL surface it exercises.
// The rival-system capability matrices (internal/rival) intersect with these
// tags to reproduce the Figure 15 support counts.
type Feature uint32

// SQL features appearing in TPC-DS templates.
const (
	FWindow Feature = 1 << iota
	FCTE
	FCorrelated // correlated subquery
	FScalarSub  // uncorrelated scalar subquery
	FInSubquery // [NOT] IN (subquery)
	FExists     // [NOT] EXISTS
	FIntersect
	FExcept
	FRollupCube // ROLLUP / CUBE / GROUPING SETS
	FOuterJoin
	FUnion
	FCase
	FOrderNoLimit  // ORDER BY without LIMIT
	FNonEquiJoin   // inequality join condition
	FDisjunctJoin  // OR in join condition
	FImplicitCross // comma-style cross join syntax
)

// Has reports whether the set contains the feature.
func (f Feature) Has(x Feature) bool { return f&x != 0 }

// Template describes one of the 99 TPC-DS query templates.
type Template struct {
	ID        int // TPC-DS query number (1..99)
	Instances int // parameter instantiations (Σ = 111, cf. §7.2.2)
	Features  Feature
}

// feature membership lists, derived from the TPC-DS v1.x template texts
// (approximate where templates mix many constructs; see EXPERIMENTS.md).
var (
	windowQs     = []int{12, 20, 36, 44, 47, 49, 51, 53, 57, 63, 67, 70, 86, 89, 98}
	cteQs        = []int{1, 2, 4, 11, 14, 23, 24, 30, 31, 39, 47, 51, 54, 57, 59, 64, 74, 81, 95}
	correlatedQs = []int{1, 6, 10, 16, 23, 30, 32, 35, 41, 44, 54, 58, 81, 92, 94, 95}
	scalarSubQs  = []int{6, 9, 28, 32, 44, 58, 61, 65, 90, 92}
	inSubQs      = []int{8, 10, 14, 23, 33, 45, 54, 56, 58, 60, 69, 83, 95}
	existsQs     = []int{10, 16, 35, 69, 94, 95}
	intersectQs  = []int{8, 14, 38}
	exceptQs     = []int{87}
	rollupQs     = []int{5, 14, 18, 22, 27, 36, 67, 70, 77, 80, 86}
	outerJoinQs  = []int{5, 10, 13, 21, 22, 25, 27, 34, 40, 43, 49, 59, 66, 72, 76, 78, 80, 84, 85, 93, 97}
	unionQs      = []int{2, 5, 11, 14, 33, 49, 54, 56, 60, 66, 71, 74, 75, 76, 80, 97}
	caseQs       = []int{9, 21, 34, 35, 37, 39, 43, 47, 53, 57, 61, 62, 66, 76, 85, 88, 89, 90, 93, 96, 98, 99}
	orderNoLimQs = []int{4, 11, 22, 31, 35, 38, 41, 66, 74, 87}
	nonEquiQs    = []int{13, 48, 72, 85}
	disjunctQs   = []int{13, 48, 85}
	// Templates instantiated more than once to form the 111-query run
	// (the a/b variants plus heavily parameterized reporting templates).
	twoInstanceQs = []int{5, 14, 18, 22, 23, 24, 27, 36, 39, 67, 70, 86}
)

// Templates returns the full 99-template catalog.
func Templates() []Template {
	feat := make(map[int]Feature, 99)
	mark := func(ids []int, f Feature) {
		for _, id := range ids {
			feat[id] |= f
		}
	}
	mark(windowQs, FWindow)
	mark(cteQs, FCTE)
	mark(correlatedQs, FCorrelated)
	mark(scalarSubQs, FScalarSub)
	mark(inSubQs, FInSubquery)
	mark(existsQs, FExists)
	mark(intersectQs, FIntersect)
	mark(exceptQs, FExcept)
	mark(rollupQs, FRollupCube)
	mark(outerJoinQs, FOuterJoin)
	mark(unionQs, FUnion)
	mark(caseQs, FCase)
	mark(orderNoLimQs, FOrderNoLimit)
	mark(nonEquiQs, FNonEquiJoin)
	mark(disjunctQs, FDisjunctJoin)
	// Nearly every template uses the comma-join syntax somewhere.
	for id := 1; id <= 99; id++ {
		feat[id] |= FImplicitCross
	}

	two := map[int]bool{}
	for _, id := range twoInstanceQs {
		two[id] = true
	}
	out := make([]Template, 0, 99)
	for id := 1; id <= 99; id++ {
		inst := 1
		if two[id] {
			inst = 2
		}
		out = append(out, Template{ID: id, Instances: inst, Features: feat[id]})
	}
	return out
}

// TotalInstances returns the number of queries the template catalog expands
// to (the paper's "111 queries out of the 99 templates").
func TotalInstances() int {
	n := 0
	for _, t := range Templates() {
		n += t.Instances
	}
	return n
}
