package tpcds

import (
	"testing"

	"orca/internal/core"
	"orca/internal/datagen"
	"orca/internal/engine"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

func TestTemplateCatalogShape(t *testing.T) {
	ts := Templates()
	if len(ts) != 99 {
		t.Fatalf("want 99 templates, got %d", len(ts))
	}
	if n := TotalInstances(); n != 111 {
		t.Fatalf("want 111 query instances, got %d", n)
	}
	seen := map[int]bool{}
	for _, tpl := range ts {
		if tpl.ID < 1 || tpl.ID > 99 || seen[tpl.ID] {
			t.Fatalf("bad or duplicate template id %d", tpl.ID)
		}
		seen[tpl.ID] = true
		if !tpl.Features.Has(FImplicitCross) {
			t.Errorf("q%d missing implicit-cross tag", tpl.ID)
		}
	}
}

func TestWorkloadTemplatesExistInCatalog(t *testing.T) {
	catalog := map[int]bool{}
	for _, tpl := range Templates() {
		catalog[tpl.ID] = true
	}
	for _, q := range Workload() {
		if !catalog[q.TemplateID] {
			t.Errorf("workload query %s references unknown template %d", q.Name, q.TemplateID)
		}
	}
	if len(Workload()) < 25 {
		t.Errorf("workload too small: %d queries", len(Workload()))
	}
}

// TestWorkloadRunsOnBothOptimizers is the big integration check: every
// executable workload query must parse, optimize with Orca AND the legacy
// Planner, execute on the cluster, and both plans must return identical
// result multisets.
func TestWorkloadRunsOnBothOptimizers(t *testing.T) {
	if testing.Short() {
		t.Skip("workload differential test skipped in -short mode")
	}
	p := md.NewMemProvider()
	BuildCatalog(p, Scale{Factor: 1})
	cluster := engine.NewCluster(4, p)
	if err := datagen.LoadAll(cluster, p, 2024); err != nil {
		t.Fatal(err)
	}
	cache := md.NewCache(&gpos.MemoryAccountant{})
	cfg := core.DefaultConfig(4)

	// The planner's correlated SubPlans are slow by design; bound execution
	// like the paper's 10000 s timeout so those queries register as timed
	// out instead of stalling the suite.
	opts := engine.Options{Budget: 1_500_000}

	for _, wq := range Workload() {
		wq := wq
		t.Run(wq.Name, func(t *testing.T) {
			// Orca.
			q1, err := sql.Bind(wq.SQL, md.NewAccessor(cache, p), md.NewColumnFactory())
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
			res, err := core.Optimize(q1, cfg)
			if err != nil {
				t.Fatalf("orca optimize: %v", err)
			}
			out1, err := cluster.Execute(res.Plan, opts)
			if err != nil {
				t.Fatalf("orca execute: %v", err)
			}
			if out1.TimedOut {
				t.Fatal("orca plan blew the execution budget")
			}

			// Legacy Planner via the facade-free path.
			q2, err := sql.Bind(wq.SQL, md.NewAccessor(cache, p), md.NewColumnFactory())
			if err != nil {
				t.Fatalf("rebind: %v", err)
			}
			lp, err := newLegacy(cluster.Segments, q2).Optimize(q2)
			if err != nil {
				t.Fatalf("planner optimize: %v", err)
			}
			out2, err := cluster.Execute(lp, opts)
			if err != nil {
				t.Fatalf("planner execute: %v", err)
			}

			if out2.TimedOut {
				// Acceptable: the legacy plan timed out (the Figure 12
				// 1000x phenomenon); results cannot be compared.
				t.Logf("planner timed out (orca work=%d)", out1.Stats.Work(3))
				return
			}
			r1 := projectRows(out1, q1.OutCols)
			r2 := projectRows(out2, q2.OutCols)
			if len(r1) != len(r2) {
				t.Fatalf("row counts differ: orca=%d planner=%d", len(r1), len(r2))
			}
			for i := range r1 {
				if r1[i] != r2[i] {
					t.Fatalf("row %d differs:\n  orca:    %s\n  planner: %s", i, r1[i], r2[i])
				}
			}
		})
	}
}
