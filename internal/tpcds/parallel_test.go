package tpcds

import (
	"testing"

	"orca/internal/core"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

// TestParallelOptimizationDeterministicCost hammers the multi-core job
// scheduler (paper §4.2) on a join-heavy query: the best plan cost must be
// identical across worker counts and repetitions — plan choice is a pure
// function of the search space, not of scheduling order. Run with -race to
// exercise the Memo's concurrency control.
func TestParallelOptimizationDeterministicCost(t *testing.T) {
	p := md.NewMemProvider()
	BuildCatalog(p, Scale{Factor: 1})
	cache := md.NewCache(&gpos.MemoryAccountant{})

	var q25 string
	for _, wq := range Workload() {
		if wq.Name == "q25" {
			q25 = wq.SQL
		}
	}

	costs := map[int]float64{}
	for _, workers := range []int{1, 2, 8} {
		cfg := core.DefaultConfig(16)
		cfg.Workers = workers
		for rep := 0; rep < 3; rep++ {
			q, err := sql.Bind(q25, md.NewAccessor(cache, p), md.NewColumnFactory())
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Optimize(q, cfg)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
			}
			if prev, ok := costs[workers]; ok && prev != res.Cost {
				t.Errorf("workers=%d: cost varies across reps: %g vs %g", workers, prev, res.Cost)
			}
			costs[workers] = res.Cost
		}
	}
	if costs[1] != costs[2] || costs[1] != costs[8] {
		t.Errorf("best cost differs by worker count: %v", costs)
	}
}
