package tpcds

// Query is one executable workload query: a TPC-DS template it descends
// from, an instance label, and the SQL text in the dialect of internal/sql
// against the tpcds schema.
type Query struct {
	TemplateID int
	Name       string
	SQL        string
}

// Workload returns the executable performance workload: TPC-DS-derived
// queries covering star joins with selective dimension filters, correlated
// and quantified subqueries, common table expressions, unions across sales
// channels, window functions, set operations and outer joins — the feature
// interplay §7.2.2 credits for Orca's Figure 12 speedups.
func Workload() []Query {
	return []Query{
		{3, "q3", `
			SELECT dt.d_year, i.i_brand_id, sum(ss.ss_sales_price) AS sum_agg
			FROM date_dim dt, store_sales ss, item i
			WHERE dt.d_date_sk = ss.ss_sold_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND i.i_manager_id = 8 AND dt.d_moy = 11
			GROUP BY dt.d_year, i.i_brand_id
			ORDER BY dt.d_year, sum_agg DESC, i.i_brand_id
			LIMIT 100`},

		{42, "q42", `
			SELECT dt.d_year, i.i_category_id, sum(ss.ss_net_profit) AS total
			FROM date_dim dt, store_sales ss, item i
			WHERE dt.d_date_sk = ss.ss_sold_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND i.i_manager_id BETWEEN 1 AND 10 AND dt.d_moy = 12 AND dt.d_year = 2020
			GROUP BY dt.d_year, i.i_category_id
			ORDER BY total DESC, dt.d_year, i.i_category_id
			LIMIT 100`},

		{52, "q52", `
			SELECT dt.d_year, i.i_brand_id, sum(ss.ss_ext_price_proxy) AS ext
			FROM (SELECT ss_sold_date_sk, ss_item_sk,
			             ss_sales_price * ss_quantity AS ss_ext_price_proxy
			      FROM store_sales) ss,
			     date_dim dt, item i
			WHERE dt.d_date_sk = ss.ss_sold_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND i.i_manager_id = 1 AND dt.d_moy = 11 AND dt.d_year = 2021
			GROUP BY dt.d_year, i.i_brand_id
			ORDER BY dt.d_year, ext DESC, i.i_brand_id
			LIMIT 100`},

		{55, "q55", `
			SELECT i.i_brand_id, sum(ss.ss_sales_price) AS ext_price
			FROM date_dim d, store_sales ss, item i
			WHERE d.d_date_sk = ss.ss_sold_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND i.i_manager_id = 28 AND d.d_moy = 11 AND d.d_year = 2022
			GROUP BY i.i_brand_id
			ORDER BY ext_price DESC, i.i_brand_id
			LIMIT 100`},

		{7, "q7", `
			SELECT i.i_item_sk, avg(ss.ss_quantity) AS agg1,
			       avg(ss.ss_sales_price) AS agg2
			FROM store_sales ss, customer_demographics cd, date_dim d, item i, promotion p
			WHERE ss.ss_sold_date_sk = d.d_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND ss.ss_customer_sk = cd.cd_demo_sk
			  AND ss.ss_promo_sk = p.p_promo_sk
			  AND cd.cd_gender_id = 1 AND cd.cd_education_id = 3
			  AND p.p_channel_id = 1 AND d.d_year = 2020
			GROUP BY i.i_item_sk
			ORDER BY i.i_item_sk
			LIMIT 100`},

		{19, "q19", `
			SELECT i.i_brand_id, sum(ss.ss_sales_price) AS ext_price
			FROM date_dim d, store_sales ss, item i, customer c, customer_address ca
			WHERE d.d_date_sk = ss.ss_sold_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND ss.ss_customer_sk = c.c_customer_sk
			  AND c.c_current_addr_sk = ca.ca_address_sk
			  AND i.i_manager_id = 7 AND d.d_moy = 11 AND d.d_year = 2021
			  AND ca.ca_state_id < 25
			GROUP BY i.i_brand_id
			ORDER BY ext_price DESC, i.i_brand_id
			LIMIT 100`},

		{1, "q1", `
			WITH customer_total_return AS (
				SELECT sr.sr_customer_sk AS ctr_customer_sk,
				       sr.sr_store_sk AS ctr_store_sk,
				       sum(sr.sr_return_amt) AS ctr_total_return
				FROM store_returns sr, date_dim d
				WHERE sr.sr_returned_date_sk = d.d_date_sk AND d.d_year = 2020
				GROUP BY sr.sr_customer_sk, sr.sr_store_sk
			)
			SELECT ctr1.ctr_customer_sk
			FROM customer_total_return ctr1, store s, customer c
			WHERE ctr1.ctr_total_return > (
					SELECT avg(ctr2.ctr_total_return) * 1.2
					FROM customer_total_return ctr2
					WHERE ctr1.ctr_store_sk = ctr2.ctr_store_sk)
			  AND s.s_store_sk = ctr1.ctr_store_sk
			  AND s.s_state_id = 3
			  AND ctr1.ctr_customer_sk = c.c_customer_sk
			ORDER BY ctr1.ctr_customer_sk
			LIMIT 100`},

		{6, "q6", `
			SELECT ca.ca_state_id AS state, count(*) AS cnt
			FROM customer_address ca, customer c, store_sales ss, date_dim d, item i
			WHERE ca.ca_address_sk = c.c_current_addr_sk
			  AND c.c_customer_sk = ss.ss_customer_sk
			  AND ss.ss_sold_date_sk = d.d_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND d.d_year = 2021 AND d.d_moy = 1
			  AND i.i_current_price > (
					SELECT 1.2 * avg(j.i_current_price)
					FROM item j
					WHERE j.i_category_id = i.i_category_id)
			GROUP BY ca.ca_state_id
			HAVING count(*) >= 2
			ORDER BY cnt, state
			LIMIT 100`},

		{15, "q15", `
			SELECT ca.ca_state_id, sum(cs.cs_sales_price) AS total
			FROM catalog_sales cs, customer c, customer_address ca, date_dim d
			WHERE cs.cs_customer_sk = c.c_customer_sk
			  AND c.c_current_addr_sk = ca.ca_address_sk
			  AND cs.cs_sold_date_sk = d.d_date_sk
			  AND d.d_qoy = 1 AND d.d_year = 2022
			GROUP BY ca.ca_state_id
			HAVING sum(cs.cs_sales_price) > 50
			ORDER BY ca.ca_state_id`},

		{25, "q25", `
			SELECT i.i_item_sk, s.s_store_sk,
			       sum(ss.ss_net_profit) AS store_profit,
			       sum(sr.sr_return_amt) AS return_amt,
			       sum(cs.cs_net_profit) AS catalog_profit
			FROM store_sales ss, store_returns sr, catalog_sales cs,
			     date_dim d1, store s, item i
			WHERE ss.ss_sold_date_sk = d1.d_date_sk AND d1.d_moy = 4 AND d1.d_year = 2020
			  AND ss.ss_item_sk = i.i_item_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND ss.ss_customer_sk = sr.sr_customer_sk
			  AND ss.ss_item_sk = sr.sr_item_sk
			  AND sr.sr_customer_sk = cs.cs_customer_sk
			  AND sr.sr_item_sk = cs.cs_item_sk
			GROUP BY i.i_item_sk, s.s_store_sk
			ORDER BY i.i_item_sk, s.s_store_sk
			LIMIT 100`},

		{95, "q95", `
			WITH ws_wh AS (
				SELECT ws1.ws_item_sk AS item_sk, ws1.ws_web_site_sk AS site_sk,
				       sum(ws1.ws_net_profit) AS profit
				FROM web_sales ws1, date_dim d
				WHERE ws1.ws_sold_date_sk = d.d_date_sk AND d.d_year = 2021
				GROUP BY ws1.ws_item_sk, ws1.ws_web_site_sk
			)
			SELECT w1.item_sk, w1.profit
			FROM ws_wh w1
			WHERE w1.profit > (SELECT avg(w2.profit) FROM ws_wh w2
			                   WHERE w2.site_sk = w1.site_sk)
			  AND EXISTS (SELECT 1 FROM web_returns wr
			              WHERE wr.wr_item_sk = w1.item_sk)
			ORDER BY w1.item_sk, w1.profit
			LIMIT 100`},

		{16, "q16", `
			SELECT count(DISTINCT cs.cs_item_sk) AS order_count,
			       sum(cs.cs_net_profit) AS total_net_profit
			FROM catalog_sales cs, date_dim d, call_center cc
			WHERE cs.cs_sold_date_sk = d.d_date_sk AND d.d_year = 2020
			  AND cs.cs_call_center_sk = cc.cc_call_center_sk
			  AND cc.cc_state_id = 1
			  AND EXISTS (SELECT 1 FROM catalog_sales cs2
			              WHERE cs2.cs_item_sk = cs.cs_item_sk
			                AND cs2.cs_call_center_sk <> cs.cs_call_center_sk)
			  AND NOT EXISTS (SELECT 1 FROM web_returns wr
			                  WHERE wr.wr_item_sk = cs.cs_item_sk
			                    AND wr.wr_return_amt > 290)`},

		{10, "q10", `
			SELECT cd.cd_gender_id, cd.cd_education_id, count(*) AS cnt
			FROM customer c, customer_address ca, customer_demographics cd
			WHERE c.c_current_addr_sk = ca.ca_address_sk
			  AND ca.ca_state_id IN (1, 2, 3, 4, 5)
			  AND cd.cd_demo_sk = c.c_current_cdemo_sk
			  AND EXISTS (SELECT 1 FROM store_sales ss, date_dim d
			              WHERE c.c_customer_sk = ss.ss_customer_sk
			                AND ss.ss_sold_date_sk = d.d_date_sk
			                AND d.d_year = 2020)
			GROUP BY cd.cd_gender_id, cd.cd_education_id
			ORDER BY cnt DESC, cd.cd_gender_id, cd.cd_education_id
			LIMIT 100`},

		{69, "q69", `
			SELECT cd.cd_gender_id, count(*) AS cnt
			FROM customer c, customer_address ca, customer_demographics cd
			WHERE c.c_current_addr_sk = ca.ca_address_sk
			  AND cd.cd_demo_sk = c.c_current_cdemo_sk
			  AND c.c_customer_sk IN (SELECT ss.ss_customer_sk FROM store_sales ss)
			  AND c.c_customer_sk NOT IN (SELECT ws.ws_customer_sk FROM web_sales ws)
			GROUP BY cd.cd_gender_id
			ORDER BY cnt DESC, cd.cd_gender_id
			LIMIT 100`},

		{38, "q38", `
			SELECT ss.ss_customer_sk FROM store_sales ss
			INTERSECT
			SELECT cs.cs_customer_sk FROM catalog_sales cs
			INTERSECT
			SELECT ws.ws_customer_sk FROM web_sales ws
			ORDER BY 1
			LIMIT 100`},

		{87, "q87", `
			SELECT ss.ss_customer_sk FROM store_sales ss, date_dim d
			WHERE ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2020
			EXCEPT
			SELECT ws.ws_customer_sk FROM web_sales ws
			ORDER BY 1`},

		{71, "q71", `
			SELECT i.i_brand_id, t.channel, sum(t.price) AS total
			FROM (
				SELECT ws_item_sk AS item_sk, ws_sales_price AS price, 1 AS channel
				FROM web_sales, date_dim
				WHERE ws_sold_date_sk = d_date_sk AND d_moy = 11 AND d_year = 2021
				UNION ALL
				SELECT cs_item_sk AS item_sk, cs_sales_price AS price, 2 AS channel
				FROM catalog_sales, date_dim
				WHERE cs_sold_date_sk = d_date_sk AND d_moy = 11 AND d_year = 2021
				UNION ALL
				SELECT ss_item_sk AS item_sk, ss_sales_price AS price, 3 AS channel
				FROM store_sales, date_dim
				WHERE ss_sold_date_sk = d_date_sk AND d_moy = 11 AND d_year = 2021
			) AS t, item i
			WHERE t.item_sk = i.i_item_sk AND i.i_manager_id = 1
			GROUP BY i.i_brand_id, t.channel
			ORDER BY i.i_brand_id, t.channel
			LIMIT 100`},

		{67, "q67", `
			SELECT cat, total, rk FROM (
				SELECT g.cat AS cat, g.total AS total,
				       rank() OVER (ORDER BY g.total DESC) AS rk
				FROM (SELECT i.i_category_id AS cat, sum(ss.ss_sales_price) AS total
				      FROM store_sales ss, item i, date_dim d
				      WHERE ss.ss_item_sk = i.i_item_sk
				        AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2021
				      GROUP BY i.i_category_id) AS g
			) AS ranked
			WHERE rk <= 5
			ORDER BY rk, cat`},

		{53, "q53", `
			SELECT mgr, total, total_share FROM (
				SELECT g.mgr AS mgr, g.total AS total,
				       sum(g.total) OVER (PARTITION BY g.grp) AS total_share,
				       g.grp AS grp
				FROM (SELECT i.i_manager_id AS mgr, i.i_category_id AS grp,
				             sum(ss.ss_sales_price) AS total
				      FROM store_sales ss, item i
				      WHERE ss.ss_item_sk = i.i_item_sk
				      GROUP BY i.i_manager_id, i.i_category_id) AS g
			) AS w
			ORDER BY mgr, total
			LIMIT 100`},

		{65, "q65", `
			SELECT s.s_store_sk, i.i_item_sk, sc.revenue
			FROM store s, item i,
			     (SELECT ss_store_sk AS store_sk, ss_item_sk AS item_sk,
			             sum(ss_sales_price) AS revenue
			      FROM store_sales GROUP BY ss_store_sk, ss_item_sk) AS sc
			WHERE s.s_store_sk = sc.store_sk
			  AND i.i_item_sk = sc.item_sk
			  AND sc.revenue > (
					SELECT 0.1 * avg(sc2.revenue)
					FROM (SELECT ss_store_sk AS store_sk2, sum(ss_sales_price) AS revenue
					      FROM store_sales GROUP BY ss_store_sk, ss_item_sk) AS sc2
					WHERE sc2.store_sk2 = s.s_store_sk)
			ORDER BY s.s_store_sk, i.i_item_sk
			LIMIT 100`},

		{92, "q92", `
			SELECT sum(ws.ws_sales_price) AS excess_discount
			FROM web_sales ws, item i, date_dim d
			WHERE i.i_manager_id = 5
			  AND i.i_item_sk = ws.ws_item_sk
			  AND ws.ws_sold_date_sk = d.d_date_sk AND d.d_year = 2021
			  AND ws.ws_sales_price > (
					SELECT 1.3 * avg(ws2.ws_sales_price)
					FROM web_sales ws2
					WHERE ws2.ws_item_sk = i.i_item_sk)`},

		{43, "q43", `
			SELECT s.s_store_sk,
			       sum(CASE WHEN d.d_dow = 0 THEN ss.ss_sales_price ELSE 0 END) AS sun_sales,
			       sum(CASE WHEN d.d_dow = 6 THEN ss.ss_sales_price ELSE 0 END) AS sat_sales
			FROM date_dim d, store_sales ss, store s
			WHERE d.d_date_sk = ss.ss_sold_date_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND d.d_year = 2020
			GROUP BY s.s_store_sk
			ORDER BY s.s_store_sk`},

		{73, "q73", `
			SELECT c.c_customer_sk, cnt_t.cnt
			FROM (SELECT ss_customer_sk AS cust_sk, count(*) AS cnt
			      FROM store_sales, date_dim
			      WHERE ss_sold_date_sk = d_date_sk AND d_year = 2021
			      GROUP BY ss_customer_sk
			      HAVING count(*) BETWEEN 3 AND 50) AS cnt_t,
			     customer c
			WHERE c.c_customer_sk = cnt_t.cust_sk
			ORDER BY cnt_t.cnt DESC, c.c_customer_sk
			LIMIT 100`},

		{79, "q79", `
			SELECT s.s_store_sk, hd.hd_dep_count, sum(ss.ss_net_profit) AS profit
			FROM store_sales ss, household_demographics hd, store s
			WHERE ss.ss_customer_sk = hd.hd_demo_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND hd.hd_vehicle_count > 2
			GROUP BY s.s_store_sk, hd.hd_dep_count
			ORDER BY profit DESC, s.s_store_sk, hd.hd_dep_count
			LIMIT 100`},

		{82, "q82", `
			SELECT i.i_item_sk, i.i_current_price
			FROM item i, inventory inv, date_dim d
			WHERE i.i_item_sk = inv.inv_item_sk
			  AND inv.inv_date_sk = d.d_date_sk
			  AND i.i_current_price BETWEEN 30 AND 60
			  AND inv.inv_quantity_on_hand BETWEEN 100 AND 400
			  AND d.d_year = 2020
			GROUP BY i.i_item_sk, i.i_current_price
			ORDER BY i.i_item_sk
			LIMIT 100`},

		{93, "q93", `
			SELECT t.cust, sum(t.act_price) AS sumsales
			FROM (
				SELECT ss.ss_customer_sk AS cust,
				       CASE WHEN sr.sr_ticket_number IS NOT NULL
				            THEN ss.ss_sales_price - sr.sr_return_amt
				            ELSE ss.ss_sales_price END AS act_price
				FROM store_sales ss
				LEFT JOIN store_returns sr
				  ON ss.ss_ticket_number = sr.sr_ticket_number
				 AND ss.ss_item_sk = sr.sr_item_sk
			) AS t
			GROUP BY t.cust
			ORDER BY sumsales DESC, t.cust
			LIMIT 100`},

		{84, "q84", `
			SELECT c.c_customer_sk, ca.ca_state_id
			FROM customer c, customer_address ca, customer_demographics cd
			WHERE c.c_current_addr_sk = ca.ca_address_sk
			  AND ca.ca_gmt_offset = -5
			  AND cd.cd_demo_sk = c.c_current_cdemo_sk
			  AND cd.cd_purchase_estimate BETWEEN 3000 AND 8000
			ORDER BY c.c_customer_sk
			LIMIT 100`},

		{96, "q96", `
			SELECT count(*) AS cnt
			FROM store_sales ss, household_demographics hd, store s
			WHERE ss.ss_customer_sk = hd.hd_demo_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND hd.hd_dep_count = 5 AND s.s_state_id = 2`},

		{90, "q90", `
			SELECT am.amc * 1000 / (pm.pmc + 1) AS am_pm_ratio
			FROM (SELECT count(*) AS amc FROM web_sales, date_dim
			      WHERE ws_sold_date_sk = d_date_sk AND d_moy BETWEEN 1 AND 6) AS am,
			     (SELECT count(*) AS pmc FROM web_sales, date_dim
			      WHERE ws_sold_date_sk = d_date_sk AND d_moy BETWEEN 7 AND 12) AS pm`},

		{62, "q62", `
			SELECT w.w_state_id,
			       sum(CASE WHEN inv.inv_quantity_on_hand <= 100 THEN 1 ELSE 0 END) AS low,
			       sum(CASE WHEN inv.inv_quantity_on_hand > 100 THEN 1 ELSE 0 END) AS high
			FROM inventory inv, warehouse w
			WHERE inv.inv_warehouse_sk = w.w_warehouse_sk
			GROUP BY w.w_state_id
			ORDER BY w.w_state_id`},

		{29, "q29", `
			SELECT i.i_item_sk, sum(ss.ss_quantity) AS store_qty,
			       sum(sr.sr_return_amt) AS ret_amt,
			       sum(cs.cs_quantity) AS cat_qty
			FROM store_sales ss, store_returns sr, catalog_sales cs, item i, date_dim d1
			WHERE d1.d_date_sk = ss.ss_sold_date_sk AND d1.d_moy = 9 AND d1.d_year = 2020
			  AND i.i_item_sk = ss.ss_item_sk
			  AND ss.ss_customer_sk = sr.sr_customer_sk AND ss.ss_item_sk = sr.sr_item_sk
			  AND sr.sr_customer_sk = cs.cs_customer_sk AND sr.sr_item_sk = cs.cs_item_sk
			GROUP BY i.i_item_sk
			ORDER BY i.i_item_sk
			LIMIT 100`},

		{68, "q68", `
			SELECT c.c_customer_sk, sums.city_profit
			FROM customer c,
			     (SELECT ss_customer_sk AS cust_sk, sum(ss_net_profit) AS city_profit
			      FROM store_sales, date_dim, store
			      WHERE ss_sold_date_sk = d_date_sk AND d_year = 2021
			        AND ss_store_sk = s_store_sk AND s_state_id IN (1, 3)
			      GROUP BY ss_customer_sk) AS sums
			WHERE c.c_customer_sk = sums.cust_sk
			ORDER BY sums.city_profit DESC, c.c_customer_sk
			LIMIT 100`},
	}
}

// WorkloadQueryIDs lists the TPC-DS template ids covered by the executable
// workload.
func WorkloadQueryIDs() []int {
	w := Workload()
	out := make([]int, len(w))
	for i, q := range w {
		out[i] = q.TemplateID
	}
	return out
}
