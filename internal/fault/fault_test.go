package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"orca/internal/gpos"
)

func TestInjectDisarmedIsNil(t *testing.T) {
	r := NewRegistry()
	if r.Enabled() {
		t.Fatal("fresh registry reports Enabled")
	}
	for _, p := range Points() {
		if err := r.Inject(p); err != nil {
			t.Fatalf("disarmed Inject(%s) = %v", p, err)
		}
	}
}

func TestArmErrorAction(t *testing.T) {
	r := NewRegistry()
	disarm, err := r.Arm([]Spec{{Point: PointMemoInsert, Action: ActError}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Enabled() {
		t.Fatal("armed registry not Enabled")
	}
	err = r.Inject(PointMemoInsert)
	ex := gpos.AsException(err)
	if ex == nil {
		t.Fatalf("want *gpos.Exception, got %v", err)
	}
	if ex.Comp != gpos.CompMemo || ex.Code != CodeInjected {
		t.Errorf("exception %s/%s, want %s/%s", ex.Comp, ex.Code, gpos.CompMemo, CodeInjected)
	}
	// Other points stay silent.
	if err := r.Inject(PointDXLParse); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
	disarm()
	if r.Enabled() {
		t.Error("registry still Enabled after disarm")
	}
	if err := r.Inject(PointMemoInsert); err != nil {
		t.Errorf("disarmed point fired: %v", err)
	}
}

func TestArmUnknownPoint(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Arm([]Spec{{Point: "no/such/point", Action: ActError}}); err == nil {
		t.Fatal("Arm accepted unknown point")
	}
	// A failed Arm must leave nothing armed, including earlier specs in the
	// same batch.
	if _, err := r.Arm([]Spec{
		{Point: PointMemoInsert, Action: ActError},
		{Point: "no/such/point", Action: ActError},
	}); err == nil {
		t.Fatal("Arm accepted batch with unknown point")
	}
	if r.Enabled() {
		t.Error("failed Arm left faults armed")
	}
}

func TestEveryNthTrigger(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Arm([]Spec{{Point: PointCostCompute, Action: ActError, Every: 3}}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 9; i++ {
		if r.Inject(PointCostCompute) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Errorf("every=3 fired on hits %v, want %v", fired, want)
	}
}

func TestLimitTrigger(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Arm([]Spec{{Point: PointCostCompute, Action: ActError, Limit: 2}}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 10; i++ {
		if r.Inject(PointCostCompute) != nil {
			n++
		}
	}
	if n != 2 {
		t.Errorf("limit=2 fired %d times", n)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []bool {
		r := NewRegistry()
		if _, err := r.Arm([]Spec{{Point: PointDXLParse, Action: ActError, Prob: 0.5, Seed: 7}}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Inject(PointDXLParse) != nil
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedule diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("prob=0.5 fired %d/%d times — trigger not probabilistic", fires, len(a))
	}
}

func TestPanicAction(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Arm([]Spec{{Point: PointSearchJobExec, Action: ActPanic}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(fmt.Sprint(v), PointSearchJobExec) {
			t.Errorf("panic value %v does not name the point", v)
		}
	}()
	_ = r.Inject(PointSearchJobExec)
}

func TestDelayAction(t *testing.T) {
	r := NewRegistry()
	const d = 20 * time.Millisecond
	if _, err := r.Arm([]Spec{{Point: PointMDProviderFetch, Action: ActDelay, Delay: d}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Inject(PointMDProviderFetch); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if got := time.Since(start); got < d {
		t.Errorf("delay slept %v, want >= %v", got, d)
	}
}

func TestConcurrentInject(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Arm([]Spec{{Point: PointMemoInsert, Action: ActError, Every: 2}}); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < perWorker; i++ {
				if r.Inject(PointMemoInsert) != nil {
					local++
				}
			}
			mu.Lock()
			fired += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if want := workers * perWorker / 2; fired != want {
		t.Errorf("every=2 under concurrency fired %d/%d, want %d", fired, workers*perWorker, want)
	}
}

func TestPointsTableConsistent(t *testing.T) {
	pts := Points()
	if len(pts) != len(Registered) {
		t.Fatalf("Points() returned %d names for %d registered", len(pts), len(Registered))
	}
	for _, p := range pts {
		if Registered[p] == "" {
			t.Errorf("point %q has no description", p)
		}
	}
}

func TestParseSpecsRoundTrip(t *testing.T) {
	in := "memo/insert:error:every=100, search/job/exec:panic:limit=1,md/provider/fetch:delay=5ms:prob=0.1:seed=42"
	specs, err := ParseSpecs(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	if s := specs[0]; s.Point != PointMemoInsert || s.Action != ActError || s.Every != 100 {
		t.Errorf("spec 0 = %+v", s)
	}
	if s := specs[1]; s.Point != PointSearchJobExec || s.Action != ActPanic || s.Limit != 1 {
		t.Errorf("spec 1 = %+v", s)
	}
	if s := specs[2]; s.Point != PointMDProviderFetch || s.Action != ActDelay ||
		s.Delay != 5*time.Millisecond || s.Prob != 0.1 || s.Seed != 42 {
		t.Errorf("spec 2 = %+v", s)
	}

	// Format → Parse is the identity on the parsed form.
	text := FormatSpecs(specs)
	again, err := ParseSpecs(text)
	if err != nil {
		t.Fatalf("re-parse %q: %v", text, err)
	}
	if fmt.Sprintf("%+v", again) != fmt.Sprintf("%+v", specs) {
		t.Errorf("round trip changed specs:\n  %+v\n  %+v", specs, again)
	}
}

func TestParseSpecsErrors(t *testing.T) {
	for _, bad := range []string{
		"memo/insert",                // no action
		"no/such/point:error",        // unknown point
		"memo/insert:explode",        // unknown action
		"memo/insert:delay=nonsense", // bad duration
		"memo/insert:error:every",    // option without value
		"memo/insert:error:prob=1.5", // probability out of range
		"memo/insert:error:bogus=1",  // unknown option
		"memo/insert:error:every=x",  // non-numeric
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", bad)
		}
	}
	if specs, err := ParseSpecs("  "); err != nil || specs != nil {
		t.Errorf("blank spec: %v, %v", specs, err)
	}
}

func TestRandomScheduleReproducible(t *testing.T) {
	a := RandomSchedule(123, 6)
	b := RandomSchedule(123, 6)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("same seed gave different schedules")
	}
	c := RandomSchedule(124, 6)
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", c) {
		t.Error("different seeds gave identical schedules")
	}
	if len(a) != 6 {
		t.Errorf("schedule has %d specs", len(a))
	}
	for _, s := range a {
		if _, ok := Registered[s.Point]; !ok {
			t.Errorf("schedule references unknown point %q", s.Point)
		}
	}
	// Schedules must arm cleanly.
	r := NewRegistry()
	disarm, err := r.Arm(a)
	if err != nil {
		t.Fatalf("arming random schedule: %v", err)
	}
	disarm()
}

func TestDefaultRegistryWrappers(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if Enabled() {
		t.Fatal("default registry armed at test start")
	}
	disarm, err := Arm([]Spec{{Point: PointCoreExtract, Action: ActError}})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if !Enabled() {
		t.Fatal("default registry not Enabled after Arm")
	}
	err = Inject(PointCoreExtract)
	var ex *gpos.Exception
	if !errors.As(err, &ex) {
		t.Fatalf("want exception, got %v", err)
	}
	if ex.Comp != gpos.CompOptimizer {
		t.Errorf("core/ prefix mapped to %s, want %s", ex.Comp, gpos.CompOptimizer)
	}
}
