package fault

import "sort"

// The central fault-point table. Every location instrumented with Inject is
// named here, once; instrumentation sites must reference these constants
// rather than ad-hoc string literals. orcavet's faultpoint analyzer enforces
// both properties: an Inject call whose argument is not one of these
// constants is a finding, and so is a Point* constant missing from the
// Registered table or sharing its value with another.
//
// Naming convention: <component>/<site>[/<detail>], where the component
// prefix selects the gpos.Component of injected exceptions (see
// componentFor).
const (
	// PointMDCacheLookup fires in md.Accessor.Get before the metadata-cache
	// lookup — the first step of every metadata access.
	PointMDCacheLookup = "md/cache/lookup"
	// PointMDProviderFetch fires in md.Accessor.Get before the backend
	// provider fetch on a cache miss.
	PointMDProviderFetch = "md/provider/fetch"
	// PointDXLParse fires in dxl.ParseXML before parsing a DXL document.
	PointDXLParse = "dxl/parse"
	// PointDXLHarvest fires in dxl.Harvest before serializing a session's
	// touched metadata into a dump document.
	PointDXLHarvest = "dxl/harvest"
	// PointMemoInsert fires in memo.Memo.InsertExpr before a group
	// expression is copied into the Memo.
	PointMemoInsert = "memo/insert"
	// PointMemoStatsDerive fires in memo.Memo.DeriveStats before a group's
	// statistics are derived.
	PointMemoStatsDerive = "memo/stats/derive"
	// PointCostCompute fires in the search layer's Opt(gexpr, req) job right
	// before a plan alternative is costed.
	PointCostCompute = "cost/compute"
	// PointSearchJobExec fires in the scheduler worker loop before every job
	// step — the paper's CJob execution boundary.
	PointSearchJobExec = "search/job/exec"
	// PointSearchXformApply fires in the Xform(gexpr, t) job before a
	// transformation rule is applied.
	PointSearchXformApply = "search/xform/apply"
	// PointCoreNormalize fires in core.Optimize before query normalization.
	PointCoreNormalize = "core/normalize"
	// PointCoreExtract fires in core.Optimize before plan extraction from
	// the Memo.
	PointCoreExtract = "core/extract"

	// The serve/* points let the chaos gate storm the optimizer service
	// (cmd/orcad) itself rather than only the search underneath it.

	// PointServeAdmit fires in serve's admission controller before a request
	// takes a concurrency slot; an injected error sheds the request as if
	// the queue were full (429 with Retry-After).
	PointServeAdmit = "serve/admission/reject"
	// PointServeMDTransient fires in md's retried lookup path before each
	// provider attempt; injected errors are classified transient so they
	// exercise the retry-with-backoff machinery end to end.
	PointServeMDTransient = "serve/md/transient-error"
	// PointServeHandlerPanic fires in serve's optimize handler inside the
	// per-request containment boundary; arm it with panic to prove a
	// panicking request produces a 500 + AMPERe dump, not a dead process.
	PointServeHandlerPanic = "serve/handler/panic"
	// PointServeHandlerSlow fires in serve's optimize handler before
	// optimization starts; arm it with delay to simulate a slow handler
	// eating the request deadline.
	PointServeHandlerSlow = "serve/handler/slow"

	// The plancache/* points fault the parameterized plan cache's hit path:
	// both make a probe distrust what it found, so chaos schedules exercise
	// the defensive eviction paths and prove a poisoned cache degrades to a
	// miss (re-optimization), never to a wrong plan.

	// PointPlanCacheCorrupt fires in plancache.Cache.Lookup after an entry is
	// found; when it fires the entry is treated as corrupt — evicted and
	// reported as a miss — so the request re-optimizes.
	PointPlanCacheCorrupt = "plancache/corrupt-entry"
	// PointPlanCacheStale fires in plancache.Cache.Lookup after an entry is
	// found; when it fires the entry is treated as if its metadata version
	// stamp no longer matched — evicted and reported as a miss.
	PointPlanCacheStale = "plancache/stale-version"
)

// Registered maps every declared fault point to a one-line description of
// the instrumented site. It is the single source of truth consulted by
// Arm/ParseSpecs validation, by RandomSchedule, and by the faultpoint
// analyzer.
var Registered = map[string]string{
	PointMDCacheLookup:    "metadata accessor cache lookup (md.Accessor.Get)",
	PointMDProviderFetch:  "metadata provider fetch on cache miss (md.Accessor.Get)",
	PointDXLParse:         "DXL document parse (dxl.ParseXML)",
	PointDXLHarvest:       "DXL metadata harvest (dxl.Harvest)",
	PointMemoInsert:       "Memo group-expression insertion (memo.Memo.InsertExpr)",
	PointMemoStatsDerive:  "group statistics derivation (memo.Memo.DeriveStats)",
	PointCostCompute:      "plan-alternative costing (search Opt(gexpr, req) job)",
	PointSearchJobExec:    "scheduler job step (search.Scheduler worker)",
	PointSearchXformApply: "transformation-rule application (search Xform job)",
	PointCoreNormalize:    "query normalization (core.Optimize)",
	PointCoreExtract:      "plan extraction (core.Optimize)",

	PointServeAdmit:        "admission-controller slot acquisition (serve admission)",
	PointServeMDTransient:  "retryable metadata lookup attempt (md timedLookup retry loop)",
	PointServeHandlerPanic: "optimize-handler containment boundary (serve request lifecycle)",
	PointServeHandlerSlow:  "optimize-handler latency injection (serve request lifecycle)",

	PointPlanCacheCorrupt: "plan-cache corrupt-entry discard (plancache.Cache.Lookup)",
	PointPlanCacheStale:   "plan-cache stale-version discard (plancache.Cache.Lookup)",
}

// Points returns all registered fault-point names, sorted.
func Points() []string {
	out := make([]string, 0, len(Registered))
	for p := range Registered {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
