package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpecs parses the textual fault schedule accepted by cmd/orca's
// -faults flag and the ORCA_FAULTS environment variable. The grammar is a
// comma-separated list of armed points:
//
//	spec     = point ":" action *( ":" option )
//	action   = "error" | "panic" | "delay=" duration
//	option   = "every=" int | "limit=" int | "prob=" float | "seed=" int
//
// Examples:
//
//	memo/insert:error:every=100
//	search/job/exec:panic:limit=1
//	md/provider/fetch:delay=5ms:prob=0.1:seed=42
//
// The serve/* points target the optimizer service (cmd/orcad) around the
// search rather than inside it — admission shedding, transient metadata
// errors feeding the retry machinery, handler panics and handler latency:
//
//	serve/admission/reject:error:prob=0.2:seed=7
//	serve/md/transient-error:error:every=3
//	serve/handler/panic:panic:limit=1
//	serve/handler/slow:delay=50ms:prob=0.5:seed=9
//
// Whitespace around commas is ignored; an empty string yields no specs.
func ParseSpecs(text string) ([]Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	var specs []Spec
	for _, raw := range strings.Split(text, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		s, err := parseOne(raw)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

func parseOne(raw string) (Spec, error) {
	parts := strings.Split(raw, ":")
	if len(parts) < 2 {
		return Spec{}, fmt.Errorf("fault: spec %q: want <point>:<action>[:opt=val]*", raw)
	}
	s := Spec{Point: parts[0]}
	if _, ok := Registered[s.Point]; !ok {
		return Spec{}, fmt.Errorf("fault: spec %q: unknown fault point %q", raw, s.Point)
	}
	action := parts[1]
	switch {
	case action == "error":
		s.Action = ActError
	case action == "panic":
		s.Action = ActPanic
	case strings.HasPrefix(action, "delay="):
		d, err := time.ParseDuration(action[len("delay="):])
		if err != nil {
			return Spec{}, fmt.Errorf("fault: spec %q: bad delay: %v", raw, err)
		}
		s.Action = ActDelay
		s.Delay = d
	default:
		return Spec{}, fmt.Errorf("fault: spec %q: unknown action %q (want error, panic or delay=<dur>)", raw, action)
	}
	for _, opt := range parts[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: spec %q: option %q is not key=value", raw, opt)
		}
		var err error
		switch key {
		case "every":
			s.Every, err = strconv.Atoi(val)
		case "limit":
			s.Limit, err = strconv.Atoi(val)
		case "prob":
			s.Prob, err = strconv.ParseFloat(val, 64)
			if err == nil && (s.Prob < 0 || s.Prob > 1) {
				err = fmt.Errorf("probability %v outside [0, 1]", s.Prob)
			}
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fault: spec %q: %v", raw, err)
		}
	}
	return s, nil
}

// FormatSpecs renders specs back into the textual grammar parsed by
// ParseSpecs. AMPERe dumps embed this so a replayed failure re-arms the same
// schedule.
func FormatSpecs(specs []Spec) string {
	var b strings.Builder
	for i, s := range specs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Point)
		b.WriteByte(':')
		if s.Action == ActDelay {
			b.WriteString("delay=")
			b.WriteString(s.Delay.String())
		} else {
			b.WriteString(s.Action.String())
		}
		if s.Every > 0 {
			fmt.Fprintf(&b, ":every=%d", s.Every)
		}
		if s.Limit > 0 {
			fmt.Fprintf(&b, ":limit=%d", s.Limit)
		}
		if s.Prob > 0 {
			fmt.Fprintf(&b, ":prob=%g", s.Prob)
		}
		if s.Seed != 0 {
			fmt.Fprintf(&b, ":seed=%d", s.Seed)
		}
	}
	return b.String()
}
