// Package fault is the reproduction of GPOS's fault-simulation framework
// (paper §6.1): named fault points compiled into the optimizer's layers that
// can be armed at run time to raise a structured exception, panic, or inject
// latency. The paper's testing infrastructure relies on exactly this
// mechanism to "automate testing the unexpected" — exercising the error
// paths, the AMPERe capture machinery and the fallback logic without waiting
// for real failures.
//
// A fault point is a named call to Inject at an instrumented site:
//
//	if err := fault.Inject(fault.PointMemoInsert); err != nil {
//	    return nil, err
//	}
//
// When nothing is armed, Inject is a single atomic load. Arming is done with
// Specs — programmatically through core.Config.Faults, or from the
// ORCA_FAULTS environment spec parsed by cmd/orca (see ParseSpecs for the
// grammar). Triggers are deterministic so failures are reproducible: an
// every-Nth-hit counter and a seeded pseudo-random probability.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orca/internal/gpos"
)

// Action is what an armed fault does when its trigger fires.
type Action uint8

// Actions.
const (
	// ActError makes Inject return a *gpos.Exception whose component is
	// derived from the fault point's name prefix.
	ActError Action = iota
	// ActPanic makes Inject panic, exercising the panic-containment and
	// AMPERe capture paths.
	ActPanic
	// ActDelay makes Inject sleep for Spec.Delay, simulating a slow
	// dependency (e.g. a hung metadata provider).
	ActDelay
)

// String names the action as it appears in spec strings.
func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	default:
		return "unknown"
	}
}

// CodeInjected is the gpos.Exception code of every injected error.
const CodeInjected = "FaultInjected"

// Spec arms one fault point. The zero trigger fields mean "fire on every
// hit, forever"; Every, Limit and Prob restrict that deterministically.
type Spec struct {
	// Point is the registered fault-point name.
	Point string
	// Action selects error, panic or delay.
	Action Action
	// Delay is the injected latency for ActDelay.
	Delay time.Duration
	// Every fires the fault only on every Nth hit of the point
	// (0 or 1 = every hit).
	Every int
	// Limit caps the number of fires (0 = unlimited). Every=1, Limit=1
	// gives the common "fail exactly once, then recover" schedule.
	Limit int
	// Prob fires the fault on each eligible hit with this probability,
	// drawn from a generator seeded with Seed (0 = unconditional).
	Prob float64
	// Seed seeds the probability generator, making probabilistic schedules
	// reproducible.
	Seed int64
}

// armedFault is a Spec plus its mutable trigger state.
type armedFault struct {
	spec  Spec
	hits  int64
	fires int64
	rng   *rand.Rand
}

// Registry holds the armed faults. The optimizer uses one process-global
// Default registry, mirroring GPOS's process-wide fault simulation; separate
// registries exist only for tests of the framework itself.
type Registry struct {
	mu     sync.Mutex
	armed  map[string][]*armedFault
	nArmed atomic.Int32
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{armed: make(map[string][]*armedFault)}
}

// Default is the process-global registry used by Inject.
var Default = NewRegistry()

// Arm validates and arms the given specs, returning a function that disarms
// exactly those specs (other armed faults are untouched). Unknown fault
// points are rejected so a typo in a schedule cannot silently arm nothing.
func (r *Registry) Arm(specs []Spec) (disarm func(), err error) {
	if len(specs) == 0 {
		return func() {}, nil
	}
	added := make([]*armedFault, 0, len(specs))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range specs {
		if _, ok := Registered[s.Point]; !ok {
			for _, a := range added {
				r.removeLocked(a)
			}
			return nil, fmt.Errorf("fault: unknown fault point %q", s.Point)
		}
		a := &armedFault{spec: s}
		if s.Prob > 0 {
			a.rng = rand.New(rand.NewSource(s.Seed))
		}
		r.armed[s.Point] = append(r.armed[s.Point], a)
		r.nArmed.Add(1)
		added = append(added, a)
	}
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, a := range added {
			r.removeLocked(a)
		}
	}, nil
}

func (r *Registry) removeLocked(target *armedFault) {
	list := r.armed[target.spec.Point]
	for i, a := range list {
		if a == target {
			r.armed[target.spec.Point] = append(list[:i], list[i+1:]...)
			r.nArmed.Add(-1)
			return
		}
	}
}

// Reset disarms everything.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for p, list := range r.armed {
		r.nArmed.Add(-int32(len(list)))
		delete(r.armed, p)
	}
}

// Enabled reports whether any fault is armed; the Inject fast path.
func (r *Registry) Enabled() bool { return r.nArmed.Load() != 0 }

// Inject evaluates the fault point: it returns nil when the point is not
// armed or its trigger does not fire, returns a *gpos.Exception for ActError,
// panics for ActPanic, and sleeps then returns nil for ActDelay.
func (r *Registry) Inject(point string) error {
	if r.nArmed.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	var fired *Spec
	for _, a := range r.armed[point] {
		if a.eligible() {
			a.fires++
			fired = &a.spec
			break
		}
	}
	r.mu.Unlock()
	if fired == nil {
		return nil
	}
	switch fired.Action {
	case ActPanic:
		injectPanic(point)
	case ActDelay:
		time.Sleep(fired.Delay)
		return nil
	}
	return gpos.Raise(componentFor(point), CodeInjected, "injected fault at %s", point)
}

// eligible advances the trigger state and reports whether the fault fires on
// this hit. Called with the registry lock held.
func (a *armedFault) eligible() bool {
	a.hits++
	if a.spec.Limit > 0 && a.fires >= int64(a.spec.Limit) {
		return false
	}
	if n := int64(a.spec.Every); n > 1 && a.hits%n != 0 {
		return false
	}
	if a.spec.Prob > 0 && a.rng.Float64() >= a.spec.Prob {
		return false
	}
	return true
}

// injectPanic is a dedicated frame so the injected panic's stack trace shows
// the fault origin unambiguously in AMPERe dumps.
func injectPanic(point string) {
	panic(fmt.Sprintf("fault: injected panic at %s", point))
}

// componentFor maps a fault point's name prefix to the gpos component of
// injected exceptions.
func componentFor(point string) gpos.Component {
	prefix := point
	if i := strings.IndexByte(point, '/'); i >= 0 {
		prefix = point[:i]
	}
	switch prefix {
	case "md":
		return gpos.CompMD
	case "dxl":
		return gpos.CompDXL
	case "memo":
		return gpos.CompMemo
	case "stats":
		return gpos.CompStats
	case "cost":
		return gpos.CompCost
	case "search":
		return gpos.CompSearch
	case "serve":
		return gpos.CompServe
	default:
		return gpos.CompOptimizer
	}
}

// Inject evaluates the fault point against the Default registry.
func Inject(point string) error { return Default.Inject(point) }

// Arm arms specs in the Default registry.
func Arm(specs []Spec) (disarm func(), err error) { return Default.Arm(specs) }

// Reset disarms everything in the Default registry.
func Reset() { Default.Reset() }

// Enabled reports whether any fault is armed in the Default registry.
func Enabled() bool { return Default.Enabled() }

// RandomSchedule builds a reproducible randomized fault schedule for chaos
// testing: nFaults points drawn (with replacement) from the registered
// table, each armed with a seeded low-probability error or delay trigger and
// the occasional panic. The same seed always yields the same schedule.
func RandomSchedule(seed int64, nFaults int) []Spec {
	rng := rand.New(rand.NewSource(seed))
	points := Points()
	specs := make([]Spec, 0, nFaults)
	for i := 0; i < nFaults; i++ {
		s := Spec{
			Point: points[rng.Intn(len(points))],
			Prob:  0.02 + 0.18*rng.Float64(),
			Seed:  rng.Int63(),
		}
		switch roll := rng.Float64(); {
		case roll < 0.6:
			s.Action = ActError
		case roll < 0.9:
			s.Action = ActDelay
			s.Delay = time.Duration(rng.Intn(2000)) * time.Microsecond
		default:
			s.Action = ActPanic
		}
		specs = append(specs, s)
	}
	return specs
}
