package search

import (
	"fmt"
	"sync/atomic"
	"time"

	"orca/internal/base"
	"orca/internal/cost"
	"orca/internal/fault"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/xform"
)

// Optimizer drives the Memo through the optimization workflow using the job
// scheduler. It corresponds to the paper's "Search" component (Figure 3).
//
// Search is goal-driven: one scheduler run per stage starts at the root
// optimization goal Opt(root, req) and pulls in exploration, implementation
// and statistics derivation on demand as dependencies. The Memo is shared
// across stages — a later stage re-enables rules against the same Memo
// (under a new rule-set epoch, see xform.Context.SetRuleSet) and resumes
// search instead of starting over.
type Optimizer struct {
	Memo *memo.Memo
	XCtx *xform.Context
	Cost *cost.Model

	// RulesFired counts rule applications across all workers and stages.
	RulesFired atomic.Int64
}

// StageParams bounds one optimization stage. The zero value means
// "unbounded": no deadline, no step limit, no resource quota.
type StageParams struct {
	// Workers is the scheduler parallelism (minimum 1).
	Workers int
	// Deadline ends the stage with ErrTimeout once passed (zero = none).
	Deadline time.Time
	// StepLimit ends the stage with ErrTimeout after this many job steps
	// (0 = none).
	StepLimit int64
	// Quota, when set, is polled before each job step; a non-nil return
	// (conventionally wrapping ErrBudget) aborts the stage through the same
	// best-so-far drain as a timeout. core wires the memory budget and the
	// Memo group limit through it.
	Quota func() error
}

// RunStage performs one optimization stage: a single goal-driven scheduler
// pass from Opt(root, req). It returns the best plan cost found, the run's
// telemetry, and the scheduler error (ErrTimeout when the stage's deadline
// or step budget cut it short, ErrBudget when a resource quota did — the
// Memo then still holds the best plan found so far, extractable via
// Memo.ExtractPlan).
func (o *Optimizer) RunStage(root memo.GroupID, req props.Required, p StageParams) (float64, Stats, error) {
	s := NewScheduler(p.Workers)
	s.SetDeadline(p.Deadline)
	s.SetStepLimit(p.StepLimit)
	s.SetQuotaCheck(p.Quota)
	g := o.Memo.Group(root)
	err := s.Run(&optGroupJob{o: o, g: g, req: req})
	st := s.Stats()
	if err != nil && !Drained(err) {
		return memo.InfCost, st, err
	}
	ctx := g.LookupContext(req)
	if ctx == nil {
		if err == nil {
			err = fmt.Errorf("search: missing optimization context for root")
		}
		return memo.InfCost, st, err
	}
	return ctx.BestCost(), st, err
}

// ---------------------------------------------------------------------------
// Exp(g): generate logically equivalent expressions of all group expressions
// in group g.

type expGroupJob struct {
	o         *Optimizer
	g         *memo.Group
	processed int
}

func (j *expGroupJob) Key() string   { return fmt.Sprintf("eg:%d", j.g.ID) }
func (j *expGroupJob) Kind() JobKind { return JobExp }

func (j *expGroupJob) Step(*Scheduler) ([]Job, bool, error) {
	if j.g.Explored(j.o.XCtx.Epoch()) {
		return nil, true, nil
	}
	exprs := j.g.Exprs()
	var children []Job
	for ; j.processed < len(exprs); j.processed++ {
		ge := exprs[j.processed]
		if _, ok := ge.Op.(ops.Logical); ok {
			children = append(children, &expGexprJob{o: j.o, ge: ge})
		}
	}
	if len(children) > 0 {
		// Transformations may add new expressions; re-check on resume.
		return children, false, nil
	}
	j.g.SetExplored(j.o.XCtx.Epoch())
	return nil, true, nil
}

// Exp(gexpr): explore one group expression — explore its children first so
// multi-level rule patterns can bind, then fire the exploration rules.

type expGexprJob struct {
	o     *Optimizer
	ge    *memo.GroupExpr
	phase int
}

func (j *expGexprJob) Key() string   { return fmt.Sprintf("ex:%p", j.ge) }
func (j *expGexprJob) Kind() JobKind { return JobExp }

func (j *expGexprJob) Step(*Scheduler) ([]Job, bool, error) {
	switch j.phase {
	case 0:
		j.phase = 1
		var children []Job
		for _, cid := range j.ge.Children {
			children = append(children, &expGroupJob{o: j.o, g: j.o.Memo.Group(cid)})
		}
		if len(children) > 0 {
			return children, false, nil
		}
		fallthrough
	case 1:
		j.phase = 2
		var children []Job
		for _, r := range j.o.XCtx.Explorations() {
			if !j.ge.Applied(r.ID) && r.Matches(j.ge) {
				children = append(children, &xformJob{o: j.o, ge: j.ge, rule: r})
			}
		}
		if len(children) > 0 {
			return children, false, nil
		}
	}
	return nil, true, nil
}

// ---------------------------------------------------------------------------
// Imp(g) / Imp(gexpr)

type impGroupJob struct {
	o     *Optimizer
	g     *memo.Group
	phase int
}

func (j *impGroupJob) Key() string   { return fmt.Sprintf("ig:%d", j.g.ID) }
func (j *impGroupJob) Kind() JobKind { return JobImp }

func (j *impGroupJob) Step(*Scheduler) ([]Job, bool, error) {
	if j.g.Implemented(j.o.XCtx.Epoch()) {
		return nil, true, nil
	}
	switch j.phase {
	case 0:
		j.phase = 1
		return []Job{&expGroupJob{o: j.o, g: j.g}}, false, nil
	case 1:
		j.phase = 2
		var children []Job
		for _, ge := range j.g.Exprs() {
			if _, ok := ge.Op.(ops.Logical); ok {
				children = append(children, &impGexprJob{o: j.o, ge: ge})
			}
		}
		if len(children) > 0 {
			return children, false, nil
		}
		fallthrough
	default:
		j.g.SetImplemented(j.o.XCtx.Epoch())
		return nil, true, nil
	}
}

type impGexprJob struct {
	o     *Optimizer
	ge    *memo.GroupExpr
	phase int
}

func (j *impGexprJob) Key() string   { return fmt.Sprintf("ix:%p", j.ge) }
func (j *impGexprJob) Kind() JobKind { return JobImp }

func (j *impGexprJob) Step(*Scheduler) ([]Job, bool, error) {
	if j.phase == 0 {
		j.phase = 1
		var children []Job
		for _, r := range j.o.XCtx.Implementations() {
			if !j.ge.Applied(r.ID) && r.Matches(j.ge) {
				children = append(children, &xformJob{o: j.o, ge: j.ge, rule: r})
			}
		}
		if len(children) > 0 {
			return children, false, nil
		}
	}
	return nil, true, nil
}

// ---------------------------------------------------------------------------
// Xform(gexpr, t)

type xformJob struct {
	o    *Optimizer
	ge   *memo.GroupExpr
	rule xform.ActiveRule
}

func (j *xformJob) Key() string   { return fmt.Sprintf("xf:%p:%s", j.ge, j.rule.Name()) }
func (j *xformJob) Kind() JobKind { return JobXform }

func (j *xformJob) Step(*Scheduler) ([]Job, bool, error) {
	if j.ge.MarkApplied(j.rule.ID) {
		if err := fault.Inject(fault.PointSearchXformApply); err != nil {
			return nil, false, err
		}
		if err := j.rule.Apply(j.o.XCtx, j.ge); err != nil {
			return nil, false, err
		}
		j.o.RulesFired.Add(1)
	}
	return nil, true, nil
}

// ---------------------------------------------------------------------------
// Stats(g): derive statistics for a group on demand (paper §4.1 step 2 made
// lazy): triggered as a dependency of the first Opt goal touching the group,
// after dependency jobs derived the statistics of the input groups — the
// promising expression's children and, for CTE consumers, the producer group.

type statsGroupJob struct {
	o     *Optimizer
	g     *memo.Group
	phase int
}

func (j *statsGroupJob) Key() string   { return fmt.Sprintf("sg:%d", j.g.ID) }
func (j *statsGroupJob) Kind() JobKind { return JobStats }

func (j *statsGroupJob) Step(*Scheduler) ([]Job, bool, error) {
	if j.g.Stats() != nil {
		return nil, true, nil
	}
	if j.phase == 0 {
		j.phase = 1
		var children []Job
		for _, src := range j.o.Memo.StatsSources(j.g.ID, j.o.XCtx.Stats) {
			children = append(children, &statsGroupJob{o: j.o, g: j.o.Memo.Group(src)})
		}
		if len(children) > 0 {
			return children, false, nil
		}
	}
	_, err := j.o.Memo.DeriveStats(j.g.ID, j.o.XCtx.Stats)
	return nil, err == nil, err
}

// ---------------------------------------------------------------------------
// Opt(g, req): find the least-cost plan rooted in group g satisfying req.

type optGroupJob struct {
	o     *Optimizer
	g     *memo.Group
	req   props.Required
	phase int
}

func (j *optGroupJob) Key() string {
	return fmt.Sprintf("og:%d:%x:%s", j.g.ID, j.req.Hash(), j.req)
}
func (j *optGroupJob) Kind() JobKind { return JobOpt }

func (j *optGroupJob) Step(*Scheduler) ([]Job, bool, error) {
	ctx, _ := j.g.Context(j.req)
	if ctx.Done(j.o.XCtx.Epoch()) {
		return nil, true, nil
	}
	switch j.phase {
	case 0:
		j.phase = 1
		return []Job{&impGroupJob{o: j.o, g: j.g}}, false, nil
	case 1:
		j.phase = 2
		// Statistics become necessary the moment this group's expressions are
		// costed; deriving them as a dependency job (rather than an eager
		// whole-Memo sweep) keeps derivation to groups search actually reaches.
		return []Job{&statsGroupJob{o: j.o, g: j.g}}, false, nil
	case 2:
		j.phase = 3
		if err := j.g.AddEnforcers(j.req); err != nil {
			return nil, false, err
		}
		var children []Job
		for _, ge := range j.g.Exprs() {
			if _, ok := ge.Op.(ops.Physical); !ok {
				continue
			}
			if ge.IsEnforcer() && !memo.EnforcerUseful(ge.Op, j.req) {
				continue
			}
			children = append(children, &optGexprJob{o: j.o, ge: ge, req: j.req})
		}
		if len(children) > 0 {
			return children, false, nil
		}
		fallthrough
	default:
		ctx.MarkDone(j.o.XCtx.Epoch())
		return nil, true, nil
	}
}

// Opt(gexpr, req): cost one group expression under a request, enumerating
// its child-request alternatives.

type optGexprJob struct {
	o   *Optimizer
	ge  *memo.GroupExpr
	req props.Required

	init    bool
	alts    [][]props.Required
	altIdx  int
	spawned bool
}

func (j *optGexprJob) Key() string {
	return fmt.Sprintf("ox:%p:%x:%s", j.ge, j.req.Hash(), j.req)
}
func (j *optGexprJob) Kind() JobKind { return JobOpt }

func (j *optGexprJob) Step(*Scheduler) ([]Job, bool, error) {
	phys := j.ge.Op.(ops.Physical)
	if !j.init {
		j.init = true
		for _, alt := range phys.ChildReqs(j.req) {
			if j.selfCycle(alt) {
				continue
			}
			j.alts = append(j.alts, alt)
		}
	}
	for j.altIdx < len(j.alts) {
		alt := j.alts[j.altIdx]
		if !j.spawned {
			j.spawned = true
			var children []Job
			for i, creq := range alt {
				children = append(children, &optGroupJob{o: j.o, g: j.o.Memo.Group(j.ge.Children[i]), req: creq})
			}
			if len(children) > 0 {
				return children, false, nil
			}
		}
		// Children optimized: evaluate this alternative.
		if err := j.evaluate(alt); err != nil {
			return nil, false, err
		}
		j.altIdx++
		j.spawned = false
	}
	return nil, true, nil
}

// selfCycle reports whether an alternative asks this expression's own group
// for the very request being optimized (possible only for enforcers), which
// would recurse forever.
func (j *optGexprJob) selfCycle(alt []props.Required) bool {
	for i, creq := range alt {
		if j.ge.Children[i] == j.ge.Group().ID && creq.Equal(j.req) {
			return true
		}
	}
	return false
}

// evaluate combines the children's best plans for one alternative, checks
// delivered properties against the request, costs the plan and offers it to
// the group's context (paper §4.1 step 4).
func (j *optGexprJob) evaluate(alt []props.Required) error {
	o := j.o
	n := len(j.ge.Children)
	childDerived := make([]props.Derived, n)
	childRows := make([]float64, n)
	total := 0.0
	for i, creq := range alt {
		cg := o.Memo.Group(j.ge.Children[i])
		cctx := cg.LookupContext(creq)
		if cctx == nil {
			return nil // child not optimizable under this request
		}
		_, cand, ok := cctx.Best()
		if !ok {
			return nil
		}
		childDerived[i] = cand.Delivered
		if cg.Stats() == nil {
			// Fallback: enforcer insertion can create expressions whose child
			// groups were never reached by a stats job on this path.
			if _, err := o.Memo.DeriveStats(cg.ID, o.XCtx.Stats); err != nil {
				return err
			}
		}
		childRows[i] = cg.Rows()
		total += cand.Cost
	}
	phys := j.ge.Op.(ops.Physical)
	delivered := phys.Derive(childDerived)
	if !delivered.Satisfies(j.req) {
		return nil
	}
	if err := fault.Inject(fault.PointCostCompute); err != nil {
		return err
	}
	g := j.ge.Group()
	if g.Stats() == nil {
		if _, err := o.Memo.DeriveStats(g.ID, o.XCtx.Stats); err != nil {
			return err
		}
	}
	in := cost.Inputs{
		OutRows:   g.Rows(),
		ChildRows: childRows,
		Delivered: delivered,
		Skew:      j.skew(delivered),
	}
	local := o.Cost.LocalCost(j.ge.Op, in)
	cand := memo.Candidate{
		ChildReqs: alt,
		LocalCost: local,
		Cost:      local + total,
		Delivered: delivered,
	}
	j.ge.AddCandidate(j.req, cand)
	ctx, _ := g.Context(j.req)
	ctx.Offer(j.ge, cand)
	return nil
}

// skew estimates the data-skew multiplier for operators that hash-partition
// data, from the histogram of the first hashing column.
func (j *optGexprJob) skew(delivered props.Derived) float64 {
	var col base.ColID = -1
	switch op := j.ge.Op.(type) {
	case *ops.Redistribute:
		if len(op.Cols) > 0 {
			col = op.Cols[0]
		}
	case *ops.HashJoin:
		if delivered.Dist.Kind == props.DistHashed && len(delivered.Dist.Cols) > 0 {
			col = delivered.Dist.Cols[0]
		}
	default:
		return 1
	}
	if col < 0 {
		return 1
	}
	if s := j.ge.Group().Stats(); s != nil {
		if h := s.Hist(col); h != nil {
			return h.SkewRatio()
		}
	}
	return 1
}
