package search

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stepJob is a configurable test job.
type stepJob struct {
	key   string
	steps []func() ([]Job, bool, error)
	calls int32
}

func (j *stepJob) Key() string   { return j.key }
func (j *stepJob) Kind() JobKind { return JobOpt }

func (j *stepJob) Step(*Scheduler) ([]Job, bool, error) {
	n := atomic.AddInt32(&j.calls, 1)
	if int(n) > len(j.steps) {
		return nil, true, nil
	}
	return j.steps[n-1]()
}

func leaf(key string, hit *int32) *stepJob {
	return &stepJob{key: key, steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) {
			atomic.AddInt32(hit, 1)
			return nil, true, nil
		},
	}}
}

func TestSchedulerRunsDependencyTree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var hits int32
		children := []Job{leaf("a", &hits), leaf("b", &hits), leaf("c", &hits)}
		var resumed int32
		root := &stepJob{key: "root", steps: []func() ([]Job, bool, error){
			func() ([]Job, bool, error) { return children, false, nil },
			func() ([]Job, bool, error) {
				// All children must have completed before the parent resumes.
				if atomic.LoadInt32(&hits) != 3 {
					return nil, false, errors.New("parent resumed early")
				}
				atomic.AddInt32(&resumed, 1)
				return nil, true, nil
			},
		}}
		s := NewScheduler(workers)
		if err := s.Run(root); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if hits != 3 || resumed != 1 {
			t.Errorf("workers=%d: hits=%d resumed=%d", workers, hits, resumed)
		}
	}
}

func TestSchedulerDeduplicatesByKey(t *testing.T) {
	// Two parents wait on the same child goal: the child must run once and
	// both parents must resume — the paper's group job queue (§4.2).
	var childRuns int32
	mkParent := func(name string) *stepJob {
		return &stepJob{key: name, steps: []func() ([]Job, bool, error){
			func() ([]Job, bool, error) {
				return []Job{leaf("shared-goal", &childRuns)}, false, nil
			},
			func() ([]Job, bool, error) { return nil, true, nil },
		}}
	}
	root := &stepJob{key: "root", steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) { return []Job{mkParent("p1"), mkParent("p2")}, false, nil },
		func() ([]Job, bool, error) { return nil, true, nil },
	}}
	s := NewScheduler(4)
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	if childRuns != 1 {
		t.Errorf("shared goal ran %d times, want 1", childRuns)
	}
}

func TestSchedulerPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	bad := &stepJob{key: "bad", steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) { return nil, false, boom },
	}}
	root := &stepJob{key: "root", steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) { return []Job{bad}, false, nil },
	}}
	s := NewScheduler(2)
	if err := s.Run(root); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestSchedulerTimeout(t *testing.T) {
	// An endless chain of jobs must be cut off by the deadline.
	var counter int64
	var mk func(i int64) Job
	mk = func(i int64) Job {
		return &stepJob{key: fmt.Sprintf("j%d", i), steps: []func() ([]Job, bool, error){
			func() ([]Job, bool, error) {
				atomic.AddInt64(&counter, 1)
				time.Sleep(200 * time.Microsecond)
				return []Job{mk(i + 1)}, false, nil
			},
			func() ([]Job, bool, error) { return nil, true, nil },
		}}
	}
	s := NewScheduler(1)
	s.SetDeadline(time.Now().Add(30 * time.Millisecond))
	err := s.Run(mk(0))
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("want ErrTimeout, got %v", err)
	}
}

func TestSchedulerStepLimit(t *testing.T) {
	// The step budget is the deterministic analogue of the deadline: an
	// endless chain must be cut off with ErrTimeout after exactly the budget.
	var counter int64
	var mk func(i int64) Job
	mk = func(i int64) Job {
		return &stepJob{key: fmt.Sprintf("s%d", i), steps: []func() ([]Job, bool, error){
			func() ([]Job, bool, error) {
				atomic.AddInt64(&counter, 1)
				return []Job{mk(i + 1)}, false, nil
			},
			func() ([]Job, bool, error) { return nil, true, nil },
		}}
	}
	s := NewScheduler(1)
	s.SetStepLimit(25)
	err := s.Run(mk(0))
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("want ErrTimeout, got %v", err)
	}
	if got := s.Stats().TotalSteps(); got != 25 {
		t.Errorf("executed %d steps, want exactly 25", got)
	}
}

func TestSchedulerStats(t *testing.T) {
	// A root fanning out to 3 leaves, all JobOpt: 3 leaf steps + 2 root steps.
	var hits int32
	root := &stepJob{key: "root", steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) {
			return []Job{leaf("a", &hits), leaf("b", &hits), leaf("c", &hits)}, false, nil
		},
		func() ([]Job, bool, error) { return nil, true, nil },
	}}
	s := NewScheduler(2)
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Steps[JobOpt] != 5 || st.TotalSteps() != 5 {
		t.Errorf("Steps[JobOpt]=%d total=%d, want 5", st.Steps[JobOpt], st.TotalSteps())
	}
	if st.PeakQueue < 2 {
		t.Errorf("PeakQueue=%d, want >= 2 (three leaves queued while one runs)", st.PeakQueue)
	}
	if st.Workers != 2 {
		t.Errorf("Workers=%d, want 2", st.Workers)
	}
	if st.Wall <= 0 {
		t.Errorf("Wall=%v, want > 0", st.Wall)
	}
	if u := st.Utilization(); u < 0 || u > 1 {
		t.Errorf("Utilization=%v out of [0,1]", u)
	}

	var merged Stats
	merged.Merge(st)
	merged.Merge(st)
	if merged.TotalSteps() != 10 || merged.Workers != 2 || merged.PeakQueue != st.PeakQueue {
		t.Errorf("Merge: total=%d workers=%d peak=%d", merged.TotalSteps(), merged.Workers, merged.PeakQueue)
	}
}

func TestJobKindString(t *testing.T) {
	want := []string{"exp", "imp", "opt", "xform", "stats"}
	for k := 0; k < NumJobKinds; k++ {
		if got := JobKind(k).String(); got != want[k] {
			t.Errorf("JobKind(%d) = %q, want %q", k, got, want[k])
		}
	}
	if got := JobKind(NumJobKinds).String(); got != "unknown" {
		t.Errorf("out-of-range kind = %q, want unknown", got)
	}
}

func TestSchedulerDeepRecursion(t *testing.T) {
	// A deep linear dependency chain exercises suspend/resume bookkeeping.
	const depth = 2000
	var done int32
	var mk func(i int) Job
	mk = func(i int) Job {
		return &stepJob{key: fmt.Sprintf("d%d", i), steps: []func() ([]Job, bool, error){
			func() ([]Job, bool, error) {
				if i == depth {
					atomic.AddInt32(&done, 1)
					return nil, true, nil
				}
				return []Job{mk(i + 1)}, false, nil
			},
			func() ([]Job, bool, error) { return nil, true, nil },
		}}
	}
	s := NewScheduler(2)
	if err := s.Run(mk(0)); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Error("chain did not complete")
	}
}

func TestSchedulerManyParallelLeaves(t *testing.T) {
	var hits int32
	var children []Job
	for i := 0; i < 500; i++ {
		children = append(children, leaf(fmt.Sprintf("leaf%d", i), &hits))
	}
	var mu sync.Mutex
	resumeCount := 0
	root := &stepJob{key: "root", steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) { return children, false, nil },
		func() ([]Job, bool, error) {
			mu.Lock()
			resumeCount++
			mu.Unlock()
			return nil, true, nil
		},
	}}
	s := NewScheduler(8)
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	if hits != 500 || resumeCount != 1 {
		t.Errorf("hits=%d resume=%d", hits, resumeCount)
	}
	if s.JobsRun < 501 {
		t.Errorf("JobsRun = %d", s.JobsRun)
	}
}

func TestSchedulerStressSharedGoals(t *testing.T) {
	// High-contention stress for the race gate: many parents per level all
	// depend on the same small set of shared goals, so workers constantly
	// collide on the dedup table and the suspend/resume condvar path.
	const (
		levels  = 6
		fanout  = 20
		sharing = 4 // distinct goals per level that all parents contend on
	)
	var runs int32
	var mk func(level, i int) Job
	mk = func(level, i int) Job {
		key := fmt.Sprintf("L%d/g%d", level, i%sharing)
		return &stepJob{key: key, steps: []func() ([]Job, bool, error){
			func() ([]Job, bool, error) {
				atomic.AddInt32(&runs, 1)
				if level == levels {
					return nil, true, nil
				}
				var deps []Job
				for j := 0; j < fanout; j++ {
					deps = append(deps, mk(level+1, i*fanout+j))
				}
				return deps, false, nil
			},
			func() ([]Job, bool, error) { return nil, true, nil },
		}}
	}
	root := &stepJob{key: "stress-root", steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) {
			var deps []Job
			for i := 0; i < fanout; i++ {
				deps = append(deps, mk(1, i))
			}
			return deps, false, nil
		},
		func() ([]Job, bool, error) { return nil, true, nil },
	}}
	s := NewScheduler(16)
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	// Each of the `sharing` keys per level must run exactly once (the root
	// itself is not counted; it never increments runs).
	want := int32(levels * sharing)
	if runs != want {
		t.Errorf("distinct goals ran %d times, want %d (dedup broke under contention)", runs, want)
	}
}
