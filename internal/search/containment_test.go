package search

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"orca/internal/fault"
	"orca/internal/gpos"
)

// panicInsideJob is a named frame so tests can assert the contained
// exception's stack points at the panic site, not the recovery site.
func panicInsideJob() {
	panic("boom inside job")
}

func TestSchedulerContainsJobPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		bomb := &stepJob{key: "bomb", steps: []func() ([]Job, bool, error){
			func() ([]Job, bool, error) {
				panicInsideJob()
				return nil, true, nil
			},
		}}
		s := NewScheduler(workers)
		err := s.Run(bomb)
		if err == nil {
			t.Fatalf("workers=%d: want error from panicking job", workers)
		}
		ex := gpos.AsException(err)
		if ex == nil {
			t.Fatalf("workers=%d: want gpos.Exception, got %T: %v", workers, err, err)
		}
		if ex.Comp != gpos.CompSearch || ex.Code != gpos.CodePanic {
			t.Errorf("workers=%d: want %s/%s, got %s/%s",
				workers, gpos.CompSearch, gpos.CodePanic, ex.Comp, ex.Code)
		}
		if !strings.Contains(ex.Msg, "opt job") || !strings.Contains(ex.Msg, "bomb") {
			t.Errorf("workers=%d: message should name kind and key: %q", workers, ex.Msg)
		}
		if len(ex.Stack) == 0 || !strings.Contains(ex.Stack[0], "panicInsideJob") {
			t.Errorf("workers=%d: stack should start at the panic site, got %v", workers, ex.Stack)
		}
	}
}

func TestSchedulerPanicFailsOnlyThisRun(t *testing.T) {
	// After a contained panic the same process can run a fresh scheduler —
	// §6.1's "fail the query, not the process".
	bomb := &stepJob{key: "bomb", steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) { panic("first run dies") },
	}}
	if err := NewScheduler(2).Run(bomb); err == nil {
		t.Fatal("want error from panicking run")
	}
	var hits int32
	if err := NewScheduler(2).Run(leaf("ok", &hits)); err != nil || hits != 1 {
		t.Fatalf("follow-up run broken: err=%v hits=%d", err, hits)
	}
}

func TestSchedulerJobExecFaultPoint(t *testing.T) {
	disarm, err := fault.Arm([]fault.Spec{{Point: fault.PointSearchJobExec, Action: fault.ActError}})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	var hits int32
	runErr := NewScheduler(1).Run(leaf("victim", &hits))
	ex := gpos.AsException(runErr)
	if ex == nil || ex.Comp != gpos.CompSearch || ex.Code != fault.CodeInjected {
		t.Fatalf("want injected search fault, got %v", runErr)
	}
	if hits != 0 {
		t.Error("job body ran despite injected fault before the step")
	}
}

func TestSchedulerJobExecPanicFaultContained(t *testing.T) {
	disarm, err := fault.Arm([]fault.Spec{{Point: fault.PointSearchJobExec, Action: fault.ActPanic}})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	var hits int32
	runErr := NewScheduler(4).Run(leaf("victim", &hits))
	ex := gpos.AsException(runErr)
	if ex == nil || ex.Code != gpos.CodePanic {
		t.Fatalf("want contained panic exception, got %v", runErr)
	}
	if len(ex.Stack) == 0 || !strings.Contains(ex.Stack[0], "injectPanic") {
		t.Errorf("stack should start at the fault's panic site, got %v", ex.Stack)
	}
}

func TestSchedulerQuotaAbortDrains(t *testing.T) {
	// The quota trips after a few steps; the run must end with the quota's
	// error through the drain path, recognizable via Drained.
	var steps int32
	quotaErr := fmt.Errorf("87 groups over limit: %w", ErrBudget)
	s := NewScheduler(2)
	s.SetQuotaCheck(func() error {
		if atomic.LoadInt32(&steps) >= 5 {
			return quotaErr
		}
		return nil
	})
	err := s.Run(spawnForeverJob(&steps))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget through quota, got %v", err)
	}
	if !Drained(err) {
		t.Error("quota abort must count as drained")
	}
}

// spawnForeverJob endlessly spawns fresh children, simulating an unbounded
// search.
func spawnForeverJob(counter *int32) *stepJob {
	n := atomic.AddInt32(counter, 1)
	return &stepJob{key: fmt.Sprintf("spawn%d", n), steps: []func() ([]Job, bool, error){
		func() ([]Job, bool, error) {
			return []Job{spawnForeverJob(counter)}, false, nil
		},
		func() ([]Job, bool, error) { return nil, true, nil },
	}}
}

func TestDrained(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrTimeout, true},
		{ErrBudget, true},
		{fmt.Errorf("stage x: %w", ErrTimeout), true},
		{fmt.Errorf("memory: %w", ErrBudget), true},
		{errors.New("genuine failure"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Drained(c.err); got != c.want {
			t.Errorf("Drained(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
