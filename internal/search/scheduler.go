// Package search implements Orca's search mechanism and job scheduler
// (paper §4.2): optimization is broken into small, re-entrant jobs —
// Exp(g), Exp(gexpr), Imp(g), Imp(gexpr), Opt(g, req), Opt(gexpr, req),
// Xform(gexpr, t) and Stats(g) — linked by child-parent dependencies. A
// parent job suspends while its children run (possibly in parallel on other
// workers) and resumes when they all finish. Jobs are deduplicated by goal:
// when a job with some goal is already active, later jobs with the same goal
// attach as waiters instead of redoing the work, which is the paper's group
// job queue.
package search

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"orca/internal/fault"
	"orca/internal/gpos"
)

// ErrTimeout reports that the optimization stage exceeded its deadline or
// step limit. The scheduler drains rather than aborts: no new jobs start,
// in-flight job steps complete before Run returns, so the Memo is left in a
// consistent state and the best plan found so far remains extractable.
var ErrTimeout = errors.New("search: optimization timed out")

// ErrBudget reports that a resource guard — the session memory budget or the
// Memo group limit, polled through the stage's quota check — cut the stage
// short. It drains exactly like ErrTimeout: the best plan found so far stays
// extractable.
var ErrBudget = errors.New("search: resource budget exhausted")

// Drained reports whether err is one of the graceful-abort sentinels
// (timeout or resource budget) after which the Memo still holds consistent
// best-so-far state, as opposed to a genuine failure.
func Drained(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrBudget)
}

// JobKind classifies scheduler jobs for telemetry (one per job family of
// paper §4.2, plus the statistics-derivation job).
type JobKind uint8

// Job kinds.
const (
	JobExp   JobKind = iota // Exp(g) / Exp(gexpr)
	JobImp                  // Imp(g) / Imp(gexpr)
	JobOpt                  // Opt(g, req) / Opt(gexpr, req)
	JobXform                // Xform(gexpr, t)
	JobStats                // Stats(g)
)

// NumJobKinds sizes per-kind arrays; keep in sync with the constants above.
const NumJobKinds = 5

// String names the kind for telemetry output.
func (k JobKind) String() string {
	switch k {
	case JobExp:
		return "exp"
	case JobImp:
		return "imp"
	case JobOpt:
		return "opt"
	case JobXform:
		return "xform"
	case JobStats:
		return "stats"
	default:
		return "unknown"
	}
}

// Stats is one scheduler run's telemetry. Multi-stage sessions merge the
// per-stage runs into an aggregate (core.Result).
type Stats struct {
	// Steps counts executed job steps by kind.
	Steps [NumJobKinds]int64
	// PeakQueue is the maximum length the ready queue reached.
	PeakQueue int
	// Workers is the worker count (maximum across merged runs).
	Workers int
	// Busy is the total time workers spent inside job steps.
	Busy time.Duration
	// Wall is the run's wall-clock time (summed across merged runs).
	Wall time.Duration
}

// TotalSteps returns the number of job steps across all kinds.
func (s Stats) TotalSteps() int64 {
	var n int64
	for _, c := range s.Steps {
		n += c
	}
	return n
}

// Utilization returns the fraction of worker capacity spent inside job
// steps, in [0, 1].
func (s Stats) Utilization() float64 {
	if s.Wall <= 0 || s.Workers <= 0 {
		return 0
	}
	u := float64(s.Busy) / (float64(s.Wall) * float64(s.Workers))
	if u > 1 {
		u = 1
	}
	return u
}

// Merge folds another run's telemetry into s.
func (s *Stats) Merge(o Stats) {
	for k := range s.Steps {
		s.Steps[k] += o.Steps[k]
	}
	if o.PeakQueue > s.PeakQueue {
		s.PeakQueue = o.PeakQueue
	}
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Busy += o.Busy
	s.Wall += o.Wall
}

// Job is one re-entrant unit of optimization work. Step performs as much
// work as possible without blocking; to wait for other jobs, it returns them
// as children and will be re-entered once they all complete.
type Job interface {
	// Key identifies the job's goal for deduplication.
	Key() string
	// Kind classifies the job for telemetry.
	Kind() JobKind
	// Step advances the job. done reports completion; children are jobs the
	// job must wait for before being re-entered.
	Step(s *Scheduler) (children []Job, done bool, err error)
}

type jobState struct {
	job     Job
	parents []*jobState
	pending int
	done    bool
	queued  bool
	running bool
}

// Scheduler runs jobs on a fixed number of workers.
type Scheduler struct {
	workers   int
	deadline  time.Time
	stepLimit int64
	quota     func() error

	mu       sync.Mutex
	cond     *sync.Cond
	registry map[string]*jobState
	queue    []*jobState
	active   int
	err      error
	stopped  bool
	stats    Stats

	// JobsRun counts job steps for diagnostics.
	JobsRun int64
}

// NewScheduler builds a scheduler with the given parallelism (minimum 1).
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{workers: workers, registry: make(map[string]*jobState)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetDeadline ends the run with ErrTimeout once the deadline passes
// (zero = none).
func (s *Scheduler) SetDeadline(d time.Time) { s.deadline = d }

// SetStepLimit ends the run with ErrTimeout once the given number of job
// steps have started (0 = none). Unlike a wall-clock deadline it is
// deterministic, which tests and reproducible stage budgets rely on.
func (s *Scheduler) SetStepLimit(n int64) { s.stepLimit = n }

// SetQuotaCheck installs a resource-guard poll evaluated before each job
// step (nil = none). A non-nil return ends the run with that error through
// the drain path, so best-so-far results survive. Conventionally the error
// wraps ErrBudget.
func (s *Scheduler) SetQuotaCheck(check func() error) { s.quota = check }

// Stats returns the run's telemetry. Call it after Run has returned.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Run executes the root job (and its transitively spawned children) to
// completion. It returns the first error encountered, or ErrTimeout when the
// deadline or step limit cut the search short. On timeout the scheduler
// drains: in-flight job steps finish (their results land in the Memo), only
// queued work is abandoned.
func (s *Scheduler) Run(root Job) error {
	start := time.Now()
	s.mu.Lock()
	s.enqueueLocked(root, nil)
	s.mu.Unlock()

	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Workers = s.workers
	s.stats.Wall = time.Since(start)
	return s.err
}

// enqueueLocked registers a job (deduplicating by key) and attaches the
// parent as a waiter. It returns whether the parent must wait.
//
//orcavet:hotpath:alloc the jobState node is allocated once per distinct job key
func (s *Scheduler) enqueueLocked(j Job, parent *jobState) (wait bool) {
	st, ok := s.registry[j.Key()]
	if !ok {
		st = &jobState{job: j}
		s.registry[j.Key()] = st
		s.pushLocked(st)
		s.cond.Broadcast()
	}
	if st.done {
		return false
	}
	if parent != nil {
		st.parents = append(st.parents, parent)
	}
	return true
}

// pushLocked appends a job to the ready queue, tracking the peak depth.
func (s *Scheduler) pushLocked(st *jobState) {
	st.queued = true
	s.queue = append(s.queue, st)
	if len(s.queue) > s.stats.PeakQueue {
		s.stats.PeakQueue = len(s.queue)
	}
}

// worker is the scheduler step loop: LIFO pop under the scheduler mutex,
// one job step outside it, bookkeeping back under it.
//
//orcavet:hotpath:lock the scheduler mutex and condvar are the drain protocol
func (s *Scheduler) worker() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && s.active > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || (len(s.queue) == 0 && s.active == 0) {
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.stepLimit > 0 && s.JobsRun >= s.stepLimit ||
			!s.deadline.IsZero() && time.Now().After(s.deadline) {
			if s.err == nil {
				s.err = ErrTimeout
			}
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.quota != nil {
			if qerr := s.quota(); qerr != nil {
				if s.err == nil {
					s.err = qerr
				}
				s.stopped = true
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
		}
		// LIFO pop keeps the search depth-first, bounding live jobs.
		st := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		st.queued = false
		st.running = true
		s.active++
		s.JobsRun++
		s.stats.Steps[st.job.Kind()]++
		s.mu.Unlock()

		stepStart := time.Now()
		children, done, err := s.step(st)

		s.mu.Lock()
		s.stats.Busy += time.Since(stepStart)
		st.running = false
		s.active--
		if err != nil {
			if s.err == nil {
				s.err = err
			}
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if done {
			s.completeLocked(st)
		} else {
			waiting := 0
			for _, c := range children {
				if s.enqueueLocked(c, st) {
					waiting++
				}
			}
			st.pending += waiting
			if st.pending == 0 {
				// Children all finished already (or none): rerun.
				s.pushLocked(st)
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// step executes one job step with panic containment (paper §6.1's "fail the
// query, not the process"): a panic inside a job — in a transformation rule,
// statistics derivation, costing, or an injected fault — is converted into a
// gpos.Exception that preserves the original panic site's stack and is
// surfaced through the scheduler's normal error path, failing only this
// stage. The worker goroutine survives; the degradation ladder in core and
// the AMPERe capture hook take it from there.
//
//orcavet:hotpath:closure the deferred recover closure is the §6.1 panic containment itself
func (s *Scheduler) step(st *jobState) (children []Job, done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			ex := gpos.PanicException(gpos.CompSearch, r)
			ex.Msg = fmt.Sprintf("panic in %s job %q: %v", st.job.Kind(), st.job.Key(), r)
			children, done, err = nil, false, ex
		}
	}()
	if err := fault.Inject(fault.PointSearchJobExec); err != nil {
		return nil, false, err
	}
	return st.job.Step(s)
}

func (s *Scheduler) completeLocked(st *jobState) {
	if st.done {
		return
	}
	st.done = true
	for _, p := range st.parents {
		p.pending--
		if p.pending == 0 && !p.done && !p.queued && !p.running {
			s.pushLocked(p)
		}
	}
	st.parents = nil
}
