// Package search implements Orca's search mechanism and job scheduler
// (paper §4.2): optimization is broken into small, re-entrant jobs —
// Exp(g), Exp(gexpr), Imp(g), Imp(gexpr), Opt(g, req), Opt(gexpr, req) and
// Xform(gexpr, t) — linked by child-parent dependencies. A parent job
// suspends while its children run (possibly in parallel on other workers)
// and resumes when they all finish. Jobs are deduplicated by goal: when a
// job with some goal is already active, later jobs with the same goal attach
// as waiters instead of redoing the work, which is the paper's group job
// queue.
package search

import (
	"errors"
	"sync"
	"time"
)

// ErrTimeout reports that the optimization stage exceeded its deadline.
var ErrTimeout = errors.New("search: optimization timed out")

// Job is one re-entrant unit of optimization work. Step performs as much
// work as possible without blocking; to wait for other jobs, it returns them
// as children and will be re-entered once they all complete.
type Job interface {
	// Key identifies the job's goal for deduplication.
	Key() string
	// Step advances the job. done reports completion; children are jobs the
	// job must wait for before being re-entered.
	Step(s *Scheduler) (children []Job, done bool, err error)
}

type jobState struct {
	job     Job
	parents []*jobState
	pending int
	done    bool
	queued  bool
	running bool
}

// Scheduler runs jobs on a fixed number of workers.
type Scheduler struct {
	workers  int
	deadline time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	registry map[string]*jobState
	queue    []*jobState
	active   int
	err      error
	stopped  bool

	// JobsRun counts job steps for diagnostics.
	JobsRun int64
}

// NewScheduler builds a scheduler with the given parallelism (minimum 1).
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{workers: workers, registry: make(map[string]*jobState)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetDeadline aborts the run once the deadline passes (zero = none).
func (s *Scheduler) SetDeadline(d time.Time) { s.deadline = d }

// Run executes the root job (and its transitively spawned children) to
// completion. It returns the first error encountered, or ErrTimeout.
func (s *Scheduler) Run(root Job) error {
	s.mu.Lock()
	s.enqueueLocked(root, nil)
	s.mu.Unlock()

	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// enqueueLocked registers a job (deduplicating by key) and attaches the
// parent as a waiter. It returns whether the parent must wait.
func (s *Scheduler) enqueueLocked(j Job, parent *jobState) (wait bool) {
	st, ok := s.registry[j.Key()]
	if !ok {
		st = &jobState{job: j}
		s.registry[j.Key()] = st
		st.queued = true
		s.queue = append(s.queue, st)
		s.cond.Broadcast()
	}
	if st.done {
		return false
	}
	if parent != nil {
		st.parents = append(st.parents, parent)
	}
	return true
}

func (s *Scheduler) worker() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && s.active > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || (len(s.queue) == 0 && s.active == 0) {
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.err = ErrTimeout
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		// LIFO pop keeps the search depth-first, bounding live jobs.
		st := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		st.queued = false
		st.running = true
		s.active++
		s.JobsRun++
		s.mu.Unlock()

		children, done, err := st.job.Step(s)

		s.mu.Lock()
		st.running = false
		s.active--
		if err != nil {
			if s.err == nil {
				s.err = err
			}
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if done {
			s.completeLocked(st)
		} else {
			waiting := 0
			for _, c := range children {
				if s.enqueueLocked(c, st) {
					waiting++
				}
			}
			st.pending += waiting
			if st.pending == 0 {
				// Children all finished already (or none): rerun.
				st.queued = true
				s.queue = append(s.queue, st)
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

func (s *Scheduler) completeLocked(st *jobState) {
	if st.done {
		return
	}
	st.done = true
	for _, p := range st.parents {
		p.pending--
		if p.pending == 0 && !p.done && !p.queued && !p.running {
			p.queued = true
			s.queue = append(s.queue, p)
		}
	}
	st.parents = nil
}
