package ampere

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"orca/internal/core"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

// failWith binds the test query and optimizes it with the given fault
// schedule (ladder off), returning the bound query and the failure.
func failWith(t *testing.T, p *md.MemProvider, specs []fault.Spec) (*core.Query, core.Config, *gpos.Exception) {
	t.Helper()
	acc := md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p)
	q, err := sql.Bind(testQuery, acc, md.NewColumnFactory())
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	cfg := core.DefaultConfig(4)
	cfg.Faults = specs
	cfg.DisableDegradation = true
	_, oerr := core.Optimize(q, cfg)
	if oerr == nil {
		t.Fatal("optimization should have failed under the armed faults")
	}
	ex := gpos.AsException(oerr)
	if ex == nil {
		t.Fatalf("want gpos.Exception, got %T: %v", oerr, oerr)
	}
	return q, cfg, ex
}

// roundTrip captures a failure dump, writes it, parses it back and replays
// it, checking the reproduced exception matches the original.
func roundTrip(t *testing.T, p *md.MemProvider, q *core.Query, cfg core.Config, ex *gpos.Exception) *Dump {
	t.Helper()
	d, err := Capture(context.Background(), q, cfg, p, ex)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if d.ExcComp != string(ex.Comp) || d.ExcCode != ex.Code {
		t.Fatalf("dump records %s/%s, want %s/%s", d.ExcComp, d.ExcCode, ex.Comp, ex.Code)
	}
	if len(d.Stack) == 0 {
		t.Fatal("failure dump missing the exception stack")
	}

	path := filepath.Join(t.TempDir(), "failure.dxl")
	if err := d.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(string(data))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if parsed.ExcComp != d.ExcComp || parsed.ExcCode != d.ExcCode || parsed.Faults != d.Faults {
		t.Fatalf("round-trip lost failure metadata: %+v vs %+v", parsed, d)
	}
	if strings.Join(parsed.Stack, "\n") != strings.Join(d.Stack, "\n") {
		t.Error("round-trip lost the stack trace")
	}

	_, _, rerr := Replay(parsed)
	if rerr == nil {
		t.Fatal("replaying a failure dump should reproduce the failure")
	}
	rex := gpos.AsException(rerr)
	if rex == nil {
		t.Fatalf("replayed error is not an exception: %v", rerr)
	}
	if rex.Comp != ex.Comp || rex.Code != ex.Code {
		t.Errorf("replay reproduced %s/%s, want %s/%s", rex.Comp, rex.Code, ex.Comp, ex.Code)
	}
	return parsed
}

// TestFailureDumpRoundTrip: an injected error fault produces a dump whose
// replay reproduces the same exception component and code.
func TestFailureDumpRoundTrip(t *testing.T) {
	p := testProvider(t)
	specs := []fault.Spec{{Point: fault.PointMemoStatsDerive, Action: fault.ActError}}
	q, cfg, ex := failWith(t, p, specs)
	if ex.Code != fault.CodeInjected {
		t.Fatalf("want injected fault failure, got %s/%s", ex.Comp, ex.Code)
	}
	d := roundTrip(t, p, q, cfg, ex)
	if d.Faults != "memo/stats/derive:error" {
		t.Errorf("dump fault schedule %q", d.Faults)
	}
}

// TestPanicFailureDumpRoundTrip: a panic-originated dump keeps the original
// panic site's stack through capture, serialization and parsing, and replay
// reproduces the contained panic.
func TestPanicFailureDumpRoundTrip(t *testing.T) {
	p := testProvider(t)
	specs := []fault.Spec{{Point: fault.PointSearchJobExec, Action: fault.ActPanic}}
	q, cfg, ex := failWith(t, p, specs)
	if ex.Code != gpos.CodePanic {
		t.Fatalf("want contained panic, got %s/%s", ex.Comp, ex.Code)
	}
	if !strings.Contains(ex.Stack[0], "injectPanic") {
		t.Fatalf("exception stack should start at the panic site: %v", ex.Stack)
	}
	d := roundTrip(t, p, q, cfg, ex)
	if !strings.Contains(d.Stack[0], "injectPanic") {
		t.Errorf("parsed dump lost the original panic stack: %v", d.Stack)
	}
}
