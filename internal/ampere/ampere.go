// Package ampere implements AMPERe (paper §6.1): Automatic capture of
// Minimal Portable Executable Repros. A dump bundles everything needed to
// reproduce an optimization session away from the system that ran it — the
// input query, the optimizer configuration, the minimal set of metadata
// objects the session touched, and (when capture was triggered by an error)
// the exception's stack trace. Any Orca instance can replay a dump through a
// file-based metadata provider, and a dump with an expected plan doubles as
// a self-contained regression test case.
package ampere

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
)

// Dump is one AMPERe repro.
type Dump struct {
	// Stack is the captured exception stack trace (empty for on-demand
	// dumps).
	Stack []string
	// ExcComp and ExcCode identify the captured exception (empty for
	// on-demand dumps). Replaying a failure dump must reproduce an exception
	// with the same component and code.
	ExcComp string
	ExcCode string
	// Config captures the optimizer configuration knobs that affect plans.
	Segments      int
	Workers       int
	DisabledRules []string
	// Faults is the armed fault-injection schedule in ORCA_FAULTS syntax
	// (fault.FormatSpecs). Replay re-arms it so injected failures reproduce.
	Faults string
	// Metadata and Query are the serialized DXL payloads.
	MetadataDoc *dxl.Node
	QueryDoc    *dxl.Node
	// ExpectedPlan, when set, turns the dump into a test case: replaying it
	// must reproduce this exact plan fingerprint.
	ExpectedPlan string
}

// Capture builds a dump for a bound query. The metadata section is minimal:
// only the objects the session's accessor touched are harvested (plus, for
// an unoptimized query, the objects reachable from binding). If err is a
// gpos exception its stack trace is embedded, as in paper Listing 2. The
// metadata harvest runs under ctx so a cancelled capture stops promptly.
func Capture(ctx context.Context, q *core.Query, cfg core.Config, provider md.Provider, err error) (*Dump, error) {
	meta, herr := dxl.Harvest(ctx, q.Accessor, provider)
	if herr != nil {
		return nil, herr
	}
	d := &Dump{
		Segments:      cfg.Segments,
		Workers:       cfg.Workers,
		DisabledRules: cfg.DisabledRules,
		Faults:        fault.FormatSpecs(cfg.Faults),
		MetadataDoc:   meta,
		QueryDoc:      dxl.SerializeQuery(q),
	}
	if ex := gpos.AsException(err); ex != nil {
		d.Stack = ex.Stack
		d.ExcComp = string(ex.Comp)
		d.ExcCode = ex.Code
	}
	return d, nil
}

// Render serializes the dump as a DXL document.
func (d *Dump) Render() string {
	thread := dxl.El("Thread").Set("Id", "0")
	if len(d.Stack) > 0 || d.ExcCode != "" {
		st := dxl.El("Stacktrace")
		if d.ExcComp != "" {
			st.Set("Component", d.ExcComp)
		}
		if d.ExcCode != "" {
			st.Set("Code", d.ExcCode)
		}
		st.Text = strings.Join(d.Stack, "\n")
		thread.Add(st)
	}
	flags := dxl.El("TraceFlags").
		Setf("Segments", "%d", d.Segments).
		Setf("Workers", "%d", d.Workers)
	if len(d.DisabledRules) > 0 {
		flags.Set("DisabledRules", strings.Join(d.DisabledRules, ","))
	}
	if d.Faults != "" {
		flags.Set("Faults", d.Faults)
	}
	thread.Add(flags)
	thread.Add(d.MetadataDoc)
	// Unwrap the query message if it is wrapped.
	qn := d.QueryDoc
	if qn.Name == "DXLMessage" {
		qn = qn.Child("Query")
	}
	thread.Add(qn)
	if d.ExpectedPlan != "" {
		ep := dxl.El("ExpectedPlan")
		ep.Text = d.ExpectedPlan
		thread.Add(ep)
	}
	return dxl.El("DXLMessage").Add(thread).Render()
}

// WriteFile renders the dump to disk.
func (d *Dump) WriteFile(path string) error {
	return os.WriteFile(path, []byte(d.Render()), 0o644)
}

// Parse reads a dump document.
func Parse(doc string) (*Dump, error) {
	root, err := dxl.ParseXML(doc)
	if err != nil {
		return nil, err
	}
	thread := root.Child("Thread")
	if thread == nil {
		return nil, fmt.Errorf("ampere: dump has no Thread element")
	}
	d := &Dump{Segments: 1, Workers: 1}
	if st := thread.Child("Stacktrace"); st != nil {
		if st.Text != "" {
			d.Stack = strings.Split(st.Text, "\n")
		}
		d.ExcComp = st.Attr("Component")
		d.ExcCode = st.Attr("Code")
	}
	if tf := thread.Child("TraceFlags"); tf != nil {
		if v, err := strconv.Atoi(tf.Attr("Segments")); err == nil && v > 0 {
			d.Segments = v
		}
		if v, err := strconv.Atoi(tf.Attr("Workers")); err == nil && v > 0 {
			d.Workers = v
		}
		if dr := tf.Attr("DisabledRules"); dr != "" {
			d.DisabledRules = strings.Split(dr, ",")
		}
		d.Faults = tf.Attr("Faults")
	}
	d.MetadataDoc = thread.Child("Metadata")
	d.QueryDoc = thread.Child("Query")
	if d.MetadataDoc == nil || d.QueryDoc == nil {
		return nil, fmt.Errorf("ampere: dump missing Metadata or Query section")
	}
	if ep := thread.Child("ExpectedPlan"); ep != nil {
		d.ExpectedPlan = ep.Text
	}
	return d, nil
}

// Replay re-optimizes the dumped query against the dump's own metadata
// (paper Figure 10: "the optimizer loads the input query from the dump,
// creates a file-based MD Provider for the metadata, sets optimizer's
// configurations and then spawns the optimization threads").
func Replay(d *Dump) (*core.Result, *core.Query, error) {
	p := md.NewMemProvider()
	if err := dxl.ParseMetadata(d.MetadataDoc, p); err != nil {
		return nil, nil, err
	}
	cache := md.NewCache(&gpos.MemoryAccountant{})
	acc := md.NewAccessor(cache, p)
	f := md.NewColumnFactory()
	q, err := dxl.ParseQuery(d.QueryDoc, acc, f)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig(d.Segments)
	cfg.Workers = d.Workers
	cfg.DisabledRules = d.DisabledRules
	if d.Faults != "" {
		specs, err := fault.ParseSpecs(d.Faults)
		if err != nil {
			return nil, nil, fmt.Errorf("ampere: bad fault schedule in dump: %w", err)
		}
		cfg.Faults = specs
		// A failure dump exists to reproduce the failure: the degradation
		// ladder must not paper over it during replay.
		cfg.DisableDegradation = true
	}
	res, err := core.Optimize(q, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, q, nil
}

// ReplayFile replays a dump from disk.
func ReplayFile(path string) (*core.Result, *core.Query, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	d, err := Parse(string(data))
	if err != nil {
		return nil, nil, err
	}
	return Replay(d)
}

// CheckResult is the outcome of running a dump as a test case.
type CheckResult struct {
	Passed       bool
	GotPlan      string
	ExpectedPlan string
	Cost         float64
}

// Check replays a dump and compares the produced plan against the expected
// plan recorded in it — the dump-as-test-case workflow of §6.1: "any bug
// with an accompanying AMPERe dump ... can be automatically turned into a
// self-contained test case".
func Check(d *Dump) (*CheckResult, error) {
	res, _, err := Replay(d)
	if err != nil {
		return nil, err
	}
	got := dxl.PlanFingerprint(res.Plan)
	return &CheckResult{
		Passed:       d.ExpectedPlan == "" || strings.TrimSpace(got) == strings.TrimSpace(d.ExpectedPlan),
		GotPlan:      got,
		ExpectedPlan: d.ExpectedPlan,
		Cost:         res.Cost,
	}, nil
}
