package ampere

import (
	"context"
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

func testProvider(t testing.TB) *md.MemProvider {
	t.Helper()
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "r", Rows: 1000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
			{Name: "b", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "untouched", Rows: 10,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{{Name: "x", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10}},
	})
	return p
}

func bindAndOptimize(t testing.TB, p *md.MemProvider, query string) (*core.Query, *core.Result, core.Config) {
	t.Helper()
	cache := md.NewCache(&gpos.MemoryAccountant{})
	acc := md.NewAccessor(cache, p)
	q, err := sql.Bind(query, acc, md.NewColumnFactory())
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	cfg := core.DefaultConfig(4)
	res, err := core.Optimize(q, cfg)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return q, res, cfg
}

const testQuery = "SELECT b, count(*) AS n FROM r WHERE a < 500 GROUP BY b ORDER BY b"

func TestDumpRoundTripAndReplay(t *testing.T) {
	p := testProvider(t)
	_, res, cfg := bindAndOptimize(t, p, testQuery)

	// Capture needs a freshly bound (un-normalized) query.
	cache := md.NewCache(&gpos.MemoryAccountant{})
	q2, err := sql.Bind(testQuery, md.NewAccessor(cache, p), md.NewColumnFactory())
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	// Touch the metadata binding would have touched.
	if _, err := q2.Accessor.RelationByName("r"); err != nil {
		t.Fatal(err)
	}
	d, err := Capture(context.Background(), q2, cfg, p, nil)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	d.ExpectedPlan = dxl.PlanFingerprint(res.Plan)

	doc := d.Render()
	// Minimality: the untouched table must not be in the dump.
	if strings.Contains(doc, "untouched") {
		t.Error("dump is not minimal: contains metadata the session never touched")
	}
	if !strings.Contains(doc, `Name="r"`) {
		t.Error("dump is missing touched relation r")
	}

	d2, err := Parse(doc)
	if err != nil {
		t.Fatalf("parse dump: %v", err)
	}
	check, err := Check(d2)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !check.Passed {
		t.Errorf("replayed plan differs from expected:\n--- got ---\n%s\n--- want ---\n%s",
			check.GotPlan, check.ExpectedPlan)
	}
}

func TestDumpCapturesStackTrace(t *testing.T) {
	p := testProvider(t)
	cache := md.NewCache(&gpos.MemoryAccountant{})
	q, err := sql.Bind(testQuery, md.NewAccessor(cache, p), md.NewColumnFactory())
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if _, err := q.Accessor.RelationByName("r"); err != nil {
		t.Fatal(err)
	}
	ex := gpos.Raise(gpos.CompOptimizer, "TestError", "synthetic failure")
	d, err := Capture(context.Background(), q, core.DefaultConfig(4), p, ex)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if len(d.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	doc := d.Render()
	if !strings.Contains(doc, "Stacktrace") || !strings.Contains(doc, "TestDumpCapturesStackTrace") {
		t.Errorf("rendered dump missing stack trace:\n%s", doc[:min(len(doc), 500)])
	}
	d2, err := Parse(doc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(d2.Stack) != len(d.Stack) {
		t.Errorf("stack lines changed in round trip: %d vs %d", len(d2.Stack), len(d.Stack))
	}
}

func TestCheckDetectsPlanChange(t *testing.T) {
	p := testProvider(t)
	_, res, cfg := bindAndOptimize(t, p, testQuery)

	cache := md.NewCache(&gpos.MemoryAccountant{})
	q2, err := sql.Bind(testQuery, md.NewAccessor(cache, p), md.NewColumnFactory())
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if _, err := q2.Accessor.RelationByName("r"); err != nil {
		t.Fatal(err)
	}
	// Disable a rule the winning plan used (the filter-merged scan); the
	// replayed plan changes and the test case must fail, triggering the
	// investigation workflow.
	cfg.DisabledRules = append(cfg.DisabledRules, "Select2Scan", "Select2IndexScan")
	d, err := Capture(context.Background(), q2, cfg, p, nil)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	d.ExpectedPlan = dxl.PlanFingerprint(res.Plan)
	check, err := Check(d)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if check.Passed {
		t.Error("expected plan discrepancy to be detected")
	}
	_ = res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
