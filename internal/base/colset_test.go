package base

import (
	"testing"
	"testing/quick"
)

func setFrom(bits []uint8) ColSet {
	var s ColSet
	for _, b := range bits {
		s.Add(ColID(b))
	}
	return s
}

func TestColSetBasics(t *testing.T) {
	s := MakeColSet(1, 5, 130)
	if !s.Contains(1) || !s.Contains(5) || !s.Contains(130) || s.Contains(2) {
		t.Error("membership broken")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	s.Remove(5)
	if s.Contains(5) || s.Len() != 2 {
		t.Error("Remove broken")
	}
	if got := MakeColSet(3, 1, 2).String(); got != "{1,2,3}" {
		t.Errorf("String = %q", got)
	}
	if !(ColSet{}).Empty() || MakeColSet(0).Empty() {
		t.Error("Empty broken")
	}
}

func TestColSetOrdered(t *testing.T) {
	s := MakeColSet(70, 3, 64, 0)
	want := []ColID{0, 3, 64, 70}
	got := s.Ordered()
	if len(got) != len(want) {
		t.Fatalf("Ordered = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ordered = %v, want %v", got, want)
		}
	}
}

// Algebraic properties over random sets.
func TestColSetAlgebra(t *testing.T) {
	f := func(a, b, c []uint8) bool {
		A, B, C := setFrom(a), setFrom(b), setFrom(c)
		// Union/intersect commutativity.
		if !A.Union(B).Equal(B.Union(A)) || !A.Intersect(B).Equal(B.Intersect(A)) {
			return false
		}
		// Distributivity: A ∩ (B ∪ C) = (A∩B) ∪ (A∩C).
		if !A.Intersect(B.Union(C)).Equal(A.Intersect(B).Union(A.Intersect(C))) {
			return false
		}
		// Difference: (A \ B) ∩ B = ∅ and (A\B) ∪ (A∩B) = A.
		if A.Difference(B).Intersects(B) {
			return false
		}
		if !A.Difference(B).Union(A.Intersect(B)).Equal(A) {
			return false
		}
		// Subset relations.
		if !A.Intersect(B).SubsetOf(A) || !A.SubsetOf(A.Union(B)) {
			return false
		}
		// Intersects consistency.
		if A.Intersects(B) != !A.Intersect(B).Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestColSetHashEqualConsistency(t *testing.T) {
	f := func(a []uint8) bool {
		A, B := setFrom(a), setFrom(a)
		return A.Equal(B) && A.Hash() == B.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestColSetForEachOrder(t *testing.T) {
	s := MakeColSet(9, 2, 200)
	var seen []ColID
	s.ForEach(func(c ColID) { seen = append(seen, c) })
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("ForEach not ascending: %v", seen)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("ForEach visited %d, want 3", len(seen))
	}
}
