package base

import (
	"sort"
	"strconv"
	"strings"
)

// ColID identifies a column reference inside one optimization session.
// Column IDs are allocated by the column factory (see internal/md) when a
// query is bound; every occurrence of the same column in the query shares an
// ID, and distinct query-level instances of the same table column receive
// distinct IDs, exactly like DXL's ColId attribute in the paper's Listing 1.
type ColID int32

// ColSet is a set of column IDs implemented as a small bitset. The zero value
// is the empty set. ColSet values are treated as immutable by the optimizer;
// mutating methods are used only while building a set.
type ColSet struct {
	words []uint64
}

// MakeColSet returns a set containing the given columns.
func MakeColSet(cols ...ColID) ColSet {
	var s ColSet
	for _, c := range cols {
		s.Add(c)
	}
	return s
}

// Add inserts c into the set.
func (s *ColSet) Add(c ColID) {
	w := int(c) / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(c) % 64)
}

// Remove deletes c from the set.
func (s *ColSet) Remove(c ColID) {
	w := int(c) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(c) % 64)
	}
}

// Contains reports whether c is in the set.
func (s ColSet) Contains(c ColID) bool {
	w := int(c) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(c)%64)) != 0
}

// Empty reports whether the set has no elements.
func (s ColSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (s ColSet) Len() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Union returns s ∪ o.
func (s ColSet) Union(o ColSet) ColSet {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	out := ColSet{words: make([]uint64, n)}
	copy(out.words, s.words)
	for i, w := range o.words {
		out.words[i] |= w
	}
	return out
}

// Intersect returns s ∩ o.
func (s ColSet) Intersect(o ColSet) ColSet {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := ColSet{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & o.words[i]
	}
	return out
}

// Difference returns s \ o.
func (s ColSet) Difference(o ColSet) ColSet {
	out := ColSet{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	for i := 0; i < len(out.words) && i < len(o.words); i++ {
		out.words[i] &^= o.words[i]
	}
	return out
}

// SubsetOf reports whether every element of s is in o.
func (s ColSet) SubsetOf(o ColSet) bool {
	for i, w := range s.words {
		if i >= len(o.words) {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one element.
func (s ColSet) Intersects(o ColSet) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain the same elements.
func (s ColSet) Equal(o ColSet) bool {
	return s.SubsetOf(o) && o.SubsetOf(s)
}

// Ordered returns the elements in ascending order.
func (s ColSet) Ordered() []ColID {
	out := make([]ColID, 0, 8)
	for i, w := range s.words {
		for ; w != 0; w &= w - 1 {
			bit := trailingZeros64(w)
			out = append(out, ColID(i*64+bit))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEach calls f for each element in ascending order.
func (s ColSet) ForEach(f func(ColID)) {
	for _, c := range s.Ordered() {
		f(c)
	}
}

// String renders the set as "{1,2,5}" for debugging and plan explains.
func (s ColSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range s.Ordered() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(c)))
	}
	b.WriteByte('}')
	return b.String()
}

// Hash returns a stable hash of the set contents.
func (s ColSet) Hash() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		h = (h ^ uint64(i)) * prime64
		h = (h ^ w) * prime64
	}
	return h
}

func trailingZeros64(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}
