package base

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDatumString(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null, "NULL"},
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("abc"), "'abc'"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDatumCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1}, // NULL sorts first
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewInt(2), NewFloat(2.5), -1}, // cross-kind numeric
		{NewFloat(2.5), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randomDatum(r *rand.Rand) Datum {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(20) - 10))
	case 2:
		return NewFloat(float64(r.Intn(40))/4 - 5)
	case 3:
		return NewString(string(rune('a' + r.Intn(5))))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// TestDatumCompareTotalOrder checks antisymmetry and transitivity over
// random datums — Compare must be a total order for sorting to be sane.
func TestDatumCompareTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomDatum(r), randomDatum(r), randomDatum(r)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Transitivity.
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		// Reflexivity.
		return a.Compare(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestDatumHashConsistent: equal datums must hash equally (hash joins depend
// on it).
func TestDatumHashConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomDatum(r), randomDatum(r)
		if a.Kind == b.Kind && a.Compare(b) == 0 && a.Hash() != b.Hash() {
			return false
		}
		return a.Hash() == a.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDatumBool(t *testing.T) {
	if !NewBool(true).Bool() || NewBool(false).Bool() || Null.Bool() || NewInt(1).Bool() {
		t.Error("Bool() coercion rules violated")
	}
}

func TestAsFloat(t *testing.T) {
	if NewInt(3).AsFloat() != 3 || NewFloat(2.5).AsFloat() != 2.5 {
		t.Error("numeric AsFloat broken")
	}
	// Strings project deterministically and order-consistently for short
	// prefixes.
	a, b := NewString("aa").AsFloat(), NewString("ab").AsFloat()
	if a >= b {
		t.Errorf("string projection not monotone: %v >= %v", a, b)
	}
}

func TestTypeIDString(t *testing.T) {
	for typ, want := range map[TypeID]string{
		TInt: "int", TFloat: "float", TString: "string", TBool: "bool",
		TDate: "date", TUnknown: "unknown",
	} {
		if typ.String() != want {
			t.Errorf("TypeID(%d).String() = %q, want %q", typ, typ.String(), want)
		}
	}
}
