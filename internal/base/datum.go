// Package base holds the primitive value and identifier types shared by every
// layer of the optimizer and the execution engine: typed datums, column
// identifiers and column sets.
package base

import (
	"fmt"
	"strconv"
	"strings"
)

// TypeID identifies a scalar data type. The reproduction uses a small fixed
// type system; the metadata layer decorates these with Mdids so that, as in
// the paper, type information travels through DXL rather than being
// hard-wired into the optimizer.
type TypeID uint8

// Supported scalar types.
const (
	TUnknown TypeID = iota
	TInt            // 64-bit signed integer
	TFloat          // 64-bit float
	TString         // UTF-8 string
	TBool           // boolean
	TDate           // days since epoch, kept as an integer at runtime
)

// String returns the SQL-ish name of the type.
func (t TypeID) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	case TDate:
		return "date"
	default:
		return "unknown"
	}
}

// DatumKind discriminates the runtime representation held by a Datum.
type DatumKind uint8

// Datum representations.
const (
	DNull DatumKind = iota
	DInt
	DFloat
	DString
	DBool
)

// Datum is a single runtime value. The zero value is SQL NULL.
type Datum struct {
	Kind DatumKind
	I    int64
	F    float64
	S    string
}

// Convenience constructors.

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{Kind: DInt, I: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{Kind: DFloat, F: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{Kind: DString, S: v} }

// NewBool returns a boolean datum.
func NewBool(v bool) Datum {
	if v {
		return Datum{Kind: DBool, I: 1}
	}
	return Datum{Kind: DBool}
}

// Null is the SQL NULL datum.
var Null = Datum{Kind: DNull}

// IsNull reports whether d is SQL NULL.
func (d Datum) IsNull() bool { return d.Kind == DNull }

// Bool returns the boolean value of d; NULL and non-bool datums are false.
func (d Datum) Bool() bool { return d.Kind == DBool && d.I != 0 }

// String renders the datum for plans, tests and error messages.
func (d Datum) String() string {
	switch d.Kind {
	case DNull:
		return "NULL"
	case DInt:
		return strconv.FormatInt(d.I, 10)
	case DFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case DString:
		// Embedded quotes double, as the lexer expects, so a rendered
		// literal re-parses to the same value ('O''Brien', not 'O'Brien').
		return "'" + strings.ReplaceAll(d.S, "'", "''") + "'"
	case DBool:
		if d.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("datum(kind=%d)", d.Kind)
	}
}

// Compare orders two datums. NULL sorts before every non-NULL value (the
// convention the engine's sort and merge operators rely on). Cross-type
// numeric comparisons (int vs float) are supported; any other cross-kind
// comparison orders by kind, which keeps Compare a total order.
func (d Datum) Compare(o Datum) int {
	if d.Kind == DNull || o.Kind == DNull {
		switch {
		case d.Kind == DNull && o.Kind == DNull:
			return 0
		case d.Kind == DNull:
			return -1
		default:
			return 1
		}
	}
	if d.Kind == o.Kind {
		switch d.Kind {
		case DInt, DBool:
			return cmpInt64(d.I, o.I)
		case DFloat:
			return cmpFloat64(d.F, o.F)
		case DString:
			switch {
			case d.S < o.S:
				return -1
			case d.S > o.S:
				return 1
			default:
				return 0
			}
		}
	}
	// Numeric cross-kind comparison.
	if d.isNumeric() && o.isNumeric() {
		return cmpFloat64(d.asFloat(), o.asFloat())
	}
	return cmpInt64(int64(d.Kind), int64(o.Kind))
}

// Equal reports SQL equality ignoring the NULL=NULL subtlety (NULLs compare
// equal here; predicate evaluation handles three-valued logic separately).
func (d Datum) Equal(o Datum) bool { return d.Compare(o) == 0 }

func (d Datum) isNumeric() bool { return d.Kind == DInt || d.Kind == DFloat }

func (d Datum) asFloat() float64 {
	if d.Kind == DFloat {
		return d.F
	}
	return float64(d.I)
}

// AsFloat converts numeric datums to float64; non-numeric datums yield 0.
// Histogram construction and cardinality estimation use this projection.
func (d Datum) AsFloat() float64 {
	if d.isNumeric() {
		return d.asFloat()
	}
	if d.Kind == DString {
		// Project strings onto a number so histograms can bucket them.
		var v float64
		for i := 0; i < len(d.S) && i < 8; i++ {
			v = v*256 + float64(d.S[i])
		}
		return v
	}
	return 0
}

// Hash returns a stable hash of the datum, used by hash joins, hash
// aggregation and hashed data distribution.
func (d Datum) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix(byte(d.Kind))
	switch d.Kind {
	case DInt, DBool:
		v := uint64(d.I)
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	case DFloat:
		// Normalize integral floats to hash like ints would not be correct in
		// general; hash raw bits.
		v := uint64(int64(d.F)) // truncate: engine only hashes join keys of one type
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	case DString:
		for i := 0; i < len(d.S); i++ {
			mix(d.S[i])
		}
	}
	return h
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
