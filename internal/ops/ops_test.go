package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/props"
)

// randScalar generates small random scalar trees for equality/hash checks.
func randScalar(r *rand.Rand, depth int) ScalarExpr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return NewIdent(base.ColID(r.Intn(6)), base.TInt)
		}
		return NewConst(base.NewInt(int64(r.Intn(5))))
	}
	switch r.Intn(5) {
	case 0:
		return NewCmp(CmpOp(r.Intn(6)), randScalar(r, depth-1), randScalar(r, depth-1))
	case 1:
		return And(randScalar(r, depth-1), randScalar(r, depth-1))
	case 2:
		return Or(randScalar(r, depth-1), randScalar(r, depth-1))
	case 3:
		return &BinOp{Op: "+", L: randScalar(r, depth-1), R: randScalar(r, depth-1)}
	default:
		return &IsNull{Arg: randScalar(r, depth-1)}
	}
}

// TestScalarHashEqualConsistency: structurally equal scalars hash equally.
func TestScalarHashEqualConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		a := randScalar(r1, 3)
		b := randScalar(r2, 3)
		if !a.Equal(b) {
			return false // identical seeds must build identical trees
		}
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAndFlattening(t *testing.T) {
	p1 := Eq(NewIdent(1, base.TInt), NewConst(base.NewInt(1)))
	p2 := Eq(NewIdent(2, base.TInt), NewConst(base.NewInt(2)))
	p3 := Eq(NewIdent(3, base.TInt), NewConst(base.NewInt(3)))
	nested := And(And(p1, p2), p3)
	if got := len(Conjuncts(nested)); got != 3 {
		t.Errorf("flattened conjuncts = %d, want 3", got)
	}
	if And() != nil {
		t.Error("empty And must be nil (TRUE)")
	}
	if And(p1) != p1 {
		t.Error("single-arg And must be identity")
	}
	if And(nil, p1, nil) != p1 {
		t.Error("nil args must be dropped")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) must be nil")
	}
}

func TestCmpCommuted(t *testing.T) {
	pairs := map[CmpOp]CmpOp{
		CmpLt: CmpGt, CmpLe: CmpGe, CmpGt: CmpLt, CmpGe: CmpLe,
		CmpEq: CmpEq, CmpNe: CmpNe,
	}
	for op, want := range pairs {
		if op.Commuted() != want {
			t.Errorf("%s.Commuted() = %s, want %s", op, op.Commuted(), want)
		}
	}
}

func TestEquiKeys(t *testing.T) {
	left := base.MakeColSet(1, 2)
	right := base.MakeColSet(10, 11)
	pred := And(
		Eq(NewIdent(1, base.TInt), NewIdent(10, base.TInt)),            // keyed
		Eq(NewIdent(11, base.TInt), NewIdent(2, base.TInt)),            // keyed, reversed sides
		NewCmp(CmpLt, NewIdent(2, base.TInt), NewIdent(11, base.TInt)), // non-equi
		Eq(NewIdent(1, base.TInt), NewIdent(2, base.TInt)),             // same side
	)
	lk, rk, residual := EquiKeys(pred, left, right)
	if len(lk) != 2 || len(rk) != 2 {
		t.Fatalf("keys: %v = %v", lk, rk)
	}
	if lk[0] != 1 || rk[0] != 10 || lk[1] != 2 || rk[1] != 11 {
		t.Errorf("key pairs wrong: %v = %v", lk, rk)
	}
	if len(residual) != 2 {
		t.Errorf("residual = %d, want 2", len(residual))
	}
}

func TestReplaceCols(t *testing.T) {
	in := And(
		Eq(NewIdent(1, base.TInt), NewConst(base.NewInt(5))),
		&InList{Arg: NewIdent(2, base.TInt), Vals: []ScalarExpr{NewConst(base.NewInt(1))}},
	)
	out := ReplaceCols(in, map[base.ColID]base.ColID{1: 100, 2: 200})
	want := base.MakeColSet(100, 200)
	if !out.Cols().Equal(want) {
		t.Errorf("ReplaceCols cols = %s, want %s", out.Cols(), want)
	}
	// Original untouched.
	if !in.Cols().Equal(base.MakeColSet(1, 2)) {
		t.Error("ReplaceCols mutated its input")
	}
}

// ---------------------------------------------------------------------------
// Logical properties on trees

func miniRel(name string, n int) (*md.Relation, []*md.ColRef) {
	p := md.NewMemProvider()
	cols := make([]md.ColSpec, n)
	for i := range cols {
		cols[i] = md.ColSpec{Name: string(rune('a' + i)), Type: base.TInt, NDV: 10, Lo: 0, Hi: 10}
	}
	rel := md.Build(p, md.TableSpec{Name: name, Rows: 10, Policy: md.DistHash, DistCols: []int{0}, Cols: cols})
	f := md.NewColumnFactory()
	refs := make([]*md.ColRef, n)
	for i := range refs {
		refs[i] = f.NewTableColumn(rel.Columns[i].Name, base.TInt, rel.Mdid, i)
	}
	return rel, refs
}

func TestOutputColsAndFreeCols(t *testing.T) {
	relA, aCols := miniRel("a", 2)
	get := NewExpr(&Get{Alias: "a", Rel: relA, Cols: aCols})
	sel := NewExpr(&Select{Pred: Eq(NewIdent(aCols[0].ID, base.TInt), NewConst(base.NewInt(1)))}, get)
	if !OutputColsOf(sel).Equal(base.MakeColSet(aCols[0].ID, aCols[1].ID)) {
		t.Error("select must pass through output columns")
	}
	if !FreeCols(sel).Empty() {
		t.Errorf("uncorrelated tree has free cols %s", FreeCols(sel))
	}

	// Correlated: predicate references a column never produced below.
	corr := NewExpr(&Select{Pred: Eq(NewIdent(aCols[0].ID, base.TInt), NewIdent(999, base.TInt))}, get)
	if !FreeCols(corr).Equal(base.MakeColSet(999)) {
		t.Errorf("free cols = %s, want {999}", FreeCols(corr))
	}

	// Semi join outputs only the outer side.
	relB, bCols := miniRel("b", 1)
	getB := NewExpr(&Get{Alias: "b", Rel: relB, Cols: bCols})
	semi := NewExpr(&Join{Type: SemiJoin, Pred: Eq(NewIdent(aCols[0].ID, base.TInt), NewIdent(bCols[0].ID, base.TInt))}, get, getB)
	if !OutputColsOf(semi).Equal(base.MakeColSet(aCols[0].ID, aCols[1].ID)) {
		t.Errorf("semi join output = %s", OutputColsOf(semi))
	}
}

// ---------------------------------------------------------------------------
// Physical property plumbing

func TestScanDerive(t *testing.T) {
	rel, cols := miniRel("t", 2)
	scan := &Scan{Rel: rel, Cols: cols}
	d := scan.Derive(nil)
	if d.Dist.Kind != props.DistHashed || d.Dist.Cols[0] != cols[0].ID {
		t.Errorf("scan dist = %s", d.Dist)
	}
	if !d.Rewindable {
		t.Error("scans are rewindable")
	}
}

func TestHashJoinAlternatives(t *testing.T) {
	j := &HashJoin{Type: InnerJoin, LeftKeys: []base.ColID{1}, RightKeys: []base.ColID{2}}
	alts := j.ChildReqs(props.Required{Dist: props.SingletonDist})
	if len(alts) != 4 {
		t.Fatalf("inner hash join alternatives = %d, want 4 (co-locate, bcast-inner, bcast-outer, gather)", len(alts))
	}
	// Alternative 1: co-location on keys (duplicate-tolerant).
	if alts[0][0].Dist.Kind != props.DistHashed || !alts[0][0].Dist.AllowReplicated {
		t.Errorf("co-locate alt wrong: %v", alts[0])
	}
	// Outer joins must not broadcast the preserved side.
	lj := &HashJoin{Type: LeftJoin, LeftKeys: []base.ColID{1}, RightKeys: []base.ColID{2}}
	for _, alt := range lj.ChildReqs(props.Required{}) {
		if alt[0].Dist.Kind == props.DistReplicated {
			t.Error("left join offered broadcast of the row-preserving side")
		}
	}
}

func TestNLJoinPreservesOuterOrder(t *testing.T) {
	j := &NLJoin{Type: InnerJoin}
	req := props.Required{Order: props.MakeOrder(1)}
	alts := j.ChildReqs(req)
	if !alts[0][0].Order.Equal(props.MakeOrder(1)) {
		t.Error("NLJoin must pass the order requirement to the outer child")
	}
	if !alts[0][1].Rewindable {
		t.Error("NLJoin inner side must be rewindable")
	}
	d := j.Derive([]props.Derived{
		{Dist: props.Hashed(1), Order: props.MakeOrder(1)},
		{Dist: props.ReplicatedDist, Rewindable: true},
	})
	if !d.Order.Equal(props.MakeOrder(1)) {
		t.Error("NLJoin must deliver the outer order")
	}
	if !d.Dist.Equal(props.Hashed(1)) {
		t.Errorf("broadcast-inner join dist = %s, want outer's", d.Dist)
	}
}

func TestEnforcerContracts(t *testing.T) {
	req := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(3)}

	sort := &Sort{Order: props.MakeOrder(3)}
	if got := sort.ChildReqs(req)[0][0]; !got.Order.IsAny() || !got.Dist.Equal(props.SingletonDist) {
		t.Errorf("Sort child req = %s", got)
	}
	d := sort.Derive([]props.Derived{{Dist: props.Hashed(1)}})
	if !d.Order.Equal(props.MakeOrder(3)) || !d.Rewindable {
		t.Errorf("Sort derive = %v", d)
	}

	gm := &GatherMerge{Order: props.MakeOrder(3)}
	if got := gm.ChildReqs(req)[0][0]; !got.Order.Equal(props.MakeOrder(3)) {
		t.Error("GatherMerge must require the order from its child")
	}
	if d := gm.Derive(nil); d.Dist.Kind != props.DistSingleton || !d.Order.Equal(props.MakeOrder(3)) {
		t.Errorf("GatherMerge derive = %v", d)
	}

	if d := (&Gather{}).Derive(nil); d.Dist.Kind != props.DistSingleton || !d.Order.IsAny() {
		t.Error("Gather must deliver singleton with no order")
	}
	if d := (&Redistribute{Cols: []base.ColID{5}}).Derive(nil); !d.Dist.Equal(props.Hashed(5)) {
		t.Error("Redistribute derive wrong")
	}
	if d := (&Broadcast{}).Derive(nil); d.Dist.Kind != props.DistReplicated {
		t.Error("Broadcast derive wrong")
	}
	sp := &Spool{}
	in := props.Derived{Dist: props.Hashed(2), Order: props.MakeOrder(2)}
	if d := sp.Derive([]props.Derived{in}); !d.Rewindable || !d.Dist.Equal(in.Dist) || !d.Order.Equal(in.Order) {
		t.Error("Spool must add rewindability and preserve the rest")
	}
}

func TestComputeScalarTranslation(t *testing.T) {
	f := md.NewColumnFactory()
	in := f.NewComputedColumn("in", base.TInt)
	outPass := f.NewComputedColumn("pass", base.TInt)
	outComp := f.NewComputedColumn("comp", base.TInt)
	cs := NewComputeScalar([]ProjElem{
		{Col: outPass, Expr: NewIdent(in.ID, base.TInt)},
		{Col: outComp, Expr: &BinOp{Op: "+", L: NewIdent(in.ID, base.TInt), R: NewConst(base.NewInt(1))}},
	})
	// Requirement on the aliased column translates to the input column.
	req := props.Required{Dist: props.Hashed(outPass.ID), Order: props.MakeOrder(outPass.ID)}
	creq := cs.ChildReqs(req)[0][0]
	if !creq.Dist.Equal(props.Hashed(in.ID)) || !creq.Order.Equal(props.MakeOrder(in.ID)) {
		t.Errorf("pass-through translation failed: %s", creq)
	}
	// Requirement on the computed column cannot be pushed.
	req2 := props.Required{Dist: props.Hashed(outComp.ID)}
	creq2 := cs.ChildReqs(req2)[0][0]
	if !creq2.Dist.IsAny() {
		t.Errorf("computed-column requirement leaked to child: %s", creq2)
	}
	// Derived props translate back through the projection.
	d := cs.Derive([]props.Derived{{Dist: props.Hashed(in.ID), Order: props.MakeOrder(in.ID)}})
	if !d.Dist.Equal(props.Hashed(outPass.ID)) || !d.Order.Equal(props.MakeOrder(outPass.ID)) {
		t.Errorf("derive translation failed: %v", d)
	}
}

func TestAggChildReqAlternatives(t *testing.T) {
	f := md.NewColumnFactory()
	cnt := f.NewComputedColumn("cnt", base.TInt)
	agg := &HashAgg{Mode: AggSingle, GroupCols: []base.ColID{1, 2},
		Aggs: []AggElem{{Col: cnt, Agg: &AggFunc{Name: "count"}}}}
	alts := agg.ChildReqs(props.Required{})
	// Full grouping columns, each single column, singleton.
	if len(alts) != 4 {
		t.Fatalf("hash agg alternatives = %d, want 4", len(alts))
	}
	for _, alt := range alts {
		d := alt[0].Dist
		if d.Kind == props.DistHashed && d.AllowReplicated {
			t.Error("grouped aggregate must not tolerate replicated input (duplicates)")
		}
	}
	local := &HashAgg{Mode: AggLocal, GroupCols: []base.ColID{1}}
	if got := local.ChildReqs(props.Required{}); len(got) != 1 || !got[0][0].Dist.IsAny() {
		t.Error("local aggregate must accept any distribution")
	}
}

func TestParamEqualDistinguishesOperators(t *testing.T) {
	a := &Join{Type: InnerJoin, Pred: Eq(NewIdent(1, base.TInt), NewIdent(2, base.TInt))}
	b := &Join{Type: InnerJoin, Pred: Eq(NewIdent(1, base.TInt), NewIdent(2, base.TInt))}
	c := &Join{Type: LeftJoin, Pred: a.Pred}
	if !a.ParamEqual(b) || a.ParamHash() != b.ParamHash() {
		t.Error("identical joins must compare equal and hash equally")
	}
	if a.ParamEqual(c) {
		t.Error("join type ignored")
	}
	if a.ParamEqual(&Select{Pred: a.Pred}) {
		t.Error("cross-operator ParamEqual must be false")
	}
}
