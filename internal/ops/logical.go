package ops

import (
	"fmt"
	"strings"

	"orca/internal/base"
	"orca/internal/md"
)

// The logical operator structs and their Name/Arity/ParamHash/ParamEqual
// methods are generated from defs/ops_logical.opt into ops.gen.go; this
// file keeps the hand-written semantic halves: output/used column
// derivation, enum types, element structs and Describe renderings.

// logicalBase provides the Logical marker.
type logicalBase struct{}

func (logicalBase) logical() {}

// ---------------------------------------------------------------------------
// Get

// OutputCols returns the columns the instance produces.
func (g *Get) OutputCols() base.ColSet {
	var s base.ColSet
	for _, c := range g.Cols {
		s.Add(c.ID)
	}
	return s
}

// ColID returns the ColID of the relation column at the given ordinal.
func (g *Get) ColID(ordinal int) base.ColID { return g.Cols[ordinal].ID }

// DistCols returns the ColIDs of the relation's hash-distribution columns.
func (g *Get) DistCols() []base.ColID {
	out := make([]base.ColID, len(g.Rel.DistCols))
	for i, ord := range g.Rel.DistCols {
		out[i] = g.Cols[ord].ID
	}
	return out
}

// Describe renders "Get(t1 as a)".
func (g *Get) Describe() string {
	if g.Alias != "" && g.Alias != g.Rel.Name {
		return fmt.Sprintf("Get(%s as %s)", g.Rel.Name, g.Alias)
	}
	return fmt.Sprintf("Get(%s)", g.Rel.Name)
}

// ---------------------------------------------------------------------------
// Select

// Describe renders the predicate.
func (s *Select) Describe() string { return "Select " + s.Pred.String() }

// ---------------------------------------------------------------------------
// Project

// ProjElem is one projected column: a target column reference and the
// defining expression. Pass-through columns are ProjElems whose Expr is an
// Ident of the same column.
type ProjElem struct {
	Col  *md.ColRef
	Expr ScalarExpr
}

// OutputCols returns the projected column set.
func (p *Project) OutputCols() base.ColSet {
	var s base.ColSet
	for _, e := range p.Elems {
		s.Add(e.Col.ID)
	}
	return s
}

// UsedCols returns the columns the projections reference.
func (p *Project) UsedCols() base.ColSet {
	var s base.ColSet
	for _, e := range p.Elems {
		s = s.Union(e.Expr.Cols())
	}
	return s
}

// Describe renders the projection list.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = fmt.Sprintf("c%d=%s", e.Col.ID, e.Expr)
	}
	return "Project [" + strings.Join(parts, ", ") + "]"
}

// ---------------------------------------------------------------------------
// Joins

// JoinType enumerates join semantics.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	SemiJoin
	AntiJoin
)

// String names the join type.
func (t JoinType) String() string {
	switch t {
	case InnerJoin:
		return "Inner"
	case LeftJoin:
		return "Left"
	case SemiJoin:
		return "Semi"
	case AntiJoin:
		return "Anti"
	default:
		return fmt.Sprintf("JoinType(%d)", t)
	}
}

// Name implements Operator; the display name carries the join semantics.
func (j *Join) Name() string { return j.Type.String() + "Join" }

// Describe renders "InnerJoin (c0 = c3)".
func (j *Join) Describe() string {
	if j.Pred == nil {
		return j.Name()
	}
	return j.Name() + " " + j.Pred.String()
}

// Describe renders the predicate list.
func (j *NAryJoin) Describe() string {
	parts := make([]string, len(j.Preds))
	for i, p := range j.Preds {
		parts[i] = p.String()
	}
	return "NAryJoin [" + strings.Join(parts, " AND ") + "]"
}

// ---------------------------------------------------------------------------
// Grouping and aggregation

// AggElem is one computed aggregate: target column plus aggregate function.
type AggElem struct {
	Col *md.ColRef
	Agg *AggFunc
}

// OutputCols returns group columns plus aggregate output columns.
func (g *GbAgg) OutputCols() base.ColSet {
	return aggOutputCols(g.GroupCols, g.Aggs)
}

// UsedCols returns the columns referenced by grouping and aggregation.
func (g *GbAgg) UsedCols() base.ColSet {
	return aggUsedCols(g.GroupCols, g.Aggs)
}

// Describe renders grouping columns and aggregates.
func (g *GbAgg) Describe() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		parts[i] = fmt.Sprintf("c%d=%s", a.Col.ID, a.Agg)
	}
	return fmt.Sprintf("GbAgg group=%v aggs=[%s]", g.GroupCols, strings.Join(parts, ", "))
}

// ---------------------------------------------------------------------------
// Limit

// Describe renders count/offset/order.
func (l *Limit) Describe() string {
	return fmt.Sprintf("Limit %d offset %d order %s", l.Count, l.Offset, l.Order)
}

// ---------------------------------------------------------------------------
// UnionAll

// OutputCols returns the union's output column set.
func (u *UnionAll) OutputCols() base.ColSet {
	var s base.ColSet
	for _, c := range u.OutCols {
		s.Add(c.ID)
	}
	return s
}

// ---------------------------------------------------------------------------
// Common table expressions (paper §7.2.2 "Common Expressions": a
// producer/consumer model for WITH clause)

// Describe renders the CTE id.
func (c *CTEAnchor) Describe() string { return fmt.Sprintf("CTEAnchor(%d)", c.ID) }

// OutputCols returns the consumer's output columns.
func (c *CTEConsumer) OutputCols() base.ColSet {
	var s base.ColSet
	for _, cr := range c.Cols {
		s.Add(cr.ID)
	}
	return s
}

// Describe renders the CTE id.
func (c *CTEConsumer) Describe() string { return fmt.Sprintf("CTEConsumer(%d)", c.ID) }

// ---------------------------------------------------------------------------
// Window

// WinElem is one computed window function column.
type WinElem struct {
	Col *md.ColRef
	Fn  *WinFunc
}

// UsedCols returns columns referenced by partitioning, ordering and args.
func (w *Window) UsedCols() base.ColSet {
	s := base.MakeColSet(w.PartitionCols...)
	s = s.Union(w.Order.Cols())
	for _, e := range w.Wins {
		s = s.Union(e.Fn.Cols())
	}
	return s
}

// Describe renders partition and functions.
func (w *Window) Describe() string {
	parts := make([]string, len(w.Wins))
	for i, e := range w.Wins {
		parts[i] = fmt.Sprintf("c%d=%s", e.Col.ID, e.Fn)
	}
	return fmt.Sprintf("Window part=%v order=%s fns=[%s]", w.PartitionCols, w.Order, strings.Join(parts, ", "))
}
