package ops

import (
	"fmt"
	"strings"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/props"
)

// logicalBase provides the Logical marker.
type logicalBase struct{}

func (logicalBase) logical() {}

// ---------------------------------------------------------------------------
// Get

// Get is a logical table access: one instance of a base relation with its
// query-level column references (cf. dxl:LogicalGet in paper Listing 1).
type Get struct {
	logicalBase
	Alias string
	Rel   *md.Relation
	Cols  []*md.ColRef
}

// Name implements Operator.
func (*Get) Name() string { return "Get" }

// Arity implements Operator.
func (*Get) Arity() int { return 0 }

// ParamHash implements Operator; two Gets are the same expression only if
// they are the same table *instance*, which the first column id identifies.
func (g *Get) ParamHash() uint64 {
	h := hashString(fnvOffset, "get")
	h = hashMix(h, uint64(g.Rel.Mdid.OID))
	if len(g.Cols) > 0 {
		h = hashMix(h, uint64(g.Cols[0].ID))
	}
	return h
}

// ParamEqual implements Operator.
func (g *Get) ParamEqual(o Operator) bool {
	og, ok := o.(*Get)
	if !ok || og.Rel.Mdid != g.Rel.Mdid || len(og.Cols) != len(g.Cols) {
		return false
	}
	for i := range g.Cols {
		if og.Cols[i].ID != g.Cols[i].ID {
			return false
		}
	}
	return true
}

// OutputCols returns the columns the instance produces.
func (g *Get) OutputCols() base.ColSet {
	var s base.ColSet
	for _, c := range g.Cols {
		s.Add(c.ID)
	}
	return s
}

// ColID returns the ColID of the relation column at the given ordinal.
func (g *Get) ColID(ordinal int) base.ColID { return g.Cols[ordinal].ID }

// DistCols returns the ColIDs of the relation's hash-distribution columns.
func (g *Get) DistCols() []base.ColID {
	out := make([]base.ColID, len(g.Rel.DistCols))
	for i, ord := range g.Rel.DistCols {
		out[i] = g.Cols[ord].ID
	}
	return out
}

// Describe renders "Get(t1 as a)".
func (g *Get) Describe() string {
	if g.Alias != "" && g.Alias != g.Rel.Name {
		return fmt.Sprintf("Get(%s as %s)", g.Rel.Name, g.Alias)
	}
	return fmt.Sprintf("Get(%s)", g.Rel.Name)
}

// ---------------------------------------------------------------------------
// Select

// Select filters its child by a predicate.
type Select struct {
	logicalBase
	Pred ScalarExpr
}

// Name implements Operator.
func (*Select) Name() string { return "Select" }

// Arity implements Operator.
func (*Select) Arity() int { return 1 }

// ParamHash implements Operator.
func (s *Select) ParamHash() uint64 { return hashMix(hashString(fnvOffset, "select"), s.Pred.Hash()) }

// ParamEqual implements Operator.
func (s *Select) ParamEqual(o Operator) bool {
	os, ok := o.(*Select)
	return ok && os.Pred.Equal(s.Pred)
}

// Describe renders the predicate.
func (s *Select) Describe() string { return "Select " + s.Pred.String() }

// ---------------------------------------------------------------------------
// Project

// ProjElem is one projected column: a target column reference and the
// defining expression.
type ProjElem struct {
	Col  *md.ColRef
	Expr ScalarExpr
}

// Project computes scalar expressions; pass-through columns are ProjElems
// whose Expr is an Ident of the same column.
type Project struct {
	logicalBase
	Elems []ProjElem
}

// Name implements Operator.
func (*Project) Name() string { return "Project" }

// Arity implements Operator.
func (*Project) Arity() int { return 1 }

// ParamHash implements Operator.
func (p *Project) ParamHash() uint64 {
	h := hashString(fnvOffset, "project")
	for _, e := range p.Elems {
		h = hashMix(h, uint64(e.Col.ID))
		h = hashMix(h, e.Expr.Hash())
	}
	return h
}

// ParamEqual implements Operator.
func (p *Project) ParamEqual(o Operator) bool {
	op, ok := o.(*Project)
	if !ok || len(op.Elems) != len(p.Elems) {
		return false
	}
	for i := range p.Elems {
		if op.Elems[i].Col.ID != p.Elems[i].Col.ID || !op.Elems[i].Expr.Equal(p.Elems[i].Expr) {
			return false
		}
	}
	return true
}

// OutputCols returns the projected column set.
func (p *Project) OutputCols() base.ColSet {
	var s base.ColSet
	for _, e := range p.Elems {
		s.Add(e.Col.ID)
	}
	return s
}

// UsedCols returns the columns the projections reference.
func (p *Project) UsedCols() base.ColSet {
	var s base.ColSet
	for _, e := range p.Elems {
		s = s.Union(e.Expr.Cols())
	}
	return s
}

// Describe renders the projection list.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = fmt.Sprintf("c%d=%s", e.Col.ID, e.Expr)
	}
	return "Project [" + strings.Join(parts, ", ") + "]"
}

// ---------------------------------------------------------------------------
// Joins

// JoinType enumerates join semantics.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	SemiJoin
	AntiJoin
)

// String names the join type.
func (t JoinType) String() string {
	switch t {
	case InnerJoin:
		return "Inner"
	case LeftJoin:
		return "Left"
	case SemiJoin:
		return "Semi"
	case AntiJoin:
		return "Anti"
	default:
		return fmt.Sprintf("JoinType(%d)", t)
	}
}

// Join is a binary logical join (children: outer, inner).
type Join struct {
	logicalBase
	Type JoinType
	Pred ScalarExpr // nil means cross join / constant TRUE
}

// Name implements Operator.
func (j *Join) Name() string { return j.Type.String() + "Join" }

// Arity implements Operator.
func (*Join) Arity() int { return 2 }

// ParamHash implements Operator.
func (j *Join) ParamHash() uint64 {
	h := hashString(fnvOffset, "join")
	h = hashMix(h, uint64(j.Type))
	if j.Pred != nil {
		h = hashMix(h, j.Pred.Hash())
	}
	return h
}

// ParamEqual implements Operator.
func (j *Join) ParamEqual(o Operator) bool {
	oj, ok := o.(*Join)
	if !ok || oj.Type != j.Type || (oj.Pred == nil) != (j.Pred == nil) {
		return false
	}
	return j.Pred == nil || oj.Pred.Equal(j.Pred)
}

// Describe renders "InnerJoin (c0 = c3)".
func (j *Join) Describe() string {
	if j.Pred == nil {
		return j.Name()
	}
	return j.Name() + " " + j.Pred.String()
}

// NAryJoin is the collapsed inner-join of several inputs plus the conjunction
// of all join predicates; the join-ordering exploration rules (DP, greedy,
// left-deep — paper §7.2.2 "Join Ordering") expand it into binary join trees.
type NAryJoin struct {
	logicalBase
	Preds []ScalarExpr
}

// Name implements Operator.
func (*NAryJoin) Name() string { return "NAryJoin" }

// Arity implements Operator.
func (*NAryJoin) Arity() int { return -1 }

// ParamHash implements Operator.
func (j *NAryJoin) ParamHash() uint64 {
	h := hashString(fnvOffset, "naryjoin")
	for _, p := range j.Preds {
		h = hashMix(h, p.Hash())
	}
	return h
}

// ParamEqual implements Operator.
func (j *NAryJoin) ParamEqual(o Operator) bool {
	oj, ok := o.(*NAryJoin)
	if !ok || len(oj.Preds) != len(j.Preds) {
		return false
	}
	for i := range j.Preds {
		if !oj.Preds[i].Equal(j.Preds[i]) {
			return false
		}
	}
	return true
}

// Describe renders the predicate list.
func (j *NAryJoin) Describe() string {
	parts := make([]string, len(j.Preds))
	for i, p := range j.Preds {
		parts[i] = p.String()
	}
	return "NAryJoin [" + strings.Join(parts, " AND ") + "]"
}

// ---------------------------------------------------------------------------
// Grouping and aggregation

// AggElem is one computed aggregate: target column plus aggregate function.
type AggElem struct {
	Col *md.ColRef
	Agg *AggFunc
}

// GbAgg groups its input and computes aggregates.
type GbAgg struct {
	logicalBase
	GroupCols []base.ColID
	Aggs      []AggElem
}

// Name implements Operator.
func (*GbAgg) Name() string { return "GbAgg" }

// Arity implements Operator.
func (*GbAgg) Arity() int { return 1 }

// ParamHash implements Operator.
func (g *GbAgg) ParamHash() uint64 {
	h := hashString(fnvOffset, "gbagg")
	for _, c := range g.GroupCols {
		h = hashMix(h, uint64(c))
	}
	for _, a := range g.Aggs {
		h = hashMix(h, uint64(a.Col.ID))
		h = hashMix(h, a.Agg.Hash())
	}
	return h
}

// ParamEqual implements Operator.
func (g *GbAgg) ParamEqual(o Operator) bool {
	og, ok := o.(*GbAgg)
	if !ok || len(og.GroupCols) != len(g.GroupCols) || len(og.Aggs) != len(g.Aggs) {
		return false
	}
	for i := range g.GroupCols {
		if og.GroupCols[i] != g.GroupCols[i] {
			return false
		}
	}
	for i := range g.Aggs {
		if og.Aggs[i].Col.ID != g.Aggs[i].Col.ID || !og.Aggs[i].Agg.Equal(g.Aggs[i].Agg) {
			return false
		}
	}
	return true
}

// OutputCols returns group columns plus aggregate output columns.
func (g *GbAgg) OutputCols() base.ColSet {
	s := base.MakeColSet(g.GroupCols...)
	for _, a := range g.Aggs {
		s.Add(a.Col.ID)
	}
	return s
}

// UsedCols returns the columns referenced by grouping and aggregation.
func (g *GbAgg) UsedCols() base.ColSet {
	s := base.MakeColSet(g.GroupCols...)
	for _, a := range g.Aggs {
		s = s.Union(a.Agg.Cols())
	}
	return s
}

// Describe renders grouping columns and aggregates.
func (g *GbAgg) Describe() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		parts[i] = fmt.Sprintf("c%d=%s", a.Col.ID, a.Agg)
	}
	return fmt.Sprintf("GbAgg group=%v aggs=[%s]", g.GroupCols, strings.Join(parts, ", "))
}

// ---------------------------------------------------------------------------
// Limit

// Limit returns the first Count rows (after Offset) of its input under the
// given order. A Limit with an empty order is a bare LIMIT clause.
type Limit struct {
	logicalBase
	Order  props.OrderSpec
	Count  int64
	Offset int64
	// HasCount distinguishes LIMIT 0 from no LIMIT (pure OFFSET).
	HasCount bool
}

// Name implements Operator.
func (*Limit) Name() string { return "Limit" }

// Arity implements Operator.
func (*Limit) Arity() int { return 1 }

// ParamHash implements Operator.
func (l *Limit) ParamHash() uint64 {
	h := hashString(fnvOffset, "limit")
	h = hashMix(h, l.Order.Hash())
	h = hashMix(h, uint64(l.Count))
	h = hashMix(h, uint64(l.Offset))
	if l.HasCount {
		h = hashMix(h, 1)
	}
	return h
}

// ParamEqual implements Operator.
func (l *Limit) ParamEqual(o Operator) bool {
	ol, ok := o.(*Limit)
	return ok && ol.Order.Equal(l.Order) && ol.Count == l.Count && ol.Offset == l.Offset && ol.HasCount == l.HasCount
}

// Describe renders count/offset/order.
func (l *Limit) Describe() string {
	return fmt.Sprintf("Limit %d offset %d order %s", l.Count, l.Offset, l.Order)
}

// ---------------------------------------------------------------------------
// UnionAll

// UnionAll concatenates its children. InCols maps each child's columns to the
// output positions; OutCols are the produced column references.
type UnionAll struct {
	logicalBase
	InCols  [][]base.ColID
	OutCols []*md.ColRef
}

// Name implements Operator.
func (*UnionAll) Name() string { return "UnionAll" }

// Arity implements Operator.
func (*UnionAll) Arity() int { return -1 }

// ParamHash implements Operator.
func (u *UnionAll) ParamHash() uint64 {
	h := hashString(fnvOffset, "unionall")
	for _, cols := range u.InCols {
		for _, c := range cols {
			h = hashMix(h, uint64(c))
		}
		h = hashMix(h, 0xfe)
	}
	for _, c := range u.OutCols {
		h = hashMix(h, uint64(c.ID))
	}
	return h
}

// ParamEqual implements Operator.
func (u *UnionAll) ParamEqual(o Operator) bool {
	ou, ok := o.(*UnionAll)
	if !ok || len(ou.InCols) != len(u.InCols) || len(ou.OutCols) != len(u.OutCols) {
		return false
	}
	for i := range u.InCols {
		if len(ou.InCols[i]) != len(u.InCols[i]) {
			return false
		}
		for j := range u.InCols[i] {
			if ou.InCols[i][j] != u.InCols[i][j] {
				return false
			}
		}
	}
	for i := range u.OutCols {
		if ou.OutCols[i].ID != u.OutCols[i].ID {
			return false
		}
	}
	return true
}

// OutputCols returns the union's output column set.
func (u *UnionAll) OutputCols() base.ColSet {
	var s base.ColSet
	for _, c := range u.OutCols {
		s.Add(c.ID)
	}
	return s
}

// ---------------------------------------------------------------------------
// Common table expressions (paper §7.2.2 "Common Expressions": a
// producer/consumer model for WITH clause)

// CTEAnchor scopes a common table expression: child 0 is the producer (the
// CTE definition), child 1 is the body in which consumers appear. Physical
// implementation is a Sequence that materializes the producer once and then
// evaluates the body, the paper's produce-once/consume-many model.
type CTEAnchor struct {
	logicalBase
	ID   int
	Cols []*md.ColRef // producer output columns
}

// Name implements Operator.
func (*CTEAnchor) Name() string { return "CTEAnchor" }

// Arity implements Operator.
func (*CTEAnchor) Arity() int { return 2 }

// ParamHash implements Operator.
func (c *CTEAnchor) ParamHash() uint64 {
	return hashMix(hashString(fnvOffset, "cteanchor"), uint64(c.ID))
}

// ParamEqual implements Operator.
func (c *CTEAnchor) ParamEqual(o Operator) bool {
	oc, ok := o.(*CTEAnchor)
	return ok && oc.ID == c.ID
}

// Describe renders the CTE id.
func (c *CTEAnchor) Describe() string { return fmt.Sprintf("CTEAnchor(%d)", c.ID) }

// CTEConsumer reads the materialized output of a CTE producer, exposing it
// under fresh column references (each consumer instance gets its own ColIDs).
type CTEConsumer struct {
	logicalBase
	ID           int
	Cols         []*md.ColRef // this consumer's output columns
	ProducerCols []base.ColID // the producer columns, positionally
}

// Name implements Operator.
func (*CTEConsumer) Name() string { return "CTEConsumer" }

// Arity implements Operator.
func (*CTEConsumer) Arity() int { return 0 }

// ParamHash implements Operator.
func (c *CTEConsumer) ParamHash() uint64 {
	h := hashMix(hashString(fnvOffset, "ctecons"), uint64(c.ID))
	if len(c.Cols) > 0 {
		h = hashMix(h, uint64(c.Cols[0].ID))
	}
	return h
}

// ParamEqual implements Operator.
func (c *CTEConsumer) ParamEqual(o Operator) bool {
	oc, ok := o.(*CTEConsumer)
	if !ok || oc.ID != c.ID || len(oc.Cols) != len(c.Cols) {
		return false
	}
	for i := range c.Cols {
		if oc.Cols[i].ID != c.Cols[i].ID {
			return false
		}
	}
	return true
}

// OutputCols returns the consumer's output columns.
func (c *CTEConsumer) OutputCols() base.ColSet {
	var s base.ColSet
	for _, cr := range c.Cols {
		s.Add(cr.ID)
	}
	return s
}

// Describe renders the CTE id.
func (c *CTEConsumer) Describe() string { return fmt.Sprintf("CTEConsumer(%d)", c.ID) }

// ---------------------------------------------------------------------------
// Window

// WinElem is one computed window function column.
type WinElem struct {
	Col *md.ColRef
	Fn  *WinFunc
}

// Window computes window functions over partitions of its input.
type Window struct {
	logicalBase
	PartitionCols []base.ColID
	Order         props.OrderSpec
	Wins          []WinElem
}

// Name implements Operator.
func (*Window) Name() string { return "Window" }

// Arity implements Operator.
func (*Window) Arity() int { return 1 }

// ParamHash implements Operator.
func (w *Window) ParamHash() uint64 {
	h := hashString(fnvOffset, "window")
	for _, c := range w.PartitionCols {
		h = hashMix(h, uint64(c))
	}
	h = hashMix(h, w.Order.Hash())
	for _, e := range w.Wins {
		h = hashMix(h, uint64(e.Col.ID))
		h = hashMix(h, e.Fn.Hash())
	}
	return h
}

// ParamEqual implements Operator.
func (w *Window) ParamEqual(o Operator) bool {
	ow, ok := o.(*Window)
	if !ok || len(ow.PartitionCols) != len(w.PartitionCols) || len(ow.Wins) != len(w.Wins) || !ow.Order.Equal(w.Order) {
		return false
	}
	for i := range w.PartitionCols {
		if ow.PartitionCols[i] != w.PartitionCols[i] {
			return false
		}
	}
	for i := range w.Wins {
		if ow.Wins[i].Col.ID != w.Wins[i].Col.ID || !ow.Wins[i].Fn.Equal(w.Wins[i].Fn) {
			return false
		}
	}
	return true
}

// UsedCols returns columns referenced by partitioning, ordering and args.
func (w *Window) UsedCols() base.ColSet {
	s := base.MakeColSet(w.PartitionCols...)
	s = s.Union(w.Order.Cols())
	for _, e := range w.Wins {
		s = s.Union(e.Fn.Cols())
	}
	return s
}

// Describe renders partition and functions.
func (w *Window) Describe() string {
	parts := make([]string, len(w.Wins))
	for i, e := range w.Wins {
		parts[i] = fmt.Sprintf("c%d=%s", e.Col.ID, e.Fn)
	}
	return fmt.Sprintf("Window part=%v order=%s fns=[%s]", w.PartitionCols, w.Order, strings.Join(parts, ", "))
}
