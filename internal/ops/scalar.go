// Package ops defines the operator algebra shared by the whole system: the
// scalar expression language, the logical operators the binder and
// transformation rules produce, the physical operators (including the motion
// enforcers of paper §4.1), and the expression trees that flow into and out
// of the Memo.
package ops

import (
	"fmt"
	"strings"

	"orca/internal/base"
)

// ScalarExpr is a scalar expression tree node: predicates, projections, join
// conditions. Scalars are carried as operator parameters (the join condition
// lives inside the join operator), and participate in group-expression
// fingerprints through their Hash.
type ScalarExpr interface {
	// Cols returns every column referenced by the expression, including
	// outer references made from inside subqueries.
	Cols() base.ColSet
	// Hash returns a structural hash.
	Hash() uint64
	// Equal reports structural equality.
	Equal(ScalarExpr) bool
	// String renders the expression for explains; column refs print as c<id>.
	String() string
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashMix(h uint64, v uint64) uint64 { return (h ^ v) * fnvPrime }

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashMix(h, uint64(s[i]))
	}
	return hashMix(h, 0xff)
}

// ---------------------------------------------------------------------------
// Leaf scalars

// Ident is a column reference.
type Ident struct {
	Col  base.ColID
	Type base.TypeID
}

// NewIdent builds a column reference.
func NewIdent(col base.ColID, typ base.TypeID) *Ident { return &Ident{Col: col, Type: typ} }

// Cols implements ScalarExpr.
func (e *Ident) Cols() base.ColSet { return base.MakeColSet(e.Col) }

// Hash implements ScalarExpr.
func (e *Ident) Hash() uint64 { return hashMix(hashString(fnvOffset, "ident"), uint64(e.Col)) }

// Equal implements ScalarExpr.
func (e *Ident) Equal(o ScalarExpr) bool {
	i, ok := o.(*Ident)
	return ok && i.Col == e.Col
}

// String implements ScalarExpr.
func (e *Ident) String() string { return fmt.Sprintf("c%d", e.Col) }

// Const is a literal value.
type Const struct {
	Val base.Datum
}

// NewConst builds a literal.
func NewConst(v base.Datum) *Const { return &Const{Val: v} }

// Cols implements ScalarExpr.
func (e *Const) Cols() base.ColSet { return base.ColSet{} }

// Hash implements ScalarExpr.
func (e *Const) Hash() uint64 { return hashMix(hashString(fnvOffset, "const"), e.Val.Hash()) }

// Equal implements ScalarExpr.
func (e *Const) Equal(o ScalarExpr) bool {
	c, ok := o.(*Const)
	return ok && c.Val.Equal(e.Val) && c.Val.Kind == e.Val.Kind
}

// String implements ScalarExpr.
func (e *Const) String() string { return e.Val.String() }

// Param is a placeholder for a constant extracted from a query shape by the
// parameterized plan cache (internal/plancache): the shape is fingerprinted
// with Params where the literals were, and the cached physical plan carries
// Params that a later hit rebinds with its own constant vector. Params exist
// only inside plan-cache keys and cached entries — rebinding replaces every
// Param with a Const before a plan leaves the cache, so the Memo, the DXL
// serializer and the execution engine never see one (their legs are
// defensive).
type Param struct {
	Ord int
}

// NewParam builds a parameter placeholder with the given vector ordinal.
func NewParam(ord int) *Param { return &Param{Ord: ord} }

// Cols implements ScalarExpr.
func (e *Param) Cols() base.ColSet { return base.ColSet{} }

// Hash implements ScalarExpr. The hash covers only the ordinal — two shapes
// differing solely in constant values collide, which is the plan cache's
// entire point.
func (e *Param) Hash() uint64 { return hashMix(hashString(fnvOffset, "param"), uint64(e.Ord)) }

// Equal implements ScalarExpr.
func (e *Param) Equal(o ScalarExpr) bool {
	p, ok := o.(*Param)
	return ok && p.Ord == e.Ord
}

// String implements ScalarExpr.
func (e *Param) String() string { return fmt.Sprintf("$%d", e.Ord) }

// ---------------------------------------------------------------------------
// Comparisons and boolean connectors

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the SQL token.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// Commuted returns the operator with its operands swapped (a < b ⇔ b > a).
func (op CmpOp) Commuted() CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default:
		return op
	}
}

// Cmp is a binary comparison.
type Cmp struct {
	Op   CmpOp
	L, R ScalarExpr
}

// NewCmp builds a comparison.
func NewCmp(op CmpOp, l, r ScalarExpr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Eq builds an equality comparison.
func Eq(l, r ScalarExpr) *Cmp { return NewCmp(CmpEq, l, r) }

// Cols implements ScalarExpr.
func (e *Cmp) Cols() base.ColSet { return e.L.Cols().Union(e.R.Cols()) }

// Hash implements ScalarExpr.
func (e *Cmp) Hash() uint64 {
	h := hashString(fnvOffset, "cmp")
	h = hashMix(h, uint64(e.Op))
	h = hashMix(h, e.L.Hash())
	return hashMix(h, e.R.Hash())
}

// Equal implements ScalarExpr.
func (e *Cmp) Equal(o ScalarExpr) bool {
	c, ok := o.(*Cmp)
	return ok && c.Op == e.Op && c.L.Equal(e.L) && c.R.Equal(e.R)
}

// String implements ScalarExpr.
func (e *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// BoolOpKind is a boolean connector.
type BoolOpKind uint8

// Boolean connectors.
const (
	BoolAnd BoolOpKind = iota
	BoolOr
	BoolNot
)

// BoolOp is AND/OR/NOT over predicates.
type BoolOp struct {
	Kind BoolOpKind
	Args []ScalarExpr
}

// And conjoins predicates, flattening nested ANDs and dropping nils; it
// returns nil for an empty conjunction (the always-true predicate).
func And(args ...ScalarExpr) ScalarExpr {
	var flat []ScalarExpr
	for _, a := range args {
		if a == nil {
			continue
		}
		if b, ok := a.(*BoolOp); ok && b.Kind == BoolAnd {
			flat = append(flat, b.Args...)
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return &BoolOp{Kind: BoolAnd, Args: flat}
	}
}

// Or disjoins predicates.
func Or(args ...ScalarExpr) ScalarExpr {
	if len(args) == 1 {
		return args[0]
	}
	return &BoolOp{Kind: BoolOr, Args: args}
}

// Not negates a predicate.
func Not(arg ScalarExpr) ScalarExpr { return &BoolOp{Kind: BoolNot, Args: []ScalarExpr{arg}} }

// Cols implements ScalarExpr.
func (e *BoolOp) Cols() base.ColSet {
	var s base.ColSet
	for _, a := range e.Args {
		s = s.Union(a.Cols())
	}
	return s
}

// Hash implements ScalarExpr.
func (e *BoolOp) Hash() uint64 {
	h := hashString(fnvOffset, "bool")
	h = hashMix(h, uint64(e.Kind))
	for _, a := range e.Args {
		h = hashMix(h, a.Hash())
	}
	return h
}

// Equal implements ScalarExpr.
func (e *BoolOp) Equal(o ScalarExpr) bool {
	b, ok := o.(*BoolOp)
	if !ok || b.Kind != e.Kind || len(b.Args) != len(e.Args) {
		return false
	}
	for i := range e.Args {
		if !e.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// String implements ScalarExpr.
func (e *BoolOp) String() string {
	switch e.Kind {
	case BoolNot:
		return "NOT " + e.Args[0].String()
	case BoolAnd:
		return joinScalarStrings(e.Args, " AND ")
	default:
		return joinScalarStrings(e.Args, " OR ")
	}
}

func joinScalarStrings(args []ScalarExpr, sep string) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// ---------------------------------------------------------------------------
// Functions, arithmetic, CASE, NULL tests

// BinOp is binary arithmetic (+, -, *, /, %).
type BinOp struct {
	Op   string
	L, R ScalarExpr
}

// Cols implements ScalarExpr.
func (e *BinOp) Cols() base.ColSet { return e.L.Cols().Union(e.R.Cols()) }

// Hash implements ScalarExpr.
func (e *BinOp) Hash() uint64 {
	h := hashString(fnvOffset, "bin")
	h = hashString(h, e.Op)
	h = hashMix(h, e.L.Hash())
	return hashMix(h, e.R.Hash())
}

// Equal implements ScalarExpr.
func (e *BinOp) Equal(o ScalarExpr) bool {
	b, ok := o.(*BinOp)
	return ok && b.Op == e.Op && b.L.Equal(e.L) && b.R.Equal(e.R)
}

// String implements ScalarExpr.
func (e *BinOp) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// Func is a scalar function call (substr, like, coalesce, ...).
type Func struct {
	Name string
	Args []ScalarExpr
}

// Cols implements ScalarExpr.
func (e *Func) Cols() base.ColSet {
	var s base.ColSet
	for _, a := range e.Args {
		s = s.Union(a.Cols())
	}
	return s
}

// Hash implements ScalarExpr.
func (e *Func) Hash() uint64 {
	h := hashString(fnvOffset, "func")
	h = hashString(h, e.Name)
	for _, a := range e.Args {
		h = hashMix(h, a.Hash())
	}
	return h
}

// Equal implements ScalarExpr.
func (e *Func) Equal(o ScalarExpr) bool {
	f, ok := o.(*Func)
	if !ok || f.Name != e.Name || len(f.Args) != len(e.Args) {
		return false
	}
	for i := range e.Args {
		if !e.Args[i].Equal(f.Args[i]) {
			return false
		}
	}
	return true
}

// String implements ScalarExpr.
func (e *Func) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

// CaseWhen is one WHEN/THEN arm of a CASE expression.
type CaseWhen struct {
	When ScalarExpr
	Then ScalarExpr
}

// Case is a searched CASE expression.
type Case struct {
	Whens []CaseWhen
	Else  ScalarExpr // may be nil (NULL)
}

// Cols implements ScalarExpr.
func (e *Case) Cols() base.ColSet {
	var s base.ColSet
	for _, w := range e.Whens {
		s = s.Union(w.When.Cols()).Union(w.Then.Cols())
	}
	if e.Else != nil {
		s = s.Union(e.Else.Cols())
	}
	return s
}

// Hash implements ScalarExpr.
func (e *Case) Hash() uint64 {
	h := hashString(fnvOffset, "case")
	for _, w := range e.Whens {
		h = hashMix(h, w.When.Hash())
		h = hashMix(h, w.Then.Hash())
	}
	if e.Else != nil {
		h = hashMix(h, e.Else.Hash())
	}
	return h
}

// Equal implements ScalarExpr.
func (e *Case) Equal(o ScalarExpr) bool {
	c, ok := o.(*Case)
	if !ok || len(c.Whens) != len(e.Whens) {
		return false
	}
	for i := range e.Whens {
		if !e.Whens[i].When.Equal(c.Whens[i].When) || !e.Whens[i].Then.Equal(c.Whens[i].Then) {
			return false
		}
	}
	if (e.Else == nil) != (c.Else == nil) {
		return false
	}
	return e.Else == nil || e.Else.Equal(c.Else)
}

// String implements ScalarExpr.
func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.When, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// IsNull tests a value for SQL NULL (or NOT NULL when Negated).
type IsNull struct {
	Arg     ScalarExpr
	Negated bool
}

// Cols implements ScalarExpr.
func (e *IsNull) Cols() base.ColSet { return e.Arg.Cols() }

// Hash implements ScalarExpr.
func (e *IsNull) Hash() uint64 {
	h := hashString(fnvOffset, "isnull")
	if e.Negated {
		h = hashMix(h, 1)
	}
	return hashMix(h, e.Arg.Hash())
}

// Equal implements ScalarExpr.
func (e *IsNull) Equal(o ScalarExpr) bool {
	n, ok := o.(*IsNull)
	return ok && n.Negated == e.Negated && n.Arg.Equal(e.Arg)
}

// String implements ScalarExpr.
func (e *IsNull) String() string {
	if e.Negated {
		return e.Arg.String() + " IS NOT NULL"
	}
	return e.Arg.String() + " IS NULL"
}

// InList tests membership in a literal list.
type InList struct {
	Arg     ScalarExpr
	Vals    []ScalarExpr
	Negated bool
}

// Cols implements ScalarExpr.
func (e *InList) Cols() base.ColSet {
	s := e.Arg.Cols()
	for _, v := range e.Vals {
		s = s.Union(v.Cols())
	}
	return s
}

// Hash implements ScalarExpr.
func (e *InList) Hash() uint64 {
	h := hashString(fnvOffset, "inlist")
	if e.Negated {
		h = hashMix(h, 1)
	}
	h = hashMix(h, e.Arg.Hash())
	for _, v := range e.Vals {
		h = hashMix(h, v.Hash())
	}
	return h
}

// Equal implements ScalarExpr.
func (e *InList) Equal(o ScalarExpr) bool {
	l, ok := o.(*InList)
	if !ok || l.Negated != e.Negated || len(l.Vals) != len(e.Vals) || !l.Arg.Equal(e.Arg) {
		return false
	}
	for i := range e.Vals {
		if !e.Vals[i].Equal(l.Vals[i]) {
			return false
		}
	}
	return true
}

// String implements ScalarExpr.
func (e *InList) String() string {
	not := ""
	if e.Negated {
		not = " NOT"
	}
	return e.Arg.String() + not + " IN " + joinScalarStrings(e.Vals, ",")
}

// ---------------------------------------------------------------------------
// Aggregates and window functions (appear only as operator parameters)

// AggFunc is an aggregate function applied by a GbAgg operator. Arg is nil
// for count(*). The binder rewrites avg(x) into sum(x)/count(x), so only
// count, sum, min and max reach the optimizer.
type AggFunc struct {
	Name     string // count, sum, min, max
	Arg      ScalarExpr
	Distinct bool
}

// Cols returns the columns referenced by the aggregate argument.
func (a *AggFunc) Cols() base.ColSet {
	if a.Arg == nil {
		return base.ColSet{}
	}
	return a.Arg.Cols()
}

// Hash returns a structural hash.
func (a *AggFunc) Hash() uint64 {
	h := hashString(fnvOffset, "agg")
	h = hashString(h, a.Name)
	if a.Distinct {
		h = hashMix(h, 1)
	}
	if a.Arg != nil {
		h = hashMix(h, a.Arg.Hash())
	}
	return h
}

// Equal reports structural equality.
func (a *AggFunc) Equal(o *AggFunc) bool {
	if a.Name != o.Name || a.Distinct != o.Distinct || (a.Arg == nil) != (o.Arg == nil) {
		return false
	}
	return a.Arg == nil || a.Arg.Equal(o.Arg)
}

// String renders "sum(c1)".
func (a *AggFunc) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return a.Name + "(" + arg + ")"
}

// WinFunc is a window function computed by a Window operator.
type WinFunc struct {
	Name string // rank, row_number, sum, count, min, max
	Arg  ScalarExpr
}

// Cols returns the columns referenced by the window function argument.
func (w *WinFunc) Cols() base.ColSet {
	if w.Arg == nil {
		return base.ColSet{}
	}
	return w.Arg.Cols()
}

// Hash returns a structural hash.
func (w *WinFunc) Hash() uint64 {
	h := hashString(fnvOffset, "win")
	h = hashString(h, w.Name)
	if w.Arg != nil {
		h = hashMix(h, w.Arg.Hash())
	}
	return h
}

// Equal reports structural equality.
func (w *WinFunc) Equal(o *WinFunc) bool {
	if w.Name != o.Name || (w.Arg == nil) != (o.Arg == nil) {
		return false
	}
	return w.Arg == nil || w.Arg.Equal(o.Arg)
}

// String renders "rank()" or "sum(c1)".
func (w *WinFunc) String() string {
	arg := ""
	if w.Arg != nil {
		arg = w.Arg.String()
	}
	return w.Name + "(" + arg + ")"
}

// ---------------------------------------------------------------------------
// Subqueries (unnested by normalization before reaching the Memo)

// SubqueryKind discriminates subquery scalars.
type SubqueryKind uint8

// Subquery kinds.
const (
	SubScalar SubqueryKind = iota // (SELECT x ...) used as a value
	SubExists                     // EXISTS (...)
	SubNotExists
	SubIn    // expr IN (SELECT x ...)
	SubNotIn // expr NOT IN (SELECT x ...)
)

// String names the subquery kind.
func (k SubqueryKind) String() string {
	switch k {
	case SubScalar:
		return "Scalar"
	case SubExists:
		return "Exists"
	case SubNotExists:
		return "NotExists"
	case SubIn:
		return "In"
	case SubNotIn:
		return "NotIn"
	default:
		return fmt.Sprintf("SubqueryKind(%d)", k)
	}
}

// Subquery is a subquery embedded in a scalar context. Input is the logical
// plan of the subquery; OutCol identifies the produced column for
// scalar/IN kinds; Test is the left operand of IN. Orca's unified subquery
// representation keeps these first-class until decorrelation rewrites them
// into (semi/anti/scalar) joins — the normalizer in internal/core does the
// same here; a Subquery that survives to plan time becomes a SubPlan only in
// the legacy Planner baseline.
//
//orcavet:ignore:opclosure the engine never sees a Subquery: normalization rewrites every kind into joins or SubPlan operators before plan time
type Subquery struct {
	Kind   SubqueryKind
	Input  *Expr // logical tree
	OutCol base.ColID
	Test   ScalarExpr // IN kinds only
}

// Cols implements ScalarExpr: the free (outer) columns of the subquery plus
// the test expression's columns.
func (e *Subquery) Cols() base.ColSet {
	s := FreeCols(e.Input)
	if e.Test != nil {
		s = s.Union(e.Test.Cols())
	}
	return s
}

// Hash implements ScalarExpr; subquery identity is by input tree pointer
// because subquery trees are never deduplicated structurally.
func (e *Subquery) Hash() uint64 {
	h := hashString(fnvOffset, "subq")
	h = hashMix(h, uint64(e.Kind))
	h = hashMix(h, uint64(e.OutCol))
	return hashMix(h, uint64(fmt.Sprintf("%p", e.Input)[2]))
}

// Equal implements ScalarExpr.
func (e *Subquery) Equal(o ScalarExpr) bool {
	s, ok := o.(*Subquery)
	return ok && s == e
}

// String implements ScalarExpr.
func (e *Subquery) String() string {
	switch e.Kind {
	case SubExists:
		return "EXISTS(subquery)"
	case SubNotExists:
		return "NOT EXISTS(subquery)"
	case SubIn:
		return e.Test.String() + " IN (subquery)"
	case SubNotIn:
		return e.Test.String() + " NOT IN (subquery)"
	default:
		return fmt.Sprintf("subquery(c%d)", e.OutCol)
	}
}
