package ops

import (
	"orca/internal/base"
	"orca/internal/md"
)

// Hash and equality helpers backing the generated ParamHash/ParamEqual
// methods in ops.gen.go, one pair per composite field type of the operator
// DSL (defs/*.opt). Slice hashes mix in the length so a boundary shift
// between adjacent fields cannot collide silently.

func hashScalar(h uint64, e ScalarExpr) uint64 {
	if e == nil {
		return hashMix(h, 0xfd)
	}
	return hashMix(h, e.Hash())
}

func scalarEqual(a, b ScalarExpr) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Equal(b)
}

func hashScalars(h uint64, es []ScalarExpr) uint64 {
	for _, e := range es {
		h = hashScalar(h, e)
	}
	return hashMix(h, uint64(len(es)))
}

func scalarsEqual(a, b []ScalarExpr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !scalarEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func hashColIDs(h uint64, ids []base.ColID) uint64 {
	for _, c := range ids {
		h = hashMix(h, uint64(c))
	}
	return hashMix(h, uint64(len(ids)))
}

func colIDsEqual(a, b []base.ColID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hashColRefs(h uint64, cols []*md.ColRef) uint64 {
	for _, c := range cols {
		h = hashMix(h, uint64(c.ID))
	}
	return hashMix(h, uint64(len(cols)))
}

func colRefsEqual(a, b []*md.ColRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func hashColIDLists(h uint64, lists [][]base.ColID) uint64 {
	for _, l := range lists {
		h = hashColIDs(h, l)
		h = hashMix(h, 0xfe)
	}
	return hashMix(h, uint64(len(lists)))
}

func colIDListsEqual(a, b [][]base.ColID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !colIDsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func hashInts(h uint64, v []int) uint64 {
	for _, x := range v {
		h = hashMix(h, uint64(x))
	}
	return hashMix(h, uint64(len(v)))
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hashProjElems(h uint64, elems []ProjElem) uint64 {
	for _, e := range elems {
		h = hashMix(h, uint64(e.Col.ID))
		h = hashScalar(h, e.Expr)
	}
	return hashMix(h, uint64(len(elems)))
}

func projElemsEqual(a, b []ProjElem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Col.ID != b[i].Col.ID || !scalarEqual(a[i].Expr, b[i].Expr) {
			return false
		}
	}
	return true
}

func hashAggElems(h uint64, aggs []AggElem) uint64 {
	for _, a := range aggs {
		h = hashMix(h, uint64(a.Col.ID))
		h = hashMix(h, a.Agg.Hash())
	}
	return hashMix(h, uint64(len(aggs)))
}

func aggElemsEqual(a, b []AggElem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Col.ID != b[i].Col.ID || !a[i].Agg.Equal(b[i].Agg) {
			return false
		}
	}
	return true
}

func hashWinElems(h uint64, wins []WinElem) uint64 {
	for _, w := range wins {
		h = hashMix(h, uint64(w.Col.ID))
		h = hashMix(h, w.Fn.Hash())
	}
	return hashMix(h, uint64(len(wins)))
}

func winElemsEqual(a, b []WinElem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Col.ID != b[i].Col.ID || !a[i].Fn.Equal(b[i].Fn) {
			return false
		}
	}
	return true
}
