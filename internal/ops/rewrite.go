package ops

// Scalar-slot rewriting: the plan cache (internal/plancache) normalizes
// expression trees modulo constants by rewriting every scalar an operator
// carries, and rebinds cached plans by rewriting them back. The visitor here
// is the single source of truth for which operator fields hold scalars —
// fingerprinting and rebinding must see exactly the same slots, or a
// constant could survive in a cached plan without participating in the key.
//
// Operators not listed (Get, Limit, UnionAll, Sort, motions, ...) carry no
// ScalarExpr parameters; their constants-by-value (Limit counts, partition
// lists) are operator identity and hash into the shape fingerprint via
// ParamHash, which is what makes them safe to leave alone.

// RewriteScalarLeaves rebuilds a scalar tree with every leaf (Const, Ident,
// Param, Subquery) replaced by leaf's result; interior nodes are copied only
// when a descendant changed, so an identity rewrite returns s itself.
// Returning the argument unchanged from leaf keeps that leaf.
func RewriteScalarLeaves(s ScalarExpr, leaf func(ScalarExpr) ScalarExpr) ScalarExpr {
	if s == nil {
		return nil
	}
	switch x := s.(type) {
	case *Cmp:
		l, r := RewriteScalarLeaves(x.L, leaf), RewriteScalarLeaves(x.R, leaf)
		if l == x.L && r == x.R {
			return x
		}
		return &Cmp{Op: x.Op, L: l, R: r}
	case *BoolOp:
		args, changed := rewriteScalarSlice(x.Args, leaf)
		if !changed {
			return x
		}
		return &BoolOp{Kind: x.Kind, Args: args}
	case *BinOp:
		l, r := RewriteScalarLeaves(x.L, leaf), RewriteScalarLeaves(x.R, leaf)
		if l == x.L && r == x.R {
			return x
		}
		return &BinOp{Op: x.Op, L: l, R: r}
	case *Func:
		args, changed := rewriteScalarSlice(x.Args, leaf)
		if !changed {
			return x
		}
		return &Func{Name: x.Name, Args: args}
	case *Case:
		changed := false
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i].When = RewriteScalarLeaves(w.When, leaf)
			whens[i].Then = RewriteScalarLeaves(w.Then, leaf)
			if whens[i].When != w.When || whens[i].Then != w.Then {
				changed = true
			}
		}
		els := RewriteScalarLeaves(x.Else, leaf)
		if !changed && els == x.Else {
			return x
		}
		return &Case{Whens: whens, Else: els}
	case *IsNull:
		arg := RewriteScalarLeaves(x.Arg, leaf)
		if arg == x.Arg {
			return x
		}
		return &IsNull{Arg: arg, Negated: x.Negated}
	case *InList:
		arg := RewriteScalarLeaves(x.Arg, leaf)
		vals, changed := rewriteScalarSlice(x.Vals, leaf)
		if arg == x.Arg && !changed {
			return x
		}
		return &InList{Arg: arg, Vals: vals, Negated: x.Negated}
	default:
		// Leaves: Ident, Const, Param — and Subquery, which the plan cache
		// treats as a leaf because its identity is by pointer (the cache
		// refuses shapes containing one rather than descending).
		return leaf(s)
	}
}

func rewriteScalarSlice(in []ScalarExpr, leaf func(ScalarExpr) ScalarExpr) ([]ScalarExpr, bool) {
	out := make([]ScalarExpr, len(in))
	changed := false
	for i, a := range in {
		out[i] = RewriteScalarLeaves(a, leaf)
		if out[i] != a {
			changed = true
		}
	}
	if !changed {
		return in, false
	}
	return out, true
}

// RewriteOpScalars returns op with every ScalarExpr parameter rewritten by
// rw (which receives whole scalar slots, nil included for absent optional
// predicates). Operators are immutable values, so an unchanged op is
// returned as-is and a changed one is a shallow copy — callers never mutate
// shared trees. The second result reports whether this operator kind is
// known to the visitor: false means the operator carries out-of-line state
// the rewrite cannot reach (SubPlanFilter/SubPlanProject bound plans), and
// the plan cache must refuse the shape.
func RewriteOpScalars(op Operator, rw func(ScalarExpr) ScalarExpr) (Operator, bool) {
	switch x := op.(type) {
	case *Select:
		if p := rw(x.Pred); p != x.Pred {
			c := *x
			c.Pred = p
			return &c, true
		}
	case *Join:
		if p := rw(x.Pred); p != x.Pred {
			c := *x
			c.Pred = p
			return &c, true
		}
	case *NAryJoin:
		if preds, changed := rewriteSlots(x.Preds, rw); changed {
			c := *x
			c.Preds = preds
			return &c, true
		}
	case *Project:
		if elems, changed := rewriteProjElems(x.Elems, rw); changed {
			c := *x
			c.Elems = elems
			return &c, true
		}
	case *GbAgg:
		if aggs, changed := rewriteAggElems(x.Aggs, rw); changed {
			c := *x
			c.Aggs = aggs
			return &c, true
		}
	case *Window:
		if wins, changed := rewriteWinElems(x.Wins, rw); changed {
			c := *x
			c.Wins = wins
			return &c, true
		}
	case *Scan:
		if p := rw(x.Filter); p != x.Filter {
			c := *x
			c.Filter = p
			return &c, true
		}
	case *IndexScan:
		eq, res := rw(x.EqFilter), rw(x.Residual)
		if eq != x.EqFilter || res != x.Residual {
			c := *x
			c.EqFilter, c.Residual = eq, res
			return &c, true
		}
	case *Filter:
		if p := rw(x.Pred); p != x.Pred {
			c := *x
			c.Pred = p
			return &c, true
		}
	case *ComputeScalar:
		if elems, changed := rewriteProjElems(x.Elems, rw); changed {
			c := *x
			c.Elems = elems
			return &c, true
		}
	case *HashJoin:
		if p := rw(x.Residual); p != x.Residual {
			c := *x
			c.Residual = p
			return &c, true
		}
	case *NLJoin:
		if p := rw(x.Pred); p != x.Pred {
			c := *x
			c.Pred = p
			return &c, true
		}
	case *HashAgg:
		if aggs, changed := rewriteAggElems(x.Aggs, rw); changed {
			c := *x
			c.Aggs = aggs
			return &c, true
		}
	case *StreamAgg:
		if aggs, changed := rewriteAggElems(x.Aggs, rw); changed {
			c := *x
			c.Aggs = aggs
			return &c, true
		}
	case *ScalarAgg:
		if aggs, changed := rewriteAggElems(x.Aggs, rw); changed {
			c := *x
			c.Aggs = aggs
			return &c, true
		}
	case *PhysicalWindow:
		if wins, changed := rewriteWinElems(x.Wins, rw); changed {
			c := *x
			c.Wins = wins
			return &c, true
		}
	case *SubPlanFilter, *SubPlanProject:
		// Bound subplans hold whole expression trees out of line with
		// pointer identity; the rewrite cannot normalize them.
		return op, false
	}
	return op, true
}

func rewriteSlots(in []ScalarExpr, rw func(ScalarExpr) ScalarExpr) ([]ScalarExpr, bool) {
	out := make([]ScalarExpr, len(in))
	changed := false
	for i, s := range in {
		out[i] = rw(s)
		if out[i] != s {
			changed = true
		}
	}
	if !changed {
		return in, false
	}
	return out, true
}

func rewriteProjElems(in []ProjElem, rw func(ScalarExpr) ScalarExpr) ([]ProjElem, bool) {
	out := make([]ProjElem, len(in))
	changed := false
	for i, e := range in {
		out[i] = e
		out[i].Expr = rw(e.Expr)
		if out[i].Expr != e.Expr {
			changed = true
		}
	}
	if !changed {
		return in, false
	}
	return out, true
}

func rewriteAggElems(in []AggElem, rw func(ScalarExpr) ScalarExpr) ([]AggElem, bool) {
	out := make([]AggElem, len(in))
	changed := false
	for i, e := range in {
		out[i] = e
		if e.Agg != nil && e.Agg.Arg != nil {
			if arg := rw(e.Agg.Arg); arg != e.Agg.Arg {
				agg := *e.Agg
				agg.Arg = arg
				out[i].Agg = &agg
				changed = true
			}
		}
	}
	if !changed {
		return in, false
	}
	return out, true
}

func rewriteWinElems(in []WinElem, rw func(ScalarExpr) ScalarExpr) ([]WinElem, bool) {
	out := make([]WinElem, len(in))
	changed := false
	for i, e := range in {
		out[i] = e
		if e.Fn != nil && e.Fn.Arg != nil {
			if arg := rw(e.Fn.Arg); arg != e.Fn.Arg {
				fn := *e.Fn
				fn.Arg = arg
				out[i].Fn = &fn
				changed = true
			}
		}
	}
	if !changed {
		return in, false
	}
	return out, true
}
