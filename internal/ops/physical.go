package ops

import (
	"fmt"
	"strings"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/props"
)

// The physical operator structs and their Name/Arity/ParamHash/ParamEqual
// methods are generated from defs/ops_physical.opt into ops.gen.go; this
// file keeps the hand-written property-framework halves (ChildReqs/Derive)
// and Describe renderings.

// physicalBase provides the Physical marker.
type physicalBase struct{}

func (physicalBase) physical() {}

// enforcerBase additionally provides the Enforcer marker.
type enforcerBase struct{ physicalBase }

func (enforcerBase) enforcer() {}

// noChildren is the single "no requirements" alternative for leaf operators.
var noChildren = [][]props.Required{{}}

func anyReq() props.Required { return props.Required{Dist: props.AnyDist} }

// passThrough builds a child request keeping dist and order but dropping
// rewindability (most operators cannot deliver it; the Spool enforcer can).
func passThrough(req props.Required) props.Required {
	return props.Required{Dist: req.Dist, Order: req.Order}
}

// ---------------------------------------------------------------------------
// Scan / IndexScan

// OutputCols returns the scanned columns.
func (s *Scan) OutputCols() base.ColSet {
	var out base.ColSet
	for _, c := range s.Cols {
		out.Add(c.ID)
	}
	return out
}

// DistCols returns the ColIDs of the table's hash-distribution columns.
func (s *Scan) DistCols() []base.ColID {
	out := make([]base.ColID, len(s.Rel.DistCols))
	for i, ord := range s.Rel.DistCols {
		out[i] = s.Cols[ord].ID
	}
	return out
}

// ChildReqs implements Physical.
func (s *Scan) ChildReqs(props.Required) [][]props.Required { return noChildren }

// Derive implements Physical: the delivered distribution is the stored
// table's distribution; scans are natively rewindable.
func (s *Scan) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: tableDist(s.Rel, s.Cols), Rewindable: true}
}

// Describe renders the scan with filter and partition selection.
func (s *Scan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan(%s)", s.Rel.Name)
	if s.Pruned {
		fmt.Fprintf(&b, " parts=%d/%d", len(s.Parts), len(s.Rel.Parts))
	}
	if s.Filter != nil {
		fmt.Fprintf(&b, " filter=%s", s.Filter)
	}
	return b.String()
}

func tableDist(rel *md.Relation, cols []*md.ColRef) props.Distribution {
	switch rel.Policy {
	case md.DistHash:
		hc := make([]base.ColID, len(rel.DistCols))
		for i, ord := range rel.DistCols {
			hc[i] = cols[ord].ID
		}
		return props.Hashed(hc...)
	case md.DistReplicated:
		return props.ReplicatedDist
	case md.DistSingleton:
		return props.SingletonDist
	default:
		return props.RandomDist
	}
}

// OutputCols returns the scanned columns.
func (s *IndexScan) OutputCols() base.ColSet {
	var out base.ColSet
	for _, c := range s.Cols {
		out.Add(c.ID)
	}
	return out
}

// Order returns the sort order the index delivers.
func (s *IndexScan) Order() props.OrderSpec {
	items := make([]props.OrderItem, len(s.Index.KeyCols))
	for i, ord := range s.Index.KeyCols {
		items[i] = props.OrderItem{Col: s.Cols[ord].ID}
	}
	return props.OrderSpec{Items: items}
}

// ChildReqs implements Physical.
func (s *IndexScan) ChildReqs(props.Required) [][]props.Required { return noChildren }

// Derive implements Physical.
func (s *IndexScan) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: tableDist(s.Rel, s.Cols), Order: s.Order(), Rewindable: true}
}

// Describe renders the index scan.
func (s *IndexScan) Describe() string {
	d := fmt.Sprintf("IndexScan(%s via %s)", s.Rel.Name, s.Index.Name)
	if s.EqFilter != nil {
		d += " key=" + s.EqFilter.String()
	}
	if s.Residual != nil {
		d += " residual=" + s.Residual.String()
	}
	return d
}

// ---------------------------------------------------------------------------
// Filter / ComputeScalar

// ChildReqs implements Physical: requirements pass through the filter.
func (f *Filter) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{passThrough(req)}}
}

// Derive implements Physical: distribution and order pass through.
func (f *Filter) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: children[0].Order}
}

// Describe renders the predicate.
func (f *Filter) Describe() string { return "Filter " + f.Pred.String() }

// NewComputeScalar builds the operator, deriving the pass-through map.
func NewComputeScalar(elems []ProjElem) *ComputeScalar {
	pass := make(map[base.ColID]base.ColID)
	for _, e := range elems {
		if id, ok := e.Expr.(*Ident); ok {
			pass[e.Col.ID] = id.Col
		}
	}
	return &ComputeScalar{Elems: elems, PassMap: pass}
}

// OutputCols returns the projected columns.
func (p *ComputeScalar) OutputCols() base.ColSet {
	var s base.ColSet
	for _, e := range p.Elems {
		s.Add(e.Col.ID)
	}
	return s
}

// UsedCols returns the referenced input columns.
func (p *ComputeScalar) UsedCols() base.ColSet {
	var s base.ColSet
	for _, e := range p.Elems {
		s = s.Union(e.Expr.Cols())
	}
	return s
}

// translate rewrites a requirement through the pass-through map; ok is false
// when a required column is genuinely computed here and cannot be requested
// from the child.
func (p *ComputeScalar) translate(req props.Required) (props.Required, bool) {
	out := props.Required{}
	switch req.Dist.Kind {
	case props.DistHashed:
		cols := make([]base.ColID, len(req.Dist.Cols))
		for i, c := range req.Dist.Cols {
			in, ok := p.PassMap[c]
			if !ok {
				return out, false
			}
			cols[i] = in
		}
		out.Dist = props.Distribution{Kind: props.DistHashed, Cols: cols, AllowReplicated: req.Dist.AllowReplicated}
	default:
		out.Dist = req.Dist
	}
	items := make([]props.OrderItem, len(req.Order.Items))
	for i, it := range req.Order.Items {
		in, ok := p.PassMap[it.Col]
		if !ok {
			return out, false
		}
		items[i] = props.OrderItem{Col: in, Desc: it.Desc}
	}
	out.Order = props.OrderSpec{Items: items}
	return out, true
}

// ChildReqs implements Physical.
func (p *ComputeScalar) ChildReqs(req props.Required) [][]props.Required {
	if creq, ok := p.translate(req); ok {
		return [][]props.Required{{creq}}
	}
	// Requirements name computed columns; ask nothing and let enforcers
	// above this operator deliver them.
	return [][]props.Required{{anyReq()}}
}

// Derive implements Physical: delivered properties are the child's,
// translated through the projection; hashing/ordering columns that are
// projected away degrade the distribution to Random and truncate the order.
func (p *ComputeScalar) Derive(children []props.Derived) props.Derived {
	out := props.Derived{}
	// Build reverse map input→output for identity projections.
	rev := make(map[base.ColID]base.ColID, len(p.PassMap))
	for o, in := range p.PassMap {
		rev[in] = o
	}
	cd := children[0]
	switch cd.Dist.Kind {
	case props.DistHashed:
		cols := make([]base.ColID, len(cd.Dist.Cols))
		ok := true
		for i, c := range cd.Dist.Cols {
			if o, found := rev[c]; found {
				cols[i] = o
			} else {
				ok = false
				break
			}
		}
		if ok {
			out.Dist = props.Hashed(cols...)
		} else {
			out.Dist = props.RandomDist
		}
	default:
		out.Dist = cd.Dist
	}
	var items []props.OrderItem
	for _, it := range cd.Order.Items {
		o, found := rev[it.Col]
		if !found {
			break
		}
		items = append(items, props.OrderItem{Col: o, Desc: it.Desc})
	}
	out.Order = props.OrderSpec{Items: items}
	return out
}

// Describe renders the projections.
func (p *ComputeScalar) Describe() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = fmt.Sprintf("c%d=%s", e.Col.ID, e.Expr)
	}
	return "ComputeScalar [" + strings.Join(parts, ", ") + "]"
}
