package ops

import (
	"fmt"
	"strings"

	"orca/internal/base"
	"orca/internal/props"
)

// The HashAgg/StreamAgg/ScalarAgg structs and their Arity/ParamHash/
// ParamEqual methods are generated from defs/ops_physical.opt into
// ops.gen.go; HashAgg/ScalarAgg keep hand-written Name methods (CustomName:
// the display name carries the aggregation mode).

// AggMode distinguishes the stages of a multi-stage (MPP) aggregate: a
// Single aggregate does all the work at once; a Local aggregate
// pre-aggregates segment-resident data and a Global aggregate combines the
// partial states after a motion — the classic two-stage aggregation plan.
type AggMode uint8

// Aggregation modes.
const (
	AggSingle AggMode = iota
	AggLocal
	AggGlobal
)

// String names the mode.
func (m AggMode) String() string {
	switch m {
	case AggLocal:
		return "Local"
	case AggGlobal:
		return "Global"
	default:
		return "Single"
	}
}

func aggOutputCols(groupCols []base.ColID, aggs []AggElem) base.ColSet {
	s := base.MakeColSet(groupCols...)
	for _, a := range aggs {
		s.Add(a.Col.ID)
	}
	return s
}

func aggUsedCols(groupCols []base.ColID, aggs []AggElem) base.ColSet {
	s := base.MakeColSet(groupCols...)
	for _, a := range aggs {
		s = s.Union(a.Agg.Cols())
	}
	return s
}

// groupDistAlternatives lists the child distribution requests that make a
// grouped aggregate correct: partition on all grouping columns, on any
// single grouping column (rows in one hash bucket of a grouping column
// necessarily agree on that column, so groups never straddle segments), or
// everything on one host.
func groupDistAlternatives(groupCols []base.ColID) []props.Distribution {
	var out []props.Distribution
	out = append(out, props.Hashed(groupCols...))
	if len(groupCols) > 1 {
		for _, c := range groupCols {
			out = append(out, props.Hashed(c))
		}
	}
	out = append(out, props.SingletonDist)
	return out
}

// ---------------------------------------------------------------------------
// HashAgg

// Name implements Operator.
func (a *HashAgg) Name() string { return a.Mode.String() + "HashAgg" }

// OutputCols returns group plus aggregate columns.
func (a *HashAgg) OutputCols() base.ColSet { return aggOutputCols(a.GroupCols, a.Aggs) }

// UsedCols returns referenced input columns.
func (a *HashAgg) UsedCols() base.ColSet { return aggUsedCols(a.GroupCols, a.Aggs) }

// ChildReqs implements Physical. In Global mode the aggregate functions
// combine partial states produced by a matching Local aggregate below
// (count→sum of partial counts, sum/min/max→same function).
func (a *HashAgg) ChildReqs(props.Required) [][]props.Required {
	if a.Mode == AggLocal {
		return [][]props.Required{{anyReq()}}
	}
	dists := groupDistAlternatives(a.GroupCols)
	alts := make([][]props.Required, len(dists))
	for i, d := range dists {
		alts[i] = []props.Required{{Dist: d}}
	}
	return alts
}

// Derive implements Physical: the child distribution is preserved; hash
// aggregation destroys order.
func (a *HashAgg) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist}
}

// Describe renders mode, grouping and aggregates.
func (a *HashAgg) Describe() string {
	return fmt.Sprintf("%s group=%v aggs=[%s]", a.Name(), a.GroupCols, aggList(a.Aggs))
}

func aggList(aggs []AggElem) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		parts[i] = fmt.Sprintf("c%d=%s", a.Col.ID, a.Agg)
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------------
// StreamAgg

// OutputCols returns group plus aggregate columns.
func (a *StreamAgg) OutputCols() base.ColSet { return aggOutputCols(a.GroupCols, a.Aggs) }

// UsedCols returns referenced input columns.
func (a *StreamAgg) UsedCols() base.ColSet { return aggUsedCols(a.GroupCols, a.Aggs) }

// GroupOrder is the input order the operator requires.
func (a *StreamAgg) GroupOrder() props.OrderSpec { return props.MakeOrder(a.GroupCols...) }

// ChildReqs implements Physical.
func (a *StreamAgg) ChildReqs(props.Required) [][]props.Required {
	ord := a.GroupOrder()
	dists := groupDistAlternatives(a.GroupCols)
	alts := make([][]props.Required, len(dists))
	for i, d := range dists {
		alts[i] = []props.Required{{Dist: d, Order: ord}}
	}
	return alts
}

// Derive implements Physical: distribution and the group order pass through.
func (a *StreamAgg) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: a.GroupOrder()}
}

// Describe renders grouping and aggregates.
func (a *StreamAgg) Describe() string {
	return fmt.Sprintf("StreamAgg group=%v aggs=[%s]", a.GroupCols, aggList(a.Aggs))
}

// ---------------------------------------------------------------------------
// ScalarAgg

// Name implements Operator.
func (a *ScalarAgg) Name() string { return a.Mode.String() + "ScalarAgg" }

// OutputCols returns the aggregate columns.
func (a *ScalarAgg) OutputCols() base.ColSet { return aggOutputCols(nil, a.Aggs) }

// UsedCols returns referenced input columns.
func (a *ScalarAgg) UsedCols() base.ColSet { return aggUsedCols(nil, a.Aggs) }

// ChildReqs implements Physical.
func (a *ScalarAgg) ChildReqs(props.Required) [][]props.Required {
	if a.Mode == AggLocal {
		return [][]props.Required{{anyReq()}}
	}
	// Single and Global both consume everything on one host.
	return [][]props.Required{{{Dist: props.SingletonDist}}}
}

// Derive implements Physical: a Local scalar aggregate emits one row per
// segment (no placement guarantee); Single/Global emit one row on one host.
func (a *ScalarAgg) Derive(children []props.Derived) props.Derived {
	if a.Mode == AggLocal {
		d := children[0].Dist
		if d.Kind == props.DistSingleton || d.Kind == props.DistReplicated {
			return props.Derived{Dist: props.SingletonDist}
		}
		return props.Derived{Dist: props.RandomDist}
	}
	return props.Derived{Dist: props.SingletonDist}
}

// Describe renders the aggregates.
func (a *ScalarAgg) Describe() string {
	return fmt.Sprintf("%s aggs=[%s]", a.Name(), aggList(a.Aggs))
}
