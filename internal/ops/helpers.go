package ops

import (
	"orca/internal/base"
)

// OutputColsOf computes the output column set of a logical expression tree.
func OutputColsOf(e *Expr) base.ColSet {
	childOuts := make([]base.ColSet, len(e.Children))
	for i, c := range e.Children {
		childOuts[i] = OutputColsOf(c)
	}
	return OutputColsOp(e.Op, childOuts)
}

// OutputColsOp computes the output columns of an operator given its
// children's output columns. It covers both logical and physical operators;
// enforcers and filters are pass-through.
func OutputColsOp(op Operator, childOuts []base.ColSet) base.ColSet {
	switch o := op.(type) {
	case *Get:
		return o.OutputCols()
	case *Project:
		return o.OutputCols()
	case *GbAgg:
		return o.OutputCols()
	case *UnionAll:
		return o.OutputCols()
	case *CTEConsumer:
		return o.OutputCols()
	case *Join:
		switch o.Type {
		case SemiJoin, AntiJoin:
			return childOuts[0]
		default:
			return childOuts[0].Union(childOuts[1])
		}
	case *NAryJoin:
		var s base.ColSet
		for _, c := range childOuts {
			s = s.Union(c)
		}
		return s
	case *CTEAnchor:
		return childOuts[1]
	case *Window:
		s := childOuts[0]
		for _, e := range o.Wins {
			s = s.Union(base.MakeColSet(e.Col.ID))
		}
		return s
	case *Scan:
		return o.OutputCols()
	case *IndexScan:
		return o.OutputCols()
	case *ComputeScalar:
		return o.OutputCols()
	case *HashAgg:
		return o.OutputCols()
	case *StreamAgg:
		return o.OutputCols()
	case *ScalarAgg:
		return o.OutputCols()
	case *HashJoin:
		switch o.Type {
		case SemiJoin, AntiJoin:
			return childOuts[0]
		default:
			return childOuts[0].Union(childOuts[1])
		}
	case *NLJoin:
		switch o.Type {
		case SemiJoin, AntiJoin:
			return childOuts[0]
		default:
			return childOuts[0].Union(childOuts[1])
		}
	case *PhysicalUnionAll:
		return o.OutputCols()
	case *PhysicalCTEConsumer:
		return o.OutputCols()
	case *Sequence:
		return childOuts[len(childOuts)-1]
	case *PhysicalWindow:
		s := childOuts[0]
		for _, e := range o.Wins {
			s = s.Union(base.MakeColSet(e.Col.ID))
		}
		return s
	case *SubPlanFilter:
		return childOuts[0]
	case *SubPlanProject:
		s := childOuts[0]
		s.Add(o.OutCol)
		return s
	default:
		// Filters, limits, sorts, motions, spools: pass-through.
		if len(childOuts) > 0 {
			return childOuts[0]
		}
		return base.ColSet{}
	}
}

// usedColsOp returns the columns an operator's own parameters reference
// (subquery parameters contribute their free columns).
func usedColsOp(op Operator) base.ColSet {
	switch o := op.(type) {
	case *Select:
		return o.Pred.Cols()
	case *Project:
		return o.UsedCols()
	case *Join:
		if o.Pred != nil {
			return o.Pred.Cols()
		}
	case *NAryJoin:
		var s base.ColSet
		for _, p := range o.Preds {
			s = s.Union(p.Cols())
		}
		return s
	case *GbAgg:
		return o.UsedCols()
	case *Limit:
		return o.Order.Cols()
	case *Window:
		return o.UsedCols()
	case *Filter:
		return o.Pred.Cols()
	case *ComputeScalar:
		return o.UsedCols()
	case *HashJoin:
		var s base.ColSet
		if o.Residual != nil {
			s = o.Residual.Cols()
		}
		s = s.Union(base.MakeColSet(o.LeftKeys...)).Union(base.MakeColSet(o.RightKeys...))
		return s
	case *NLJoin:
		if o.Pred != nil {
			return o.Pred.Cols()
		}
	case *HashAgg:
		return o.UsedCols()
	case *StreamAgg:
		return o.UsedCols()
	case *ScalarAgg:
		return o.UsedCols()
	case *PhysicalWindow:
		var s base.ColSet
		s = s.Union(base.MakeColSet(o.PartitionCols...)).Union(o.Order.Cols())
		for _, e := range o.Wins {
			s = s.Union(e.Fn.Cols())
		}
		return s
	case *SubPlanFilter:
		var s base.ColSet
		if o.Test != nil {
			s = o.Test.Cols()
		}
		return s.Union(FreeCols(o.Plan))
	case *SubPlanProject:
		return FreeCols(o.Plan)
	}
	return base.ColSet{}
}

// FreeCols computes the free (outer-reference) columns of an expression
// tree: columns referenced anywhere below but produced nowhere below. A
// non-empty result marks a correlated subtree.
func FreeCols(e *Expr) base.ColSet {
	out, free := outAndFree(e)
	_ = out
	return free
}

func outAndFree(e *Expr) (out, free base.ColSet) {
	var childOuts []base.ColSet
	var allChildOut base.ColSet
	for _, c := range e.Children {
		co, cf := outAndFree(c)
		childOuts = append(childOuts, co)
		allChildOut = allChildOut.Union(co)
		free = free.Union(cf)
	}
	free = free.Union(usedColsOp(e.Op))
	out = OutputColsOp(e.Op, childOuts)
	free = free.Difference(allChildOut).Difference(out)
	return out, free
}

// Conjuncts splits a predicate into its top-level AND terms; a nil predicate
// yields nil.
func Conjuncts(pred ScalarExpr) []ScalarExpr {
	if pred == nil {
		return nil
	}
	if b, ok := pred.(*BoolOp); ok && b.Kind == BoolAnd {
		var out []ScalarExpr
		for _, a := range b.Args {
			out = append(out, Conjuncts(a)...)
		}
		return out
	}
	return []ScalarExpr{pred}
}

// EquiKeys extracts hash-joinable column pairs from a join predicate given
// the output columns of the two sides: conjuncts of the form
// leftcol = rightcol (either operand order). It returns the key columns and
// the residual (non-equi) conjuncts.
func EquiKeys(pred ScalarExpr, leftOut, rightOut base.ColSet) (leftKeys, rightKeys []base.ColID, residual []ScalarExpr) {
	for _, c := range Conjuncts(pred) {
		cmp, ok := c.(*Cmp)
		if !ok || cmp.Op != CmpEq {
			residual = append(residual, c)
			continue
		}
		li, lok := cmp.L.(*Ident)
		ri, rok := cmp.R.(*Ident)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		switch {
		case leftOut.Contains(li.Col) && rightOut.Contains(ri.Col):
			leftKeys = append(leftKeys, li.Col)
			rightKeys = append(rightKeys, ri.Col)
		case leftOut.Contains(ri.Col) && rightOut.Contains(li.Col):
			leftKeys = append(leftKeys, ri.Col)
			rightKeys = append(rightKeys, li.Col)
		default:
			residual = append(residual, c)
		}
	}
	return leftKeys, rightKeys, residual
}

// ReplaceCols rewrites every column reference in a scalar expression
// according to the mapping, returning a new expression. Columns absent from
// the mapping are kept. Subquery inputs are not rewritten (their columns are
// scoped separately).
func ReplaceCols(e ScalarExpr, mapping map[base.ColID]base.ColID) ScalarExpr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Ident:
		if to, ok := mapping[x.Col]; ok {
			return &Ident{Col: to, Type: x.Type}
		}
		return x
	case *Const:
		return x
	case *Cmp:
		return &Cmp{Op: x.Op, L: ReplaceCols(x.L, mapping), R: ReplaceCols(x.R, mapping)}
	case *BoolOp:
		args := make([]ScalarExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ReplaceCols(a, mapping)
		}
		return &BoolOp{Kind: x.Kind, Args: args}
	case *BinOp:
		return &BinOp{Op: x.Op, L: ReplaceCols(x.L, mapping), R: ReplaceCols(x.R, mapping)}
	case *Func:
		args := make([]ScalarExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ReplaceCols(a, mapping)
		}
		return &Func{Name: x.Name, Args: args}
	case *Case:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{When: ReplaceCols(w.When, mapping), Then: ReplaceCols(w.Then, mapping)}
		}
		return &Case{Whens: whens, Else: ReplaceCols(x.Else, mapping)}
	case *IsNull:
		return &IsNull{Arg: ReplaceCols(x.Arg, mapping), Negated: x.Negated}
	case *InList:
		vals := make([]ScalarExpr, len(x.Vals))
		for i, v := range x.Vals {
			vals[i] = ReplaceCols(v, mapping)
		}
		return &InList{Arg: ReplaceCols(x.Arg, mapping), Vals: vals, Negated: x.Negated}
	default:
		return e
	}
}
