package ops

import (
	"fmt"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/props"
)

// PhysicalLimit returns the first rows of its input under an order. It
// requires a Singleton child: the top-N must be computed over the complete
// stream. (A streaming two-phase limit is a possible extension; the cost
// model already charges motions for the gathered input.)
type PhysicalLimit struct {
	physicalBase
	Order    props.OrderSpec
	Count    int64
	Offset   int64
	HasCount bool
}

// Name implements Operator.
func (*PhysicalLimit) Name() string { return "Limit" }

// Arity implements Operator.
func (*PhysicalLimit) Arity() int { return 1 }

// ParamHash implements Operator.
func (l *PhysicalLimit) ParamHash() uint64 {
	h := hashString(fnvOffset, "plimit")
	h = hashMix(h, l.Order.Hash())
	h = hashMix(h, uint64(l.Count))
	h = hashMix(h, uint64(l.Offset))
	if l.HasCount {
		h = hashMix(h, 1)
	}
	return h
}

// ParamEqual implements Operator.
func (l *PhysicalLimit) ParamEqual(o Operator) bool {
	ol, ok := o.(*PhysicalLimit)
	return ok && ol.Order.Equal(l.Order) && ol.Count == l.Count && ol.Offset == l.Offset && ol.HasCount == l.HasCount
}

// ChildReqs implements Physical.
func (l *PhysicalLimit) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.SingletonDist, Order: l.Order}}}
}

// Derive implements Physical.
func (l *PhysicalLimit) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: l.Order}
}

// Describe renders count/offset.
func (l *PhysicalLimit) Describe() string {
	return fmt.Sprintf("Limit %d offset %d order %s", l.Count, l.Offset, l.Order)
}

// PhysicalUnionAll concatenates children, mapping their columns to the
// output columns positionally.
type PhysicalUnionAll struct {
	physicalBase
	InCols  [][]base.ColID
	OutCols []*md.ColRef
}

// Name implements Operator.
func (*PhysicalUnionAll) Name() string { return "UnionAll" }

// Arity implements Operator.
func (*PhysicalUnionAll) Arity() int { return -1 }

// ParamHash implements Operator.
func (u *PhysicalUnionAll) ParamHash() uint64 {
	h := hashString(fnvOffset, "punionall")
	for _, cols := range u.InCols {
		for _, c := range cols {
			h = hashMix(h, uint64(c))
		}
		h = hashMix(h, 0xfe)
	}
	for _, c := range u.OutCols {
		h = hashMix(h, uint64(c.ID))
	}
	return h
}

// ParamEqual implements Operator.
func (u *PhysicalUnionAll) ParamEqual(o Operator) bool {
	ou, ok := o.(*PhysicalUnionAll)
	if !ok || len(ou.InCols) != len(u.InCols) || len(ou.OutCols) != len(u.OutCols) {
		return false
	}
	for i := range u.InCols {
		if !colIDsEqual(ou.InCols[i], u.InCols[i]) {
			return false
		}
	}
	for i := range u.OutCols {
		if ou.OutCols[i].ID != u.OutCols[i].ID {
			return false
		}
	}
	return true
}

// OutputCols returns the union's output columns.
func (u *PhysicalUnionAll) OutputCols() base.ColSet {
	var s base.ColSet
	for _, c := range u.OutCols {
		s.Add(c.ID)
	}
	return s
}

// ChildReqs implements Physical: either leave children in place or gather
// everything to one host.
func (u *PhysicalUnionAll) ChildReqs(props.Required) [][]props.Required {
	n := len(u.InCols)
	anyAll := make([]props.Required, n)
	singleAll := make([]props.Required, n)
	for i := 0; i < n; i++ {
		anyAll[i] = anyReq()
		singleAll[i] = props.Required{Dist: props.SingletonDist}
	}
	return [][]props.Required{anyAll, singleAll}
}

// Derive implements Physical.
func (u *PhysicalUnionAll) Derive(children []props.Derived) props.Derived {
	allSingleton, allReplicated := true, true
	for _, c := range children {
		if c.Dist.Kind != props.DistSingleton {
			allSingleton = false
		}
		if c.Dist.Kind != props.DistReplicated {
			allReplicated = false
		}
	}
	switch {
	case allSingleton:
		return props.Derived{Dist: props.SingletonDist}
	case allReplicated:
		return props.Derived{Dist: props.ReplicatedDist}
	default:
		return props.Derived{Dist: props.RandomDist}
	}
}

// ---------------------------------------------------------------------------
// CTE physical operators (paper §7.2.2 "Common Expressions")

// Sequence evaluates children left to right and returns the last child's
// rows: child 0 is a CTEProducer materializing the shared expression, child
// 1 the consuming body.
type Sequence struct {
	physicalBase
}

// Name implements Operator.
func (*Sequence) Name() string { return "Sequence" }

// Arity implements Operator.
func (*Sequence) Arity() int { return 2 }

// ParamHash implements Operator.
func (*Sequence) ParamHash() uint64 { return hashString(fnvOffset, "sequence") }

// ParamEqual implements Operator.
func (*Sequence) ParamEqual(o Operator) bool {
	_, ok := o.(*Sequence)
	return ok
}

// ChildReqs implements Physical: the body sees the incoming requirement.
func (*Sequence) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{anyReq(), passThrough(req)}}
}

// Derive implements Physical.
func (*Sequence) Derive(children []props.Derived) props.Derived {
	last := children[len(children)-1]
	return props.Derived{Dist: last.Dist, Order: last.Order}
}

// PhysicalCTEProducer materializes the CTE definition once per segment.
// Its child must not be replicated (consumers claim a Random distribution;
// replicated input would make them observe duplicated rows).
type PhysicalCTEProducer struct {
	physicalBase
	ID   int
	Cols []base.ColID
}

// Name implements Operator.
func (*PhysicalCTEProducer) Name() string { return "CTEProducer" }

// Arity implements Operator.
func (*PhysicalCTEProducer) Arity() int { return 1 }

// ParamHash implements Operator.
func (p *PhysicalCTEProducer) ParamHash() uint64 {
	return hashMix(hashString(fnvOffset, "cteprod"), uint64(p.ID))
}

// ParamEqual implements Operator.
func (p *PhysicalCTEProducer) ParamEqual(o Operator) bool {
	op, ok := o.(*PhysicalCTEProducer)
	return ok && op.ID == p.ID
}

// ChildReqs implements Physical.
func (*PhysicalCTEProducer) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.RandomDist}}}
}

// Derive implements Physical.
func (p *PhysicalCTEProducer) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist}
}

// Describe renders the CTE id.
func (p *PhysicalCTEProducer) Describe() string { return fmt.Sprintf("CTEProducer(%d)", p.ID) }

// PhysicalCTEConsumer reads the materialized CTE output resident on each
// segment. It claims a Random distribution (no placement guarantee) and is
// rewindable because the data is already materialized.
type PhysicalCTEConsumer struct {
	physicalBase
	ID           int
	Cols         []*md.ColRef
	ProducerCols []base.ColID
}

// Name implements Operator.
func (*PhysicalCTEConsumer) Name() string { return "CTEConsumer" }

// Arity implements Operator.
func (*PhysicalCTEConsumer) Arity() int { return 0 }

// ParamHash implements Operator.
func (c *PhysicalCTEConsumer) ParamHash() uint64 {
	h := hashMix(hashString(fnvOffset, "ctecons-p"), uint64(c.ID))
	if len(c.Cols) > 0 {
		h = hashMix(h, uint64(c.Cols[0].ID))
	}
	return h
}

// ParamEqual implements Operator.
func (c *PhysicalCTEConsumer) ParamEqual(o Operator) bool {
	oc, ok := o.(*PhysicalCTEConsumer)
	if !ok || oc.ID != c.ID || len(oc.Cols) != len(c.Cols) {
		return false
	}
	for i := range c.Cols {
		if oc.Cols[i].ID != c.Cols[i].ID {
			return false
		}
	}
	return true
}

// OutputCols returns this consumer's output columns.
func (c *PhysicalCTEConsumer) OutputCols() base.ColSet {
	var s base.ColSet
	for _, cr := range c.Cols {
		s.Add(cr.ID)
	}
	return s
}

// ChildReqs implements Physical.
func (*PhysicalCTEConsumer) ChildReqs(props.Required) [][]props.Required { return noChildren }

// Derive implements Physical.
func (*PhysicalCTEConsumer) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.RandomDist, Rewindable: true}
}

// Describe renders the CTE id.
func (c *PhysicalCTEConsumer) Describe() string { return fmt.Sprintf("CTEConsumer(%d)", c.ID) }

// ---------------------------------------------------------------------------
// Window

// PhysicalWindow computes window functions; it requires input partitioned on
// the PARTITION BY columns and sorted by partition then ORDER BY.
type PhysicalWindow struct {
	physicalBase
	PartitionCols []base.ColID
	Order         props.OrderSpec
	Wins          []WinElem
}

// Name implements Operator.
func (*PhysicalWindow) Name() string { return "Window" }

// Arity implements Operator.
func (*PhysicalWindow) Arity() int { return 1 }

// ParamHash implements Operator.
func (w *PhysicalWindow) ParamHash() uint64 {
	h := hashString(fnvOffset, "pwindow")
	for _, c := range w.PartitionCols {
		h = hashMix(h, uint64(c))
	}
	h = hashMix(h, w.Order.Hash())
	for _, e := range w.Wins {
		h = hashMix(h, uint64(e.Col.ID))
		h = hashMix(h, e.Fn.Hash())
	}
	return h
}

// ParamEqual implements Operator.
func (w *PhysicalWindow) ParamEqual(o Operator) bool {
	ow, ok := o.(*PhysicalWindow)
	if !ok || !colIDsEqual(ow.PartitionCols, w.PartitionCols) || !ow.Order.Equal(w.Order) || len(ow.Wins) != len(w.Wins) {
		return false
	}
	for i := range w.Wins {
		if ow.Wins[i].Col.ID != w.Wins[i].Col.ID || !ow.Wins[i].Fn.Equal(w.Wins[i].Fn) {
			return false
		}
	}
	return true
}

// fullOrder is partition columns followed by the window order.
func (w *PhysicalWindow) fullOrder() props.OrderSpec {
	items := make([]props.OrderItem, 0, len(w.PartitionCols)+len(w.Order.Items))
	for _, c := range w.PartitionCols {
		items = append(items, props.OrderItem{Col: c})
	}
	items = append(items, w.Order.Items...)
	return props.OrderSpec{Items: items}
}

// ChildReqs implements Physical.
func (w *PhysicalWindow) ChildReqs(props.Required) [][]props.Required {
	ord := w.fullOrder()
	if len(w.PartitionCols) == 0 {
		return [][]props.Required{{{Dist: props.SingletonDist, Order: ord}}}
	}
	var alts [][]props.Required
	for _, d := range groupDistAlternatives(w.PartitionCols) {
		alts = append(alts, []props.Required{{Dist: d, Order: ord}})
	}
	return alts
}

// Derive implements Physical.
func (w *PhysicalWindow) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: w.fullOrder()}
}

// Describe renders partitioning and functions.
func (w *PhysicalWindow) Describe() string {
	parts := make([]string, len(w.Wins))
	for i, e := range w.Wins {
		parts[i] = fmt.Sprintf("c%d=%s", e.Col.ID, e.Fn)
	}
	return fmt.Sprintf("Window part=%v order=%s fns=%v", w.PartitionCols, w.Order, parts)
}

// ---------------------------------------------------------------------------
// SubPlans (legacy Planner baseline only)

// SubPlanFilter filters outer rows by re-executing an uncorrelated-or-
// correlated subplan per row — the pre-decorrelation execution strategy of
// the legacy Planner (paper §7.2.2 "Correlated Subqueries" explains how Orca
// avoids exactly this "repeated execution of subquery expressions"). Kind
// selects EXISTS / NOT EXISTS / IN / NOT IN / scalar-comparison semantics;
// Test is the comparison applied to the subplan's output for scalar and IN
// kinds; SubCol is the subplan output column.
type SubPlanFilter struct {
	physicalBase
	Kind   SubqueryKind
	Plan   *Expr // physical plan, re-executed per outer row
	SubCol base.ColID
	Test   ScalarExpr
}

// Name implements Operator.
func (*SubPlanFilter) Name() string { return "SubPlanFilter" }

// Arity implements Operator.
func (*SubPlanFilter) Arity() int { return 1 }

// ParamHash implements Operator.
func (s *SubPlanFilter) ParamHash() uint64 {
	h := hashString(fnvOffset, "subplanfilter")
	h = hashMix(h, uint64(s.Kind))
	h = hashMix(h, uint64(s.SubCol))
	if s.Test != nil {
		h = hashMix(h, s.Test.Hash())
	}
	return h
}

// ParamEqual implements Operator: subplans compare by identity.
func (s *SubPlanFilter) ParamEqual(o Operator) bool {
	os, ok := o.(*SubPlanFilter)
	return ok && os == s
}

// ChildReqs implements Physical: the outer side is gathered to one host —
// the subplan needs the full cluster state per row, which is exactly why
// this strategy serializes execution.
func (s *SubPlanFilter) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.SingletonDist}}}
}

// Derive implements Physical.
func (s *SubPlanFilter) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: children[0].Order}
}

// Describe renders the subplan kind.
func (s *SubPlanFilter) Describe() string {
	return fmt.Sprintf("SubPlanFilter kind=%v test=%v", s.Kind, s.Test)
}

// SubPlanProject computes a scalar subquery value as a new column OutCol by
// re-executing the subplan per outer row (legacy Planner only).
type SubPlanProject struct {
	physicalBase
	Plan   *Expr
	SubCol base.ColID // subplan output column
	OutCol base.ColID // column added to the outer row
}

// Name implements Operator.
func (*SubPlanProject) Name() string { return "SubPlanProject" }

// Arity implements Operator.
func (*SubPlanProject) Arity() int { return 1 }

// ParamHash implements Operator.
func (s *SubPlanProject) ParamHash() uint64 {
	h := hashString(fnvOffset, "subplanproject")
	h = hashMix(h, uint64(s.SubCol))
	return hashMix(h, uint64(s.OutCol))
}

// ParamEqual implements Operator: subplans compare by identity.
func (s *SubPlanProject) ParamEqual(o Operator) bool {
	os, ok := o.(*SubPlanProject)
	return ok && os == s
}

// ChildReqs implements Physical.
func (s *SubPlanProject) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.SingletonDist}}}
}

// Derive implements Physical.
func (s *SubPlanProject) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: children[0].Order}
}

// Describe renders the computed column.
func (s *SubPlanProject) Describe() string {
	return fmt.Sprintf("SubPlanProject c%d=subplan(c%d)", s.OutCol, s.SubCol)
}
