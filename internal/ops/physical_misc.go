package ops

import (
	"fmt"

	"orca/internal/base"
	"orca/internal/props"
)

// The structs and Name/Arity/ParamHash/ParamEqual methods of the operators
// in this file are generated from defs/ops_physical.opt into ops.gen.go;
// this file keeps the hand-written property-framework halves.

// ---------------------------------------------------------------------------
// Limit / UnionAll

// ChildReqs implements Physical: the top-N must be computed over the
// complete stream, so the child is gathered to one host. (A streaming
// two-phase limit is a possible extension; the cost model already charges
// motions for the gathered input.)
func (l *PhysicalLimit) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.SingletonDist, Order: l.Order}}}
}

// Derive implements Physical.
func (l *PhysicalLimit) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: l.Order}
}

// Describe renders count/offset.
func (l *PhysicalLimit) Describe() string {
	return fmt.Sprintf("Limit %d offset %d order %s", l.Count, l.Offset, l.Order)
}

// OutputCols returns the union's output columns.
func (u *PhysicalUnionAll) OutputCols() base.ColSet {
	var s base.ColSet
	for _, c := range u.OutCols {
		s.Add(c.ID)
	}
	return s
}

// ChildReqs implements Physical: either leave children in place or gather
// everything to one host.
func (u *PhysicalUnionAll) ChildReqs(props.Required) [][]props.Required {
	n := len(u.InCols)
	anyAll := make([]props.Required, n)
	singleAll := make([]props.Required, n)
	for i := 0; i < n; i++ {
		anyAll[i] = anyReq()
		singleAll[i] = props.Required{Dist: props.SingletonDist}
	}
	return [][]props.Required{anyAll, singleAll}
}

// Derive implements Physical.
func (u *PhysicalUnionAll) Derive(children []props.Derived) props.Derived {
	allSingleton, allReplicated := true, true
	for _, c := range children {
		if c.Dist.Kind != props.DistSingleton {
			allSingleton = false
		}
		if c.Dist.Kind != props.DistReplicated {
			allReplicated = false
		}
	}
	switch {
	case allSingleton:
		return props.Derived{Dist: props.SingletonDist}
	case allReplicated:
		return props.Derived{Dist: props.ReplicatedDist}
	default:
		return props.Derived{Dist: props.RandomDist}
	}
}

// ---------------------------------------------------------------------------
// CTE physical operators (paper §7.2.2 "Common Expressions")

// ChildReqs implements Physical: child 0 is a CTEProducer materializing the
// shared expression, child 1 the consuming body, which sees the incoming
// requirement.
func (*Sequence) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{anyReq(), passThrough(req)}}
}

// Derive implements Physical.
func (*Sequence) Derive(children []props.Derived) props.Derived {
	last := children[len(children)-1]
	return props.Derived{Dist: last.Dist, Order: last.Order}
}

// ChildReqs implements Physical. The child must not be replicated
// (consumers claim a Random distribution; replicated input would make them
// observe duplicated rows).
func (*PhysicalCTEProducer) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.RandomDist}}}
}

// Derive implements Physical.
func (p *PhysicalCTEProducer) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist}
}

// Describe renders the CTE id.
func (p *PhysicalCTEProducer) Describe() string { return fmt.Sprintf("CTEProducer(%d)", p.ID) }

// OutputCols returns this consumer's output columns.
func (c *PhysicalCTEConsumer) OutputCols() base.ColSet {
	var s base.ColSet
	for _, cr := range c.Cols {
		s.Add(cr.ID)
	}
	return s
}

// ChildReqs implements Physical.
func (*PhysicalCTEConsumer) ChildReqs(props.Required) [][]props.Required { return noChildren }

// Derive implements Physical: the consumer reads the materialized CTE
// output resident on each segment, claiming a Random distribution (no
// placement guarantee); it is rewindable because the data is materialized.
func (*PhysicalCTEConsumer) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.RandomDist, Rewindable: true}
}

// Describe renders the CTE id.
func (c *PhysicalCTEConsumer) Describe() string { return fmt.Sprintf("CTEConsumer(%d)", c.ID) }

// ---------------------------------------------------------------------------
// Window

// fullOrder is partition columns followed by the window order.
func (w *PhysicalWindow) fullOrder() props.OrderSpec {
	items := make([]props.OrderItem, 0, len(w.PartitionCols)+len(w.Order.Items))
	for _, c := range w.PartitionCols {
		items = append(items, props.OrderItem{Col: c})
	}
	items = append(items, w.Order.Items...)
	return props.OrderSpec{Items: items}
}

// ChildReqs implements Physical: input partitioned on the PARTITION BY
// columns and sorted by partition then ORDER BY.
func (w *PhysicalWindow) ChildReqs(props.Required) [][]props.Required {
	ord := w.fullOrder()
	if len(w.PartitionCols) == 0 {
		return [][]props.Required{{{Dist: props.SingletonDist, Order: ord}}}
	}
	var alts [][]props.Required
	for _, d := range groupDistAlternatives(w.PartitionCols) {
		alts = append(alts, []props.Required{{Dist: d, Order: ord}})
	}
	return alts
}

// Derive implements Physical.
func (w *PhysicalWindow) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: w.fullOrder()}
}

// Describe renders partitioning and functions.
func (w *PhysicalWindow) Describe() string {
	parts := make([]string, len(w.Wins))
	for i, e := range w.Wins {
		parts[i] = fmt.Sprintf("c%d=%s", e.Col.ID, e.Fn)
	}
	return fmt.Sprintf("Window part=%v order=%s fns=%v", w.PartitionCols, w.Order, parts)
}

// ---------------------------------------------------------------------------
// SubPlans (legacy Planner baseline only)

// ChildReqs implements Physical: the outer side is gathered to one host —
// the subplan needs the full cluster state per row, which is exactly why
// this strategy serializes execution (paper §7.2.2 "Correlated Subqueries"
// explains how Orca avoids exactly this "repeated execution of subquery
// expressions").
func (s *SubPlanFilter) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.SingletonDist}}}
}

// Derive implements Physical.
func (s *SubPlanFilter) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: children[0].Order}
}

// Describe renders the subplan kind.
func (s *SubPlanFilter) Describe() string {
	return fmt.Sprintf("SubPlanFilter kind=%v test=%v", s.Kind, s.Test)
}

// ChildReqs implements Physical.
func (s *SubPlanProject) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.SingletonDist}}}
}

// Derive implements Physical.
func (s *SubPlanProject) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: children[0].Order}
}

// Describe renders the computed column.
func (s *SubPlanProject) Describe() string {
	return fmt.Sprintf("SubPlanProject c%d=subplan(c%d)", s.OutCol, s.SubCol)
}
