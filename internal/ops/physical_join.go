package ops

import (
	"fmt"

	"orca/internal/base"
	"orca/internal/props"
)

// The HashJoin/NLJoin structs and their Arity/ParamHash/ParamEqual methods
// are generated from defs/ops_physical.opt into ops.gen.go; Name stays
// hand-written (CustomName: the display name carries the join semantics).

// Name implements Operator.
func (j *HashJoin) Name() string { return "Inner" + suffixFor(j.Type) + "HashJoin" }

func suffixFor(t JoinType) string {
	switch t {
	case InnerJoin:
		return ""
	case LeftJoin:
		return "Left"
	case SemiJoin:
		return "Semi"
	case AntiJoin:
		return "Anti"
	default:
		return "?"
	}
}

// ChildReqs implements Physical. Alternatives, in the paper's spirit
// (Figure 7 and footnote 2: "there can be many other alternatives"):
//
//  1. co-locate: redistribute both sides on the join keys,
//  2. broadcast the inner side, keep the outer side in place,
//  3. broadcast the outer side (inner joins only — broadcasting the
//     row-preserving side of an outer/semi/anti join would duplicate it),
//  4. gather both sides to a single host.
func (j *HashJoin) ChildReqs(props.Required) [][]props.Required {
	var alts [][]props.Required
	if len(j.LeftKeys) > 0 {
		alts = append(alts, []props.Required{
			{Dist: props.HashedDupSafe(j.LeftKeys...)},
			{Dist: props.HashedDupSafe(j.RightKeys...)},
		})
	}
	alts = append(alts, []props.Required{
		{Dist: props.AnyDist},
		{Dist: props.ReplicatedDist},
	})
	if j.Type == InnerJoin {
		alts = append(alts, []props.Required{
			{Dist: props.ReplicatedDist},
			{Dist: props.AnyDist},
		})
	}
	alts = append(alts, []props.Required{
		{Dist: props.SingletonDist},
		{Dist: props.SingletonDist},
	})
	return alts
}

// Derive implements Physical.
func (j *HashJoin) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: joinDist(children[0].Dist, children[1].Dist)}
}

// joinDist combines child distributions into the join output distribution:
// a replicated side defers to the other side; co-located sides keep the
// outer distribution; a mismatch (should not survive property checking)
// degrades to Random.
func joinDist(outer, inner props.Distribution) props.Distribution {
	switch {
	case outer.Kind == props.DistReplicated && inner.Kind == props.DistReplicated:
		return props.ReplicatedDist
	case outer.Kind == props.DistReplicated:
		return inner
	case inner.Kind == props.DistReplicated:
		return outer
	case outer.Kind == props.DistSingleton && inner.Kind == props.DistSingleton:
		return props.SingletonDist
	case outer.Kind == props.DistHashed:
		return outer
	default:
		return props.RandomDist
	}
}

// Describe renders the join keys.
func (j *HashJoin) Describe() string {
	d := j.Name() + " " + keysString(j.LeftKeys, j.RightKeys)
	if j.Residual != nil {
		d += " residual=" + j.Residual.String()
	}
	return d
}

func keysString(l, r []base.ColID) string {
	s := "["
	for i := range l {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("c%d=c%d", l[i], r[i])
	}
	return s + "]"
}

// Name implements Operator.
func (j *NLJoin) Name() string { return "Inner" + suffixFor(j.Type) + "NLJoin" }

// ChildReqs implements Physical. The inner side is requested rewindable —
// it is re-scanned per outer tuple — and either replicated or co-resident
// on a single host. NLJoin preserves the outer child's sort order, which is
// how an order-preserving NL join avoids a Sort enforcer (paper §4.1).
func (j *NLJoin) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{
		{
			{Dist: props.AnyDist, Order: req.Order},
			{Dist: props.ReplicatedDist, Rewindable: true},
		},
		{
			{Dist: props.SingletonDist, Order: req.Order},
			{Dist: props.SingletonDist, Rewindable: true},
		},
	}
}

// Derive implements Physical: distribution combines like a hash join; the
// outer child's order is preserved.
func (j *NLJoin) Derive(children []props.Derived) props.Derived {
	return props.Derived{
		Dist:  joinDist(children[0].Dist, children[1].Dist),
		Order: children[0].Order,
	}
}

// Describe renders the predicate.
func (j *NLJoin) Describe() string {
	if j.Pred == nil {
		return j.Name()
	}
	return j.Name() + " " + j.Pred.String()
}
