package ops

import (
	"fmt"
	"strings"

	"orca/internal/props"
)

// The operator structs and their Name/Arity/ParamHash/ParamEqual methods,
// the xform rule skeletons, the DXL physical-parameter serializer, the
// cost/stats/engine dispatch switches and docs/opmatrix.md are generated
// from defs/*.opt. check.sh regenerates and fails on drift.
//
//go:generate go run orca/cmd/optgen -defs ../../defs -root ../..

// Operator is a relational operator — the content of a Memo group expression.
// Operators are immutable values; their parameters (scalar conditions,
// grouping columns, table descriptors) participate in the fingerprint used
// for the Memo's duplicate detection.
type Operator interface {
	// Name is the operator's display name ("InnerJoin", "HashJoin", ...).
	Name() string
	// Arity is the number of relational children the operator takes, or -1
	// for variadic operators (UnionAll, NAryJoin).
	Arity() int
	// ParamHash hashes the operator's parameters (not its children).
	ParamHash() uint64
	// ParamEqual compares parameters with another operator of any type.
	ParamEqual(Operator) bool
}

// Logical marks logical operators.
type Logical interface {
	Operator
	logical()
}

// Physical marks physical operators and carries the property-framework hooks
// of paper §4.1: deriving delivered properties bottom-up and computing the
// requests pushed to children for a given incoming request. One incoming
// request may map to several alternatives (e.g. co-locate vs broadcast for a
// hash join); each alternative is one []Required, indexed by child.
type Physical interface {
	Operator
	// ChildReqs lists the property-request alternatives for the children
	// under the incoming request req.
	ChildReqs(req props.Required) [][]props.Required
	// Derive computes delivered properties from the children's delivered
	// properties (child order matches the expression's children).
	Derive(children []props.Derived) props.Derived
	physical()
}

// Enforcer marks the enforcer operators (Sort, Gather, GatherMerge,
// Redistribute, Broadcast, Spool) that the optimizer plugs into groups to
// deliver required properties; plan explains render them distinctly, as the
// black boxes of paper Figure 6 do.
type Enforcer interface {
	Physical
	enforcer()
}

// Expr is an operator tree: the binder's output, the normalizer's working
// representation, and the shape of final plans extracted from the Memo.
// (Inside the Memo, children are groups instead — see internal/memo.)
type Expr struct {
	Op       Operator
	Children []*Expr

	// Phys carries the delivered physical properties on extracted plan
	// nodes; it is nil on logical trees.
	Phys *props.Derived
	// Cost is the estimated cost of the subtree on extracted plan nodes.
	Cost float64
	// Rows is the estimated output cardinality on extracted plan nodes.
	Rows float64
}

// NewExpr builds an expression node.
func NewExpr(op Operator, children ...*Expr) *Expr {
	return &Expr{Op: op, Children: children}
}

// Child returns the i-th child.
func (e *Expr) Child(i int) *Expr { return e.Children[i] }

// String renders a single-line form for debugging.
func (e *Expr) String() string {
	if len(e.Children) == 0 {
		return e.Op.Name()
	}
	parts := make([]string, len(e.Children))
	for i, c := range e.Children {
		parts[i] = c.String()
	}
	return e.Op.Name() + "(" + strings.Join(parts, ", ") + ")"
}

// Format renders a multi-line indented plan tree, with per-node cost, rows
// and delivered properties when present (physical plans).
func (e *Expr) Format(naming func(Operator) string) string {
	var b strings.Builder
	e.format(&b, 0, naming)
	return b.String()
}

func (e *Expr) format(b *strings.Builder, depth int, naming func(Operator) string) {
	b.WriteString(strings.Repeat("  ", depth))
	if naming != nil {
		b.WriteString(naming(e.Op))
	} else {
		b.WriteString(describeOp(e.Op))
	}
	if e.Phys != nil {
		fmt.Fprintf(b, "  [rows=%.0f cost=%.0f %s]", e.Rows, e.Cost, e.Phys)
	}
	b.WriteByte('\n')
	for _, c := range e.Children {
		c.format(b, depth+1, naming)
	}
}

// describeOp renders an operator with its salient parameters.
func describeOp(op Operator) string {
	if d, ok := op.(interface{ Describe() string }); ok {
		return d.Describe()
	}
	return op.Name()
}

// Describe renders the root operator with parameters.
func Describe(op Operator) string { return describeOp(op) }
