package ops

import (
	"fmt"

	"orca/internal/base"
	"orca/internal/props"
)

// This file defines the enforcer operators of paper §4.1 (the black boxes of
// Figure 6): Sort enforces order; Gather, GatherMerge, Redistribute and
// Broadcast enforce distribution by moving data between segments; Spool
// enforces rewindability by materializing its input. The optimizer plugs
// enforcers into Memo groups; each enforcer strips the property it delivers
// from the request passed to its child.

// Sort orders its input per segment.
type Sort struct {
	enforcerBase
	Order props.OrderSpec
}

// Name implements Operator.
func (*Sort) Name() string { return "Sort" }

// Arity implements Operator.
func (*Sort) Arity() int { return 1 }

// ParamHash implements Operator.
func (s *Sort) ParamHash() uint64 { return hashMix(hashString(fnvOffset, "sort"), s.Order.Hash()) }

// ParamEqual implements Operator.
func (s *Sort) ParamEqual(o Operator) bool {
	os, ok := o.(*Sort)
	return ok && os.Order.Equal(s.Order)
}

// ChildReqs implements Physical: the distribution requirement passes
// through; the order requirement is satisfied here.
func (s *Sort) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: req.Dist}}}
}

// Derive implements Physical: sorted output over the child's distribution;
// the sorted buffer is rewindable.
func (s *Sort) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: s.Order, Rewindable: true}
}

// Describe renders the sort order.
func (s *Sort) Describe() string { return "Sort" + s.Order.String() }

// Gather moves all tuples to the master, destroying order (tuples from
// different segments interleave arbitrarily).
type Gather struct {
	enforcerBase
}

// Name implements Operator.
func (*Gather) Name() string { return "Gather" }

// Arity implements Operator.
func (*Gather) Arity() int { return 1 }

// ParamHash implements Operator.
func (*Gather) ParamHash() uint64 { return hashString(fnvOffset, "gather") }

// ParamEqual implements Operator.
func (*Gather) ParamEqual(o Operator) bool {
	_, ok := o.(*Gather)
	return ok
}

// ChildReqs implements Physical.
func (*Gather) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{anyReq()}}
}

// Derive implements Physical.
func (*Gather) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist}
}

// GatherMerge moves sorted streams from all segments to the master,
// merge-preserving the order (paper §4.1).
type GatherMerge struct {
	enforcerBase
	Order props.OrderSpec
}

// Name implements Operator.
func (*GatherMerge) Name() string { return "GatherMerge" }

// Arity implements Operator.
func (*GatherMerge) Arity() int { return 1 }

// ParamHash implements Operator.
func (g *GatherMerge) ParamHash() uint64 {
	return hashMix(hashString(fnvOffset, "gathermerge"), g.Order.Hash())
}

// ParamEqual implements Operator.
func (g *GatherMerge) ParamEqual(o Operator) bool {
	og, ok := o.(*GatherMerge)
	return ok && og.Order.Equal(g.Order)
}

// ChildReqs implements Physical: children must already deliver the order.
func (g *GatherMerge) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.AnyDist, Order: g.Order}}}
}

// Derive implements Physical.
func (g *GatherMerge) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: g.Order}
}

// Describe renders the preserved order.
func (g *GatherMerge) Describe() string { return "GatherMerge" + g.Order.String() }

// Redistribute hashes tuples across segments on the given columns. An
// instance on segment S both sends tuples from S and receives tuples hashed
// to S (paper §4.1 "Query Execution").
type Redistribute struct {
	enforcerBase
	Cols []base.ColID
}

// Name implements Operator.
func (*Redistribute) Name() string { return "Redistribute" }

// Arity implements Operator.
func (*Redistribute) Arity() int { return 1 }

// ParamHash implements Operator.
func (r *Redistribute) ParamHash() uint64 {
	h := hashString(fnvOffset, "redistribute")
	for _, c := range r.Cols {
		h = hashMix(h, uint64(c))
	}
	return h
}

// ParamEqual implements Operator.
func (r *Redistribute) ParamEqual(o Operator) bool {
	or, ok := o.(*Redistribute)
	return ok && colIDsEqual(or.Cols, r.Cols)
}

// ChildReqs implements Physical.
func (*Redistribute) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{anyReq()}}
}

// Derive implements Physical.
func (r *Redistribute) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.Hashed(r.Cols...)}
}

// Describe renders the hash columns.
func (r *Redistribute) Describe() string { return fmt.Sprintf("Redistribute%v", r.Cols) }

// Broadcast replicates its input to every segment.
type Broadcast struct {
	enforcerBase
}

// Name implements Operator.
func (*Broadcast) Name() string { return "Broadcast" }

// Arity implements Operator.
func (*Broadcast) Arity() int { return 1 }

// ParamHash implements Operator.
func (*Broadcast) ParamHash() uint64 { return hashString(fnvOffset, "broadcast") }

// ParamEqual implements Operator.
func (*Broadcast) ParamEqual(o Operator) bool {
	_, ok := o.(*Broadcast)
	return ok
}

// ChildReqs implements Physical.
func (*Broadcast) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{anyReq()}}
}

// Derive implements Physical.
func (*Broadcast) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.ReplicatedDist}
}

// Spool materializes its input so it can be re-scanned cheaply, enforcing
// rewindability for nested-loop-join inner sides.
type Spool struct {
	enforcerBase
}

// Name implements Operator.
func (*Spool) Name() string { return "Spool" }

// Arity implements Operator.
func (*Spool) Arity() int { return 1 }

// ParamHash implements Operator.
func (*Spool) ParamHash() uint64 { return hashString(fnvOffset, "spool") }

// ParamEqual implements Operator.
func (*Spool) ParamEqual(o Operator) bool {
	_, ok := o.(*Spool)
	return ok
}

// ChildReqs implements Physical: dist and order pass through; rewindability
// is delivered here.
func (*Spool) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{passThrough(req)}}
}

// Derive implements Physical.
func (*Spool) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: children[0].Order, Rewindable: true}
}
