package ops

import (
	"fmt"

	"orca/internal/props"
)

// The enforcer operators of paper §4.1 (the black boxes of Figure 6): Sort
// enforces order; Gather, GatherMerge, Redistribute and Broadcast enforce
// distribution by moving data between segments; Spool enforces
// rewindability by materializing its input. The optimizer plugs enforcers
// into Memo groups; each enforcer strips the property it delivers from the
// request passed to its child. Structs and Name/Arity/ParamHash/ParamEqual
// are generated from defs/ops_enforcers.opt into ops.gen.go.

// ChildReqs implements Physical: the distribution requirement passes
// through; the order requirement is satisfied here.
func (s *Sort) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: req.Dist}}}
}

// Derive implements Physical: sorted output over the child's distribution;
// the sorted buffer is rewindable.
func (s *Sort) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: s.Order, Rewindable: true}
}

// Describe renders the sort order.
func (s *Sort) Describe() string { return "Sort" + s.Order.String() }

// ChildReqs implements Physical.
func (*Gather) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{anyReq()}}
}

// Derive implements Physical: all tuples move to the master; order is
// destroyed (tuples from different segments interleave arbitrarily).
func (*Gather) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist}
}

// ChildReqs implements Physical: children must already deliver the order.
func (g *GatherMerge) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{{Dist: props.AnyDist, Order: g.Order}}}
}

// Derive implements Physical: sorted streams from all segments move to the
// master, merge-preserving the order (paper §4.1).
func (g *GatherMerge) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.SingletonDist, Order: g.Order}
}

// Describe renders the preserved order.
func (g *GatherMerge) Describe() string { return "GatherMerge" + g.Order.String() }

// ChildReqs implements Physical. An instance on segment S both sends tuples
// from S and receives tuples hashed to S (paper §4.1 "Query Execution").
func (*Redistribute) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{anyReq()}}
}

// Derive implements Physical.
func (r *Redistribute) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.Hashed(r.Cols...)}
}

// Describe renders the hash columns.
func (r *Redistribute) Describe() string { return fmt.Sprintf("Redistribute%v", r.Cols) }

// ChildReqs implements Physical.
func (*Broadcast) ChildReqs(props.Required) [][]props.Required {
	return [][]props.Required{{anyReq()}}
}

// Derive implements Physical: the input is replicated to every segment.
func (*Broadcast) Derive([]props.Derived) props.Derived {
	return props.Derived{Dist: props.ReplicatedDist}
}

// ChildReqs implements Physical: dist and order pass through; rewindability
// is delivered here (for nested-loop-join inner sides).
func (*Spool) ChildReqs(req props.Required) [][]props.Required {
	return [][]props.Required{{passThrough(req)}}
}

// Derive implements Physical.
func (*Spool) Derive(children []props.Derived) props.Derived {
	return props.Derived{Dist: children[0].Dist, Order: children[0].Order, Rewindable: true}
}
