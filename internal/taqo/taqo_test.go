package taqo

import (
	"testing"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/datagen"
	"orca/internal/engine"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

func setup(t testing.TB) (*core.Result, *engine.Cluster) {
	t.Helper()
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "f", Rows: 3000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "k", Type: base.TInt, NDV: 150, Lo: 0, Hi: 150},
			{Name: "v", Type: base.TInt, NDV: 60, Lo: 0, Hi: 60},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "d", Rows: 150,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "k", Type: base.TInt, NDV: 150, Lo: 0, Hi: 150},
			{Name: "grp", Type: base.TInt, NDV: 12, Lo: 0, Hi: 12},
		},
	})
	cluster := engine.NewCluster(4, p)
	if err := datagen.LoadAll(cluster, p, 11); err != nil {
		t.Fatal(err)
	}
	cache := md.NewCache(&gpos.MemoryAccountant{})
	q, err := sql.Bind(`
		SELECT d.grp, sum(f.v) AS total
		FROM f, d
		WHERE f.k = d.k AND d.grp < 6
		GROUP BY d.grp ORDER BY d.grp`, md.NewAccessor(cache, p), md.NewColumnFactory())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Optimize(q, core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	return res, cluster
}

func TestPlanSpaceCountingAndSampling(t *testing.T) {
	res, _ := setup(t)
	s := NewSampler(res.Memo, res.RootGroup, res.RootReq)
	n := s.Count()
	if n < 2 {
		t.Fatalf("plan space too small: %g", n)
	}
	// Every rank must unrank into a valid plan; distinct ranks often give
	// distinct plans.
	distinct := map[string]bool{}
	limit := int(n)
	if limit > 64 {
		limit = 64
	}
	for r := 0; r < limit; r++ {
		plan, cost, err := s.Sample(float64(r))
		if err != nil {
			t.Fatalf("sample %d: %v", r, err)
		}
		if cost <= 0 {
			t.Errorf("sample %d has non-positive cost", r)
		}
		distinct[plan.String()] = true
	}
	if len(distinct) < 2 {
		t.Errorf("expected multiple distinct plans, got %d", len(distinct))
	}
	t.Logf("plan space = %g plans, %d distinct among first %d ranks", n, len(distinct), limit)
}

func TestBestPlanIsInSampledSpace(t *testing.T) {
	res, _ := setup(t)
	s := NewSampler(res.Memo, res.RootGroup, res.RootReq)
	n := int(s.Count())
	if n > 20000 {
		n = 20000
	}
	best := res.Cost
	found := false
	for r := 0; r < n; r++ {
		_, cost, err := s.Sample(float64(r))
		if err != nil {
			t.Fatal(err)
		}
		if cost < best-1e-6 {
			t.Fatalf("sampled plan cheaper (%g) than the optimizer's best (%g)", cost, best)
		}
		if cost <= best+1e-6 {
			found = true
		}
	}
	if !found {
		t.Error("optimizer's best plan not found in the sampled space")
	}
}

func TestEvaluateCostModelAccuracy(t *testing.T) {
	res, cluster := setup(t)
	score, err := Evaluate(res.Memo, res.RootGroup, res.RootReq, cluster, Options{Samples: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TAQO: correlation=%.3f over %d plans (space=%g)", score.Correlation, score.Sampled, score.SpaceSize)
	if score.Sampled < 2 {
		t.Fatalf("too few plans sampled: %d", score.Sampled)
	}
	// The calibrated cost model should order plans largely correctly.
	if score.Correlation < 0.3 {
		t.Errorf("cost model correlation too low: %.3f", score.Correlation)
	}
	// Sampled plans must all produce the same result set.
	var wantRows int = -1
	for _, run := range score.Runs {
		if run.TimedOut {
			continue
		}
		out, err := cluster.Execute(run.Plan, engine.Options{})
		if err != nil {
			t.Fatalf("re-executing sampled plan: %v", err)
		}
		if wantRows == -1 {
			wantRows = len(out.Rows)
		} else if len(out.Rows) != wantRows {
			t.Errorf("sampled plans disagree on result size: %d vs %d", len(out.Rows), wantRows)
		}
	}
}
