// Package taqo implements TAQO (paper §6.2, ref [15] "Testing the Accuracy
// of Query Optimizers"): it measures the cost model's ability to order any
// two plans correctly — the plan with the higher estimated cost should
// indeed run longer. Plans are sampled uniformly from the optimizer's search
// space using the optimization-request linkage structure left in the Memo
// (the counting/unranking method of ref [29]), executed on the simulated
// cluster, and a weighted correlation score is computed between the
// estimated-cost ranking and the actual-cost ranking.
package taqo

import (
	"fmt"
	"math"
	"sort"

	"orca/internal/datagen"
	"orca/internal/engine"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/props"
)

// Sampler draws uniform plans from an optimized Memo.
type Sampler struct {
	m      *memo.Memo
	root   memo.GroupID
	req    props.Required
	counts map[ctxKey]float64
}

type ctxKey struct {
	group memo.GroupID
	req   uint64
	reqS  string
}

func key(g memo.GroupID, req props.Required) ctxKey {
	return ctxKey{group: g, req: req.Hash(), reqS: req.String()}
}

// NewSampler prepares plan counting over the Memo produced by an
// optimization session.
func NewSampler(m *memo.Memo, root memo.GroupID, req props.Required) *Sampler {
	return &Sampler{m: m, root: root, req: req, counts: map[ctxKey]float64{}}
}

// Count returns the number of distinct plans in the optimized search space
// for the root request.
func (s *Sampler) Count() float64 { return s.count(s.root, s.req) }

func (s *Sampler) count(g memo.GroupID, req props.Required) float64 {
	k := key(g, req)
	if c, ok := s.counts[k]; ok {
		return c
	}
	// Mark in-progress to cut (impossible, but safe) cycles.
	s.counts[k] = 0
	total := 0.0
	grp := s.m.Group(g)
	for _, ge := range grp.Exprs() {
		for _, cand := range ge.Candidates(req) {
			n := 1.0
			for i, creq := range cand.ChildReqs {
				n *= s.count(ge.Children[i], creq)
			}
			total += n
		}
	}
	s.counts[k] = total
	return total
}

// Sample unranks the r-th plan (r in [0, Count())) into an executable
// expression tree together with its estimated cost.
func (s *Sampler) Sample(r float64) (*ops.Expr, float64, error) {
	return s.sample(s.root, s.req, r)
}

func (s *Sampler) sample(g memo.GroupID, req props.Required, r float64) (*ops.Expr, float64, error) {
	grp := s.m.Group(g)
	for _, ge := range grp.Exprs() {
		for _, cand := range ge.Candidates(req) {
			n := 1.0
			childCounts := make([]float64, len(cand.ChildReqs))
			for i, creq := range cand.ChildReqs {
				childCounts[i] = s.count(ge.Children[i], creq)
				n *= childCounts[i]
			}
			if r >= n {
				r -= n
				continue
			}
			// Unrank r within this candidate (mixed radix).
			children := make([]*ops.Expr, len(cand.ChildReqs))
			cost := cand.LocalCost
			for i := len(cand.ChildReqs) - 1; i >= 0; i-- {
				idx := math.Mod(r, childCounts[i])
				r = math.Floor(r / childCounts[i])
				c, ccost, err := s.sample(ge.Children[i], cand.ChildReqs[i], idx)
				if err != nil {
					return nil, 0, err
				}
				children[i] = c
				cost += ccost
			}
			phys := cand.Delivered
			return &ops.Expr{
				Op:       ge.Op,
				Children: children,
				Phys:     &phys,
				Cost:     cost,
				Rows:     grp.Rows(),
			}, cost, nil
		}
	}
	return nil, 0, fmt.Errorf("taqo: rank out of range for group %d under %s", g, req)
}

// ---------------------------------------------------------------------------
// Scoring

// PlanRun is one sampled plan's estimated and measured cost.
type PlanRun struct {
	Plan     *ops.Expr
	EstCost  float64
	Actual   float64 // engine work units
	TimedOut bool
}

// Score is the TAQO accuracy result.
type Score struct {
	// Correlation is the weighted pair-ordering agreement in [-1, 1]; 1
	// means the cost model orders every significant pair correctly.
	Correlation float64
	// Sampled is the number of executed plans.
	Sampled int
	// SpaceSize is the plan-space size counted from the Memo.
	SpaceSize float64
	Runs      []PlanRun
}

// Options tune the evaluation.
type Options struct {
	// Samples is the number of plans to draw (deduplicated).
	Samples int
	// Epsilon is the relative actual-cost difference below which a pair is
	// "too close to care" and excluded from scoring (ref [15]: the score
	// "does not penalize ... small differences").
	Epsilon float64
	// Budget caps each plan execution (work units); blown budgets record a
	// timed-out actual cost at the cap.
	Budget int64
	Seed   uint64
}

// Evaluate samples plans from an optimized Memo, executes them on the
// cluster, and scores the cost model.
func Evaluate(m *memo.Memo, root memo.GroupID, req props.Required, cluster *engine.Cluster, opt Options) (*Score, error) {
	if opt.Samples <= 0 {
		opt.Samples = 16
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.05
	}
	if opt.Budget <= 0 {
		opt.Budget = 50_000_000
	}
	s := NewSampler(m, root, req)
	total := s.Count()
	if total < 1 {
		return nil, fmt.Errorf("taqo: empty plan space")
	}

	rng := datagen.NewRNG(opt.Seed ^ 0xA5A5)
	seen := map[string]bool{}
	var runs []PlanRun
	attempts := 0
	for len(runs) < opt.Samples && attempts < opt.Samples*4 {
		attempts++
		r := math.Floor(rng.Float() * total)
		if r >= total {
			r = total - 1
		}
		plan, est, err := s.Sample(r)
		if err != nil {
			return nil, err
		}
		fp := plan.String()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		res, err := cluster.Execute(plan, engine.Options{Budget: opt.Budget})
		if err != nil {
			return nil, fmt.Errorf("taqo: executing sampled plan: %w", err)
		}
		actual := float64(res.Stats.Work(3))
		if res.TimedOut {
			actual = float64(opt.Budget)
		}
		runs = append(runs, PlanRun{Plan: plan, EstCost: est, Actual: actual, TimedOut: res.TimedOut})
	}
	if len(runs) < 2 {
		return &Score{Correlation: 1, Sampled: len(runs), SpaceSize: total, Runs: runs}, nil
	}
	return &Score{
		Correlation: correlation(runs, opt.Epsilon),
		Sampled:     len(runs),
		SpaceSize:   total,
		Runs:        runs,
	}, nil
}

// correlation computes the importance-weighted pair agreement: pairs whose
// actual costs differ by less than epsilon (relatively) are skipped; each
// remaining pair is weighted by the importance of its better plan (good
// plans matter more — the score "penalizes optimizer more for cost
// miss-estimation of very good plans").
func correlation(runs []PlanRun, epsilon float64) float64 {
	// Rank plans by actual cost for importance weights.
	idx := make([]int, len(runs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return runs[idx[a]].Actual < runs[idx[b]].Actual })
	rank := make([]int, len(runs))
	for pos, i := range idx {
		rank[i] = pos + 1
	}

	var agree, total float64
	for i := 0; i < len(runs); i++ {
		for j := i + 1; j < len(runs); j++ {
			ai, aj := runs[i].Actual, runs[j].Actual
			if math.Max(ai, aj) <= 0 {
				continue
			}
			if math.Abs(ai-aj)/math.Max(ai, aj) < epsilon {
				continue
			}
			better := rank[i]
			if rank[j] < better {
				better = rank[j]
			}
			w := 1 / float64(better)
			total += w
			ei, ej := runs[i].EstCost, runs[j].EstCost
			if (ei < ej) == (ai < aj) {
				agree += w
			} else {
				agree -= w
			}
		}
	}
	if total == 0 {
		return 1
	}
	return agree / total
}
