package taqo

import (
	"math"
	"testing"
)

func runsOf(pairs ...[2]float64) []PlanRun {
	out := make([]PlanRun, len(pairs))
	for i, p := range pairs {
		out[i] = PlanRun{EstCost: p[0], Actual: p[1]}
	}
	return out
}

func TestCorrelationPerfectOrdering(t *testing.T) {
	runs := runsOf([2]float64{1, 10}, [2]float64{2, 20}, [2]float64{3, 40}, [2]float64{4, 80})
	if got := correlation(runs, 0.05); got != 1 {
		t.Errorf("perfect ordering scores %g, want 1", got)
	}
}

func TestCorrelationInvertedOrdering(t *testing.T) {
	runs := runsOf([2]float64{4, 10}, [2]float64{3, 20}, [2]float64{2, 40}, [2]float64{1, 80})
	if got := correlation(runs, 0.05); got != -1 {
		t.Errorf("inverted ordering scores %g, want -1", got)
	}
}

func TestCorrelationIgnoresClosePairs(t *testing.T) {
	// Two plans 1% apart in actual cost are "the same plan" for scoring
	// (ref [15]: no penalty for small differences) even when the estimates
	// order them wrongly.
	runs := runsOf([2]float64{2, 100}, [2]float64{1, 101}, [2]float64{3, 500})
	if got := correlation(runs, 0.05); got != 1 {
		t.Errorf("close pair not ignored: %g", got)
	}
}

func TestCorrelationWeightsGoodPlansMore(t *testing.T) {
	// One mistake involving the best plan must cost more than one mistake
	// among the worst plans (the importance weighting of ref [15]).
	mistakeAtBest := runsOf(
		[2]float64{5, 10}, // best actual, worst estimate: wrong vs everyone
		[2]float64{1, 100},
		[2]float64{2, 200},
		[2]float64{3, 400},
	)
	mistakeAtWorst := runsOf(
		[2]float64{1, 10},
		[2]float64{2, 100},
		[2]float64{4, 400}, // swapped with its neighbour only
		[2]float64{3, 200},
	)
	a, b := correlation(mistakeAtBest, 0.05), correlation(mistakeAtWorst, 0.05)
	if a >= b {
		t.Errorf("mistake at best plan (%g) must score below mistake at tail (%g)", a, b)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if got := correlation(runsOf([2]float64{1, 50}, [2]float64{2, 50}), 0.05); got != 1 {
		t.Errorf("all-equal actuals must score 1 (nothing to misorder), got %g", got)
	}
	if got := correlation(nil, 0.05); math.IsNaN(got) {
		t.Error("empty runs produce NaN")
	}
}
