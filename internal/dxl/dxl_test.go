package dxl

import (
	"context"
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

func testCatalog(t testing.TB) *md.MemProvider {
	t.Helper()
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "orders", Rows: 5000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "o_id", Type: base.TInt, NDV: 5000, Lo: 0, Hi: 5000},
			{Name: "o_cust", Type: base.TInt, NDV: 500, Lo: 0, Hi: 500},
			{Name: "o_total", Type: base.TFloat, NDV: 1000, Lo: 0, Hi: 1000},
			{Name: "o_date", Type: base.TInt, NDV: 365, Lo: 0, Hi: 365},
		},
		PartCol: 3,
		Parts: []md.Partition{
			{Name: "h1", Lo: base.NewInt(0), Hi: base.NewInt(183)},
			{Name: "h2", Lo: base.NewInt(183), Hi: base.NewInt(366)},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "cust", Rows: 500,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "c_id", Type: base.TInt, NDV: 500, Lo: 0, Hi: 500},
			{Name: "c_region", Type: base.TString, NDV: 5, Lo: 0, Hi: 5},
		},
		IndexCols: []int{0},
	})
	return p
}

func bindOn(t testing.TB, p *md.MemProvider, query string) *core.Query {
	t.Helper()
	cache := md.NewCache(&gpos.MemoryAccountant{})
	acc := md.NewAccessor(cache, p)
	q, err := sql.Bind(query, acc, md.NewColumnFactory())
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return q
}

const roundTripQuery = `
	SELECT c.c_region, count(*) AS n, sum(o.o_total) AS total
	FROM orders o, cust c
	WHERE o.o_cust = c.c_id AND o.o_date < 100 AND c.c_region IN ('v000001','v000002')
	GROUP BY c.c_region
	ORDER BY c.c_region
	LIMIT 5`

func TestMetadataRoundTrip(t *testing.T) {
	p := testCatalog(t)
	doc := HarvestAll(p).Render()

	p2, err := ProviderFromDocument(doc)
	if err != nil {
		t.Fatalf("parse metadata: %v", err)
	}
	for _, name := range p.RelationNames() {
		id1, _ := p.LookupRelation(context.Background(), name)
		id2, err := p2.LookupRelation(context.Background(), name)
		if err != nil {
			t.Fatalf("relation %q lost in round trip", name)
		}
		if id1 != id2 {
			t.Errorf("relation %q mdid changed: %s vs %s", name, id1, id2)
		}
		o1, _ := p.GetObject(context.Background(), id1)
		o2, _ := p2.GetObject(context.Background(), id2)
		r1, r2 := o1.(*md.Relation), o2.(*md.Relation)
		if len(r1.Columns) != len(r2.Columns) || r1.Policy != r2.Policy ||
			len(r1.Parts) != len(r2.Parts) || r1.PartCol != r2.PartCol ||
			len(r1.IndexIDs) != len(r2.IndexIDs) {
			t.Errorf("relation %q shape changed in round trip", name)
		}
		s1, _ := p.GetObject(context.Background(), r1.StatsMdid)
		s2, err := p2.GetObject(context.Background(), r2.StatsMdid)
		if err != nil {
			t.Fatalf("stats of %q lost", name)
		}
		st1, st2 := s1.(*md.RelStats), s2.(*md.RelStats)
		if st1.Rows != st2.Rows || len(st1.Cols) != len(st2.Cols) {
			t.Errorf("stats of %q changed: rows %g vs %g", name, st1.Rows, st2.Rows)
		}
		for i := range st1.Cols {
			if st1.Cols[i].NDV != st2.Cols[i].NDV || len(st1.Cols[i].Buckets) != len(st2.Cols[i].Buckets) {
				t.Errorf("histogram of %q.%s changed", name, st1.Cols[i].ColName)
			}
		}
	}
}

// TestQueryRoundTripPlansIdentical is the stand-alone-optimizer property the
// paper's architecture promises: a query serialized to DXL, shipped
// elsewhere, and re-optimized against a file-based metadata provider must
// produce the identical plan.
func TestQueryRoundTripPlansIdentical(t *testing.T) {
	p := testCatalog(t)
	q1 := bindOn(t, p, roundTripQuery)
	cfg := core.DefaultConfig(8)

	res1, err := core.Optimize(q1, cfg)
	if err != nil {
		t.Fatalf("direct optimize: %v", err)
	}

	// Serialize query and (full) metadata; rebuild everything from text.
	q1b := bindOn(t, p, roundTripQuery) // fresh bind: Optimize normalizes in place
	queryDoc := SerializeQuery(q1b).Render()
	metaDoc := HarvestAll(p).Render()

	p2, err := ProviderFromDocument(metaDoc)
	if err != nil {
		t.Fatalf("metadata: %v", err)
	}
	root, err := ParseXML(queryDoc)
	if err != nil {
		t.Fatalf("query xml: %v", err)
	}
	cache := md.NewCache(&gpos.MemoryAccountant{})
	acc := md.NewAccessor(cache, p2)
	f := md.NewColumnFactory()
	q2, err := ParseQuery(root, acc, f)
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	res2, err := core.Optimize(q2, cfg)
	if err != nil {
		t.Fatalf("replayed optimize: %v", err)
	}

	fp1, fp2 := PlanFingerprint(res1.Plan), PlanFingerprint(res2.Plan)
	if fp1 != fp2 {
		t.Errorf("plans differ after DXL round trip:\n--- direct ---\n%s\n--- replayed ---\n%s", fp1, fp2)
	}
	if res1.Cost != res2.Cost {
		t.Errorf("costs differ: %v vs %v", res1.Cost, res2.Cost)
	}
}

func TestQuerySerializationIsStable(t *testing.T) {
	p := testCatalog(t)
	a := SerializeQuery(bindOn(t, p, roundTripQuery)).Render()
	b := SerializeQuery(bindOn(t, p, roundTripQuery)).Render()
	if a != b {
		t.Error("query serialization is not deterministic")
	}
	if !strings.Contains(a, "LogicalGet") || !strings.Contains(a, "SortingColumn") {
		t.Errorf("serialized query missing expected elements:\n%s", a)
	}
}
