package dxl

import (
	"fmt"
	"strconv"

	"orca/internal/base"
	"orca/internal/ops"
)

// SerializeScalar renders a scalar expression tree.
func SerializeScalar(e ops.ScalarExpr) *Node {
	switch x := e.(type) {
	case *ops.Ident:
		return El("Ident").Setf("ColId", "%d", x.Col).Set("Type", x.Type.String())
	case *ops.Const:
		return El("Const").Set("Val", datumString(x.Val))
	case *ops.Param:
		// Defensive: rebinding replaces every Param with a Const before a
		// plan leaves the plan cache, but a serialized placeholder must
		// still round-trip for diagnostics.
		return El("Param").Setf("Ord", "%d", x.Ord)
	case *ops.Cmp:
		return El("Comparison").Set("Operator", x.Op.String()).
			Add(SerializeScalar(x.L), SerializeScalar(x.R))
	case *ops.BoolOp:
		var kind string
		switch x.Kind {
		case ops.BoolAnd:
			kind = "And"
		case ops.BoolOr:
			kind = "Or"
		case ops.BoolNot:
			kind = "Not"
		}
		n := El("BoolExpr").Set("Kind", kind)
		for _, a := range x.Args {
			n.Add(SerializeScalar(a))
		}
		return n
	case *ops.BinOp:
		return El("ArithOp").Set("Operator", x.Op).
			Add(SerializeScalar(x.L), SerializeScalar(x.R))
	case *ops.Func:
		n := El("FuncExpr").Set("Name", x.Name)
		for _, a := range x.Args {
			n.Add(SerializeScalar(a))
		}
		return n
	case *ops.Case:
		n := El("Case")
		for _, w := range x.Whens {
			n.Add(El("When").Add(SerializeScalar(w.When), SerializeScalar(w.Then)))
		}
		if x.Else != nil {
			n.Add(El("Else").Add(SerializeScalar(x.Else)))
		}
		return n
	case *ops.IsNull:
		return El("IsNull").Setf("Negated", "%t", x.Negated).Add(SerializeScalar(x.Arg))
	case *ops.InList:
		n := El("InList").Setf("Negated", "%t", x.Negated).Add(SerializeScalar(x.Arg))
		for _, v := range x.Vals {
			n.Add(SerializeScalar(v))
		}
		return n
	case *ops.Subquery:
		n := El("Subquery").
			Setf("Kind", "%d", x.Kind).
			Setf("OutCol", "%d", x.OutCol)
		n.Add(El("SubqueryInput").Add(serializeTree(x.Input)))
		if x.Test != nil {
			n.Add(El("SubqueryTest").Add(SerializeScalar(x.Test)))
		}
		return n
	default:
		return El("UnknownScalar").Set("Go", fmt.Sprintf("%T", e))
	}
}

var cmpByName = map[string]ops.CmpOp{
	"=": ops.CmpEq, "<>": ops.CmpNe, "<": ops.CmpLt,
	"<=": ops.CmpLe, ">": ops.CmpGt, ">=": ops.CmpGe,
}

// parseScalar interprets a scalar element; the parser carries the query
// context for subquery inputs.
func (qp *queryParser) parseScalar(n *Node) (ops.ScalarExpr, error) {
	switch n.Name {
	case "Ident":
		id, err := strconv.Atoi(n.Attr("ColId"))
		if err != nil {
			return nil, fmt.Errorf("dxl: bad ColId: %v", err)
		}
		return ops.NewIdent(base.ColID(id), parseTypeID(n.Attr("Type"))), nil
	case "Const":
		d, err := parseDatum(n.Attr("Val"))
		if err != nil {
			return nil, err
		}
		return ops.NewConst(d), nil
	case "Param":
		ord, err := strconv.Atoi(n.Attr("Ord"))
		if err != nil {
			return nil, fmt.Errorf("dxl: bad Param Ord: %v", err)
		}
		return ops.NewParam(ord), nil
	case "Comparison":
		op, ok := cmpByName[n.Attr("Operator")]
		if !ok {
			return nil, fmt.Errorf("dxl: unknown comparison %q", n.Attr("Operator"))
		}
		l, err := qp.parseScalar(n.Children[0])
		if err != nil {
			return nil, err
		}
		r, err := qp.parseScalar(n.Children[1])
		if err != nil {
			return nil, err
		}
		return ops.NewCmp(op, l, r), nil
	case "BoolExpr":
		var kind ops.BoolOpKind
		switch n.Attr("Kind") {
		case "And":
			kind = ops.BoolAnd
		case "Or":
			kind = ops.BoolOr
		case "Not":
			kind = ops.BoolNot
		default:
			return nil, fmt.Errorf("dxl: unknown bool kind %q", n.Attr("Kind"))
		}
		args := make([]ops.ScalarExpr, len(n.Children))
		for i, c := range n.Children {
			a, err := qp.parseScalar(c)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return &ops.BoolOp{Kind: kind, Args: args}, nil
	case "ArithOp":
		l, err := qp.parseScalar(n.Children[0])
		if err != nil {
			return nil, err
		}
		r, err := qp.parseScalar(n.Children[1])
		if err != nil {
			return nil, err
		}
		return &ops.BinOp{Op: n.Attr("Operator"), L: l, R: r}, nil
	case "FuncExpr":
		args := make([]ops.ScalarExpr, len(n.Children))
		for i, c := range n.Children {
			a, err := qp.parseScalar(c)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return &ops.Func{Name: n.Attr("Name"), Args: args}, nil
	case "Case":
		out := &ops.Case{}
		for _, c := range n.Children {
			switch c.Name {
			case "When":
				w, err := qp.parseScalar(c.Children[0])
				if err != nil {
					return nil, err
				}
				t, err := qp.parseScalar(c.Children[1])
				if err != nil {
					return nil, err
				}
				out.Whens = append(out.Whens, ops.CaseWhen{When: w, Then: t})
			case "Else":
				e, err := qp.parseScalar(c.Children[0])
				if err != nil {
					return nil, err
				}
				out.Else = e
			}
		}
		return out, nil
	case "IsNull":
		arg, err := qp.parseScalar(n.Children[0])
		if err != nil {
			return nil, err
		}
		return &ops.IsNull{Arg: arg, Negated: n.Attr("Negated") == "true"}, nil
	case "InList":
		arg, err := qp.parseScalar(n.Children[0])
		if err != nil {
			return nil, err
		}
		vals := make([]ops.ScalarExpr, 0, len(n.Children)-1)
		for _, c := range n.Children[1:] {
			v, err := qp.parseScalar(c)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		return &ops.InList{Arg: arg, Vals: vals, Negated: n.Attr("Negated") == "true"}, nil
	case "Subquery":
		kind, _ := strconv.Atoi(n.Attr("Kind"))
		outCol, _ := strconv.Atoi(n.Attr("OutCol"))
		sq := &ops.Subquery{Kind: ops.SubqueryKind(kind), OutCol: base.ColID(outCol)}
		if in := n.Child("SubqueryInput"); in != nil && len(in.Children) > 0 {
			t, err := qp.parseTree(in.Children[0])
			if err != nil {
				return nil, err
			}
			sq.Input = t
		}
		if tn := n.Child("SubqueryTest"); tn != nil && len(tn.Children) > 0 {
			t, err := qp.parseScalar(tn.Children[0])
			if err != nil {
				return nil, err
			}
			sq.Test = t
		}
		return sq, nil
	default:
		return nil, fmt.Errorf("dxl: unknown scalar element %q", n.Name)
	}
}
