package dxl

import (
	"fmt"
	"strconv"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

// SerializeQuery renders a bound query as a dxl:Query message (cf. paper
// Listing 1): output columns, sorting columns, required result distribution
// and the logical operator tree.
func SerializeQuery(q *core.Query) *Node {
	msg := El("Query")
	outs := El("OutputColumns")
	for i, c := range q.OutCols {
		name := ""
		if i < len(q.OutNames) {
			name = q.OutNames[i]
		}
		outs.Add(El("Ident").Setf("ColId", "%d", c).Set("Name", name))
	}
	msg.Add(outs)
	sorts := El("SortingColumnList")
	for _, it := range q.Order.Items {
		sorts.Add(El("SortingColumn").Setf("ColId", "%d", it.Col).Setf("Desc", "%t", it.Desc))
	}
	msg.Add(sorts)
	msg.Add(El("Distribution").Set("Type", "Singleton"))
	msg.Add(serializeTree(q.Tree))
	return El("DXLMessage").Add(msg)
}

func serializeColRefs(name string, cols []*md.ColRef) *Node {
	n := El(name)
	for _, c := range cols {
		cn := El("Ident").
			Setf("ColId", "%d", c.ID).
			Set("Name", c.Name).
			Set("Type", c.Type.String())
		if c.RelMdid.IsValid() {
			cn.Set("RelMdid", c.RelMdid.String()).Setf("Ordinal", "%d", c.Ordinal)
		}
		n.Add(cn)
	}
	return n
}

func serializeOrder(name string, o props.OrderSpec) *Node {
	n := El(name)
	for _, it := range o.Items {
		n.Add(El("SortingColumn").Setf("ColId", "%d", it.Col).Setf("Desc", "%t", it.Desc))
	}
	return n
}

// serializeTree renders a logical operator tree.
func serializeTree(e *ops.Expr) *Node {
	var n *Node
	switch op := e.Op.(type) {
	case *ops.Get:
		n = El("LogicalGet").Set("Alias", op.Alias)
		n.Add(El("TableDescriptor").
			Set("Mdid", op.Rel.Mdid.String()).
			Set("Name", op.Rel.Name).
			Add(serializeColRefs("Columns", op.Cols)))
	case *ops.Select:
		n = El("LogicalSelect").Add(El("Predicate").Add(SerializeScalar(op.Pred)))
	case *ops.Project:
		n = El("LogicalProject")
		for _, el := range op.Elems {
			n.Add(El("ProjElem").
				Setf("ColId", "%d", el.Col.ID).
				Set("Name", el.Col.Name).
				Set("Type", el.Col.Type.String()).
				Add(SerializeScalar(el.Expr)))
		}
	case *ops.Join:
		n = El("LogicalJoin").Set("JoinType", op.Type.String())
		if op.Pred != nil {
			n.Add(El("Predicate").Add(SerializeScalar(op.Pred)))
		}
	case *ops.NAryJoin:
		n = El("LogicalNAryJoin")
		for _, p := range op.Preds {
			n.Add(El("Predicate").Add(SerializeScalar(p)))
		}
	case *ops.GbAgg:
		n = El("LogicalGbAgg").Set("GroupCols", colIDList(op.GroupCols))
		for _, a := range op.Aggs {
			n.Add(serializeAggElem(a))
		}
	case *ops.Limit:
		n = El("LogicalLimit").
			Setf("Count", "%d", op.Count).
			Setf("Offset", "%d", op.Offset).
			Setf("HasCount", "%t", op.HasCount).
			Add(serializeOrder("SortingColumnList", op.Order))
	case *ops.UnionAll:
		n = El("LogicalUnionAll").Add(serializeColRefs("OutputColumns", op.OutCols))
		for _, cols := range op.InCols {
			n.Add(El("InputColumns").Set("Cols", colIDList(cols)))
		}
	case *ops.CTEAnchor:
		n = El("LogicalCTEAnchor").Setf("CTEId", "%d", op.ID).
			Add(serializeColRefs("ProducerColumns", op.Cols))
	case *ops.CTEConsumer:
		n = El("LogicalCTEConsumer").Setf("CTEId", "%d", op.ID).
			Set("ProducerCols", colIDList(op.ProducerCols)).
			Add(serializeColRefs("OutputColumns", op.Cols))
	case *ops.Window:
		n = El("LogicalWindow").
			Set("PartitionCols", colIDList(op.PartitionCols)).
			Add(serializeOrder("SortingColumnList", op.Order))
		for _, w := range op.Wins {
			wn := El("WindowFunc").
				Setf("ColId", "%d", w.Col.ID).
				Set("Name", w.Fn.Name).
				Set("ColName", w.Col.Name).
				Set("Type", w.Col.Type.String())
			if w.Fn.Arg != nil {
				wn.Add(SerializeScalar(w.Fn.Arg))
			}
			n.Add(wn)
		}
	default:
		n = El("UnknownLogical").Set("Op", e.Op.Name())
	}
	for _, c := range e.Children {
		n.Add(serializeTree(c))
	}
	return n
}

func serializeAggElem(a ops.AggElem) *Node {
	n := El("AggElem").
		Setf("ColId", "%d", a.Col.ID).
		Set("Name", a.Col.Name).
		Set("Type", a.Col.Type.String()).
		Set("AggName", a.Agg.Name).
		Setf("Distinct", "%t", a.Agg.Distinct)
	if a.Agg.Arg != nil {
		n.Add(SerializeScalar(a.Agg.Arg))
	}
	return n
}

// ---------------------------------------------------------------------------
// Parsing

// queryParser reconstructs a bound query from a DXL document; the accessor
// resolves table descriptors against the session's metadata provider and the
// column factory is repopulated with the document's column ids.
type queryParser struct {
	acc *md.Accessor
	f   *md.ColumnFactory
}

// ParseQuery interprets a dxl:DXLMessage (or bare dxl:Query) into a bound
// core.Query.
func ParseQuery(root *Node, acc *md.Accessor, f *md.ColumnFactory) (*core.Query, error) {
	qn := root
	if root.Name == "DXLMessage" {
		qn = root.Child("Query")
	}
	if qn == nil || qn.Name != "Query" {
		return nil, fmt.Errorf("dxl: document has no Query element")
	}
	qp := &queryParser{acc: acc, f: f}
	q := &core.Query{Factory: f, Accessor: acc}
	var treeNode *Node
	for _, c := range qn.Children {
		switch c.Name {
		case "OutputColumns":
			for _, id := range c.ChildrenNamed("Ident") {
				v, err := strconv.Atoi(id.Attr("ColId"))
				if err != nil {
					return nil, fmt.Errorf("dxl: bad output ColId: %v", err)
				}
				q.OutCols = append(q.OutCols, base.ColID(v))
				q.OutNames = append(q.OutNames, id.Attr("Name"))
			}
		case "SortingColumnList":
			ord, err := parseOrderNode(c)
			if err != nil {
				return nil, err
			}
			q.Order = ord
		case "Distribution":
			// Result distribution is always Singleton in this reproduction.
		default:
			treeNode = c
		}
	}
	if treeNode == nil {
		return nil, fmt.Errorf("dxl: query has no logical tree")
	}
	tree, err := qp.parseTree(treeNode)
	if err != nil {
		return nil, err
	}
	q.Tree = tree
	return q, nil
}

func parseOrderNode(n *Node) (props.OrderSpec, error) {
	var out props.OrderSpec
	for _, sn := range n.ChildrenNamed("SortingColumn") {
		v, err := strconv.Atoi(sn.Attr("ColId"))
		if err != nil {
			return out, fmt.Errorf("dxl: bad sorting ColId: %v", err)
		}
		out.Items = append(out.Items, props.OrderItem{Col: base.ColID(v), Desc: sn.Attr("Desc") == "true"})
	}
	return out, nil
}

// parseColRefs reads an Ident list into registered column references.
func (qp *queryParser) parseColRefs(n *Node) ([]*md.ColRef, error) {
	var out []*md.ColRef
	for _, c := range n.ChildrenNamed("Ident") {
		v, err := strconv.Atoi(c.Attr("ColId"))
		if err != nil {
			return nil, fmt.Errorf("dxl: bad ColId: %v", err)
		}
		ref := &md.ColRef{
			ID:      base.ColID(v),
			Name:    c.Attr("Name"),
			Type:    parseTypeID(c.Attr("Type")),
			Ordinal: -1,
		}
		if rm := c.Attr("RelMdid"); rm != "" {
			id, err := md.ParseMDId(rm)
			if err != nil {
				return nil, err
			}
			ref.RelMdid = id
			ord, _ := strconv.Atoi(c.Attr("Ordinal"))
			ref.Ordinal = ord
		} else {
			ref.Computed = true
		}
		qp.f.Register(ref)
		out = append(out, ref)
	}
	return out, nil
}
