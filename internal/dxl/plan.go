package dxl

import (
	"fmt"

	"orca/internal/ops"
)

// SerializePlan renders a physical plan as a dxl:Plan message — the
// optimizer's output format, shipped back to the host system where DXL2Plan
// turns it into an executable plan (paper Figure 2). The encoding is
// canonical (sorted attributes, stable parameter rendering) so two plans are
// equal exactly when their serializations are equal, which is what the
// AMPERe test framework compares. The per-operator physical-parameter
// serializer (serializePhysParams) is generated from defs/*.opt into
// physparams.gen.go, mirroring each operator's identity fields.
func SerializePlan(plan *ops.Expr) *Node {
	msg := El("Plan")
	msg.Add(serializePlanNode(plan))
	return El("DXLMessage").Add(msg)
}

func serializePlanNode(e *ops.Expr) *Node {
	n := El("PhysicalOp").Set("Name", e.Op.Name())
	n.Set("Params", paramString(e.Op))
	if e.Phys != nil {
		n.Set("Dist", e.Phys.Dist.String())
		if !e.Phys.Order.IsAny() {
			n.Set("Order", e.Phys.Order.String())
		}
		n.Setf("Rows", "%.0f", e.Rows)
		n.Setf("Cost", "%.0f", e.Cost)
	}
	serializePhysParams(n, e.Op)
	for _, c := range e.Children {
		n.Add(serializePlanNode(c))
	}
	switch op := e.Op.(type) {
	case *ops.SubPlanFilter:
		n.Add(El("SubPlan").Add(serializePlanNode(op.Plan)))
	case *ops.SubPlanProject:
		n.Add(El("SubPlan").Add(serializePlanNode(op.Plan)))
	default:
		// Only the SubPlan operators carry an out-of-line inner plan.
	}
	return n
}

// serializeProjElem renders one projection element.
func serializeProjElem(e ops.ProjElem) *Node {
	return El("ProjElem").
		Setf("ColId", "%d", e.Col.ID).
		Set("Name", e.Col.Name).
		Add(SerializeScalar(e.Expr))
}

// serializeWinElem renders one window-function element.
func serializeWinElem(w ops.WinElem) *Node {
	wn := El("WinElem").
		Setf("ColId", "%d", w.Col.ID).
		Set("Name", w.Col.Name).
		Set("Fn", w.Fn.Name)
	if w.Fn.Arg != nil {
		wn.Add(SerializeScalar(w.Fn.Arg))
	}
	return wn
}

// paramString renders operator parameters canonically.
func paramString(op ops.Operator) string {
	return fmt.Sprintf("%x:%s", op.ParamHash(), ops.Describe(op))
}

// PlanFingerprint returns a canonical string for plan-equality comparison.
func PlanFingerprint(plan *ops.Expr) string {
	return SerializePlan(plan).Render()
}
