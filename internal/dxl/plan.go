package dxl

import (
	"fmt"

	"orca/internal/ops"
)

// SerializePlan renders a physical plan as a dxl:Plan message — the
// optimizer's output format, shipped back to the host system where DXL2Plan
// turns it into an executable plan (paper Figure 2). The encoding is
// canonical (sorted attributes, stable parameter rendering) so two plans are
// equal exactly when their serializations are equal, which is what the
// AMPERe test framework compares.
func SerializePlan(plan *ops.Expr) *Node {
	msg := El("Plan")
	msg.Add(serializePlanNode(plan))
	return El("DXLMessage").Add(msg)
}

func serializePlanNode(e *ops.Expr) *Node {
	n := El("PhysicalOp").Set("Name", e.Op.Name())
	n.Set("Params", paramString(e.Op))
	if e.Phys != nil {
		n.Set("Dist", e.Phys.Dist.String())
		if !e.Phys.Order.IsAny() {
			n.Set("Order", e.Phys.Order.String())
		}
		n.Setf("Rows", "%.0f", e.Rows)
		n.Setf("Cost", "%.0f", e.Cost)
	}
	serializePhysParams(n, e.Op)
	for _, c := range e.Children {
		n.Add(serializePlanNode(c))
	}
	switch op := e.Op.(type) {
	case *ops.SubPlanFilter:
		n.Add(El("SubPlan").Add(serializePlanNode(op.Plan)))
	case *ops.SubPlanProject:
		n.Add(El("SubPlan").Add(serializePlanNode(op.Plan)))
	default:
		// Only the SubPlan operators carry an out-of-line inner plan.
	}
	return n
}

// serializePhysParams renders each operator's identity parameters as
// structured attributes and children, one case per physical and enforcer
// operator. The fields serialized here mirror each operator's ParamHash:
// derived state (Scan.BaseRows, ComputeScalar.PassMap) and display-only
// fields (Alias) are excluded so that param-equal plans render identically —
// PlanFingerprint is the plan-equality oracle for AMPERe replay.
func serializePhysParams(n *Node, op ops.Operator) {
	switch x := op.(type) {
	case *ops.Scan:
		n.Setf("RelOid", "%d", x.Rel.Mdid.OID)
		n.Add(serializeColRefs("ScanCols", x.Cols))
		if x.Filter != nil {
			n.Add(El("ScanFilter").Add(SerializeScalar(x.Filter)))
		}
		if x.Pruned {
			n.Set("Parts", intList(x.Parts))
		}
	case *ops.IndexScan:
		n.Setf("RelOid", "%d", x.Rel.Mdid.OID)
		n.Setf("IndexOid", "%d", x.Index.Mdid.OID).Set("Index", x.Index.Name)
		n.Add(serializeColRefs("ScanCols", x.Cols))
		if x.EqFilter != nil {
			n.Add(El("IndexCond").Add(SerializeScalar(x.EqFilter)))
		}
		if x.Residual != nil {
			n.Add(El("Residual").Add(SerializeScalar(x.Residual)))
		}
	case *ops.Filter:
		n.Add(El("Pred").Add(SerializeScalar(x.Pred)))
	case *ops.ComputeScalar:
		for _, e := range x.Elems {
			n.Add(El("ProjElem").
				Setf("ColId", "%d", e.Col.ID).
				Set("Name", e.Col.Name).
				Add(SerializeScalar(e.Expr)))
		}
	case *ops.HashAgg:
		n.Set("Mode", x.Mode.String()).Set("GroupCols", colIDList(x.GroupCols))
		for _, a := range x.Aggs {
			n.Add(serializeAggElem(a))
		}
	case *ops.StreamAgg:
		n.Set("GroupCols", colIDList(x.GroupCols))
		for _, a := range x.Aggs {
			n.Add(serializeAggElem(a))
		}
	case *ops.ScalarAgg:
		n.Set("Mode", x.Mode.String())
		for _, a := range x.Aggs {
			n.Add(serializeAggElem(a))
		}
	case *ops.HashJoin:
		n.Set("JoinType", x.Type.String())
		n.Set("LeftKeys", colIDList(x.LeftKeys)).Set("RightKeys", colIDList(x.RightKeys))
		if x.Residual != nil {
			n.Add(El("Residual").Add(SerializeScalar(x.Residual)))
		}
	case *ops.NLJoin:
		n.Set("JoinType", x.Type.String())
		if x.Pred != nil {
			n.Add(El("JoinPred").Add(SerializeScalar(x.Pred)))
		}
	case *ops.PhysicalLimit:
		if x.HasCount {
			n.Setf("Count", "%d", x.Count)
		}
		if x.Offset != 0 {
			n.Setf("Offset", "%d", x.Offset)
		}
		n.Add(serializeOrder("LimitOrder", x.Order))
	case *ops.PhysicalUnionAll:
		for _, in := range x.InCols {
			n.Add(El("InputCols").Set("Cols", colIDList(in)))
		}
		n.Add(serializeColRefs("OutputCols", x.OutCols))
	case *ops.PhysicalCTEProducer:
		n.Setf("CteId", "%d", x.ID).Set("Cols", colIDList(x.Cols))
	case *ops.PhysicalCTEConsumer:
		n.Setf("CteId", "%d", x.ID).Set("ProducerCols", colIDList(x.ProducerCols))
		n.Add(serializeColRefs("ConsumerCols", x.Cols))
	case *ops.PhysicalWindow:
		n.Set("PartitionCols", colIDList(x.PartitionCols))
		n.Add(serializeOrder("WindowOrder", x.Order))
		for _, w := range x.Wins {
			wn := El("WinElem").
				Setf("ColId", "%d", w.Col.ID).
				Set("Name", w.Col.Name).
				Set("Fn", w.Fn.Name)
			if w.Fn.Arg != nil {
				wn.Add(SerializeScalar(w.Fn.Arg))
			}
			n.Add(wn)
		}
	case *ops.Sort:
		n.Add(serializeOrder("SortOrder", x.Order))
	case *ops.GatherMerge:
		n.Add(serializeOrder("MergeOrder", x.Order))
	case *ops.Redistribute:
		n.Set("HashCols", colIDList(x.Cols))
	case *ops.Gather, *ops.Broadcast, *ops.Spool, *ops.Sequence:
		// Motion/spool/sequence operators carry no parameters beyond their
		// delivered properties, already on the node.
	default:
		// Logical and scalar operators never appear in a finished physical
		// plan; the Params hash attribute still covers any future operator
		// until it grows a case here (opclosure enforces that it does).
	}
}

// paramString renders operator parameters canonically.
func paramString(op ops.Operator) string {
	return fmt.Sprintf("%x:%s", op.ParamHash(), ops.Describe(op))
}

// PlanFingerprint returns a canonical string for plan-equality comparison.
func PlanFingerprint(plan *ops.Expr) string {
	return SerializePlan(plan).Render()
}
