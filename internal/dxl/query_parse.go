package dxl

import (
	"fmt"
	"strconv"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
)

// paramElements are element names that carry operator parameters rather than
// relational children.
var paramElements = map[string]bool{
	"TableDescriptor": true, "Predicate": true, "ProjElem": true,
	"AggElem": true, "SortingColumnList": true, "OutputColumns": true,
	"InputColumns": true, "ProducerColumns": true, "WindowFunc": true,
	"Columns": true,
}

// treeChildren returns the relational children (non-parameter elements).
func treeChildren(n *Node) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if !paramElements[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// parseTree interprets a logical operator element into an expression tree.
func (qp *queryParser) parseTree(n *Node) (*ops.Expr, error) {
	childNodes := treeChildren(n)
	children := make([]*ops.Expr, len(childNodes))
	for i, c := range childNodes {
		t, err := qp.parseTree(c)
		if err != nil {
			return nil, err
		}
		children[i] = t
	}

	switch n.Name {
	case "LogicalGet":
		td := n.Child("TableDescriptor")
		if td == nil {
			return nil, fmt.Errorf("dxl: LogicalGet missing TableDescriptor")
		}
		id, err := md.ParseMDId(td.Attr("Mdid"))
		if err != nil {
			return nil, err
		}
		rel, err := qp.acc.Relation(id)
		if err != nil {
			return nil, err
		}
		colsNode := td.Child("Columns")
		if colsNode == nil {
			return nil, fmt.Errorf("dxl: TableDescriptor missing Columns")
		}
		cols, err := qp.parseColRefs(colsNode)
		if err != nil {
			return nil, err
		}
		return ops.NewExpr(&ops.Get{Alias: n.Attr("Alias"), Rel: rel, Cols: cols}), nil

	case "LogicalSelect":
		pred, err := qp.parsePredicate(n)
		if err != nil {
			return nil, err
		}
		return ops.NewExpr(&ops.Select{Pred: pred}, children...), nil

	case "LogicalProject":
		var elems []ops.ProjElem
		for _, pe := range n.ChildrenNamed("ProjElem") {
			ref, err := qp.registerRef(pe)
			if err != nil {
				return nil, err
			}
			if len(pe.Children) == 0 {
				return nil, fmt.Errorf("dxl: ProjElem without expression")
			}
			ex, err := qp.parseScalar(pe.Children[0])
			if err != nil {
				return nil, err
			}
			elems = append(elems, ops.ProjElem{Col: ref, Expr: ex})
		}
		return ops.NewExpr(&ops.Project{Elems: elems}, children...), nil

	case "LogicalJoin":
		pred, err := qp.parsePredicate(n)
		if err != nil {
			return nil, err
		}
		var jt ops.JoinType
		switch n.Attr("JoinType") {
		case "Inner":
			jt = ops.InnerJoin
		case "Left":
			jt = ops.LeftJoin
		case "Semi":
			jt = ops.SemiJoin
		case "Anti":
			jt = ops.AntiJoin
		default:
			return nil, fmt.Errorf("dxl: unknown join type %q", n.Attr("JoinType"))
		}
		return ops.NewExpr(&ops.Join{Type: jt, Pred: pred}, children...), nil

	case "LogicalNAryJoin":
		var preds []ops.ScalarExpr
		for _, pn := range n.ChildrenNamed("Predicate") {
			p, err := qp.parseScalar(pn.Children[0])
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		}
		return ops.NewExpr(&ops.NAryJoin{Preds: preds}, children...), nil

	case "LogicalGbAgg":
		group, err := parseColIDList(n.Attr("GroupCols"))
		if err != nil {
			return nil, err
		}
		var aggs []ops.AggElem
		for _, an := range n.ChildrenNamed("AggElem") {
			ref, err := qp.registerRef(an)
			if err != nil {
				return nil, err
			}
			agg := &ops.AggFunc{Name: an.Attr("AggName"), Distinct: an.Attr("Distinct") == "true"}
			if len(an.Children) > 0 {
				arg, err := qp.parseScalar(an.Children[0])
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			aggs = append(aggs, ops.AggElem{Col: ref, Agg: agg})
		}
		return ops.NewExpr(&ops.GbAgg{GroupCols: group, Aggs: aggs}, children...), nil

	case "LogicalLimit":
		count, _ := strconv.ParseInt(n.Attr("Count"), 10, 64)
		offset, _ := strconv.ParseInt(n.Attr("Offset"), 10, 64)
		var l = &ops.Limit{Count: count, Offset: offset, HasCount: n.Attr("HasCount") == "true"}
		if sn := n.Child("SortingColumnList"); sn != nil {
			ord, err := parseOrderNode(sn)
			if err != nil {
				return nil, err
			}
			l.Order = ord
		}
		return ops.NewExpr(l, children...), nil

	case "LogicalUnionAll":
		u := &ops.UnionAll{}
		if oc := n.Child("OutputColumns"); oc != nil {
			refs, err := qp.parseColRefs(oc)
			if err != nil {
				return nil, err
			}
			u.OutCols = refs
		}
		for _, in := range n.ChildrenNamed("InputColumns") {
			cols, err := parseColIDList(in.Attr("Cols"))
			if err != nil {
				return nil, err
			}
			u.InCols = append(u.InCols, cols)
		}
		return ops.NewExpr(u, children...), nil

	case "LogicalCTEAnchor":
		id, _ := strconv.Atoi(n.Attr("CTEId"))
		a := &ops.CTEAnchor{ID: id}
		if pc := n.Child("ProducerColumns"); pc != nil {
			refs, err := qp.parseColRefs(pc)
			if err != nil {
				return nil, err
			}
			a.Cols = refs
		}
		return ops.NewExpr(a, children...), nil

	case "LogicalCTEConsumer":
		id, _ := strconv.Atoi(n.Attr("CTEId"))
		c := &ops.CTEConsumer{ID: id}
		prod, err := parseColIDList(n.Attr("ProducerCols"))
		if err != nil {
			return nil, err
		}
		c.ProducerCols = prod
		if oc := n.Child("OutputColumns"); oc != nil {
			refs, err := qp.parseColRefs(oc)
			if err != nil {
				return nil, err
			}
			c.Cols = refs
		}
		return ops.NewExpr(c), nil

	case "LogicalWindow":
		part, err := parseColIDList(n.Attr("PartitionCols"))
		if err != nil {
			return nil, err
		}
		w := &ops.Window{PartitionCols: part}
		if sn := n.Child("SortingColumnList"); sn != nil {
			ord, err := parseOrderNode(sn)
			if err != nil {
				return nil, err
			}
			w.Order = ord
		}
		for _, wn := range n.ChildrenNamed("WindowFunc") {
			id, _ := strconv.Atoi(wn.Attr("ColId"))
			ref := &md.ColRef{
				ID:       base.ColID(id),
				Name:     wn.Attr("ColName"),
				Type:     parseTypeID(wn.Attr("Type")),
				Ordinal:  -1,
				Computed: true,
			}
			qp.f.Register(ref)
			fn := &ops.WinFunc{Name: wn.Attr("Name")}
			if len(wn.Children) > 0 {
				arg, err := qp.parseScalar(wn.Children[0])
				if err != nil {
					return nil, err
				}
				fn.Arg = arg
			}
			w.Wins = append(w.Wins, ops.WinElem{Col: ref, Fn: fn})
		}
		return ops.NewExpr(w, children...), nil

	default:
		return nil, fmt.Errorf("dxl: unknown logical element %q", n.Name)
	}
}

func (qp *queryParser) parsePredicate(n *Node) (ops.ScalarExpr, error) {
	pn := n.Child("Predicate")
	if pn == nil || len(pn.Children) == 0 {
		return nil, nil
	}
	return qp.parseScalar(pn.Children[0])
}

// registerRef reads a (ColId, Name, Type) attribute triple and registers the
// computed column reference.
func (qp *queryParser) registerRef(n *Node) (*md.ColRef, error) {
	v, err := strconv.Atoi(n.Attr("ColId"))
	if err != nil {
		return nil, fmt.Errorf("dxl: bad ColId on %s: %v", n.Name, err)
	}
	ref := &md.ColRef{
		ID:       base.ColID(v),
		Name:     n.Attr("Name"),
		Type:     parseTypeID(n.Attr("Type")),
		Ordinal:  -1,
		Computed: true,
	}
	qp.f.Register(ref)
	return ref, nil
}
