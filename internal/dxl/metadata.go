package dxl

import (
	"fmt"
	"strconv"
	"strings"

	"orca/internal/base"
	"orca/internal/md"
)

// SerializeMetadata renders metadata objects as a dxl:Metadata element, the
// payload of metadata files and AMPERe dumps (cf. paper Listing 2).
func SerializeMetadata(objects []md.Object) *Node {
	meta := El("Metadata").Set("SystemIds", "0.GPDB")
	for _, obj := range objects {
		switch o := obj.(type) {
		case *md.Type:
			meta.Add(El("Type").
				Set("Mdid", o.Mdid.String()).
				Set("Name", o.Name).
				Set("Base", o.Base.String()).
				Setf("IsRedistributable", "%t", o.IsRedistributable).
				Setf("Length", "%d", o.Length))
		case *md.Relation:
			meta.Add(serializeRelation(o))
		case *md.RelStats:
			meta.Add(serializeRelStats(o))
		case *md.Index:
			meta.Add(El("Index").
				Set("Mdid", o.Mdid.String()).
				Set("Name", o.Name).
				Set("RelMdid", o.RelMdid.String()).
				Set("KeyCols", intList(o.KeyCols)).
				Setf("IsUnique", "%t", o.IsUnique))
		}
	}
	return meta
}

func serializeRelation(r *md.Relation) *Node {
	n := El("Relation").
		Set("Mdid", r.Mdid.String()).
		Set("Name", r.Name).
		Set("DistributionPolicy", r.Policy.String())
	if len(r.DistCols) > 0 {
		n.Set("DistributionColumns", intList(r.DistCols))
	}
	if r.StatsMdid.IsValid() {
		n.Set("StatsMdid", r.StatsMdid.String())
	}
	cols := El("Columns")
	for _, c := range r.Columns {
		cols.Add(El("Column").
			Set("Name", c.Name).
			Setf("Attno", "%d", c.Attno).
			Set("Type", c.Type.String()).
			Setf("Nullable", "%t", c.Nullable))
	}
	n.Add(cols)
	if r.IsPartitioned() {
		parts := El("Partitions").Setf("PartCol", "%d", r.PartCol)
		for _, p := range r.Parts {
			parts.Add(El("Partition").
				Set("Name", p.Name).
				Set("Lo", datumString(p.Lo)).
				Set("Hi", datumString(p.Hi)))
		}
		n.Add(parts)
	}
	if len(r.IndexIDs) > 0 {
		ix := El("IndexList")
		for _, id := range r.IndexIDs {
			ix.Add(El("IndexRef").Set("Mdid", id.String()))
		}
		n.Add(ix)
	}
	return n
}

func serializeRelStats(s *md.RelStats) *Node {
	n := El("RelStats").
		Set("Mdid", s.Mdid.String()).
		Set("Name", s.RelName).
		Setf("Rows", "%g", s.Rows)
	for i := range s.Cols {
		cs := &s.Cols[i]
		cn := El("ColStats").
			Set("Name", cs.ColName).
			Setf("Ordinal", "%d", cs.Ordinal).
			Setf("NDV", "%g", cs.NDV).
			Setf("NullFrac", "%g", cs.NullFrac)
		for _, b := range cs.Buckets {
			cn.Add(El("Bucket").
				Set("Lo", datumString(b.Lo)).
				Set("Hi", datumString(b.Hi)).
				Setf("Rows", "%g", b.Rows).
				Setf("Distincts", "%g", b.Distincts))
		}
		n.Add(cn)
	}
	return n
}

// ParseMetadata materializes a dxl:Metadata element into a provider.
func ParseMetadata(meta *Node, p *md.MemProvider) error {
	for _, c := range meta.Children {
		switch c.Name {
		case "Type":
			id, err := md.ParseMDId(c.Attr("Mdid"))
			if err != nil {
				return err
			}
			length, _ := strconv.Atoi(c.Attr("Length"))
			p.Put(&md.Type{
				Mdid:              id,
				Name:              c.Attr("Name"),
				Base:              parseTypeID(c.Attr("Base")),
				IsRedistributable: c.Attr("IsRedistributable") == "true",
				Length:            length,
			})
		case "Relation":
			rel, err := parseRelation(c)
			if err != nil {
				return err
			}
			p.Put(rel)
		case "RelStats":
			rs, err := parseRelStats(c)
			if err != nil {
				return err
			}
			p.Put(rs)
		case "Index":
			id, err := md.ParseMDId(c.Attr("Mdid"))
			if err != nil {
				return err
			}
			relID, err := md.ParseMDId(c.Attr("RelMdid"))
			if err != nil {
				return err
			}
			keyCols, err := parseIntList(c.Attr("KeyCols"))
			if err != nil {
				return err
			}
			p.Put(&md.Index{
				Mdid:     id,
				Name:     c.Attr("Name"),
				RelMdid:  relID,
				KeyCols:  keyCols,
				IsUnique: c.Attr("IsUnique") == "true",
			})
		}
	}
	return nil
}

func parseRelation(n *Node) (*md.Relation, error) {
	id, err := md.ParseMDId(n.Attr("Mdid"))
	if err != nil {
		return nil, err
	}
	rel := &md.Relation{Mdid: id, Name: n.Attr("Name"), PartCol: -1}
	switch n.Attr("DistributionPolicy") {
	case "Hash":
		rel.Policy = md.DistHash
	case "Replicated":
		rel.Policy = md.DistReplicated
	case "Singleton":
		rel.Policy = md.DistSingleton
	default:
		rel.Policy = md.DistRandom
	}
	if dc := n.Attr("DistributionColumns"); dc != "" {
		cols, err := parseIntList(dc)
		if err != nil {
			return nil, err
		}
		rel.DistCols = cols
	}
	if sm := n.Attr("StatsMdid"); sm != "" {
		sid, err := md.ParseMDId(sm)
		if err != nil {
			return nil, err
		}
		rel.StatsMdid = sid
	}
	if cols := n.Child("Columns"); cols != nil {
		for _, cn := range cols.ChildrenNamed("Column") {
			attno, _ := strconv.Atoi(cn.Attr("Attno"))
			rel.Columns = append(rel.Columns, md.Column{
				Name:     cn.Attr("Name"),
				Attno:    attno,
				Type:     parseTypeID(cn.Attr("Type")),
				Nullable: cn.Attr("Nullable") == "true",
			})
		}
	}
	if parts := n.Child("Partitions"); parts != nil {
		pc, _ := strconv.Atoi(parts.Attr("PartCol"))
		rel.PartCol = pc
		for _, pn := range parts.ChildrenNamed("Partition") {
			lo, err := parseDatum(pn.Attr("Lo"))
			if err != nil {
				return nil, err
			}
			hi, err := parseDatum(pn.Attr("Hi"))
			if err != nil {
				return nil, err
			}
			rel.Parts = append(rel.Parts, md.Partition{Name: pn.Attr("Name"), Lo: lo, Hi: hi})
		}
	}
	if ix := n.Child("IndexList"); ix != nil {
		for _, in := range ix.ChildrenNamed("IndexRef") {
			iid, err := md.ParseMDId(in.Attr("Mdid"))
			if err != nil {
				return nil, err
			}
			rel.IndexIDs = append(rel.IndexIDs, iid)
		}
	}
	return rel, nil
}

func parseRelStats(n *Node) (*md.RelStats, error) {
	id, err := md.ParseMDId(n.Attr("Mdid"))
	if err != nil {
		return nil, err
	}
	rows, err := strconv.ParseFloat(n.Attr("Rows"), 64)
	if err != nil {
		return nil, fmt.Errorf("dxl: bad Rows in RelStats: %v", err)
	}
	rs := &md.RelStats{Mdid: id, RelName: n.Attr("Name"), Rows: rows}
	for _, cn := range n.ChildrenNamed("ColStats") {
		ord, _ := strconv.Atoi(cn.Attr("Ordinal"))
		ndv, _ := strconv.ParseFloat(cn.Attr("NDV"), 64)
		nf, _ := strconv.ParseFloat(cn.Attr("NullFrac"), 64)
		cs := md.ColStats{ColName: cn.Attr("Name"), Ordinal: ord, NDV: ndv, NullFrac: nf}
		for _, bn := range cn.ChildrenNamed("Bucket") {
			lo, err := parseDatum(bn.Attr("Lo"))
			if err != nil {
				return nil, err
			}
			hi, err := parseDatum(bn.Attr("Hi"))
			if err != nil {
				return nil, err
			}
			br, _ := strconv.ParseFloat(bn.Attr("Rows"), 64)
			bd, _ := strconv.ParseFloat(bn.Attr("Distincts"), 64)
			cs.Buckets = append(cs.Buckets, md.Bucket{Lo: lo, Hi: hi, Rows: br, Distincts: bd})
		}
		rs.Cols = append(rs.Cols, cs)
	}
	return rs, nil
}

// ---------------------------------------------------------------------------
// Shared scalar encodings

func intList(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("dxl: bad int list %q: %v", s, err)
		}
		out[i] = v
	}
	return out, nil
}

func colIDList(v []base.ColID) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.Itoa(int(x))
	}
	return strings.Join(parts, ",")
}

func parseColIDList(s string) ([]base.ColID, error) {
	ints, err := parseIntList(s)
	if err != nil {
		return nil, err
	}
	out := make([]base.ColID, len(ints))
	for i, v := range ints {
		out[i] = base.ColID(v)
	}
	return out, nil
}

// datumString encodes a datum with a type prefix for lossless round-trips.
func datumString(d base.Datum) string {
	switch d.Kind {
	case base.DNull:
		return "null:"
	case base.DInt:
		return "int:" + strconv.FormatInt(d.I, 10)
	case base.DFloat:
		return "float:" + strconv.FormatFloat(d.F, 'g', -1, 64)
	case base.DString:
		return "str:" + d.S
	case base.DBool:
		if d.I != 0 {
			return "bool:true"
		}
		return "bool:false"
	default:
		return "null:"
	}
}

func parseDatum(s string) (base.Datum, error) {
	i := strings.Index(s, ":")
	if i < 0 {
		return base.Null, fmt.Errorf("dxl: bad datum %q", s)
	}
	kind, val := s[:i], s[i+1:]
	switch kind {
	case "null":
		return base.Null, nil
	case "int":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return base.Null, fmt.Errorf("dxl: bad int datum %q", s)
		}
		return base.NewInt(v), nil
	case "float":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return base.Null, fmt.Errorf("dxl: bad float datum %q", s)
		}
		return base.NewFloat(v), nil
	case "str":
		return base.NewString(val), nil
	case "bool":
		return base.NewBool(val == "true"), nil
	default:
		return base.Null, fmt.Errorf("dxl: unknown datum kind %q", kind)
	}
}

func parseTypeID(s string) base.TypeID {
	switch s {
	case "int":
		return base.TInt
	case "float":
		return base.TFloat
	case "string":
		return base.TString
	case "bool":
		return base.TBool
	case "date":
		return base.TDate
	default:
		return base.TUnknown
	}
}
