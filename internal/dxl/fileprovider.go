package dxl

import (
	"context"
	"fmt"
	"os"

	"orca/internal/fault"
	"orca/internal/md"
)

// FileProvider loads metadata from a DXL file, "eliminating the need to
// access a live backend system" (paper §5): the stand-alone optimizer, the
// AMPERe replayer and the test suite all use it. It materializes the
// document into an in-memory provider at construction.
func FileProvider(path string) (md.Provider, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dxl: reading metadata file: %w", err)
	}
	return ProviderFromDocument(string(data))
}

// ProviderFromDocument builds a provider from a DXL metadata document (a
// dxl:Metadata element or a DXLMessage containing one).
func ProviderFromDocument(doc string) (*md.MemProvider, error) {
	root, err := ParseXML(doc)
	if err != nil {
		return nil, err
	}
	meta := root
	if root.Name != "Metadata" {
		meta = findMetadata(root)
	}
	if meta == nil {
		return nil, fmt.Errorf("dxl: document contains no Metadata element")
	}
	p := md.NewMemProvider()
	if err := ParseMetadata(meta, p); err != nil {
		return nil, err
	}
	return p, nil
}

func findMetadata(n *Node) *Node {
	if n.Name == "Metadata" {
		return n
	}
	for _, c := range n.Children {
		if m := findMetadata(c); m != nil {
			return m
		}
	}
	return nil
}

// Harvest serializes the metadata objects touched by an optimization session
// into a minimal metadata document — the paper's automated tool for
// harvesting "metadata that optimizer needs into a minimal DXL file" (§5).
// The harvest is closed under dependencies: a touched relation brings its
// statistics and indexes so the dump replays even when the failing session
// aborted before loading them. The harvest's provider fetches run under the
// caller's ctx, so a cancelled diagnostic capture stops promptly.
func Harvest(ctx context.Context, acc *md.Accessor, provider md.Provider) (*Node, error) {
	if err := fault.Inject(fault.PointDXLHarvest); err != nil {
		return nil, err
	}
	seen := map[md.MDId]bool{}
	var objects []md.Object
	add := func(id md.MDId) error {
		if !id.IsValid() || seen[id] {
			return nil
		}
		seen[id] = true
		obj, err := provider.GetObject(ctx, id)
		if err != nil {
			return err
		}
		objects = append(objects, obj)
		if rel, ok := obj.(*md.Relation); ok {
			for _, dep := range append([]md.MDId{rel.StatsMdid}, rel.IndexIDs...) {
				if dep.IsValid() && !seen[dep] {
					seen[dep] = true
					dobj, err := provider.GetObject(ctx, dep)
					if err != nil {
						return err
					}
					objects = append(objects, dobj)
				}
			}
		}
		return nil
	}
	for _, id := range acc.Touched() {
		if err := add(id); err != nil {
			return nil, err
		}
	}
	return SerializeMetadata(objects), nil
}

// HarvestAll serializes every object in a provider (full-catalog export).
func HarvestAll(p *md.MemProvider) *Node {
	return SerializeMetadata(p.Objects())
}
