package dxl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
)

// randScalar builds random scalar trees covering every serializable node.
func randScalar(r *rand.Rand, depth int) ops.ScalarExpr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return ops.NewIdent(base.ColID(r.Intn(8)), base.TInt)
		case 1:
			return ops.NewConst(base.NewInt(int64(r.Intn(100) - 50)))
		case 2:
			return ops.NewConst(base.NewString("s<&>'\"x")) // XML-hostile
		default:
			return ops.NewConst(base.Null)
		}
	}
	switch r.Intn(7) {
	case 0:
		return ops.NewCmp(ops.CmpOp(r.Intn(6)), randScalar(r, depth-1), randScalar(r, depth-1))
	case 1:
		return ops.And(randScalar(r, depth-1), randScalar(r, depth-1))
	case 2:
		return ops.Not(randScalar(r, depth-1))
	case 3:
		return &ops.BinOp{Op: []string{"+", "-", "*", "/", "%"}[r.Intn(5)],
			L: randScalar(r, depth-1), R: randScalar(r, depth-1)}
	case 4:
		return &ops.Func{Name: "coalesce", Args: []ops.ScalarExpr{randScalar(r, depth-1), randScalar(r, depth-1)}}
	case 5:
		return &ops.Case{
			Whens: []ops.CaseWhen{{When: randScalar(r, depth-1), Then: randScalar(r, depth-1)}},
			Else:  randScalar(r, depth-1),
		}
	default:
		return &ops.InList{Arg: randScalar(r, depth-1),
			Vals:    []ops.ScalarExpr{ops.NewConst(base.NewInt(1)), ops.NewConst(base.NewFloat(2.5))},
			Negated: r.Intn(2) == 0}
	}
}

// TestScalarRoundTripProperty: serialize → render → parse → structurally
// equal, for arbitrary scalar trees including XML-hostile string literals.
func TestScalarRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randScalar(r, 4)
		doc := El("Wrapper").Add(SerializeScalar(e)).Render()
		root, err := ParseXML(doc)
		if err != nil {
			t.Logf("parse error for %s: %v", e, err)
			return false
		}
		qp := &queryParser{f: md.NewColumnFactory()}
		back, err := qp.parseScalar(root.Children[0])
		if err != nil {
			t.Logf("interpret error for %s: %v", e, err)
			return false
		}
		return back.Equal(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDatumEncodingRoundTrip(t *testing.T) {
	for _, d := range []base.Datum{
		base.Null,
		base.NewInt(-42),
		base.NewFloat(3.25),
		base.NewString("with spaces & <symbols>"),
		base.NewString(""),
		base.NewBool(true),
		base.NewBool(false),
	} {
		back, err := parseDatum(datumString(d))
		if err != nil {
			t.Errorf("%s: %v", d, err)
			continue
		}
		if back.Kind != d.Kind || back.Compare(d) != 0 {
			t.Errorf("round trip %s -> %s", d, back)
		}
	}
	for _, bad := range []string{"", "noprefix", "int:abc", "float:x", "weird:1"} {
		if _, err := parseDatum(bad); err == nil {
			t.Errorf("parseDatum(%q) accepted", bad)
		}
	}
}

func TestXMLEscaping(t *testing.T) {
	n := El("X").Set("attr", `a<b&"c"'d'>`)
	n.Text = "body <& text"
	doc := El("Root").Add(n).Render()
	back, err := ParseXML(doc)
	if err != nil {
		t.Fatalf("escaped document does not re-parse: %v\n%s", err, doc)
	}
	got := back.Child("X")
	if got.Attr("attr") != `a<b&"c"'d'>` {
		t.Errorf("attribute mangled: %q", got.Attr("attr"))
	}
	if got.Text != "body <& text" {
		t.Errorf("text mangled: %q", got.Text)
	}
}
