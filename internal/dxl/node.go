// Package dxl implements the Data eXchange Language (paper §3): the
// XML-based format through which the stand-alone optimizer communicates with
// host systems. It serializes and parses queries (input), plans (output) and
// metadata, provides the file-based metadata provider of Figure 9, and is
// the wire format of AMPERe dumps (§6.1).
package dxl

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"orca/internal/fault"
)

// Node is a generic XML element; the serializers build Node trees and the
// parsers interpret them, which keeps the operator mapping in one place
// instead of scattering it over struct tags.
type Node struct {
	Name     string
	Attrs    map[string]string
	Children []*Node
	Text     string
}

// El builds an element.
func El(name string, children ...*Node) *Node {
	return &Node{Name: name, Attrs: map[string]string{}, Children: children}
}

// Set sets an attribute and returns the node for chaining.
func (n *Node) Set(key, val string) *Node {
	n.Attrs[key] = val
	return n
}

// Setf sets a formatted attribute.
func (n *Node) Setf(key, format string, args ...any) *Node {
	return n.Set(key, fmt.Sprintf(format, args...))
}

// Add appends children and returns the node.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Attr returns an attribute value ("" when absent).
func (n *Node) Attr(key string) string { return n.Attrs[key] }

// Child returns the first child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all children with the given name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Render writes the node as indented XML with the dxl: namespace prefix.
func (n *Node) Render() string {
	var b strings.Builder
	b.WriteString(xml.Header)
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteString("<dxl:")
	b.WriteString(n.Name)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=\"%s\"", k, escapeAttr(n.Attrs[k]))
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString("/>\n")
		return
	}
	b.WriteString(">")
	if n.Text != "" {
		if err := xml.EscapeText(b, []byte(n.Text)); err != nil {
			b.WriteString(n.Text)
		}
	}
	if len(n.Children) > 0 {
		b.WriteString("\n")
		for _, c := range n.Children {
			c.render(b, depth+1)
		}
		b.WriteString(indent)
	}
	b.WriteString("</dxl:")
	b.WriteString(n.Name)
	b.WriteString(">\n")
}

// escapeAttr escapes an XML attribute value.
func escapeAttr(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
		"'", "&apos;",
	)
	return r.Replace(s)
}

// ParseXML reads a DXL document into a Node tree.
func ParseXML(doc string) (*Node, error) {
	if err := fault.Inject(fault.PointDXLParse); err != nil {
		return nil, err
	}
	dec := xml.NewDecoder(strings.NewReader(doc))
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			if root != nil && len(stack) == 0 {
				break
			}
			return nil, fmt.Errorf("dxl: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: stripNS(t.Name.Local), Attrs: map[string]string{}}
			for _, a := range t.Attr {
				if a.Name.Local == "dxl" || a.Name.Space == "xmlns" {
					continue
				}
				n.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			} else if root == nil {
				root = n
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += strings.TrimSpace(string(t))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("dxl: empty document")
	}
	return root, nil
}

func stripNS(name string) string {
	if i := strings.Index(name, ":"); i >= 0 {
		return name[i+1:]
	}
	return name
}
