package memo

import (
	"orca/internal/fault"
	"orca/internal/ops"
	"orca/internal/stats"
)

// DeriveStats computes and attaches statistics to a group (paper §4.1 step
// 2): it picks the group expression with the highest promise of delivering
// reliable statistics, recursively derives the child groups, and combines
// the child statistics objects. The derived object is attached to the group
// so later requests reuse it, keeping derivation cost manageable on the
// compact Memo. Derivation is on demand — the search scheduler triggers it
// per group when the group is first costed, so only groups reached by search
// carry statistics.
func (m *Memo) DeriveStats(gid GroupID, ctx *stats.Context) (*stats.Stats, error) {
	g := m.Group(gid)
	if s := g.Stats(); s != nil {
		return s, nil
	}
	if err := fault.Inject(fault.PointMemoStatsDerive); err != nil {
		return nil, err
	}
	ge := g.promisingExpr()
	if ge == nil {
		s := stats.NewStats(1)
		g.SetStats(s)
		return s, nil
	}

	// CTE anchors derive the producer side first and register its statistics
	// so consumer groups (leaves elsewhere in the body) can find them.
	if anchor, ok := ge.Op.(*ops.CTEAnchor); ok {
		prodStats, err := m.DeriveStats(ge.Children[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.RegisterCTE(anchor.ID, prodStats)
	}

	// A consumer reached before its anchor: with on-demand derivation there
	// is no root-first walk guaranteeing the producer was visited, so pull
	// the producer group in through the Memo's anchor registry.
	if cons, ok := ge.Op.(*ops.CTEConsumer); ok && !ctx.HasCTE(cons.ID) {
		if prod, found := m.CTEProducer(cons.ID); found {
			prodStats, err := m.DeriveStats(prod, ctx)
			if err != nil {
				return nil, err
			}
			ctx.RegisterCTE(cons.ID, prodStats)
		}
	}

	childStats := make([]*stats.Stats, len(ge.Children))
	for i, cid := range ge.Children {
		cs, err := m.DeriveStats(cid, ctx)
		if err != nil {
			return nil, err
		}
		childStats[i] = cs
	}
	s, err := ctx.Derive(ge.Op, childStats)
	if err != nil {
		return nil, err
	}
	g.SetStats(s)
	return s, nil
}

// StatsSources returns the groups whose statistics this group's derivation
// will consult: the promising expression's children, plus the CTE producer
// group when the promising expression is a consumer whose producer is not
// registered yet. The search scheduler uses this to run statistics
// derivation of the inputs as dependency jobs (deduplicated by goal) before
// combining them. It returns nil once the group's statistics exist.
func (m *Memo) StatsSources(gid GroupID, ctx *stats.Context) []GroupID {
	g := m.Group(gid)
	if g.Stats() != nil {
		return nil
	}
	ge := g.promisingExpr()
	if ge == nil {
		return nil
	}
	srcs := append([]GroupID(nil), ge.Children...)
	if cons, ok := ge.Op.(*ops.CTEConsumer); ok && !ctx.HasCTE(cons.ID) {
		if prod, found := m.CTEProducer(cons.ID); found {
			srcs = append(srcs, prod)
		}
	}
	return srcs
}

// promisingExpr selects the expression used for statistics derivation. The
// promise heuristic follows the paper: expressions with fewer join
// conditions are more promising because estimation errors compound across
// conditions; logical expressions are preferred over physical ones.
func (g *Group) promisingExpr() *GroupExpr {
	exprs := g.Exprs()
	var best *GroupExpr
	bestScore := 1 << 30
	for _, ge := range exprs {
		if _, isLogical := ge.Op.(ops.Logical); !isLogical {
			continue
		}
		score := statsPromise(ge.Op)
		if best == nil || score < bestScore {
			best = ge
			bestScore = score
		}
	}
	if best == nil && len(exprs) > 0 {
		best = exprs[0]
	}
	return best
}

// statsPromise scores an operator for statistics derivation; lower is more
// promising.
func statsPromise(op ops.Operator) int {
	switch o := op.(type) {
	case *ops.Join:
		return len(ops.Conjuncts(o.Pred))
	case *ops.NAryJoin:
		// The collapsed join applies every predicate at the ideal position;
		// prefer it over partially-ordered binary expansions.
		return 0
	default:
		return 1
	}
}
