package memo

import (
	"testing"

	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

func testGet(name string, f *md.ColumnFactory) *ops.Expr {
	p := md.NewMemProvider()
	rel := md.Build(p, md.TableSpec{
		Name: name, Rows: 100, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "b", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
		},
	})
	cols := []*md.ColRef{
		f.NewTableColumn("a", base.TInt, rel.Mdid, 0),
		f.NewTableColumn("b", base.TInt, rel.Mdid, 1),
	}
	return ops.NewExpr(&ops.Get{Alias: name, Rel: rel, Cols: cols})
}

// paperTree builds InnerJoin(Get(T1), Get(T2)) — the paper's Figure 4.
func paperTree(f *md.ColumnFactory) *ops.Expr {
	t1 := testGet("T1", f)
	t2 := testGet("T2", f)
	pred := ops.Eq(
		ops.NewIdent(t1.Op.(*ops.Get).Cols[0].ID, base.TInt),
		ops.NewIdent(t2.Op.(*ops.Get).Cols[1].ID, base.TInt))
	return ops.NewExpr(&ops.Join{Type: ops.InnerJoin, Pred: pred}, t1, t2)
}

func TestInsertCreatesGroupsBottomUp(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	root, err := m.Insert(paperTree(f))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4: three groups — two Gets and the join.
	if m.NumGroups() != 3 {
		t.Errorf("groups = %d, want 3 (paper Figure 4)", m.NumGroups())
	}
	g := m.Group(root)
	if len(g.Exprs()) != 1 {
		t.Errorf("root group exprs = %d", len(g.Exprs()))
	}
	join := g.Exprs()[0]
	if join.Op.Name() != "InnerJoin" || len(join.Children) != 2 {
		t.Errorf("root gexpr = %s", join)
	}
	mustValidate(t, m)
}

// mustValidate asserts the Memo's structural invariants (see validate.go);
// it cross-covers the memoimmut static analyzer at runtime.
func mustValidate(t *testing.T, m *Memo) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("Memo.Validate: %v", err)
	}
}

func TestDuplicateDetection(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	tree := paperTree(f)
	root, err := m.Insert(tree)
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumExprs()
	// Re-inserting the identical tree must be a complete no-op (the Memo's
	// topology-based duplicate detection, §4.1 step 1).
	root2, err := m.Insert(tree)
	if err != nil {
		t.Fatal(err)
	}
	if root2 != root || m.NumExprs() != before {
		t.Errorf("duplicate insert changed the Memo: root %d->%d, exprs %d->%d",
			root, root2, before, m.NumExprs())
	}
	// Inserting the commuted join adds exactly one expression to the group.
	join := tree.Op.(*ops.Join)
	g := m.Group(root)
	ge := g.Exprs()[0]
	if _, err := m.InsertExpr(&ops.Join{Type: ops.InnerJoin, Pred: join.Pred},
		[]GroupID{ge.Children[1], ge.Children[0]}, root); err != nil {
		t.Fatal(err)
	}
	if len(g.Exprs()) != 2 {
		t.Errorf("commuted join not added: %d exprs", len(g.Exprs()))
	}
	if m.NumExprs() != before+1 {
		t.Errorf("expected exactly one new expression")
	}
	mustValidate(t, m)
}

func TestGroupLogicalProps(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	root, _ := m.Insert(paperTree(f))
	out := m.Group(root).Logical().OutputCols
	if out.Len() != 4 {
		t.Errorf("join output cols = %s, want 4 columns", out)
	}
}

func TestOptContextDedupAndBest(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	root, _ := m.Insert(paperTree(f))
	g := m.Group(root)
	req := props.Required{Dist: props.SingletonDist}

	ctx, created := g.Context(req)
	if !created {
		t.Fatal("first Context must create")
	}
	if _, created := g.Context(req); created {
		t.Fatal("second Context must dedup (the group hash table)")
	}
	if g.LookupContext(props.Required{Dist: props.AnyDist}) != nil {
		t.Error("LookupContext invented a context")
	}

	ge := g.Exprs()[0]
	ctx.Offer(ge, Candidate{Cost: 100})
	ctx.Offer(ge, Candidate{Cost: 50})
	ctx.Offer(ge, Candidate{Cost: 70})
	if _, cand, ok := ctx.Best(); !ok || cand.Cost != 50 {
		t.Errorf("best = %v, want cost 50", cand)
	}
	if ctx.BestCost() != 50 {
		t.Errorf("BestCost = %v", ctx.BestCost())
	}
}

func TestAddEnforcers(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	root, _ := m.Insert(paperTree(f))
	g := m.Group(root)
	req := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(0)}
	if err := g.AddEnforcers(req); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ge := range g.Exprs() {
		if ge.IsEnforcer() {
			names[ge.Op.Name()] = true
			if ge.Children[0] != g.ID {
				t.Errorf("enforcer %s child is %d, want own group %d (paper Figure 6)",
					ge.Op.Name(), ge.Children[0], g.ID)
			}
		}
	}
	for _, want := range []string{"Sort", "Gather", "GatherMerge"} {
		if !names[want] {
			t.Errorf("missing enforcer %s for %s; have %v", want, req, names)
		}
	}
	n := len(g.Exprs())
	// Idempotent per request.
	if err := g.AddEnforcers(req); err != nil {
		t.Fatal(err)
	}
	if len(g.Exprs()) != n {
		t.Error("AddEnforcers not idempotent")
	}
}

func TestEnforcerUseful(t *testing.T) {
	ordReq := props.Required{Dist: props.AnyDist, Order: props.MakeOrder(1)}
	plainReq := props.Required{Dist: props.AnyDist}
	singleReq := props.Required{Dist: props.SingletonDist}
	cases := []struct {
		op   ops.Operator
		req  props.Required
		want bool
	}{
		{&ops.Sort{Order: props.MakeOrder(1)}, ordReq, true},
		{&ops.Sort{Order: props.MakeOrder(1)}, plainReq, false}, // cycle guard
		{&ops.Sort{Order: props.MakeOrder(2)}, ordReq, false},
		{&ops.Gather{}, singleReq, true},
		{&ops.Gather{}, props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(1)}, false},
		{&ops.GatherMerge{Order: props.MakeOrder(1)}, props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(1)}, true},
		{&ops.Redistribute{Cols: []base.ColID{1}}, props.Required{Dist: props.Hashed(1)}, true},
		{&ops.Redistribute{Cols: []base.ColID{2}}, props.Required{Dist: props.Hashed(1)}, false},
		{&ops.Broadcast{}, props.Required{Dist: props.ReplicatedDist}, true},
		{&ops.Broadcast{}, singleReq, false},
		{&ops.Spool{}, props.Required{Dist: props.AnyDist, Rewindable: true}, true},
		{&ops.Spool{}, plainReq, false},
	}
	for _, c := range cases {
		if got := EnforcerUseful(c.op, c.req); got != c.want {
			t.Errorf("EnforcerUseful(%s, %s) = %v, want %v", c.op.Name(), c.req, got, c.want)
		}
	}
}

func TestExtractPlanFailsWithoutOptimization(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	root, _ := m.Insert(paperTree(f))
	if _, err := m.ExtractPlan(root, props.Required{Dist: props.SingletonDist}); err == nil {
		t.Error("extraction must fail before optimization")
	}
}

func TestMarkApplied(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	root, _ := m.Insert(paperTree(f))
	ge := m.Group(root).Exprs()[0]
	const ruleX, ruleY = 3, 67 // two dense rule ids spanning bitset words
	if ge.Applied(ruleX) {
		t.Error("fresh expression must report no applied rules")
	}
	if !ge.MarkApplied(ruleX) {
		t.Error("first application must succeed")
	}
	if ge.MarkApplied(ruleX) {
		t.Error("rules must fire once per expression")
	}
	if !ge.MarkApplied(ruleY) {
		t.Error("different rule must still fire")
	}
	if !ge.Applied(ruleX) || !ge.Applied(ruleY) {
		t.Error("applied ledger lost a recorded rule")
	}
}

func TestCandidateLinkage(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	f := md.NewColumnFactory()
	root, _ := m.Insert(paperTree(f))
	ge := m.Group(root).Exprs()[0]
	req := props.Required{Dist: props.SingletonDist}
	cand := Candidate{ChildReqs: []props.Required{{Dist: props.AnyDist}, {Dist: props.ReplicatedDist}}, Cost: 9}
	ge.AddCandidate(req, cand)
	got := ge.Candidates(req)
	if len(got) != 1 || got[0].Cost != 9 || len(got[0].ChildReqs) != 2 {
		t.Errorf("candidates = %+v", got)
	}
	if ge.Candidates(props.Required{Dist: props.AnyDist}) != nil {
		t.Error("candidates leaked across requests")
	}
}
