// Package memo implements the Memo (paper §3): the compact in-memory
// encoding of the plan space. Groups contain logically equivalent
// expressions; group expressions are operators whose children are groups.
// The package also holds the optimization machinery attached to the Memo in
// the paper's Figure 6: per-group hash tables mapping optimization requests
// to best group expressions, per-group-expression local hash tables mapping
// incoming requests to child requests (the linkage structure), enforcer
// insertion, statistics derivation over the compact structure, and final
// plan extraction.
package memo

import (
	"fmt"
	"strings"
	"sync"

	"orca/internal/base"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/stats"
)

// GroupID identifies a Memo group.
type GroupID int32

// Memo is the plan-space structure. All methods are safe for concurrent use
// by optimization jobs. One Memo serves a whole optimization session: when
// the session runs multiple stages, later stages resume search over the same
// Memo instead of rebuilding it (group state is tracked per rule-set epoch,
// see Group).
type Memo struct {
	mu     sync.Mutex
	groups []*Group
	// fingerprints provides the duplicate detection "based on expression
	// topology" (paper §4.1 step 1): operator parameters plus child groups.
	fingerprints map[uint64][]*GroupExpr
	// cteProducers maps a CTE id to the group holding its producer side,
	// recorded when the CTE anchor is inserted. On-demand statistics
	// derivation uses it to reach producer statistics from a consumer group
	// without walking the whole Memo from the root.
	cteProducers map[int]GroupID
	mem          *gpos.MemoryAccountant

	root GroupID
}

// New returns an empty Memo charging the given accountant (may be nil).
func New(mem *gpos.MemoryAccountant) *Memo {
	return &Memo{
		fingerprints: make(map[uint64][]*GroupExpr),
		cteProducers: make(map[int]GroupID),
		mem:          mem,
	}
}

// Root returns the root group id.
func (m *Memo) Root() GroupID { return m.root }

// SetRoot marks the root group.
func (m *Memo) SetRoot(g GroupID) { m.root = g }

// Group returns the group with the given id.
func (m *Memo) Group(id GroupID) *Group {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groups[id]
}

// NumGroups returns the current number of groups.
func (m *Memo) NumGroups() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.groups)
}

// NumExprs returns the total number of group expressions.
func (m *Memo) NumExprs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, g := range m.groups {
		n += len(g.exprs)
	}
	return n
}

// Insert copies a logical expression tree into the Memo (paper Figure 4),
// creating groups bottom-up, and returns the root group id.
func (m *Memo) Insert(e *ops.Expr) (GroupID, error) {
	children := make([]GroupID, len(e.Children))
	for i, c := range e.Children {
		id, err := m.Insert(c)
		if err != nil {
			return 0, err
		}
		children[i] = id
	}
	ge, err := m.InsertExpr(e.Op, children, -1)
	if err != nil {
		return 0, err
	}
	return ge.group.ID, nil
}

// InsertExpr adds one group expression with the given children. If target is
// a valid group id, the expression is added to that group (a transformation
// result), deduplicated against the group's existing expressions — the
// Memo's topology-based duplicate detection (§4.1 step 1). Otherwise the
// expression denotes a fresh sub-goal: the content-addressed subtree
// registry either returns the existing group holding that expression or
// creates a new one.
//
// Keeping the two namespaces separate makes the explored plan space a pure
// function of the rule set (independent of job scheduling order): rule
// results always land in their target group, and subtree groups are keyed by
// content alone. Full cross-group merging is out of scope (DESIGN.md §5).
func (m *Memo) InsertExpr(op ops.Operator, children []GroupID, target GroupID) (*GroupExpr, error) {
	if err := fault.Inject(fault.PointMemoInsert); err != nil {
		return nil, err
	}
	fp := fingerprint(op, children)
	m.mu.Lock()
	defer m.mu.Unlock()

	if a, ok := op.(*ops.CTEAnchor); ok && len(children) > 0 {
		if _, seen := m.cteProducers[a.ID]; !seen {
			m.cteProducers[a.ID] = children[0]
		}
	}

	var grp *Group
	if target >= 0 {
		grp = m.groups[int(target)]
		grp.mu.Lock()
		for _, ge := range grp.exprs {
			if ge.fp == fp && ge.matches(op, children) {
				grp.mu.Unlock()
				return ge, nil
			}
		}
		grp.mu.Unlock()
	} else {
		for _, ge := range m.fingerprints[fp] {
			if ge.matches(op, children) {
				return ge, nil
			}
		}
		grp = m.newGroupLocked()
	}

	ge := &GroupExpr{
		Op:       op,
		Children: children,
		group:    grp,
		fp:       fp,
		local:    make(map[uint64][]*localLink),
		applied:  make(map[string]bool),
	}
	if target < 0 {
		m.fingerprints[fp] = append(m.fingerprints[fp], ge)
	}
	grp.mu.Lock()
	grp.exprs = append(grp.exprs, ge)
	grp.mu.Unlock()
	m.mem.Charge(128)
	return ge, nil
}

// CTEProducer returns the group holding the producer side of the CTE with
// the given id, recorded when its anchor was inserted.
func (m *Memo) CTEProducer(id int) (GroupID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.cteProducers[id]
	return g, ok
}

func (m *Memo) newGroupLocked() *Group {
	g := &Group{
		ID:   GroupID(len(m.groups)),
		memo: m,
		ctxs: make(map[uint64][]*OptContext),
	}
	m.groups = append(m.groups, g)
	m.mem.Charge(256)
	return g
}

func fingerprint(op ops.Operator, children []GroupID) uint64 {
	const prime = 1099511628211
	h := op.ParamHash()
	for _, c := range children {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// String renders the Memo's groups and expressions for debugging and for
// the optimizer's trace facility.
func (m *Memo) String() string {
	m.mu.Lock()
	groups := append([]*Group(nil), m.groups...)
	m.mu.Unlock()
	var b strings.Builder
	for _, g := range groups {
		g.mu.Lock()
		fmt.Fprintf(&b, "GROUP %d", g.ID)
		if g.stats != nil {
			fmt.Fprintf(&b, " (rows=%.0f)", g.stats.Rows)
		}
		b.WriteString(":\n")
		for i, ge := range g.exprs {
			fmt.Fprintf(&b, "  %d: %s %v\n", i, ops.Describe(ge.Op), ge.Children)
		}
		g.mu.Unlock()
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Group

// Group is a container of logically equivalent expressions capturing one
// sub-goal of the query (paper §3).
//
// Exploration and implementation completion are tracked per rule-set epoch
// rather than as one-shot booleans: each optimization stage activates a rule
// set (xform.Context.SetRuleSet) and stages with identical rule sets share
// an epoch. A later stage with a different rule set therefore resumes search
// over the same Memo — groups re-enter exploration/implementation under the
// new epoch, and the per-expression applied-rule ledger confines the work to
// rules that have not fired yet.
type Group struct {
	ID   GroupID
	memo *Memo

	mu    sync.Mutex
	exprs []*GroupExpr

	logical  *props.Logical
	stats    *stats.Stats
	explored map[int]bool    // rule-set epochs whose exploration completed
	impl     map[int]bool    // rule-set epochs whose implementation completed
	enforced map[uint64]bool // requests whose enforcers were added
	ctxs     map[uint64][]*OptContext
}

// Exprs returns a snapshot of the group's expressions.
func (g *Group) Exprs() []*GroupExpr {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*GroupExpr(nil), g.exprs...)
}

// NumExprs returns the current expression count.
func (g *Group) NumExprs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.exprs)
}

// Expr returns the i-th expression.
func (g *Group) Expr(i int) *GroupExpr {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.exprs[i]
}

// Explored reports whether exploration finished for this group under the
// given rule-set epoch.
func (g *Group) Explored(epoch int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.explored[epoch]
}

// SetExplored marks exploration complete for the given rule-set epoch.
func (g *Group) SetExplored(epoch int) {
	g.mu.Lock()
	if g.explored == nil {
		g.explored = make(map[int]bool)
	}
	g.explored[epoch] = true
	g.mu.Unlock()
}

// Implemented reports whether implementation finished for this group under
// the given rule-set epoch.
func (g *Group) Implemented(epoch int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.impl[epoch]
}

// SetImplemented marks implementation complete for the given rule-set epoch.
func (g *Group) SetImplemented(epoch int) {
	g.mu.Lock()
	if g.impl == nil {
		g.impl = make(map[int]bool)
	}
	g.impl[epoch] = true
	g.mu.Unlock()
}

// Logical returns the group's logical properties, deriving them on first use
// from the first logical expression.
func (g *Group) Logical() *props.Logical {
	g.mu.Lock()
	if g.logical != nil {
		defer g.mu.Unlock()
		return g.logical
	}
	var first *GroupExpr
	for _, ge := range g.exprs {
		if _, ok := ge.Op.(ops.Logical); ok {
			first = ge
			break
		}
	}
	if first == nil && len(g.exprs) > 0 {
		first = g.exprs[0]
	}
	g.mu.Unlock()

	lp := props.NewLogical()
	if first != nil {
		childOuts := make([]base.ColSet, len(first.Children))
		for i, cid := range first.Children {
			childOuts[i] = g.memo.Group(cid).Logical().OutputCols
		}
		lp.OutputCols = ops.OutputColsOp(first.Op, childOuts)
	}
	g.mu.Lock()
	if g.logical == nil {
		g.logical = lp
	}
	out := g.logical
	g.mu.Unlock()
	return out
}

// Stats returns the group's statistics object (nil before derivation).
func (g *Group) Stats() *stats.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// SetStats attaches a statistics object to the group (paper Figure 5d).
func (g *Group) SetStats(s *stats.Stats) {
	g.mu.Lock()
	if g.stats == nil {
		g.stats = s
		g.memo.mem.Charge(s.SizeBytes())
	}
	g.mu.Unlock()
}

// Rows returns the group's estimated cardinality (0 before derivation).
func (g *Group) Rows() float64 {
	if s := g.Stats(); s != nil {
		return s.Rows
	}
	return 0
}

// ---------------------------------------------------------------------------
// GroupExpr

// GroupExpr is an operator whose children are groups (paper §3). Its local
// hash table maps incoming optimization requests to the child requests of
// the best plan alternative — the linkage structure used for plan extraction
// (paper Figure 6) and for TAQO's uniform plan sampling.
type GroupExpr struct {
	Op       ops.Operator
	Children []GroupID

	group *Group
	fp    uint64

	mu      sync.Mutex
	local   map[uint64][]*localLink
	applied map[string]bool
}

type localLink struct {
	req props.Required
	// alternatives costed for this request (used by TAQO sampling).
	candidates []Candidate
}

// Candidate is one costed way of satisfying a request with this expression.
type Candidate struct {
	ChildReqs []props.Required
	LocalCost float64
	Cost      float64 // subtree total
	Delivered props.Derived
}

// Group returns the owning group.
func (ge *GroupExpr) Group() *Group { return ge.group }

func (ge *GroupExpr) matches(op ops.Operator, children []GroupID) bool {
	if len(ge.Children) != len(children) || !ge.Op.ParamEqual(op) {
		return false
	}
	for i := range children {
		if ge.Children[i] != children[i] {
			return false
		}
	}
	return true
}

// MarkApplied records that a rule ran on this expression; it returns false
// if the rule had already been applied (rules fire once per expression).
func (ge *GroupExpr) MarkApplied(rule string) bool {
	ge.mu.Lock()
	defer ge.mu.Unlock()
	if ge.applied[rule] {
		return false
	}
	ge.applied[rule] = true
	return true
}

// Applied reports whether the named rule already ran on this expression.
// The ledger spans rule-set epochs, so a stage resuming search over a shared
// Memo skips transformations an earlier stage performed.
func (ge *GroupExpr) Applied(rule string) bool {
	ge.mu.Lock()
	defer ge.mu.Unlock()
	return ge.applied[rule]
}

// AddCandidate records a costed alternative for the request in the local
// hash table. Re-costing the same alternative (same child requests) in a
// later optimization pass replaces the earlier entry rather than appending a
// duplicate, so the candidate list stays one entry per distinct alternative.
func (ge *GroupExpr) AddCandidate(req props.Required, c Candidate) {
	h := req.Hash()
	ge.mu.Lock()
	defer ge.mu.Unlock()
	for _, l := range ge.local[h] {
		if l.req.Equal(req) {
			for i := range l.candidates {
				if sameChildReqs(l.candidates[i].ChildReqs, c.ChildReqs) {
					l.candidates[i] = c
					return
				}
			}
			l.candidates = append(l.candidates, c)
			return
		}
	}
	ge.local[h] = append(ge.local[h], &localLink{req: req, candidates: []Candidate{c}})
}

func sameChildReqs(a, b []props.Required) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Candidates returns the costed alternatives recorded for a request.
func (ge *GroupExpr) Candidates(req props.Required) []Candidate {
	h := req.Hash()
	ge.mu.Lock()
	defer ge.mu.Unlock()
	for _, l := range ge.local[h] {
		if l.req.Equal(req) {
			return append([]Candidate(nil), l.candidates...)
		}
	}
	return nil
}

// IsEnforcer reports whether the expression is an enforcer operator.
func (ge *GroupExpr) IsEnforcer() bool {
	_, ok := ge.Op.(ops.Enforcer)
	return ok
}

// String renders "Op [c1 c2]".
func (ge *GroupExpr) String() string {
	return fmt.Sprintf("%s %v", ops.Describe(ge.Op), ge.Children)
}
