// Package memo implements the Memo (paper §3): the compact in-memory
// encoding of the plan space. Groups contain logically equivalent
// expressions; group expressions are operators whose children are groups.
// The package also holds the optimization machinery attached to the Memo in
// the paper's Figure 6: per-group hash tables mapping optimization requests
// to best group expressions, per-group-expression local hash tables mapping
// incoming requests to child requests (the linkage structure), enforcer
// insertion, statistics derivation over the compact structure, and final
// plan extraction.
//
// The Memo is the structure every optimization job searches, so its hot
// paths are built to be contention-free (paper §6.2, Figure 7 — near-linear
// speedup with more cores requires the shared search structure not to
// serialize the workers; DESIGN.md §11):
//
//   - the group index is an append-only chunked array published through an
//     atomic pointer — Group(id) and NumGroups take no lock at all;
//   - duplicate detection is striped: the content-addressed subtree registry
//     is split across hash-sharded stripes with per-stripe locks, and
//     target-group dedup uses only the group's own lock;
//   - the applied-rule ledger is a bitset indexed by dense rule IDs
//     (xform's registry), so rule-firing checks hash no strings;
//   - optimization requests are interned per session to dense ReqIDs, so
//     the Figure-6 hash tables are direct int-keyed maps with no
//     Hash()/Equal() re-runs on every probe.
package memo

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"orca/internal/base"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/stats"
)

// GroupID identifies a Memo group.
type GroupID int32

// ---------------------------------------------------------------------------
// Lock-free group index

const (
	groupChunkBits = 6
	groupChunkSize = 1 << groupChunkBits // groups per chunk
	groupChunkMask = groupChunkSize - 1
)

type groupChunk [groupChunkSize]*Group

// groupIndex is a consistent view of the append-only group index: a directory
// of fixed-size chunks plus the count of groups visible through this view.
// Views are immutable up to n — writers fill the new group's slot (and, on a
// chunk boundary, install a new chunk) before publishing the count that
// reveals it, so a reader holding any view can index every group below its n
// without synchronization. Only groupSnapshot/publishGroup may touch the raw
// structure (enforced by the lockcheck analyzer's memoindex rule).
type groupIndex struct {
	chunks []*groupChunk
	n      int
}

func (idx *groupIndex) group(id GroupID) *Group {
	return idx.chunks[id>>groupChunkBits][id&groupChunkMask]
}

// ---------------------------------------------------------------------------
// Sharded duplicate-detection registry

// numFpStripes is the stripe count of the content-addressed subtree
// registry. Power of two so the stripe pick is a mask; 64 stripes keep the
// collision probability of concurrent inserts on distinct fingerprints low
// at any realistic worker count.
const numFpStripes = 64

// fpStripe is one stripe of the registry: the fingerprint buckets whose hash
// falls on this stripe, guarded by the stripe's own lock.
type fpStripe struct {
	mu    sync.Mutex
	table map[uint64][]*GroupExpr
}

// ---------------------------------------------------------------------------
// Interned optimization requests

// ReqID is a session-dense handle for an interned props.Required. Two
// requests are Equal exactly when their ReqIDs match, so the per-group and
// per-expression hash tables (paper Figure 6) key directly off the int
// instead of re-running Hash()/Equal() per probe.
type ReqID int32

const numReqStripes = 16

type reqStripe struct {
	mu    sync.Mutex
	table map[uint64][]reqEntry
}

type reqEntry struct {
	req props.Required
	id  ReqID
}

// Memo is the plan-space structure. All methods are safe for concurrent use
// by optimization jobs. One Memo serves a whole optimization session: when
// the session runs multiple stages, later stages resume search over the same
// Memo instead of rebuilding it (group state is tracked per rule-set epoch,
// see Group).
type Memo struct {
	// groupN and chunkDir together form the lock-free group index; see
	// groupIndex. groupN is the published group count; chunkDir points at the
	// chunk directory, replaced only when it must grow (geometric doubling).
	// Publication order is slot write → chunkDir (on chunk boundaries) →
	// groupN, so a reader that observes count n through groupN finds every
	// group below n through whatever directory it loads afterwards. Accessed
	// only through groupSnapshot/Group/publishGroup.
	groupN   atomic.Int64
	chunkDir atomic.Pointer[[]*groupChunk]
	// groupPubMu serializes group creation (writers only; readers never
	// take it).
	groupPubMu sync.Mutex

	// stripes is the sharded duplicate-detection registry ("based on
	// expression topology", paper §4.1 step 1): operator parameters plus
	// child groups, keyed by fingerprint, striped by fingerprint hash.
	stripes [numFpStripes]fpStripe

	// reqStripes interns optimization requests to dense ReqIDs; nextReq
	// allocates the IDs.
	reqStripes [numReqStripes]reqStripe
	nextReq    atomic.Int32

	// cteProducers maps a CTE id to the group holding its producer side,
	// recorded when the CTE anchor is inserted. On-demand statistics
	// derivation uses it to reach producer statistics from a consumer group
	// without walking the whole Memo from the root.
	cteMu        sync.Mutex
	cteProducers map[int]GroupID

	mem *gpos.MemoryAccountant

	root GroupID
}

// New returns an empty Memo charging the given accountant (may be nil).
func New(mem *gpos.MemoryAccountant) *Memo {
	m := &Memo{
		cteProducers: make(map[int]GroupID),
		mem:          mem,
	}
	m.chunkDir.Store(&[]*groupChunk{})
	for i := range m.stripes {
		m.stripes[i].table = make(map[uint64][]*GroupExpr)
	}
	for i := range m.reqStripes {
		m.reqStripes[i].table = make(map[uint64][]reqEntry)
	}
	return m
}

// Root returns the root group id.
func (m *Memo) Root() GroupID { return m.root }

// SetRoot marks the root group.
func (m *Memo) SetRoot(g GroupID) { m.root = g }

// groupSnapshot assembles a consistent index view: the count is loaded first,
// so the directory loaded after it covers at least that many groups. The view
// is immutable up to its n, so callers may index it freely without locks.
//
//orcavet:hotpath lock-free index view on every group probe
func (m *Memo) groupSnapshot() groupIndex {
	n := int(m.groupN.Load())
	return groupIndex{chunks: *m.chunkDir.Load(), n: n}
}

// Group returns the group with the given id. It performs no mutex
// acquisition: one atomic pointer load plus two array indexings. The id must
// have been observed through NumGroups or returned from an insert (the
// directory loaded here then covers it).
//
//orcavet:hotpath one atomic load and two indexings; every optimization job goes through here
func (m *Memo) Group(id GroupID) *Group {
	return (*m.chunkDir.Load())[id>>groupChunkBits][id&groupChunkMask]
}

// NumGroups returns the current number of groups, lock-free.
//
//orcavet:hotpath scheduler drain polls this count
func (m *Memo) NumGroups() int {
	return int(m.groupN.Load())
}

// NumExprs returns the total number of group expressions.
func (m *Memo) NumExprs() int {
	idx := m.groupSnapshot()
	n := 0
	for i := 0; i < idx.n; i++ {
		n += idx.group(GroupID(i)).NumExprs()
	}
	return n
}

// publishGroup creates a new group seeded with the given expression and
// publishes it through the lock-free index. The seed is wired in (back
// pointer and expression list) before the count store that reveals the group,
// so no reader ever observes an empty group and the fresh-insert path takes
// no group lock. Callers must hold the stripe lock that owns the seed's
// fingerprint (or otherwise guarantee no duplicate creation race);
// publishGroup itself takes only the writer-side publication lock.
//
//orcavet:hotpath:alloc group and chunk allocation is the point; it happens before the publication lock
func (m *Memo) publishGroup(seed *GroupExpr) *Group {
	// Allocate before taking the publication lock: an allocation can stall on
	// GC assist, and a stall inside the only writer-global lock would
	// serialize every concurrent group creation behind the collector.
	g := &Group{memo: m, exprs: []*GroupExpr{seed}}
	seed.group = g
	m.groupPubMu.Lock()
	defer m.groupPubMu.Unlock()
	n := int(m.groupN.Load())
	g.ID = GroupID(n)
	chunks := *m.chunkDir.Load()
	if n&groupChunkMask == 0 {
		// Last chunk full (or index empty): add a fresh chunk. When the
		// directory has spare capacity the new chunk pointer goes into the
		// shared backing array in place — prior views hold shorter slices of
		// it and never index past their own n, so the slot is invisible to
		// them until the count store below publishes it. Only when capacity
		// runs out is the directory reallocated (geometric doubling), keeping
		// publication O(1) amortized rather than O(n) per chunk fill.
		if len(chunks) == cap(chunks) {
			grown := make([]*groupChunk, len(chunks), 2*len(chunks)+1)
			copy(grown, chunks)
			chunks = grown
		}
		chunks = append(chunks, new(groupChunk))
		m.chunkDir.Store(&chunks)
	}
	// Fill the slot before the count that reveals it is published; the atomic
	// stores order the writes for readers, and readers of older counts never
	// index past their own n.
	chunks[n>>groupChunkBits][n&groupChunkMask] = g
	m.groupN.Store(int64(n + 1))
	m.mem.Charge(groupSizeBytes())
	return g
}

// Insert copies a logical expression tree into the Memo (paper Figure 4),
// creating groups bottom-up, and returns the root group id. The walk is
// iterative — an explicit frame stack instead of recursion — so deep
// left-linear join chains pay neither a Go call frame nor repeated child
// slice growth per node: each frame's child-group slice is allocated exactly
// once, when the frame is pushed.
//
//orcavet:hotpath:alloc frame stack and per-frame child slices are allocated once per node by design
func (m *Memo) Insert(e *ops.Expr) (GroupID, error) {
	type frame struct {
		e        *ops.Expr
		children []GroupID // one slot per child, filled as frames complete
		next     int       // next child to descend into
	}
	newFrame := func(e *ops.Expr) frame {
		f := frame{e: e}
		if n := len(e.Children); n > 0 {
			f.children = make([]GroupID, n)
		}
		return f
	}
	stack := make([]frame, 1, 32)
	stack[0] = newFrame(e)
	var result GroupID
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.e.Children) {
			f.next++
			stack = append(stack, newFrame(f.e.Children[f.next-1]))
			continue
		}
		ge, err := m.InsertExpr(f.e.Op, f.children, -1)
		if err != nil {
			return 0, err
		}
		stack = stack[:len(stack)-1]
		if len(stack) == 0 {
			result = ge.group.ID
		} else {
			parent := &stack[len(stack)-1]
			parent.children[parent.next-1] = ge.group.ID
		}
	}
	return result, nil
}

// InsertExpr adds one group expression with the given children. If target is
// a valid group id, the expression is added to that group (a transformation
// result), deduplicated against the group's existing expressions — the
// Memo's topology-based duplicate detection (§4.1 step 1). Otherwise the
// expression denotes a fresh sub-goal: the content-addressed subtree
// registry either returns the existing group holding that expression or
// creates a new one.
//
// Keeping the two namespaces separate makes the explored plan space a pure
// function of the rule set (independent of job scheduling order): rule
// results always land in their target group, and subtree groups are keyed by
// content alone. Full cross-group merging is out of scope (DESIGN.md §5).
//
// Neither namespace touches a Memo-global lock: target-group inserts hold
// only the group's lock for the probe-and-append, and registry inserts hold
// only the fingerprint's stripe lock (plus, on group creation, the
// publication lock).
//
//orcavet:hotpath:alloc the GroupExpr node itself is the one intentional allocation per insert
func (m *Memo) InsertExpr(op ops.Operator, children []GroupID, target GroupID) (*GroupExpr, error) {
	if err := fault.Inject(fault.PointMemoInsert); err != nil {
		return nil, err
	}
	fp := fingerprint(op, children)

	if a, ok := op.(*ops.CTEAnchor); ok && len(children) > 0 {
		m.cteMu.Lock()
		if _, seen := m.cteProducers[a.ID]; !seen {
			m.cteProducers[a.ID] = children[0]
		}
		m.cteMu.Unlock()
	}

	if target >= 0 {
		grp := m.Group(target)
		grp.mu.Lock()
		for _, ge := range grp.exprs {
			if ge.fp == fp && ge.matches(op, children) {
				grp.mu.Unlock()
				return ge, nil
			}
		}
		ge := &GroupExpr{Op: op, Children: children, group: grp, fp: fp}
		grp.exprs = append(grp.exprs, ge)
		grp.mu.Unlock()
		m.mem.Charge(exprSizeBytes(len(children)))
		return ge, nil
	}

	s := &m.stripes[fp&(numFpStripes-1)]
	s.mu.Lock()
	for _, ge := range s.table[fp] {
		if ge.matches(op, children) {
			s.mu.Unlock()
			return ge, nil
		}
	}
	// Holding the stripe lock across group creation keeps probe+create
	// atomic per fingerprint: a concurrent insert of the same subtree blocks
	// on this stripe and then finds the registered expression. publishGroup
	// wires the seed expression in before revealing the group, so no group
	// lock is taken and no reader sees an empty group.
	ge := &GroupExpr{Op: op, Children: children, fp: fp}
	m.publishGroup(ge)
	s.table[fp] = append(s.table[fp], ge)
	s.mu.Unlock()
	m.mem.Charge(exprSizeBytes(len(children)))
	return ge, nil
}

// CTEProducer returns the group holding the producer side of the CTE with
// the given id, recorded when its anchor was inserted.
func (m *Memo) CTEProducer(id int) (GroupID, bool) {
	m.cteMu.Lock()
	defer m.cteMu.Unlock()
	g, ok := m.cteProducers[id]
	return g, ok
}

// InternReq returns the session-dense id of an optimization request,
// interning it on first use. Interned handles make every later probe of the
// Figure-6 hash tables a direct int-keyed map access.
//
//orcavet:hotpath request-stripe probe on every candidate record
func (m *Memo) InternReq(req props.Required) ReqID {
	h := req.Hash()
	s := &m.reqStripes[h&(numReqStripes-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.table[h] {
		if e.req.Equal(req) {
			return e.id
		}
	}
	id := ReqID(m.nextReq.Add(1) - 1)
	s.table[h] = append(s.table[h], reqEntry{req: req, id: id})
	return id
}

// LookupReq returns the interned id of a request without interning it;
// ok is false when the request was never seen by this session (and therefore
// cannot appear in any table).
//
//orcavet:hotpath request-stripe probe on every property-table access
func (m *Memo) LookupReq(req props.Required) (ReqID, bool) {
	h := req.Hash()
	s := &m.reqStripes[h&(numReqStripes-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.table[h] {
		if e.req.Equal(req) {
			return e.id, true
		}
	}
	return 0, false
}

func fingerprint(op ops.Operator, children []GroupID) uint64 {
	const prime = 1099511628211
	h := op.ParamHash()
	for _, c := range children {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// String renders the Memo's groups and expressions for debugging and for
// the optimizer's trace facility.
func (m *Memo) String() string {
	idx := m.groupSnapshot()
	var b strings.Builder
	for i := 0; i < idx.n; i++ {
		g := idx.group(GroupID(i))
		g.mu.Lock()
		fmt.Fprintf(&b, "GROUP %d", g.ID)
		if g.stats != nil {
			fmt.Fprintf(&b, " (rows=%.0f)", g.stats.Rows)
		}
		b.WriteString(":\n")
		for i, ge := range g.exprs {
			fmt.Fprintf(&b, "  %d: %s %v\n", i, ops.Describe(ge.Op), ge.Children)
		}
		g.mu.Unlock()
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Group

// Group is a container of logically equivalent expressions capturing one
// sub-goal of the query (paper §3).
//
// Exploration and implementation completion are tracked per rule-set epoch
// rather than as one-shot booleans: each optimization stage activates a rule
// set (xform.Context.SetRuleSet) and stages with identical rule sets share
// an epoch. A later stage with a different rule set therefore resumes search
// over the same Memo — groups re-enter exploration/implementation under the
// new epoch, and the per-expression applied-rule ledger confines the work to
// rules that have not fired yet.
type Group struct {
	ID   GroupID
	memo *Memo

	mu    sync.Mutex
	exprs []*GroupExpr

	logical  *props.Logical
	stats    *stats.Stats
	explored map[int]bool // rule-set epochs whose exploration completed
	impl     map[int]bool // rule-set epochs whose implementation completed
	enforced map[ReqID]bool
	ctxs     map[ReqID]*OptContext
}

// Exprs returns a snapshot of the group's expressions.
func (g *Group) Exprs() []*GroupExpr {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*GroupExpr(nil), g.exprs...)
}

// NumExprs returns the current expression count.
func (g *Group) NumExprs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.exprs)
}

// Expr returns the i-th expression.
func (g *Group) Expr(i int) *GroupExpr {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.exprs[i]
}

// Explored reports whether exploration finished for this group under the
// given rule-set epoch.
func (g *Group) Explored(epoch int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.explored[epoch]
}

// SetExplored marks exploration complete for the given rule-set epoch.
func (g *Group) SetExplored(epoch int) {
	g.mu.Lock()
	if g.explored == nil {
		g.explored = make(map[int]bool)
	}
	g.explored[epoch] = true
	g.mu.Unlock()
}

// Implemented reports whether implementation finished for this group under
// the given rule-set epoch.
func (g *Group) Implemented(epoch int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.impl[epoch]
}

// SetImplemented marks implementation complete for the given rule-set epoch.
func (g *Group) SetImplemented(epoch int) {
	g.mu.Lock()
	if g.impl == nil {
		g.impl = make(map[int]bool)
	}
	g.impl[epoch] = true
	g.mu.Unlock()
}

// Logical returns the group's logical properties, deriving them on first use
// from the first logical expression.
func (g *Group) Logical() *props.Logical {
	g.mu.Lock()
	if g.logical != nil {
		defer g.mu.Unlock()
		return g.logical
	}
	var first *GroupExpr
	for _, ge := range g.exprs {
		if _, ok := ge.Op.(ops.Logical); ok {
			first = ge
			break
		}
	}
	if first == nil && len(g.exprs) > 0 {
		first = g.exprs[0]
	}
	g.mu.Unlock()

	lp := props.NewLogical()
	if first != nil {
		childOuts := make([]base.ColSet, len(first.Children))
		for i, cid := range first.Children {
			childOuts[i] = g.memo.Group(cid).Logical().OutputCols
		}
		lp.OutputCols = ops.OutputColsOp(first.Op, childOuts)
	}
	g.mu.Lock()
	if g.logical == nil {
		g.logical = lp
	}
	out := g.logical
	g.mu.Unlock()
	return out
}

// Stats returns the group's statistics object (nil before derivation).
func (g *Group) Stats() *stats.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// SetStats attaches a statistics object to the group (paper Figure 5d).
func (g *Group) SetStats(s *stats.Stats) {
	g.mu.Lock()
	if g.stats == nil {
		g.stats = s
		g.memo.mem.Charge(s.SizeBytes())
	}
	g.mu.Unlock()
}

// Rows returns the group's estimated cardinality (0 before derivation).
func (g *Group) Rows() float64 {
	if s := g.Stats(); s != nil {
		return s.Rows
	}
	return 0
}

// ---------------------------------------------------------------------------
// GroupExpr

// GroupExpr is an operator whose children are groups (paper §3). Its local
// hash table maps incoming optimization requests to the child requests of
// the best plan alternative — the linkage structure used for plan extraction
// (paper Figure 6) and for TAQO's uniform plan sampling.
type GroupExpr struct {
	Op       ops.Operator
	Children []GroupID

	group *Group
	fp    uint64

	mu sync.Mutex
	// local is the Figure-6 local hash table, keyed by interned request id;
	// allocated on first candidate (most expressions are never costed).
	local map[ReqID]*localLink
	// applied is the rule ledger: a bitset indexed by dense rule ID
	// (xform.RuleIDFor), grown on demand. No strings are hashed on the
	// rule-firing check path.
	applied []uint64
}

type localLink struct {
	// alternatives costed for this request (used by TAQO sampling).
	candidates []Candidate
}

// Candidate is one costed way of satisfying a request with this expression.
type Candidate struct {
	ChildReqs []props.Required
	LocalCost float64
	Cost      float64 // subtree total
	Delivered props.Derived
}

// Group returns the owning group.
func (ge *GroupExpr) Group() *Group { return ge.group }

func (ge *GroupExpr) matches(op ops.Operator, children []GroupID) bool {
	if len(ge.Children) != len(children) || !ge.Op.ParamEqual(op) {
		return false
	}
	for i := range children {
		if ge.Children[i] != children[i] {
			return false
		}
	}
	return true
}

// MarkApplied records that the rule with the given dense id (assigned by
// xform's registry) ran on this expression; it returns false if the rule had
// already been applied (rules fire once per expression).
//
//orcavet:hotpath:lock ledger check on every rule application; the per-expression mutex is the design
func (ge *GroupExpr) MarkApplied(rule int) bool {
	w, bit := rule>>6, uint64(1)<<(rule&63)
	ge.mu.Lock()
	defer ge.mu.Unlock()
	for len(ge.applied) <= w {
		ge.applied = append(ge.applied, 0)
	}
	if ge.applied[w]&bit != 0 {
		return false
	}
	ge.applied[w] |= bit
	return true
}

// Applied reports whether the rule with the given dense id already ran on
// this expression. The ledger spans rule-set epochs, so a stage resuming
// search over a shared Memo skips transformations an earlier stage
// performed.
//
//orcavet:hotpath:lock ledger probe on every rule-scheduling decision
func (ge *GroupExpr) Applied(rule int) bool {
	w, bit := rule>>6, uint64(1)<<(rule&63)
	ge.mu.Lock()
	defer ge.mu.Unlock()
	return w < len(ge.applied) && ge.applied[w]&bit != 0
}

// AddCandidate records a costed alternative for the request in the local
// hash table. Re-costing the same alternative (same child requests) in a
// later optimization pass replaces the earlier entry rather than appending a
// duplicate, so the candidate list stays one entry per distinct alternative.
func (ge *GroupExpr) AddCandidate(req props.Required, c Candidate) {
	id := ge.group.memo.InternReq(req)
	ge.mu.Lock()
	defer ge.mu.Unlock()
	if ge.local == nil {
		ge.local = make(map[ReqID]*localLink)
	}
	l := ge.local[id]
	if l == nil {
		ge.local[id] = &localLink{candidates: []Candidate{c}}
		ge.group.memo.mem.Charge(candidateSizeBytes(len(c.ChildReqs)))
		return
	}
	for i := range l.candidates {
		if sameChildReqs(l.candidates[i].ChildReqs, c.ChildReqs) {
			l.candidates[i] = c
			return
		}
	}
	l.candidates = append(l.candidates, c)
	ge.group.memo.mem.Charge(candidateSizeBytes(len(c.ChildReqs)))
}

func sameChildReqs(a, b []props.Required) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Candidates returns the costed alternatives recorded for a request.
func (ge *GroupExpr) Candidates(req props.Required) []Candidate {
	id, ok := ge.group.memo.LookupReq(req)
	if !ok {
		return nil
	}
	ge.mu.Lock()
	defer ge.mu.Unlock()
	if l := ge.local[id]; l != nil {
		return append([]Candidate(nil), l.candidates...)
	}
	return nil
}

// IsEnforcer reports whether the expression is an enforcer operator.
func (ge *GroupExpr) IsEnforcer() bool {
	_, ok := ge.Op.(ops.Enforcer)
	return ok
}

// String renders "Op [c1 c2]".
func (ge *GroupExpr) String() string {
	return fmt.Sprintf("%s %v", ops.Describe(ge.Op), ge.Children)
}
