package memo

import (
	"orca/internal/gpos"
)

// Validate checks the Memo's structural invariants and returns the first
// violation found, or nil. It is the runtime counterpart of the memoimmut
// static analyzer (internal/analysis): the analyzer forbids out-of-package
// mutation at compile time, Validate catches corruption that slips past it
// (e.g. through retained slices or unsafe code). Tests call it after
// exercising the Memo; it is cheap enough for debug builds but quadratic in
// group size, so it is not run on production paths.
//
// Invariants checked:
//   - group IDs are dense and match their index positions (over the current
//     lock-free index snapshot);
//   - every group belongs to this Memo and holds at least one expression;
//   - every expression's back-pointer names its owning group;
//   - child group IDs are in range and never self-referential — except for
//     enforcers, which by construction wrap their own group (paper Figure 6:
//     "6: Sort(T1.a) [0]");
//   - stored fingerprints match a fresh recomputation (detects post-insert
//     mutation of operators or child slices);
//   - duplicate detection holds: no two expressions of a group match, and
//     the sharded content-addressed registry is consistent — every entry
//     sits on the stripe its fingerprint selects and is reachable from its
//     group.
func (m *Memo) Validate() error {
	fail := func(format string, args ...any) error {
		return gpos.Raise(gpos.CompMemo, "InvalidMemo", format, args...)
	}

	idx := m.groupSnapshot()
	for i := 0; i < idx.n; i++ {
		g := idx.group(GroupID(i))
		if g == nil {
			return fail("group slot %d is nil", i)
		}
		if g.ID != GroupID(i) {
			return fail("group at slot %d has ID %d", i, g.ID)
		}
		if g.memo != m {
			return fail("group %d belongs to a different Memo", g.ID)
		}
		exprs := g.Exprs()
		if len(exprs) == 0 {
			return fail("group %d has no expressions", g.ID)
		}
		for j, ge := range exprs {
			if ge.group != g {
				return fail("group %d expr %d back-pointer names group %v", g.ID, j, ge.group.ID)
			}
			if ge.Op == nil {
				return fail("group %d expr %d has nil operator", g.ID, j)
			}
			for _, c := range ge.Children {
				if c < 0 || int(c) >= idx.n {
					return fail("group %d expr %d references out-of-range child group %d", g.ID, j, c)
				}
				if c == g.ID && !ge.IsEnforcer() {
					return fail("group %d expr %d references its own group as a child", g.ID, j)
				}
			}
			if fp := fingerprint(ge.Op, ge.Children); fp != ge.fp {
				return fail("group %d expr %d fingerprint mismatch: stored %#x, recomputed %#x (operator or child slice mutated after insert)", g.ID, j, ge.fp, fp)
			}
			for k := j + 1; k < len(exprs); k++ {
				if other := exprs[k]; other.fp == ge.fp && other.matches(ge.Op, ge.Children) {
					return fail("group %d exprs %d and %d are duplicates: duplicate detection failed", g.ID, j, k)
				}
			}
		}
	}

	for si := range m.stripes {
		s := &m.stripes[si]
		s.mu.Lock()
		for fp, bucket := range s.table {
			for i, ge := range bucket {
				if ge.fp != fp {
					s.mu.Unlock()
					return fail("registry bucket %#x entry %d carries fingerprint %#x", fp, i, ge.fp)
				}
				if fp&(numFpStripes-1) != uint64(si) {
					s.mu.Unlock()
					return fail("registry bucket %#x landed on stripe %d, want %d", fp, si, fp&(numFpStripes-1))
				}
				if ge.group == nil || ge.group.memo != m {
					s.mu.Unlock()
					return fail("registry bucket %#x entry %d is detached from this Memo", fp, i)
				}
				present := false
				for _, e := range ge.group.Exprs() {
					if e == ge {
						present = true
						break
					}
				}
				if !present {
					s.mu.Unlock()
					return fail("registry bucket %#x entry %d is missing from group %d", fp, i, ge.group.ID)
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}
