package memo

import (
	"unsafe"

	"orca/internal/props"
)

// Real size accounting for the Memo's building blocks, replacing the old
// flat per-insert constants so Config.MemoryBudget tracks actual Memo
// growth. The numbers are the in-memory struct sizes plus the per-entry
// overhead of the containers that hold them; Go's maps and slices have
// unexported internals, so container overhead is approximated with the
// documented bucket/header costs rather than guessed magic numbers.
const (
	// mapEntryOverheadBytes approximates one map entry's share of bucket
	// memory beyond key+value (tophash, overflow pointers, load factor
	// headroom).
	mapEntryOverheadBytes = 16
	// sliceSlotBytes is one pointer-sized slot in a container slice.
	sliceSlotBytes = int64(unsafe.Sizeof(uintptr(0)))
)

// exprSizeBytes is the accounted size of one group expression: the struct,
// its retained child-group slice, its slot in the owning group's expression
// slice, and its registry bucket slot (fresh-group namespace) or dedup probe
// residue (target namespace) — one pointer either way.
func exprSizeBytes(children int) int64 {
	return int64(unsafe.Sizeof(GroupExpr{})) +
		int64(children)*int64(unsafe.Sizeof(GroupID(0))) +
		2*sliceSlotBytes
}

// groupSizeBytes is the accounted size of one group: the struct plus its
// slot in the group index.
func groupSizeBytes() int64 {
	return int64(unsafe.Sizeof(Group{})) + sliceSlotBytes
}

// optCtxSizeBytes is the accounted size of one optimization context: the
// struct plus its entry in the group's request table.
func optCtxSizeBytes() int64 {
	return int64(unsafe.Sizeof(OptContext{})) +
		int64(unsafe.Sizeof(ReqID(0))) + sliceSlotBytes + mapEntryOverheadBytes
}

// candidateSizeBytes is the accounted size of one costed candidate appended
// to an expression's local table: the Candidate value, its child-request
// slice, and its share of the localLink map entry.
func candidateSizeBytes(childReqs int) int64 {
	return int64(unsafe.Sizeof(Candidate{})) +
		int64(childReqs)*int64(unsafe.Sizeof(props.Required{})) +
		mapEntryOverheadBytes
}
