package memo

import (
	"math"
	"sync"

	"orca/internal/base"
	"orca/internal/ops"
	"orca/internal/props"
)

// InfCost marks an unsatisfiable optimization request.
var InfCost = math.Inf(1)

// OptContext is one entry of a group's hash table (paper Figure 6): an
// optimization request together with the best group expression found for it
// and the linkage needed to extract the plan.
//
// The best candidate is updated as alternatives are costed, so at any point
// during search it holds the best plan found so far — a stage cut off by its
// deadline extracts this best-so-far plan instead of discarding its work.
// Completion is tracked per rule-set epoch: a later stage with new rules
// re-optimizes the context against the same Memo and can only improve it.
type OptContext struct {
	Group *Group
	Req   props.Required

	mu       sync.Mutex
	done     map[int]bool // rule-set epochs whose optimization completed
	best     *GroupExpr
	bestCand Candidate
	haveBest bool
}

// Context returns the group's context for a request, creating it if needed;
// created reports whether this call created it (the caller then owns driving
// its optimization — this is the job-queue dedup of paper §4.2). The request
// is interned once; the group table itself is keyed by the interned id, so
// the probe is a single int-keyed map access with no Equal() scan.
func (g *Group) Context(req props.Required) (ctx *OptContext, created bool) {
	id := g.memo.InternReq(req)
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.ctxs[id]; ok {
		return c, false
	}
	c := &OptContext{Group: g, Req: req}
	if g.ctxs == nil {
		g.ctxs = make(map[ReqID]*OptContext)
	}
	g.ctxs[id] = c
	g.memo.mem.Charge(optCtxSizeBytes())
	return c, true
}

// LookupContext returns the existing context for a request, or nil. A
// request that was never interned by this session cannot have a context, so
// the miss path takes no group lock at all.
func (g *Group) LookupContext(req props.Required) *OptContext {
	id, ok := g.memo.LookupReq(req)
	if !ok {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ctxs[id]
}

// Contexts returns a snapshot of all contexts of the group.
func (g *Group) Contexts() []*OptContext {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*OptContext
	for _, c := range g.ctxs {
		out = append(out, c)
	}
	return out
}

// Offer proposes a costed candidate plan rooted at ge for this request,
// keeping it if it beats the current best.
func (c *OptContext) Offer(ge *GroupExpr, cand Candidate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveBest || cand.Cost < c.bestCand.Cost {
		c.best = ge
		c.bestCand = cand
		c.haveBest = true
	}
}

// Best returns the best expression, its winning candidate, and whether any
// plan satisfies the request.
func (c *OptContext) Best() (*GroupExpr, Candidate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.best, c.bestCand, c.haveBest
}

// BestCost returns the best plan cost, or InfCost.
func (c *OptContext) BestCost() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveBest {
		return InfCost
	}
	return c.bestCand.Cost
}

// MarkDone marks the context fully optimized under the given rule-set epoch.
func (c *OptContext) MarkDone(epoch int) {
	c.mu.Lock()
	if c.done == nil {
		c.done = make(map[int]bool)
	}
	c.done[epoch] = true
	c.mu.Unlock()
}

// Done reports whether optimization of this context completed under the
// given rule-set epoch.
func (c *OptContext) Done(epoch int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done[epoch]
}

// ---------------------------------------------------------------------------
// Enforcer insertion (paper §4.1: "Enforcers are added to the group
// containing the group expression being optimized.")

// AddEnforcers inserts the enforcer expressions that could satisfy req into
// the group, once per distinct request. Each enforcer is a group expression
// whose single child is the group itself (cf. "6: Sort(T1.a) [0]" in
// Figure 6).
func (g *Group) AddEnforcers(req props.Required) error {
	id := g.memo.InternReq(req)
	g.mu.Lock()
	if g.enforced == nil {
		g.enforced = make(map[ReqID]bool)
	}
	if g.enforced[id] {
		g.mu.Unlock()
		return nil
	}
	g.enforced[id] = true
	g.mu.Unlock()

	self := []GroupID{g.ID}
	var enforcers []ops.Operator
	if !req.Order.IsAny() {
		enforcers = append(enforcers, &ops.Sort{Order: req.Order})
	}
	switch req.Dist.Kind {
	case props.DistSingleton:
		enforcers = append(enforcers, &ops.Gather{})
		if !req.Order.IsAny() {
			enforcers = append(enforcers, &ops.GatherMerge{Order: req.Order})
		}
	case props.DistHashed:
		enforcers = append(enforcers, &ops.Redistribute{Cols: req.Dist.Cols})
	case props.DistReplicated:
		enforcers = append(enforcers, &ops.Broadcast{})
	case props.DistRandom:
		// Only needed when children deliver Replicated: spread one copy.
		if cols := g.Logical().OutputCols.Ordered(); len(cols) > 0 {
			enforcers = append(enforcers, &ops.Redistribute{Cols: []base.ColID{cols[0]}})
		}
	}
	if req.Rewindable {
		enforcers = append(enforcers, &ops.Spool{})
	}
	for _, e := range enforcers {
		if _, err := g.memo.InsertExpr(e, self, g.ID); err != nil {
			return err
		}
	}
	return nil
}

// EnforcerUseful reports whether optimizing the enforcer expression under
// req can contribute a satisfying plan: the enforcer must deliver a property
// the request actually demands. This is also the cycle guard — an enforcer
// whose child request would equal the incoming request is never useful.
func EnforcerUseful(op ops.Operator, req props.Required) bool {
	switch o := op.(type) {
	case *ops.Sort:
		return !req.Order.IsAny() && o.Order.Satisfies(req.Order)
	case *ops.Gather:
		return req.Dist.Kind == props.DistSingleton && req.Order.IsAny()
	case *ops.GatherMerge:
		return req.Dist.Kind == props.DistSingleton && o.Order.Satisfies(req.Order)
	case *ops.Redistribute:
		if req.Dist.Kind == props.DistRandom {
			return true
		}
		if req.Dist.Kind != props.DistHashed || !req.Order.IsAny() {
			return false
		}
		d := props.Distribution{Kind: props.DistHashed, Cols: o.Cols}
		return d.Satisfies(props.Distribution{Kind: props.DistHashed, Cols: req.Dist.Cols, AllowReplicated: req.Dist.AllowReplicated})
	case *ops.Broadcast:
		return req.Dist.Kind == props.DistReplicated && req.Order.IsAny() ||
			req.Dist.Kind == props.DistHashed && req.Dist.AllowReplicated && req.Order.IsAny()
	case *ops.Spool:
		return req.Rewindable
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Plan extraction (paper §4.1, Figure 6)

// ExtractPlan walks the linkage structure from the root group's best
// expression for the initial request down through the recorded child
// requests, building the final physical plan.
func (m *Memo) ExtractPlan(g GroupID, req props.Required) (*ops.Expr, error) {
	grp := m.Group(g)
	ctx := grp.LookupContext(req)
	if ctx == nil {
		return nil, errNoPlan(grp, req)
	}
	best, cand, ok := ctx.Best()
	if !ok {
		return nil, errNoPlan(grp, req)
	}
	children := make([]*ops.Expr, len(best.Children))
	childDerived := make([]props.Derived, len(best.Children))
	for i, cid := range best.Children {
		c, err := m.ExtractPlan(cid, cand.ChildReqs[i])
		if err != nil {
			return nil, err
		}
		children[i] = c
		childDerived[i] = *c.Phys
	}
	phys := best.Op.(ops.Physical).Derive(childDerived)
	rows := grp.Rows()
	return &ops.Expr{
		Op:       best.Op,
		Children: children,
		Phys:     &phys,
		Cost:     cand.Cost,
		Rows:     rows,
	}, nil
}

type noPlanError struct {
	group GroupID
	req   props.Required
}

func (e *noPlanError) Error() string {
	return "memo: no plan for group " + itoa(int(e.group)) + " under " + e.req.String()
}

func errNoPlan(g *Group, req props.Required) error {
	return &noPlanError{group: g.ID, req: req}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
