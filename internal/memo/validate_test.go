package memo

import (
	"strings"
	"testing"

	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
)

// The corruption tests below reach into unexported state on purpose: they
// simulate exactly the out-of-package mutations the memoimmut analyzer
// forbids, proving the static and runtime checks cross-cover each other.

func validatedMemo(t *testing.T) *Memo {
	t.Helper()
	m := New(&gpos.MemoryAccountant{})
	root, err := m.Insert(paperTree(md.NewColumnFactory()))
	if err != nil {
		t.Fatal(err)
	}
	m.SetRoot(root)
	mustValidate(t, m)
	return m
}

func wantViolation(t *testing.T, m *Memo, fragment string) {
	t.Helper()
	err := m.Validate()
	if err == nil {
		t.Fatalf("Validate accepted a corrupted Memo (wanted %q)", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("Validate error = %q, want it to mention %q", err, fragment)
	}
}

func TestValidateDetectsChildMutation(t *testing.T) {
	m := validatedMemo(t)
	ge := m.Group(m.Root()).Exprs()[0]
	ge.Children[0], ge.Children[1] = ge.Children[1], ge.Children[0]
	wantViolation(t, m, "fingerprint mismatch")
}

func TestValidateDetectsOperatorMutation(t *testing.T) {
	m := validatedMemo(t)
	ge := m.Group(m.Root()).Exprs()[0]
	ge.Op = &ops.Join{Type: ops.LeftJoin, Pred: ge.Op.(*ops.Join).Pred}
	wantViolation(t, m, "fingerprint mismatch")
}

func TestValidateDetectsSelfCycle(t *testing.T) {
	m := validatedMemo(t)
	root := m.Group(m.Root())
	ge := root.Exprs()[0]
	ge.Children[0] = root.ID
	wantViolation(t, m, "its own group")
}

func TestValidateDetectsDuplicateExprs(t *testing.T) {
	m := validatedMemo(t)
	g := m.Group(m.Root())
	ge := g.Exprs()[0]
	dup := &GroupExpr{Op: ge.Op, Children: ge.Children, group: g, fp: ge.fp}
	g.mu.Lock()
	g.exprs = append(g.exprs, dup)
	g.mu.Unlock()
	wantViolation(t, m, "duplicate")
}

func TestValidateDetectsBrokenBackPointer(t *testing.T) {
	m := validatedMemo(t)
	g := m.Group(m.Root())
	other := m.Group(g.Exprs()[0].Children[0])
	g.Exprs()[0].group = other
	wantViolation(t, m, "back-pointer")
}

func TestValidateDetectsRegistryDrift(t *testing.T) {
	m := validatedMemo(t)
	// Swap a group's expression for a content-identical clone: the group
	// stays structurally sound, but the content-addressed registry now
	// points at an expression no group holds.
	var ge *GroupExpr
	for si := range m.stripes {
		s := &m.stripes[si]
		s.mu.Lock()
		for _, bucket := range s.table {
			ge = bucket[0]
			break
		}
		s.mu.Unlock()
		if ge != nil {
			break
		}
	}
	g := ge.group
	clone := &GroupExpr{Op: ge.Op, Children: ge.Children, group: g, fp: ge.fp}
	g.mu.Lock()
	for i, e := range g.exprs {
		if e == ge {
			g.exprs[i] = clone
		}
	}
	g.mu.Unlock()
	wantViolation(t, m, "missing from group")
}
