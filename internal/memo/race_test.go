package memo

// Race-stress coverage for the contention-free Memo hot paths: concurrent
// InsertExpr storms over the same and distinct fingerprints, into both the
// fresh-group and target-group namespaces, interleaved with lock-free readers
// (Group, NumGroups, Exprs, Logical). Run under -race these tests check the
// publication safety of the atomic group-index snapshots and the sharded
// fingerprint registry; after the storm they assert the dedup invariant
// directly: no group holds two content-identical expressions.

import (
	"sync"
	"testing"

	"orca/internal/gpos"
	"orca/internal/ops"
	"orca/internal/props"
)

// assertNoDuplicates validates the Memo and re-checks dedup across every
// group pairwise (Validate already does; the explicit loop keeps the test
// meaningful if Validate's checks ever change).
func assertNoDuplicates(t *testing.T, m *Memo) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate after concurrent storm: %v", err)
	}
	n := m.NumGroups()
	for i := 0; i < n; i++ {
		exprs := m.Group(GroupID(i)).Exprs()
		for j, ge := range exprs {
			for k := j + 1; k < len(exprs); k++ {
				if exprs[k].matches(ge.Op, ge.Children) {
					t.Fatalf("group %d holds duplicate expressions %d and %d", i, j, k)
				}
			}
		}
	}
}

// TestConcurrentInsertSameFingerprint has every worker insert the same small
// set of expressions: all but the first insert of each fingerprint must dedup
// to the same group expression.
func TestConcurrentInsertSameFingerprint(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	leafGE, err := m.InsertExpr(&ops.CTEConsumer{ID: 0}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	leaf := leafGE.Group().ID

	const workers = 8
	const distinct = 16
	const rounds = 200
	var wg sync.WaitGroup
	results := make([][distinct]*GroupExpr, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := int64(r % distinct)
				ge, err := m.InsertExpr(&ops.Limit{Count: k}, []GroupID{leaf}, -1)
				if err != nil {
					t.Error(err)
					return
				}
				if prev := results[w][k]; prev != nil && prev != ge {
					t.Errorf("worker %d: fingerprint %d deduped to two expressions", w, k)
					return
				}
				results[w][k] = ge
			}
		}(w)
	}
	wg.Wait()
	// All workers must agree on the canonical expression per fingerprint.
	for k := 0; k < distinct; k++ {
		for w := 1; w < workers; w++ {
			if results[w][k] != results[0][k] {
				t.Fatalf("fingerprint %d resolved to different expressions across workers", k)
			}
		}
	}
	if got := m.NumGroups(); got != 1+distinct {
		t.Fatalf("NumGroups = %d, want %d", got, 1+distinct)
	}
	assertNoDuplicates(t, m)
}

// TestConcurrentInsertDistinctFingerprints has every worker insert its own
// disjoint set of fingerprints while readers hammer the group index.
func TestConcurrentInsertDistinctFingerprints(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	leafGE, err := m.InsertExpr(&ops.CTEConsumer{ID: 0}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	leaf := leafGE.Group().ID

	const workers = 8
	const perWorker = 200
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: walk whatever prefix of the index is published.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := m.NumGroups()
				for i := 0; i < n; i++ {
					g := m.Group(GroupID(i))
					if g == nil {
						t.Errorf("published group %d of %d is nil", i, n)
						return
					}
					for _, ge := range g.Exprs() {
						_ = ge.Op
					}
					_ = g.Logical()
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				k := int64(w*perWorker + i)
				if _, err := m.InsertExpr(&ops.Limit{Count: k}, []GroupID{leaf}, -1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	target := 1 + workers*perWorker
	if got := m.NumGroups(); got != target {
		t.Fatalf("NumGroups = %d, want %d", got, target)
	}
	assertNoDuplicates(t, m)
}

// TestConcurrentInsertTargetGroup aims the storm at a single target group —
// the rule-output path, whose dedup scans the group's own expression list —
// while other workers populate the fresh-group namespace and readers probe
// the Figure-6 request tables.
func TestConcurrentInsertTargetGroup(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	leafGE, err := m.InsertExpr(&ops.CTEConsumer{ID: 0}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	leaf := leafGE.Group().ID
	rootGE, err := m.InsertExpr(&ops.Limit{Count: -1}, []GroupID{leaf}, -1)
	if err != nil {
		t.Fatal(err)
	}
	target := rootGE.Group().ID
	req := props.Required{Dist: props.SingletonDist}

	const workers = 4
	const distinct = 32
	const rounds = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Interleave target-namespace inserts, fresh-namespace
				// inserts, and request-table traffic.
				switch r % 3 {
				case 0:
					k := int64(r % distinct)
					if _, err := m.InsertExpr(&ops.Limit{Count: k}, []GroupID{leaf}, target); err != nil {
						t.Error(err)
						return
					}
				case 1:
					k := int64(1000 + w*rounds + r)
					if _, err := m.InsertExpr(&ops.Limit{Count: k}, []GroupID{leaf}, -1); err != nil {
						t.Error(err)
						return
					}
				default:
					g := m.Group(target)
					if ctx, created := g.Context(req); created {
						ctx.MarkDone(1)
					} else if g.LookupContext(req) == nil {
						t.Error("existing context not found")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// The target group holds the seed expression plus one per distinct
	// fingerprint, regardless of how many workers raced to insert them.
	if got := m.Group(target).NumExprs(); got != 1+distinct {
		t.Fatalf("target group has %d expressions, want %d", got, 1+distinct)
	}
	assertNoDuplicates(t, m)
}

// TestConcurrentRuleLedgerAndIntern exercises the per-expression applied
// bitset and the request-interning table from many goroutines: exactly one
// MarkApplied per rule id wins, and interning the same request from every
// worker yields one id.
func TestConcurrentRuleLedgerAndIntern(t *testing.T) {
	m := New(&gpos.MemoryAccountant{})
	leafGE, err := m.InsertExpr(&ops.CTEConsumer{ID: 0}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const rules = 100
	wins := make([][rules]bool, workers)
	reqIDs := make([]ReqID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rules; r++ {
				if leafGE.MarkApplied(r) {
					wins[w][r] = true
				}
				_ = leafGE.Applied(r)
			}
			reqIDs[w] = m.InternReq(props.Required{Dist: props.SingletonDist})
		}(w)
	}
	wg.Wait()
	for r := 0; r < rules; r++ {
		n := 0
		for w := 0; w < workers; w++ {
			if wins[w][r] {
				n++
			}
		}
		if n != 1 {
			t.Errorf("rule %d: %d workers won MarkApplied, want exactly 1", r, n)
		}
		if !leafGE.Applied(r) {
			t.Errorf("rule %d not recorded as applied", r)
		}
	}
	for w := 1; w < workers; w++ {
		if reqIDs[w] != reqIDs[0] {
			t.Fatalf("equal requests interned to different ids: %d vs %d", reqIDs[w], reqIDs[0])
		}
	}
}
