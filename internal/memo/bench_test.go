package memo

// Scalability microbenchmarks for the Memo's four hot paths (paper §6.2,
// Figure 7: near-linear speedup of optimization time with more cores depends
// on the shared search structure not serializing the workers):
//
//   - BenchmarkMemoInsertParallel   concurrent InsertExpr storm (duplicate
//     detection, content-addressed registry, group creation)
//   - BenchmarkMemoGroupLookup      Group(id)/NumGroups read storm
//   - BenchmarkMemoRuleLedger       applied-rule checks (rule-firing gate)
//   - BenchmarkMemoContextProbe     Figure-6 hash-table probes
//     (Context/LookupContext/AddCandidate/Candidates)
//
// Run the curve with: go test -run '^$' -bench 'BenchmarkMemo' -cpu=1,2,4,8
// -benchmem ./internal/memo/. cmd/benchmarks -experiment=memo -json emits the
// same measurements as BENCH_memo.json.

import (
	"sync/atomic"
	"testing"

	"orca/internal/gpos"
	"orca/internal/ops"
	"orca/internal/props"
)

// benchRuleLedgerKeys returns the applied-ledger keys the ledger benchmark
// cycles through — a set the size of the real rule registry (dense rule IDs
// as assigned by xform.RuleIDFor).
func benchRuleLedgerKeys() []int {
	out := make([]int, 16)
	for i := range out {
		out[i] = i
	}
	return out
}

// benchLeaf inserts one arity-0 leaf expression and returns its group.
func benchLeaf(b *testing.B, m *Memo, id int) GroupID {
	b.Helper()
	ge, err := m.InsertExpr(&ops.CTEConsumer{ID: id}, nil, -1)
	if err != nil {
		b.Fatal(err)
	}
	return ge.Group().ID
}

// BenchmarkMemoInsertParallel is the concurrent InsertExpr storm: workers
// insert single-child expressions over a shared leaf — a rolling mix of
// fresh fingerprints (new groups in the content-addressed namespace) and
// duplicates of recently inserted ones (registry probes that must dedup).
func BenchmarkMemoInsertParallel(b *testing.B) {
	m := New(&gpos.MemoryAccountant{})
	leaf := benchLeaf(b, m, 0)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			// Two inserts per distinct fingerprint: every second call is a
			// duplicate probe of an already-registered subtree.
			k := n / 2
			if _, err := m.InsertExpr(&ops.Limit{Count: k}, []GroupID{leaf}, -1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemoInsertTarget is the same storm aimed at one target group —
// the transformation-result path (rule outputs landing in their source
// group), whose duplicate detection scans the group's own expressions.
func BenchmarkMemoInsertTarget(b *testing.B) {
	m := New(&gpos.MemoryAccountant{})
	leaf := benchLeaf(b, m, 0)
	ge, err := m.InsertExpr(&ops.Limit{Count: -1}, []GroupID{leaf}, -1)
	if err != nil {
		b.Fatal(err)
	}
	target := ge.Group().ID
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			// Bounded distinct set: most inserts are duplicate probes.
			k := n % 64
			if _, err := m.InsertExpr(&ops.Limit{Count: k}, []GroupID{leaf}, target); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemoGroupLookup hammers the group index from parallel readers —
// the plan-extraction / job-spawn path that must not serialize on the Memo.
func BenchmarkMemoGroupLookup(b *testing.B) {
	m := New(&gpos.MemoryAccountant{})
	const groups = 1024
	for i := 0; i < groups; i++ {
		benchLeaf(b, m, i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			g := m.Group(GroupID(i % groups))
			if g.NumExprs() == 0 {
				b.Fatal("empty group")
			}
			i++
			if i%64 == 0 {
				_ = m.NumGroups()
			}
		}
	})
}

// BenchmarkMemoRuleLedger measures the rule-firing gate: every exploration
// and implementation pass re-checks each (expression, rule) pair.
func BenchmarkMemoRuleLedger(b *testing.B) {
	m := New(&gpos.MemoryAccountant{})
	leaf := benchLeaf(b, m, 0)
	ge, err := m.InsertExpr(&ops.Limit{Count: 1}, []GroupID{leaf}, -1)
	if err != nil {
		b.Fatal(err)
	}
	rules := benchRuleLedgerKeys()
	ge.MarkApplied(rules[0])
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if ge.Applied(rules[i%len(rules)]) != (i%len(rules) == 0) {
				b.Fatal("ledger lied")
			}
			i++
		}
	})
}

// BenchmarkMemoContextProbe measures the Figure-6 hash-table hot path: the
// per-group request table (Context/LookupContext) and the per-expression
// local table (AddCandidate/Candidates) probed once per costing step.
func BenchmarkMemoContextProbe(b *testing.B) {
	m := New(&gpos.MemoryAccountant{})
	leaf := benchLeaf(b, m, 0)
	ge, err := m.InsertExpr(&ops.Limit{Count: 1}, []GroupID{leaf}, -1)
	if err != nil {
		b.Fatal(err)
	}
	g := ge.Group()
	reqs := []props.Required{
		{Dist: props.SingletonDist},
		{Dist: props.AnyDist},
		{Dist: props.SingletonDist, Order: props.MakeOrder(1)},
		{Dist: props.ReplicatedDist, Rewindable: true},
	}
	for _, r := range reqs {
		ctx, _ := g.Context(r)
		ge.AddCandidate(r, Candidate{Cost: 10})
		ctx.Offer(ge, Candidate{Cost: 10})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := reqs[i%len(reqs)]
			if g.LookupContext(r) == nil {
				b.Fatal("context lost")
			}
			if len(ge.Candidates(r)) == 0 {
				b.Fatal("candidates lost")
			}
			i++
		}
	})
}
