// Package rival simulates the Hadoop SQL engines the paper compares HAWQ
// against (§7.3): Impala 1.1.1, Presto 0.52 and Stinger (Hive 0.12). Each
// simulator has two parts:
//
//   - a capability matrix reproducing the documented SQL-surface gaps of
//     §7.3.1 (Impala: no window functions, no ORDER BY without LIMIT, no
//     ROLLUP/CUBE; Presto: no non-equi joins; Stinger: no WITH, no CASE;
//     none of them: INTERSECT, EXCEPT, disjunctive join predicates,
//     correlated subqueries), which drives the Figure 15 support counts, and
//
//   - a planning profile reproducing the documented planner behaviour the
//     paper blames for the performance gaps (§7.3.2): literal FROM-order
//     joins for all three, broadcast-the-right-side joins and in-memory-only
//     hash tables for Impala, per-stage MapReduce materialization for
//     Stinger.
package rival

import (
	"orca/internal/core"
	"orca/internal/engine"
	"orca/internal/ops"
	"orca/internal/planner"
	"orca/internal/tpcds"
)

// Profile describes one simulated engine.
type Profile struct {
	Name string

	// OptGates are SQL features the engine cannot plan; a query using any
	// of them fails at optimization time.
	OptGates tpcds.Feature

	// LiteralJoinOrder keeps joins exactly as written (paper §7.3.2:
	// "Impala and Stinger handle join orders as literally specified in the
	// query").
	LiteralJoinOrder bool
	// BroadcastRight always replicates the right join input (Impala's
	// default join strategy).
	BroadcastRight bool
	// MemLimitRows caps in-memory operator state per segment; exceeding it
	// aborts with an out-of-memory error (no spilling, §7.3.2).
	MemLimitRows int
	// PipelineMemRows caps cumulative in-memory intermediate results per
	// segment (engines with no spill path at all).
	PipelineMemRows int
	// StagePenalty multiplies execution work to model inter-stage
	// materialization on HDFS (the MapReduce execution style).
	StagePenalty float64
}

// noneSupport are the features the paper lists as unsupported by all three
// rivals.
const noneSupport = tpcds.FIntersect | tpcds.FExcept | tpcds.FDisjunctJoin | tpcds.FCorrelated

// Impala returns the Impala 1.1.1 simulation: no window functions, no ORDER
// BY without LIMIT, no ROLLUP/CUBE (§7.3.1), and — as in the 1.x line — no
// subqueries in predicates at all.
func Impala() *Profile {
	return &Profile{
		Name: "Impala",
		OptGates: noneSupport | tpcds.FWindow | tpcds.FOrderNoLimit |
			tpcds.FRollupCube | tpcds.FExists | tpcds.FScalarSub | tpcds.FInSubquery,
		LiteralJoinOrder: true,
		BroadcastRight:   true,
		MemLimitRows:     2600,
	}
}

// Presto returns the Presto 0.52 simulation. Its optimization gates are the
// widest — the paper managed to plan only 12 of 111 queries after "extensive
// filtering and rewriting" — and at the evaluated scale no query finished:
// whole pipelines are held in memory with no spill path, which the
// PipelineMemRows cap reproduces.
func Presto() *Profile {
	return &Profile{
		Name: "Presto",
		OptGates: noneSupport | tpcds.FNonEquiJoin | tpcds.FWindow |
			tpcds.FRollupCube | tpcds.FCTE | tpcds.FExists | tpcds.FInSubquery |
			tpcds.FScalarSub | tpcds.FOuterJoin | tpcds.FUnion | tpcds.FCase,
		LiteralJoinOrder: true,
		BroadcastRight:   true,
		PipelineMemRows:  400,
	}
}

// Stinger returns the Stinger (Hive 0.12) simulation: no WITH, no CASE
// (§7.3.1), no subqueries in predicates (pre-Hive-0.13), and MapReduce-style
// materialization between stages — rarely out of memory, always paying the
// per-stage write/read penalty.
func Stinger() *Profile {
	return &Profile{
		Name: "Stinger",
		OptGates: noneSupport | tpcds.FCTE | tpcds.FCase | tpcds.FWindow |
			tpcds.FScalarSub | tpcds.FExists | tpcds.FInSubquery,
		LiteralJoinOrder: true,
		StagePenalty:     6,
	}
}

// HAWQ returns the profile of the Orca-powered system: no gates, no
// planning handicaps.
func HAWQ() *Profile { return &Profile{Name: "HAWQ"} }

// CanOptimize reports whether a query with the given features plans at all.
func (p *Profile) CanOptimize(f tpcds.Feature) bool { return f&p.OptGates == 0 }

// ExecOptions returns the engine options reproducing the profile's runtime
// behaviour.
func (p *Profile) ExecOptions(budget int64) engine.Options {
	return engine.Options{
		Budget:          budget,
		MemLimitRows:    p.MemLimitRows,
		PipelineMemRows: p.PipelineMemRows,
		StagePenalty:    p.StagePenalty,
	}
}

// Plan produces the profile's physical plan for a bound query using the
// legacy-planner machinery configured with the profile's join behaviour.
func (p *Profile) Plan(q *core.Query, segments int) (*ops.Expr, error) {
	pl := planner.New(segments, q.Accessor, q.Factory)
	pl.LiteralJoinOrder = p.LiteralJoinOrder
	pl.BroadcastRight = p.BroadcastRight
	return pl.Optimize(q)
}
