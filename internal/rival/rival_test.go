package rival

import (
	"testing"

	"orca/internal/tpcds"
)

func TestHAWQHasNoGates(t *testing.T) {
	h := HAWQ()
	for _, tpl := range tpcds.Templates() {
		if !h.CanOptimize(tpl.Features) {
			t.Fatalf("HAWQ cannot optimize q%d", tpl.ID)
		}
	}
}

func TestDocumentedGates(t *testing.T) {
	// §7.3.1's explicit statements must hold.
	cases := []struct {
		p    *Profile
		feat tpcds.Feature
		ok   bool
	}{
		{Impala(), tpcds.FWindow, false},       // "Impala does not yet support window functions"
		{Impala(), tpcds.FOrderNoLimit, false}, // "ORDER BY statement without LIMIT"
		{Impala(), tpcds.FRollupCube, false},   // "ROLLUP and CUBE"
		{Presto(), tpcds.FNonEquiJoin, false},  // "Presto does not yet support non-equi joins"
		{Stinger(), tpcds.FCTE, false},         // "Stinger ... does not support WITH clause"
		{Stinger(), tpcds.FCase, false},        // "... and CASE statement"
		{Impala(), tpcds.FIntersect, false},    // "none of the systems supports INTERSECT"
		{Presto(), tpcds.FExcept, false},
		{Stinger(), tpcds.FDisjunctJoin, false},
		{Impala(), tpcds.FCorrelated, false}, // "... and correlated subqueries"
		{Presto(), tpcds.FCorrelated, false},
		{Stinger(), tpcds.FCorrelated, false},
		// Plain star joins everyone can run.
		{Impala(), 0, true},
		{Presto(), 0, true},
		{Stinger(), 0, true},
	}
	for _, c := range cases {
		if got := c.p.CanOptimize(c.feat); got != c.ok {
			t.Errorf("%s.CanOptimize(%b) = %v, want %v", c.p.Name, c.feat, got, c.ok)
		}
	}
}

func TestSupportOrdering(t *testing.T) {
	count := func(p *Profile) int {
		n := 0
		for _, tpl := range tpcds.Templates() {
			if p.CanOptimize(tpl.Features &^ tpcds.FImplicitCross) {
				n += tpl.Instances
			}
		}
		return n
	}
	hawq, impala, presto, stinger := count(HAWQ()), count(Impala()), count(Presto()), count(Stinger())
	if hawq != 111 {
		t.Errorf("HAWQ optimizes %d, want 111", hawq)
	}
	// The paper's ordering: HAWQ >> Impala > Stinger > Presto.
	if !(hawq > impala && impala > presto && stinger > presto) {
		t.Errorf("support ordering broken: hawq=%d impala=%d presto=%d stinger=%d",
			hawq, impala, presto, stinger)
	}
	if presto > 30 {
		t.Errorf("Presto optimizes %d; the paper's Presto planned only 12 of 111", presto)
	}
}

func TestExecOptionsCarryProfileBehaviour(t *testing.T) {
	o := Impala().ExecOptions(1000)
	if o.Budget != 1000 || o.MemLimitRows == 0 || o.StagePenalty != 0 {
		t.Errorf("Impala options: %+v", o)
	}
	s := Stinger().ExecOptions(1000)
	if s.StagePenalty <= 1 || s.MemLimitRows != 0 {
		t.Errorf("Stinger options: %+v", s)
	}
	p := Presto().ExecOptions(1000)
	if p.PipelineMemRows == 0 {
		t.Errorf("Presto options: %+v", p)
	}
}
