package sql

import (
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
)

// ---------------------------------------------------------------------------
// Parser

func TestParseSelectShapes(t *testing.T) {
	good := []string{
		"SELECT a FROM t",
		"SELECT * FROM t",
		"SELECT a, b AS bb, a + 1 one FROM t WHERE a > 1 AND b < 2",
		"SELECT a FROM t1, t2 WHERE t1.a = t2.b",
		"SELECT a FROM t1 JOIN t2 ON t1.a = t2.a LEFT JOIN t3 ON t2.b = t3.b",
		"SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2",
		"SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10 OFFSET 5",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%'",
		"SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a)",
		"SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM s)",
		"SELECT a FROM t WHERE a > (SELECT max(x) FROM s)",
		"SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
		"WITH c AS (SELECT a FROM t) SELECT * FROM c",
		"WITH c (x) AS (SELECT a FROM t) SELECT x FROM c",
		"SELECT a FROM t UNION ALL SELECT b FROM s ORDER BY 1",
		"SELECT a FROM t INTERSECT SELECT a FROM s",
		"SELECT a FROM t EXCEPT SELECT a FROM s",
		"SELECT rank() OVER (PARTITION BY a ORDER BY b DESC) FROM t",
		"SELECT a FROM (SELECT b AS a FROM s) AS sub",
		"SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL",
		"SELECT sum(DISTINCT a) FROM t",
		"SELECT -a, a % 2 FROM t -- trailing comment",
		"SELECT a FROM t GROUP BY ROLLUP (a, b)",
		"SELECT a FROM t;",
	}
	for _, q := range good {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t ORDER a",
		"SELECT a t1 FROM t extra_token_fail (",
		"SELECT a FROM t UNION SELECT b FROM s", // bare UNION unsupported
		"SELECT a FROM (SELECT b FROM s)",       // derived table needs alias
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t LIMIT abc",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	blk := stmt.Body.(*SelectBlock)
	or, ok := blk.Where.(*BinExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("top operator %T, want OR (AND binds tighter)", blk.Where)
	}
	and, ok := or.R.(*BinExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("right side %T, want AND", or.R)
	}
	// Arithmetic precedence: 1 + 2 * 3 parses as 1 + (2*3).
	stmt2, _ := Parse("SELECT 1 + 2 * 3 FROM t")
	plus := stmt2.Body.(*SelectBlock).Items[0].Expr.(*BinExpr)
	if plus.Op != "+" {
		t.Fatalf("top arithmetic %q", plus.Op)
	}
	if mul, ok := plus.R.(*BinExpr); !ok || mul.Op != "*" {
		t.Fatal("multiplication does not bind tighter than addition")
	}
}

// ---------------------------------------------------------------------------
// Binder

func binderCatalog(t testing.TB) (*md.Accessor, *md.ColumnFactory) {
	t.Helper()
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "emp", Rows: 100, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "dept", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
			{Name: "salary", Type: base.TInt, NDV: 50, Lo: 0, Hi: 50000},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "dept", Rows: 10, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
			{Name: "name", Type: base.TString, NDV: 10, Lo: 0, Hi: 10},
		},
	})
	return md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p), md.NewColumnFactory()
}

func mustBind(t *testing.T, q string) *ops.Expr {
	t.Helper()
	acc, f := binderCatalog(t)
	bound, err := Bind(q, acc, f)
	if err != nil {
		t.Fatalf("Bind(%q): %v", q, err)
	}
	return bound.Tree
}

func TestBindSimpleProjection(t *testing.T) {
	tree := mustBind(t, "SELECT id, salary * 2 AS double_pay FROM emp")
	proj, ok := tree.Op.(*ops.Project)
	if !ok {
		t.Fatalf("root is %T", tree.Op)
	}
	if len(proj.Elems) != 2 {
		t.Fatalf("projections = %d", len(proj.Elems))
	}
	if _, ok := proj.Elems[1].Expr.(*ops.BinOp); !ok {
		t.Error("computed projection lost")
	}
}

func TestBindStarExpansion(t *testing.T) {
	acc, f := binderCatalog(t)
	q, err := Bind("SELECT * FROM emp", acc, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OutCols) != 3 || q.OutNames[0] != "id" || q.OutNames[2] != "salary" {
		t.Errorf("star expansion: %v", q.OutNames)
	}
}

func TestBindScopes(t *testing.T) {
	// Qualified, unqualified and ambiguous references.
	if _, err := func() (*ops.Expr, error) {
		acc, f := binderCatalog(t)
		q, err := Bind("SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id", acc, f)
		if err != nil {
			return nil, err
		}
		return q.Tree, nil
	}(); err != nil {
		t.Errorf("qualified reference failed: %v", err)
	}
	acc, f := binderCatalog(t)
	if _, err := Bind("SELECT id FROM emp, dept", acc, f); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column not detected: %v", err)
	}
	acc2, f2 := binderCatalog(t)
	if _, err := Bind("SELECT nosuch FROM emp", acc2, f2); err == nil {
		t.Error("unknown column accepted")
	}
	acc3, f3 := binderCatalog(t)
	if _, err := Bind("SELECT id FROM nosuch_table", acc3, f3); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestBindSelfJoinDistinctColumns(t *testing.T) {
	tree := mustBind(t, "SELECT a.id FROM emp a, emp b WHERE a.id = b.id")
	// The two instances must produce disjoint column sets.
	join := findOp(tree, "InnerJoin")
	if join == nil {
		t.Fatal("no join in bound tree")
	}
	l := ops.OutputColsOf(join.Children[0])
	r := ops.OutputColsOf(join.Children[1])
	if l.Intersects(r) {
		t.Errorf("self join instances share columns: %s ∩ %s", l, r)
	}
}

func TestBindAggregationRewritesAvg(t *testing.T) {
	tree := mustBind(t, "SELECT dept, avg(salary) FROM emp GROUP BY dept")
	// avg is rewritten to sum/count: somewhere below there is a GbAgg with
	// both aggregates and a projection computing the division.
	var sawAgg, sawDiv bool
	var walk func(e *ops.Expr)
	walk = func(e *ops.Expr) {
		switch o := e.Op.(type) {
		case *ops.GbAgg:
			names := map[string]bool{}
			for _, a := range o.Aggs {
				names[a.Agg.Name] = true
			}
			if names["sum"] && names["count"] {
				sawAgg = true
			}
		case *ops.Project:
			for _, el := range o.Elems {
				if b, ok := el.Expr.(*ops.BinOp); ok && b.Op == "/" {
					sawDiv = true
				}
			}
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(tree)
	if !sawAgg || !sawDiv {
		t.Errorf("avg rewrite missing: agg=%v div=%v", sawAgg, sawDiv)
	}
}

func TestBindGroupByExpression(t *testing.T) {
	tree := mustBind(t, `
		SELECT CASE WHEN salary > 1000 THEN 1 ELSE 0 END AS band, count(*)
		FROM emp GROUP BY CASE WHEN salary > 1000 THEN 1 ELSE 0 END`)
	// The SELECT's CASE must be substituted by the grouping column: the
	// final projection may not contain a CASE anymore.
	proj := tree.Op.(*ops.Project)
	for _, el := range proj.Elems {
		if _, isCase := el.Expr.(*ops.Case); isCase {
			t.Error("grouped expression not substituted in the select list")
		}
	}
}

func TestBindHavingUsesAggregates(t *testing.T) {
	tree := mustBind(t, "SELECT dept FROM emp GROUP BY dept HAVING sum(salary) > 100")
	// HAVING becomes a Select above the GbAgg referencing the agg column.
	var sawSelect bool
	var walk func(e *ops.Expr)
	walk = func(e *ops.Expr) {
		if sel, ok := e.Op.(*ops.Select); ok {
			if _, ok := e.Children[0].Op.(*ops.GbAgg); ok {
				sawSelect = true
				if len(sel.Pred.Cols().Ordered()) == 0 {
					t.Error("HAVING predicate references nothing")
				}
			}
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(tree)
	if !sawSelect {
		t.Error("HAVING did not become a Select over GbAgg")
	}
}

func TestBindSubqueryCorrelation(t *testing.T) {
	tree := mustBind(t, `
		SELECT id FROM emp
		WHERE salary > (SELECT avg(e2.salary) FROM emp e2 WHERE e2.dept = emp.dept)`)
	// The bound tree contains a Subquery scalar whose input has free
	// columns referencing the outer emp instance.
	var sq *ops.Subquery
	var walk func(e *ops.Expr)
	walk = func(e *ops.Expr) {
		if sel, ok := e.Op.(*ops.Select); ok {
			for _, c := range ops.Conjuncts(sel.Pred) {
				if cmp, ok := c.(*ops.Cmp); ok {
					if s, ok := cmp.R.(*ops.Subquery); ok {
						sq = s
					}
				}
			}
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(tree)
	if sq == nil {
		t.Fatal("subquery not bound")
	}
	if ops.FreeCols(sq.Input).Empty() {
		t.Error("correlation lost: subquery input has no free columns")
	}
}

func TestBindCTEConsumersGetFreshColumns(t *testing.T) {
	tree := mustBind(t, `
		WITH top AS (SELECT dept, sum(salary) AS total FROM emp GROUP BY dept)
		SELECT a.dept FROM top a, top b WHERE a.dept = b.dept`)
	anchor, ok := findOp(tree, "CTEAnchor").Op.(*ops.CTEAnchor)
	if !ok {
		t.Fatal("no CTE anchor")
	}
	_ = anchor
	var consumers []*ops.CTEConsumer
	var walk func(e *ops.Expr)
	walk = func(e *ops.Expr) {
		if c, ok := e.Op.(*ops.CTEConsumer); ok {
			consumers = append(consumers, c)
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(tree)
	if len(consumers) != 2 {
		t.Fatalf("consumers = %d, want 2", len(consumers))
	}
	if consumers[0].Cols[0].ID == consumers[1].Cols[0].ID {
		t.Error("consumer instances share column ids")
	}
}

func findOp(e *ops.Expr, name string) *ops.Expr {
	if e.Op.Name() == name {
		return e
	}
	for _, c := range e.Children {
		if got := findOp(c, name); got != nil {
			return got
		}
	}
	return nil
}

func TestBindOrderByAliasPositionAndQualified(t *testing.T) {
	acc, f := binderCatalog(t)
	q, err := Bind("SELECT dept AS d, sum(salary) AS s FROM emp GROUP BY dept ORDER BY s DESC, 1", acc, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Order.Items) != 2 || !q.Order.Items[0].Desc || q.Order.Items[1].Desc {
		t.Errorf("order = %s", q.Order)
	}
	if q.Order.Items[0].Col != q.OutCols[1] || q.Order.Items[1].Col != q.OutCols[0] {
		t.Errorf("order columns misresolved: %s vs outs %v", q.Order, q.OutCols)
	}
	acc2, f2 := binderCatalog(t)
	if _, err := Bind("SELECT dept FROM emp ORDER BY 5", acc2, f2); err == nil {
		t.Error("out-of-range ORDER BY position accepted")
	}
}

func TestBindSetOperationArity(t *testing.T) {
	acc, f := binderCatalog(t)
	if _, err := Bind("SELECT id, dept FROM emp UNION ALL SELECT id FROM dept", acc, f); err == nil {
		t.Error("arity mismatch accepted")
	}
}
