package sql

import (
	"fmt"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

// bindSelect binds one SELECT block: FROM → WHERE → GROUP/HAVING → window →
// projection → DISTINCT.
func (b *binder) bindSelect(blk *SelectBlock, outer *scope) (*ops.Expr, *scope, error) {
	if len(blk.From) == 0 {
		return nil, nil, fmt.Errorf("sql: SELECT without FROM is not supported")
	}

	// FROM clause.
	var tree *ops.Expr
	sc := &scope{parent: outer}
	for _, te := range blk.From {
		t, err := b.bindTableExpr(te, sc, outer)
		if err != nil {
			return nil, nil, err
		}
		if tree == nil {
			tree = t
		} else {
			tree = ops.NewExpr(&ops.Join{Type: ops.InnerJoin}, tree, t)
		}
	}

	// WHERE clause.
	if blk.Where != nil {
		pred, err := b.bindExpr(blk.Where, sc, nil)
		if err != nil {
			return nil, nil, err
		}
		tree = ops.NewExpr(&ops.Select{Pred: pred}, tree)
	}

	// Aggregation.
	aggCalls := collectAggs(blk)
	hasAgg := len(aggCalls) > 0 || len(blk.GroupBy) > 0
	aggMap := map[*FuncCall]*md.ColRef{}
	var groupExprs []groupExpr
	if hasAgg {
		t, ge, err := b.bindAggregation(blk, tree, sc, aggCalls, aggMap)
		if err != nil {
			return nil, nil, err
		}
		tree = t
		groupExprs = ge
	}

	// HAVING.
	if blk.Having != nil {
		pred, err := b.bindExpr(blk.Having, sc, aggMap)
		if err != nil {
			return nil, nil, err
		}
		pred = substGroupExprs(pred, groupExprs)
		tree = ops.NewExpr(&ops.Select{Pred: pred}, tree)
	}

	// Window functions.
	winMap := map[*FuncCall]*md.ColRef{}
	if wins := collectWindows(blk); len(wins) > 0 {
		t, err := b.bindWindows(wins, tree, sc, aggMap, winMap)
		if err != nil {
			return nil, nil, err
		}
		tree = t
	}

	// Projection.
	var elems []ops.ProjElem
	out := &scope{parent: outer}
	for i, item := range blk.Items {
		if item.Star {
			for _, c := range sc.cols {
				elems = append(elems, ops.ProjElem{Col: c.ref, Expr: ops.NewIdent(c.ref.ID, c.ref.Type)})
				out.add(c.table, c.name, c.ref)
			}
			continue
		}
		se, err := b.bindExpr(item.Expr, sc, mergeMaps(aggMap, winMap))
		if err != nil {
			return nil, nil, err
		}
		se = substGroupExprs(se, groupExprs)
		name := item.Alias
		if name == "" {
			if cn, ok := item.Expr.(*ColName); ok {
				name = cn.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		var ref *md.ColRef
		if id, ok := se.(*ops.Ident); ok {
			if r := b.f.Lookup(id.Col); r != nil {
				ref = r
			}
		}
		if ref == nil {
			ref = b.f.NewComputedColumn(name, scalarType(se, b.f))
		}
		elems = append(elems, ops.ProjElem{Col: ref, Expr: se})
		qualifier := ""
		if cn, ok := item.Expr.(*ColName); ok {
			qualifier = cn.Table
		}
		out.add(qualifier, name, ref)
	}
	tree = ops.NewExpr(&ops.Project{Elems: elems}, tree)

	// DISTINCT.
	if blk.Distinct {
		var groupCols []base.ColID
		for _, c := range out.cols {
			groupCols = append(groupCols, c.ref.ID)
		}
		tree = ops.NewExpr(&ops.GbAgg{GroupCols: groupCols}, tree)
	}
	return tree, out, nil
}

func mergeMaps(a, bm map[*FuncCall]*md.ColRef) map[*FuncCall]*md.ColRef {
	if len(bm) == 0 {
		return a
	}
	out := make(map[*FuncCall]*md.ColRef, len(a)+len(bm))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range bm {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// FROM items

func (b *binder) bindTableExpr(te TableExpr, sc *scope, outer *scope) (*ops.Expr, error) {
	switch t := te.(type) {
	case *TableRef:
		return b.bindTableRef(t, sc)
	case *SubqueryRef:
		tree, sub, _, err := b.bindStatement(t.Stmt, outer)
		if err != nil {
			return nil, err
		}
		for _, c := range sub.cols {
			sc.add(t.Alias, c.name, c.ref)
		}
		return tree, nil
	case *JoinExpr:
		lt, err := b.bindTableExpr(t.L, sc, outer)
		if err != nil {
			return nil, err
		}
		rt, err := b.bindTableExpr(t.R, sc, outer)
		if err != nil {
			return nil, err
		}
		var pred ops.ScalarExpr
		if t.On != nil {
			p, err := b.bindExpr(t.On, sc, nil)
			if err != nil {
				return nil, err
			}
			pred = p
		}
		jt := ops.InnerJoin
		if t.Kind == "left" {
			jt = ops.LeftJoin
		}
		return ops.NewExpr(&ops.Join{Type: jt, Pred: pred}, lt, rt), nil
	default:
		return nil, fmt.Errorf("sql: unsupported FROM item %T", te)
	}
}

func (b *binder) bindTableRef(t *TableRef, sc *scope) (*ops.Expr, error) {
	// CTE consumer?
	if def, ok := b.ctes[t.Name]; ok {
		consumer := &ops.CTEConsumer{ID: def.id}
		for i, pc := range def.cols {
			ref := b.f.NewComputedColumn(def.names[i], pc.Type)
			consumer.Cols = append(consumer.Cols, ref)
			consumer.ProducerCols = append(consumer.ProducerCols, pc.ID)
			sc.add(t.Alias, def.names[i], ref)
		}
		return ops.NewExpr(consumer), nil
	}
	rel, err := b.acc.RelationByName(t.Name)
	if err != nil {
		return nil, err
	}
	get := &ops.Get{Alias: t.Alias, Rel: rel}
	for i, col := range rel.Columns {
		ref := b.f.NewTableColumn(col.Name, col.Type, rel.Mdid, i)
		get.Cols = append(get.Cols, ref)
		sc.add(t.Alias, col.Name, ref)
	}
	return ops.NewExpr(get), nil
}

// ---------------------------------------------------------------------------
// Aggregation

var aggNames = map[string]bool{"count": true, "sum": true, "min": true, "max": true, "avg": true}

// collectAggs finds aggregate calls (outside OVER clauses) in the select
// list and HAVING clause.
func collectAggs(blk *SelectBlock) []*FuncCall {
	var out []*FuncCall
	for _, item := range blk.Items {
		if !item.Star {
			out = append(out, findAggs(item.Expr)...)
		}
	}
	if blk.Having != nil {
		out = append(out, findAggs(blk.Having)...)
	}
	return out
}

func findAggs(e Expr) []*FuncCall {
	var out []*FuncCall
	walkExpr(e, func(x Expr) bool {
		if fc, ok := x.(*FuncCall); ok {
			if fc.Over != nil {
				return false // window functions handled separately
			}
			if aggNames[fc.Name] {
				out = append(out, fc)
				return false
			}
		}
		if _, ok := x.(*SubqueryExpr); ok {
			return false
		}
		if _, ok := x.(*ExistsExpr); ok {
			return false
		}
		return true
	})
	return out
}

// walkExpr visits the expression tree; the callback returning false prunes
// descent.
func walkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *BinExpr:
		walkExpr(x.L, f)
		walkExpr(x.R, f)
	case *UnaryExpr:
		walkExpr(x.Arg, f)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, f)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			walkExpr(w.When, f)
			walkExpr(w.Then, f)
		}
		walkExpr(x.Else, f)
	case *IsNullExpr:
		walkExpr(x.Arg, f)
	case *InExpr:
		walkExpr(x.Arg, f)
		for _, v := range x.List {
			walkExpr(v, f)
		}
	case *BetweenExpr:
		walkExpr(x.Arg, f)
		walkExpr(x.Lo, f)
		walkExpr(x.Hi, f)
	}
}

// groupExpr records one computed grouping expression and the column holding
// it, so later references to the same expression (SELECT list, HAVING) can
// be substituted structurally.
type groupExpr struct {
	expr ops.ScalarExpr
	col  *md.ColRef
}

// substGroupExprs replaces subtrees structurally equal to a grouping
// expression with the grouping column.
func substGroupExprs(e ops.ScalarExpr, groups []groupExpr) ops.ScalarExpr {
	if e == nil || len(groups) == 0 {
		return e
	}
	for _, g := range groups {
		if e.Equal(g.expr) {
			return ops.NewIdent(g.col.ID, g.col.Type)
		}
	}
	switch x := e.(type) {
	case *ops.Cmp:
		return &ops.Cmp{Op: x.Op, L: substGroupExprs(x.L, groups), R: substGroupExprs(x.R, groups)}
	case *ops.BoolOp:
		args := make([]ops.ScalarExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substGroupExprs(a, groups)
		}
		return &ops.BoolOp{Kind: x.Kind, Args: args}
	case *ops.BinOp:
		return &ops.BinOp{Op: x.Op, L: substGroupExprs(x.L, groups), R: substGroupExprs(x.R, groups)}
	case *ops.Func:
		args := make([]ops.ScalarExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substGroupExprs(a, groups)
		}
		return &ops.Func{Name: x.Name, Args: args}
	case *ops.Case:
		whens := make([]ops.CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = ops.CaseWhen{When: substGroupExprs(w.When, groups), Then: substGroupExprs(w.Then, groups)}
		}
		return &ops.Case{Whens: whens, Else: substGroupExprs(x.Else, groups)}
	case *ops.IsNull:
		return &ops.IsNull{Arg: substGroupExprs(x.Arg, groups), Negated: x.Negated}
	default:
		return e
	}
}

// bindAggregation builds the GbAgg operator: grouping expressions are
// pre-projected when they are not simple columns; avg is rewritten to
// sum/count; each aggregate call maps to a fresh output column.
func (b *binder) bindAggregation(blk *SelectBlock, tree *ops.Expr, sc *scope,
	aggCalls []*FuncCall, aggMap map[*FuncCall]*md.ColRef) (*ops.Expr, []groupExpr, error) {

	// Bind grouping columns (pre-projecting computed group keys).
	var groupCols []base.ColID
	var preElems []ops.ProjElem
	var groupExprs []groupExpr
	for _, ge := range blk.GroupBy {
		se, err := b.bindExpr(ge, sc, nil)
		if err != nil {
			return nil, nil, err
		}
		if id, ok := se.(*ops.Ident); ok {
			groupCols = append(groupCols, id.Col)
			continue
		}
		ref := b.f.NewComputedColumn("groupkey", scalarType(se, b.f))
		preElems = append(preElems, ops.ProjElem{Col: ref, Expr: se})
		groupCols = append(groupCols, ref.ID)
		groupExprs = append(groupExprs, groupExpr{expr: se, col: ref})
		sc.add("", ref.Name, ref)
	}
	if len(preElems) > 0 {
		// Pass through every visible column plus the computed keys.
		for _, c := range sc.cols {
			skip := false
			for _, pe := range preElems {
				if pe.Col.ID == c.ref.ID {
					skip = true
				}
			}
			if !skip {
				preElems = append(preElems, ops.ProjElem{Col: c.ref, Expr: ops.NewIdent(c.ref.ID, c.ref.Type)})
			}
		}
		tree = ops.NewExpr(&ops.Project{Elems: preElems}, tree)
	}

	var aggElems []ops.AggElem
	var postElems []ops.ProjElem // avg rewrites
	addAgg := func(name string, arg ops.ScalarExpr, distinct bool, outName string, typ base.TypeID) *md.ColRef {
		// Reuse an identical aggregate if present.
		probe := &ops.AggFunc{Name: name, Arg: arg, Distinct: distinct}
		for _, ae := range aggElems {
			if ae.Agg.Equal(probe) {
				return ae.Col
			}
		}
		ref := b.f.NewComputedColumn(outName, typ)
		aggElems = append(aggElems, ops.AggElem{Col: ref, Agg: probe})
		return ref
	}

	for _, fc := range aggCalls {
		if _, done := aggMap[fc]; done {
			continue
		}
		var arg ops.ScalarExpr
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, nil, fmt.Errorf("sql: aggregate %q takes one argument", fc.Name)
			}
			a, err := b.bindExpr(fc.Args[0], sc, nil)
			if err != nil {
				return nil, nil, err
			}
			arg = a
		}
		switch fc.Name {
		case "avg":
			sumRef := addAgg("sum", arg, fc.Distinct, "avg_sum", base.TFloat)
			cntRef := addAgg("count", arg, fc.Distinct, "avg_count", base.TInt)
			avgRef := b.f.NewComputedColumn("avg", base.TFloat)
			postElems = append(postElems, ops.ProjElem{
				Col: avgRef,
				Expr: &ops.BinOp{Op: "/",
					L: ops.NewIdent(sumRef.ID, base.TFloat),
					R: ops.NewIdent(cntRef.ID, base.TInt)},
			})
			aggMap[fc] = avgRef
		case "count":
			aggMap[fc] = addAgg("count", arg, fc.Distinct, "count", base.TInt)
		case "sum":
			aggMap[fc] = addAgg("sum", arg, fc.Distinct, "sum", scalarType(arg, b.f))
		case "min", "max":
			aggMap[fc] = addAgg(fc.Name, arg, fc.Distinct, fc.Name, scalarType(arg, b.f))
		default:
			return nil, nil, fmt.Errorf("sql: unknown aggregate %q", fc.Name)
		}
	}

	tree = ops.NewExpr(&ops.GbAgg{GroupCols: groupCols, Aggs: aggElems}, tree)

	if len(postElems) > 0 {
		// Keep group columns and aggregate outputs visible alongside the
		// computed averages.
		for _, g := range groupCols {
			if ref := b.f.Lookup(g); ref != nil {
				postElems = append(postElems, ops.ProjElem{Col: ref, Expr: ops.NewIdent(g, ref.Type)})
			}
		}
		for _, ae := range aggElems {
			postElems = append(postElems, ops.ProjElem{Col: ae.Col, Expr: ops.NewIdent(ae.Col.ID, ae.Col.Type)})
		}
		tree = ops.NewExpr(&ops.Project{Elems: postElems}, tree)
	}

	// The full pre-aggregation scope stays visible; references to grouped
	// expressions are substituted structurally by substGroupExprs, and any
	// reference to a non-grouped column surfaces as an execution-time
	// unbound-column error.
	return tree, groupExprs, nil
}

// ---------------------------------------------------------------------------
// Window functions

var windowNames = map[string]bool{"rank": true, "row_number": true, "sum": true, "count": true, "min": true, "max": true}

func collectWindows(blk *SelectBlock) []*FuncCall {
	var out []*FuncCall
	for _, item := range blk.Items {
		if item.Star {
			continue
		}
		walkExpr(item.Expr, func(x Expr) bool {
			if fc, ok := x.(*FuncCall); ok && fc.Over != nil {
				out = append(out, fc)
				return false
			}
			return true
		})
	}
	return out
}

func (b *binder) bindWindows(wins []*FuncCall, tree *ops.Expr, sc *scope,
	aggMap map[*FuncCall]*md.ColRef, winMap map[*FuncCall]*md.ColRef) (*ops.Expr, error) {

	// All window functions must share one OVER clause in this dialect (one
	// Window operator); verify and bind the shared spec from the first.
	first := wins[0].Over
	var partCols []base.ColID
	for _, pe := range first.PartitionBy {
		se, err := b.bindExpr(pe, sc, aggMap)
		if err != nil {
			return nil, err
		}
		id, ok := se.(*ops.Ident)
		if !ok {
			return nil, fmt.Errorf("sql: PARTITION BY supports simple columns only")
		}
		partCols = append(partCols, id.Col)
	}
	var order props.OrderSpec
	for _, oi := range first.OrderBy {
		se, err := b.bindExpr(oi.Expr, sc, aggMap)
		if err != nil {
			return nil, err
		}
		id, ok := se.(*ops.Ident)
		if !ok {
			return nil, fmt.Errorf("sql: window ORDER BY supports simple columns only")
		}
		order.Items = append(order.Items, props.OrderItem{Col: id.Col, Desc: oi.Desc})
	}

	var elems []ops.WinElem
	for _, fc := range wins {
		if !windowNames[fc.Name] {
			return nil, fmt.Errorf("sql: unknown window function %q", fc.Name)
		}
		var arg ops.ScalarExpr
		if len(fc.Args) == 1 {
			a, err := b.bindExpr(fc.Args[0], sc, aggMap)
			if err != nil {
				return nil, err
			}
			arg = a
		}
		typ := base.TInt
		if arg != nil {
			typ = scalarType(arg, b.f)
		}
		ref := b.f.NewComputedColumn(fc.Name, typ)
		elems = append(elems, ops.WinElem{Col: ref, Fn: &ops.WinFunc{Name: fc.Name, Arg: arg}})
		winMap[fc] = ref
		sc.add("", fc.Name, ref)
	}
	return ops.NewExpr(&ops.Window{PartitionCols: partCols, Order: order, Wins: elems}, tree), nil
}
