package sql

import (
	"fmt"
	"strconv"
)

// Parse turns SQL text into a Statement AST.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.peek().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStatement() (*Statement, error) {
	stmt := &Statement{}
	if p.accept(tokKeyword, "WITH") {
		for {
			cte, err := p.parseCTE()
			if err != nil {
				return nil, err
			}
			stmt.CTEs = append(stmt.CTEs, *cte)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	body, err := p.parseSetExpr()
	if err != nil {
		return nil, err
	}
	stmt.Body = body

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.Order = append(stmt.Order, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		stmt.Limit = &n
	}
	if p.accept(tokKeyword, "OFFSET") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad OFFSET %q", t.text)
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *parser) parseCTE() (*CTE, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	cte := &CTE{Name: name.text}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			cte.Cols = append(cte.Cols, col.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	cte.Stmt = inner
	return cte, nil
}

func (p *parser) parseSetExpr() (SetExpr, error) {
	left, err := p.parseSetPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokKeyword, "UNION"):
			if _, err := p.expect(tokKeyword, "ALL"); err != nil {
				return nil, p.errf("only UNION ALL is supported")
			}
			right, err := p.parseSetPrimary()
			if err != nil {
				return nil, err
			}
			left = &SetOp{Op: "union all", L: left, R: right}
		case p.accept(tokKeyword, "INTERSECT"):
			right, err := p.parseSetPrimary()
			if err != nil {
				return nil, err
			}
			left = &SetOp{Op: "intersect", L: left, R: right}
		case p.accept(tokKeyword, "EXCEPT"):
			right, err := p.parseSetPrimary()
			if err != nil {
				return nil, err
			}
			left = &SetOp{Op: "except", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseSetPrimary() (SetExpr, error) {
	if p.accept(tokSymbol, "(") {
		inner, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*SelectBlock, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	blk := &SelectBlock{}
	blk.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		if p.accept(tokSymbol, "*") {
			blk.Items = append(blk.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = a.text
			} else if p.at(tokIdent, "") {
				item.Alias = p.next().text
			}
			blk.Items = append(blk.Items, item)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			blk.From = append(blk.From, te)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		blk.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		// ROLLUP/CUBE parse as plain grouping (documented simplification).
		wrapped := p.accept(tokKeyword, "ROLLUP") || p.accept(tokKeyword, "CUBE")
		if wrapped {
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			blk.GroupBy = append(blk.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if wrapped {
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		blk.Having = e
	}
	return blk, nil
}

// ---------------------------------------------------------------------------
// FROM items

func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind := ""
		switch {
		case p.accept(tokKeyword, "JOIN"):
			kind = "inner"
		case p.at(tokKeyword, "INNER"):
			p.next()
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "inner"
		case p.at(tokKeyword, "LEFT"):
			p.next()
			p.accept(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "left"
		case p.at(tokKeyword, "CROSS"):
			p.next()
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "cross"
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &JoinExpr{Kind: kind, L: left, R: right}
		if kind != "cross" {
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.accept(tokSymbol, "(") {
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		p.accept(tokKeyword, "AS")
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("derived table requires an alias")
		}
		return &SubqueryRef{Stmt: stmt, Alias: alias.text}, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Name: name.text, Alias: name.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref.Alias = a.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}
