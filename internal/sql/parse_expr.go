package sql

// Expression parsing with standard precedence:
//   OR < AND < NOT < comparison/IN/LIKE/BETWEEN/IS < additive < multiplicative < unary < primary

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		arg, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", Arg: arg}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]bool{"=": true, "<": true, ">": true, "<=": true, ">=": true, "<>": true, "!=": true}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokSymbol && cmpOps[t.text]:
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			left = &BinExpr{Op: op, L: left, R: right}

		case t.kind == tokKeyword && t.text == "IS":
			p.next()
			neg := p.accept(tokKeyword, "NOT")
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Arg: left, Negated: neg}

		case t.kind == tokKeyword && (t.text == "IN" || t.text == "NOT" || t.text == "BETWEEN" || t.text == "LIKE"):
			neg := false
			if t.text == "NOT" {
				// lookahead: NOT IN / NOT BETWEEN / NOT LIKE
				if p.pos+1 < len(p.toks) {
					nxt := p.toks[p.pos+1]
					if nxt.kind != tokKeyword || (nxt.text != "IN" && nxt.text != "BETWEEN" && nxt.text != "LIKE") {
						return left, nil
					}
				}
				p.next()
				neg = true
				t = p.peek()
			}
			switch t.text {
			case "IN":
				p.next()
				e, err := p.parseInTail(left, neg)
				if err != nil {
					return nil, err
				}
				left = e
			case "BETWEEN":
				p.next()
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokKeyword, "AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{Arg: left, Lo: lo, Hi: hi, Negated: neg}
			case "LIKE":
				p.next()
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				like := &FuncCall{Name: "like", Args: []Expr{left, pat}}
				if neg {
					left = &UnaryExpr{Op: "not", Arg: like}
				} else {
					left = like
				}
			default:
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseInTail(arg Expr, neg bool) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "SELECT") || p.at(tokKeyword, "WITH") {
		sub, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Arg: arg, Sub: sub, Negated: neg}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &InExpr{Arg: arg, List: list, Negated: neg}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Arg: arg}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &NumLit{Text: t.text, IsInt: !containsDot(t.text)}, nil

	case t.kind == tokString:
		p.next()
		return &StrLit{Val: t.text}, nil

	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return &NullLit{}, nil

	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return &BoolLit{Val: true}, nil

	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return &BoolLit{Val: false}, nil

	case t.kind == tokKeyword && t.text == "EXISTS":
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil

	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()

	case t.kind == tokSymbol && t.text == "(":
		p.next()
		if p.at(tokKeyword, "SELECT") || p.at(tokKeyword, "WITH") {
			sub, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tokIdent:
		p.next()
		// Function call?
		if p.at(tokSymbol, "(") {
			return p.parseFuncCall(t.text)
		}
		// Qualified column?
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColName{Table: t.text, Name: col.text}, nil
		}
		return &ColName{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.accept(tokSymbol, "*") {
		fc.Star = true
	} else if !p.at(tokSymbol, ")") {
		fc.Distinct = p.accept(tokKeyword, "DISTINCT")
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, a)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "OVER") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		w := &WindowDef{}
		if p.accept(tokKeyword, "PARTITION") {
			if _, err := p.expect(tokKeyword, "BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				w.PartitionBy = append(w.PartitionBy, e)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
		}
		if p.accept(tokKeyword, "ORDER") {
			if _, err := p.expect(tokKeyword, "BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item := OrderItem{Expr: e}
				if p.accept(tokKeyword, "DESC") {
					item.Desc = true
				} else {
					p.accept(tokKeyword, "ASC")
				}
				w.OrderBy = append(w.OrderBy, item)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		fc.Over = w
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	if _, err := p.expect(tokKeyword, "CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.accept(tokKeyword, "WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, struct {
			When Expr
			Then Expr
		}{when, then})
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

func containsDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
