// Package sql is the host-side query front end (the paper's Query2DXL
// translator substrate): a lexer, parser and binder turning SQL text into
// the bound logical trees the optimizer consumes. It supports the dialect
// the TPC-DS-lite workload needs: SELECT with joins (comma, INNER/LEFT ...
// ON), WHERE, GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT, UNION ALL,
// INTERSECT/EXCEPT (desugared), WITH (common table expressions), window
// functions, CASE, BETWEEN, LIKE, IN lists, and scalar/EXISTS/IN subqueries
// with correlation.
package sql

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved word (uppercased)
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true, "ON": true,
	"UNION": true, "ALL": true, "DISTINCT": true, "WITH": true, "ASC": true,
	"DESC": true, "INTERSECT": true, "EXCEPT": true, "OVER": true,
	"PARTITION": true, "TRUE": true, "FALSE": true, "CROSS": true,
	"ROLLUP": true, "CUBE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(text), pos: start})
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

var twoCharSymbols = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexSymbol() error {
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[l.pos : l.pos+2], pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
}
