package sql

import (
	"fmt"
	"strconv"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
)

// bindExpr binds a scalar AST expression. replaced maps aggregate/window
// calls (by AST node identity) to their pre-computed output columns.
func (b *binder) bindExpr(e Expr, sc *scope, replaced map[*FuncCall]*md.ColRef) (ops.ScalarExpr, error) {
	switch x := e.(type) {
	case *ColName:
		ref, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return ops.NewIdent(ref.ID, ref.Type), nil

	case *NumLit:
		if x.IsInt {
			v, err := strconv.ParseInt(x.Text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad integer %q", x.Text)
			}
			return ops.NewConst(base.NewInt(v)), nil
		}
		v, err := strconv.ParseFloat(x.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", x.Text)
		}
		return ops.NewConst(base.NewFloat(v)), nil

	case *StrLit:
		return ops.NewConst(base.NewString(x.Val)), nil

	case *BoolLit:
		return ops.NewConst(base.NewBool(x.Val)), nil

	case *NullLit:
		return ops.NewConst(base.Null), nil

	case *BinExpr:
		return b.bindBin(x, sc, replaced)

	case *UnaryExpr:
		arg, err := b.bindExpr(x.Arg, sc, replaced)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			// NOT over a quantified subquery flips its kind so the
			// normalizer can unnest it into an anti join.
			if sq, ok := arg.(*ops.Subquery); ok {
				switch sq.Kind {
				case ops.SubExists:
					sq.Kind = ops.SubNotExists
					return sq, nil
				case ops.SubNotExists:
					sq.Kind = ops.SubExists
					return sq, nil
				case ops.SubIn:
					sq.Kind = ops.SubNotIn
					return sq, nil
				case ops.SubNotIn:
					sq.Kind = ops.SubIn
					return sq, nil
				case ops.SubScalar:
					// NOT of a scalar subquery stays a boolean NOT below.
				}
			}
			return ops.Not(arg), nil
		case "-":
			// A negated numeric literal is a negative constant, not (0 - x):
			// the plan cache's parameter extraction must see -5 as one
			// literal so it round-trips bind → vector → rebind identically.
			if c, ok := arg.(*ops.Const); ok {
				switch c.Val.Kind {
				case base.DInt:
					return ops.NewConst(base.NewInt(-c.Val.I)), nil
				case base.DFloat:
					return ops.NewConst(base.NewFloat(-c.Val.F)), nil
				}
			}
			return &ops.BinOp{Op: "-", L: ops.NewConst(base.NewInt(0)), R: arg}, nil
		default:
			return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)
		}

	case *FuncCall:
		if ref, ok := replaced[x]; ok {
			return ops.NewIdent(ref.ID, ref.Type), nil
		}
		if aggNames[x.Name] && x.Over == nil {
			return nil, fmt.Errorf("sql: aggregate %q not allowed here", x.Name)
		}
		args := make([]ops.ScalarExpr, len(x.Args))
		for i, a := range x.Args {
			sa, err := b.bindExpr(a, sc, replaced)
			if err != nil {
				return nil, err
			}
			args[i] = sa
		}
		return &ops.Func{Name: x.Name, Args: args}, nil

	case *CaseExpr:
		out := &ops.Case{}
		for _, w := range x.Whens {
			when, err := b.bindExpr(w.When, sc, replaced)
			if err != nil {
				return nil, err
			}
			then, err := b.bindExpr(w.Then, sc, replaced)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, ops.CaseWhen{When: when, Then: then})
		}
		if x.Else != nil {
			els, err := b.bindExpr(x.Else, sc, replaced)
			if err != nil {
				return nil, err
			}
			out.Else = els
		}
		return out, nil

	case *IsNullExpr:
		arg, err := b.bindExpr(x.Arg, sc, replaced)
		if err != nil {
			return nil, err
		}
		return &ops.IsNull{Arg: arg, Negated: x.Negated}, nil

	case *BetweenExpr:
		arg, err := b.bindExpr(x.Arg, sc, replaced)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(x.Lo, sc, replaced)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(x.Hi, sc, replaced)
		if err != nil {
			return nil, err
		}
		rng := ops.And(ops.NewCmp(ops.CmpGe, arg, lo), ops.NewCmp(ops.CmpLe, arg, hi))
		if x.Negated {
			return ops.Not(rng), nil
		}
		return rng, nil

	case *InExpr:
		arg, err := b.bindExpr(x.Arg, sc, replaced)
		if err != nil {
			return nil, err
		}
		if x.Sub == nil {
			vals := make([]ops.ScalarExpr, len(x.List))
			for i, v := range x.List {
				sv, err := b.bindExpr(v, sc, replaced)
				if err != nil {
					return nil, err
				}
				vals[i] = sv
			}
			return &ops.InList{Arg: arg, Vals: vals, Negated: x.Negated}, nil
		}
		tree, sub, _, err := b.bindStatement(x.Sub, sc)
		if err != nil {
			return nil, err
		}
		if len(sub.cols) != 1 {
			return nil, fmt.Errorf("sql: IN subquery must return one column")
		}
		kind := ops.SubIn
		if x.Negated {
			kind = ops.SubNotIn
		}
		return &ops.Subquery{Kind: kind, Input: tree, OutCol: sub.cols[0].ref.ID, Test: arg}, nil

	case *ExistsExpr:
		tree, _, _, err := b.bindStatement(x.Sub, sc)
		if err != nil {
			return nil, err
		}
		kind := ops.SubExists
		if x.Negated {
			kind = ops.SubNotExists
		}
		return &ops.Subquery{Kind: kind, Input: tree}, nil

	case *SubqueryExpr:
		tree, sub, _, err := b.bindStatement(x.Sub, sc)
		if err != nil {
			return nil, err
		}
		if len(sub.cols) != 1 {
			return nil, fmt.Errorf("sql: scalar subquery must return one column")
		}
		return &ops.Subquery{Kind: ops.SubScalar, Input: tree, OutCol: sub.cols[0].ref.ID}, nil

	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

var cmpKinds = map[string]ops.CmpOp{
	"=": ops.CmpEq, "<>": ops.CmpNe, "<": ops.CmpLt,
	"<=": ops.CmpLe, ">": ops.CmpGt, ">=": ops.CmpGe,
}

func (b *binder) bindBin(x *BinExpr, sc *scope, replaced map[*FuncCall]*md.ColRef) (ops.ScalarExpr, error) {
	l, err := b.bindExpr(x.L, sc, replaced)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(x.R, sc, replaced)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "and":
		return ops.And(l, r), nil
	case "or":
		return ops.Or(l, r), nil
	case "+", "-", "*", "/", "%":
		return &ops.BinOp{Op: x.Op, L: l, R: r}, nil
	default:
		if op, ok := cmpKinds[x.Op]; ok {
			return ops.NewCmp(op, l, r), nil
		}
		return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
	}
}

// scalarType infers a rough result type for computed columns.
func scalarType(e ops.ScalarExpr, f *md.ColumnFactory) base.TypeID {
	switch x := e.(type) {
	case *ops.Ident:
		if r := f.Lookup(x.Col); r != nil {
			return r.Type
		}
		return base.TUnknown
	case *ops.Const:
		switch x.Val.Kind {
		case base.DInt:
			return base.TInt
		case base.DFloat:
			return base.TFloat
		case base.DString:
			return base.TString
		case base.DBool:
			return base.TBool
		}
		return base.TUnknown
	case *ops.BinOp:
		lt, rt := scalarType(x.L, f), scalarType(x.R, f)
		if x.Op == "/" || lt == base.TFloat || rt == base.TFloat {
			return base.TFloat
		}
		return base.TInt
	case *ops.Cmp, *ops.BoolOp, *ops.IsNull, *ops.InList:
		return base.TBool
	case *ops.Case:
		if len(x.Whens) > 0 {
			return scalarType(x.Whens[0].Then, f)
		}
		return base.TUnknown
	case *ops.Func:
		switch x.Name {
		case "like":
			return base.TBool
		case "substr":
			return base.TString
		}
		if len(x.Args) > 0 {
			return scalarType(x.Args[0], f)
		}
		return base.TUnknown
	default:
		return base.TUnknown
	}
}
