package sql

import (
	"fmt"
	"strconv"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

// Bind parses and binds a SQL statement into a core.Query ready for
// optimization: names are resolved to column references, tables to metadata
// relations, aggregates and window functions to operator parameters.
func Bind(src string, acc *md.Accessor, f *md.ColumnFactory) (*core.Query, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	b := &binder{acc: acc, f: f, ctes: map[string]*cteDef{}}
	tree, sc, order, err := b.bindStatement(stmt, nil)
	if err != nil {
		return nil, err
	}
	q := &core.Query{
		Tree:     tree,
		Order:    order,
		Factory:  f,
		Accessor: acc,
	}
	for _, c := range sc.cols {
		q.OutCols = append(q.OutCols, c.ref.ID)
		q.OutNames = append(q.OutNames, c.name)
	}
	return q, nil
}

type binder struct {
	acc    *md.Accessor
	f      *md.ColumnFactory
	ctes   map[string]*cteDef
	cteSeq int
}

type cteDef struct {
	id    int
	cols  []*md.ColRef // producer output columns
	names []string
}

// scope tracks visible columns; parents provide correlation.
type scope struct {
	parent *scope
	cols   []scopeCol
}

type scopeCol struct {
	table string
	name  string
	ref   *md.ColRef
}

func (s *scope) add(table, name string, ref *md.ColRef) {
	s.cols = append(s.cols, scopeCol{table: table, name: name, ref: ref})
}

// resolve finds a column by (optional) table qualifier and name, searching
// outer scopes for correlation.
func (s *scope) resolve(table, name string) (*md.ColRef, error) {
	for sc := s; sc != nil; sc = sc.parent {
		var found *md.ColRef
		n := 0
		for _, c := range sc.cols {
			if c.name == name && (table == "" || c.table == table) {
				found = c.ref
				n++
			}
		}
		if n > 1 {
			return nil, fmt.Errorf("sql: ambiguous column %q", name)
		}
		if n == 1 {
			return found, nil
		}
	}
	if table != "" {
		return nil, fmt.Errorf("sql: unknown column %s.%s", table, name)
	}
	return nil, fmt.Errorf("sql: unknown column %q", name)
}

// ---------------------------------------------------------------------------
// Statements and set operations

func (b *binder) bindStatement(stmt *Statement, outer *scope) (*ops.Expr, *scope, props.OrderSpec, error) {
	// Bind CTE producers; consumers are resolved by name in FROM clauses.
	type boundCTE struct {
		def  *cteDef
		tree *ops.Expr
	}
	var anchors []boundCTE
	saved := make(map[string]*cteDef)
	for _, cte := range stmt.CTEs {
		tree, sc, _, err := b.bindStatement(cte.Stmt, outer)
		if err != nil {
			return nil, nil, props.OrderSpec{}, err
		}
		def := &cteDef{id: b.cteSeq}
		b.cteSeq++
		for i, c := range sc.cols {
			name := c.name
			if i < len(cte.Cols) {
				name = cte.Cols[i]
			}
			def.cols = append(def.cols, c.ref)
			def.names = append(def.names, name)
		}
		if prev, ok := b.ctes[cte.Name]; ok {
			saved[cte.Name] = prev
		} else {
			saved[cte.Name] = nil
		}
		b.ctes[cte.Name] = def
		anchors = append(anchors, boundCTE{def: def, tree: tree})
	}
	defer func() {
		for name, prev := range saved {
			if prev == nil {
				delete(b.ctes, name)
			} else {
				b.ctes[name] = prev
			}
		}
	}()

	body, sc, err := b.bindSetExpr(stmt.Body, outer)
	if err != nil {
		return nil, nil, props.OrderSpec{}, err
	}

	order, err := b.bindOrder(stmt.Order, sc)
	if err != nil {
		return nil, nil, props.OrderSpec{}, err
	}

	if stmt.Limit != nil || stmt.Offset > 0 {
		l := &ops.Limit{Order: order, Offset: stmt.Offset}
		if stmt.Limit != nil {
			l.HasCount = true
			l.Count = *stmt.Limit
		}
		body = ops.NewExpr(l, body)
	}

	// Wrap CTE anchors outermost-first so producers dominate their body.
	for i := len(anchors) - 1; i >= 0; i-- {
		a := anchors[i]
		body = ops.NewExpr(&ops.CTEAnchor{ID: a.def.id, Cols: a.def.cols}, a.tree, body)
	}
	return body, sc, order, nil
}

func (b *binder) bindOrder(items []OrderItem, sc *scope) (props.OrderSpec, error) {
	var out props.OrderSpec
	for _, it := range items {
		var ref *md.ColRef
		switch e := it.Expr.(type) {
		case *NumLit:
			pos, err := strconv.Atoi(e.Text)
			if err != nil || pos < 1 || pos > len(sc.cols) {
				return out, fmt.Errorf("sql: ORDER BY position %q out of range", e.Text)
			}
			ref = sc.cols[pos-1].ref
		case *ColName:
			r, err := sc.resolve(e.Table, e.Name)
			if err != nil {
				return out, err
			}
			ref = r
		default:
			return out, fmt.Errorf("sql: ORDER BY supports columns and positions only")
		}
		out.Items = append(out.Items, props.OrderItem{Col: ref.ID, Desc: it.Desc})
	}
	return out, nil
}

func (b *binder) bindSetExpr(se SetExpr, outer *scope) (*ops.Expr, *scope, error) {
	switch s := se.(type) {
	case *SelectBlock:
		return b.bindSelect(s, outer)
	case *SetOp:
		return b.bindSetOp(s, outer)
	default:
		return nil, nil, fmt.Errorf("sql: unsupported set expression %T", se)
	}
}

func (b *binder) bindSetOp(s *SetOp, outer *scope) (*ops.Expr, *scope, error) {
	lt, ls, err := b.bindSetExpr(s.L, outer)
	if err != nil {
		return nil, nil, err
	}
	rt, rs, err := b.bindSetExpr(s.R, outer)
	if err != nil {
		return nil, nil, err
	}
	if len(ls.cols) != len(rs.cols) {
		return nil, nil, fmt.Errorf("sql: set operation arity mismatch: %d vs %d", len(ls.cols), len(rs.cols))
	}
	switch s.Op {
	case "union all":
		out := &scope{}
		u := &ops.UnionAll{InCols: make([][]base.ColID, 2)}
		for i, c := range ls.cols {
			ref := b.f.NewComputedColumn(c.name, c.ref.Type)
			u.OutCols = append(u.OutCols, ref)
			u.InCols[0] = append(u.InCols[0], c.ref.ID)
			u.InCols[1] = append(u.InCols[1], rs.cols[i].ref.ID)
			out.add("", c.name, ref)
		}
		return ops.NewExpr(u, lt, rt), out, nil
	case "intersect", "except":
		// Desugared: DISTINCT(L) ⋉/▷ R on all columns equal.
		jt := ops.SemiJoin
		if s.Op == "except" {
			jt = ops.AntiJoin
		}
		var groupCols []base.ColID
		var preds []ops.ScalarExpr
		for i, c := range ls.cols {
			groupCols = append(groupCols, c.ref.ID)
			preds = append(preds, ops.Eq(
				ops.NewIdent(c.ref.ID, c.ref.Type),
				ops.NewIdent(rs.cols[i].ref.ID, rs.cols[i].ref.Type)))
		}
		distinct := ops.NewExpr(&ops.GbAgg{GroupCols: groupCols}, lt)
		join := ops.NewExpr(&ops.Join{Type: jt, Pred: ops.And(preds...)}, distinct, rt)
		return join, ls, nil
	default:
		return nil, nil, fmt.Errorf("sql: unsupported set operation %q", s.Op)
	}
}
