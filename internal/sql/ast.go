package sql

// The AST mirrors the supported SQL surface. It is deliberately small: the
// binder immediately turns it into the optimizer's logical algebra.

// Statement is a full query: optional WITH list plus a set-operation tree of
// select blocks with optional ORDER BY / LIMIT on the outermost level.
type Statement struct {
	CTEs []CTE
	Body SetExpr
	// Order/Limit apply to the whole set expression.
	Order  []OrderItem
	Limit  *int64
	Offset int64
}

// CTE is one WITH entry.
type CTE struct {
	Name string
	Cols []string // optional column aliases
	Stmt *Statement
}

// SetExpr is a select block or a set operation over two of them.
type SetExpr interface{ isSetExpr() }

// SetOp combines two set expressions.
type SetOp struct {
	Op   string // "union all", "intersect", "except"
	L, R SetExpr
}

func (*SetOp) isSetExpr() {}

// SelectBlock is one SELECT ... FROM ... query block.
type SelectBlock struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*SelectBlock) isSetExpr() {}

// SelectItem is one output expression (Star for "*").
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY element (expression or 1-based position).
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is a FROM item.
type TableExpr interface{ isTableExpr() }

// TableRef names a base table or CTE.
type TableRef struct {
	Name  string
	Alias string
}

func (*TableRef) isTableExpr() {}

// SubqueryRef is a derived table.
type SubqueryRef struct {
	Stmt  *Statement
	Alias string
}

func (*SubqueryRef) isTableExpr() {}

// JoinExpr is an explicit JOIN ... ON.
type JoinExpr struct {
	Kind string // "inner", "left", "cross"
	L, R TableExpr
	On   Expr
}

func (*JoinExpr) isTableExpr() {}

// Expr is a scalar AST node.
type Expr interface{ isExpr() }

// ColName references a column, optionally qualified.
type ColName struct {
	Table string
	Name  string
}

func (*ColName) isExpr() {}

// NumLit is a numeric literal.
type NumLit struct {
	Text  string
	IsInt bool
}

func (*NumLit) isExpr() {}

// StrLit is a string literal.
type StrLit struct{ Val string }

func (*StrLit) isExpr() {}

// BoolLit is TRUE/FALSE.
type BoolLit struct{ Val bool }

func (*BoolLit) isExpr() {}

// NullLit is NULL.
type NullLit struct{}

func (*NullLit) isExpr() {}

// BinExpr covers arithmetic, comparison and AND/OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) isExpr() {}

// UnaryExpr covers NOT and unary minus.
type UnaryExpr struct {
	Op  string
	Arg Expr
}

func (*UnaryExpr) isExpr() {}

// FuncCall is a function or aggregate call; Star marks count(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool
	// Over, when non-nil, marks a window function.
	Over *WindowDef
}

func (*FuncCall) isExpr() {}

// WindowDef is an OVER clause.
type WindowDef struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []struct {
		When Expr
		Then Expr
	}
	Else Expr
}

func (*CaseExpr) isExpr() {}

// IsNullExpr is IS [NOT] NULL.
type IsNullExpr struct {
	Arg     Expr
	Negated bool
}

func (*IsNullExpr) isExpr() {}

// InExpr is `expr [NOT] IN (list)` or `expr [NOT] IN (subquery)`.
type InExpr struct {
	Arg     Expr
	List    []Expr
	Sub     *Statement
	Negated bool
}

func (*InExpr) isExpr() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub     *Statement
	Negated bool
}

func (*ExistsExpr) isExpr() {}

// SubqueryExpr is a scalar subquery used as a value.
type SubqueryExpr struct{ Sub *Statement }

func (*SubqueryExpr) isExpr() {}

// BetweenExpr is `expr [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	Arg     Expr
	Lo, Hi  Expr
	Negated bool
}

func (*BetweenExpr) isExpr() {}
