// Package optgen implements the operator/rule definition language and the
// code generators behind cmd/optgen (ROADMAP: "Optgen-style rule/operator
// DSL with code generation"). The language is a small declarative surface in
// the spirit of CockroachDB's Optgen: defs/*.opt files declare every
// operator (name, kind, children, fields with identity markers) and every
// transformation rule (name, kind, match pattern, optional hand-written
// check predicate), and the generators emit the boilerplate legs the rest of
// the optimizer needs — operator structs with fingerprint methods
// (internal/ops), rule skeletons with dense compile-time IDs
// (internal/xform), DXL parameter serialization (internal/dxl), the
// cost/stats/engine dispatch tables, and docs/opmatrix.md.
//
// Grammar (line oriented; '#' starts a doc comment that attaches to the next
// declaration):
//
//	[Logical|Physical|Enforcer|Scalar, flags...] define Name {
//	    children N            # -1 = variadic
//	    Field Type [noident] [dxl=AttrName]
//	}
//
//	[Exploration|Implementation] rule Name {
//	    match OpName
//	    check                 # hand-written matchName predicate exists
//	}
//
// Operator flags: CustomName (Name() stays hand-written), PtrIdentity
// (ParamEqual compares pointers), Hand (declaration only — the struct and
// its methods stay hand-written; used by the scalar expression types).
// Field option noident excludes a field from ParamHash/ParamEqual and from
// DXL parameter serialization (derived or display-only state); dxl= renames
// the serialized attribute.
//
// Everything the generators emit is deterministic: declaration order is
// preserved, files are read in sorted order, and output is gofmt-formatted
// byte-identically (the check.sh drift gate depends on this).
package optgen

import "fmt"

// Catalog is the parsed content of a defs directory.
type Catalog struct {
	Ops   []*OpDef
	Rules []*RuleDef
}

// OpDef is one operator declaration.
type OpDef struct {
	Name        string
	Display     string // Name() return value when it differs from Name ("name X" directive)
	Kind        string // logical | physical | enforcer | scalar
	Doc         []string
	Arity       int
	CustomName  bool
	PtrIdentity bool
	Hand        bool
	Fields      []*FieldDef
	File        string
	Line        int
}

// DisplayName is the operator's Name() return value.
func (o *OpDef) DisplayName() string {
	if o.Display != "" {
		return o.Display
	}
	return o.Name
}

// FieldDef is one operator field.
type FieldDef struct {
	Name    string
	Type    string
	DXLName string // serialized attribute name; defaults per type strategy
	NoIdent bool
	Line    int
}

// RuleDef is one transformation rule declaration.
type RuleDef struct {
	Name  string
	Kind  string // exploration | implementation
	Doc   []string
	Match string // operator the pattern matches
	Check bool   // a hand-written match<Name> predicate gates Matches
	File  string
	Line  int
}

// Op returns the operator declaration with the given name, or nil.
func (c *Catalog) Op(name string) *OpDef {
	for _, o := range c.Ops {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// IdentityFields returns the fields participating in ParamHash/ParamEqual
// and DXL parameter serialization.
func (o *OpDef) IdentityFields() []*FieldDef {
	out := make([]*FieldDef, 0, len(o.Fields))
	for _, f := range o.Fields {
		if !f.NoIdent {
			out = append(out, f)
		}
	}
	return out
}

// typeStrategy describes how one DSL field type maps onto Go: the struct
// field type, and whether an identity field of this type is representable in
// fingerprints and DXL parameters.
type typeStrategy struct {
	goType       string
	identityOK   bool   // may appear as an identity field
	defaultDXL   string // "" = field name; "+Oid" = field name with Oid suffix
	importsBase  bool
	importsMD    bool
	importsProps bool
}

// typeTable maps DSL type names to strategies. Hash/equal/serialize snippets
// are generated in gen_ops.go / gen_dxl.go from the same keys.
var typeTable = map[string]typeStrategy{
	"String":       {goType: "string", identityOK: true},
	"Bool":         {goType: "bool", identityOK: true},
	"Int":          {goType: "int", identityOK: true},
	"Int64":        {goType: "int64", identityOK: true},
	"Float":        {goType: "float64", identityOK: false},
	"JoinType":     {goType: "JoinType", identityOK: true},
	"AggMode":      {goType: "AggMode", identityOK: true},
	"SubqueryKind": {goType: "SubqueryKind", identityOK: true},
	"Scalar":       {goType: "ScalarExpr", identityOK: true},
	"ScalarList":   {goType: "[]ScalarExpr", identityOK: true},
	"Relation":     {goType: "*md.Relation", identityOK: true, defaultDXL: "+Oid", importsMD: true},
	"Index":        {goType: "*md.Index", identityOK: true, defaultDXL: "+Oid", importsMD: true},
	"ColRefs":      {goType: "[]*md.ColRef", identityOK: true, importsMD: true},
	"ColID":        {goType: "base.ColID", identityOK: true, importsBase: true},
	"ColIDs":       {goType: "[]base.ColID", identityOK: true, importsBase: true},
	"ColIDLists":   {goType: "[][]base.ColID", identityOK: true, importsBase: true},
	"IntList":      {goType: "[]int", identityOK: true},
	"OrderSpec":    {goType: "props.OrderSpec", identityOK: true, importsProps: true},
	"ProjElems":    {goType: "[]ProjElem", identityOK: true},
	"AggElems":     {goType: "[]AggElem", identityOK: true},
	"WinElems":     {goType: "[]WinElem", identityOK: true},
	"ColIDMap":     {goType: "map[base.ColID]base.ColID", identityOK: false, importsBase: true},
	"PlanExpr":     {goType: "*Expr", identityOK: false},
}

// dxlAttr returns the serialized attribute name of an identity field.
func dxlAttr(f *FieldDef) string {
	if f.DXLName != "" {
		return f.DXLName
	}
	st := typeTable[f.Type]
	if st.defaultDXL == "+Oid" {
		return f.Name + "Oid"
	}
	return f.Name
}

// validate checks catalog-level invariants the generators rely on.
func (c *Catalog) validate() error {
	opNames := make(map[string]*OpDef)
	for _, o := range c.Ops {
		if opNames[o.Name] != nil {
			return fmt.Errorf("%s:%d: operator %s redeclared", o.File, o.Line, o.Name)
		}
		opNames[o.Name] = o
		for _, f := range o.Fields {
			st, ok := typeTable[f.Type]
			if !ok {
				return fmt.Errorf("%s:%d: field %s.%s has unknown type %s", o.File, f.Line, o.Name, f.Name, f.Type)
			}
			if !f.NoIdent && !st.identityOK {
				return fmt.Errorf("%s:%d: field %s.%s: type %s cannot be an identity field (mark it noident)",
					o.File, f.Line, o.Name, f.Name, f.Type)
			}
		}
	}
	ruleNames := make(map[string]bool)
	for _, r := range c.Rules {
		if ruleNames[r.Name] {
			return fmt.Errorf("%s:%d: rule %s redeclared", r.File, r.Line, r.Name)
		}
		ruleNames[r.Name] = true
		op := opNames[r.Match]
		if op == nil {
			return fmt.Errorf("%s:%d: rule %s matches undeclared operator %s", r.File, r.Line, r.Name, r.Match)
		}
		if op.Kind != KindLogical {
			return fmt.Errorf("%s:%d: rule %s matches %s operator %s (rules fire on logical expressions)",
				r.File, r.Line, r.Name, op.Kind, r.Match)
		}
	}
	return nil
}

// Operator kinds; values match internal/analysis (opclosure).
const (
	KindLogical  = "logical"
	KindPhysical = "physical"
	KindEnforcer = "enforcer"
	KindScalar   = "scalar"
)

// Rule kinds.
const (
	KindExploration    = "exploration"
	KindImplementation = "implementation"
)
