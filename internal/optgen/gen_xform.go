package optgen

// genXform emits internal/xform/rules.gen.go: the dense compile-time rule ID
// const block (satellite of ISSUE 7 — SetRuleSet resolves IDs without
// touching the runtime registry's mutex), the name<->ID tables, one rule
// struct per declaration whose Matches does the type assertion (plus the
// hand-written match predicate when the declaration carries `check`) and
// whose Apply delegates to the hand-written apply function, and the
// DefaultRules set in declaration order.
func genXform(cat *Catalog) ([]byte, error) {
	var g gen
	g.buf.WriteString(header)
	g.p("package xform")
	g.p("")
	g.p("import (")
	g.p("\t%q", "orca/internal/memo")
	g.p("")
	g.p("\t%q", "orca/internal/ops")
	g.p(")")
	g.p("")

	// Dense IDs in declaration order. These index the Memo's per-expression
	// applied-rule bitsets and form rule-set epoch signatures; keeping them
	// compile-time constants removes the registry mutex from SetRuleSet's
	// hot path.
	g.p("// Generated dense rule IDs, in defs/ declaration order. Dynamically")
	g.p("// registered rules (tests, extensions) get IDs from")
	g.p("// NumGeneratedRuleIDs upward via the runtime registry.")
	g.p("const (")
	for i, r := range cat.Rules {
		if i == 0 {
			g.p("\tRuleID%s = iota", r.Name)
		} else {
			g.p("\tRuleID%s", r.Name)
		}
	}
	g.p("")
	g.p("\t// NumGeneratedRuleIDs is the number of compile-time rule IDs.")
	g.p("\tNumGeneratedRuleIDs")
	g.p(")")
	g.p("")

	g.p("// generatedRuleNames maps generated IDs back to rule names.")
	g.p("var generatedRuleNames = [NumGeneratedRuleIDs]string{")
	for _, r := range cat.Rules {
		g.p("\tRuleID%s: %q,", r.Name, r.Name)
	}
	g.p("}")
	g.p("")

	g.p("// generatedRuleIDs resolves generated rule names to their dense IDs.")
	g.p("// The map is never mutated after package init, so lookups are safe")
	g.p("// without locking.")
	g.p("var generatedRuleIDs = map[string]int{")
	for _, r := range cat.Rules {
		g.p("\t%q: RuleID%s,", r.Name, r.Name)
	}
	g.p("}")
	g.p("")

	for _, r := range cat.Rules {
		genRuleDef(&g, cat, r)
	}

	g.p("// DefaultRules returns the generated rule set in defs/ declaration")
	g.p("// order: exploration rules first, then implementation rules.")
	g.p("func DefaultRules() []Rule {")
	g.p("\treturn []Rule{")
	for _, r := range cat.Rules {
		if r.Kind == KindExploration {
			g.p("\t\t&%s{},", r.Name)
		}
	}
	for _, r := range cat.Rules {
		if r.Kind == KindImplementation {
			g.p("\t\t&%s{},", r.Name)
		}
	}
	g.p("\t}")
	g.p("}")
	return g.gofmt()
}

func genRuleDef(g *gen, cat *Catalog, r *RuleDef) {
	if len(r.Doc) > 0 {
		g.doc(r.Doc)
	} else {
		g.p("// %s is a generated %s rule matching %s.", r.Name, r.Kind, r.Match)
	}
	g.p("type %s struct{}", r.Name)
	g.p("")
	g.p("// Name implements Rule.")
	g.p("func (*%s) Name() string { return %q }", r.Name, r.Name)
	g.p("")
	g.p("// Kind implements Rule.")
	kind := "Exploration"
	if r.Kind == KindImplementation {
		kind = "Implementation"
	}
	g.p("func (*%s) Kind() Kind { return %s }", r.Name, kind)
	g.p("")
	g.p("// Matches implements Rule.")
	g.p("func (*%s) Matches(ge *memo.GroupExpr) bool {", r.Name)
	if r.Check {
		g.p("\top, ok := ge.Op.(*ops.%s)", r.Match)
		g.p("\treturn ok && match%s(op, ge)", r.Name)
	} else {
		g.p("\t_, ok := ge.Op.(*ops.%s)", r.Match)
		g.p("\treturn ok")
	}
	g.p("}")
	g.p("")
	g.p("// Apply implements Rule; the transformation body is hand-written.")
	g.p("func (*%s) Apply(ctx *Context, ge *memo.GroupExpr) error {", r.Name)
	g.p("\treturn apply%s(ctx, ge)", r.Name)
	g.p("}")
	g.p("")
}
