package optgen

import "fmt"

// genDXL emits internal/dxl/physparams.gen.go: the serializePhysParams leg
// for every physical and enforcer operator, rendering exactly the identity
// fields (the ones in ParamHash/ParamEqual) so that param-equal plans render
// identically — PlanFingerprint is the plan-equality oracle for AMPERe
// replay. Element/attribute names come from the dxl= option in defs/.
func genDXL(cat *Catalog) ([]byte, error) {
	var g gen
	g.buf.WriteString(header)
	g.p("package dxl")
	g.p("")
	g.p("import %q", "orca/internal/ops")
	g.p("")
	g.p("// serializePhysParams renders each operator's identity parameters as")
	g.p("// structured attributes and children, one case per physical and")
	g.p("// enforcer operator, mirroring ParamHash: noident fields (derived or")
	g.p("// display-only state) are excluded.")
	g.p("func serializePhysParams(n *Node, op ops.Operator) {")
	g.p("\tswitch x := op.(type) {")
	var bare []string
	for _, o := range opsOfKind(cat, KindPhysical, KindEnforcer) {
		if len(o.IdentityFields()) == 0 {
			bare = append(bare, "*ops."+o.Name)
			continue
		}
		g.p("\tcase *ops.%s:", o.Name)
		for _, f := range o.IdentityFields() {
			lines, err := dxlStmts(f)
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %v", o.Name, f.Name, err)
			}
			for _, l := range lines {
				g.p("\t\t%s", l)
			}
		}
	}
	if len(bare) > 0 {
		g.p("\tcase %s:", joinTypes(bare))
		g.p("\t\t// No parameters beyond the delivered properties already on")
		g.p("\t\t// the node.")
	}
	g.p("\tdefault:")
	g.p("\t\t// Logical and scalar operators never appear in a finished")
	g.p("\t\t// physical plan; the Params hash attribute still covers any")
	g.p("\t\t// future operator until it is declared in defs/ (opclosure")
	g.p("\t\t// enforces that it is).")
	g.p("\t}")
	g.p("}")
	return g.gofmt()
}

func joinTypes(ts []string) string {
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += ", "
		}
		out += t
	}
	return out
}

// dxlStmts emits the serialization statements for one identity field.
func dxlStmts(f *FieldDef) ([]string, error) {
	attr := dxlAttr(f)
	x := "x." + f.Name
	switch f.Type {
	case "String":
		return []string{fmt.Sprintf("n.Set(%q, %s)", attr, x)}, nil
	case "Bool":
		return []string{fmt.Sprintf("if %s {\n\t\t\tn.Set(%q, \"true\")\n\t\t}", x, attr)}, nil
	case "Int", "Int64", "ColID":
		return []string{fmt.Sprintf("n.Setf(%q, \"%%d\", %s)", attr, x)}, nil
	case "JoinType", "AggMode", "SubqueryKind":
		return []string{fmt.Sprintf("n.Set(%q, %s.String())", attr, x)}, nil
	case "Scalar":
		return []string{fmt.Sprintf("if %s != nil {\n\t\t\tn.Add(El(%q).Add(SerializeScalar(%s)))\n\t\t}", x, attr, x)}, nil
	case "Relation":
		return []string{fmt.Sprintf("n.Setf(%q, \"%%d\", %s.Mdid.OID)", attr, x)}, nil
	case "Index":
		return []string{fmt.Sprintf("n.Setf(%q, \"%%d\", %s.Mdid.OID).Set(%q, %s.Name)", attr, x, f.Name, x)}, nil
	case "ColRefs":
		return []string{fmt.Sprintf("n.Add(serializeColRefs(%q, %s))", attr, x)}, nil
	case "ColIDs":
		return []string{fmt.Sprintf("n.Set(%q, colIDList(%s))", attr, x)}, nil
	case "ColIDLists":
		return []string{fmt.Sprintf("for _, cols := range %s {\n\t\t\tn.Add(El(%q).Set(\"Cols\", colIDList(cols)))\n\t\t}", x, attr)}, nil
	case "IntList":
		return []string{fmt.Sprintf("if len(%s) > 0 {\n\t\t\tn.Set(%q, intList(%s))\n\t\t}", x, attr, x)}, nil
	case "OrderSpec":
		return []string{fmt.Sprintf("n.Add(serializeOrder(%q, %s))", attr, x)}, nil
	case "ProjElems":
		return []string{fmt.Sprintf("for _, e := range %s {\n\t\t\tn.Add(serializeProjElem(e))\n\t\t}", x)}, nil
	case "AggElems":
		return []string{fmt.Sprintf("for _, a := range %s {\n\t\t\tn.Add(serializeAggElem(a))\n\t\t}", x)}, nil
	case "WinElems":
		return []string{fmt.Sprintf("for _, w := range %s {\n\t\t\tn.Add(serializeWinElem(w))\n\t\t}", x)}, nil
	}
	return nil, fmt.Errorf("no DXL strategy for type %s", f.Type)
}
