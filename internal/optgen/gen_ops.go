package optgen

import (
	"fmt"
	"strings"
)

// genOps emits internal/ops/ops.gen.go: the operator struct for every
// non-Hand definition plus its Name/Arity/ParamHash/ParamEqual methods. The
// semantic halves — OutputCols, Describe, ChildReqs, Derive, constructors —
// stay hand-written in the ops package.
func genOps(cat *Catalog) ([]byte, error) {
	var g gen
	g.buf.WriteString(header)
	g.p("package ops")
	g.p("")
	imports := opsImports(cat)
	if len(imports) > 0 {
		g.p("import (")
		for _, im := range imports {
			g.p("\t%q", im)
		}
		g.p(")")
		g.p("")
	}
	for _, o := range cat.Ops {
		if o.Hand {
			continue
		}
		if err := genOpDef(&g, o); err != nil {
			return nil, err
		}
	}
	return g.gofmt()
}

// opsImports computes the import list from the field types in use.
func opsImports(cat *Catalog) []string {
	var base, md, props bool
	for _, o := range cat.Ops {
		if o.Hand {
			continue
		}
		for _, f := range o.Fields {
			st := typeTable[f.Type]
			base = base || st.importsBase
			md = md || st.importsMD
			props = props || st.importsProps
		}
	}
	var out []string
	if base {
		out = append(out, "orca/internal/base")
	}
	if md {
		out = append(out, "orca/internal/md")
	}
	if props {
		out = append(out, "orca/internal/props")
	}
	return out
}

func kindBase(kind string) string {
	switch kind {
	case KindLogical:
		return "logicalBase"
	case KindPhysical:
		return "physicalBase"
	case KindEnforcer:
		return "enforcerBase"
	}
	return ""
}

func genOpDef(g *gen, o *OpDef) error {
	if len(o.Doc) > 0 {
		g.doc(o.Doc)
	} else {
		g.p("// %s is the %s %s operator.", o.Name, o.DisplayName(), o.Kind)
	}
	g.p("type %s struct {", o.Name)
	g.p("\t%s", kindBase(o.Kind))
	if len(o.Fields) > 0 {
		g.p("")
		for _, f := range o.Fields {
			g.p("\t%s %s", f.Name, typeTable[f.Type].goType)
		}
	}
	g.p("}")
	g.p("")

	if !o.CustomName {
		g.p("// Name implements Operator.")
		g.p("func (*%s) Name() string { return %q }", o.Name, o.DisplayName())
		g.p("")
	}
	g.p("// Arity implements Operator.")
	g.p("func (*%s) Arity() int { return %d }", o.Name, o.Arity)
	g.p("")

	idFields := o.IdentityFields()
	seed := strings.ToLower(o.Name)
	g.p("// ParamHash implements Operator.")
	if len(idFields) == 0 {
		g.p("func (*%s) ParamHash() uint64 {", o.Name)
		g.p("\treturn hashString(fnvOffset, %q)", seed)
		g.p("}")
	} else {
		g.p("func (x *%s) ParamHash() uint64 {", o.Name)
		g.p("\th := hashString(fnvOffset, %q)", seed)
		for _, f := range idFields {
			line, err := hashStmt(f)
			if err != nil {
				return fmt.Errorf("%s.%s: %v", o.Name, f.Name, err)
			}
			g.p("\t%s", line)
		}
		g.p("\treturn h")
		g.p("}")
	}
	g.p("")

	g.p("// ParamEqual implements Operator.")
	switch {
	case o.PtrIdentity:
		// Identity is pointer identity: the operator embeds out-of-line
		// state (a bound subplan) that structural comparison cannot cover.
		g.p("func (x *%s) ParamEqual(other Operator) bool {", o.Name)
		g.p("\to, ok := other.(*%s)", o.Name)
		g.p("\treturn ok && o == x")
		g.p("}")
	case len(idFields) == 0:
		g.p("func (*%s) ParamEqual(other Operator) bool {", o.Name)
		g.p("\t_, ok := other.(*%s)", o.Name)
		g.p("\treturn ok")
		g.p("}")
	default:
		g.p("func (x *%s) ParamEqual(other Operator) bool {", o.Name)
		g.p("\to, ok := other.(*%s)", o.Name)
		g.p("\tif !ok {")
		g.p("\t\treturn false")
		g.p("\t}")
		for _, f := range idFields {
			cond, err := equalCond(f)
			if err != nil {
				return fmt.Errorf("%s.%s: %v", o.Name, f.Name, err)
			}
			g.p("\tif !(%s) {", cond)
			g.p("\t\treturn false")
			g.p("\t}")
		}
		g.p("\treturn true")
		g.p("}")
	}
	g.p("")
	return nil
}

// hashStmt emits the ParamHash statement for one identity field.
func hashStmt(f *FieldDef) (string, error) {
	x := "x." + f.Name
	switch f.Type {
	case "String":
		return fmt.Sprintf("h = hashString(h, %s)", x), nil
	case "Bool":
		return fmt.Sprintf("if %s {\n\t\th = hashMix(h, 1)\n\t}", x), nil
	case "Int", "Int64", "ColID", "JoinType", "AggMode", "SubqueryKind":
		return fmt.Sprintf("h = hashMix(h, uint64(%s))", x), nil
	case "Scalar":
		return fmt.Sprintf("h = hashScalar(h, %s)", x), nil
	case "ScalarList":
		return fmt.Sprintf("h = hashScalars(h, %s)", x), nil
	case "Relation", "Index":
		return fmt.Sprintf("h = hashMix(h, uint64(%s.Mdid.OID))", x), nil
	case "ColRefs":
		return fmt.Sprintf("h = hashColRefs(h, %s)", x), nil
	case "ColIDs":
		return fmt.Sprintf("h = hashColIDs(h, %s)", x), nil
	case "ColIDLists":
		return fmt.Sprintf("h = hashColIDLists(h, %s)", x), nil
	case "IntList":
		return fmt.Sprintf("h = hashInts(h, %s)", x), nil
	case "OrderSpec":
		return fmt.Sprintf("h = hashMix(h, %s.Hash())", x), nil
	case "ProjElems":
		return fmt.Sprintf("h = hashProjElems(h, %s)", x), nil
	case "AggElems":
		return fmt.Sprintf("h = hashAggElems(h, %s)", x), nil
	case "WinElems":
		return fmt.Sprintf("h = hashWinElems(h, %s)", x), nil
	}
	return "", fmt.Errorf("no hash strategy for type %s", f.Type)
}

// equalCond emits the ParamEqual condition for one identity field.
func equalCond(f *FieldDef) (string, error) {
	x, o := "x."+f.Name, "o."+f.Name
	switch f.Type {
	case "String", "Bool", "Int", "Int64", "ColID", "JoinType", "AggMode", "SubqueryKind":
		return fmt.Sprintf("%s == %s", x, o), nil
	case "Scalar":
		return fmt.Sprintf("scalarEqual(%s, %s)", x, o), nil
	case "ScalarList":
		return fmt.Sprintf("scalarsEqual(%s, %s)", x, o), nil
	case "Relation", "Index":
		return fmt.Sprintf("%s.Mdid == %s.Mdid", x, o), nil
	case "ColRefs":
		return fmt.Sprintf("colRefsEqual(%s, %s)", x, o), nil
	case "ColIDs":
		return fmt.Sprintf("colIDsEqual(%s, %s)", x, o), nil
	case "ColIDLists":
		return fmt.Sprintf("colIDListsEqual(%s, %s)", x, o), nil
	case "IntList":
		return fmt.Sprintf("intsEqual(%s, %s)", x, o), nil
	case "OrderSpec":
		return fmt.Sprintf("%s.Equal(%s)", x, o), nil
	case "ProjElems":
		return fmt.Sprintf("projElemsEqual(%s, %s)", x, o), nil
	case "AggElems":
		return fmt.Sprintf("aggElemsEqual(%s, %s)", x, o), nil
	case "WinElems":
		return fmt.Sprintf("winElemsEqual(%s, %s)", x, o), nil
	}
	return "", fmt.Errorf("no equality strategy for type %s", f.Type)
}
