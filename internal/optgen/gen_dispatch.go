package optgen

// The dispatch generators emit the per-package operator switch that routes
// each operator to its hand-written semantic handler. The switches are the
// "registry legs" opclosure verifies: because they are generated from the
// same catalog as the operator structs, a declared operator with a missing
// handler is a compile error in the consuming package, not a latent runtime
// panic.

// genCostDispatch emits internal/cost/dispatch.gen.go. Physical and
// enforcer operators each get a cost<Op> method on Model.
func genCostDispatch(cat *Catalog) ([]byte, error) {
	var g gen
	g.buf.WriteString(header)
	g.p("package cost")
	g.p("")
	g.p("import %q", "orca/internal/ops")
	g.p("")
	g.p("// LocalCost returns the cost of the operator itself, excluding children,")
	g.p("// dispatching to the hand-written per-operator formula (cost<Op>).")
	g.p("//")
	g.p("//orcavet:hotpath runs once per candidate plan during Figure-6 optimization")
	g.p("func (m *Model) LocalCost(op ops.Operator, in Inputs) float64 {")
	g.p("\tswitch o := op.(type) {")
	for _, o := range opsOfKind(cat, KindPhysical, KindEnforcer) {
		g.p("\tcase *ops.%s:", o.Name)
		g.p("\t\treturn m.cost%s(o, in)", o.Name)
	}
	g.p("\tdefault:")
	g.p("\t\treturn m.costDefault(in)")
	g.p("\t}")
	g.p("}")
	return g.gofmt()
}

// genStatsDispatch emits internal/stats/dispatch.gen.go. Logical operators
// each get a derive<Op> method on Context; everything else (physical trees
// re-derived by the legacy planner) falls through to deriveDefault.
func genStatsDispatch(cat *Catalog) ([]byte, error) {
	var g gen
	g.buf.WriteString(header)
	g.p("package stats")
	g.p("")
	g.p("import %q", "orca/internal/ops")
	g.p("")
	g.p("// Derive computes the statistics of an operator from its children's")
	g.p("// statistics, dispatching to the hand-written per-operator derivation")
	g.p("// (derive<Op>). It covers logical operators (Memo groups) and is reused")
	g.p("// by the legacy Planner for its physical trees, which pass through.")
	g.p("func (ctx *Context) Derive(op ops.Operator, child []*Stats) (*Stats, error) {")
	g.p("\tswitch o := op.(type) {")
	for _, o := range opsOfKind(cat, KindLogical) {
		g.p("\tcase *ops.%s:", o.Name)
		g.p("\t\treturn ctx.derive%s(o, child)", o.Name)
	}
	g.p("\tdefault:")
	g.p("\t\treturn ctx.deriveDefault(child), nil")
	g.p("\t}")
	g.p("}")
	return g.gofmt()
}

// genEngineDispatch emits internal/engine/dispatch.gen.go. Physical and
// enforcer operators each get an exec<Op> method on executor with the
// uniform signature (op, expr).
func genEngineDispatch(cat *Catalog) ([]byte, error) {
	var g gen
	g.buf.WriteString(header)
	g.p("package engine")
	g.p("")
	g.p("import (")
	g.p("\t%q", "fmt")
	g.p("")
	g.p("\t%q", "orca/internal/ops")
	g.p(")")
	g.p("")
	g.p("// execOp dispatches one plan node to the hand-written per-operator")
	g.p("// executor (exec<Op>).")
	g.p("func (ex *executor) execOp(e *ops.Expr) (*result, error) {")
	g.p("\tswitch op := e.Op.(type) {")
	for _, o := range opsOfKind(cat, KindPhysical, KindEnforcer) {
		g.p("\tcase *ops.%s:", o.Name)
		g.p("\t\treturn ex.exec%s(op, e)", o.Name)
	}
	g.p("\tdefault:")
	g.p("\t\treturn nil, fmt.Errorf(\"engine: cannot execute operator %%s\", e.Op.Name())")
	g.p("\t}")
	g.p("}")
	return g.gofmt()
}
