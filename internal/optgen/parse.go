package optgen

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ParseDir parses every .opt file in dir (sorted order, so the catalog —
// and therefore all generated output — is deterministic).
func ParseDir(dir string) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".opt") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("optgen: no .opt files in %s", dir)
	}
	cat := &Catalog{}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		if err := parseFile(cat, f, string(src)); err != nil {
			return nil, err
		}
	}
	if err := cat.validate(); err != nil {
		return nil, err
	}
	return cat, nil
}

// Parse parses a single .opt source (used by tests and fixtures). The
// catalog is validated.
func Parse(filename, src string) (*Catalog, error) {
	cat := &Catalog{}
	if err := parseFile(cat, filename, src); err != nil {
		return nil, err
	}
	if err := cat.validate(); err != nil {
		return nil, err
	}
	return cat, nil
}

// parser state for one file.
type parser struct {
	cat   *Catalog
	file  string
	lines []string
	pos   int // 0-based index into lines
	doc   []string
}

func parseFile(cat *Catalog, file, src string) error {
	p := &parser{cat: cat, file: file, lines: strings.Split(src, "\n")}
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		switch {
		case line == "":
			p.doc = nil // blank line detaches pending doc comments
			p.pos++
		case strings.HasPrefix(line, "#"):
			p.doc = append(p.doc, strings.TrimSpace(strings.TrimPrefix(line, "#")))
			p.pos++
		case strings.HasPrefix(line, "["):
			if err := p.parseDecl(line); err != nil {
				return err
			}
		default:
			return p.errf(p.pos, "expected declaration, found %q", line)
		}
	}
	return nil
}

func (p *parser) errf(idx int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.file, idx+1, fmt.Sprintf(format, args...))
}

// parseDecl handles "[Tags] define Name {" and "[Tags] rule Name {".
func (p *parser) parseDecl(line string) error {
	start := p.pos
	close := strings.Index(line, "]")
	if close < 0 {
		return p.errf(start, "unterminated tag list")
	}
	var tags []string
	for _, t := range strings.Split(line[1:close], ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	rest := strings.Fields(strings.TrimSpace(line[close+1:]))
	if len(rest) != 3 || rest[2] != "{" {
		return p.errf(start, "expected `define Name {` or `rule Name {` after tags")
	}
	doc := p.doc
	p.doc = nil
	p.pos++
	switch rest[0] {
	case "define":
		return p.parseDefine(start, tags, rest[1], doc)
	case "rule":
		return p.parseRule(start, tags, rest[1], doc)
	}
	return p.errf(start, "expected `define` or `rule`, found %q", rest[0])
}

func (p *parser) parseDefine(start int, tags []string, name string, doc []string) error {
	o := &OpDef{Name: name, Doc: doc, File: p.file, Line: start + 1}
	for _, tag := range tags {
		switch tag {
		case "Logical":
			o.Kind = KindLogical
		case "Physical":
			o.Kind = KindPhysical
		case "Enforcer":
			o.Kind = KindEnforcer
		case "Scalar":
			o.Kind = KindScalar
		case "CustomName":
			o.CustomName = true
		case "PtrIdentity":
			o.PtrIdentity = true
		case "Hand":
			o.Hand = true
		default:
			return p.errf(start, "unknown operator tag %q", tag)
		}
	}
	if o.Kind == "" {
		return p.errf(start, "operator %s needs a kind tag (Logical, Physical, Enforcer or Scalar)", name)
	}
	sawChildren := false
	for p.pos < len(p.lines) {
		idx := p.pos
		line := strings.TrimSpace(p.lines[idx])
		p.pos++
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == "}":
			if !sawChildren && !o.Hand {
				return p.errf(start, "operator %s is missing a `children N` directive", name)
			}
			p.cat.Ops = append(p.cat.Ops, o)
			return nil
		}
		fields := strings.Fields(line)
		if fields[0] == "children" {
			if len(fields) != 2 {
				return p.errf(idx, "expected `children N`")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < -1 {
				return p.errf(idx, "children count must be an integer >= -1, found %q", fields[1])
			}
			o.Arity = n
			sawChildren = true
			continue
		}
		if fields[0] == "name" && len(fields) == 2 {
			o.Display = fields[1]
			continue
		}
		if len(fields) < 2 {
			return p.errf(idx, "expected `Field Type [noident] [dxl=Name]`")
		}
		f := &FieldDef{Name: fields[0], Type: fields[1], Line: idx + 1}
		for _, opt := range fields[2:] {
			switch {
			case opt == "noident":
				f.NoIdent = true
			case strings.HasPrefix(opt, "dxl="):
				f.DXLName = strings.TrimPrefix(opt, "dxl=")
			default:
				return p.errf(idx, "unknown field option %q", opt)
			}
		}
		o.Fields = append(o.Fields, f)
	}
	return p.errf(start, "unterminated define %s", name)
}

func (p *parser) parseRule(start int, tags []string, name string, doc []string) error {
	r := &RuleDef{Name: name, Doc: doc, File: p.file, Line: start + 1}
	for _, tag := range tags {
		switch tag {
		case "Exploration":
			r.Kind = KindExploration
		case "Implementation":
			r.Kind = KindImplementation
		default:
			return p.errf(start, "unknown rule tag %q", tag)
		}
	}
	if r.Kind == "" {
		return p.errf(start, "rule %s needs a kind tag (Exploration or Implementation)", name)
	}
	for p.pos < len(p.lines) {
		idx := p.pos
		line := strings.TrimSpace(p.lines[idx])
		p.pos++
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == "}":
			if r.Match == "" {
				return p.errf(start, "rule %s is missing a `match OpName` directive", name)
			}
			p.cat.Rules = append(p.cat.Rules, r)
			return nil
		case line == "check":
			r.Check = true
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "match" && len(fields) == 2 {
			r.Match = fields[1]
			continue
		}
		return p.errf(idx, "expected `match OpName`, `check` or `}`, found %q", line)
	}
	return p.errf(start, "unterminated rule %s", name)
}
