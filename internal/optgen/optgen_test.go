package optgen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func TestParseSmallFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/small.opt")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Parse("testdata/small.opt", string(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Ops) != 3 || len(cat.Rules) != 2 {
		t.Fatalf("parsed %d ops, %d rules; want 3, 2", len(cat.Ops), len(cat.Rules))
	}
	toy := cat.Op("Toy")
	if toy == nil || toy.Kind != KindLogical || toy.Arity != 0 {
		t.Fatalf("Toy parsed wrong: %+v", toy)
	}
	if len(toy.Doc) != 1 || !strings.Contains(toy.Doc[0], "logical get") {
		t.Errorf("doc comment not attached: %v", toy.Doc)
	}
	if got := len(toy.IdentityFields()); got != 2 {
		t.Errorf("Toy identity fields = %d, want 2 (Hint is noident)", got)
	}
	scan := cat.Op("ToyScan")
	if scan.Fields[0].DXLName != "Table" || dxlAttr(scan.Fields[0]) != "Table" {
		t.Errorf("dxl= rename not honored: %+v", scan.Fields[0])
	}
	if dxlAttr(toy.Fields[0]) != "RelOid" {
		t.Errorf("Relation default DXL attr = %q, want RelOid", dxlAttr(toy.Fields[0]))
	}
	push := cat.Rules[0]
	if push.Name != "ToySelectPush" || push.Kind != KindExploration || !push.Check || push.Match != "ToySelect" {
		t.Errorf("ToySelectPush parsed wrong: %+v", push)
	}
	impl := cat.Rules[1]
	if impl.Kind != KindImplementation || impl.Check {
		t.Errorf("Toy2ToyScan parsed wrong: %+v", impl)
	}
	if impl.Line == 0 || impl.File != "testdata/small.opt" {
		t.Errorf("rule position not recorded: %s:%d", impl.File, impl.Line)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-kind", "[CustomName] define X {\nchildren 0\n}\n", "needs a kind tag"},
		{"bad-tag", "[Logical, Wat] define X {\nchildren 0\n}\n", `unknown operator tag "Wat"`},
		{"no-children", "[Logical] define X {\n}\n", "missing a `children N` directive"},
		{"bad-children", "[Logical] define X {\nchildren two\n}\n", "children count must be an integer"},
		{"unterminated", "[Logical] define X {\nchildren 0\n", "unterminated define X"},
		{"bad-field-opt", "[Logical] define X {\nchildren 0\nA Int wat\n}\n", `unknown field option "wat"`},
		{"unknown-type", "[Logical] define X {\nchildren 0\nA Widget\n}\n", "unknown type Widget"},
		{"float-identity", "[Logical] define X {\nchildren 0\nA Float\n}\n", "cannot be an identity field"},
		{"redeclared-op", "[Logical] define X {\nchildren 0\n}\n[Logical] define X {\nchildren 0\n}\n", "operator X redeclared"},
		{"rule-no-kind", "[Logical] define X {\nchildren 0\n}\n[] rule R {\nmatch X\n}\n", "needs a kind tag"},
		{"rule-no-match", "[Logical] define X {\nchildren 0\n}\n[Exploration] rule R {\n}\n", "missing a `match OpName` directive"},
		{"rule-bad-line", "[Logical] define X {\nchildren 0\n}\n[Exploration] rule R {\nmatch X\npattern Y\n}\n", "expected `match OpName`"},
		{"rule-unknown-op", "[Exploration] rule R {\nmatch Nope\n}\n", "matches undeclared operator Nope"},
		{"rule-physical-op", "[Physical] define X {\nchildren 0\n}\n[Exploration] rule R {\nmatch X\n}\n", "rules fire on logical expressions"},
		{"stray-text", "define X {\n", "expected declaration"},
		{"bad-decl", "[Logical] defne X {\n}\n", "expected `define` or `rule`"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad.opt", tc.src)
			if err == nil {
				t.Fatalf("no error, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "bad.opt:") {
				t.Errorf("error %q lacks file:line position", err)
			}
		})
	}
}

// TestGoldenOutputs renders the small fixture catalog and compares every
// artifact against testdata/golden/. Regenerate with `go test -update`.
func TestGoldenOutputs(t *testing.T) {
	src, err := os.ReadFile("testdata/small.opt")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Parse("testdata/small.opt", string(src))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Outputs(cat)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Outputs(cat)
	if err != nil {
		t.Fatal(err)
	}
	for rel, b := range outs {
		if !bytes.Equal(b, again[rel]) {
			t.Errorf("%s: generation is not deterministic", rel)
		}
		golden := filepath.Join("testdata", "golden", strings.ReplaceAll(rel, "/", "__"))
		if *update {
			if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, b, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/optgen -update` to create goldens)", err)
		}
		if !bytes.Equal(b, want) {
			t.Errorf("%s differs from golden %s (re-run with -update after reviewing)", rel, golden)
		}
	}
}

// TestRepoDefsRoundTrip parses the real defs/ directory and checks the
// committed generated files byte-match what the generators emit — the unit
// level analogue of check.sh's go-generate drift gate.
func TestRepoDefsRoundTrip(t *testing.T) {
	root := filepath.Join("..", "..")
	cat, err := ParseDir(filepath.Join(root, "defs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Ops) < 30 || len(cat.Rules) < 20 {
		t.Fatalf("suspiciously small catalog: %d ops, %d rules", len(cat.Ops), len(cat.Rules))
	}
	outs, err := Outputs(cat)
	if err != nil {
		t.Fatal(err)
	}
	for rel, want := range outs {
		got, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			t.Errorf("generated artifact missing from the tree: %v", err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale: run go generate ./...", rel)
		}
	}
}
