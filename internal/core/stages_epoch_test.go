package core

import "testing"

// joinOrderFamily is the generated join-reordering rule family (defs/
// rules.opt). Staging it off and on exercises rule-set epochs: each stage
// installs a different enabled set via xform.Context.SetRuleSet, and the
// Memo's exploration markers are epoch-scoped, so the full stage must
// re-explore the groups the restricted stage finished under its own epoch.
var joinOrderFamily = []string{
	"JoinCommutativity", "JoinAssociativity", "JoinAssociativityRight",
	"JoinAssociativityExchange", "PushSelectThroughJoin", "PushSelectThroughGbAgg",
}

// TestStagedRuleEpochsParallel runs a two-stage session — join reordering
// disabled, then unrestricted — over one shared Memo with the parallel
// scheduler. check.sh runs this package under -race, which is the point:
// epoch bookkeeping is read from every worker while SetRuleSet writes it
// between stages.
func TestStagedRuleEpochsParallel(t *testing.T) {
	for i := 0; i < 3; i++ {
		q, _ := paperExample(t)
		cfg := DefaultConfig(16)
		cfg.Workers = 8
		cfg.Stages = []Stage{
			{Name: "no-join-reorder", DisabledRules: joinOrderFamily},
			{Name: "full"},
		}
		res, err := Optimize(q, cfg)
		if err != nil {
			t.Fatalf("staged optimize: %v", err)
		}
		if res.Plan == nil {
			t.Fatal("no plan")
		}
		if len(res.StageRuns) != 2 {
			t.Fatalf("stage runs = %d, want 2", len(res.StageRuns))
		}
		// The unrestricted epoch only adds alternatives; it can never leave
		// the session worse than the restricted stage's best plan.
		if res.StageRuns[1].Cost > res.StageRuns[0].Cost {
			t.Errorf("full stage cost %.2f worse than restricted %.2f",
				res.StageRuns[1].Cost, res.StageRuns[0].Cost)
		}
		if res.Cost != res.StageRuns[1].Cost {
			t.Errorf("session cost %.2f != final stage cost %.2f",
				res.Cost, res.StageRuns[1].Cost)
		}

		// Replaying the second epoch over a fresh Memo in one unrestricted
		// stage must land on the same plan cost.
		q2, _ := paperExample(t)
		single, err := Optimize(q2, DefaultConfig(16))
		if err != nil {
			t.Fatalf("single-stage optimize: %v", err)
		}
		if res.Cost != single.Cost {
			t.Errorf("staged cost %.2f != single-stage cost %.2f", res.Cost, single.Cost)
		}
	}
}
