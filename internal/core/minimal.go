package core

import (
	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/ops"
	"orca/internal/props"
)

// minimalPlan translates the logical tree directly into a valid physical
// plan with no search, statistics or costing — the last rung of the
// degradation ladder (paper §6.1: degrade gracefully, always hand the
// executor *a* plan). Every choice is the simplest one: scans gathered to
// the master, nested-loops joins, single-phase aggregates, Sort enforcers
// wherever an operator needs order. The plan is all-singleton, so it is
// valid on any cluster, just not parallel.
func minimalPlan(q *Query) (*ops.Expr, error) {
	// Normalization (including subquery decorrelation) must still succeed: a
	// tree it rejects is semantically unsupported, and "rescuing" it would
	// hand the executor a plan for a query the system cannot answer. The
	// ladder only retries normalization here because the *normal pass's*
	// failure may have been transient (e.g. an injected fault).
	tree, err := Normalize(q.Tree, q.Factory)
	if err != nil {
		return nil, err
	}
	root, err := buildMinimal(tree)
	if err != nil {
		return nil, err
	}
	root = ensureSingleton(root)
	root = ensureOrder(root, q.Order)
	return root, nil
}

// buildMinimal recursively translates one logical operator. Each returned
// node carries honestly derived physical properties (via the operator's own
// Derive), so enforcer placement below composite operators is decided from
// what the children actually deliver.
func buildMinimal(e *ops.Expr) (*ops.Expr, error) {
	kids := make([]*ops.Expr, len(e.Children))
	for i, c := range e.Children {
		k, err := buildMinimal(c)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	switch o := e.Op.(type) {
	case *ops.Get:
		return ensureSingleton(physNode(&ops.Scan{Alias: o.Alias, Rel: o.Rel, Cols: o.Cols})), nil
	case *ops.Select:
		return physNode(&ops.Filter{Pred: o.Pred}, kids[0]), nil
	case *ops.Project:
		return physNode(ops.NewComputeScalar(o.Elems), kids[0]), nil
	case *ops.Join:
		return minimalJoin(o.Type, o.Pred, kids[0], kids[1]), nil
	case *ops.NAryJoin:
		// Left-deep chain of cross nested-loops joins; all predicates are
		// applied at the topmost join, where every input column is in scope.
		out := kids[0]
		for i := 1; i < len(kids); i++ {
			var pred ops.ScalarExpr
			if i == len(kids)-1 && len(o.Preds) > 0 {
				pred = ops.And(o.Preds...)
			}
			out = minimalJoin(ops.InnerJoin, pred, out, kids[i])
		}
		return out, nil
	case *ops.GbAgg:
		if len(o.GroupCols) == 0 {
			return physNode(&ops.ScalarAgg{Mode: ops.AggSingle, Aggs: o.Aggs}, kids[0]), nil
		}
		return physNode(&ops.HashAgg{Mode: ops.AggSingle, GroupCols: o.GroupCols, Aggs: o.Aggs}, kids[0]), nil
	case *ops.Limit:
		child := ensureOrder(kids[0], o.Order)
		return physNode(&ops.PhysicalLimit{Order: o.Order, Count: o.Count, Offset: o.Offset, HasCount: o.HasCount}, child), nil
	case *ops.UnionAll:
		for i := range kids {
			kids[i] = ensureSingleton(kids[i])
		}
		return physNode(&ops.PhysicalUnionAll{InCols: o.InCols, OutCols: o.OutCols}, kids...), nil
	case *ops.CTEAnchor:
		prodCols := make([]base.ColID, len(o.Cols))
		for i, c := range o.Cols {
			prodCols[i] = c.ID
		}
		producer := physNode(&ops.PhysicalCTEProducer{ID: o.ID, Cols: prodCols}, ensureSingleton(kids[0]))
		return physNode(&ops.Sequence{}, producer, ensureSingleton(kids[1])), nil
	case *ops.CTEConsumer:
		// CTEConsumer always derives a Random distribution; gather it back.
		return ensureSingleton(physNode(&ops.PhysicalCTEConsumer{ID: o.ID, Cols: o.Cols, ProducerCols: o.ProducerCols})), nil
	case *ops.Window:
		w := &ops.PhysicalWindow{PartitionCols: o.PartitionCols, Order: o.Order, Wins: o.Wins}
		child := ensureOrder(kids[0], windowOrder(w))
		return physNode(w, child), nil
	default:
		return nil, gpos.Raise(gpos.CompOptimizer, "NoMinimalPlan",
			"minimal plan builder cannot translate operator %s", e.Op.Name())
	}
}

// minimalJoin builds a nested-loops join, gathering both sides to the master
// and spooling the inner side (it is re-scanned per outer tuple).
func minimalJoin(t ops.JoinType, pred ops.ScalarExpr, outer, inner *ops.Expr) *ops.Expr {
	return physNode(&ops.NLJoin{Type: t, Pred: pred},
		ensureSingleton(outer), ensureRewindable(ensureSingleton(inner)))
}

// physNode assembles an expression node, deriving its delivered properties
// from what the children deliver.
func physNode(op ops.Physical, children ...*ops.Expr) *ops.Expr {
	cd := make([]props.Derived, len(children))
	for i, c := range children {
		cd[i] = *c.Phys
	}
	d := op.Derive(cd)
	return &ops.Expr{Op: op, Children: children, Phys: &d}
}

// ensureSingleton gathers a non-singleton subtree to the master.
func ensureSingleton(e *ops.Expr) *ops.Expr {
	if e.Phys.Dist.Satisfies(props.SingletonDist) {
		return e
	}
	return physNode(&ops.Gather{}, e)
}

// ensureOrder sorts a subtree that does not already deliver the order.
func ensureOrder(e *ops.Expr, order props.OrderSpec) *ops.Expr {
	if len(order.Items) == 0 || e.Phys.Order.Satisfies(order) {
		return e
	}
	return physNode(&ops.Sort{Order: order}, e)
}

// ensureRewindable spools a subtree that cannot be cheaply re-scanned.
func ensureRewindable(e *ops.Expr) *ops.Expr {
	if e.Phys.Rewindable {
		return e
	}
	return physNode(&ops.Spool{}, e)
}

// windowOrder is the child order a window operator needs: partition columns
// followed by the window order.
func windowOrder(w *ops.PhysicalWindow) props.OrderSpec {
	items := make([]props.OrderItem, 0, len(w.PartitionCols)+len(w.Order.Items))
	for _, c := range w.PartitionCols {
		items = append(items, props.OrderItem{Col: c})
	}
	items = append(items, w.Order.Items...)
	return props.OrderSpec{Items: items}
}
