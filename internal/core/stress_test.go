package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"orca/internal/fault"
	"orca/internal/gpos"
)

// TestConcurrentOptimizeStress is the service workload in miniature, run
// under -race by check.sh: many concurrent Optimize sessions with tight
// memory/group budgets and a randomized fault schedule armed across all of
// them. The invariant is the serving contract — every session returns a
// plan or a structured exception, within bounded time, with no unrecovered
// panic and no data race between sessions (they share nothing but the
// global fault registry and runtime).
func TestConcurrentOptimizeStress(t *testing.T) {
	const (
		rounds     = 3
		sessions   = 8
		roundLimit = 60 * time.Second
	)
	for round := 0; round < rounds; round++ {
		// Bind the queries before arming the schedule: the bind phase is the
		// client's side of the contract, the stress is on Optimize.
		queries := make([]*Query, sessions)
		for i := range queries {
			if i%2 == 0 {
				queries[i], _ = paperExample(t)
			} else {
				queries[i], _ = threeWayExample(t)
			}
		}
		specs := fault.RandomSchedule(0xbeef+int64(round), 4)
		t.Logf("round %d: %s", round, fault.FormatSpecs(specs))
		disarm, err := fault.Arm(specs)
		if err != nil {
			t.Fatalf("round %d: Arm: %v", round, err)
		}

		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				q := queries[i]
				cfg := DefaultConfig(16)
				cfg.Workers = 1 + i%4
				cfg.MemoryBudget = 1 << 20
				cfg.MaxGroups = 200
				res, err := Optimize(q, cfg)
				switch {
				case err != nil:
					if gpos.AsException(err) == nil {
						errs <- fmt.Errorf("session %d: unstructured failure: %w", i, err)
					}
				case res.Plan == nil:
					errs <- fmt.Errorf("session %d: nil plan without error", i)
				}
			}(i)
		}

		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(roundLimit):
			t.Fatalf("round %d: sessions still running after %v — a budgeted "+
				"Optimize must never hang", round, roundLimit)
		}
		disarm()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}
