package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"orca/internal/base"
	"orca/internal/cost"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/search"
	"orca/internal/stats"
	"orca/internal/xform"
)

// Query is a bound query handed to the optimizer: the logical tree plus the
// query-level requirements of DXL's query message (output columns, sorting
// columns, result distribution — paper Listing 1; the result distribution is
// always Singleton: results are gathered to the master).
type Query struct {
	Tree     *ops.Expr
	Order    props.OrderSpec
	OutCols  []base.ColID
	OutNames []string

	Factory  *md.ColumnFactory
	Accessor *md.Accessor
}

// StageRun records one optimization stage's outcome.
type StageRun struct {
	// Name is the stage's configured name.
	Name string
	// Cost is the best root plan cost after the stage (InfCost if none).
	Cost float64
	// TimedOut reports the stage hit its Timeout or StepLimit; the Memo then
	// keeps the best plan found so far instead of discarding the stage.
	TimedOut bool
	// Aborted reports a resource guard (Config.MemoryBudget or MaxGroups)
	// cut the stage short. Like TimedOut, the best plan found so far is kept.
	Aborted bool
	// RulesFired counts transformation-rule applications in this stage.
	RulesFired int64
	// Search is the stage's scheduler telemetry.
	Search search.Stats
}

// Result is the outcome of one optimization session.
type Result struct {
	// Plan is the extracted physical plan.
	Plan *ops.Expr
	// Cost is the plan's estimated cost.
	Cost float64
	// Stage names the optimization stage that produced the plan.
	Stage string

	// Groups and GroupExprs describe the final Memo size.
	Groups     int
	GroupExprs int
	// RulesFired counts transformation-rule applications.
	RulesFired int64
	// Duration is the optimization wall-clock time.
	Duration time.Duration
	// PeakMemBytes is the accountant's high-water mark.
	PeakMemBytes int64

	// Search aggregates the scheduler telemetry of all stages.
	Search search.Stats
	// StageRuns lists each executed stage's outcome in run order.
	StageRuns []StageRun

	// Memo, RootGroup and RootReq expose the search state for tooling (TAQO
	// plan sampling, tests). All stages share this one Memo.
	Memo      *memo.Memo
	RootGroup memo.GroupID
	RootReq   props.Required

	// MemoTrace is a printable Memo dump when Config.TraceMemo is set.
	MemoTrace string

	// Degraded reports the plan came from the degradation ladder rather than
	// the normal optimization pass (paper §6.1: fail the query gracefully,
	// never the process).
	Degraded bool
	// DegradedRung names the ladder rung that produced the plan:
	// RungHeuristic (reduced rule set) or RungMinimal (direct translation).
	DegradedRung string
	// Failure is the exception that made the normal pass fail and engaged
	// the ladder (nil when the normal pass succeeded).
	Failure *gpos.Exception
	// DumpPath is where the diagnostic (AMPERe) dump for Failure was
	// written; empty when no Config.DumpCapture hook is installed.
	DumpPath string
}

// Degradation-ladder rung names reported in Result.DegradedRung.
const (
	RungHeuristic = "heuristic"
	RungMinimal   = "minimal"
)

// Optimize runs the full optimization workflow over a bound query
// (paper §4.1): normalize, copy-in to the Memo, then one goal-driven search
// pass per configured stage starting at the root optimization goal
// {Singleton, <order>}. Exploration, implementation and statistics
// derivation are scheduled on demand as dependencies of that goal rather
// than as whole-Memo phases.
//
// All stages share the Memo: a later stage re-enables rules against the
// accumulated groups and resumes search under its own rule-set epoch, so
// work done by earlier stages (exploration, implementation, costing,
// statistics) is never repeated. A stage cut short by its timeout, step
// budget or resource guard keeps the best plan found so far. The best plan
// across stages wins; a stage finishing under its cost threshold
// short-circuits the remaining stages.
//
// When the normal pass fails outright — an exception, a contained panic, or
// every stage aborted without a plan — and Config.DisableDegradation is
// false, Optimize walks a degradation ladder (paper §6.1) instead of
// returning the error: first a heuristic pass with a reduced rule set, then
// a minimal direct translation of the logical tree. The returned Result
// reports Degraded, the rung taken, the triggering Failure, and the path of
// the diagnostic dump captured through Config.DumpCapture.
func Optimize(q *Query, cfg Config) (*Result, error) {
	return OptimizeContext(context.Background(), q, cfg)
}

// OptimizeContext is Optimize bound to a request context: the context is
// attached to the query's metadata accessor (so cancelling it cancels
// in-flight provider lookups) and checked between optimization stages, so a
// cancelled request stops after the running stage instead of walking the
// remaining stage ladder. Cancellation surfaces as an ordinary optimization
// failure; with degradation enabled the ladder still runs, which is
// intentional — a degraded plan beats no plan even for an impatient caller.
func OptimizeContext(ctx context.Context, q *Query, cfg Config) (*Result, error) {
	if len(cfg.Faults) > 0 {
		disarm, err := fault.Arm(cfg.Faults)
		if err != nil {
			return nil, err
		}
		defer disarm()
	}
	if q.Accessor != nil {
		q.Accessor.SetLookupTimeout(cfg.MDLookupTimeout)
		q.Accessor.SetRetryPolicy(cfg.MDRetry)
		q.Accessor.BindContext(ctx)
	}

	res, err := containedPass(ctx, q, cfg)
	if err == nil || cfg.DisableDegradation {
		return res, err
	}

	failure := gpos.AsException(err)
	if failure == nil {
		failure = gpos.Wrap(err, gpos.CompOptimizer, "OptimizationFailed", "optimization failed")
	}
	var dumpPath string
	if cfg.DumpCapture != nil {
		dumpPath = capturedDump(q, cfg, failure)
	}

	// Rung 1: heuristic. Retry with the exploration rules (except the greedy
	// n-ary join expansion) switched off and a sequential scheduler — a much
	// smaller, more predictable search that avoids most failure surface while
	// still producing a costed plan.
	hcfg := cfg
	hcfg.DisableDegradation = true
	hcfg.Workers = 1
	hcfg.Stages = []Stage{{Name: "degraded-heuristic"}}
	hcfg.DisabledRules = append(append([]string(nil), cfg.DisabledRules...),
		"JoinCommutativity", "JoinAssociativity", "JoinAssociativityRight",
		"JoinAssociativityExchange", "PushSelectThroughJoin",
		"PushSelectThroughGbAgg", "ExpandNAryJoinDP", "ExpandNAryJoinLeftDeep")
	if hres, herr := containedPass(ctx, q, hcfg); herr == nil {
		hres.Degraded = true
		hres.DegradedRung = RungHeuristic
		hres.Failure = failure
		hres.DumpPath = dumpPath
		return hres, nil
	}

	// Rung 2: minimal. Translate the logical tree directly into an
	// all-singleton physical plan — no search, statistics or costing; this
	// rung only fails if the tree contains an untranslatable operator.
	start := time.Now()
	plan, merr := containedMinimal(q)
	if merr != nil {
		return nil, errors.Join(err, merr)
	}
	return &Result{
		Plan:         plan,
		Cost:         memo.InfCost,
		Stage:        RungMinimal,
		Duration:     time.Since(start),
		Degraded:     true,
		DegradedRung: RungMinimal,
		Failure:      failure,
		DumpPath:     dumpPath,
	}, nil
}

// containedPass runs optimizePass behind a panic-containment boundary: the
// scheduler already contains panics raised inside job steps, but the pass
// also runs code on the calling goroutine (normalization, Memo copy-in, plan
// extraction), and a panic there must likewise fail the query, not the
// process. The recovered exception keeps the original panic site's stack.
func containedPass(ctx context.Context, q *Query, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, gpos.PanicException(gpos.CompOptimizer, r)
		}
	}()
	return optimizePass(ctx, q, cfg)
}

// containedMinimal is minimalPlan behind the same containment boundary, so
// the ladder's bottom rung cannot crash the process either.
func containedMinimal(q *Query) (plan *ops.Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, gpos.PanicException(gpos.CompOptimizer, r)
		}
	}()
	return minimalPlan(q)
}

// capturedDump invokes the Config.DumpCapture hook behind a containment
// boundary: diagnostic capture is best-effort and must never turn a rescued
// failure into a crash (the harvest path has its own fault points).
func capturedDump(q *Query, cfg Config, failure *gpos.Exception) (path string) {
	defer func() {
		if r := recover(); r != nil {
			path = ""
		}
	}()
	return cfg.DumpCapture(q, cfg, failure)
}

// optimizePass is one complete optimization workflow (normalize, copy-in,
// staged search, extraction) with no degradation handling.
func optimizePass(ctx context.Context, q *Query, cfg Config) (*Result, error) {
	start := time.Now()
	mem := &gpos.MemoryAccountant{}

	if err := fault.Inject(fault.PointCoreNormalize); err != nil {
		return nil, err
	}
	tree, err := Normalize(q.Tree, q.Factory)
	if err != nil {
		return nil, err
	}

	m := memo.New(mem)
	root, err := m.Insert(tree)
	if err != nil {
		return nil, err
	}
	m.SetRoot(root)

	sctx := stats.NewContext(q.Accessor)
	xctx := &xform.Context{
		Memo:             m,
		Stats:            sctx,
		Accessor:         q.Accessor,
		ColFactory:       q.Factory,
		Segments:         cfg.Segments,
		JoinOrderDPLimit: cfg.JoinOrderDPLimit,
	}
	segments := cfg.Segments
	if segments < 1 {
		segments = 1
	}
	opt := &search.Optimizer{
		Memo: m,
		XCtx: xctx,
		Cost: cost.NewModel(cost.DefaultParams(segments)),
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	rules := xform.DefaultRules()
	req := props.Required{Dist: props.SingletonDist, Order: q.Order}

	// Resource guards: a poll evaluated by the scheduler before every job
	// step. Tripping one drains the stage like a timeout — best-so-far state
	// survives — but is reported distinctly via StageRun.Aborted.
	var quota func() error
	if cfg.MemoryBudget > 0 || cfg.MaxGroups > 0 {
		quota = func() error {
			if mem.Exhausted(cfg.MemoryBudget) {
				return fmt.Errorf("memory budget %d bytes exhausted (current %d): %w",
					cfg.MemoryBudget, mem.Current(), search.ErrBudget)
			}
			if cfg.MaxGroups > 0 && m.NumGroups() >= cfg.MaxGroups {
				return fmt.Errorf("memo group limit %d reached (groups %d): %w",
					cfg.MaxGroups, m.NumGroups(), search.ErrBudget)
			}
			return nil
		}
	}

	res := &Result{
		Cost:      memo.InfCost,
		Memo:      m,
		RootGroup: root,
		RootReq:   req,
	}
	var errs []error
	var prevFired int64
	for _, stage := range cfg.effectiveStages() {
		st := stage
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, cerr))
			break
		}
		xctx.SetRuleSet(rules, cfg.disabled(&st))
		var deadline time.Time
		if st.Timeout > 0 {
			deadline = time.Now().Add(st.Timeout)
		}
		bestCost, sstats, err := opt.RunStage(root, req, search.StageParams{
			Workers:   workers,
			Deadline:  deadline,
			StepLimit: st.StepLimit,
			Quota:     quota,
		})
		fired := opt.RulesFired.Load()
		run := StageRun{
			Name:       st.Name,
			Cost:       bestCost,
			TimedOut:   errors.Is(err, search.ErrTimeout),
			Aborted:    errors.Is(err, search.ErrBudget),
			RulesFired: fired - prevFired,
			Search:     sstats,
		}
		prevFired = fired
		res.Search.Merge(sstats)
		res.StageRuns = append(res.StageRuns, run)
		drained := run.TimedOut || run.Aborted
		if err != nil && !drained {
			errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, err))
			continue
		}
		// The root context only ever improves (Offer keeps the minimum), so a
		// strictly better cost means this stage found a better plan — extract
		// it. A drained stage extracts its best-so-far plan the same way.
		if bestCost < res.Cost {
			if xerr := fault.Inject(fault.PointCoreExtract); xerr != nil {
				errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, xerr))
				continue
			}
			plan, err := m.ExtractPlan(root, req)
			if err != nil {
				errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, err))
				continue
			}
			res.Plan = plan
			res.Cost = bestCost
			res.Stage = st.Name
		} else if drained && res.Plan == nil {
			errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, err))
		}
		if res.Plan != nil && st.CostThreshold > 0 && res.Cost <= st.CostThreshold {
			break
		}
		if run.Aborted {
			// Resource guards are persistent (memory stays charged, groups stay
			// inserted), so later stages would abort immediately — stop here.
			break
		}
	}
	if res.Plan == nil {
		if len(errs) > 0 {
			return nil, errors.Join(errs...)
		}
		return nil, gpos.Raise(gpos.CompOptimizer, "NoPlan", "no optimization stage produced a plan")
	}
	res.Groups = m.NumGroups()
	res.GroupExprs = m.NumExprs()
	res.RulesFired = opt.RulesFired.Load()
	res.Duration = time.Since(start)
	res.PeakMemBytes = mem.Peak()
	if cfg.TraceMemo {
		res.MemoTrace = m.String()
	}
	return res, nil
}

// Explain renders a physical plan with resolved column names, one operator
// per line with delivered properties, estimated rows and cost.
func Explain(plan *ops.Expr, f *md.ColumnFactory) string {
	var b strings.Builder
	explainNode(&b, plan, f, 0)
	return b.String()
}

func explainNode(b *strings.Builder, e *ops.Expr, f *md.ColumnFactory, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	desc := ops.Describe(e.Op)
	if f != nil {
		desc = resolveColNames(desc, f)
	}
	b.WriteString(desc)
	if e.Phys != nil {
		fmt.Fprintf(b, "   [rows=%.0f cost=%.0f dist=%s", e.Rows, e.Cost, e.Phys.Dist)
		if !e.Phys.Order.IsAny() {
			fmt.Fprintf(b, " order=%s", e.Phys.Order)
		}
		b.WriteString("]")
	}
	b.WriteByte('\n')
	for _, c := range e.Children {
		explainNode(b, c, f, depth+1)
	}
	// SubPlans (legacy Planner) carry their inner plan out-of-line.
	switch op := e.Op.(type) {
	case *ops.SubPlanFilter:
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString("SubPlan:\n")
		explainNode(b, op.Plan, f, depth+2)
	case *ops.SubPlanProject:
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString("SubPlan:\n")
		explainNode(b, op.Plan, f, depth+2)
	default:
		// Only the SubPlan operators carry an out-of-line inner plan.
	}
}

// resolveColNames rewrites c<id> tokens into column names.
func resolveColNames(s string, f *md.ColumnFactory) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == 'c' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' &&
			(i == 0 || !isWordChar(s[i-1])) {
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j >= len(s) || !isWordChar(s[j]) {
				id := 0
				for _, ch := range s[i+1 : j] {
					id = id*10 + int(ch-'0')
				}
				b.WriteString(f.Name(base.ColID(id)))
				i = j
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func isWordChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
