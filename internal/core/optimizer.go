package core

import (
	"fmt"
	"strings"
	"time"

	"orca/internal/base"
	"orca/internal/cost"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/search"
	"orca/internal/stats"
	"orca/internal/xform"
)

// Query is a bound query handed to the optimizer: the logical tree plus the
// query-level requirements of DXL's query message (output columns, sorting
// columns, result distribution — paper Listing 1; the result distribution is
// always Singleton: results are gathered to the master).
type Query struct {
	Tree     *ops.Expr
	Order    props.OrderSpec
	OutCols  []base.ColID
	OutNames []string

	Factory  *md.ColumnFactory
	Accessor *md.Accessor
}

// Result is the outcome of one optimization session.
type Result struct {
	// Plan is the extracted physical plan.
	Plan *ops.Expr
	// Cost is the plan's estimated cost.
	Cost float64
	// Stage names the optimization stage that produced the plan.
	Stage string

	// Groups and GroupExprs describe the final Memo size.
	Groups     int
	GroupExprs int
	// RulesFired counts transformation-rule applications.
	RulesFired int64
	// Duration is the optimization wall-clock time.
	Duration time.Duration
	// PeakMemBytes is the accountant's high-water mark.
	PeakMemBytes int64

	// Memo, RootGroup and RootReq expose the search state for tooling (TAQO
	// plan sampling, tests); they refer to the winning stage's Memo.
	Memo      *memo.Memo
	RootGroup memo.GroupID
	RootReq   props.Required

	// MemoTrace is a printable Memo dump when Config.TraceMemo is set.
	MemoTrace string
}

// Optimize runs the full optimization workflow over a bound query:
// normalize, then for each configured stage: copy-in, explore, derive
// statistics, implement, optimize, extract (paper §4.1). The best plan
// across stages wins; a stage finishing under its cost threshold short-
// circuits the remaining stages.
func Optimize(q *Query, cfg Config) (*Result, error) {
	start := time.Now()
	mem := &gpos.MemoryAccountant{}

	tree, err := Normalize(q.Tree, q.Factory)
	if err != nil {
		return nil, err
	}

	var best *Result
	var lastErr error
	for i, stage := range cfg.effectiveStages() {
		st := stage
		res, err := runStage(q, tree, cfg, &st, mem)
		if err != nil {
			lastErr = err
			continue
		}
		if best == nil || res.Cost < best.Cost {
			best = res
		}
		if st.CostThreshold > 0 && best.Cost <= st.CostThreshold {
			break
		}
		_ = i
	}
	if best == nil {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, gpos.Raise(gpos.CompOptimizer, "NoPlan", "no optimization stage produced a plan")
	}
	best.Duration = time.Since(start)
	best.PeakMemBytes = mem.Peak()
	return best, nil
}

// runStage executes one complete optimization workflow.
func runStage(q *Query, tree *ops.Expr, cfg Config, stage *Stage, mem *gpos.MemoryAccountant) (*Result, error) {
	m := memo.New(mem)
	root, err := m.Insert(tree)
	if err != nil {
		return nil, err
	}
	m.SetRoot(root)

	sctx := stats.NewContext(q.Accessor)
	xctx := &xform.Context{
		Memo:             m,
		Stats:            sctx,
		Accessor:         q.Accessor,
		ColFactory:       q.Factory,
		Segments:         cfg.Segments,
		JoinOrderDPLimit: cfg.JoinOrderDPLimit,
	}

	disabled := cfg.disabled(stage)
	var explorations, implementations []xform.Rule
	for _, r := range xform.DefaultRules() {
		if disabled[r.Name()] {
			continue
		}
		if r.Kind() == xform.Exploration {
			explorations = append(explorations, r)
		} else {
			implementations = append(implementations, r)
		}
	}

	segments := cfg.Segments
	if segments < 1 {
		segments = 1
	}
	opt := &search.Optimizer{
		Memo:            m,
		XCtx:            xctx,
		Cost:            cost.NewModel(cost.DefaultParams(segments)),
		Explorations:    explorations,
		Implementations: implementations,
	}

	var deadline time.Time
	if stage.Timeout > 0 {
		deadline = time.Now().Add(stage.Timeout)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// (1) Exploration.
	if err := opt.Explore(root, workers, deadline); err != nil {
		return nil, err
	}
	// (2) Statistics derivation on the compact Memo. The root walk registers
	// CTE producer statistics before consumers need them; the full sweep
	// covers groups off the promising path.
	if _, err := m.DeriveStats(root, sctx); err != nil {
		return nil, err
	}
	for gid := 0; gid < m.NumGroups(); gid++ {
		if _, err := m.DeriveStats(memo.GroupID(gid), sctx); err != nil {
			return nil, err
		}
	}
	// (3+4) Implementation and optimization, driven by the initial request
	// {Singleton, <order>} (paper Figure 6, req #1).
	req := props.Required{Dist: props.SingletonDist, Order: q.Order}
	bestCost, err := opt.Optimize(root, req, workers, deadline)
	if err != nil {
		return nil, err
	}
	plan, err := m.ExtractPlan(root, req)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Plan:       plan,
		Cost:       bestCost,
		Stage:      stage.Name,
		Groups:     m.NumGroups(),
		GroupExprs: m.NumExprs(),
		RulesFired: opt.RulesFired.Load(),
		Memo:       m,
		RootGroup:  root,
		RootReq:    req,
	}
	if cfg.TraceMemo {
		res.MemoTrace = m.String()
	}
	return res, nil
}

// Explain renders a physical plan with resolved column names, one operator
// per line with delivered properties, estimated rows and cost.
func Explain(plan *ops.Expr, f *md.ColumnFactory) string {
	var b strings.Builder
	explainNode(&b, plan, f, 0)
	return b.String()
}

func explainNode(b *strings.Builder, e *ops.Expr, f *md.ColumnFactory, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	desc := ops.Describe(e.Op)
	if f != nil {
		desc = resolveColNames(desc, f)
	}
	b.WriteString(desc)
	if e.Phys != nil {
		fmt.Fprintf(b, "   [rows=%.0f cost=%.0f dist=%s", e.Rows, e.Cost, e.Phys.Dist)
		if !e.Phys.Order.IsAny() {
			fmt.Fprintf(b, " order=%s", e.Phys.Order)
		}
		b.WriteString("]")
	}
	b.WriteByte('\n')
	for _, c := range e.Children {
		explainNode(b, c, f, depth+1)
	}
	// SubPlans (legacy Planner) carry their inner plan out-of-line.
	switch op := e.Op.(type) {
	case *ops.SubPlanFilter:
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString("SubPlan:\n")
		explainNode(b, op.Plan, f, depth+2)
	case *ops.SubPlanProject:
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString("SubPlan:\n")
		explainNode(b, op.Plan, f, depth+2)
	default:
		// Only the SubPlan operators carry an out-of-line inner plan.
	}
}

// resolveColNames rewrites c<id> tokens into column names.
func resolveColNames(s string, f *md.ColumnFactory) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == 'c' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' &&
			(i == 0 || !isWordChar(s[i-1])) {
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j >= len(s) || !isWordChar(s[j]) {
				id := 0
				for _, ch := range s[i+1 : j] {
					id = id*10 + int(ch-'0')
				}
				b.WriteString(f.Name(base.ColID(id)))
				i = j
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func isWordChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
