package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"orca/internal/base"
	"orca/internal/cost"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/search"
	"orca/internal/stats"
	"orca/internal/xform"
)

// Query is a bound query handed to the optimizer: the logical tree plus the
// query-level requirements of DXL's query message (output columns, sorting
// columns, result distribution — paper Listing 1; the result distribution is
// always Singleton: results are gathered to the master).
type Query struct {
	Tree     *ops.Expr
	Order    props.OrderSpec
	OutCols  []base.ColID
	OutNames []string

	Factory  *md.ColumnFactory
	Accessor *md.Accessor
}

// StageRun records one optimization stage's outcome.
type StageRun struct {
	// Name is the stage's configured name.
	Name string
	// Cost is the best root plan cost after the stage (InfCost if none).
	Cost float64
	// TimedOut reports the stage hit its Timeout or StepLimit; the Memo then
	// keeps the best plan found so far instead of discarding the stage.
	TimedOut bool
	// RulesFired counts transformation-rule applications in this stage.
	RulesFired int64
	// Search is the stage's scheduler telemetry.
	Search search.Stats
}

// Result is the outcome of one optimization session.
type Result struct {
	// Plan is the extracted physical plan.
	Plan *ops.Expr
	// Cost is the plan's estimated cost.
	Cost float64
	// Stage names the optimization stage that produced the plan.
	Stage string

	// Groups and GroupExprs describe the final Memo size.
	Groups     int
	GroupExprs int
	// RulesFired counts transformation-rule applications.
	RulesFired int64
	// Duration is the optimization wall-clock time.
	Duration time.Duration
	// PeakMemBytes is the accountant's high-water mark.
	PeakMemBytes int64

	// Search aggregates the scheduler telemetry of all stages.
	Search search.Stats
	// StageRuns lists each executed stage's outcome in run order.
	StageRuns []StageRun

	// Memo, RootGroup and RootReq expose the search state for tooling (TAQO
	// plan sampling, tests). All stages share this one Memo.
	Memo      *memo.Memo
	RootGroup memo.GroupID
	RootReq   props.Required

	// MemoTrace is a printable Memo dump when Config.TraceMemo is set.
	MemoTrace string
}

// Optimize runs the full optimization workflow over a bound query
// (paper §4.1): normalize, copy-in to the Memo, then one goal-driven search
// pass per configured stage starting at the root optimization goal
// {Singleton, <order>}. Exploration, implementation and statistics
// derivation are scheduled on demand as dependencies of that goal rather
// than as whole-Memo phases.
//
// All stages share the Memo: a later stage re-enables rules against the
// accumulated groups and resumes search under its own rule-set epoch, so
// work done by earlier stages (exploration, implementation, costing,
// statistics) is never repeated. A stage cut short by its timeout or step
// budget keeps the best plan found so far. The best plan across stages
// wins; a stage finishing under its cost threshold short-circuits the
// remaining stages.
func Optimize(q *Query, cfg Config) (*Result, error) {
	start := time.Now()
	mem := &gpos.MemoryAccountant{}

	tree, err := Normalize(q.Tree, q.Factory)
	if err != nil {
		return nil, err
	}

	m := memo.New(mem)
	root, err := m.Insert(tree)
	if err != nil {
		return nil, err
	}
	m.SetRoot(root)

	sctx := stats.NewContext(q.Accessor)
	xctx := &xform.Context{
		Memo:             m,
		Stats:            sctx,
		Accessor:         q.Accessor,
		ColFactory:       q.Factory,
		Segments:         cfg.Segments,
		JoinOrderDPLimit: cfg.JoinOrderDPLimit,
	}
	segments := cfg.Segments
	if segments < 1 {
		segments = 1
	}
	opt := &search.Optimizer{
		Memo: m,
		XCtx: xctx,
		Cost: cost.NewModel(cost.DefaultParams(segments)),
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	rules := xform.DefaultRules()
	req := props.Required{Dist: props.SingletonDist, Order: q.Order}

	res := &Result{
		Cost:      memo.InfCost,
		Memo:      m,
		RootGroup: root,
		RootReq:   req,
	}
	var errs []error
	var prevFired int64
	for _, stage := range cfg.effectiveStages() {
		st := stage
		xctx.SetRuleSet(rules, cfg.disabled(&st))
		var deadline time.Time
		if st.Timeout > 0 {
			deadline = time.Now().Add(st.Timeout)
		}
		bestCost, sstats, err := opt.RunStage(root, req, workers, deadline, st.StepLimit)
		fired := opt.RulesFired.Load()
		run := StageRun{
			Name:       st.Name,
			Cost:       bestCost,
			TimedOut:   errors.Is(err, search.ErrTimeout),
			RulesFired: fired - prevFired,
			Search:     sstats,
		}
		prevFired = fired
		res.Search.Merge(sstats)
		res.StageRuns = append(res.StageRuns, run)
		if err != nil && !run.TimedOut {
			errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, err))
			continue
		}
		// The root context only ever improves (Offer keeps the minimum), so a
		// strictly better cost means this stage found a better plan — extract
		// it. A timed-out stage extracts its best-so-far plan the same way.
		if bestCost < res.Cost {
			plan, err := m.ExtractPlan(root, req)
			if err != nil {
				errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, err))
				continue
			}
			res.Plan = plan
			res.Cost = bestCost
			res.Stage = st.Name
		} else if run.TimedOut && res.Plan == nil {
			errs = append(errs, fmt.Errorf("stage %s: %w", st.Name, search.ErrTimeout))
		}
		if res.Plan != nil && st.CostThreshold > 0 && res.Cost <= st.CostThreshold {
			break
		}
	}
	if res.Plan == nil {
		if len(errs) > 0 {
			return nil, errors.Join(errs...)
		}
		return nil, gpos.Raise(gpos.CompOptimizer, "NoPlan", "no optimization stage produced a plan")
	}
	res.Groups = m.NumGroups()
	res.GroupExprs = m.NumExprs()
	res.RulesFired = opt.RulesFired.Load()
	res.Duration = time.Since(start)
	res.PeakMemBytes = mem.Peak()
	if cfg.TraceMemo {
		res.MemoTrace = m.String()
	}
	return res, nil
}

// Explain renders a physical plan with resolved column names, one operator
// per line with delivered properties, estimated rows and cost.
func Explain(plan *ops.Expr, f *md.ColumnFactory) string {
	var b strings.Builder
	explainNode(&b, plan, f, 0)
	return b.String()
}

func explainNode(b *strings.Builder, e *ops.Expr, f *md.ColumnFactory, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	desc := ops.Describe(e.Op)
	if f != nil {
		desc = resolveColNames(desc, f)
	}
	b.WriteString(desc)
	if e.Phys != nil {
		fmt.Fprintf(b, "   [rows=%.0f cost=%.0f dist=%s", e.Rows, e.Cost, e.Phys.Dist)
		if !e.Phys.Order.IsAny() {
			fmt.Fprintf(b, " order=%s", e.Phys.Order)
		}
		b.WriteString("]")
	}
	b.WriteByte('\n')
	for _, c := range e.Children {
		explainNode(b, c, f, depth+1)
	}
	// SubPlans (legacy Planner) carry their inner plan out-of-line.
	switch op := e.Op.(type) {
	case *ops.SubPlanFilter:
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString("SubPlan:\n")
		explainNode(b, op.Plan, f, depth+2)
	case *ops.SubPlanProject:
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString("SubPlan:\n")
		explainNode(b, op.Plan, f, depth+2)
	default:
		// Only the SubPlan operators carry an out-of-line inner plan.
	}
}

// resolveColNames rewrites c<id> tokens into column names.
func resolveColNames(s string, f *md.ColumnFactory) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == 'c' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' &&
			(i == 0 || !isWordChar(s[i-1])) {
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j >= len(s) || !isWordChar(s[j]) {
				id := 0
				for _, ch := range s[i+1 : j] {
					id = id*10 + int(ch-'0')
				}
				b.WriteString(f.Name(base.ColID(id)))
				i = j
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func isWordChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
