package core_test

import (
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/sql"
)

func normCatalog(t testing.TB) (*md.Accessor, *md.ColumnFactory) {
	t.Helper()
	p := md.NewMemProvider()
	for _, name := range []string{"r", "s", "u"} {
		md.Build(p, md.TableSpec{
			Name: name, Rows: 100, Policy: md.DistHash, DistCols: []int{0},
			Cols: []md.ColSpec{
				{Name: "k", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
				{Name: "v", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
			},
		})
	}
	return md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p), md.NewColumnFactory()
}

func normalize(t *testing.T, query string) (*ops.Expr, *md.ColumnFactory) {
	t.Helper()
	acc, f := normCatalog(t)
	q, err := sql.Bind(query, acc, f)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	out, err := core.Normalize(q.Tree, f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return out, f
}

func countOps(e *ops.Expr, name string) int {
	n := 0
	if e.Op.Name() == name {
		n++
	}
	for _, c := range e.Children {
		n += countOps(c, name)
	}
	return n
}

func treeString(e *ops.Expr) string { return e.Format(nil) }

func TestNormalizeCollapsesInnerJoins(t *testing.T) {
	tree, _ := normalize(t,
		"SELECT r.v FROM r, s, u WHERE r.k = s.k AND s.k = u.k")
	if countOps(tree, "NAryJoin") != 1 {
		t.Errorf("expected one NAryJoin:\n%s", treeString(tree))
	}
	if countOps(tree, "InnerJoin") != 0 {
		t.Errorf("binary joins survived collapse:\n%s", treeString(tree))
	}
	var nary *ops.NAryJoin
	var find func(e *ops.Expr)
	find = func(e *ops.Expr) {
		if nj, ok := e.Op.(*ops.NAryJoin); ok {
			nary = nj
		}
		for _, c := range e.Children {
			find(c)
		}
	}
	find(tree)
	if len(nary.Preds) != 2 {
		t.Errorf("join predicates = %d, want 2", len(nary.Preds))
	}
}

func TestNormalizePushesPredicatesToScans(t *testing.T) {
	tree, _ := normalize(t,
		"SELECT r.v FROM r, s WHERE r.k = s.k AND r.v > 5 AND s.v < 3")
	// Single-table conjuncts must sit in Selects directly over the Gets,
	// below the join.
	var check func(e *ops.Expr) bool
	var foundSelects int
	check = func(e *ops.Expr) bool {
		if _, ok := e.Op.(*ops.Select); ok {
			if _, isGet := e.Children[0].Op.(*ops.Get); isGet {
				foundSelects++
			}
		}
		for _, c := range e.Children {
			check(c)
		}
		return true
	}
	check(tree)
	if foundSelects != 2 {
		t.Errorf("pushed selects = %d, want 2:\n%s", foundSelects, treeString(tree))
	}
}

func TestNormalizeLeftJoinPushdownRules(t *testing.T) {
	// Right-side-only conjunct of the ON clause may go below; the
	// left-side-only ON conjunct must stay in the join.
	tree, _ := normalize(t, `
		SELECT r.v FROM r LEFT JOIN s ON r.k = s.k AND s.v = 1 AND r.v = 2`)
	s := treeString(tree)
	// The join must keep a predicate mentioning r.v (left side of LOJ).
	var loj *ops.Join
	var find func(e *ops.Expr)
	find = func(e *ops.Expr) {
		if j, ok := e.Op.(*ops.Join); ok && j.Type == ops.LeftJoin {
			loj = j
		}
		for _, c := range e.Children {
			find(c)
		}
	}
	find(tree)
	if loj == nil {
		t.Fatalf("left join lost:\n%s", s)
	}
	if len(ops.Conjuncts(loj.Pred)) != 2 {
		t.Errorf("LOJ predicate conjuncts = %d, want 2 (key + left-side filter):\n%s",
			len(ops.Conjuncts(loj.Pred)), s)
	}
}

func TestNormalizeUnnestsExists(t *testing.T) {
	tree, _ := normalize(t, `
		SELECT r.v FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.k = r.k AND s.v > 2)`)
	if countOps(tree, "SemiJoin") != 1 {
		t.Fatalf("EXISTS not unnested to semi join:\n%s", treeString(tree))
	}
	// The uncorrelated part (s.v > 2) must be pushed into the inner side,
	// the correlation becomes the join predicate.
	var semi *ops.Join
	var find func(e *ops.Expr)
	find = func(e *ops.Expr) {
		if j, ok := e.Op.(*ops.Join); ok && j.Type == ops.SemiJoin {
			semi = j
		}
		for _, c := range e.Children {
			find(c)
		}
	}
	find(tree)
	if semi.Pred == nil || len(ops.Conjuncts(semi.Pred)) != 1 {
		t.Errorf("semi join predicate: %v", semi.Pred)
	}
	if ops.FreeCols(tree).Len() != 0 {
		t.Error("normalized tree still has free columns")
	}
}

func TestNormalizeUnnestsNotInToAntiJoin(t *testing.T) {
	tree, _ := normalize(t,
		"SELECT r.v FROM r WHERE r.k NOT IN (SELECT s.k FROM s)")
	if countOps(tree, "AntiJoin") != 1 {
		t.Errorf("NOT IN not unnested to anti join:\n%s", treeString(tree))
	}
}

func TestNormalizeDecorrelatesScalarAgg(t *testing.T) {
	tree, _ := normalize(t, `
		SELECT r.v FROM r
		WHERE r.v > (SELECT avg(s.v) FROM s WHERE s.k = r.k)`)
	s := treeString(tree)
	if strings.Contains(s, "Subquery") {
		t.Fatalf("subquery survived decorrelation:\n%s", s)
	}
	// The aggregate must now group by the correlation column.
	var agg *ops.GbAgg
	var find func(e *ops.Expr)
	find = func(e *ops.Expr) {
		if a, ok := e.Op.(*ops.GbAgg); ok {
			agg = a
		}
		for _, c := range e.Children {
			find(c)
		}
	}
	find(tree)
	if agg == nil || len(agg.GroupCols) != 1 {
		t.Fatalf("decorrelated aggregate missing correlation grouping:\n%s", s)
	}
}

func TestNormalizeRejectsNonEqualityAggCorrelation(t *testing.T) {
	acc, f := normCatalog(t)
	q, err := sql.Bind(`
		SELECT r.v FROM r
		WHERE r.v > (SELECT avg(s.v) FROM s WHERE s.k < r.k)`, acc, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Normalize(q.Tree, f); err == nil {
		t.Error("non-equality aggregate correlation must be rejected, not silently mis-planned")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	tree, f := normalize(t,
		"SELECT r.v FROM r, s WHERE r.k = s.k AND r.v > 5")
	again, err := core.Normalize(tree, f)
	if err != nil {
		t.Fatal(err)
	}
	if treeString(again) != treeString(tree) {
		t.Errorf("normalization not idempotent:\n--- first ---\n%s--- second ---\n%s",
			treeString(tree), treeString(again))
	}
}

func bindFresh(t *testing.T, query string) *core.Query {
	t.Helper()
	acc, f := normCatalog(t)
	q, err := sql.Bind(query, acc, f)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestMultiStageOptimizationPrefersBest(t *testing.T) {
	const query = "SELECT r.v FROM r, s WHERE r.k = s.k ORDER BY r.v"
	cfg := core.DefaultConfig(16)
	cfg.Stages = []core.Stage{
		{Name: "crippled", DisabledRules: []string{"Join2HashJoin"}},
		{Name: "full"},
	}
	res, err := core.Optimize(bindFresh(t, query), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage != "full" {
		t.Errorf("winning stage = %q, want the full stage's cheaper plan", res.Stage)
	}

	cfg2 := core.DefaultConfig(16)
	cfg2.Stages = []core.Stage{
		{Name: "quick", CostThreshold: 1e18}, // any plan beats the threshold
		{Name: "never"},
	}
	res2, err := core.Optimize(bindFresh(t, query), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stage != "quick" {
		t.Errorf("cost threshold did not short-circuit: stage %q", res2.Stage)
	}
}
