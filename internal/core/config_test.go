package core

import (
	"testing"
	"time"

	"orca/internal/md"
)

func TestMultiStageConfig(t *testing.T) {
	cfg := DefaultConfig(4)
	if got := cfg.effectiveStages(); len(got) != 1 || got[0].Name != "full" {
		t.Errorf("default stages = %v", got)
	}
	cfg.DisabledRules = []string{"A"}
	cfg.Stages = []Stage{{Name: "s1", DisabledRules: []string{"B"}}}
	d := cfg.disabled(&cfg.Stages[0])
	if !d["A"] || !d["B"] || d["C"] {
		t.Errorf("disabled set = %v", d)
	}
}

func TestConfigValidate(t *testing.T) {
	valid := func(mut func(*Config)) Config {
		cfg := DefaultConfig(16)
		cfg.MemoryBudget = 1 << 20
		cfg.MaxGroups = 100
		cfg.MDLookupTimeout = time.Second
		cfg.MDRetry = md.RetryPolicy{MaxAttempts: 3, InitialBackoff: time.Millisecond}
		cfg.Stages = []Stage{{Name: "s", Timeout: time.Second, StepLimit: 100}}
		if mut != nil {
			mut(&cfg)
		}
		return cfg
	}

	cfg := valid(nil)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Zero values are all meaningful (unbounded / defaults), not errors.
	zero := Config{}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}

	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative segments", func(c *Config) { c.Segments = -1 }},
		{"negative workers", func(c *Config) { c.Workers = -2 }},
		{"negative dp limit", func(c *Config) { c.JoinOrderDPLimit = -1 }},
		{"negative memory budget", func(c *Config) { c.MemoryBudget = -1 }},
		{"negative group cap", func(c *Config) { c.MaxGroups = -5 }},
		{"negative md timeout", func(c *Config) { c.MDLookupTimeout = -time.Second }},
		{"negative retry attempts", func(c *Config) { c.MDRetry.MaxAttempts = -1 }},
		{"negative retry backoff", func(c *Config) { c.MDRetry.InitialBackoff = -time.Millisecond }},
		{"negative stage timeout", func(c *Config) { c.Stages[0].Timeout = -time.Second }},
		{"negative stage steps", func(c *Config) { c.Stages[0].StepLimit = -1 }},
		{"negative cost threshold", func(c *Config) { c.Stages[0].CostThreshold = -1 }},
	}
	for _, tc := range bad {
		cfg := valid(tc.mut)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a nonsensical config", tc.name)
		}
	}
}

func TestScaleBudgets(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MemoryBudget = 1000
	cfg.MaxGroups = 200
	cfg.MDLookupTimeout = time.Second
	cfg.Stages = []Stage{{Name: "s", Timeout: 2 * time.Second, StepLimit: 1000}}

	half := cfg.ScaleBudgets(0.5)
	if half.MemoryBudget != 500 || half.MaxGroups != 100 {
		t.Errorf("half budgets = %d bytes / %d groups, want 500/100", half.MemoryBudget, half.MaxGroups)
	}
	if half.MDLookupTimeout != 500*time.Millisecond {
		t.Errorf("half MD timeout = %v, want 500ms", half.MDLookupTimeout)
	}
	if half.Stages[0].Timeout != time.Second || half.Stages[0].StepLimit != 500 {
		t.Errorf("half stage = %+v", half.Stages[0])
	}
	// The original must be untouched (Stages is copied, not shared).
	if cfg.Stages[0].StepLimit != 1000 || cfg.MemoryBudget != 1000 {
		t.Errorf("ScaleBudgets mutated the baseline: %+v", cfg)
	}

	// Unbounded stays unbounded; scaling cannot invent a limit.
	free := DefaultConfig(16).ScaleBudgets(0.25)
	if free.MemoryBudget != 0 || free.MaxGroups != 0 || free.MDLookupTimeout != 0 {
		t.Errorf("unbounded budgets gained limits: %+v", free)
	}

	// A tiny fraction clamps to 1, never 0 ("unbounded") or negative.
	tiny := cfg.ScaleBudgets(0.0001)
	if tiny.MemoryBudget != 1 || tiny.MaxGroups != 1 {
		t.Errorf("tiny scale = %d bytes / %d groups, want 1/1", tiny.MemoryBudget, tiny.MaxGroups)
	}

	// Out-of-range fractions are identity.
	if got := cfg.ScaleBudgets(0); got.MemoryBudget != 1000 {
		t.Errorf("frac 0 scaled: %+v", got)
	}
	if got := cfg.ScaleBudgets(1.5); got.MemoryBudget != 1000 {
		t.Errorf("frac 1.5 scaled: %+v", got)
	}
}
