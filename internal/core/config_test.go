package core

import "testing"

func TestMultiStageConfig(t *testing.T) {
	cfg := DefaultConfig(4)
	if got := cfg.effectiveStages(); len(got) != 1 || got[0].Name != "full" {
		t.Errorf("default stages = %v", got)
	}
	cfg.DisabledRules = []string{"A"}
	cfg.Stages = []Stage{{Name: "s1", DisabledRules: []string{"B"}}}
	d := cfg.disabled(&cfg.Stages[0])
	if !d["A"] || !d["B"] || d["C"] {
		t.Errorf("disabled set = %v", d)
	}
}
