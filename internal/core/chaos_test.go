package core

import (
	"os"
	"strconv"
	"testing"

	"orca/internal/fault"
	"orca/internal/gpos"
)

// TestChaosSchedule is the CI chaos mode (paper §6.1: "automate testing the
// unexpected"): each round arms a seeded randomized fault schedule — errors,
// delays and panics at points drawn from the registered table — and
// optimizes real queries under it. The invariants are survival invariants,
// independent of which faults fire: the process never crashes, every failure
// that escapes is a structured gpos.Exception, the degradation ladder always
// lands on a valid plan, and no armed fault leaks past Optimize.
//
// The schedule is reproducible from the seed: run with ORCA_CHAOS=1 and
// ORCA_CHAOS_SEED=<n> to replay a CI failure. check.sh runs this under -race
// with a date-derived seed so the schedule rotates daily.
func TestChaosSchedule(t *testing.T) {
	if os.Getenv("ORCA_CHAOS") == "" {
		t.Skip("chaos mode: set ORCA_CHAOS=1 (and optionally ORCA_CHAOS_SEED=<n>) to run")
	}
	seed := int64(1)
	if s := os.Getenv("ORCA_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ORCA_CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d", seed)

	for round := 0; round < 10; round++ {
		specs := fault.RandomSchedule(seed+int64(round), 3)
		t.Logf("round %d: %s", round, fault.FormatSpecs(specs))

		var q *Query
		if round%2 == 0 {
			q, _ = paperExample(t)
		} else {
			q, _ = threeWayExample(t)
		}
		cfg := DefaultConfig(16)
		cfg.Workers = 1 + round%4
		cfg.Faults = specs
		switch round % 3 {
		case 1:
			cfg.MaxGroups = 500
		case 2:
			cfg.MemoryBudget = 64 << 20
		}

		res, err := Optimize(q, cfg)
		if err != nil {
			// The ladder's minimal rung has no fault points, so failures
			// should not normally escape — but if one does, it must be
			// structured, never a raw panic or bare error.
			if ex := gpos.AsException(err); ex == nil {
				t.Fatalf("round %d: unstructured failure escaped Optimize: %v", round, err)
			}
			t.Logf("round %d: structured failure: %v", round, err)
		} else {
			checkPlanShape(t, q, res.Plan)
			if res.Degraded {
				t.Logf("round %d: degraded to %s rung after %s/%s",
					round, res.DegradedRung, res.Failure.Comp, res.Failure.Code)
			}
		}
		if fault.Enabled() {
			t.Fatalf("round %d: faults still armed after Optimize", round)
		}
	}
}
