package core

import (
	"errors"
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
	"orca/internal/search"
)

// checkPlanShape verifies a plan is structurally valid: all nodes physical
// with derived properties, and the root delivering the query's requirements.
func checkPlanShape(t *testing.T, q *Query, plan *ops.Expr) {
	t.Helper()
	if plan == nil {
		t.Fatal("nil plan")
	}
	var walk func(e *ops.Expr)
	walk = func(e *ops.Expr) {
		if _, ok := e.Op.(ops.Physical); !ok {
			t.Fatalf("plan node %s is not a physical operator", e.Op.Name())
		}
		if e.Phys == nil {
			t.Fatalf("plan node %s missing derived properties", e.Op.Name())
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(plan)
	if !plan.Phys.Dist.Satisfies(props.SingletonDist) {
		t.Errorf("plan root delivers %s, want singleton", plan.Phys.Dist)
	}
	if !plan.Phys.Order.Satisfies(q.Order) {
		t.Errorf("plan root delivers order %s, want %s", plan.Phys.Order, q.Order)
	}
}

// TestPanicFaultDegradesToHeuristic is the headline robustness scenario: a
// fault point inside a scheduler job panics, the process survives, the
// failure is captured as a dump with the original panic stack, and Optimize
// still returns a valid plan via the ladder's heuristic rung.
func TestPanicFaultDegradesToHeuristic(t *testing.T) {
	q, f := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.Faults = []fault.Spec{{
		Point:  fault.PointSearchJobExec,
		Action: fault.ActPanic,
		Limit:  1, // one panic: the normal pass dies, the heuristic rung is clean
	}}
	var captured *gpos.Exception
	cfg.DumpCapture = func(_ *Query, _ Config, failure *gpos.Exception) string {
		captured = failure
		return "dumps/panic.ampere.xml"
	}

	res, err := Optimize(q, cfg)
	if err != nil {
		t.Fatalf("degradation ladder should have rescued the panic: %v", err)
	}
	if !res.Degraded || res.DegradedRung != RungHeuristic {
		t.Fatalf("want heuristic-rung degraded result, got degraded=%v rung=%q",
			res.Degraded, res.DegradedRung)
	}
	checkPlanShape(t, q, res.Plan)
	if Explain(res.Plan, f) == "" {
		t.Error("degraded plan should be explainable")
	}

	if res.Failure == nil || res.Failure.Code != gpos.CodePanic {
		t.Fatalf("want contained panic as failure, got %v", res.Failure)
	}
	if len(res.Failure.Stack) == 0 || !strings.Contains(res.Failure.Stack[0], "injectPanic") {
		t.Errorf("failure stack should start at the original panic site, got %v", res.Failure.Stack)
	}
	if captured != res.Failure {
		t.Error("DumpCapture should receive the failure reported in the result")
	}
	if res.DumpPath != "dumps/panic.ampere.xml" {
		t.Errorf("dump path not reported: %q", res.DumpPath)
	}
	if fault.Enabled() {
		t.Error("faults must be disarmed when Optimize returns")
	}
}

// threeWayExample extends the paper example with a third relation so that
// full exploration (DP join ordering) materializes strictly more Memo groups
// than a greedy-only pass — which is what the MaxGroups guard test needs.
func threeWayExample(t *testing.T) (*Query, *md.ColumnFactory) {
	t.Helper()
	p := md.NewMemProvider()
	for i, rows := range []float64{100000, 80000, 60000} {
		md.Build(p, md.TableSpec{
			Name:   "T" + string(rune('1'+i)),
			Rows:   rows,
			Policy: md.DistHash, DistCols: []int{0},
			Cols: []md.ColSpec{
				{Name: "a", Type: base.TInt, NDV: 50000, Lo: 0, Hi: 50000},
				{Name: "b", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
			},
		})
	}
	acc := md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p)
	f := md.NewColumnFactory()
	get := func(name string) *ops.Get {
		rel, err := acc.RelationByName(name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		cols := make([]*md.ColRef, len(rel.Columns))
		for i, c := range rel.Columns {
			cols[i] = f.NewTableColumn(rel.Name+"."+c.Name, c.Type, rel.Mdid, i)
		}
		return &ops.Get{Alias: rel.Name, Rel: rel, Cols: cols}
	}
	g1, g2, g3 := get("T1"), get("T2"), get("T3")
	j12 := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: ops.Eq(
			ops.NewIdent(g1.Cols[0].ID, base.TInt),
			ops.NewIdent(g2.Cols[1].ID, base.TInt),
		)},
		ops.NewExpr(g1), ops.NewExpr(g2),
	)
	tree := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: ops.Eq(
			ops.NewIdent(g2.Cols[0].ID, base.TInt),
			ops.NewIdent(g3.Cols[1].ID, base.TInt),
		)},
		j12, ops.NewExpr(g3),
	)
	return &Query{
		Tree:     tree,
		Order:    props.MakeOrder(g1.Cols[0].ID),
		OutCols:  []base.ColID{g1.Cols[0].ID},
		OutNames: []string{"a"},
		Factory:  f,
		Accessor: acc,
	}, f
}

// TestMaxGroupsAbortsBestSoFar checks the resource-guard drain: a Memo group
// cap trips during a later, wider stage; the stage is marked Aborted and the
// session still returns the best plan found before the guard fired.
func TestMaxGroupsAbortsBestSoFar(t *testing.T) {
	heuristicOff := []string{
		"JoinCommutativity", "JoinAssociativity", "JoinAssociativityRight",
		"JoinAssociativityExchange", "PushSelectThroughJoin", "PushSelectThroughGbAgg",
		"ExpandNAryJoinDP", "ExpandNAryJoinLeftDeep",
	}

	// Calibrate: how many groups does the light stage alone need?
	q0, _ := threeWayExample(t)
	cfg0 := DefaultConfig(16)
	cfg0.Stages = []Stage{{Name: "light", DisabledRules: heuristicOff}}
	lite, err := Optimize(q0, cfg0)
	if err != nil {
		t.Fatalf("light run: %v", err)
	}

	q, _ := threeWayExample(t)
	cfg := DefaultConfig(16)
	cfg.Stages = []Stage{
		{Name: "light", DisabledRules: heuristicOff},
		{Name: "full"},
	}
	cfg.MaxGroups = lite.Groups + 1 // stage 1 fits; stage 2's exploration does not
	res, err := Optimize(q, cfg)
	if err != nil {
		t.Fatalf("guarded run should keep best-so-far: %v", err)
	}
	if res.Degraded {
		t.Error("best-so-far abort is not a degradation")
	}
	if len(res.StageRuns) != 2 || res.StageRuns[0].Aborted || !res.StageRuns[1].Aborted {
		t.Fatalf("want only stage 2 aborted, got %+v", res.StageRuns)
	}
	checkPlanShape(t, q, res.Plan)
	if res.Cost > lite.Cost {
		t.Errorf("best-so-far cost %v worse than the light stage alone (%v)", res.Cost, lite.Cost)
	}
	if err := res.Memo.Validate(); err != nil {
		t.Errorf("aborted Memo invalid: %v", err)
	}
}

// TestMemoryBudgetMinimalRung: a budget too small for any search at all
// walks the ladder to the bottom rung, which emits a minimal valid plan
// without touching the scheduler.
func TestMemoryBudgetMinimalRung(t *testing.T) {
	q, f := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.MemoryBudget = 1 // trips on the first quota poll of every search pass

	res, err := Optimize(q, cfg)
	if err != nil {
		t.Fatalf("minimal rung should always produce a plan: %v", err)
	}
	if !res.Degraded || res.DegradedRung != RungMinimal {
		t.Fatalf("want minimal-rung result, got degraded=%v rung=%q", res.Degraded, res.DegradedRung)
	}
	checkPlanShape(t, q, res.Plan)
	if res.Failure == nil || !errors.Is(res.Failure, search.ErrBudget) {
		t.Errorf("failure should record the budget abort, got %v", res.Failure)
	}
	plan := Explain(res.Plan, f)
	if !strings.Contains(plan, "NLJoin") {
		t.Errorf("minimal plan should use nested-loops joins:\n%s", plan)
	}
}

// TestExtractFaultDegrades covers the plan-extraction fault point: the
// normal pass finds a best cost but cannot extract, so the ladder retries.
func TestExtractFaultDegrades(t *testing.T) {
	q, _ := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.Faults = []fault.Spec{{Point: fault.PointCoreExtract, Action: fault.ActError, Limit: 1}}
	res, err := Optimize(q, cfg)
	if err != nil {
		t.Fatalf("ladder should rescue extraction failure: %v", err)
	}
	if !res.Degraded || res.DegradedRung != RungHeuristic {
		t.Fatalf("want heuristic rung, got degraded=%v rung=%q", res.Degraded, res.DegradedRung)
	}
	if res.Failure == nil {
		t.Fatal("missing failure")
	}
	ex := gpos.AsException(res.Failure)
	if ex == nil || ex.Code != fault.CodeInjected {
		t.Errorf("failure should carry the injected fault, got %v", res.Failure)
	}
	checkPlanShape(t, q, res.Plan)
}

// TestDisableDegradationSurfacesError pins the opt-out: with the ladder off,
// the contained failure comes back as the error.
func TestDisableDegradationSurfacesError(t *testing.T) {
	q, _ := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.DisableDegradation = true
	cfg.Faults = []fault.Spec{{Point: fault.PointSearchJobExec, Action: fault.ActPanic}}
	_, err := Optimize(q, cfg)
	ex := gpos.AsException(err)
	if ex == nil || ex.Code != gpos.CodePanic {
		t.Fatalf("want contained panic error, got %v", err)
	}
}

// TestNormalizeFaultMinimalRung: a transient failure before the Memo even
// exists (at the core/normalize fault point) still ends in a plan — the
// minimal builder re-runs normalization itself, which is not behind that
// fault point. A genuine normalization error (unsupported query shape)
// still fails all the way down; see TestAutomaticAmpereCaptureOnError.
func TestNormalizeFaultMinimalRung(t *testing.T) {
	q, _ := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.Faults = []fault.Spec{{Point: fault.PointCoreNormalize, Action: fault.ActError}}
	res, err := Optimize(q, cfg)
	if err != nil {
		t.Fatalf("minimal rung should rescue normalize failure: %v", err)
	}
	if res.DegradedRung != RungMinimal {
		t.Fatalf("want minimal rung, got %q", res.DegradedRung)
	}
	checkPlanShape(t, q, res.Plan)
}
