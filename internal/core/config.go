// Package core ties Orca's components into the optimization workflow of
// paper §4.1: normalization of the input query (including subquery
// decorrelation and n-ary join collapse), copy-in to the Memo, exploration,
// statistics derivation, implementation, property-driven optimization, and
// plan extraction — optionally across multiple optimization stages with rule
// subsets, timeouts and cost thresholds.
package core

import (
	"time"

	"orca/internal/fault"
	"orca/internal/gpos"
)

// Stage configures one optimization stage (paper §4.1 "Multi-Stage
// Optimization"): a complete optimization workflow using a subset of
// transformation rules with an optional timeout and cost threshold. A stage
// terminates when a plan under the threshold is found, the timeout fires, or
// its rule subset is exhausted.
type Stage struct {
	Name string
	// DisabledRules names transformation rules switched off in this stage.
	DisabledRules []string
	// Timeout bounds the stage's wall-clock time (0 = none). A stage cut
	// short keeps the best plan found so far rather than discarding its work.
	Timeout time.Duration
	// StepLimit bounds the stage's scheduler job steps (0 = none). It is the
	// deterministic analogue of Timeout: the same query and configuration
	// always stop at the same point in the search.
	StepLimit int64
	// CostThreshold stops the multi-stage loop early once a stage produces
	// a plan at or below this cost (0 = none).
	CostThreshold float64
}

// Config controls one optimization session.
type Config struct {
	// Segments is the number of segments in the target cluster.
	Segments int
	// Workers is the job-scheduler parallelism (paper §4.2); 1 gives a
	// deterministic sequential search.
	Workers int
	// DisabledRules switches off transformation rules globally, in addition
	// to any per-stage subsets.
	DisabledRules []string
	// JoinOrderDPLimit caps exhaustive dynamic-programming join ordering;
	// larger joins fall back to the greedy cardinality-based rule.
	JoinOrderDPLimit int
	// Stages optionally splits optimization into stages; empty means one
	// unrestricted stage.
	Stages []Stage
	// TraceMemo retains a printable dump of the final Memo in the result.
	TraceMemo bool

	// Faults arms the named fault points of internal/fault for the duration
	// of the session (disarmed when Optimize returns). Specs are parsed from
	// the ORCA_FAULTS grammar by fault.ParseSpecs.
	Faults []fault.Spec
	// MemoryBudget caps the memory charged to the session's accountant, in
	// bytes (0 = unlimited). When exceeded, the running stage is cut short
	// through the scheduler's drain path: the best plan found so far is kept
	// and the stage is marked Aborted.
	MemoryBudget int64
	// MaxGroups caps the number of Memo groups (0 = unlimited), aborting the
	// stage through the same drain path as MemoryBudget.
	MaxGroups int
	// MDLookupTimeout bounds each metadata provider lookup (0 = none); a
	// lookup that exceeds it fails with a CompMD LookupTimeout exception.
	MDLookupTimeout time.Duration
	// DisableDegradation turns off the degradation ladder: a failed
	// optimization returns its error instead of retrying on lower rungs.
	// The ladder's rungs use it internally to avoid recursing.
	DisableDegradation bool
	// DumpCapture, when set, is called once when the normal optimization pass
	// fails and the degradation ladder engages; it writes a diagnostic dump
	// (AMPERe) and returns its path, reported in Result.DumpPath. It is a
	// callback so core does not depend on the ampere package.
	DumpCapture func(q *Query, cfg Config, failure *gpos.Exception) string
}

// DefaultConfig returns a single-stage configuration for a cluster with the
// given segment count.
func DefaultConfig(segments int) Config {
	return Config{
		Segments:         segments,
		Workers:          1,
		JoinOrderDPLimit: 10,
	}
}

// disabled builds the effective rule-disable set for a stage.
func (c *Config) disabled(stage *Stage) map[string]bool {
	out := make(map[string]bool)
	for _, r := range c.DisabledRules {
		out[r] = true
	}
	if stage != nil {
		for _, r := range stage.DisabledRules {
			out[r] = true
		}
	}
	return out
}

// effectiveStages returns the configured stages, or the default single
// unrestricted stage.
func (c *Config) effectiveStages() []Stage {
	if len(c.Stages) == 0 {
		return []Stage{{Name: "full"}}
	}
	return c.Stages
}
