// Package core ties Orca's components into the optimization workflow of
// paper §4.1: normalization of the input query (including subquery
// decorrelation and n-ary join collapse), copy-in to the Memo, exploration,
// statistics derivation, implementation, property-driven optimization, and
// plan extraction — optionally across multiple optimization stages with rule
// subsets, timeouts and cost thresholds.
package core

import (
	"fmt"
	"time"

	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
)

// Stage configures one optimization stage (paper §4.1 "Multi-Stage
// Optimization"): a complete optimization workflow using a subset of
// transformation rules with an optional timeout and cost threshold. A stage
// terminates when a plan under the threshold is found, the timeout fires, or
// its rule subset is exhausted.
type Stage struct {
	Name string
	// DisabledRules names transformation rules switched off in this stage.
	DisabledRules []string
	// Timeout bounds the stage's wall-clock time (0 = none). A stage cut
	// short keeps the best plan found so far rather than discarding its work.
	Timeout time.Duration
	// StepLimit bounds the stage's scheduler job steps (0 = none). It is the
	// deterministic analogue of Timeout: the same query and configuration
	// always stop at the same point in the search.
	StepLimit int64
	// CostThreshold stops the multi-stage loop early once a stage produces
	// a plan at or below this cost (0 = none).
	CostThreshold float64
}

// Config controls one optimization session.
type Config struct {
	// Segments is the number of segments in the target cluster.
	Segments int
	// Workers is the job-scheduler parallelism (paper §4.2); 1 gives a
	// deterministic sequential search.
	Workers int
	// DisabledRules switches off transformation rules globally, in addition
	// to any per-stage subsets.
	DisabledRules []string
	// JoinOrderDPLimit caps exhaustive dynamic-programming join ordering;
	// larger joins fall back to the greedy cardinality-based rule.
	JoinOrderDPLimit int
	// Stages optionally splits optimization into stages; empty means one
	// unrestricted stage.
	Stages []Stage
	// TraceMemo retains a printable dump of the final Memo in the result.
	TraceMemo bool

	// Faults arms the named fault points of internal/fault for the duration
	// of the session (disarmed when Optimize returns). Specs are parsed from
	// the ORCA_FAULTS grammar by fault.ParseSpecs.
	Faults []fault.Spec
	// MemoryBudget caps the memory charged to the session's accountant, in
	// bytes (0 = unlimited). When exceeded, the running stage is cut short
	// through the scheduler's drain path: the best plan found so far is kept
	// and the stage is marked Aborted.
	MemoryBudget int64
	// MaxGroups caps the number of Memo groups (0 = unlimited), aborting the
	// stage through the same drain path as MemoryBudget.
	MaxGroups int
	// MDLookupTimeout bounds each metadata provider lookup. Zero means
	// UNBOUNDED: a hung provider can stall the session indefinitely, which
	// is acceptable for one-shot CLI runs against in-memory or file
	// providers but never for a serving tier — cmd/orcad therefore always
	// installs a non-zero default (and Config.Validate rejects negative
	// values). A lookup that exceeds the bound fails with a CompMD
	// LookupTimeout exception, classified transient by md.IsTransient so
	// the MDRetry policy (when armed) may try again.
	MDLookupTimeout time.Duration
	// MDRetry retries transient metadata provider lookups with exponential
	// backoff and jitter (see md.RetryPolicy). The zero policy disables
	// retry. Each attempt runs under MDLookupTimeout; the whole loop is
	// budgeted by the request context's deadline.
	MDRetry md.RetryPolicy
	// DisableDegradation turns off the degradation ladder: a failed
	// optimization returns its error instead of retrying on lower rungs.
	// The ladder's rungs use it internally to avoid recursing.
	DisableDegradation bool
	// DumpCapture, when set, is called once when the normal optimization pass
	// fails and the degradation ladder engages; it writes a diagnostic dump
	// (AMPERe) and returns its path, reported in Result.DumpPath. It is a
	// callback so core does not depend on the ampere package.
	DumpCapture func(q *Query, cfg Config, failure *gpos.Exception) string
}

// DefaultConfig returns a single-stage configuration for a cluster with the
// given segment count.
func DefaultConfig(segments int) Config {
	return Config{
		Segments:         segments,
		Workers:          1,
		JoinOrderDPLimit: 10,
	}
}

// Validate rejects nonsensical configurations with a clear error instead of
// letting them produce confusing behavior deep in the search (a negative
// memory budget reads as "already exhausted", negative workers would deadlock
// the scheduler pool). Zero values are meaningful everywhere — zero budget,
// groups cap, or timeout mean unbounded; zero workers means the default of 1
// — so only genuinely impossible values fail. Hosts that accept external
// configuration (cmd/orca, cmd/orcad, the serving tier) call this before the
// first request rather than discovering a bad flag mid-storm.
func (c *Config) Validate() error {
	if c.Segments < 0 {
		return fmt.Errorf("core: config: Segments = %d; want >= 0 (0 means single-segment)", c.Segments)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: config: Workers = %d; want >= 0 (0 means the default of 1)", c.Workers)
	}
	if c.JoinOrderDPLimit < 0 {
		return fmt.Errorf("core: config: JoinOrderDPLimit = %d; want >= 0", c.JoinOrderDPLimit)
	}
	if c.MemoryBudget < 0 {
		return fmt.Errorf("core: config: MemoryBudget = %d bytes; want >= 0 (0 means unlimited)", c.MemoryBudget)
	}
	if c.MaxGroups < 0 {
		return fmt.Errorf("core: config: MaxGroups = %d; want >= 0 (0 means unlimited)", c.MaxGroups)
	}
	if c.MDLookupTimeout < 0 {
		return fmt.Errorf("core: config: MDLookupTimeout = %v; want >= 0 (0 means unbounded lookups)", c.MDLookupTimeout)
	}
	if c.MDRetry.MaxAttempts < 0 {
		return fmt.Errorf("core: config: MDRetry.MaxAttempts = %d; want >= 0 (0 or 1 disables retry)", c.MDRetry.MaxAttempts)
	}
	if c.MDRetry.InitialBackoff < 0 || c.MDRetry.MaxBackoff < 0 {
		return fmt.Errorf("core: config: MDRetry backoffs (%v initial, %v max) must be >= 0",
			c.MDRetry.InitialBackoff, c.MDRetry.MaxBackoff)
	}
	for i, st := range c.Stages {
		if st.Timeout < 0 {
			return fmt.Errorf("core: config: stage %d (%s): Timeout = %v; want >= 0", i, st.Name, st.Timeout)
		}
		if st.StepLimit < 0 {
			return fmt.Errorf("core: config: stage %d (%s): StepLimit = %d; want >= 0", i, st.Name, st.StepLimit)
		}
		if st.CostThreshold < 0 {
			return fmt.Errorf("core: config: stage %d (%s): CostThreshold = %v; want >= 0", i, st.Name, st.CostThreshold)
		}
	}
	return nil
}

// ScaleBudgets derives a per-request configuration from a server-wide
// baseline by scaling every resource budget by frac in (0, 1]: memory,
// group cap, per-lookup metadata timeout, and per-stage timeouts and step
// limits all shrink proportionally. The serving tier calls this with a
// load-derived fraction so that under admission pressure a hard query gets
// a smaller search (and degrades sooner) instead of monopolizing the
// process — a storm of hard queries then sheds work gracefully rather than
// toppling the server. Unbounded budgets (zero) stay unbounded: scaling
// cannot invent a limit the operator did not set. Fractions outside (0, 1)
// return the config unchanged.
func (c Config) ScaleBudgets(frac float64) Config {
	if frac <= 0 || frac >= 1 {
		return c
	}
	scaled := c
	if c.MemoryBudget > 0 {
		scaled.MemoryBudget = scaledInt64(c.MemoryBudget, frac)
	}
	if c.MaxGroups > 0 {
		scaled.MaxGroups = int(scaledInt64(int64(c.MaxGroups), frac))
	}
	if c.MDLookupTimeout > 0 {
		scaled.MDLookupTimeout = time.Duration(scaledInt64(int64(c.MDLookupTimeout), frac))
	}
	if len(c.Stages) > 0 {
		stages := make([]Stage, len(c.Stages))
		copy(stages, c.Stages)
		for i := range stages {
			if stages[i].Timeout > 0 {
				stages[i].Timeout = time.Duration(scaledInt64(int64(stages[i].Timeout), frac))
			}
			if stages[i].StepLimit > 0 {
				stages[i].StepLimit = scaledInt64(stages[i].StepLimit, frac)
			}
		}
		scaled.Stages = stages
	}
	return scaled
}

// scaledInt64 scales v by frac, clamping to at least 1 so a bounded budget
// never becomes "unbounded" (0) or negative through scaling.
func scaledInt64(v int64, frac float64) int64 {
	s := int64(float64(v) * frac)
	if s < 1 {
		return 1
	}
	return s
}

// disabled builds the effective rule-disable set for a stage.
func (c *Config) disabled(stage *Stage) map[string]bool {
	out := make(map[string]bool)
	for _, r := range c.DisabledRules {
		out[r] = true
	}
	if stage != nil {
		for _, r := range stage.DisabledRules {
			out[r] = true
		}
	}
	return out
}

// effectiveStages returns the configured stages, or the default single
// unrestricted stage.
func (c *Config) effectiveStages() []Stage {
	if len(c.Stages) == 0 {
		return []Stage{{Name: "full"}}
	}
	return c.Stages
}
