package core

import (
	"orca/internal/base"
	"orca/internal/ops"
)

// PushPredicates runs predicate pushdown over a logical tree. It is exported
// for the legacy Planner baseline, which shares PostgreSQL-style pushdown
// but none of Orca's decorrelation or n-ary join collapse.
func PushPredicates(e *ops.Expr) *ops.Expr { return pushPreds(e, nil) }

// pushPreds pushes the given predicates (plus any Select predicates found on
// the way) down to the lowest operator whose output columns cover them.
// Predicate pushdown happens once during normalization, so the Memo's
// exploration space is built from a canonical tree.
func pushPreds(e *ops.Expr, preds []ops.ScalarExpr) *ops.Expr {
	switch op := e.Op.(type) {
	case *ops.Select:
		return pushPreds(e.Children[0], append(preds, ops.Conjuncts(op.Pred)...))

	case *ops.Join:
		return pushJoin(e, op, preds)

	case *ops.GbAgg:
		groupSet := base.MakeColSet(op.GroupCols...)
		var below, above []ops.ScalarExpr
		for _, p := range preds {
			if p.Cols().SubsetOf(groupSet) {
				below = append(below, p)
			} else {
				above = append(above, p)
			}
		}
		out := ops.NewExpr(op, pushPreds(e.Children[0], below))
		return wrapSelect(out, above)

	case *ops.Project:
		pass := make(map[base.ColID]base.ColID)
		for _, el := range op.Elems {
			if id, ok := el.Expr.(*ops.Ident); ok {
				pass[el.Col.ID] = id.Col
			}
		}
		var below, above []ops.ScalarExpr
		for _, p := range preds {
			if translated, ok := translatePred(p, pass); ok {
				below = append(below, translated)
			} else {
				above = append(above, p)
			}
		}
		out := ops.NewExpr(op, pushPreds(e.Children[0], below))
		return wrapSelect(out, above)

	case *ops.Window:
		partSet := base.MakeColSet(op.PartitionCols...)
		var below, above []ops.ScalarExpr
		for _, p := range preds {
			if p.Cols().SubsetOf(partSet) {
				below = append(below, p)
			} else {
				above = append(above, p)
			}
		}
		out := ops.NewExpr(op, pushPreds(e.Children[0], below))
		return wrapSelect(out, above)

	case *ops.UnionAll:
		children := make([]*ops.Expr, len(e.Children))
		var above []ops.ScalarExpr
		// Map output columns to each child's columns positionally.
		outPos := make(map[base.ColID]int)
		for i, c := range op.OutCols {
			outPos[c.ID] = i
		}
		var pushable []ops.ScalarExpr
		for _, p := range preds {
			ok := true
			p.Cols().ForEach(func(c base.ColID) {
				if _, found := outPos[c]; !found {
					ok = false
				}
			})
			if ok {
				pushable = append(pushable, p)
			} else {
				above = append(above, p)
			}
		}
		for i := range e.Children {
			mapping := make(map[base.ColID]base.ColID)
			for _, p := range pushable {
				p.Cols().ForEach(func(c base.ColID) {
					mapping[c] = op.InCols[i][outPos[c]]
				})
			}
			var childPreds []ops.ScalarExpr
			for _, p := range pushable {
				childPreds = append(childPreds, ops.ReplaceCols(p, mapping))
			}
			children[i] = pushPreds(e.Children[i], childPreds)
		}
		return wrapSelect(ops.NewExpr(op, children...), above)

	case *ops.CTEAnchor:
		producer := pushPreds(e.Children[0], nil)
		body := pushPreds(e.Children[1], preds)
		return ops.NewExpr(op, producer, body)

	case *ops.Limit:
		// Nothing may move below a limit.
		out := ops.NewExpr(op, pushPreds(e.Children[0], nil))
		return wrapSelect(out, preds)

	default:
		// Leaves (Get, CTEConsumer) and anything unrecognized: recurse into
		// children with no predicates and wrap the remainder here.
		if len(e.Children) > 0 {
			children := make([]*ops.Expr, len(e.Children))
			for i, c := range e.Children {
				children[i] = pushPreds(c, nil)
			}
			e = ops.NewExpr(e.Op, children...)
		}
		return wrapSelect(e, preds)
	}
}

// pushJoin distributes predicates around a join according to its type.
func pushJoin(e *ops.Expr, op *ops.Join, preds []ops.ScalarExpr) *ops.Expr {
	leftCols := ops.OutputColsOf(e.Children[0])
	rightCols := ops.OutputColsOf(e.Children[1])
	jconj := ops.Conjuncts(op.Pred)

	var leftPreds, rightPreds, joinPreds, above []ops.ScalarExpr
	route := func(p ops.ScalarExpr, fromAbove bool) {
		cols := p.Cols()
		switch {
		case cols.SubsetOf(leftCols):
			if op.Type == ops.InnerJoin || fromAbove {
				leftPreds = append(leftPreds, p)
			} else {
				// Left-side-only conjunct of an outer/semi/anti join
				// condition only filters matches; it must stay in the join.
				joinPreds = append(joinPreds, p)
			}
		case cols.SubsetOf(rightCols):
			if op.Type == ops.InnerJoin || !fromAbove {
				rightPreds = append(rightPreds, p)
			} else {
				above = append(above, p)
			}
		default:
			if fromAbove && op.Type != ops.InnerJoin {
				above = append(above, p)
			} else {
				joinPreds = append(joinPreds, p)
			}
		}
	}
	for _, p := range preds {
		route(p, true)
	}
	for _, p := range jconj {
		route(p, false)
	}
	out := ops.NewExpr(
		&ops.Join{Type: op.Type, Pred: ops.And(joinPreds...)},
		pushPreds(e.Children[0], leftPreds),
		pushPreds(e.Children[1], rightPreds),
	)
	return wrapSelect(out, above)
}

func translatePred(p ops.ScalarExpr, pass map[base.ColID]base.ColID) (ops.ScalarExpr, bool) {
	ok := true
	p.Cols().ForEach(func(c base.ColID) {
		if _, found := pass[c]; !found {
			ok = false
		}
	})
	if !ok {
		return nil, false
	}
	return ops.ReplaceCols(p, pass), true
}

func wrapSelect(e *ops.Expr, preds []ops.ScalarExpr) *ops.Expr {
	if len(preds) == 0 {
		return e
	}
	return ops.NewExpr(&ops.Select{Pred: ops.And(preds...)}, e)
}

// collapseJoins merges contiguous inner joins into NAryJoin operators, the
// input shape of the join-ordering exploration rules.
func collapseJoins(e *ops.Expr) *ops.Expr {
	children := make([]*ops.Expr, len(e.Children))
	for i, c := range e.Children {
		children[i] = collapseJoins(c)
	}
	j, ok := e.Op.(*ops.Join)
	if !ok || j.Type != ops.InnerJoin {
		return ops.NewExpr(e.Op, children...)
	}
	var inputs []*ops.Expr
	var preds []ops.ScalarExpr
	for _, c := range children {
		if nj, ok := c.Op.(*ops.NAryJoin); ok {
			inputs = append(inputs, c.Children...)
			preds = append(preds, nj.Preds...)
		} else {
			inputs = append(inputs, c)
		}
	}
	preds = append(preds, ops.Conjuncts(j.Pred)...)
	return ops.NewExpr(&ops.NAryJoin{Preds: preds}, inputs...)
}
