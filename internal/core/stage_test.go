package core

import (
	"errors"
	"testing"
	"time"

	"orca/internal/memo"
	"orca/internal/search"
)

// TestStageTimeoutBestSoFar checks the best-so-far timeout semantics: a
// stage cut short by its step budget keeps the best plan accumulated in the
// root optimization context instead of discarding the stage, and the
// abandoned Memo still satisfies all structural invariants.
func TestStageTimeoutBestSoFar(t *testing.T) {
	q, _ := paperExample(t)
	cfg := DefaultConfig(16) // Workers=1: deterministic step counts
	full, err := Optimize(q, cfg)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	total := full.Search.TotalSteps()
	if total < 10 {
		t.Fatalf("suspiciously small search: %d steps", total)
	}

	// With one worker the root Opt goal completes last, so cutting exactly
	// one step short loses only the root's final completion mark — the best
	// plan is already in place and must match the full run's.
	q2, _ := paperExample(t)
	cfg2 := DefaultConfig(16)
	cfg2.Stages = []Stage{{Name: "budget", StepLimit: total - 1}}
	res, err := Optimize(q2, cfg2)
	if err != nil {
		t.Fatalf("budgeted run: %v", err)
	}
	if len(res.StageRuns) != 1 || !res.StageRuns[0].TimedOut {
		t.Fatalf("stage should have timed out: %+v", res.StageRuns)
	}
	if res.Plan == nil {
		t.Fatal("no best-so-far plan")
	}
	if res.Cost != full.Cost {
		t.Errorf("best-so-far cost %v, want full cost %v", res.Cost, full.Cost)
	}
	if err := res.Memo.Validate(); err != nil {
		t.Errorf("abandoned Memo invalid: %v", err)
	}

	// Mid-search budgets: whatever plan comes out must be valid and no better
	// than the optimum; runs with no plan yet must report the timeout.
	for _, budget := range []int64{total / 2, total / 3, total / 4, total / 8} {
		if budget < 1 {
			continue
		}
		q3, _ := paperExample(t)
		cfg3 := DefaultConfig(16)
		cfg3.Stages = []Stage{{Name: "budget", StepLimit: budget}}
		res, err := Optimize(q3, cfg3)
		if err != nil {
			if !errors.Is(err, search.ErrTimeout) {
				t.Errorf("budget %d: want ErrTimeout in %v", budget, err)
			}
			continue
		}
		if res.Plan == nil {
			t.Errorf("budget %d: nil plan without error", budget)
			continue
		}
		if res.Cost < full.Cost {
			t.Errorf("budget %d: best-so-far cost %v beats full optimum %v", budget, res.Cost, full.Cost)
		}
		if err := res.Memo.Validate(); err != nil {
			t.Errorf("budget %d: abandoned Memo invalid: %v", budget, err)
		}
	}
}

// TestStageTimeoutErrorAndRescue checks that a hopeless deadline surfaces
// ErrTimeout (with the degradation ladder off), that the ladder rescues the
// same configuration when left on, and that a later stage rescues the
// session by resuming the same Memo.
func TestStageTimeoutErrorAndRescue(t *testing.T) {
	q, _ := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.Stages = []Stage{{Name: "tiny", Timeout: time.Nanosecond}}
	cfg.DisableDegradation = true
	if _, err := Optimize(q, cfg); !errors.Is(err, search.ErrTimeout) {
		t.Errorf("want ErrTimeout from hopeless single stage, got %v", err)
	}

	qd, _ := paperExample(t)
	dcfg := DefaultConfig(16)
	dcfg.Stages = []Stage{{Name: "tiny", Timeout: time.Nanosecond}}
	dres, err := Optimize(qd, dcfg)
	if err != nil {
		t.Fatalf("degradation ladder should rescue hopeless stage: %v", err)
	}
	if !dres.Degraded || dres.DegradedRung != RungHeuristic || dres.Plan == nil {
		t.Errorf("want heuristic-rung degraded plan, got degraded=%v rung=%q plan=%v",
			dres.Degraded, dres.DegradedRung, dres.Plan != nil)
	}
	if dres.Failure == nil || !errors.Is(dres.Failure, search.ErrTimeout) {
		t.Errorf("degraded result should keep the triggering failure, got %v", dres.Failure)
	}

	q2, _ := paperExample(t)
	cfg2 := DefaultConfig(16)
	cfg2.Stages = []Stage{
		{Name: "tiny", Timeout: time.Nanosecond},
		{Name: "full"},
	}
	res, err := Optimize(q2, cfg2)
	if err != nil {
		t.Fatalf("rescued run: %v", err)
	}
	if res.Plan == nil || res.Stage != "full" {
		t.Fatalf("second stage should produce the plan, got stage %q", res.Stage)
	}
	if len(res.StageRuns) != 2 || !res.StageRuns[0].TimedOut || res.StageRuns[1].TimedOut {
		t.Errorf("stage outcomes wrong: %+v", res.StageRuns)
	}
}

// TestStageReuseSharedMemo checks that stages share one Memo: an identical
// second stage is a no-op resume, and a widened second stage fires only the
// newly enabled rules.
func TestStageReuseSharedMemo(t *testing.T) {
	// Identical rule sets share an epoch: stage 2 must collapse to the single
	// root Opt step that observes the context already done — zero exploration,
	// implementation, transformation or statistics work.
	q, _ := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.Stages = []Stage{{Name: "s1"}, {Name: "s2"}}
	res, err := Optimize(q, cfg)
	if err != nil {
		t.Fatalf("identical stages: %v", err)
	}
	if len(res.StageRuns) != 2 {
		t.Fatalf("want 2 stage runs, got %d", len(res.StageRuns))
	}
	s2 := res.StageRuns[1]
	if s2.RulesFired != 0 {
		t.Errorf("identical stage 2 fired %d rules, want 0", s2.RulesFired)
	}
	for _, k := range []search.JobKind{search.JobExp, search.JobImp, search.JobXform, search.JobStats} {
		if n := s2.Search.Steps[k]; n != 0 {
			t.Errorf("identical stage 2 ran %d %s steps, want 0", n, k)
		}
	}
	if n := s2.Search.Steps[search.JobOpt]; n != 1 {
		t.Errorf("identical stage 2 ran %d opt steps, want exactly 1 (the done check)", n)
	}

	// A widened second stage re-walks under its own epoch, but the applied
	// ledger spans epochs: every transformation step fires a genuinely new
	// rule (no duplicate rule applications), and stage 2 does strictly less
	// transformation work than a fresh full run.
	q2, _ := paperExample(t)
	cfg2 := DefaultConfig(16)
	cfg2.Stages = []Stage{
		{Name: "crippled", DisabledRules: []string{"Join2HashJoin"}},
		{Name: "full"},
	}
	res2, err := Optimize(q2, cfg2)
	if err != nil {
		t.Fatalf("widened stages: %v", err)
	}
	if res2.Stage != "full" {
		t.Errorf("full stage should win, got %q", res2.Stage)
	}
	var totalFired int64
	for _, run := range res2.StageRuns {
		if run.Search.Steps[search.JobXform] != run.RulesFired {
			t.Errorf("stage %s: %d xform steps but %d rules fired — duplicate transformation work",
				run.Name, run.Search.Steps[search.JobXform], run.RulesFired)
		}
		totalFired += run.RulesFired
	}
	if totalFired != res2.RulesFired {
		t.Errorf("per-stage fired %d != total %d", totalFired, res2.RulesFired)
	}
	qf, _ := paperExample(t)
	fresh, err := Optimize(qf, DefaultConfig(16))
	if err != nil {
		t.Fatalf("fresh full run: %v", err)
	}
	if s2 := res2.StageRuns[1]; s2.RulesFired >= fresh.RulesFired {
		t.Errorf("resumed full stage fired %d rules, want fewer than a fresh run's %d",
			s2.RulesFired, fresh.RulesFired)
	}

	// On-demand statistics: every group search costed has statistics, and the
	// eager whole-Memo sweep is gone — the Memo may hold groups that were
	// never costed and so never derived statistics.
	costed, withStats := 0, 0
	for gid := 0; gid < res2.Memo.NumGroups(); gid++ {
		g := res2.Memo.Group(memo.GroupID(gid))
		if len(g.Contexts()) == 0 {
			continue
		}
		costed++
		if g.Stats() != nil {
			withStats++
		}
	}
	if costed == 0 {
		t.Fatal("no groups were costed")
	}
	if withStats != costed {
		t.Errorf("%d of %d costed groups have statistics", withStats, costed)
	}
}
