package core

import (
	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
)

// Normalize rewrites a bound logical tree into the canonical form the Memo
// consumes: subqueries are unnested into (semi/anti/inner) joins — Orca's
// unified subquery representation "to detect deeply correlated predicates
// and pull them up into joins to avoid repeated execution of subquery
// expressions" (paper §7.2.2) — predicates are pushed down to their lowest
// valid position, and contiguous inner joins are collapsed into n-ary joins
// for the join-ordering rules.
func Normalize(e *ops.Expr, f *md.ColumnFactory) (*ops.Expr, error) {
	n := &normalizer{f: f}
	out, err := n.unnest(e)
	if err != nil {
		return nil, err
	}
	out = pushPreds(out, nil)
	out = collapseJoins(out)
	return out, nil
}

type normalizer struct {
	f *md.ColumnFactory
}

// ---------------------------------------------------------------------------
// Subquery unnesting

func (n *normalizer) unnest(e *ops.Expr) (*ops.Expr, error) {
	for i, c := range e.Children {
		nc, err := n.unnest(c)
		if err != nil {
			return nil, err
		}
		e.Children[i] = nc
	}
	if sel, ok := e.Op.(*ops.Select); ok {
		return n.unnestSelect(e, sel)
	}
	return e, nil
}

func (n *normalizer) unnestSelect(e *ops.Expr, sel *ops.Select) (*ops.Expr, error) {
	result := e.Children[0]
	var keep []ops.ScalarExpr
	for _, c := range ops.Conjuncts(sel.Pred) {
		outerCols := ops.OutputColsOf(result)
		switch x := c.(type) {
		case *ops.Subquery:
			r, err := n.unnestQuantified(result, x, outerCols)
			if err != nil {
				return nil, err
			}
			result = r
		case *ops.Cmp:
			if sq, other, op, ok := scalarSubqueryCmp(x); ok {
				r, err := n.unnestScalarCmp(result, sq, other, op, outerCols)
				if err != nil {
					return nil, err
				}
				result = r
				continue
			}
			keep = append(keep, c)
		default:
			keep = append(keep, c)
		}
	}
	if len(keep) > 0 {
		return ops.NewExpr(&ops.Select{Pred: ops.And(keep...)}, result), nil
	}
	return result, nil
}

// scalarSubqueryCmp recognizes `expr <op> (subquery)` in either operand
// order, normalizing the subquery to the right side.
func scalarSubqueryCmp(c *ops.Cmp) (sq *ops.Subquery, other ops.ScalarExpr, op ops.CmpOp, ok bool) {
	if s, isSub := c.R.(*ops.Subquery); isSub && s.Kind == ops.SubScalar {
		return s, c.L, c.Op, true
	}
	if s, isSub := c.L.(*ops.Subquery); isSub && s.Kind == ops.SubScalar {
		return s, c.R, c.Op.Commuted(), true
	}
	return nil, nil, 0, false
}

// unnestQuantified turns EXISTS / NOT EXISTS / IN / NOT IN into semi or anti
// joins, hoisting correlated predicates into the join condition.
func (n *normalizer) unnestQuantified(outer *ops.Expr, sq *ops.Subquery, outerCols base.ColSet) (*ops.Expr, error) {
	sub, corr, err := n.stripCorrelated(sq.Input, outerCols, false)
	if err != nil {
		return nil, err
	}
	if free := ops.FreeCols(sub).Intersect(outerCols); !free.Empty() {
		return nil, gpos.Raise(gpos.CompOptimizer, "Decorrelation",
			"unsupported correlation structure: residual outer references %s", free)
	}
	preds := corr
	var jt ops.JoinType
	switch sq.Kind {
	case ops.SubExists:
		jt = ops.SemiJoin
	case ops.SubNotExists:
		jt = ops.AntiJoin
	case ops.SubIn:
		jt = ops.SemiJoin
		preds = append(preds, ops.Eq(sq.Test, ops.NewIdent(sq.OutCol, base.TUnknown)))
	case ops.SubNotIn:
		jt = ops.AntiJoin
		preds = append(preds, ops.Eq(sq.Test, ops.NewIdent(sq.OutCol, base.TUnknown)))
	default:
		return nil, gpos.Raise(gpos.CompOptimizer, "Decorrelation", "unexpected subquery kind %d", sq.Kind)
	}
	return ops.NewExpr(&ops.Join{Type: jt, Pred: ops.And(preds...)}, outer, sub), nil
}

// unnestScalarCmp turns `expr <op> (SELECT agg ...)` into a join against the
// (possibly decorrelated) subquery. For a correlated aggregate subquery the
// correlation columns are added to the aggregate's grouping — the classic
// magic-set-free decorrelation — and become equi-join keys.
//
// Note on semantics: an inner join drops outer rows whose subquery result is
// empty; a comparison with the NULL produced for such rows also rejects
// them, so the rewrite is equivalence-preserving for comparisons (the
// count(*)-over-empty-group corner is documented in DESIGN.md).
func (n *normalizer) unnestScalarCmp(outer *ops.Expr, sq *ops.Subquery, other ops.ScalarExpr, op ops.CmpOp, outerCols base.ColSet) (*ops.Expr, error) {
	sub := sq.Input

	// Peel Project nodes above the aggregate, remembering them.
	var projChain []*ops.Project
	node := sub
	for {
		if p, ok := node.Op.(*ops.Project); ok {
			projChain = append(projChain, p)
			node = node.Children[0]
			continue
		}
		break
	}

	var corr []ops.ScalarExpr
	if agg, ok := node.Op.(*ops.GbAgg); ok {
		inner, preds, err := n.stripCorrelated(node.Children[0], outerCols, true)
		if err != nil {
			return nil, err
		}
		corr = preds
		if len(preds) > 0 {
			// The grouping rewrite is only sound for equality correlation:
			// grouping by the inner column computes one aggregate per
			// correlation key. Reject anything else.
			for _, p := range preds {
				cmp, ok := p.(*ops.Cmp)
				if !ok || cmp.Op != ops.CmpEq {
					return nil, gpos.Raise(gpos.CompOptimizer, "Decorrelation",
						"unsupported non-equality correlation in aggregate subquery: %s", p)
				}
				_, lid := cmp.L.(*ops.Ident)
				_, rid := cmp.R.(*ops.Ident)
				if !lid || !rid {
					return nil, gpos.Raise(gpos.CompOptimizer, "Decorrelation",
						"unsupported correlation expression in aggregate subquery: %s", p)
				}
			}
			// Group additionally by the inner correlation columns so the
			// aggregate computes one value per correlation key.
			groupCols := append([]base.ColID(nil), agg.GroupCols...)
			var passUp []base.ColID
			for _, p := range preds {
				innerCols := p.Cols().Difference(outerCols)
				for _, c := range innerCols.Ordered() {
					if !base.MakeColSet(groupCols...).Contains(c) {
						groupCols = append(groupCols, c)
					}
					passUp = append(passUp, c)
				}
			}
			node = ops.NewExpr(&ops.GbAgg{GroupCols: groupCols, Aggs: agg.Aggs}, inner)
			// Rebuild the project chain, passing the correlation columns up.
			for i := len(projChain) - 1; i >= 0; i-- {
				elems := append([]ops.ProjElem(nil), projChain[i].Elems...)
				have := projChain[i].OutputCols()
				for _, c := range passUp {
					if !have.Contains(c) {
						elems = append(elems, ops.ProjElem{
							Col:  n.colRefFor(c),
							Expr: ops.NewIdent(c, base.TUnknown),
						})
					}
				}
				node = ops.NewExpr(&ops.Project{Elems: elems}, node)
			}
			sub = node
		} else {
			// Uncorrelated aggregate: keep the original tree.
			if len(projChain) > 0 {
				sub = sq.Input
			} else {
				sub = node
			}
		}
	} else {
		stripped, preds, err := n.stripCorrelated(sub, outerCols, false)
		if err != nil {
			return nil, err
		}
		sub = stripped
		corr = preds
	}

	if free := ops.FreeCols(sub).Intersect(outerCols); !free.Empty() {
		return nil, gpos.Raise(gpos.CompOptimizer, "Decorrelation",
			"unsupported correlated scalar subquery: residual outer references %s", free)
	}
	preds := append(corr, ops.NewCmp(op, other, ops.NewIdent(sq.OutCol, base.TUnknown)))
	return ops.NewExpr(&ops.Join{Type: ops.InnerJoin, Pred: ops.And(preds...)}, outer, sub), nil
}

// colRefFor resolves (or fabricates) the ColRef for an existing column id.
func (n *normalizer) colRefFor(c base.ColID) *md.ColRef {
	if ref := n.f.Lookup(c); ref != nil {
		return ref
	}
	return &md.ColRef{ID: c, Name: "col", Type: base.TUnknown}
}

// stripCorrelated removes predicates referencing outer columns from Select
// nodes (and inner-join conditions) inside the subtree and returns them. It
// descends through Select, inner Join, Project and — when intoAgg is set —
// GbAgg nodes; correlation anywhere else is unsupported.
func (n *normalizer) stripCorrelated(e *ops.Expr, outerCols base.ColSet, intoAgg bool) (*ops.Expr, []ops.ScalarExpr, error) {
	switch op := e.Op.(type) {
	case *ops.Select:
		child, corr, err := n.stripCorrelated(e.Children[0], outerCols, intoAgg)
		if err != nil {
			return nil, nil, err
		}
		var keep []ops.ScalarExpr
		for _, c := range ops.Conjuncts(op.Pred) {
			if c.Cols().Intersects(outerCols) {
				corr = append(corr, c)
			} else {
				keep = append(keep, c)
			}
		}
		if len(keep) > 0 {
			return ops.NewExpr(&ops.Select{Pred: ops.And(keep...)}, child), corr, nil
		}
		return child, corr, nil

	case *ops.Join:
		if op.Type != ops.InnerJoin {
			return e, nil, nil
		}
		l, lc, err := n.stripCorrelated(e.Children[0], outerCols, false)
		if err != nil {
			return nil, nil, err
		}
		r, rc, err := n.stripCorrelated(e.Children[1], outerCols, false)
		if err != nil {
			return nil, nil, err
		}
		corr := append(lc, rc...)
		var keep []ops.ScalarExpr
		for _, c := range ops.Conjuncts(op.Pred) {
			if c.Cols().Intersects(outerCols) {
				corr = append(corr, c)
			} else {
				keep = append(keep, c)
			}
		}
		return ops.NewExpr(&ops.Join{Type: op.Type, Pred: ops.And(keep...)}, l, r), corr, nil

	case *ops.Project:
		child, corr, err := n.stripCorrelated(e.Children[0], outerCols, intoAgg)
		if err != nil {
			return nil, nil, err
		}
		if len(corr) == 0 {
			return e, nil, nil
		}
		elems := append([]ops.ProjElem(nil), op.Elems...)
		have := op.OutputCols()
		childOut := ops.OutputColsOf(child)
		for _, p := range corr {
			for _, c := range p.Cols().Difference(outerCols).Ordered() {
				if !have.Contains(c) && childOut.Contains(c) {
					elems = append(elems, ops.ProjElem{Col: n.colRefFor(c), Expr: ops.NewIdent(c, base.TUnknown)})
					have.Add(c)
				}
			}
		}
		return ops.NewExpr(&ops.Project{Elems: elems}, child), corr, nil

	default:
		return e, nil, nil
	}
}
