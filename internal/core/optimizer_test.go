package core

import (
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

// paperExample builds the running example of paper §4.1:
//
//	SELECT T1.a FROM T1, T2 WHERE T1.a = T2.b ORDER BY T1.a;
//
// with T1 distributed Hashed(T1.a) and T2 distributed Hashed(T2.a).
func paperExample(t *testing.T) (*Query, *md.ColumnFactory) {
	t.Helper()
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name:   "T1",
		Rows:   100000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 50000, Lo: 0, Hi: 50000},
			{Name: "b", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
		},
	})
	md.Build(p, md.TableSpec{
		Name:   "T2",
		Rows:   80000,
		Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 80000, Lo: 0, Hi: 80000},
			{Name: "b", Type: base.TInt, NDV: 40000, Lo: 0, Hi: 50000},
		},
	})

	cache := md.NewCache(&gpos.MemoryAccountant{})
	acc := md.NewAccessor(cache, p)
	f := md.NewColumnFactory()

	t1, err := acc.RelationByName("T1")
	if err != nil {
		t.Fatalf("lookup T1: %v", err)
	}
	t2, err := acc.RelationByName("T2")
	if err != nil {
		t.Fatalf("lookup T2: %v", err)
	}

	get := func(rel *md.Relation) *ops.Get {
		cols := make([]*md.ColRef, len(rel.Columns))
		for i, c := range rel.Columns {
			cols[i] = f.NewTableColumn(rel.Name+"."+c.Name, c.Type, rel.Mdid, i)
		}
		return &ops.Get{Alias: rel.Name, Rel: rel, Cols: cols}
	}
	g1, g2 := get(t1), get(t2)

	join := ops.NewExpr(
		&ops.Join{Type: ops.InnerJoin, Pred: ops.Eq(
			ops.NewIdent(g1.Cols[0].ID, base.TInt),
			ops.NewIdent(g2.Cols[1].ID, base.TInt),
		)},
		ops.NewExpr(g1),
		ops.NewExpr(g2),
	)

	return &Query{
		Tree:     join,
		Order:    props.MakeOrder(g1.Cols[0].ID),
		OutCols:  []base.ColID{g1.Cols[0].ID},
		OutNames: []string{"a"},
		Factory:  f,
		Accessor: acc,
	}, f
}

func TestOptimizePaperExample(t *testing.T) {
	q, f := paperExample(t)
	res, err := Optimize(q, DefaultConfig(16))
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	plan := Explain(res.Plan, f)
	t.Logf("plan (cost=%.0f, %d groups, %d exprs, %d rules):\n%s",
		res.Cost, res.Groups, res.GroupExprs, res.RulesFired, plan)

	// The optimal plan for the paper's example co-locates via a motion on
	// T2.b (T1 is already distributed on the join key), hash-joins, and
	// delivers the singleton sorted requirement via sort + gather-merge (or
	// gather + sort).
	if !strings.Contains(plan, "HashJoin") {
		t.Errorf("expected a hash join in:\n%s", plan)
	}
	if !strings.Contains(plan, "Redistribute") && !strings.Contains(plan, "Broadcast") {
		t.Errorf("expected a motion aligning T2 in:\n%s", plan)
	}
	if !strings.Contains(plan, "Sort") && !strings.Contains(plan, "GatherMerge") {
		t.Errorf("expected order enforcement in:\n%s", plan)
	}
	if res.Plan.Phys.Dist.Kind != props.DistSingleton {
		t.Errorf("root must deliver Singleton, got %s", res.Plan.Phys.Dist)
	}
	if !res.Plan.Phys.Order.Satisfies(q.Order) {
		t.Errorf("root must deliver %s, got %s", q.Order, res.Plan.Phys.Order)
	}
}

func TestOptimizeParallelMatchesSequential(t *testing.T) {
	q1, _ := paperExample(t)
	cfg := DefaultConfig(16)
	cfg.Workers = 1
	seq, err := Optimize(q1, cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	q2, _ := paperExample(t)
	cfg.Workers = 8
	par, err := Optimize(q2, cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Cost != par.Cost {
		t.Errorf("parallel best cost %v differs from sequential %v", par.Cost, seq.Cost)
	}
}
