package planner

import (
	"fmt"
	"math"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

// plan translates a (pushed-down, CTE-inlined) logical tree bottom-up into a
// physical plan, choosing join order greedily over crude estimates and
// placing Redistribute/Gather motions.
func (p *Planner) plan(e *ops.Expr) (*subplan, error) {
	switch op := e.Op.(type) {
	case *ops.Get:
		return p.planGet(op, nil)
	case *ops.Select:
		return p.planSelect(op, e.Children[0])
	case *ops.Project:
		return p.planProject(op, e.Children[0])
	case *ops.Join:
		return p.planJoinTree(e)
	case *ops.GbAgg:
		return p.planAgg(op, e.Children[0])
	case *ops.Limit:
		return p.planLimit(op, e.Children[0])
	case *ops.UnionAll:
		return p.planUnion(op, e.Children)
	case *ops.Window:
		return p.planWindow(op, e.Children[0])
	default:
		return nil, fmt.Errorf("planner: unsupported operator %s", e.Op.Name())
	}
}

// ---------------------------------------------------------------------------
// Crude estimation: row counts and NDV only, magic fractions otherwise
// (no histograms — the PostgreSQL-lineage limitation the paper contrasts
// with Orca's Memo-wide histogram derivation).

const (
	magicEqSel    = 0.005
	magicRangeSel = 1.0 / 3
	magicLikeSel  = 0.1
)

func (p *Planner) tableRows(rel *md.Relation) float64 {
	if rel.StatsMdid.IsValid() {
		if rs, err := p.acc.Stats(rel.StatsMdid); err == nil {
			return rs.Rows
		}
	}
	return 1000
}

func (p *Planner) colNDV(ref *md.ColRef) float64 {
	if ref == nil || !ref.RelMdid.IsValid() {
		return 0
	}
	rel, err := p.acc.Relation(ref.RelMdid)
	if err != nil || !rel.StatsMdid.IsValid() {
		return 0
	}
	rs, err := p.acc.Stats(rel.StatsMdid)
	if err != nil {
		return 0
	}
	if cs := rs.ColStatsFor(ref.Ordinal); cs != nil {
		return cs.NDV
	}
	return 0
}

// predSel estimates a predicate's selectivity without histograms.
func (p *Planner) predSel(pred ops.ScalarExpr) float64 {
	if pred == nil {
		return 1
	}
	sel := 1.0
	for _, c := range ops.Conjuncts(pred) {
		sel *= p.conjunctSel(c)
	}
	return sel
}

func (p *Planner) conjunctSel(c ops.ScalarExpr) float64 {
	switch x := c.(type) {
	case *ops.Cmp:
		if x.Op == ops.CmpEq {
			if id, ok := x.L.(*ops.Ident); ok {
				if ndv := p.colNDV(p.f.Lookup(id.Col)); ndv > 0 {
					return 1 / ndv
				}
			}
			return magicEqSel
		}
		if x.Op == ops.CmpNe {
			return 1 - magicEqSel
		}
		return magicRangeSel
	case *ops.BoolOp:
		switch x.Kind {
		case ops.BoolNot:
			return 1 - p.conjunctSel(x.Args[0])
		case ops.BoolOr:
			notSel := 1.0
			for _, a := range x.Args {
				notSel *= 1 - p.conjunctSel(a)
			}
			return 1 - notSel
		default:
			s := 1.0
			for _, a := range x.Args {
				s *= p.conjunctSel(a)
			}
			return s
		}
	case *ops.InList:
		s := magicEqSel * float64(len(x.Vals))
		if x.Negated {
			s = 1 - s
		}
		return clamp01(s)
	case *ops.IsNull:
		if x.Negated {
			return 0.99
		}
		return 0.01
	case *ops.Func:
		if x.Name == "like" {
			return magicLikeSel
		}
		return magicRangeSel
	case *ops.Subquery:
		return 0.5
	default:
		return magicRangeSel
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ---------------------------------------------------------------------------
// Leaf operators

func (p *Planner) planGet(op *ops.Get, filter ops.ScalarExpr) (*subplan, error) {
	rows := p.tableRows(op.Rel)
	scan := &ops.Scan{Alias: op.Alias, Rel: op.Rel, Cols: op.Cols, Filter: filter, BaseRows: rows}
	// No partition elimination: the legacy planner scans every partition.
	dist := props.RandomDist
	switch op.Rel.Policy {
	case md.DistHash:
		dist = props.Hashed(op.DistCols()...)
	case md.DistReplicated:
		dist = props.ReplicatedDist
	case md.DistSingleton:
		dist = props.SingletonDist
	}
	outRows := rows * p.predSel(filter)
	return &subplan{
		expr: ops.NewExpr(scan),
		dist: dist,
		rows: outRows,
		cost: rows,
		out:  op.OutputCols(),
	}, nil
}

// splitSubqueryConjuncts separates conjuncts that embed subqueries.
func splitSubqueryConjuncts(pred ops.ScalarExpr) (plain, withSub []ops.ScalarExpr) {
	for _, c := range ops.Conjuncts(pred) {
		if containsSubquery(c) {
			withSub = append(withSub, c)
		} else {
			plain = append(plain, c)
		}
	}
	return plain, withSub
}

func containsSubquery(e ops.ScalarExpr) bool {
	switch x := e.(type) {
	case *ops.Subquery:
		return true
	case *ops.Cmp:
		return containsSubquery(x.L) || containsSubquery(x.R)
	case *ops.BoolOp:
		for _, a := range x.Args {
			if containsSubquery(a) {
				return true
			}
		}
	case *ops.BinOp:
		return containsSubquery(x.L) || containsSubquery(x.R)
	case *ops.Func:
		for _, a := range x.Args {
			if containsSubquery(a) {
				return true
			}
		}
	case *ops.InList:
		if containsSubquery(x.Arg) {
			return true
		}
		for _, v := range x.Vals {
			if containsSubquery(v) {
				return true
			}
		}
	case *ops.IsNull:
		return containsSubquery(x.Arg)
	case *ops.Case:
		for _, w := range x.Whens {
			if containsSubquery(w.When) || containsSubquery(w.Then) {
				return true
			}
		}
		return x.Else != nil && containsSubquery(x.Else)
	default:
		// Leaf scalars (Ident, Const) embed no subquery.
	}
	return false
}

func (p *Planner) planSelect(op *ops.Select, child *ops.Expr) (*subplan, error) {
	plain, withSub := splitSubqueryConjuncts(op.Pred)

	var in *subplan
	var err error
	// Merge plain filters into a scan when the child is a bare Get.
	if get, ok := child.Op.(*ops.Get); ok && len(plain) > 0 {
		in, err = p.planGet(get, ops.And(plain...))
	} else {
		in, err = p.plan(child)
		if err == nil && len(plain) > 0 {
			in = &subplan{
				expr: ops.NewExpr(&ops.Filter{Pred: ops.And(plain...)}, in.expr),
				dist: in.dist, ord: in.ord,
				rows: in.rows * p.predSel(ops.And(plain...)),
				cost: in.cost + in.rows,
				out:  in.out,
			}
		}
	}
	if err != nil {
		return nil, err
	}
	// Each subquery conjunct becomes a SubPlan re-executed per row.
	for _, c := range withSub {
		in, err = p.planSubPlanFilter(in, c)
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}

// planSubPlanFilter plans one subquery conjunct as a SubPlanFilter over the
// (gathered) outer rows — the repeated-execution strategy the paper's
// Figure 12 outliers come from.
func (p *Planner) planSubPlanFilter(outer *subplan, conjunct ops.ScalarExpr) (*subplan, error) {
	gathered := p.enforce(outer, props.SingletonDist, props.OrderSpec{})

	build := func(sq *ops.Subquery, kind ops.SubqueryKind, test ops.ScalarExpr) (*subplan, error) {
		inner, err := p.plan(sq.Input)
		if err != nil {
			return nil, err
		}
		filter := &ops.SubPlanFilter{Kind: kind, Plan: inner.expr, SubCol: sq.OutCol, Test: test}
		filter.Plan.Cost = inner.cost
		return &subplan{
			expr: ops.NewExpr(filter, gathered.expr),
			dist: props.SingletonDist, ord: gathered.ord,
			rows: gathered.rows * 0.5,
			cost: gathered.cost + gathered.rows*(inner.cost+1),
			out:  gathered.out,
		}, nil
	}

	switch x := conjunct.(type) {
	case *ops.Subquery:
		return build(x, x.Kind, x.Test)
	case *ops.Cmp:
		if sq, ok := x.R.(*ops.Subquery); ok && sq.Kind == ops.SubScalar {
			test := &ops.Cmp{Op: x.Op, L: x.L, R: ops.NewIdent(sq.OutCol, base.TUnknown)}
			return build(sq, ops.SubScalar, test)
		}
		if sq, ok := x.L.(*ops.Subquery); ok && sq.Kind == ops.SubScalar {
			test := &ops.Cmp{Op: x.Op.Commuted(), L: x.R, R: ops.NewIdent(sq.OutCol, base.TUnknown)}
			return build(sq, ops.SubScalar, test)
		}
	default:
		// Fall through to the unsupported-conjunct error.
	}
	return nil, fmt.Errorf("planner: unsupported subquery conjunct %s", conjunct)
}

func (p *Planner) planProject(op *ops.Project, child *ops.Expr) (*subplan, error) {
	// Scalar subqueries in projections become SubPlanProjects.
	in, err := p.plan(child)
	if err != nil {
		return nil, err
	}
	elems := make([]ops.ProjElem, 0, len(op.Elems))
	cur := in
	rewrites := map[base.ColID]base.ColID{}
	for _, el := range op.Elems {
		if sq, ok := el.Expr.(*ops.Subquery); ok && sq.Kind == ops.SubScalar {
			inner, err := p.plan(sq.Input)
			if err != nil {
				return nil, err
			}
			gathered := p.enforce(cur, props.SingletonDist, props.OrderSpec{})
			proj := &ops.SubPlanProject{Plan: inner.expr, SubCol: sq.OutCol, OutCol: el.Col.ID}
			proj.Plan.Cost = inner.cost
			cur = &subplan{
				expr: ops.NewExpr(proj, gathered.expr),
				dist: props.SingletonDist, ord: gathered.ord,
				rows: gathered.rows,
				cost: gathered.cost + gathered.rows*(inner.cost+1),
				out:  gathered.out.Union(base.MakeColSet(el.Col.ID)),
			}
			rewrites[el.Col.ID] = el.Col.ID
			elems = append(elems, ops.ProjElem{Col: el.Col, Expr: ops.NewIdent(el.Col.ID, el.Col.Type)})
			continue
		}
		elems = append(elems, el)
	}
	cs := ops.NewComputeScalar(elems)
	out := &subplan{
		expr: ops.NewExpr(cs, cur.expr),
		dist: cs.Derive([]props.Derived{{Dist: cur.dist, Order: cur.ord}}).Dist,
		ord:  cs.Derive([]props.Derived{{Dist: cur.dist, Order: cur.ord}}).Order,
		rows: cur.rows,
		cost: cur.cost + cur.rows,
		out:  cs.OutputCols(),
	}
	return out, nil
}

func (p *Planner) planLimit(op *ops.Limit, child *ops.Expr) (*subplan, error) {
	in, err := p.plan(child)
	if err != nil {
		return nil, err
	}
	in = p.enforce(in, props.SingletonDist, op.Order)
	rows := in.rows
	if op.HasCount && float64(op.Count) < rows {
		rows = float64(op.Count)
	}
	return &subplan{
		expr: ops.NewExpr(&ops.PhysicalLimit{Order: op.Order, Count: op.Count, Offset: op.Offset, HasCount: op.HasCount}, in.expr),
		dist: props.SingletonDist, ord: op.Order,
		rows: rows, cost: in.cost + rows, out: in.out,
	}, nil
}

func (p *Planner) planUnion(op *ops.UnionAll, children []*ops.Expr) (*subplan, error) {
	var plans []*ops.Expr
	rows, cost := 0.0, 0.0
	for _, c := range children {
		sp, err := p.plan(c)
		if err != nil {
			return nil, err
		}
		plans = append(plans, sp.expr)
		rows += sp.rows
		cost += sp.cost
	}
	pu := &ops.PhysicalUnionAll{InCols: op.InCols, OutCols: op.OutCols}
	var out base.ColSet
	for _, c := range op.OutCols {
		out.Add(c.ID)
	}
	return &subplan{
		expr: ops.NewExpr(pu, plans...),
		dist: props.RandomDist,
		rows: rows, cost: cost + rows, out: out,
	}, nil
}

func (p *Planner) planWindow(op *ops.Window, child *ops.Expr) (*subplan, error) {
	in, err := p.plan(child)
	if err != nil {
		return nil, err
	}
	fullOrder := props.OrderSpec{}
	for _, c := range op.PartitionCols {
		fullOrder.Items = append(fullOrder.Items, props.OrderItem{Col: c})
	}
	fullOrder.Items = append(fullOrder.Items, op.Order.Items...)
	if len(op.PartitionCols) > 0 {
		in = p.enforce(in, props.Hashed(op.PartitionCols...), fullOrder)
	} else {
		in = p.enforce(in, props.SingletonDist, fullOrder)
	}
	w := &ops.PhysicalWindow{PartitionCols: op.PartitionCols, Order: op.Order, Wins: op.Wins}
	out := in.out
	for _, e := range op.Wins {
		out = out.Union(base.MakeColSet(e.Col.ID))
	}
	return &subplan{
		expr: ops.NewExpr(w, in.expr),
		dist: in.dist, ord: in.ord,
		rows: in.rows, cost: in.cost + in.rows, out: out,
	}, nil
}

func (p *Planner) planAgg(op *ops.GbAgg, child *ops.Expr) (*subplan, error) {
	in, err := p.plan(child)
	if err != nil {
		return nil, err
	}
	groups := math.Max(in.rows*0.1, 1)
	hasDistinct := false
	for _, a := range op.Aggs {
		if a.Agg.Distinct {
			hasDistinct = true
		}
	}
	if hasDistinct {
		// DISTINCT aggregates cannot be split into partials: gather and
		// aggregate in one stage.
		var dist props.Distribution
		var rows float64
		if len(op.GroupCols) == 0 {
			dist, rows = props.SingletonDist, 1
		} else {
			dist, rows = props.SingletonDist, groups
		}
		gathered := p.enforce(in, props.SingletonDist, props.OrderSpec{})
		var agg ops.Operator
		if len(op.GroupCols) == 0 {
			agg = &ops.ScalarAgg{Mode: ops.AggSingle, Aggs: op.Aggs}
		} else {
			agg = &ops.HashAgg{Mode: ops.AggSingle, GroupCols: op.GroupCols, Aggs: op.Aggs}
		}
		return &subplan{
			expr: ops.NewExpr(agg, gathered.expr),
			dist: dist,
			rows: rows, cost: gathered.cost + gathered.rows,
			out: aggOut(op.GroupCols, op.Aggs),
		}, nil
	}
	if len(op.GroupCols) == 0 {
		// Two-stage scalar aggregation.
		local, global := splitAggs(p.f, op.Aggs)
		lp := ops.NewExpr(&ops.ScalarAgg{Mode: ops.AggLocal, Aggs: local}, in.expr)
		gathered := ops.NewExpr(&ops.Gather{}, lp)
		gp := ops.NewExpr(&ops.ScalarAgg{Mode: ops.AggGlobal, Aggs: global}, gathered)
		var out base.ColSet
		for _, a := range op.Aggs {
			out.Add(a.Col.ID)
		}
		return &subplan{
			expr: gp, dist: props.SingletonDist,
			rows: 1, cost: in.cost + in.rows, out: out,
		}, nil
	}
	// Two-stage hash aggregation: local pre-aggregate, redistribute on the
	// grouping columns, global combine.
	local, global := splitAggs(p.f, op.Aggs)
	lp := &subplan{
		expr: ops.NewExpr(&ops.HashAgg{Mode: ops.AggLocal, GroupCols: op.GroupCols, Aggs: local}, in.expr),
		dist: in.dist,
		rows: math.Min(in.rows, groups*float64(p.segments)),
		cost: in.cost + in.rows,
		out:  aggOut(op.GroupCols, local),
	}
	red := p.enforce(lp, props.Hashed(op.GroupCols...), props.OrderSpec{})
	gp := &subplan{
		expr: ops.NewExpr(&ops.HashAgg{Mode: ops.AggGlobal, GroupCols: op.GroupCols, Aggs: global}, red.expr),
		dist: red.dist,
		rows: groups,
		cost: red.cost + red.rows,
		out:  aggOut(op.GroupCols, global),
	}
	return gp, nil
}

func aggOut(group []base.ColID, aggs []ops.AggElem) base.ColSet {
	s := base.MakeColSet(group...)
	for _, a := range aggs {
		s.Add(a.Col.ID)
	}
	return s
}

// splitAggs builds the local/global aggregate pair (count → sum of partial
// counts; DISTINCT aggregates degrade to a single-stage-correct
// approximation by keeping the distinct in the local stage).
func splitAggs(f *md.ColumnFactory, aggs []ops.AggElem) (local, global []ops.AggElem) {
	for _, a := range aggs {
		partial := f.NewComputedColumn("partial_"+a.Col.Name, a.Col.Type)
		local = append(local, ops.AggElem{Col: partial, Agg: a.Agg})
		name := a.Agg.Name
		if name == "count" {
			name = "sum"
		}
		global = append(global, ops.AggElem{
			Col: a.Col,
			Agg: &ops.AggFunc{Name: name, Arg: ops.NewIdent(partial.ID, a.Col.Type)},
		})
	}
	return local, global
}
