package planner

import (
	"strings"
	"testing"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/sql"
)

func plannerCatalog(t testing.TB) (*md.Accessor, *md.ColumnFactory) {
	t.Helper()
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "fact", Rows: 100000, Policy: md.DistHash, DistCols: []int{0},
		PartCol: 2,
		Parts: []md.Partition{
			{Name: "p0", Lo: base.NewInt(0), Hi: base.NewInt(50)},
			{Name: "p1", Lo: base.NewInt(50), Hi: base.NewInt(101)},
		},
		Cols: []md.ColSpec{
			{Name: "k", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
			{Name: "v", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "d", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "small", Rows: 100, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "k", Type: base.TInt, NDV: 100, Lo: 0, Hi: 1000},
			{Name: "tag", Type: base.TInt, NDV: 5, Lo: 0, Hi: 5},
		},
	})
	return md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p), md.NewColumnFactory()
}

func plan(t *testing.T, query string, tweak func(*Planner)) (*ops.Expr, *md.ColumnFactory) {
	t.Helper()
	acc, f := plannerCatalog(t)
	q, err := sql.Bind(query, acc, f)
	if err != nil {
		t.Fatal(err)
	}
	pl := New(16, acc, f)
	if tweak != nil {
		tweak(pl)
	}
	out, err := pl.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return out, f
}

func explain(e *ops.Expr, f *md.ColumnFactory) string { return core.Explain(e, f) }

func TestPlannerNeverBroadcastsByDefault(t *testing.T) {
	p, f := plan(t, "SELECT fact.v FROM fact, small WHERE fact.k = small.k", nil)
	s := explain(p, f)
	if strings.Contains(s, "Broadcast") {
		t.Errorf("legacy planner must not broadcast:\n%s", s)
	}
	if !strings.Contains(s, "HashJoin") {
		t.Errorf("equi join should hash join:\n%s", s)
	}
}

func TestPlannerNoPartitionElimination(t *testing.T) {
	p, f := plan(t, "SELECT count(*) FROM fact WHERE d < 10", nil)
	s := explain(p, f)
	if strings.Contains(s, "parts=") {
		t.Errorf("legacy planner must scan all partitions:\n%s", s)
	}
}

func TestPlannerKeepsSubPlans(t *testing.T) {
	p, f := plan(t, `
		SELECT fact.k FROM fact
		WHERE fact.v > (SELECT avg(f2.v) FROM fact f2 WHERE f2.k = fact.k)`, nil)
	s := explain(p, f)
	if !strings.Contains(s, "SubPlan") {
		t.Errorf("correlated subquery must stay a SubPlan:\n%s", s)
	}
}

func TestPlannerInlinesCTEs(t *testing.T) {
	p, f := plan(t, `
		WITH agg AS (SELECT k, sum(v) AS total FROM fact GROUP BY k)
		SELECT a.k FROM agg a, agg b WHERE a.k = b.k`, nil)
	s := explain(p, f)
	if strings.Contains(s, "CTE") {
		t.Errorf("CTE operators must be inlined away:\n%s", s)
	}
	// Inlining duplicates the producer: the fact table is scanned twice.
	if n := strings.Count(s, "Scan(fact)"); n != 2 {
		t.Errorf("fact scanned %d times, want 2 (one per consumer):\n%s", n, s)
	}
}

func TestPlannerGreedyStartsSmall(t *testing.T) {
	// Greedy ordering joins through the small table first even when the
	// query lists the big one first... the left-deep result's leftmost leaf
	// is the smallest input.
	p, _ := plan(t, "SELECT fact.v FROM fact, small WHERE fact.k = small.k", nil)
	leftmost := p
	for len(leftmost.Children) > 0 {
		leftmost = leftmost.Children[0]
	}
	if scan, ok := leftmost.Op.(*ops.Scan); !ok || scan.Rel.Name != "small" {
		t.Errorf("leftmost leaf is %s, want Scan(small)", ops.Describe(leftmost.Op))
	}
}

func TestPlannerLiteralJoinOrderMode(t *testing.T) {
	p, _ := plan(t, "SELECT fact.v FROM fact, small WHERE fact.k = small.k",
		func(pl *Planner) { pl.LiteralJoinOrder = true })
	leftmost := p
	for len(leftmost.Children) > 0 {
		leftmost = leftmost.Children[0]
	}
	if scan, ok := leftmost.Op.(*ops.Scan); !ok || scan.Rel.Name != "fact" {
		t.Errorf("literal mode leftmost leaf is %s, want Scan(fact) (as written)", ops.Describe(leftmost.Op))
	}
}

func TestPlannerBroadcastRightMode(t *testing.T) {
	p, f := plan(t, "SELECT fact.v FROM fact JOIN small ON fact.k = small.k",
		func(pl *Planner) {
			pl.LiteralJoinOrder = true
			pl.BroadcastRight = true
		})
	s := explain(p, f)
	if !strings.Contains(s, "Broadcast") {
		t.Errorf("broadcast-right mode must replicate the build side:\n%s", s)
	}
}

func TestPlannerDeliversRootRequirements(t *testing.T) {
	p, _ := plan(t, "SELECT k, sum(v) AS s FROM fact GROUP BY k ORDER BY k LIMIT 5", nil)
	// Root of the plan must be executable and singleton-delivering: walk
	// down—the top op should be Limit or a gather variant.
	name := p.Op.Name()
	if name != "Limit" && name != "Gather" && name != "GatherMerge" {
		t.Errorf("root op = %s", name)
	}
}

func TestPlannerTwoStageAggregation(t *testing.T) {
	p, f := plan(t, "SELECT k, count(*) AS c FROM fact GROUP BY k", nil)
	s := explain(p, f)
	if !strings.Contains(s, "LocalHashAgg") || !strings.Contains(s, "GlobalHashAgg") {
		t.Errorf("planner should two-stage plain aggregates:\n%s", s)
	}
	// DISTINCT forces a single gathered stage.
	p2, f2 := plan(t, "SELECT count(DISTINCT v) AS c FROM fact", nil)
	s2 := explain(p2, f2)
	if strings.Contains(s2, "Local") {
		t.Errorf("DISTINCT aggregate must not be split:\n%s", s2)
	}
}
