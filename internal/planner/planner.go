// Package planner reproduces the GPDB legacy query optimizer ("Planner",
// paper §7.2) as the comparison baseline for the Figure 12 experiment. The
// Planner inherits its design from the PostgreSQL optimizer: a solid
// bottom-up planner that nevertheless lacks the Orca capabilities the paper
// credits for its speedups (§7.2.2):
//
//   - Correlated subqueries run as SubPlans re-executed per outer row — no
//     unified decorrelation.
//   - Cardinality estimation uses row counts, distinct counts and magic
//     selectivity fractions, not Memo-wide histogram derivation, so
//     selective filters are routinely underestimated.
//   - Join ordering is greedy and left-deep over those crude estimates.
//   - Motions are limited to Redistribute and Gather; the broadcast
//     alternative for small inner sides is never considered.
//   - Partitioned tables are always fully scanned (no partition
//     elimination).
//   - WITH common table expressions are inlined per consumer — the shared
//     expression is recomputed for every reference.
package planner

import (
	"math"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

// Planner is the legacy optimizer instance. The two public knobs let the
// rival-engine simulators (internal/rival) reuse this machinery with their
// own join behaviour: LiteralJoinOrder keeps joins exactly as written, and
// BroadcastRight replicates every join's right input instead of co-locating.
type Planner struct {
	LiteralJoinOrder bool
	BroadcastRight   bool

	segments int
	acc      *md.Accessor
	f        *md.ColumnFactory
}

// New builds a Planner for the given cluster size.
func New(segments int, acc *md.Accessor, f *md.ColumnFactory) *Planner {
	if segments < 1 {
		segments = 1
	}
	return &Planner{segments: segments, acc: acc, f: f}
}

// Optimize plans a bound query, returning an executable physical plan that
// gathers ordered results at the master.
func (p *Planner) Optimize(q *core.Query) (*ops.Expr, error) {
	tree := p.inlineCTEs(q.Tree, map[int]*cteBody{})
	tree = core.PushPredicates(tree)
	pl, err := p.plan(tree)
	if err != nil {
		return nil, err
	}
	// Deliver {Singleton, <order>} at the master.
	pl = p.enforce(pl, props.SingletonDist, q.Order)
	return pl.expr, nil
}

// subplan carries the physical expression plus delivered properties and the
// planner's cost/cardinality estimates.
type subplan struct {
	expr *ops.Expr
	dist props.Distribution
	ord  props.OrderSpec
	rows float64
	cost float64
	out  base.ColSet
}

// ---------------------------------------------------------------------------
// CTE inlining

type cteBody struct {
	tree *ops.Expr
	cols []base.ColID
}

// inlineCTEs removes CTEAnchor/CTEConsumer by substituting a remapped copy
// of the producer at every consumer site.
func (p *Planner) inlineCTEs(e *ops.Expr, env map[int]*cteBody) *ops.Expr {
	switch op := e.Op.(type) {
	case *ops.CTEAnchor:
		producer := p.inlineCTEs(e.Children[0], env)
		cols := make([]base.ColID, len(op.Cols))
		for i, c := range op.Cols {
			cols[i] = c.ID
		}
		env[op.ID] = &cteBody{tree: producer, cols: cols}
		return p.inlineCTEs(e.Children[1], env)
	case *ops.CTEConsumer:
		def, ok := env[op.ID]
		if !ok {
			return e
		}
		mapping := map[base.ColID]base.ColID{}
		copyTree := p.remapTree(def.tree, mapping)
		// Map producer outputs to this consumer's columns.
		elems := make([]ops.ProjElem, len(op.Cols))
		for i, c := range op.Cols {
			src := def.cols[i]
			if m, ok := mapping[src]; ok {
				src = m
			}
			elems[i] = ops.ProjElem{Col: c, Expr: ops.NewIdent(src, c.Type)}
		}
		return ops.NewExpr(&ops.Project{Elems: elems}, copyTree)
	default:
		children := make([]*ops.Expr, len(e.Children))
		for i, c := range e.Children {
			children[i] = p.inlineCTEs(c, env)
		}
		// Subqueries embedded in scalar parameters may reference CTEs too.
		var newOp ops.Operator = e.Op
		switch o := e.Op.(type) {
		case *ops.Select:
			newOp = &ops.Select{Pred: p.inlineScalar(o.Pred, env)}
		case *ops.Join:
			newOp = &ops.Join{Type: o.Type, Pred: p.inlineScalar(o.Pred, env)}
		case *ops.Project:
			elems := make([]ops.ProjElem, len(o.Elems))
			for i, el := range o.Elems {
				elems[i] = ops.ProjElem{Col: el.Col, Expr: p.inlineScalar(el.Expr, env)}
			}
			newOp = &ops.Project{Elems: elems}
		default:
			// Remaining operators carry no subquery-bearing scalar
			// parameters in the legacy planner's vocabulary.
		}
		return ops.NewExpr(newOp, children...)
	}
}

// inlineScalar rewrites CTE consumers inside subquery inputs.
func (p *Planner) inlineScalar(s ops.ScalarExpr, env map[int]*cteBody) ops.ScalarExpr {
	switch x := s.(type) {
	case nil:
		return nil
	case *ops.Subquery:
		return &ops.Subquery{
			Kind:   x.Kind,
			Input:  p.inlineCTEs(x.Input, env),
			OutCol: x.OutCol,
			Test:   p.inlineScalar(x.Test, env),
		}
	case *ops.Cmp:
		return &ops.Cmp{Op: x.Op, L: p.inlineScalar(x.L, env), R: p.inlineScalar(x.R, env)}
	case *ops.BoolOp:
		args := make([]ops.ScalarExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = p.inlineScalar(a, env)
		}
		return &ops.BoolOp{Kind: x.Kind, Args: args}
	case *ops.BinOp:
		return &ops.BinOp{Op: x.Op, L: p.inlineScalar(x.L, env), R: p.inlineScalar(x.R, env)}
	default:
		return s
	}
}

// remapTree deep-copies a logical tree, allocating fresh column references
// for every produced column (so multiple inlined copies do not collide) and
// rewriting scalars accordingly.
func (p *Planner) remapTree(e *ops.Expr, mapping map[base.ColID]base.ColID) *ops.Expr {
	children := make([]*ops.Expr, len(e.Children))
	for i, c := range e.Children {
		children[i] = p.remapTree(c, mapping)
	}
	mapScalar := func(s ops.ScalarExpr) ops.ScalarExpr { return ops.ReplaceCols(s, mapping) }

	switch op := e.Op.(type) {
	case *ops.Get:
		cols := make([]*md.ColRef, len(op.Cols))
		for i, c := range op.Cols {
			nc := p.f.NewTableColumn(c.Name, c.Type, c.RelMdid, c.Ordinal)
			cols[i] = nc
			mapping[c.ID] = nc.ID
		}
		return ops.NewExpr(&ops.Get{Alias: op.Alias, Rel: op.Rel, Cols: cols})
	case *ops.Select:
		return ops.NewExpr(&ops.Select{Pred: mapScalar(op.Pred)}, children...)
	case *ops.Project:
		elems := make([]ops.ProjElem, len(op.Elems))
		for i, el := range op.Elems {
			nc := p.f.NewComputedColumn(el.Col.Name, el.Col.Type)
			elems[i] = ops.ProjElem{Col: nc, Expr: mapScalar(el.Expr)}
			mapping[el.Col.ID] = nc.ID
		}
		return ops.NewExpr(&ops.Project{Elems: elems}, children...)
	case *ops.Join:
		return ops.NewExpr(&ops.Join{Type: op.Type, Pred: mapScalar(op.Pred)}, children...)
	case *ops.GbAgg:
		group := make([]base.ColID, len(op.GroupCols))
		for i, g := range op.GroupCols {
			group[i] = remapCol(g, mapping)
		}
		aggs := make([]ops.AggElem, len(op.Aggs))
		for i, a := range op.Aggs {
			nc := p.f.NewComputedColumn(a.Col.Name, a.Col.Type)
			aggs[i] = ops.AggElem{Col: nc, Agg: &ops.AggFunc{Name: a.Agg.Name, Arg: mapScalar(a.Agg.Arg), Distinct: a.Agg.Distinct}}
			mapping[a.Col.ID] = nc.ID
		}
		return ops.NewExpr(&ops.GbAgg{GroupCols: group, Aggs: aggs}, children...)
	case *ops.Limit:
		ord := props.OrderSpec{Items: make([]props.OrderItem, len(op.Order.Items))}
		for i, it := range op.Order.Items {
			ord.Items[i] = props.OrderItem{Col: remapCol(it.Col, mapping), Desc: it.Desc}
		}
		return ops.NewExpr(&ops.Limit{Order: ord, Count: op.Count, Offset: op.Offset, HasCount: op.HasCount}, children...)
	case *ops.UnionAll:
		in := make([][]base.ColID, len(op.InCols))
		for i, cols := range op.InCols {
			in[i] = make([]base.ColID, len(cols))
			for j, c := range cols {
				in[i][j] = remapCol(c, mapping)
			}
		}
		outCols := make([]*md.ColRef, len(op.OutCols))
		for i, c := range op.OutCols {
			nc := p.f.NewComputedColumn(c.Name, c.Type)
			outCols[i] = nc
			mapping[c.ID] = nc.ID
		}
		return ops.NewExpr(&ops.UnionAll{InCols: in, OutCols: outCols}, children...)
	case *ops.Window:
		part := make([]base.ColID, len(op.PartitionCols))
		for i, c := range op.PartitionCols {
			part[i] = remapCol(c, mapping)
		}
		ord := props.OrderSpec{Items: make([]props.OrderItem, len(op.Order.Items))}
		for i, it := range op.Order.Items {
			ord.Items[i] = props.OrderItem{Col: remapCol(it.Col, mapping), Desc: it.Desc}
		}
		wins := make([]ops.WinElem, len(op.Wins))
		for i, w := range op.Wins {
			nc := p.f.NewComputedColumn(w.Col.Name, w.Col.Type)
			wins[i] = ops.WinElem{Col: nc, Fn: &ops.WinFunc{Name: w.Fn.Name, Arg: mapScalar(w.Fn.Arg)}}
			mapping[w.Col.ID] = nc.ID
		}
		return ops.NewExpr(&ops.Window{PartitionCols: part, Order: ord, Wins: wins}, children...)
	default:
		return ops.NewExpr(e.Op, children...)
	}
}

func remapCol(c base.ColID, mapping map[base.ColID]base.ColID) base.ColID {
	if m, ok := mapping[c]; ok {
		return m
	}
	return c
}

// ---------------------------------------------------------------------------
// Enforcement helpers (Redistribute and Gather only — no Broadcast)

func (p *Planner) enforce(in *subplan, dist props.Distribution, ord props.OrderSpec) *subplan {
	out := in
	switch dist.Kind {
	case props.DistSingleton:
		if out.dist.Kind != props.DistSingleton {
			if !ord.IsAny() {
				out = p.sort(out, ord)
				out = &subplan{
					expr: ops.NewExpr(&ops.GatherMerge{Order: ord}, out.expr),
					dist: props.SingletonDist, ord: ord,
					rows: out.rows, cost: out.cost + out.rows*3, out: out.out,
				}
			} else {
				out = &subplan{
					expr: ops.NewExpr(&ops.Gather{}, out.expr),
					dist: props.SingletonDist,
					rows: out.rows, cost: out.cost + out.rows*3, out: out.out,
				}
			}
		}
	case props.DistHashed:
		if !out.dist.Satisfies(dist) {
			out = &subplan{
				expr: ops.NewExpr(&ops.Redistribute{Cols: dist.Cols}, out.expr),
				dist: props.Hashed(dist.Cols...),
				rows: out.rows, cost: out.cost + out.rows*2, out: out.out,
			}
		}
	case props.DistReplicated:
		// Only the rival-engine profiles request replication; the legacy
		// planner itself never considers broadcast motions.
		if out.dist.Kind != props.DistReplicated {
			out = &subplan{
				expr: ops.NewExpr(&ops.Broadcast{}, out.expr),
				dist: props.ReplicatedDist,
				rows: out.rows, cost: out.cost + out.rows*float64(p.segments), out: out.out,
			}
		}
	}
	if !ord.IsAny() && !out.ord.Satisfies(ord) {
		out = p.sort(out, ord)
	}
	return out
}

func (p *Planner) sort(in *subplan, ord props.OrderSpec) *subplan {
	if in.ord.Satisfies(ord) {
		return in
	}
	n := math.Max(in.rows, 2)
	return &subplan{
		expr: ops.NewExpr(&ops.Sort{Order: ord}, in.expr),
		dist: in.dist, ord: ord,
		rows: in.rows, cost: in.cost + n*math.Log2(n), out: in.out,
	}
}
