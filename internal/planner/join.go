package planner

import (
	"math"

	"orca/internal/base"
	"orca/internal/ops"
	"orca/internal/props"
)

// planJoinTree plans a join subtree. Chains of inner joins are flattened and
// re-ordered greedily (left-deep, smallest-estimated-result-first) over the
// planner's crude estimates; outer/semi/anti joins are planned in place.
func (p *Planner) planJoinTree(e *ops.Expr) (*subplan, error) {
	op := e.Op.(*ops.Join)
	if op.Type != ops.InnerJoin {
		left, err := p.plan(e.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := p.plan(e.Children[1])
		if err != nil {
			return nil, err
		}
		plain, withSub := splitSubqueryConjuncts(op.Pred)
		out, err := p.joinPhysical(op.Type, ops.And(plain...), left, right)
		if err != nil {
			return nil, err
		}
		for _, c := range withSub {
			out, err = p.planSubPlanFilter(out, c)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	var inputs []*ops.Expr
	var preds []ops.ScalarExpr
	flattenInner(e, &inputs, &preds)

	plans := make([]*subplan, len(inputs))
	for i, in := range inputs {
		sp, err := p.plan(in)
		if err != nil {
			return nil, err
		}
		plans[i] = sp
	}
	plain, withSub := splitSubqueryConjuncts(ops.And(preds...))

	remaining := append([]ops.ScalarExpr(nil), plain...)
	if p.LiteralJoinOrder {
		// Rival-engine mode: join exactly as written (paper §7.3.2).
		cur := plans[0]
		for i := 1; i < len(plans); i++ {
			crossing := crossingPreds(remaining, cur.out, plans[i].out)
			remaining = removePreds(remaining, crossing)
			joined, err := p.joinPhysical(ops.InnerJoin, ops.And(crossing...), cur, plans[i])
			if err != nil {
				return nil, err
			}
			cur = joined
		}
		return p.finishJoin(cur, remaining, withSub)
	}
	// Greedy left-deep: start from the smallest input.
	cur := plans[0]
	curIdx := 0
	for i, sp := range plans {
		if sp.rows < cur.rows {
			cur, curIdx = sp, i
		}
	}
	used := map[int]bool{curIdx: true}
	for len(used) < len(plans) {
		bestIdx := -1
		bestRows := math.Inf(1)
		bestConnected := false
		for i, sp := range plans {
			if used[i] {
				continue
			}
			crossing := crossingPreds(remaining, cur.out, sp.out)
			connected := len(crossing) > 0
			if bestConnected && !connected {
				continue
			}
			rows := p.joinRows(ops.And(crossing...), cur, sp)
			if connected && !bestConnected {
				bestConnected = true
				bestRows = math.Inf(1)
			}
			if rows < bestRows {
				bestRows = rows
				bestIdx = i
			}
		}
		next := plans[bestIdx]
		crossing := crossingPreds(remaining, cur.out, next.out)
		remaining = removePreds(remaining, crossing)
		joined, err := p.joinPhysical(ops.InnerJoin, ops.And(crossing...), cur, next)
		if err != nil {
			return nil, err
		}
		cur = joined
		used[bestIdx] = true
	}
	return p.finishJoin(cur, remaining, withSub)
}

// finishJoin applies leftover predicates and subquery conjuncts above a
// completed join tree.
func (p *Planner) finishJoin(cur *subplan, remaining, withSub []ops.ScalarExpr) (*subplan, error) {
	if len(remaining) > 0 {
		pred := ops.And(remaining...)
		cur = &subplan{
			expr: ops.NewExpr(&ops.Filter{Pred: pred}, cur.expr),
			dist: cur.dist, ord: cur.ord,
			rows: cur.rows * p.predSel(pred),
			cost: cur.cost + cur.rows,
			out:  cur.out,
		}
	}
	var err error
	for _, c := range withSub {
		cur, err = p.planSubPlanFilter(cur, c)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func flattenInner(e *ops.Expr, inputs *[]*ops.Expr, preds *[]ops.ScalarExpr) {
	if j, ok := e.Op.(*ops.Join); ok && j.Type == ops.InnerJoin {
		flattenInner(e.Children[0], inputs, preds)
		flattenInner(e.Children[1], inputs, preds)
		*preds = append(*preds, ops.Conjuncts(j.Pred)...)
		return
	}
	*inputs = append(*inputs, e)
}

func crossingPreds(preds []ops.ScalarExpr, l, r base.ColSet) []ops.ScalarExpr {
	both := l.Union(r)
	var out []ops.ScalarExpr
	for _, p := range preds {
		pc := p.Cols()
		if pc.SubsetOf(both) && pc.Intersects(l) && pc.Intersects(r) {
			out = append(out, p)
		}
	}
	return out
}

func removePreds(preds, drop []ops.ScalarExpr) []ops.ScalarExpr {
	var out []ops.ScalarExpr
	for _, p := range preds {
		found := false
		for _, d := range drop {
			if d == p {
				found = true
				break
			}
		}
		if !found {
			out = append(out, p)
		}
	}
	return out
}

// joinRows estimates the join result size: 1/max(NDV) per equality key,
// magic fractions otherwise.
func (p *Planner) joinRows(pred ops.ScalarExpr, l, r *subplan) float64 {
	lk, rk, residual := ops.EquiKeys(pred, l.out, r.out)
	sel := 1.0
	if len(lk) == 0 && pred != nil {
		sel = magicRangeSel
	}
	for i := range lk {
		lndv := p.colNDV(p.f.Lookup(lk[i]))
		rndv := p.colNDV(p.f.Lookup(rk[i]))
		ndv := math.Max(lndv, rndv)
		if ndv <= 0 {
			ndv = math.Max(math.Max(l.rows, r.rows)*0.1, 1)
		}
		sel /= ndv
	}
	for range residual {
		sel *= magicRangeSel
	}
	return math.Max(l.rows*r.rows*sel, 1)
}

// joinPhysical builds one physical join with Redistribute/Gather motions —
// the broadcast alternative is not in the legacy planner's vocabulary.
func (p *Planner) joinPhysical(t ops.JoinType, pred ops.ScalarExpr, l, r *subplan) (*subplan, error) {
	lk, rk, residual := ops.EquiKeys(pred, l.out, r.out)
	rows := p.joinRows(pred, l, r)
	switch t {
	case ops.InnerJoin:
		// joinRows already estimates the inner join.
	case ops.LeftJoin:
		rows = math.Max(rows, l.rows)
	case ops.SemiJoin:
		rows = l.rows * 0.5
	case ops.AntiJoin:
		rows = l.rows * 0.5
	}

	if len(lk) > 0 {
		var lIn, rIn *subplan
		if p.BroadcastRight {
			// Impala-style: always replicate the build side.
			lIn = l
			rIn = p.enforce(r, props.ReplicatedDist, props.OrderSpec{})
		} else {
			// Co-locate both sides on the join keys (replicated inputs are
			// accepted in place).
			lIn = l
			if !l.dist.Satisfies(props.HashedDupSafe(lk...)) {
				lIn = p.enforce(l, props.Hashed(lk...), props.OrderSpec{})
			}
			rIn = r
			if !r.dist.Satisfies(props.HashedDupSafe(rk...)) {
				rIn = p.enforce(r, props.Hashed(rk...), props.OrderSpec{})
			}
		}
		hj := &ops.HashJoin{Type: t, LeftKeys: lk, RightKeys: rk, Residual: ops.And(residual...)}
		dist := lIn.dist
		if dist.Kind == props.DistReplicated {
			dist = rIn.dist
		}
		return &subplan{
			expr: ops.NewExpr(hj, lIn.expr, rIn.expr),
			dist: dist,
			rows: rows,
			cost: lIn.cost + rIn.cost + lIn.rows + rIn.rows,
			out:  joinOut(t, l.out, r.out),
		}, nil
	}

	// Non-equi join: gather both sides to the master and nested-loop there.
	lIn := p.enforce(l, props.SingletonDist, props.OrderSpec{})
	rIn := p.enforce(r, props.SingletonDist, props.OrderSpec{})
	nl := &ops.NLJoin{Type: t, Pred: pred}
	return &subplan{
		expr: ops.NewExpr(nl, lIn.expr, rIn.expr),
		dist: props.SingletonDist,
		rows: rows,
		cost: lIn.cost + rIn.cost + lIn.rows*math.Max(rIn.rows, 1),
		out:  joinOut(t, l.out, r.out),
	}, nil
}

func joinOut(t ops.JoinType, l, r base.ColSet) base.ColSet {
	if t == ops.SemiJoin || t == ops.AntiJoin {
		return l
	}
	return l.Union(r)
}
