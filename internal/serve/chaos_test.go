package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"orca/internal/fault"
)

// TestServeChaosStorm is the service-level chaos mode, run by check.sh with
// a date-rotated seed: a request storm at 4x admission capacity while a
// seeded randomized fault schedule — which can include the serve/* points
// (admission rejects, transient MD errors, handler panics and stalls) — is
// armed. The survival invariants are the serving contract under fire:
//
//   - the process answers every request (no hang, no crash);
//   - every non-2xx response carries a well-formed taxonomy body —
//     "5xx without taxonomy" is the class of bug this gate exists to catch;
//   - sheds are bounded-work responses: admitted + shed covers the storm;
//   - the server still drains and serves cleanly after the storm.
//
// Replay a failure with ORCA_CHAOS=1 ORCA_CHAOS_SEED=<n>
// go test -race -run TestServeChaosStorm ./internal/serve/.
func TestServeChaosStorm(t *testing.T) {
	if os.Getenv("ORCA_CHAOS") == "" {
		t.Skip("chaos mode: set ORCA_CHAOS=1 (and optionally ORCA_CHAOS_SEED=<n>) to run")
	}
	seed := int64(1)
	if s := os.Getenv("ORCA_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ORCA_CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d", seed)

	for round := 0; round < 5; round++ {
		specs := fault.RandomSchedule(seed+int64(round), 4)
		t.Logf("round %d: %s", round, fault.FormatSpecs(specs))
		disarm, err := fault.Arm(specs)
		if err != nil {
			t.Fatalf("round %d: Arm: %v", round, err)
		}

		s := newTestServer(t, func(c *Config) {
			c.Admission = AdmissionConfig{
				MaxInFlight:  2,
				MaxQueue:     2,
				QueueTimeout: 100 * time.Millisecond,
			}
			c.RequestTimeout = 3 * time.Second
			c.Base.MDRetry.MaxAttempts = 3
			c.Base.MDRetry.InitialBackoff = time.Millisecond
			c.Base.Workers = 1 + round%3
		})
		ts := httptest.NewServer(s.Handler())

		const storm = 16 // 4x the admission capacity of 4
		var wg sync.WaitGroup
		statuses := make([]int, storm)
		for i := 0; i < storm; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// postJSON fails the test itself on any non-2xx response whose
				// body is not a parseable taxonomy error.
				status, _, _, _ := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
				statuses[i] = status
			}(i)
		}
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("round %d: storm requests still pending after 60s", round)
		}

		counts := map[int]int{}
		for _, st := range statuses {
			counts[st]++
		}
		t.Logf("round %d: status counts %v, varz %v", round, counts, s.Vars().Snapshot())
		snap := s.Vars().Snapshot()
		if snap["admitted"]+snap["shed"] != storm {
			t.Errorf("round %d: admitted(%d) + shed(%d) != %d",
				round, snap["admitted"], snap["shed"], storm)
		}
		if snap["in_flight"] != 0 || snap["queued"] != 0 {
			t.Errorf("round %d: gauges nonzero after storm: %v", round, snap)
		}

		disarm()
		// The server must come out of the storm healthy: a clean request
		// succeeds once the faults are gone.
		status, _, _, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
		if status != http.StatusOK {
			t.Errorf("round %d: post-storm request: status %d (taxon %+v), want 200",
				round, status, apiErr)
		}
		ts.Close()
		if fault.Enabled() {
			t.Fatalf("round %d: faults still armed", round)
		}
	}
}
