package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/fault"
	"orca/internal/md"
	"orca/internal/plancache"
	"orca/internal/props"
	"orca/internal/sql"
)

const shapeSQL = "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b AND t1.b > 600 ORDER BY t1.a"

// sameShapeSQL differs from shapeSQL only in the constant (same selectivity
// bucket), so it must reuse shapeSQL's cached plan.
const sameShapeSQL = "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b AND t1.b > 700 ORDER BY t1.a"

func getVarz(t *testing.T, url string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(url + "/varz")
	if err != nil {
		t.Fatalf("GET /varz: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var vars map[string]int64
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("parsing varz %q: %v", data, err)
	}
	return vars
}

// TestServeCacheHitMiss is the tentpole's serving contract: a cold shape
// pays for search and reports X-Orca-Cache: miss; a warm repeat — same text
// or same shape with different constants — skips the scheduler entirely
// (zero groups searched) and reports hit, with /varz accounting for both.
func TestServeCacheHitMiss(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, hdr, cold, _ := postJSON(t, ts.URL, optimizeRequest{SQL: shapeSQL})
	if status != http.StatusOK {
		t.Fatalf("cold status %d", status)
	}
	if got := hdr.Get("X-Orca-Cache"); got != "miss" {
		t.Errorf("cold X-Orca-Cache = %q, want miss", got)
	}
	if cold.Groups == 0 {
		t.Error("cold request reports zero groups — search did not run?")
	}

	status, hdr, warm, _ := postJSON(t, ts.URL, optimizeRequest{SQL: shapeSQL})
	if status != http.StatusOK {
		t.Fatalf("warm status %d", status)
	}
	if got := hdr.Get("X-Orca-Cache"); got != "hit" {
		t.Errorf("warm X-Orca-Cache = %q, want hit", got)
	}
	if warm.Groups != 0 || warm.RulesFired != 0 {
		t.Errorf("warm request ran a search: %d groups, %d rules", warm.Groups, warm.RulesFired)
	}
	if warm.Plan != cold.Plan {
		t.Errorf("warm plan differs from cold:\ncold:\n%s\nwarm:\n%s", cold.Plan, warm.Plan)
	}
	if warm.Cost != cold.Cost {
		t.Errorf("warm cost %v != cold cost %v", warm.Cost, cold.Cost)
	}

	// Same shape, different constant, same selectivity bucket: still a hit,
	// and the rebound plan carries the new constant.
	_, hdr, rebound, _ := postJSON(t, ts.URL, optimizeRequest{SQL: sameShapeSQL})
	if got := hdr.Get("X-Orca-Cache"); got != "hit" {
		t.Errorf("same-shape X-Orca-Cache = %q, want hit", got)
	}
	if rebound.Plan == cold.Plan {
		t.Error("rebound plan identical to cold plan — constant not rebound")
	}

	vars := getVarz(t, ts.URL)
	if vars["plan_cache_hits"] != 2 || vars["plan_cache_misses"] != 1 {
		t.Errorf("varz hits=%d misses=%d, want 2/1", vars["plan_cache_hits"], vars["plan_cache_misses"])
	}
	if vars["plan_cache_entries"] != 1 || vars["plan_cache_bytes"] <= 0 {
		t.Errorf("varz entries=%d bytes=%d", vars["plan_cache_entries"], vars["plan_cache_bytes"])
	}
}

// TestServeCacheOff: with the cache disabled every request pays for search
// and the header is absent.
func TestServeCacheOff(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.PlanCacheOff = true })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		_, hdr, out, _ := postJSON(t, ts.URL, optimizeRequest{SQL: shapeSQL})
		if got := hdr.Get("X-Orca-Cache"); got != "" {
			t.Errorf("request %d: X-Orca-Cache = %q with cache off", i, got)
		}
		if out.Groups == 0 {
			t.Errorf("request %d skipped search with cache off", i)
		}
	}
}

// TestServeCacheMDBumpEvicts is the metadata-invalidation satellite run end
// to end: a warm cache, then a DDL-style version bump in the backend, then
// the same request — which must re-optimize (zero stale hits), re-admit
// under the new stamp, and be warm again afterwards.
func TestServeCacheMDBumpEvicts(t *testing.T) {
	provider := md.NewMemProvider()
	md.Build(provider, md.TableSpec{
		Name: "t1", Rows: 100000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 50000, Lo: 0, Hi: 50000},
			{Name: "b", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
		},
	})
	md.Build(provider, md.TableSpec{
		Name: "t2", Rows: 80000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 80000, Lo: 0, Hi: 80000},
			{Name: "b", Type: base.TInt, NDV: 40000, Lo: 0, Hi: 50000},
		},
	})
	s := newTestServer(t, func(c *Config) { c.Provider = provider })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	expect := func(step, want string) {
		t.Helper()
		status, hdr, _, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: shapeSQL})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%+v)", step, status, apiErr)
		}
		if got := hdr.Get("X-Orca-Cache"); got != want {
			t.Errorf("%s: X-Orca-Cache = %q, want %q", step, got, want)
		}
	}
	expect("cold", "miss")
	expect("warm", "hit")

	// DDL in the backend: the next request resolves the bumped relation
	// version, the md cache's invalidation stamp advances, and the cached
	// plan — keyed under the old stamp — is unreachable.
	if _, err := provider.BumpRelationVersion("t1"); err != nil {
		t.Fatal(err)
	}
	expect("post-bump", "miss")
	// The post-bump request is itself not cached: resolving the bumped
	// relation advanced the stamp during its own bind, and admission refuses
	// any plan whose session straddled a bump (see admitPlan). The next
	// request runs under a settled stamp and re-seeds; the one after is warm.
	expect("re-seed", "miss")
	expect("re-warmed", "hit")
}

// TestCacheAdmitRefusesMidBindBump: a metadata bump landing between the
// session's accessor opening (bind start) and admission must refuse the
// plan. The trap this pins down: a key stamped from the post-bind version is
// fresh and matches the live version at admit time, so a check of only
// "stamp still current" would cache a tree bound against pre-bump metadata
// under the post-bump stamp — and serve it indefinitely. The pre-bind
// snapshot (md.Accessor.MDVersionAtOpen) is what catches it.
func TestCacheAdmitRefusesMidBindBump(t *testing.T) {
	provider := md.NewMemProvider()
	md.Build(provider, md.TableSpec{
		Name: "t1", Rows: 100000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 50000, Lo: 0, Hi: 50000},
			{Name: "b", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
		},
	})
	md.Build(provider, md.TableSpec{
		Name: "t2", Rows: 80000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 80000, Lo: 0, Hi: 80000},
			{Name: "b", Type: base.TInt, NDV: 40000, Lo: 0, Hi: 50000},
		},
	})
	s := newTestServer(t, func(c *Config) { c.Provider = provider })

	// The request's session: accessor opens (pre-bind snapshot), binds, and
	// optimizes against the pre-bump metadata.
	acc := md.NewAccessor(s.cache, provider)
	f := md.NewColumnFactory()
	q, err := sql.Bind(shapeSQL, acc, f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.OptimizeContext(context.Background(), q, s.cfg.Base)
	if err != nil {
		t.Fatal(err)
	}

	// A concurrent DDL: another session resolves the bumped relation, the
	// newer version displaces the cached one, and the invalidation stamp
	// advances — while our request is still in flight.
	if _, err := provider.BumpRelationVersion("t1"); err != nil {
		t.Fatal(err)
	}
	acc2 := md.NewAccessor(s.cache, provider)
	if _, err := acc2.RelationByName("t1"); err != nil {
		t.Fatal(err)
	}
	acc2.Close()
	if acc.MDVersion() == acc.MDVersionAtOpen() {
		t.Fatal("displacing insert did not advance the stamp")
	}

	// Build the key exactly as cachedOptimize would — after bind, so its
	// stamp is the fresh post-bump version matching the live one.
	shape, ok := plancache.Extract(q.Tree, q.Order, q.OutCols)
	if !ok {
		t.Fatal("shape not cacheable")
	}
	reqID, ok := s.plans.InternReq(props.Required{Dist: props.SingletonDist, Order: q.Order})
	if !ok {
		t.Fatal("InternReq refused")
	}
	key := plancache.Key{FP: shape.FP, Req: reqID, Buckets: shape.Buckets, MDVersion: acc.MDVersion()}
	if e := s.admitPlan(key, shape, res, acc); e != nil {
		t.Error("admitPlan cached a plan whose bind straddled an md-version bump")
	}
	if n := s.plans.Len(); n != 0 {
		t.Errorf("stale-bound plan admitted: %d entries", n)
	}
	acc.Close()
}

// TestServeCacheSingleflight: a storm of one cold shape runs the scheduler
// exactly once — the leader optimizes, everyone else is served from its
// flight (or a subsequent probe) without a search. Run under -race by
// check.sh.
func TestServeCacheSingleflight(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		// Enough slots that the whole storm optimizes concurrently; the
		// singleflight, not admission, must be what bounds the work.
		c.Admission = AdmissionConfig{MaxInFlight: 16, MaxQueue: 16, QueueTimeout: time.Second}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 12
	outs := make([]optimizeResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, out, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: shapeSQL})
			if status != http.StatusOK {
				t.Errorf("request %d: status %d (%+v)", i, status, apiErr)
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()

	fullRuns := 0
	for _, out := range outs {
		if out.Groups > 0 {
			fullRuns++
		}
	}
	if fullRuns != 1 {
		t.Errorf("%d scheduler runs for %d identical requests, want exactly 1", fullRuns, n)
	}
	for i, out := range outs {
		if out.Plan != outs[0].Plan {
			t.Errorf("request %d got a different plan", i)
		}
	}
}

// TestServeCacheChaos is the plan cache under the chaos gate: a seeded
// schedule arming the plancache/* fault points (corrupt entries, stale
// version stamps) while a warm-shape storm runs. The survival invariants:
// every request is answered 200 with the same plan — a distrusted entry may
// cost a re-optimization (miss), never a wrong or failed answer — and the
// defensive evictions are visible in the stats.
func TestServeCacheChaos(t *testing.T) {
	if os.Getenv("ORCA_CHAOS") == "" {
		t.Skip("chaos mode: set ORCA_CHAOS=1 (and optionally ORCA_CHAOS_SEED=<n>) to run")
	}
	seed := int64(1)
	if v := os.Getenv("ORCA_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad ORCA_CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	// Seed-rotated cadences keep the schedule deterministic per seed while
	// varying how often each point fires across days.
	corruptEvery := 2 + seed%3
	staleEvery := 3 + seed%4
	schedule := fault.PointPlanCacheCorrupt + ":error:every=" + strconv.FormatInt(corruptEvery, 10) +
		"," + fault.PointPlanCacheStale + ":error:every=" + strconv.FormatInt(staleEvery, 10)
	t.Logf("chaos seed %d: %s", seed, schedule)
	armFaults(t, schedule)

	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var refPlan string
	for i := 0; i < 40; i++ {
		status, _, out, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: shapeSQL})
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d (%+v)", i, status, apiErr)
		}
		if refPlan == "" {
			refPlan = out.Plan
		} else if out.Plan != refPlan {
			t.Fatalf("request %d served a different plan under chaos:\n%s", i, out.Plan)
		}
	}
	st := s.PlanCache().Stats()
	t.Logf("cache stats under chaos: %+v", st)
	if st.Evictions == 0 {
		t.Error("no defensive evictions despite armed plancache faults")
	}
	if st.Hits == 0 {
		t.Error("no hits at all — cache never recovered between faults")
	}
}
