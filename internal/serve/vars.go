package serve

import "sync/atomic"

// Counters are the server's monotonic event counters and level gauges,
// exported verbatim by /varz. All fields are atomics: they are bumped from
// concurrent request handlers and read by the varz handler and the drain
// path without locks. Use them through a pointer — the struct must never be
// copied.
type Counters struct {
	// Admitted counts requests granted a concurrency slot.
	Admitted atomic.Int64
	// Shed counts requests rejected by admission control (queue full, queue
	// deadline, drain) — the 429/503 responses with Retry-After.
	Shed atomic.Int64
	// Completed counts successfully answered optimization requests,
	// degraded ones included.
	Completed atomic.Int64
	// Failed counts requests answered with a taxonomy error (4xx/5xx other
	// than sheds).
	Failed atomic.Int64
	// Degraded counts responses served by the degradation ladder rather
	// than the normal optimization pass.
	Degraded atomic.Int64
	// Panicked counts contained per-request panics (the process survived
	// every one of them).
	Panicked atomic.Int64
	// AdmitPanics counts panics contained inside the admission controller
	// itself. Such requests are shed with reason "panic"; a nonzero value
	// with no panic-action fault schedule armed means a real admission bug.
	AdmitPanics atomic.Int64
	// Retried counts transient metadata-lookup retries absorbed by the
	// md retry policy across all requests.
	Retried atomic.Int64

	// InFlight is the number of requests currently holding a concurrency
	// slot.
	InFlight atomic.Int64
	// Queued is the number of requests currently waiting for a slot in the
	// bounded admission queue.
	Queued atomic.Int64
}

// Snapshot returns a point-in-time copy of every counter, keyed by its /varz
// name.
func (c *Counters) Snapshot() map[string]int64 {
	return map[string]int64{
		"admitted":         c.Admitted.Load(),
		"shed":             c.Shed.Load(),
		"completed":        c.Completed.Load(),
		"failed":           c.Failed.Load(),
		"degraded":         c.Degraded.Load(),
		"panicked":         c.Panicked.Load(),
		"admission_panics": c.AdmitPanics.Load(),
		"retried":          c.Retried.Load(),
		"in_flight":        c.InFlight.Load(),
		"queued":           c.Queued.Load(),
	}
}
