package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"orca/internal/gpos"
	"orca/internal/md"
)

// APIError is the machine-readable body of every non-2xx response — the
// structured error taxonomy of the service. Component and Code mirror
// gpos.Exception so a client (or the chaos gate) can programmatically tell a
// shed from a deadline from a contained panic; Retryable tells it whether
// coming back later can help, and RetryAfterMS says when.
type APIError struct {
	Status       int    `json:"-"`
	Component    string `json:"component"`
	Code         string `json:"code"`
	Message      string `json:"message"`
	Retryable    bool   `json:"retryable"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Error implements the error interface.
func (e *APIError) Error() string { return e.Component + "/" + e.Code + ": " + e.Message }

// Taxonomy codes minted by the serve layer itself (codes raised deeper in
// the optimizer — LookupTimeout, FaultInjected, Panic, NoPlan — pass through
// with their original component).
const (
	// CodeShed: rejected by admission control (429) or drain (503).
	CodeShed = "AdmissionShed"
	// CodeDeadline: the per-request deadline expired before a plan (and the
	// degradation ladder could not rescue it either).
	CodeDeadline = "DeadlineExceeded"
	// CodeBadRequest: the request body failed to parse or bind.
	CodeBadRequest = "BadRequest"
	// CodeInternal: an unclassified failure; the fallback taxon.
	CodeInternal = "Internal"
)

// mapShed converts an admission rejection into its response taxon: 503 when
// the server is draining (the client should find another instance), 429
// otherwise, both with Retry-After.
func mapShed(shed *ShedError) *APIError {
	status := http.StatusTooManyRequests
	if shed.Reason == ShedDraining {
		status = http.StatusServiceUnavailable
	}
	return &APIError{
		Status:       status,
		Component:    string(gpos.CompServe),
		Code:         CodeShed,
		Message:      shed.Error(),
		Retryable:    true,
		RetryAfterMS: shed.RetryAfter.Milliseconds(),
	}
}

// mapError classifies an optimization failure into the response taxonomy.
// The bind flag marks failures from the parse/bind phase, which are the
// client's fault (400) unless the real cause is the request deadline.
func mapError(err error, bind bool) *APIError {
	var shed *ShedError
	if errors.As(err, &shed) {
		return mapShed(shed)
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return deadlineError(err)
	}
	ex := gpos.AsException(err)
	if ex != nil && ex.Comp == gpos.CompMD && ex.Code == md.CodeLookupCancelled {
		// The session's base context died mid-lookup: the request deadline,
		// not the metadata layer, is the real failure.
		return deadlineError(err)
	}
	var nf *md.ErrNotFound
	if errors.As(err, &nf) {
		return &APIError{
			Status:    http.StatusNotFound,
			Component: string(gpos.CompMD),
			Code:      "NotFound",
			Message:   err.Error(),
		}
	}
	// Bind-phase failures are the client's fault (400) only when they come
	// from the parsing/binding layers themselves; a server-side failure that
	// happens to strike during bind (an injected metadata fault, say) keeps
	// its own taxon below.
	if bind && (ex == nil || ex.Comp == gpos.CompSQL || ex.Comp == gpos.CompDXL) {
		return &APIError{
			Status:    http.StatusBadRequest,
			Component: componentOf(ex, gpos.CompSQL),
			Code:      CodeBadRequest,
			Message:   err.Error(),
		}
	}
	if ex != nil {
		return &APIError{
			Status:    http.StatusInternalServerError,
			Component: string(ex.Comp),
			Code:      ex.Code,
			Message:   ex.Msg,
			Retryable: md.IsTransient(err),
		}
	}
	return &APIError{
		Status:    http.StatusInternalServerError,
		Component: string(gpos.CompServe),
		Code:      CodeInternal,
		Message:   err.Error(),
		Retryable: md.IsTransient(err),
	}
}

// deadlineError is the 504 taxon: the request's deadline expired. Retryable
// — with a longer deadline or a quieter server the query may well plan.
func deadlineError(err error) *APIError {
	return &APIError{
		Status:       http.StatusGatewayTimeout,
		Component:    string(gpos.CompServe),
		Code:         CodeDeadline,
		Message:      err.Error(),
		Retryable:    true,
		RetryAfterMS: time.Second.Milliseconds(),
	}
}

// panicError is the taxon of a contained per-request panic: the process
// survived, the request did not. dumpPath points at the captured AMPERe
// repro when one was written.
func panicError(ex *gpos.Exception) *APIError {
	return &APIError{
		Status:    http.StatusInternalServerError,
		Component: string(ex.Comp),
		Code:      gpos.CodePanic,
		Message:   ex.Msg,
	}
}

// componentOf names ex's component, or the fallback for plain errors.
func componentOf(ex *gpos.Exception, fallback gpos.Component) string {
	if ex != nil {
		return string(ex.Comp)
	}
	return string(fallback)
}
